//! The paper's first test program end to end: calibrate the cost model
//! against the simulated CM-5 (training sets), build the Complex Matrix
//! Multiply MDG from the *fitted* parameters, compile and execute both
//! the MPMD and SPMD versions, and verify the algorithm's numerics with
//! the real kernels.
//!
//! Run with: `cargo run --release --example complex_matmul`

use paradigm_core::calibrate::{calibrate, CalibrationConfig};
use paradigm_core::prelude::*;
use paradigm_core::report::render_calibration;
use paradigm_kernels::ComplexMatrix;

fn main() {
    let n = 64;
    let sizes = [16u32, 32, 64];

    // Step 0: numeric sanity — the 4-multiply/2-add complex product the
    // MDG encodes really computes a complex matrix product.
    let a = ComplexMatrix::random(n, n, 1);
    let b = ComplexMatrix::random(n, n, 2);
    let fast = a.mul_4m2a(&b);
    let reference = a.mul_reference(&b);
    println!(
        "numeric check: 4M+2A complex product vs reference, max |diff| = {:.2e}",
        fast.max_abs_diff(&reference)
    );
    assert!(fast.max_abs_diff(&reference) < 1e-9);

    // Step 1: calibrate the cost model on the largest machine.
    let truth64 = TrueMachine::cm5(64);
    let cal = calibrate(&truth64, &CalibrationConfig::default());
    println!("\n{}", render_calibration(&cal));

    // Step 2-5: build the MDG from the fitted table, compile, execute.
    let g = complex_matmul_mdg(n, &cal.kernel_table);
    println!("program: {} ({} compute nodes)\n", g.name(), g.compute_node_count());
    println!("  procs |    Phi (s) |  T_psa (s) | MPMD run (s) | SPMD run (s) | MPMD gain");
    println!("  ------+------------+------------+--------------+--------------+----------");
    for &p in &sizes {
        let machine = Machine::new(p, cal.machine.xfer);
        let compiled = paradigm_core::compile(&g, machine, &CompileConfig::default());
        let truth = TrueMachine::cm5(p);
        let mpmd = run_mpmd(&g, &compiled, &truth);
        let spmd = run_spmd(&g, &truth);
        println!(
            "  {:>5} | {:>10.4} | {:>10.4} | {:>12.4} | {:>12.4} | {:>8.2}x",
            p,
            compiled.phi.phi,
            compiled.t_psa,
            mpmd.makespan,
            spmd.makespan,
            spmd.makespan / mpmd.makespan
        );
    }
    println!("\n(the MPMD gain column is the paper's Figure-8 claim in one number)");
}
