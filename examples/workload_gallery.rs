//! The pipeline on realistic workloads beyond the paper: 2D FFT (with a
//! genuine 2D-transfer transpose), blocked LU factorization, and
//! iterated stencil sweeps. For each, compare mixed parallelism against
//! pure data parallelism on the simulated 64-node machine.
//!
//! Run with: `cargo run --release --example workload_gallery`

use paradigm_core::prelude::*;
use paradigm_mdg::stats::MdgStats;
use paradigm_mdg::{block_lu_mdg, fft_2d_mdg, stencil_mdg};
use paradigm_sim::lower_mpmd;

fn main() {
    let p = 64u32;
    let machine = Machine::cm5(p);
    let truth = TrueMachine::cm5(p);
    let table = KernelCostTable::cm5();

    let workloads: Vec<(&str, Mdg)> = vec![
        ("2D FFT 256, 8 bands", fft_2d_mdg(256, 8, &table)),
        ("block LU 4x4 @ 64", block_lu_mdg(4, 64, &table)),
        ("block LU 6x6 @ 64", block_lu_mdg(6, 64, &table)),
        ("stencil 512, 8 bands x 6", stencil_mdg(512, 8, 6, &table)),
    ];

    println!("workload gallery on a {p}-processor simulated CM-5\n");
    println!("  workload               | nodes | inh.par |  Phi (s) | T_psa (s) | MPMD run | SPMD run | gain");
    println!("  -----------------------+-------+---------+----------+-----------+----------+----------+------");
    for (name, g) in &workloads {
        let stats = MdgStats::of(g);
        let compiled = compile(g, machine, &CompileConfig::fast());
        let mpmd = simulate(&lower_mpmd(g, &compiled.psa.schedule), &truth);
        let spmd = run_spmd(g, &truth);
        println!(
            "  {:<22} | {:>5} | {:>7.2} | {:>8.4} | {:>9.4} | {:>8.4} | {:>8.4} | {:>4.2}x",
            name,
            g.compute_node_count(),
            stats.inherent_parallelism(),
            compiled.phi.phi,
            compiled.t_psa,
            mpmd.makespan,
            spmd.makespan,
            spmd.makespan / mpmd.makespan
        );
    }
    println!(
        "\nReading: the FFT's independent bands and LU's trailing updates profit most\n\
         from mixed parallelism. The stencil shows that inherent parallelism alone is\n\
         not the whole story: its bands are independent within a sweep (inh.par = 8)\n\
         but each sweep's work is tiny relative to the per-message startup costs, so\n\
         SPMD is already close to the communication floor and the gain is small."
    );
}
