//! Quickstart: build your own Macro Dataflow Graph, compile it
//! (convex allocation + PSA scheduling), inspect the schedule, and
//! execute it on the simulated machine.
//!
//! Run with: `cargo run --release --example quickstart`

use paradigm_core::prelude::*;

fn main() {
    // 1. Describe the program as an MDG: nodes are loop nests with
    //    Amdahl-law costs, edges are precedence constraints carrying the
    //    arrays that must be redistributed.
    let mut b = MdgBuilder::new("quickstart");
    let prep = b.compute("prepare", AmdahlParams::new(0.05, 2.0));
    let left = b.compute("left solve", AmdahlParams::new(0.10, 4.0));
    let right = b.compute("right solve", AmdahlParams::new(0.10, 4.0));
    let merge = b.compute("merge", AmdahlParams::new(0.08, 1.5));
    let xfer = || vec![ArrayTransfer::matrix_1d(256, 256)];
    b.edge(prep, left, xfer());
    b.edge(prep, right, xfer());
    b.edge(left, merge, xfer());
    b.edge(right, merge, xfer());
    let g = b.finish().expect("valid DAG");

    // 2. Pick a machine (CM-5 cost constants at 16 processors) and
    //    compile: convex-programming allocation, then PSA scheduling.
    let machine = Machine::cm5(16);
    let compiled = paradigm_core::compile(&g, machine, &CompileConfig::default());

    println!("allocation (processors per node):");
    for (id, node) in g.nodes() {
        if !node.is_structural() {
            println!(
                "  {:<12} continuous {:.2}  ->  scheduled {}",
                node.name,
                compiled.solve.alloc.get(id),
                compiled.psa.bounded.as_u32(id)
            );
        }
    }
    println!();
    println!("{}", compiled.psa.schedule.gantt(&g, 60));
    println!(
        "lower bound Phi = {:.3} s, predicted finish T_psa = {:.3} s ({:+.1}% above Phi)",
        compiled.phi.phi,
        compiled.t_psa,
        compiled.deviation_percent()
    );

    // 3. Execute the generated MPMD program on the simulated machine.
    let truth = TrueMachine::cm5(16);
    let run = run_mpmd(&g, &compiled, &truth);
    println!(
        "simulated execution: {:.3} s (prediction off by {:+.1}%), utilization {:.0}%",
        run.makespan,
        100.0 * (compiled.t_psa - run.makespan) / run.makespan,
        100.0 * run.utilization()
    );

    // 4. Compare with the pure data-parallel (SPMD) execution.
    let spmd = run_spmd(&g, &truth);
    println!(
        "SPMD execution:      {:.3} s  ->  mixed parallelism wins by {:.2}x",
        spmd.makespan,
        spmd.makespan / run.makespan
    );
}
