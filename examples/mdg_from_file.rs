//! Author an MDG in the plain-text interchange format, load it, and run
//! the whole pipeline on it — the workflow a front-end (or a human
//! studying a program, as the paper's authors did) would use.
//!
//! Run with: `cargo run --release --example mdg_from_file`

use paradigm_core::prelude::*;
use paradigm_mdg::{from_text, to_text};

const PROGRAM: &str = r#"
mdg jacobi-step
# One step of a blocked iterative solver: assemble, two independent
# half-domain sweeps, then a residual reduction.
node 0 "assemble"     alpha=0.04 tau=0.8  class=init rows=128 cols=128
node 1 "sweep north"  alpha=0.09 tau=2.4  class=mul  rows=128 cols=128
node 2 "sweep south"  alpha=0.09 tau=2.4  class=mul  rows=128 cols=128
node 3 "residual"     alpha=0.12 tau=0.6  class=add  rows=128 cols=128

edge 0 1 xfer 131072 1d
edge 0 2 xfer 131072 1d
edge 1 3 xfer 131072 1d
edge 2 3 xfer 131072 2d     # the south sweep hands back transposed data
"#;

fn main() {
    let g = from_text(PROGRAM).expect("the embedded program must parse");
    println!(
        "loaded `{}`: {} compute nodes, {} edges",
        g.name(),
        g.compute_node_count(),
        g.edge_count()
    );

    // Round-trip check: print the canonical form.
    println!("\ncanonical form:\n{}", to_text(&g));

    let machine = Machine::cm5(16);
    let compiled = compile(&g, machine, &CompileConfig::default());
    println!("{}", compiled.psa.schedule.gantt(&g, 60));
    println!(
        "Phi = {:.3} s, T_psa = {:.3} s; the two sweeps run {}",
        compiled.phi.phi,
        compiled.t_psa,
        {
            let t1 = compiled.psa.schedule.task_for(NodeId(2)).expect("scheduled");
            let t2 = compiled.psa.schedule.task_for(NodeId(3)).expect("scheduled");
            if t1.start < t2.finish && t2.start < t1.finish {
                "concurrently (functional parallelism exploited)"
            } else {
                "serially"
            }
        }
    );

    let truth = TrueMachine::cm5(16);
    let run = run_mpmd(&g, &compiled, &truth);
    let spmd = run_spmd(&g, &truth);
    println!(
        "simulated: MPMD {:.3} s vs SPMD {:.3} s ({:.2}x)",
        run.makespan,
        spmd.makespan,
        spmd.makespan / run.makespan
    );
}
