//! The library on workloads beyond the paper: random layered MDGs of
//! varying shape, compiled and executed end to end. Prints how much the
//! convex+PSA pipeline buys over pure data parallelism as the graphs get
//! wider (more functional parallelism to exploit).
//!
//! Run with: `cargo run --release --example random_workloads`

use paradigm_core::prelude::*;
use paradigm_mdg::stats::MdgStats;
use paradigm_mdg::{random_layered_mdg, RandomMdgConfig};

fn main() {
    let p = 64u32;
    let machine = Machine::cm5(p);
    let truth = TrueMachine::cm5(p);

    println!("random layered MDGs on a {p}-processor simulated CM-5\n");
    println!("  shape        | nodes | inherent par | MPMD run (s) | SPMD run (s) | gain");
    println!("  -------------+-------+--------------+--------------+--------------+------");
    for (label, width) in [("narrow", 1usize), ("medium", 3), ("wide", 6), ("very wide", 10)] {
        let cfg = RandomMdgConfig {
            layers: 4,
            width_min: width,
            width_max: width,
            tau_range: (0.05, 0.5),
            two_d_prob: 0.3,
            ..RandomMdgConfig::default()
        };
        let mut gains = Vec::new();
        let mut nodes = 0;
        let mut par = 0.0;
        for seed in 0..3u64 {
            let g = random_layered_mdg(&cfg, seed);
            let stats = MdgStats::of(&g);
            nodes = g.compute_node_count();
            par = stats.inherent_parallelism();
            let compiled = compile(&g, machine, &CompileConfig::fast());
            let mpmd = run_mpmd(&g, &compiled, &truth);
            let spmd = run_spmd(&g, &truth);
            gains.push((mpmd.makespan, spmd.makespan));
        }
        let mpmd: f64 = gains.iter().map(|g| g.0).sum::<f64>() / gains.len() as f64;
        let spmd: f64 = gains.iter().map(|g| g.1).sum::<f64>() / gains.len() as f64;
        println!(
            "  {:<12} | {:>5} | {:>12.2} | {:>12.4} | {:>12.4} | {:>4.2}x",
            label,
            nodes,
            par,
            mpmd,
            spmd,
            spmd / mpmd
        );
    }
    println!(
        "\nReading: the wider the graph (more inherent functional parallelism), the more\n\
         the mixed-parallelism schedule gains over SPMD — with a narrow chain there is\n\
         nothing to exploit and the two coincide."
    );
}
