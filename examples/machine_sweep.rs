//! Sweep the machine size and the machine *kind* to see where mixed
//! parallelism pays off: the Phi lower bound, the scheduled T_psa, and
//! the SPMD baseline across p = 1..128, on the CM-5 constants and on a
//! synthetic mesh with a non-zero network term.
//!
//! Run with: `cargo run --release --example machine_sweep`

use paradigm_core::prelude::*;
use paradigm_cost::Machine as M;
use paradigm_sched::{serial_schedule, spmd_schedule};

fn sweep(name: &str, make: impl Fn(u32) -> M) {
    let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
    let serial = serial_schedule(&g);
    println!("\n{name}: Complex Matrix Multiply 64x64 (serial time {serial:.4} s)");
    println!("  procs |    Phi (s) |  T_psa (s) |   SPMD (s) | T_psa speedup | SPMD speedup");
    println!("  ------+------------+------------+------------+---------------+-------------");
    let mut prev_gain = 0.0;
    for k in 0..8 {
        let p = 1u32 << k;
        let machine = make(p);
        let compiled = compile(&g, machine, &CompileConfig::fast());
        let (spmd, _) = spmd_schedule(&g, machine);
        println!(
            "  {:>5} | {:>10.4} | {:>10.4} | {:>10.4} | {:>13.2} | {:>12.2}",
            p,
            compiled.phi.phi,
            compiled.t_psa,
            spmd.makespan,
            serial / compiled.t_psa,
            serial / spmd.makespan
        );
        let gain = spmd.makespan / compiled.t_psa;
        if gain > 1.05 && prev_gain <= 1.05 {
            println!("        ^-- crossover: mixed parallelism starts paying off here");
        }
        prev_gain = gain;
    }
}

fn main() {
    sweep("CM-5 constants (t_n = 0)", M::cm5);
    sweep("synthetic mesh (t_n > 0: network delays on edges)", M::synthetic_mesh);
    sweep("Intel Paragon-class constants (illustrative)", M::intel_paragon);
    sweep("IBM SP-1-class constants (illustrative)", M::ibm_sp1);
    println!(
        "\nReading: at small p the machine is the bottleneck and SPMD ~ MPMD; once the\n\
         machine outgrows a single loop's scalability, the schedule runs independent\n\
         loops side by side and T_psa pulls ahead — the paper's central claim."
    );
}
