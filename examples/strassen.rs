//! The paper's second test program: one-level Strassen matrix multiply
//! (128x128). Verifies the algorithm numerically, then walks the full
//! allocation/scheduling pipeline and prints how the seven independent
//! multiplies get spread across the machine.
//!
//! Run with: `cargo run --release --example strassen`

use paradigm_core::prelude::*;
use paradigm_kernels::{strassen_one_level, Matrix};

fn main() {
    let n = 128;

    // Numeric check: the one-level Strassen decomposition (exactly the
    // computation the MDG encodes) equals the naive product.
    let a = Matrix::random(n, n, 11);
    let b = Matrix::random(n, n, 12);
    let strassen = strassen_one_level(&a, &b);
    let naive = a.mul(&b);
    println!(
        "numeric check: one-level Strassen vs naive product, max |diff| = {:.2e}",
        strassen.max_abs_diff(&naive)
    );
    assert!(strassen.approx_eq(&naive, 1e-8));

    let g = strassen_mdg(n, &KernelCostTable::cm5());
    println!(
        "\nMDG: {} compute nodes ({} multiplies, the rest init/add loops), {} edges",
        g.compute_node_count(),
        g.nodes().filter(|(_, nd)| nd.name.starts_with('M')).count(),
        g.edge_count()
    );

    for &p in &[16u32, 32, 64] {
        let machine = Machine::cm5(p);
        let compiled = compile(&g, machine, &CompileConfig::default());
        println!("\n=== {p} processors (PB = {}) ===", compiled.psa.pb);
        // How are the seven multiplies placed?
        let mut mul_rows: Vec<String> = Vec::new();
        for (id, node) in g.nodes() {
            if node.name.starts_with("M") && node.name.contains('*') {
                let task = compiled.psa.schedule.task_for(id).expect("scheduled");
                mul_rows.push(format!(
                    "  {:<12} {:>2} procs  [{:.4}, {:.4}) s",
                    node.name.split(' ').next().unwrap_or("?"),
                    task.procs.len(),
                    task.start,
                    task.finish
                ));
            }
        }
        mul_rows.sort();
        for r in &mul_rows {
            println!("{r}");
        }
        let truth = TrueMachine::cm5(p);
        let mpmd = run_mpmd(&g, &compiled, &truth);
        let spmd = run_spmd(&g, &truth);
        println!(
            "  Phi {:.4} s | T_psa {:.4} s | simulated MPMD {:.4} s | SPMD {:.4} s | gain {:.2}x",
            compiled.phi.phi,
            compiled.t_psa,
            mpmd.makespan,
            spmd.makespan,
            spmd.makespan / mpmd.makespan
        );
    }
}
