//! The complete pipeline from *source code*: write a matrix program in
//! the mini language, let the front end extract the MDG (the paper's
//! Step 1, which its authors left as future work), then allocate,
//! schedule, and execute it.
//!
//! Run with: `cargo run --release --example mini_language`

use paradigm_core::prelude::*;
use paradigm_front::compile_source;

// Two iterations of a damped normal-equations update — a program with a
// transposed use (2D transfer), reductions, and enough independent
// multiplies for functional parallelism to matter.
const SOURCE: &str = "\
program gauss_newton_step
matrix A(128,128), G(128,128), R(128,128), P(128,128)
matrix S1(128,128), S2(128,128), X(128,128)

A  = init()
R  = init()
P  = init()
G  = A' * A        # Gram matrix: transposed use -> 2D transfer
S1 = G * P         # two independent multiplies...
S2 = A * R         # ...that a mixed schedule can overlap
X  = S1 + S2
X  = X - P         # damping update, redefines X
";

fn main() {
    let table = KernelCostTable::cm5();
    let g = compile_source(SOURCE, &table).expect("the embedded program compiles");
    println!(
        "front end extracted `{}`: {} loops, {} dependence edges",
        g.name(),
        g.compute_node_count(),
        g.edges().filter(|(_, e)| !e.transfers.is_empty()).count()
    );
    let two_d = g
        .edges()
        .flat_map(|(_, e)| e.transfers.iter())
        .filter(|t| t.kind == TransferKind::TwoD)
        .count();
    println!("transfers needing a distribution flip (2D): {two_d}\n");

    let p = 32u32;
    let compiled = compile(&g, Machine::cm5(p), &CompileConfig::default());
    println!("{}", compiled.psa.schedule.gantt(&g, 64));
    println!(
        "Phi = {:.4} s, T_psa = {:.4} s ({:+.1}%)",
        compiled.phi.phi,
        compiled.t_psa,
        compiled.deviation_percent()
    );

    let truth = TrueMachine::cm5(p);
    let mpmd = run_mpmd(&g, &compiled, &truth);
    let spmd = run_spmd(&g, &truth);
    println!(
        "simulated: MPMD {:.4} s vs SPMD {:.4} s — mixed parallelism wins {:.2}x",
        mpmd.makespan,
        spmd.makespan,
        spmd.makespan / mpmd.makespan
    );
}
