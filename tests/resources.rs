//! Cross-crate soundness tests for the static resource analyzer: the
//! abstract per-processor peak bound (`analyze_resources`) must dominate
//! the concrete resident-set peak measured by the simulator, on every
//! gallery graph x machine family and on seeded random MDGs. No
//! tolerance games — the static interval is a guarantee, the simulator
//! is the adversary.

use paradigm_analyze::{analyze_resources, check_schedule_memory};
use paradigm_core::prelude::*;
use paradigm_core::{gallery_graph, machine_from_spec, GALLERY_NAMES, MACHINE_SPECS};
use paradigm_mdg::{random_layered_mdg, RandomMdgConfig};
use paradigm_sim::{lower_mpmd, lower_spmd};
use proptest::prelude::*;

/// Slack for the float conversion of exact byte counts: relative 1e-9
/// (same as the analyzer's `MEM_RTOL`) plus half a byte.
fn dominates(static_ub: f64, sim_peak: f64) -> bool {
    sim_peak <= static_ub * (1.0 + 1e-9) + 0.5
}

#[test]
fn static_bound_dominates_simulated_peak_on_gallery() {
    for name in GALLERY_NAMES {
        let g = gallery_graph(name).unwrap_or_else(|| panic!("gallery graph {name}"));
        for spec in MACHINE_SPECS {
            let p = 16u32;
            let machine =
                machine_from_spec(spec, p).unwrap_or_else(|| panic!("machine spec {spec}"));
            let ra = analyze_resources(&g, &machine);
            assert!(ra.feasible, "{name} must fit the default {spec} memory");
            let ub = ra.peak_interval.1;
            let c = compile(&g, machine, &CompileConfig::fast());
            let truth = TrueMachine::cm5(p);
            for prog in [lower_mpmd(&g, &c.psa.schedule), lower_spmd(&g, p)] {
                let sim = simulate(&prog, &truth);
                let peak = sim.peak_resident_bytes();
                assert!(
                    dominates(ub, peak),
                    "{name}/{spec}: simulated peak {peak} exceeds static bound {ub}"
                );
            }
            // The post-schedule sweep is tighter than the pre-schedule
            // interval, never looser.
            let sweep = check_schedule_memory(&g, &machine, &c.psa.schedule);
            assert!(
                dominates(ub, sweep.peak_bytes),
                "{name}/{spec}: sweep peak {} exceeds static bound {ub}",
                sweep.peak_bytes
            );
        }
    }
}

/// A deliberately memory-infeasible setup must be rejected by all three
/// independent layers: the static lint, the certificate checker on a
/// tampered document, and the live schedule auditor.
#[test]
fn memory_infeasible_example_is_rejected_by_all_three_layers() {
    use paradigm_analyze::{
        certificate_json, certify_objective, check_certificate_text, has_errors, memory_lint_set,
        AuditClaims, AuditViolation, ScheduleAuditor,
    };
    use paradigm_mdg::{AmdahlParams, ArrayTransfer, LoopClass, LoopMeta, MdgBuilder};
    use paradigm_solver::{FallbackTier, MdgObjective};

    // Two 8 MiB nodes exchanging an 8 MiB matrix...
    let mut b = MdgBuilder::new("oversized");
    let a = b.compute_with_meta(
        "a",
        AmdahlParams::new(0.1, 1.0),
        LoopMeta::square(LoopClass::MatrixInit, 1024),
    );
    let c = b.compute_with_meta(
        "c",
        AmdahlParams::new(0.1, 1.0),
        LoopMeta::square(LoopClass::MatrixAdd, 1024),
    );
    b.edge(a, c, vec![ArrayTransfer::matrix_1d(1024, 1024)]);
    let g = b.finish().unwrap();
    // ...on a 4-processor machine with 1 MiB per processor.
    let tiny = Machine::cm5(4).with_mem_bytes(1024 * 1024);

    // Layer 1: the static lint proves infeasibility, no schedule needed.
    let diags = memory_lint_set(&tiny).run(&g);
    assert!(has_errors(&diags));
    assert!(diags.iter().any(|d| d.lint == "memory-infeasible"), "{diags:?}");

    // Layer 2: the certificate checker. An honest certificate for the
    // tiny machine records feasible = false and checks clean; flipping
    // the verdict (the tamper) is caught by interval re-derivation.
    let obj = MdgObjective::new(&g, tiny);
    let cert = certify_objective(&obj).expect("objective certifies");
    let doc = certificate_json(&obj, &cert).render();
    assert!(doc.contains("\"feasible\":false"), "analysis must prove infeasibility");
    check_certificate_text(&doc).expect("honest certificate checks clean");
    let tampered = doc.replace("\"feasible\":false", "\"feasible\":true");
    let failure = check_certificate_text(&tampered).expect_err("tampered verdict must be caught");
    assert!(format!("{failure}").contains("memory"), "{failure}");

    // Layer 3: the live auditor. The PSA schedule is fine on the real
    // cm5 memory but the auditor flags it against the tiny machine.
    let res = psa_schedule(&g, tiny, &Allocation::uniform(&g, 2.0), &PsaConfig::default());
    let claims = AuditClaims { phi: res.t_psa, t_psa: res.t_psa, tier: FallbackTier::Primary };
    let auditor = ScheduleAuditor::new();
    let ok =
        auditor.audit(&g, &Machine::cm5(4), &Allocation::uniform(&g, 2.0), &res.schedule, &claims);
    assert!(
        !ok.violations.iter().any(|v| matches!(v, AuditViolation::MemoryOverCapacity { .. })),
        "32 MiB per processor holds this working set: {}",
        ok.render()
    );
    let bad = auditor.audit(&g, &tiny, &Allocation::uniform(&g, 2.0), &res.schedule, &claims);
    assert!(
        bad.violations.iter().any(|v| matches!(v, AuditViolation::MemoryOverCapacity { .. })),
        "auditor must flag the tiny machine: {}",
        bad.render()
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn static_bound_dominates_simulated_peak_on_random_mdgs(
        seed in 0u64..500,
        p_idx in 0usize..3,
    ) {
        let p = [4u32, 8, 16][p_idx];
        let g = random_layered_mdg(&RandomMdgConfig::default(), seed);
        let machine = Machine::cm5(p);
        let ra = analyze_resources(&g, &machine);
        let ub = ra.peak_interval.1;
        let c = compile(&g, machine, &CompileConfig::fast());
        let truth = TrueMachine::cm5(p);
        let mpmd = simulate(&lower_mpmd(&g, &c.psa.schedule), &truth).peak_resident_bytes();
        prop_assert!(dominates(ub, mpmd), "seed {seed} p={p}: mpmd peak {mpmd} > bound {ub}");
        let spmd = simulate(&lower_spmd(&g, p), &truth).peak_resident_bytes();
        prop_assert!(dominates(ub, spmd), "seed {seed} p={p}: spmd peak {spmd} > bound {ub}");
        let sweep = check_schedule_memory(&g, &machine, &c.psa.schedule);
        prop_assert!(
            dominates(ub, sweep.peak_bytes),
            "seed {seed} p={p}: sweep peak {} > bound {ub}", sweep.peak_bytes
        );
    }
}
