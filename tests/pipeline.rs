//! End-to-end integration tests: the full compile-and-run pipeline on
//! the paper's two test programs at the paper's three system sizes.

use paradigm_core::prelude::*;

const SIZES: [u32; 3] = [16, 32, 64];

fn paper_graphs() -> Vec<Mdg> {
    let t = KernelCostTable::cm5();
    vec![complex_matmul_mdg(64, &t), strassen_mdg(128, &t)]
}

#[test]
fn compiled_schedules_validate_everywhere() {
    for g in paper_graphs() {
        for &p in &SIZES {
            let c = compile(&g, Machine::cm5(p), &CompileConfig::fast());
            c.psa
                .schedule
                .validate(&g, &c.psa.weights)
                .unwrap_or_else(|e| panic!("{} p={p}: {e}", g.name()));
        }
    }
}

#[test]
fn t_psa_is_bounded_below_by_phi_and_above_by_theorem3() {
    for g in paper_graphs() {
        for &p in &SIZES {
            let c = compile(&g, Machine::cm5(p), &CompileConfig::fast());
            // 1% slack: the fast solver config's Phi can sit slightly
            // above the true optimum (cf. the paper's negative Table-3
            // CMM entries).
            assert!(
                c.t_psa >= c.phi.phi * (1.0 - 1e-2),
                "{} p={p}: T_psa {} below Phi {}",
                g.name(),
                c.t_psa,
                c.phi.phi
            );
            let bound = paradigm_sched::theorem3_factor(p, c.psa.pb) * c.phi.phi;
            assert!(
                c.t_psa <= bound,
                "{} p={p}: T_psa {} above Theorem-3 bound {}",
                g.name(),
                c.t_psa,
                bound
            );
        }
    }
}

#[test]
fn simulated_mpmd_close_to_prediction() {
    for g in paper_graphs() {
        for &p in &SIZES {
            let c = compile(&g, Machine::cm5(p), &CompileConfig::fast());
            let r = run_mpmd(&g, &c, &TrueMachine::cm5(p));
            let ratio = c.t_psa / r.makespan;
            assert!(
                (0.75..=1.25).contains(&ratio),
                "{} p={p}: predicted/actual = {ratio}",
                g.name()
            );
        }
    }
}

#[test]
fn mpmd_beats_spmd_at_scale() {
    for g in paper_graphs() {
        let p = 64;
        let c = compile(&g, Machine::cm5(p), &CompileConfig::fast());
        let truth = TrueMachine::cm5(p);
        let mpmd = run_mpmd(&g, &c, &truth);
        let spmd = run_spmd(&g, &truth);
        assert!(
            spmd.makespan / mpmd.makespan > 1.2,
            "{}: MPMD gain only {:.2}",
            g.name(),
            spmd.makespan / mpmd.makespan
        );
    }
}

#[test]
fn mpmd_efficiency_beats_spmd_efficiency_at_64() {
    // The mechanism behind the speedup: mixed parallelism turns more of
    // the machine's processor-time into *useful* work. (Note: raw
    // busy-time utilization is the wrong metric here — SPMD keeps every
    // processor "busy" executing the redundant Amdahl-serial fraction of
    // each loop — so we measure efficiency against the true serial work.)
    let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
    let p = 64;
    let c = compile(&g, Machine::cm5(p), &CompileConfig::fast());
    let truth = TrueMachine::cm5(p);
    let mpmd = run_mpmd(&g, &c, &truth);
    let spmd = run_spmd(&g, &truth);
    let serial = paradigm_sched::serial_schedule(&g);
    let eff = |makespan: f64| serial / (p as f64 * makespan);
    assert!(
        eff(mpmd.makespan) > eff(spmd.makespan),
        "MPMD eff {} vs SPMD eff {}",
        eff(mpmd.makespan),
        eff(spmd.makespan)
    );
}

#[test]
fn phi_and_t_psa_decrease_with_machine_size() {
    for g in paper_graphs() {
        let mut prev_phi = f64::INFINITY;
        for &p in &SIZES {
            let c = compile(&g, Machine::cm5(p), &CompileConfig::fast());
            assert!(
                c.phi.phi <= prev_phi * 1.01,
                "{} p={p}: Phi should not grow with machine size",
                g.name()
            );
            prev_phi = c.phi.phi;
        }
    }
}

#[test]
fn deviation_percent_matches_manual_computation() {
    let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
    let c = compile(&g, Machine::cm5(16), &CompileConfig::fast());
    let manual = 100.0 * (c.t_psa - c.phi.phi) / c.phi.phi;
    assert!((c.deviation_percent() - manual).abs() < 1e-12);
}

#[test]
fn fig1_example_full_pipeline_exact() {
    let g = example_fig1_mdg();
    let c = compile(&g, Machine::cm5(4), &CompileConfig::default());
    assert!((c.t_psa - 14.3).abs() < 1e-9);
    let (spmd, _) = spmd_schedule(&g, Machine::cm5(4));
    assert!((spmd.makespan - 15.6).abs() < 1e-9);
}
