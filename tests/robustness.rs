//! Robustness and failure-injection tests: extreme magnitudes,
//! degenerate graphs, pathological machine parameters, and corrupted
//! inputs must produce either correct results or structured errors —
//! never NaNs, hangs, or silent nonsense.

use paradigm_core::prelude::*;
use paradigm_mdg::{from_text, to_text, MdgError};

#[test]
fn extreme_cost_magnitudes_solve_cleanly() {
    // Nanosecond loops next to megasecond loops: 15 orders of magnitude.
    let mut b = MdgBuilder::new("extreme");
    let tiny = b.compute("tiny", AmdahlParams::new(0.01, 1e-9));
    let huge = b.compute("huge", AmdahlParams::new(0.3, 1e6));
    let mid = b.compute("mid", AmdahlParams::new(0.1, 1.0));
    b.edge(tiny, mid, vec![ArrayTransfer::new(8, TransferKind::OneD)]);
    b.edge(huge, mid, vec![ArrayTransfer::new(1 << 30, TransferKind::TwoD)]);
    let g = b.finish().unwrap();
    let c = compile(&g, Machine::cm5(64), &CompileConfig::fast());
    assert!(c.phi.phi.is_finite() && c.phi.phi > 0.0);
    assert!(c.t_psa.is_finite());
    c.psa.schedule.validate(&g, &c.psa.weights).unwrap();
    // The huge serial node dominates everything.
    assert!(c.t_psa >= 0.3 * 1e6);
}

#[test]
fn zero_cost_compute_nodes_schedule() {
    // alpha = 0, tau = 0: a no-op loop between real ones.
    let mut b = MdgBuilder::new("zero");
    let a = b.compute("a", AmdahlParams::new(0.1, 1.0));
    let z = b.compute("noop", AmdahlParams::new(0.0, 0.0));
    let c = b.compute("c", AmdahlParams::new(0.1, 1.0));
    b.edge(a, z, vec![]);
    b.edge(z, c, vec![]);
    let g = b.finish().unwrap();
    let res = compile(&g, Machine::cm5(8), &CompileConfig::fast());
    assert!(res.t_psa.is_finite());
    res.psa.schedule.validate(&g, &res.psa.weights).unwrap();
}

#[test]
fn single_node_graph_full_pipeline() {
    let mut b = MdgBuilder::new("solo");
    b.compute("solo", AmdahlParams::new(0.2, 5.0));
    let g = b.finish().unwrap();
    for p in [1u32, 2, 64] {
        let c = compile(&g, Machine::cm5(p), &CompileConfig::fast());
        let run = run_mpmd(&g, &c, &TrueMachine::cm5(p));
        assert!(run.makespan > 0.0);
        // Amdahl floor: at least alpha * tau.
        assert!(run.makespan >= 0.2 * 5.0 * 0.9);
    }
}

#[test]
fn huge_fan_out_schedules_without_quadratic_blowup() {
    // 300 independent nodes on 4 processors: the PSA must serialize in
    // waves and stay near the area bound.
    let mut b = MdgBuilder::new("fan");
    for i in 0..300 {
        b.compute(format!("w{i}"), AmdahlParams::new(0.0, 0.01));
    }
    let g = b.finish().unwrap();
    let m = Machine::cm5(4);
    let res = psa_schedule(&g, m, &Allocation::uniform(&g, 1.0), &PsaConfig::default());
    res.schedule.validate(&g, &res.weights).unwrap();
    // Area = 3 s over 4 procs = 0.75 s; list scheduling of equal unit
    // tasks is optimal here.
    assert!((res.t_psa - 0.75).abs() < 1e-9, "T_psa = {}", res.t_psa);
}

#[test]
fn deep_chain_simulates_without_stack_issues() {
    let mut b = MdgBuilder::new("deep");
    let mut prev = b.compute("n0", AmdahlParams::new(0.0, 0.001));
    for i in 1..2000 {
        let next = b.compute(format!("n{i}"), AmdahlParams::new(0.0, 0.001));
        b.edge(prev, next, vec![ArrayTransfer::new(64, TransferKind::OneD)]);
        prev = next;
    }
    let g = b.finish().unwrap();
    let m = Machine::cm5(4);
    let res = psa_schedule(&g, m, &Allocation::uniform(&g, 2.0), &PsaConfig::default());
    let prog = paradigm_sim::lower_mpmd(&g, &res.schedule);
    let sim = simulate(&prog, &TrueMachine::cm5(4));
    assert!(sim.makespan.is_finite());
    assert_eq!(sim.messages_sent + sim.local_copies, 1999 * 2); // 2 ranks each... or local
}

#[test]
fn corrupted_mdg_text_never_panics() {
    let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
    let text = to_text(&g);
    // Truncate at every line boundary and at raw byte offsets.
    for i in 0..text.lines().count() {
        let cut: String = text.lines().take(i).collect::<Vec<_>>().join("\n");
        let _ = from_text(&cut); // Result either way; must not panic
    }
    for frac in [0.1, 0.33, 0.5, 0.77, 0.95] {
        let cut: String = text.chars().take((text.len() as f64 * frac) as usize).collect();
        let _ = from_text(&cut);
    }
    // Bit flips in the middle.
    let mut bytes = text.clone().into_bytes();
    let mid = bytes.len() / 2;
    bytes[mid] = b'%';
    if let Ok(s) = String::from_utf8(bytes) {
        let _ = from_text(&s);
    }
}

#[test]
fn builder_rejects_malformed_graphs_with_typed_errors() {
    // Cycle
    let mut b = MdgBuilder::new("cyc");
    let x = b.compute("x", AmdahlParams::new(0.0, 1.0));
    let y = b.compute("y", AmdahlParams::new(0.0, 1.0));
    b.edge(x, y, vec![]);
    b.edge(y, x, vec![]);
    assert!(matches!(b.finish(), Err(MdgError::Cycle(_))));
}

#[test]
fn solver_handles_machine_of_one_processor() {
    let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
    let res = allocate(&g, Machine::cm5(1), &SolverConfig::fast());
    // Only one feasible allocation: everything on 1 processor.
    for (id, _) in g.nodes() {
        assert!((res.alloc.get(id) - 1.0).abs() < 1e-9);
    }
    let psa = psa_schedule(&g, Machine::cm5(1), &res.alloc, &PsaConfig::default());
    psa.schedule.validate(&g, &psa.weights).unwrap();
}

#[test]
fn noise_amplitude_sweep_keeps_simulation_sane() {
    let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
    let c = compile(&g, Machine::cm5(16), &CompileConfig::fast());
    let base = run_mpmd(&g, &c, &TrueMachine::ideal(16)).makespan;
    for noise in [0.0, 0.05, 0.2, 0.5] {
        let truth = paradigm_sim::TrueMachine::custom(
            Machine::cm5(16),
            KernelCostTable::cm5(),
            noise,
            0.0,
            9,
        );
        let m = run_mpmd(&g, &c, &truth).makespan;
        assert!(m.is_finite() && m > 0.0);
        // Even 50% per-site noise stays within a 2x envelope of the
        // noise-free run (noise is multiplicative and zero-mean-ish).
        assert!((m / base) < 2.0 && (m / base) > 0.5, "noise {noise}: ratio {}", m / base);
    }
}

#[test]
fn transfer_of_one_byte_and_of_gigabytes() {
    let m = Machine::cm5(64).xfer;
    for bytes in [1u64, 1 << 30] {
        for kind in [TransferKind::OneD, TransferKind::TwoD] {
            let c = paradigm_cost::transfer_components(kind, bytes, 8.0, 8.0, &m);
            assert!(c.send.is_finite() && c.send > 0.0);
            assert!(c.recv.is_finite() && c.recv > 0.0);
        }
    }
}
