//! Convergence and determinism properties of the consensus-ADMM tier
//! over the built-in gallery (satellite of the `paradigm-admm`
//! subsystem, DESIGN.md §13).
//!
//! Two contracts are pinned here, at the integration level where the
//! gallery, the partitioner, and the dense reference solver all meet:
//!
//! 1. **Quality** — on gallery graphs large enough for a real multi-way
//!    decomposition, the ADMM objective lands within 1% of the dense
//!    single-problem solver's `Phi` (the paper's allocation objective).
//!    ADMM stops on residuals, not a proven optimum, so 1% is the same
//!    slack the schedule auditor grants the tier (`admm_phi_slack`).
//! 2. **Determinism** — partitioning is a pure function of the graph:
//!    repeated runs are bitwise identical (block assignment, cut edge
//!    set, boundary set) for every gallery graph. The whole distributed
//!    tier leans on this — workers and coordinator re-derive structure
//!    independently and must agree.

use paradigm_admm::{partition_mdg, solve_admm_in_process, AdmmConfig, PartitionOptions};
use paradigm_core::{gallery_graph, GALLERY_NAMES};
use paradigm_cost::Machine;
use paradigm_solver::{allocate, SolverConfig};

/// Gallery graphs big enough that `with_blocks(g, 4)` yields a real
/// multi-block consensus problem worth cross-checking against the
/// dense solver. The tiny graphs (fig1, cmm, ...) collapse to one or
/// two blocks and are covered by the unit tests in `paradigm-admm`.
const QUALITY_SET: [&str; 3] = ["random-layered", "fork-join", "strassen-ml"];

#[test]
fn admm_phi_within_one_percent_of_dense_on_gallery() {
    let machine = Machine::cm5(64);
    for name in QUALITY_SET {
        let g = gallery_graph(name).expect("gallery graph");
        let dense = allocate(&g, machine, &SolverConfig::fast());
        let cfg = AdmmConfig::with_blocks(&g, 4);
        let res = solve_admm_in_process(&g, machine, &cfg, 0).expect("admm solve");
        assert!(res.blocks >= 2, "{name}: want a real decomposition, got {} block(s)", res.blocks);
        assert!(
            res.converged,
            "{name}: not converged after {} rounds (r={:.3e} s={:.3e})",
            res.outer_iters, res.primal_residual, res.dual_residual
        );
        assert!(
            res.phi.phi <= dense.phi.phi * 1.01 + 1e-9,
            "{name}: admm phi {} vs dense {} (> 1% off)",
            res.phi.phi,
            dense.phi.phi
        );
    }
}

#[test]
fn partitioning_is_bitwise_deterministic_on_every_gallery_graph() {
    for name in GALLERY_NAMES {
        let g = gallery_graph(name).expect("gallery graph");
        // Both the default options (what `solve_pipeline` uses) and a
        // forced multi-way split (what the tests and CLI use).
        let option_sets = [PartitionOptions::default(), PartitionOptions::with_blocks(&g, 4)];
        for opts in option_sets {
            let a = partition_mdg(&g, &opts);
            let b = partition_mdg(&g, &opts);
            assert_eq!(a.blocks, b.blocks, "{name}: block count differs across runs");
            assert_eq!(a.block_of, b.block_of, "{name}: block assignment differs across runs");
            assert_eq!(a.cut_edges, b.cut_edges, "{name}: cut edge set differs across runs");
            assert_eq!(a.boundary, b.boundary, "{name}: boundary set differs across runs");
            assert_eq!(a.cut_weight, b.cut_weight, "{name}: cut weight differs across runs");
            // Structural invariants while we have a partition in hand:
            // every compute node is in exactly one block, members are
            // sorted, and block sizes sum to the compute node count.
            let total: usize = a.members.iter().map(Vec::len).sum();
            assert_eq!(total, g.compute_node_count(), "{name}: members do not cover the graph");
            for m in &a.members {
                assert!(m.windows(2).all(|w| w[0] < w[1]), "{name}: members not ascending");
            }
        }
    }
}
