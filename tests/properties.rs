//! Cross-crate property-based tests (proptest): for randomized MDG
//! shapes and machine sizes, the pipeline's structural invariants must
//! hold — schedules validate, bounds hold, simulation stays consistent
//! with its program.

use paradigm_core::prelude::*;
use paradigm_mdg::{random_layered_mdg, RandomMdgConfig};
use paradigm_sched::theorem3_factor;
use paradigm_sim::lower_mpmd;
use proptest::prelude::*;

fn arb_cfg() -> impl Strategy<Value = RandomMdgConfig> {
    (1usize..=4, 1usize..=4, 0.0f64..0.8, 0.0f64..1.0).prop_map(
        |(layers, width, edge_prob, two_d_prob)| RandomMdgConfig {
            layers,
            width_min: 1,
            width_max: width.max(1),
            edge_prob,
            two_d_prob,
            ..RandomMdgConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn psa_schedule_always_validates(cfg in arb_cfg(), seed in 0u64..1000, pk in 1u32..=7) {
        let g = random_layered_mdg(&cfg, seed);
        let p = 1u32 << pk; // 2..=128
        let m = Machine::cm5(p);
        let sol = allocate(&g, m, &SolverConfig::fast());
        let res = psa_schedule(&g, m, &sol.alloc, &PsaConfig::default());
        prop_assert!(res.schedule.validate(&g, &res.weights).is_ok());
        // Theorem 3 holds.
        prop_assert!(res.t_psa <= theorem3_factor(p, res.pb) * sol.phi.phi * (1.0 + 1e-9));
        // Phi is a lower bound up to the fast config's convergence
        // slack (the same slack behind the paper's small negative
        // Table-3 entries; the default config tightens it to ~0).
        prop_assert!(res.t_psa >= sol.phi.phi * (1.0 - 1e-2));
    }

    #[test]
    fn allocations_feasible_and_pow2_after_psa(cfg in arb_cfg(), seed in 0u64..1000) {
        let g = random_layered_mdg(&cfg, seed);
        let m = Machine::cm5(32);
        let sol = allocate(&g, m, &SolverConfig::fast());
        for (id, _) in g.nodes() {
            let q = sol.alloc.get(id);
            prop_assert!((1.0..=32.0 + 1e-9).contains(&q), "continuous alloc out of box: {q}");
        }
        let res = psa_schedule(&g, m, &sol.alloc, &PsaConfig::default());
        prop_assert!(res.bounded.is_power_of_two());
        prop_assert!(res.bounded.max() <= res.pb as f64);
    }

    #[test]
    fn simulation_consistent_with_program(cfg in arb_cfg(), seed in 0u64..1000) {
        let g = random_layered_mdg(&cfg, seed);
        let p = 16u32;
        let m = Machine::cm5(p);
        let sol = allocate(&g, m, &SolverConfig::fast());
        let res = psa_schedule(&g, m, &sol.alloc, &PsaConfig::default());
        let prog = lower_mpmd(&g, &res.schedule);
        prop_assert!(prog.validate().is_ok());
        let truth = TrueMachine::cm5(p);
        let sim = simulate(&prog, &truth);
        // Simulated time is positive and within a broad factor of the
        // schedule prediction (truth wobble is small; message-level
        // effects and token costs stay bounded).
        prop_assert!(sim.makespan > 0.0);
        let ratio = sim.makespan / res.t_psa;
        prop_assert!((0.3..=2.0).contains(&ratio), "sim/predicted = {ratio}");
        // Busy time per processor never exceeds the makespan.
        for &b in &sim.proc_busy {
            prop_assert!(b <= sim.makespan + 1e-9);
        }
    }

    #[test]
    fn spmd_and_serial_bracket_mpmd(cfg in arb_cfg(), seed in 0u64..1000) {
        let g = random_layered_mdg(&cfg, seed);
        let p = 32u32;
        let truth = TrueMachine::cm5(p);
        let m = Machine::cm5(p);
        let sol = allocate(&g, m, &SolverConfig::fast());
        let res = psa_schedule(&g, m, &sol.alloc, &PsaConfig::default());
        let mpmd = simulate(&lower_mpmd(&g, &res.schedule), &truth);
        // The simulated makespan can never beat the serial fraction of the
        // heaviest node executed at full machine width (a crude but sound
        // lower bound).
        let min_possible = g
            .nodes()
            .map(|(_, n)| n.cost.alpha * n.cost.tau)
            .fold(0.0_f64, f64::max);
        prop_assert!(mpmd.makespan >= min_possible * 0.9);
    }

    #[test]
    fn phi_monotone_in_machine_size(cfg in arb_cfg(), seed in 0u64..1000) {
        let g = random_layered_mdg(&cfg, seed);
        let phi16 = allocate(&g, Machine::cm5(16), &SolverConfig::fast()).phi.phi;
        let phi64 = allocate(&g, Machine::cm5(64), &SolverConfig::fast()).phi.phi;
        // A bigger machine can always emulate the smaller one's
        // allocation, so Phi must not increase (small solver slack).
        prop_assert!(phi64 <= phi16 * 1.02, "Phi grew with machine size: {phi16} -> {phi64}");
    }
}
