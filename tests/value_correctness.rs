//! End-to-end value correctness: compile a program from source, let the
//! convex solver + PSA pick real processor groups, then execute the
//! program's dataflow through the exact redistribution plans those
//! groups imply — the result must equal the sequential reference
//! element for element. This is the "compiled code computes the right
//! answer" check for the whole pipeline.

use paradigm_core::prelude::*;
use paradigm_front::{compile_source, interpret, interpret_distributed, parse};
use paradigm_mdg::NodeKind;

const SOURCE: &str = "\
program value_check
matrix A(32,32), B(32,32), M1(32,32), M2(32,32), G(32,32), R(32,32)
A  = init()
B  = init()
M1 = A * B
M2 = A' * A
G  = M1 + M2
R  = G - B
";

/// Per-statement group sizes from the PSA's bounded allocation
/// (statement order == compute-node order in the lowered MDG).
fn solver_groups(p: u32) -> Vec<usize> {
    let table = KernelCostTable::cm5();
    let g = compile_source(SOURCE, &table).expect("compiles");
    let compiled = compile(&g, Machine::cm5(p), &CompileConfig::fast());
    g.nodes()
        .filter(|(_, n)| n.kind == NodeKind::Compute)
        .map(|(id, _)| compiled.psa.bounded.as_u32(id) as usize)
        .collect()
}

#[test]
fn solver_chosen_groups_preserve_values() {
    let program = parse(SOURCE).expect("parses");
    let reference = interpret(&program, 1994);
    for p in [4u32, 16, 64] {
        let groups = solver_groups(p);
        assert_eq!(groups.len(), program.stmts.len());
        let dist = interpret_distributed(&program, &groups, 1994);
        for (name, want) in &reference {
            assert!(
                dist[name].approx_eq(want, 1e-9),
                "p={p}: matrix {name} corrupted by redistribution (groups {groups:?})"
            );
        }
    }
}

#[test]
fn adversarial_group_patterns_preserve_values() {
    // Group sizes the solver would never pick (prime, mismatched,
    // oversubscribed) must still move data correctly.
    let program = parse(SOURCE).expect("parses");
    let reference = interpret(&program, 7);
    for groups in [vec![31, 1, 17, 3, 29, 2], vec![1, 32, 1, 32, 1, 32]] {
        let dist = interpret_distributed(&program, &groups, 7);
        for (name, want) in &reference {
            assert!(dist[name].approx_eq(want, 1e-9), "{name} with {groups:?}");
        }
    }
}

#[test]
fn paper_programs_verify_numerically_via_registry() {
    // The TestProgram registry's value check covers the two paper
    // workloads with the real kernels.
    for prog in TestProgram::paper_suite() {
        assert!(prog.verify_numerics(2026) < 1e-8, "{}", prog.name());
    }
}
