//! Pins the paper's concrete numbers: every constant and every exact
//! value the reproduction commits to (Tables 1–2, the Figure-1 example,
//! the PB values of Corollary 1, the structure of Figure 6's MDGs).

use paradigm_core::prelude::*;
use paradigm_mdg::stats::MdgStats;
use paradigm_sched::optimal_pb;

#[test]
fn table1_constants() {
    let t = KernelCostTable::cm5();
    assert_eq!(t.ref_n, 64);
    assert!((t.add.alpha - 0.067).abs() < 1e-12); // 6.7 %
    assert!((t.add.tau - 3.73e-3).abs() < 1e-12); // 3.73 mS
    assert!((t.mul.alpha - 0.121).abs() < 1e-12); // 12.1 %
    assert!((t.mul.tau - 298.47e-3).abs() < 1e-12); // 298.47 mS
}

#[test]
fn table2_constants() {
    let x = TransferParams::cm5();
    assert!((x.t_ss - 777.56e-6).abs() < 1e-12);
    assert!((x.t_ps - 486.98e-9).abs() < 1e-15);
    assert!((x.t_sr - 465.58e-6).abs() < 1e-12);
    assert!((x.t_pr - 426.25e-9).abs() < 1e-15);
    assert_eq!(x.t_n, 0.0);
}

#[test]
fn figure1_example_numbers() {
    let g = example_fig1_mdg();
    let params = g.node(NodeId(1)).cost;
    // Naive: 3 * t(4) = 15.6; mixed: t(4) + t(2) = 5.2 + 9.1 = 14.3.
    assert!((params.cost(4.0) - 5.2).abs() < 1e-9);
    assert!((params.cost(2.0) - 9.1).abs() < 1e-9);
    assert!((3.0 * params.cost(4.0) - 15.6).abs() < 1e-9);
    assert!((params.cost(4.0) + params.cost(2.0) - 14.3).abs() < 1e-9);
}

#[test]
fn corollary1_pb_values_for_paper_sizes() {
    assert_eq!(optimal_pb(4), 4);
    assert_eq!(optimal_pb(16), 8);
    assert_eq!(optimal_pb(32), 16);
    assert_eq!(optimal_pb(64), 32);
}

#[test]
fn figure6_cmm_structure() {
    let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
    let s = MdgStats::of(&g);
    assert_eq!(s.compute_nodes, 10, "4 inits + 4 multiplies + 2 adds");
    assert_eq!(s.depth, 3);
    assert_eq!(*s.class_histogram.get("mul").unwrap(), 4);
    assert_eq!(*s.class_histogram.get("add").unwrap(), 2);
    // All 1D, as the paper states.
    for (_, e) in g.edges() {
        for t in &e.transfers {
            assert_eq!(t.kind, TransferKind::OneD);
        }
    }
}

#[test]
fn figure6_strassen_structure() {
    let g = strassen_mdg(128, &KernelCostTable::cm5());
    let s = MdgStats::of(&g);
    assert_eq!(s.compute_nodes, 33, "8 inits + 10 pre-adds + 7 muls + 8 post-adds");
    assert_eq!(*s.class_histogram.get("mul").unwrap(), 7);
    // Strassen's multiplies operate on 64x64 quadrants of the 128 input.
    let mul_node =
        g.nodes().find(|(_, n)| n.name.starts_with("M1")).map(|(_, n)| n.meta.clone()).unwrap();
    assert_eq!((mul_node.rows, mul_node.cols), (64, 64));
}

#[test]
fn strassen_work_ratio_versus_classic() {
    // One Strassen level does 7 multiplies instead of 8: the serial
    // multiply time must be 7/8 of a classic blocked product's.
    let t = KernelCostTable::cm5();
    let g = strassen_mdg(128, &t);
    let mul_time: f64 = g
        .nodes()
        .filter(|(_, n)| matches!(n.meta.class, paradigm_mdg::LoopClass::MatrixMultiply))
        .map(|(_, n)| n.cost.tau)
        .sum();
    let classic_eight = 8.0 * t.mul.tau; // eight 64x64 quadrant products
    assert!((mul_time / classic_eight - 7.0 / 8.0).abs() < 1e-12);
}

#[test]
fn theorem_factors_at_paper_operating_points() {
    use paradigm_sched::{theorem1_factor, theorem2_factor, theorem3_factor};
    // p = 64, PB = 32 — the pipeline's operating point at full machine.
    assert!((theorem1_factor(64, 32) - (1.0 + 64.0 / 33.0)).abs() < 1e-12);
    assert!((theorem2_factor(64, 32) - 9.0).abs() < 1e-12);
    assert!((theorem3_factor(64, 32) - (1.0 + 64.0 / 33.0) * 9.0).abs() < 1e-12);
}
