//! Integration tests of the Section-5 optimality results across random
//! workloads: Theorem 1 (list scheduling with a processor bound),
//! Theorem 2 (rounding + bounding blow-up), Theorem 3 (their product),
//! and Corollary 1 (the PB choice).

use paradigm_core::prelude::*;
use paradigm_cost::MdgWeights;
use paradigm_mdg::{random_layered_mdg, RandomMdgConfig};
use paradigm_sched::{optimal_pb, theorem1_factor, theorem2_factor, theorem3_factor};

fn random_graphs(count: u64) -> Vec<Mdg> {
    let cfg =
        RandomMdgConfig { layers: 4, width_min: 2, width_max: 5, ..RandomMdgConfig::default() };
    (0..count).map(|s| random_layered_mdg(&cfg, s)).collect()
}

/// Theorem 3 end to end: the full pipeline's T_psa within the proven
/// factor of Phi, on every random instance and machine size.
#[test]
fn theorem3_bound_on_random_workloads() {
    for g in random_graphs(8) {
        for &p in &[8u32, 32, 64] {
            let m = Machine::cm5(p);
            let sol = allocate(&g, m, &SolverConfig::fast());
            let res = psa_schedule(&g, m, &sol.alloc, &PsaConfig::default());
            let bound = theorem3_factor(p, res.pb) * sol.phi.phi;
            assert!(res.t_psa <= bound, "{} p={p}: {} > {}", g.name(), res.t_psa, bound);
        }
    }
}

/// Theorem 1 in isolation: for a *fixed* bounded allocation, the PSA's
/// makespan is within (1 + p/(p-PB+1)) of the best possible schedule of
/// that allocation. We lower-bound the best schedule by
/// max(A_p, C_p) of the same allocation.
#[test]
fn theorem1_bound_against_area_cp_lower_bound() {
    for g in random_graphs(8) {
        let p = 16u32;
        let m = Machine::cm5(p);
        for pb in [2u32, 4, 8] {
            let alloc = Allocation::uniform(&g, pb as f64);
            let res = psa_schedule(
                &g,
                m,
                &alloc,
                &PsaConfig { pb: Some(pb), skip_rounding: true, ..PsaConfig::default() },
            );
            let w = MdgWeights::compute(&g, &m, &res.bounded);
            let lower = w.phi(&g).phi; // <= T_opt^PB
            let factor = theorem1_factor(p, pb);
            assert!(
                res.t_psa <= factor * lower * (1.0 + 1e-9),
                "{} pb={pb}: T_psa {} vs factor {} * lower {}",
                g.name(),
                res.t_psa,
                factor,
                lower
            );
        }
    }
}

/// Theorem 2 in isolation: rounding+bounding inflates max(A_p, C_p) by
/// at most (3/2)^2 (p/PB)^2 relative to the continuous optimum Phi.
#[test]
fn theorem2_bound_on_rounded_allocations() {
    for g in random_graphs(6) {
        for &p in &[16u32, 64] {
            let m = Machine::cm5(p);
            let sol = allocate(&g, m, &SolverConfig::fast());
            let res = psa_schedule(&g, m, &sol.alloc, &PsaConfig::default());
            let bounded_phi = MdgWeights::compute(&g, &m, &res.bounded).phi(&g).phi;
            let factor = theorem2_factor(p, res.pb);
            assert!(
                bounded_phi <= factor * sol.phi.phi * (1.0 + 1e-9),
                "{} p={p}: bounded Phi {} vs {} * {}",
                g.name(),
                bounded_phi,
                factor,
                sol.phi.phi
            );
        }
    }
}

/// The paper's premise behind Theorem 2: the rounded allocation never
/// moves any node by more than a factor of 4/3 up or 2/3 down.
#[test]
fn rounding_factors_stay_in_premise_band() {
    for g in random_graphs(6) {
        let m = Machine::cm5(64);
        let sol = allocate(&g, m, &SolverConfig::fast());
        let res = psa_schedule(&g, m, &sol.alloc, &PsaConfig::default());
        for (id, n) in g.nodes() {
            if n.is_structural() {
                continue;
            }
            let before = sol.alloc.get(id);
            let after = res.rounded.get(id);
            let f = after / before;
            assert!(
                (2.0 / 3.0 - 1e-9..=4.0 / 3.0 + 1e-9).contains(&f),
                "{} node {id}: rounding factor {f}",
                g.name()
            );
        }
    }
}

/// Corollary 1 consistency: the PB the pipeline picks minimizes the
/// Theorem-3 expression among powers of two.
#[test]
fn pipeline_uses_corollary1_pb() {
    for &p in &[4u32, 16, 32, 64, 128] {
        let pb = optimal_pb(p);
        let mut q = 1u32;
        while q <= p {
            assert!(theorem3_factor(p, pb) <= theorem3_factor(p, q) + 1e-12);
            if q > p / 2 {
                break;
            }
            q *= 2;
        }
    }
    // And the PSA actually uses it.
    let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
    let c = compile(&g, Machine::cm5(64), &CompileConfig::fast());
    assert_eq!(c.psa.pb, optimal_pb(64));
}

/// Makespan lower bounds: the PSA can never beat the critical path or
/// the area bound of the allocation it actually scheduled.
#[test]
fn psa_respects_work_and_path_lower_bounds() {
    for g in random_graphs(8) {
        let m = Machine::cm5(32);
        let sol = allocate(&g, m, &SolverConfig::fast());
        let res = psa_schedule(&g, m, &sol.alloc, &PsaConfig::default());
        let (cp, _) = res.weights.critical_path_time(&g);
        let ap = res.weights.average_finish_time();
        assert!(res.t_psa >= cp - 1e-9, "{}: below critical path", g.name());
        assert!(res.t_psa >= ap - 1e-9, "{}: below area bound", g.name());
    }
}
