//! Integration tests of the measure-fit-compile loop: the compiler
//! never sees the ground-truth constants, only regression fits of
//! simulated measurements — and still predicts execution well.

use paradigm_core::calibrate::{calibrate, CalibrationConfig};
use paradigm_core::prelude::*;

#[test]
fn fitted_model_predicts_execution_within_band() {
    let truth = TrueMachine::cm5(64);
    let cal = calibrate(&truth, &CalibrationConfig::default());
    // Build the MDG *from the fitted table* — exactly what the PARADIGM
    // compiler does with its training-set measurements.
    let g = complex_matmul_mdg(64, &cal.kernel_table);
    let machine = Machine::new(64, cal.machine.xfer);
    let compiled = compile(&g, machine, &CompileConfig::fast());
    let run = run_mpmd(&g, &compiled, &truth);
    let ratio = compiled.t_psa / run.makespan;
    assert!(
        (0.8..=1.2).contains(&ratio),
        "fitted-model prediction off: predicted/actual = {ratio}"
    );
}

#[test]
fn fitted_and_nominal_models_agree_on_allocation_shape() {
    let truth = TrueMachine::cm5(64);
    let cal = calibrate(&truth, &CalibrationConfig::default());
    let g_fit = complex_matmul_mdg(64, &cal.kernel_table);
    let g_nom = complex_matmul_mdg(64, &KernelCostTable::cm5());
    let c_fit = compile(&g_fit, Machine::new(64, cal.machine.xfer), &CompileConfig::fast());
    let c_nom = compile(&g_nom, Machine::cm5(64), &CompileConfig::fast());
    // The bounded power-of-two allocations should agree on most nodes —
    // the fits are within a few percent of nominal.
    let mut agree = 0;
    let mut total = 0;
    for (id, n) in g_fit.nodes() {
        if n.is_structural() {
            continue;
        }
        total += 1;
        if c_fit.psa.bounded.as_u32(id) == c_nom.psa.bounded.as_u32(id) {
            agree += 1;
        }
    }
    assert!(agree * 10 >= total * 8, "allocations diverged: only {agree}/{total} nodes agree");
}

#[test]
fn calibration_r2_values_are_high() {
    let truth = TrueMachine::cm5(64);
    let cal = calibrate(&truth, &CalibrationConfig::default());
    for (class, fit) in &cal.kernel_fits {
        assert!(fit.r2 > 0.98, "{class:?}: R^2 = {}", fit.r2);
    }
    assert!(cal.transfer_fit.r2_send > 0.95);
    assert!(cal.transfer_fit.r2_recv > 0.95);
}

#[test]
fn calibration_reproduces_table2_tn_zero() {
    let truth = TrueMachine::cm5(64);
    let cal = calibrate(&truth, &CalibrationConfig::default());
    assert!(cal.machine.xfer.t_n.abs() < 1e-12, "CM-5 t_n must fit to zero");
}

#[test]
fn noisier_machine_still_calibrates() {
    let mut truth = TrueMachine::cm5(64);
    truth.noise = 0.05;
    truth.wobble = 0.04;
    let cal = calibrate(&truth, &CalibrationConfig::default());
    let nominal = KernelCostTable::cm5();
    assert!(
        (cal.kernel_table.mul.tau - nominal.mul.tau).abs() / nominal.mul.tau < 0.15,
        "tau fit degraded too far under 5 % noise"
    );
}
