#!/usr/bin/env bash
# Forbid raw std::sync primitives in the model-checked crates.
#
# Every Mutex/Condvar/RwLock/atomic in paradigm-{serve,admm,solver} must come
# through paradigm_race::sync so `paradigm race` can schedule it: a raw std
# type silently escapes the model checker and its interleavings are never
# explored. Two escapes are allowed:
#   - test modules: everything from the first `#[cfg(test)]` line down is
#     skipped (tests never run under the model scheduler);
#   - lines tagged `raw-sync: allow` for intentional exceptions (e.g. the
#     global counting allocator, which must never hit a scheduling point).
# `std::sync::Arc` and `std::sync::PoisonError` are fine — they are not
# scheduling points. The clippy `disallowed-types` lint (clippy.toml) covers
# the same surface at the type level; this gate additionally catches atomics
# and fully-qualified paths that never name a type in source.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
for f in crates/serve/src/*.rs crates/admm/src/*.rs crates/solver/src/*.rs; do
  hits=$(awk '
    /#\[cfg\(test\)\]/ { exit }
    /raw-sync: allow/ { next }
    /std::sync::(Mutex|Condvar|RwLock|atomic)/ { printf "%s:%d: %s\n", FILENAME, FNR, $0 }
  ' "$f")
  if [ -n "$hits" ]; then
    echo "$hits"
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo
  echo "raw std::sync primitives found in model-checked crates:"
  echo "use paradigm_race::sync (and the plock/pread/pwrite/pwait helpers)"
  echo "instead, or tag a deliberate exception with 'raw-sync: allow'."
else
  echo "forbid-raw-sync: clean"
fi
exit "$status"
