//! # paradigm-sim — a simulated distributed-memory multicomputer
//!
//! The paper's testbed is a 64-node Thinking Machines CM-5; this crate is
//! its stand-in (see DESIGN.md §2 for the substitution argument). It
//! executes *task programs* — MPMD or SPMD lowerings of a scheduled MDG —
//! at the **individual message** level:
//!
//! * every point-to-point message pays a startup plus per-byte cost on
//!   both the sending and the receiving processor;
//! * like the CM-5's receive-side transfer semantics, network bytes are
//!   charged on the receive call (`t_n = 0` stands);
//! * kernel compute times follow the ground-truth machine of [`truth`],
//!   which deliberately deviates from the fitted Amdahl/transfer model by
//!   small systematic perturbations and deterministic noise — so model
//!   fits (paper Tables 1–2), prediction error (Figure 9), and the
//!   MPMD/SPMD comparison (Figure 8) are all non-trivial, exactly as on
//!   real hardware.
//!
//! Module map:
//! * [`truth`] — the ground-truth machine (what "really" happens);
//! * [`program`] — task program representation (tasks, messages);
//! * [`codegen`] — lowering a PSA schedule (MPMD) or an SPMD execution
//!   to a task program, with exact per-pair message synthesis;
//! * [`engine`] — the deterministic program-order sweep that executes a
//!   task program and reports times and per-processor utilization;
//! * [`measure`] — measurement campaigns that drive the regression fits.

pub mod codegen;
pub mod engine;
pub mod engine_event;
pub mod measure;
pub mod program;
pub mod report;
pub mod trace;
pub mod truth;

pub use codegen::{lower_mpmd, lower_spmd};
pub use engine::{simulate, SimResult};
pub use engine_event::simulate_event_driven;
pub use program::{ComputeSpec, SimMessage, SimTask, TaskProgram};
pub use report::{render_breakdown, time_breakdown, TimeBreakdown};
pub use trace::{compare_schedule_vs_sim, render_trace, TaskDiff};
pub use truth::TrueMachine;
