//! The ground-truth machine: what the simulated hardware "really" does.
//!
//! The cost *model* of `paradigm-cost` is an idealization; real machines
//! deviate. This module is the deviation source. It takes nominal
//! parameters (by default the paper's Table 1/2 CM-5 constants) and adds:
//!
//! * a small systematic, processor-count-dependent perturbation to kernel
//!   times (collective overheads the Amdahl form does not capture);
//! * deterministic multiplicative noise on every individual cost, driven
//!   by a hash of (seed, site key) — reproducible, but uncorrelated
//!   between sites like real measurement jitter;
//! * a local-copy discount: a "message" whose global endpoints coincide
//!   is a memory copy, paying per-byte cost only (no startup, factor
//!   [`TrueMachine::LOCAL_COPY_FACTOR`] of the receive per-byte cost).
//!
//! The regression campaign of [`crate::measure`] fits the cost model
//! *against this machine*, reproducing the paper's training-sets
//! methodology; the residual misfit is what Figures 3/5/9 visualize.

use paradigm_cost::{Machine, TransferParams};
use paradigm_mdg::{AmdahlParams, KernelCostTable, LoopClass};

/// Ground-truth machine = nominal parameters + deviation model.
#[derive(Debug, Clone, Copy)]
pub struct TrueMachine {
    /// Nominal machine (processor count + Table-2 transfer constants).
    pub machine: Machine,
    /// Nominal kernel cost table (Table-1 Amdahl constants).
    pub kernels: KernelCostTable,
    /// Relative amplitude of per-site deterministic noise (e.g. `0.01`).
    pub noise: f64,
    /// Relative amplitude of the systematic q-dependent perturbation.
    pub wobble: f64,
    /// Seed for the noise hash.
    pub seed: u64,
}

impl TrueMachine {
    /// Per-byte cost factor for local (same-processor) copies, relative
    /// to the network receive per-byte cost.
    pub const LOCAL_COPY_FACTOR: f64 = 0.25;

    /// The default simulated CM-5 at a given size: paper constants, 1 %
    /// noise, 2 % systematic wobble.
    pub fn cm5(procs: u32) -> Self {
        TrueMachine {
            machine: Machine::cm5(procs),
            kernels: KernelCostTable::cm5(),
            noise: 0.01,
            wobble: 0.02,
            seed: 0xC0FFEE,
        }
    }

    /// A noise-free, wobble-free machine (the model is then exact; used
    /// by tests that need to isolate message-level effects).
    pub fn ideal(procs: u32) -> Self {
        TrueMachine {
            machine: Machine::cm5(procs),
            kernels: KernelCostTable::cm5(),
            noise: 0.0,
            wobble: 0.0,
            seed: 0,
        }
    }

    /// A fully custom ground truth — any nominal machine and kernel
    /// table with chosen deviation amplitudes. Used to exercise paths
    /// the CM-5 constants leave dormant (e.g. `t_n > 0` network delays).
    pub fn custom(
        machine: Machine,
        kernels: KernelCostTable,
        noise: f64,
        wobble: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..1.0).contains(&noise), "noise must be in [0,1)");
        assert!((0.0..1.0).contains(&wobble), "wobble must be in [0,1)");
        TrueMachine { machine, kernels, noise, wobble, seed }
    }

    /// The synthetic mesh machine (non-zero per-byte network delay) with
    /// CM-5-like kernels and mild deviations.
    pub fn mesh(procs: u32) -> Self {
        TrueMachine::custom(
            Machine::synthetic_mesh(procs),
            KernelCostTable::cm5(),
            0.01,
            0.02,
            0x4D455348,
        )
    }

    /// Deterministic noise factor in `[1 - noise, 1 + noise]` for a cost
    /// site identified by `key`.
    pub fn noise_factor(&self, key: u64) -> f64 {
        if self.noise == 0.0 {
            return 1.0;
        }
        let h = splitmix64(self.seed ^ key.wrapping_mul(0x9E3779B97F4A7C15));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 + self.noise * (2.0 * unit - 1.0)
    }

    /// Systematic perturbation factor for a kernel on `q` processors:
    /// `1 + wobble * sin(1.7 ln q + phase)` — smooth, bounded, and not
    /// representable by the Amdahl form (so the fit has real residuals).
    fn wobble_factor(&self, q: f64, class_phase: f64) -> f64 {
        1.0 + self.wobble * (1.7 * q.ln() + class_phase).sin()
    }

    fn class_phase(class: &LoopClass) -> f64 {
        match class {
            LoopClass::MatrixInit => 0.3,
            LoopClass::MatrixAdd => 1.1,
            LoopClass::MatrixMultiply => 2.2,
            LoopClass::Custom(_) => 0.0,
        }
    }

    /// True execution time of one `rows x cols` kernel of `class` on `q`
    /// processors. `site` keys the noise.
    pub fn kernel_time(
        &self,
        class: &LoopClass,
        rows: usize,
        cols: usize,
        q: u32,
        site: u64,
    ) -> f64 {
        let n = ((rows as f64 * cols as f64).sqrt()).round() as usize;
        let params = self.kernels.params_for(class, n.max(1));
        self.explicit_time(params, q, Self::class_phase(class), site)
    }

    /// True execution time for a node with explicit Amdahl parameters
    /// (synthetic workloads).
    pub fn explicit_time(&self, params: AmdahlParams, q: u32, phase: f64, site: u64) -> f64 {
        let base = params.cost(q as f64);
        base * self.wobble_factor(q as f64, phase) * self.noise_factor(site)
    }

    /// True cost on the *sending* processor for one message of `bytes`.
    pub fn send_time(&self, bytes: u64, site: u64) -> f64 {
        let x = &self.machine.xfer;
        (x.t_ss + bytes as f64 * x.t_ps) * self.noise_factor(site ^ 0x5EED)
    }

    /// True cost on the *receiving* processor for one message. Following
    /// the CM-5 semantics the paper describes, the network transfer is
    /// folded into the receive (per-byte receive cost includes it).
    pub fn recv_time(&self, bytes: u64, site: u64) -> f64 {
        let x = &self.machine.xfer;
        (x.t_sr + bytes as f64 * x.t_pr) * self.noise_factor(site ^ 0xFACE)
    }

    /// Network propagation delay between send completion and receive
    /// availability (zero on the CM-5).
    pub fn net_delay(&self, bytes: u64) -> f64 {
        self.machine.xfer.t_n * bytes as f64
    }

    /// True cost of a local memory copy standing in for a same-processor
    /// "message".
    pub fn local_copy_time(&self, bytes: u64, site: u64) -> f64 {
        let x = &self.machine.xfer;
        bytes as f64 * x.t_pr * Self::LOCAL_COPY_FACTOR * self.noise_factor(site ^ 0xD00D)
    }

    /// Transfer constants of the nominal machine.
    pub fn xfer(&self) -> &TransferParams {
        &self.machine.xfer
    }
}

/// SplitMix64 — tiny, high-quality hash for deterministic noise.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let t = TrueMachine::cm5(64);
        for key in 0..1000u64 {
            let f = t.noise_factor(key);
            assert!((0.99..=1.01).contains(&f), "factor {f} out of band");
            assert_eq!(f, t.noise_factor(key), "non-deterministic");
        }
    }

    #[test]
    fn noise_varies_across_sites() {
        let t = TrueMachine::cm5(64);
        let distinct: std::collections::HashSet<u64> =
            (0..100u64).map(|k| t.noise_factor(k).to_bits()).collect();
        assert!(distinct.len() > 90, "noise factors should be spread");
    }

    #[test]
    fn ideal_machine_matches_model_exactly() {
        let t = TrueMachine::ideal(64);
        let model = KernelCostTable::cm5();
        for q in [1u32, 2, 8, 64] {
            let truth = t.kernel_time(&LoopClass::MatrixMultiply, 64, 64, q, 7);
            let predicted = model.params_for(&LoopClass::MatrixMultiply, 64).cost(q as f64);
            assert!((truth - predicted).abs() < 1e-15, "q={q}");
        }
        let x = TransferParams::cm5();
        assert!((t.send_time(32768, 1) - (x.t_ss + 32768.0 * x.t_ps)).abs() < 1e-15);
        assert!((t.recv_time(32768, 1) - (x.t_sr + 32768.0 * x.t_pr)).abs() < 1e-15);
        assert_eq!(t.net_delay(32768), 0.0);
    }

    #[test]
    fn cm5_truth_close_to_model_but_not_exact() {
        let t = TrueMachine::cm5(64);
        let model = KernelCostTable::cm5();
        let mut any_different = false;
        for q in [1u32, 2, 4, 8, 16, 32, 64] {
            let truth = t.kernel_time(&LoopClass::MatrixMultiply, 64, 64, q, q as u64);
            let predicted = model.params_for(&LoopClass::MatrixMultiply, 64).cost(q as f64);
            let rel = (truth - predicted).abs() / predicted;
            assert!(rel < 0.05, "q={q}: rel dev {rel}");
            if rel > 1e-6 {
                any_different = true;
            }
        }
        assert!(any_different, "truth should not equal the model exactly");
    }

    #[test]
    fn local_copy_cheaper_than_message() {
        let t = TrueMachine::cm5(64);
        let copy = t.local_copy_time(32768, 3);
        let msg = t.recv_time(32768, 3) + t.send_time(32768, 3);
        assert!(copy < msg / 3.0);
    }

    #[test]
    fn kernel_time_scales_with_size() {
        let t = TrueMachine::ideal(64);
        let small = t.kernel_time(&LoopClass::MatrixMultiply, 64, 64, 4, 0);
        let big = t.kernel_time(&LoopClass::MatrixMultiply, 128, 128, 4, 0);
        assert!((big / small - 8.0).abs() < 1e-9, "O(n^3) scaling");
    }

    #[test]
    fn rectangular_kernel_uses_geometric_mean_size() {
        let t = TrueMachine::ideal(64);
        let rect = t.kernel_time(&LoopClass::MatrixAdd, 32, 128, 2, 0);
        let square = t.kernel_time(&LoopClass::MatrixAdd, 64, 64, 2, 0);
        assert!((rect - square).abs() < 1e-12);
    }
}
