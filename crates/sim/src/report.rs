//! "Where does the time go" reports: decompose a simulated execution
//! into compute / send / receive / idle processor-time, overall and per
//! loop class. This is the diagnostic a performance engineer reaches for
//! when Figure-8-style speedups disappoint.

use crate::engine::SimResult;
use crate::program::TaskProgram;
use paradigm_mdg::{LoopClass, Mdg};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate processor-time decomposition of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeBreakdown {
    /// Total processor-time rectangle (`p * makespan`).
    pub total_area: f64,
    /// Processor-time in receive phases (messages + local copies).
    pub recv: f64,
    /// Processor-time computing kernels.
    pub compute: f64,
    /// Processor-time in send phases.
    pub send: f64,
    /// Idle processor-time (everything else: waits + unused processors).
    pub idle: f64,
    /// Compute processor-time per loop-class tag, descending.
    pub compute_by_class: Vec<(String, f64)>,
}

impl TimeBreakdown {
    /// Fraction of the machine rectangle spent computing.
    pub fn compute_fraction(&self) -> f64 {
        if self.total_area > 0.0 {
            self.compute / self.total_area
        } else {
            0.0
        }
    }

    /// Fraction spent on communication (send + receive).
    pub fn communication_fraction(&self) -> f64 {
        if self.total_area > 0.0 {
            (self.send + self.recv) / self.total_area
        } else {
            0.0
        }
    }
}

/// Decompose a simulation result over its program and graph.
pub fn time_breakdown(g: &Mdg, prog: &TaskProgram, sim: &SimResult) -> TimeBreakdown {
    let total_area = sim.makespan * prog.procs as f64;
    let mut recv = 0.0;
    let mut compute = 0.0;
    let mut send = 0.0;
    let mut by_class: BTreeMap<String, f64> = BTreeMap::new();
    for (t, task) in prog.tasks.iter().enumerate() {
        let (r, c, s) = sim.task_phase_times[t];
        recv += r;
        compute += c;
        send += s;
        if c > 0.0 {
            let tag = match &g.node(task.node).meta.class {
                LoopClass::Custom(name) => name.clone(),
                other => other.tag().to_string(),
            };
            *by_class.entry(tag).or_insert(0.0) += c;
        }
    }
    let mut compute_by_class: Vec<(String, f64)> = by_class.into_iter().collect();
    compute_by_class
        .sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite times").then(a.0.cmp(&b.0)));
    TimeBreakdown {
        total_area,
        recv,
        compute,
        send,
        idle: (total_area - recv - compute - send).max(0.0),
        compute_by_class,
    }
}

/// Render the breakdown as a small table.
pub fn render_breakdown(b: &TimeBreakdown) -> String {
    let mut s = String::new();
    let pct = |v: f64| 100.0 * v / b.total_area.max(f64::MIN_POSITIVE);
    let _ = writeln!(s, "  processor-time breakdown ({:.4} proc-s total):", b.total_area);
    let _ = writeln!(s, "    compute : {:>9.4} proc-s ({:>5.1}%)", b.compute, pct(b.compute));
    let _ = writeln!(s, "    receive : {:>9.4} proc-s ({:>5.1}%)", b.recv, pct(b.recv));
    let _ = writeln!(s, "    send    : {:>9.4} proc-s ({:>5.1}%)", b.send, pct(b.send));
    let _ = writeln!(s, "    idle    : {:>9.4} proc-s ({:>5.1}%)", b.idle, pct(b.idle));
    let _ = writeln!(s, "  compute time by loop class:");
    for (tag, v) in &b.compute_by_class {
        let _ = writeln!(
            s,
            "    {:<12} {:>9.4} proc-s ({:>5.1}% of compute)",
            tag,
            v,
            100.0 * v / b.compute.max(f64::MIN_POSITIVE)
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::{lower_mpmd, lower_spmd};
    use crate::engine::simulate;
    use crate::truth::TrueMachine;
    use paradigm_cost::{Allocation, Machine};
    use paradigm_mdg::{complex_matmul_mdg, KernelCostTable};
    use paradigm_sched::{psa_schedule, PsaConfig};

    fn setup(p: u32) -> (Mdg, TaskProgram, SimResult) {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(p);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, 4.0), &PsaConfig::default());
        let prog = lower_mpmd(&g, &res.schedule);
        let sim = simulate(&prog, &TrueMachine::cm5(p));
        (g, prog, sim)
    }

    #[test]
    fn breakdown_areas_are_consistent() {
        let (g, prog, sim) = setup(16);
        let b = time_breakdown(&g, &prog, &sim);
        let sum = b.recv + b.compute + b.send + b.idle;
        assert!((sum - b.total_area).abs() < 1e-6 * b.total_area);
        // Phase sums must equal the engine's busy accounting.
        let busy: f64 = sim.proc_busy.iter().sum();
        assert!((b.recv + b.compute + b.send - busy).abs() < 1e-9 * busy.max(1.0));
    }

    #[test]
    fn multiplies_dominate_cmm_compute() {
        let (g, prog, sim) = setup(16);
        let b = time_breakdown(&g, &prog, &sim);
        assert_eq!(b.compute_by_class[0].0, "mul");
        assert!(b.compute_by_class[0].1 / b.compute > 0.9);
        assert!(b.compute_fraction() > 0.3);
    }

    #[test]
    fn spmd_communication_share_is_smaller_than_mpmd() {
        // SPMD's 1D same-group transfers become local copies (cheap),
        // while MPMD moves data between groups: the communication share
        // must reflect that.
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let p = 16u32;
        let truth = TrueMachine::cm5(p);
        let spmd_prog = lower_spmd(&g, p);
        let spmd = simulate(&spmd_prog, &truth);
        let b_spmd = time_breakdown(&g, &spmd_prog, &spmd);
        let (_, mpmd_prog, mpmd) = setup(p);
        let b_mpmd = time_breakdown(&g, &mpmd_prog, &mpmd);
        assert!(b_mpmd.send > b_spmd.send, "MPMD pays real sends");
    }

    #[test]
    fn render_mentions_all_sections() {
        let (g, prog, sim) = setup(8);
        let txt = render_breakdown(&time_breakdown(&g, &prog, &sim));
        for needle in ["compute :", "receive :", "send    :", "idle    :", "loop class"] {
            assert!(txt.contains(needle), "missing {needle}:\n{txt}");
        }
    }

    #[test]
    fn phase_times_agree_across_engines() {
        let (_, prog, sim) = setup(16);
        let sim2 = crate::engine_event::simulate_event_driven(&prog, &TrueMachine::cm5(16));
        for (a, b) in sim.task_phase_times.iter().zip(&sim2.task_phase_times) {
            assert!((a.0 - b.0).abs() < 1e-12);
            assert!((a.1 - b.1).abs() < 1e-12);
            assert!((a.2 - b.2).abs() < 1e-12);
        }
    }
}
