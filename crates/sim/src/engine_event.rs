//! An independent, event-driven reference engine.
//!
//! [`crate::engine::simulate`] exploits the static program order to
//! compute all times in a single sweep. This module executes the same
//! task program the way a real machine would: every processor holds an
//! *instruction stream* (receive / barrier / compute / send slices of
//! its tasks) and an event loop advances whichever processor is ready
//! next. Both engines implement the same semantics, so they must agree
//! **to the bit** — the test-suite and the property tests enforce that,
//! which protects the timing bookkeeping of both implementations (the
//! same trick as the coordinate-descent cross-check in the solver).

use crate::engine::{sweep_residency, SimResult};
use crate::program::{ComputeSpec, TaskProgram};
use crate::truth::TrueMachine;

/// One instruction in a processor's compiled stream.
#[derive(Debug, Clone, PartialEq)]
enum Instr {
    /// Process the given inbound messages (global message indices),
    /// in availability order.
    Recv { task: usize, msgs: Vec<usize> },
    /// Arrive at the task barrier, then execute the kernel.
    BarrierAndCompute { task: usize },
    /// Inject the given outbound messages, in program order.
    Send { task: usize, msgs: Vec<usize> },
}

/// Execute `prog` with the event-driven engine. Produces exactly the
/// same [`SimResult`] as [`crate::engine::simulate`].
///
/// # Panics
/// Panics if the program fails validation (same contract as the sweep
/// engine) or if the instruction streams deadlock (impossible for a
/// validated program).
pub fn simulate_event_driven(prog: &TaskProgram, truth: &TrueMachine) -> SimResult {
    prog.validate().unwrap_or_else(|e| panic!("invalid task program: {e}"));
    let np = prog.procs as usize;
    let nt = prog.tasks.len();

    // Compile per-processor instruction streams in program order.
    let mut order: Vec<usize> = (0..nt).collect();
    order.sort_by_key(|&t| prog.tasks[t].program_order);
    let mut outbound: Vec<Vec<usize>> = vec![Vec::new(); nt];
    let mut inbound: Vec<Vec<usize>> = vec![Vec::new(); nt];
    for (k, m) in prog.messages.iter().enumerate() {
        outbound[m.from_task].push(k);
        inbound[m.to_task].push(k);
    }
    for outs in outbound.iter_mut() {
        outs.sort_by_key(|&k| (prog.tasks[prog.messages[k].to_task].program_order, k));
    }

    let mut streams: Vec<Vec<Instr>> = vec![Vec::new(); np];
    for &t in &order {
        for &pid in &prog.tasks[t].procs {
            let my_in: Vec<usize> =
                inbound[t].iter().copied().filter(|&k| prog.messages[k].dst_proc == pid).collect();
            streams[pid as usize].push(Instr::Recv { task: t, msgs: my_in });
            streams[pid as usize].push(Instr::BarrierAndCompute { task: t });
            let my_out: Vec<usize> =
                outbound[t].iter().copied().filter(|&k| prog.messages[k].src_proc == pid).collect();
            streams[pid as usize].push(Instr::Send { task: t, msgs: my_out });
        }
    }

    // Runtime state.
    let mut pc = vec![0usize; np];
    let mut clock = vec![0.0_f64; np];
    let mut busy = vec![0.0_f64; np];
    let mut avail: Vec<Option<f64>> = vec![None; prog.messages.len()];
    // Barrier bookkeeping: per task, per-rank arrival flags/times and
    // the resolved compute window once everyone arrived.
    let mut arrived: Vec<Vec<Option<f64>>> =
        prog.tasks.iter().map(|t| vec![None; t.procs.len()]).collect();
    let mut compute_window: Vec<Option<(f64, f64)>> = vec![None; nt];
    let mut task_start = vec![0.0_f64; nt];
    let mut task_finish = vec![0.0_f64; nt];
    let mut messages_sent = 0usize;
    let mut local_copies = 0usize;
    let mut task_phase_times = vec![(0.0_f64, 0.0_f64, 0.0_f64); nt];
    // Per task, per rank: [involvement start, involvement end] — the
    // window in which the rank's share of the kernel array is resident.
    // Message residency is reconstructed after the event loop from
    // `task_start` / `task_finish` / `avail`, which this engine records
    // with exactly the sweep engine's values.
    let mut involvement: Vec<Vec<(f64, f64)>> =
        prog.tasks.iter().map(|t| vec![(0.0_f64, 0.0_f64); t.procs.len()]).collect();

    let mut remaining: usize = streams.iter().map(Vec::len).sum();
    while remaining > 0 {
        let mut progressed = false;
        for pid in 0..np {
            let Some(instr) = streams[pid].get(pc[pid]) else { continue };
            match instr {
                Instr::Recv { task, msgs } => {
                    let t_id = *task;
                    // Ready only when all producers have sent.
                    if msgs.iter().any(|&k| avail[k].is_none()) {
                        continue;
                    }
                    let rank = prog.tasks[t_id]
                        .procs
                        .iter()
                        .position(|&x| x as usize == pid)
                        .expect("pid belongs to the task");
                    involvement[t_id][rank].0 = clock[pid];
                    let mut sorted = msgs.clone();
                    sorted.sort_by(|&a, &b| {
                        avail[a]
                            .expect("checked")
                            .partial_cmp(&avail[b].expect("checked"))
                            .expect("finite availability")
                            .then(a.cmp(&b))
                    });
                    let mut now = clock[pid];
                    for k in sorted {
                        let m = &prog.messages[k];
                        let cost = if m.is_local() {
                            local_copies += 1;
                            truth.local_copy_time(m.bytes, k as u64)
                        } else {
                            messages_sent += 1;
                            truth.recv_time(m.bytes, k as u64)
                        };
                        now = now.max(avail[k].expect("checked")) + cost;
                        busy[pid] += cost;
                        task_phase_times[t_id].0 += cost;
                    }
                    clock[pid] = now;
                    pc[pid] += 1;
                    remaining -= 1;
                    progressed = true;
                }
                Instr::BarrierAndCompute { task } => {
                    let t = *task;
                    let q = prog.tasks[t].procs.len();
                    if let Some((start, end)) = compute_window[t] {
                        // Barrier already resolved; join the window.
                        busy[pid] += end - start;
                        task_phase_times[t].1 += end - start;
                        clock[pid] = end;
                        pc[pid] += 1;
                        remaining -= 1;
                        progressed = true;
                    } else {
                        // Record this processor's arrival (once).
                        let rank = prog.tasks[t]
                            .procs
                            .iter()
                            .position(|&x| x as usize == pid)
                            .expect("pid belongs to the task");
                        if arrived[t][rank].is_none() {
                            arrived[t][rank] = Some(clock[pid]);
                        }
                        if arrived[t].iter().all(Option::is_some) {
                            let start = arrived[t]
                                .iter()
                                .map(|a| a.expect("all arrived"))
                                .fold(0.0_f64, f64::max);
                            let comp = match &prog.tasks[t].compute {
                                ComputeSpec::Kernel { class, rows, cols } => {
                                    truth.kernel_time(class, *rows, *cols, q as u32, t as u64)
                                }
                                ComputeSpec::Explicit { params } => {
                                    truth.explicit_time(*params, q as u32, 0.0, t as u64)
                                }
                                ComputeSpec::None => 0.0,
                            };
                            task_start[t] = start;
                            compute_window[t] = Some((start, start + comp));
                            // This processor proceeds immediately.
                            busy[pid] += comp;
                            task_phase_times[t].1 += comp;
                            clock[pid] = start + comp;
                            pc[pid] += 1;
                            remaining -= 1;
                            progressed = true;
                        }
                        // Not everyone arrived: stay blocked.
                    }
                }
                Instr::Send { task, msgs } => {
                    let t = *task;
                    let end_compute = compute_window[t].map(|w| w.1).unwrap_or(clock[pid]);
                    let mut now = clock[pid];
                    for &k in msgs {
                        let m = &prog.messages[k];
                        if m.is_local() {
                            avail[k] = Some(end_compute);
                        } else {
                            let cost = truth.send_time(m.bytes, k as u64);
                            now += cost;
                            busy[pid] += cost;
                            task_phase_times[t].2 += cost;
                            avail[k] = Some(now + truth.net_delay(m.bytes));
                        }
                    }
                    clock[pid] = now;
                    task_finish[t] = task_finish[t].max(now).max(end_compute);
                    let rank = prog.tasks[t]
                        .procs
                        .iter()
                        .position(|&x| x as usize == pid)
                        .expect("pid belongs to the task");
                    involvement[t][rank].1 = now;
                    pc[pid] += 1;
                    remaining -= 1;
                    progressed = true;
                }
            }
        }
        assert!(progressed, "event-driven engine deadlocked — invalid program?");
    }

    let makespan = clock.iter().copied().fold(0.0_f64, f64::max);

    // Resident-set events, reconstructed with the sweep engine's exact
    // semantics: each rank's kernel-array share over its involvement
    // window, every payload on the source from compute start until it
    // has left, and on the destination from arrival until the consumer
    // finishes.
    let mut residency: Vec<(usize, f64, f64)> = Vec::new();
    for (t, task) in prog.tasks.iter().enumerate() {
        let q = task.procs.len();
        if q == 0 {
            continue;
        }
        let local_share = match &task.compute {
            ComputeSpec::Kernel { rows, cols, .. } => {
                (*rows as f64) * (*cols as f64) * 8.0 / q as f64
            }
            _ => 0.0,
        };
        for (i, &pid) in task.procs.iter().enumerate() {
            let (s, e) = involvement[t][i];
            if local_share > 0.0 && e > s {
                residency.push((pid as usize, s, local_share));
                residency.push((pid as usize, e, -local_share));
            }
        }
    }
    for (k, m) in prog.messages.iter().enumerate() {
        let a = avail[k].expect("all messages sent");
        let start = task_start[m.from_task];
        if a > start {
            residency.push((m.src_proc as usize, start, m.bytes as f64));
            residency.push((m.src_proc as usize, a, -(m.bytes as f64)));
        }
        let finish = task_finish[m.to_task];
        if finish > a {
            residency.push((m.dst_proc as usize, a, m.bytes as f64));
            residency.push((m.dst_proc as usize, finish, -(m.bytes as f64)));
        }
    }
    let proc_peak_bytes = sweep_residency(np, residency);

    SimResult {
        makespan,
        task_start,
        task_finish,
        proc_busy: busy,
        messages_sent,
        local_copies,
        task_phase_times,
        proc_peak_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::{lower_mpmd, lower_spmd};
    use crate::engine::simulate;
    use paradigm_cost::{Allocation, Machine};
    use paradigm_mdg::{
        complex_matmul_mdg, example_fig1_mdg, random_layered_mdg, strassen_mdg, KernelCostTable,
        RandomMdgConfig,
    };
    use paradigm_sched::{psa_schedule, PsaConfig};

    fn assert_engines_agree(prog: &TaskProgram, truth: &TrueMachine) {
        let a = simulate(prog, truth);
        let b = simulate_event_driven(prog, truth);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits(), "makespan differs");
        assert_eq!(a.messages_sent, b.messages_sent);
        assert_eq!(a.local_copies, b.local_copies);
        for (x, y) in a.proc_busy.iter().zip(&b.proc_busy) {
            assert!((x - y).abs() < 1e-12, "busy time differs: {x} vs {y}");
        }
        for (i, (x, y)) in a.task_start.iter().zip(&b.task_start).enumerate() {
            assert!((x - y).abs() < 1e-12, "task {i} start differs: {x} vs {y}");
        }
        for (p, (x, y)) in a.proc_peak_bytes.iter().zip(&b.proc_peak_bytes).enumerate() {
            assert!(
                (x - y).abs() <= 1e-9 * (1.0 + x.max(*y)),
                "proc {p} resident peak differs: {x} vs {y}"
            );
        }
    }

    #[test]
    fn engines_agree_on_fig1() {
        let g = example_fig1_mdg();
        let m = Machine::cm5(4);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, 2.0), &PsaConfig::default());
        assert_engines_agree(&lower_mpmd(&g, &res.schedule), &TrueMachine::cm5(4));
    }

    #[test]
    fn engines_agree_on_paper_programs() {
        let table = KernelCostTable::cm5();
        for g in [complex_matmul_mdg(64, &table), strassen_mdg(128, &table)] {
            for p in [16u32, 64] {
                let m = Machine::cm5(p);
                let res = psa_schedule(&g, m, &Allocation::uniform(&g, 8.0), &PsaConfig::default());
                assert_engines_agree(&lower_mpmd(&g, &res.schedule), &TrueMachine::cm5(p));
                assert_engines_agree(&lower_spmd(&g, p), &TrueMachine::cm5(p));
            }
        }
    }

    #[test]
    fn engines_agree_on_random_programs() {
        let cfg = RandomMdgConfig::default();
        for seed in 0..10 {
            let g = random_layered_mdg(&cfg, seed);
            let p = 8u32;
            let m = Machine::cm5(p);
            let res = psa_schedule(&g, m, &Allocation::uniform(&g, 3.0), &PsaConfig::default());
            assert_engines_agree(&lower_mpmd(&g, &res.schedule), &TrueMachine::cm5(p));
        }
    }

    #[test]
    fn engines_agree_on_mesh_machine_with_network_delays() {
        // t_n > 0 exercises the avail = sent + net_delay path in both
        // engines.
        let truth = TrueMachine::mesh(16);
        assert!(truth.net_delay(1024) > 0.0);
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::synthetic_mesh(16);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, 4.0), &PsaConfig::default());
        assert_engines_agree(&lower_mpmd(&g, &res.schedule), &truth);
        // Network delays must strictly lengthen the execution vs the
        // same message pattern with t_n = 0.
        let no_net = TrueMachine::custom(
            Machine::cm5(16),
            KernelCostTable::cm5(),
            truth.noise,
            truth.wobble,
            truth.seed,
        );
        let prog = lower_mpmd(&g, &res.schedule);
        let with = simulate(&prog, &truth).makespan;
        let without = simulate(&prog, &no_net).makespan;
        // (The mesh machine also has different startup costs, so compare
        // only qualitatively: both positive and finite, and the mesh run
        // reflects its cheaper startups + added delays consistently
        // across engines — the bit-exact agreement above is the real
        // assertion. Sanity:)
        assert!(with > 0.0 && without > 0.0);
    }

    #[test]
    fn empty_program() {
        let prog = TaskProgram { procs: 2, tasks: vec![], messages: vec![] };
        let r = simulate_event_driven(&prog, &TrueMachine::ideal(2));
        assert_eq!(r.makespan, 0.0);
    }
}
