//! Task-program representation — the simulator's executable format.
//!
//! A [`TaskProgram`] is what the paper's Step 5 ("create an executable
//! program for each processor") produces: every task knows its processor
//! set, its compute kernel, and the exact point-to-point messages it
//! receives. Per-processor program order is fixed at codegen time (field
//! [`SimTask::program_order`]), exactly like a compiled MPMD binary —
//! runtime timing variations can stretch the execution but never reorder
//! it.

use paradigm_mdg::{AmdahlParams, LoopClass, NodeId};

/// What a task computes.
#[derive(Debug, Clone, PartialEq)]
pub enum ComputeSpec {
    /// A real kernel: timed by the ground-truth machine's kernel model.
    Kernel {
        /// Loop class.
        class: LoopClass,
        /// Row extent.
        rows: usize,
        /// Column extent.
        cols: usize,
    },
    /// A synthetic node with explicit Amdahl parameters.
    Explicit {
        /// The node's nominal parameters.
        params: AmdahlParams,
    },
    /// Structural (START/STOP): zero work, zero processors.
    None,
}

/// One point-to-point message, with **global** processor endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimMessage {
    /// Index of the producing task in [`TaskProgram::tasks`].
    pub from_task: usize,
    /// Index of the consuming task.
    pub to_task: usize,
    /// Global id of the sending processor.
    pub src_proc: u32,
    /// Global id of the receiving processor.
    pub dst_proc: u32,
    /// Payload bytes.
    pub bytes: u64,
}

impl SimMessage {
    /// True if the endpoints coincide — executed as a local memory copy.
    pub fn is_local(&self) -> bool {
        self.src_proc == self.dst_proc
    }
}

/// One task of the program.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTask {
    /// MDG node this task realizes.
    pub node: NodeId,
    /// Display name.
    pub name: String,
    /// Global processor ids this task occupies (empty for structural).
    pub procs: Vec<u32>,
    /// The compute work.
    pub compute: ComputeSpec,
    /// Per-processor program position: tasks sharing a processor execute
    /// in increasing `program_order`. Ties across different processors
    /// are fine.
    pub program_order: usize,
}

/// An executable task program.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskProgram {
    /// Machine size.
    pub procs: u32,
    /// All tasks; `program_order` fields must be consistent with the
    /// message dataflow (producers before consumers).
    pub tasks: Vec<SimTask>,
    /// All messages.
    pub messages: Vec<SimMessage>,
}

impl TaskProgram {
    /// Messages consumed by task `t`.
    pub fn inbound(&self, t: usize) -> impl Iterator<Item = &SimMessage> {
        self.messages.iter().filter(move |m| m.to_task == t)
    }

    /// Messages produced by task `t`.
    pub fn outbound(&self, t: usize) -> impl Iterator<Item = &SimMessage> {
        self.messages.iter().filter(move |m| m.from_task == t)
    }

    /// Validate internal consistency: endpoint processors belong to the
    /// right tasks, program order respects dataflow, processor ids are in
    /// range.
    pub fn validate(&self) -> Result<(), String> {
        for (i, t) in self.tasks.iter().enumerate() {
            for &p in &t.procs {
                if p >= self.procs {
                    return Err(format!("task {i} uses invalid processor {p}"));
                }
            }
            let distinct: std::collections::HashSet<u32> = t.procs.iter().copied().collect();
            if distinct.len() != t.procs.len() {
                return Err(format!("task {i} lists a processor twice"));
            }
        }
        for (k, m) in self.messages.iter().enumerate() {
            let from = self.tasks.get(m.from_task).ok_or(format!("msg {k}: bad from_task"))?;
            let to = self.tasks.get(m.to_task).ok_or(format!("msg {k}: bad to_task"))?;
            if !from.procs.contains(&m.src_proc) {
                return Err(format!("msg {k}: src proc {} not in sender", m.src_proc));
            }
            if !to.procs.contains(&m.dst_proc) {
                return Err(format!("msg {k}: dst proc {} not in receiver", m.dst_proc));
            }
            if from.program_order >= to.program_order {
                return Err(format!(
                    "msg {k}: producer order {} >= consumer order {}",
                    from.program_order, to.program_order
                ));
            }
            if m.bytes == 0 {
                return Err(format!("msg {k}: zero bytes"));
            }
        }
        // Per-processor order keys must be unique (a processor cannot run
        // two tasks at the same program position).
        let mut seen: std::collections::HashSet<(u32, usize)> = std::collections::HashSet::new();
        for t in &self.tasks {
            for &p in &t.procs {
                if !seen.insert((p, t.program_order)) {
                    return Err(format!(
                        "processor {p} has two tasks at program order {}",
                        t.program_order
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_task_program() -> TaskProgram {
        TaskProgram {
            procs: 4,
            tasks: vec![
                SimTask {
                    node: NodeId(1),
                    name: "a".into(),
                    procs: vec![0, 1],
                    compute: ComputeSpec::Explicit { params: AmdahlParams::new(0.1, 1.0) },
                    program_order: 0,
                },
                SimTask {
                    node: NodeId(2),
                    name: "b".into(),
                    procs: vec![2, 3],
                    compute: ComputeSpec::Explicit { params: AmdahlParams::new(0.1, 1.0) },
                    program_order: 1,
                },
            ],
            messages: vec![SimMessage {
                from_task: 0,
                to_task: 1,
                src_proc: 0,
                dst_proc: 2,
                bytes: 1024,
            }],
        }
    }

    #[test]
    fn valid_program_passes() {
        two_task_program().validate().unwrap();
    }

    #[test]
    fn message_from_foreign_processor_rejected() {
        let mut p = two_task_program();
        p.messages[0].src_proc = 3; // belongs to task 1, not task 0
        assert!(p.validate().unwrap_err().contains("src proc"));
    }

    #[test]
    fn order_violation_rejected() {
        let mut p = two_task_program();
        p.tasks[1].program_order = 0;
        let err = p.validate().unwrap_err();
        assert!(err.contains("order"), "{err}");
    }

    #[test]
    fn duplicate_processor_rejected() {
        let mut p = two_task_program();
        p.tasks[0].procs = vec![0, 0];
        assert!(p.validate().unwrap_err().contains("twice"));
    }

    #[test]
    fn local_message_detection() {
        let m = SimMessage { from_task: 0, to_task: 1, src_proc: 3, dst_proc: 3, bytes: 8 };
        assert!(m.is_local());
    }

    #[test]
    fn inbound_outbound_iterators() {
        let p = two_task_program();
        assert_eq!(p.inbound(1).count(), 1);
        assert_eq!(p.outbound(0).count(), 1);
        assert_eq!(p.inbound(0).count(), 0);
    }
}
