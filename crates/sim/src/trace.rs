//! Per-task prediction diagnostics: align a schedule's predicted task
//! times with the simulator's measured ones, node by node. This is the
//! drill-down behind Figure 9 — when the aggregate prediction drifts,
//! the trace shows *which* loops the cost model mispredicted.

use crate::engine::SimResult;
use crate::program::TaskProgram;
use paradigm_mdg::{Mdg, NodeId, NodeKind};
use paradigm_sched::Schedule;
use std::fmt::Write as _;

/// One node's predicted vs measured execution window.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskDiff {
    /// The MDG node.
    pub node: NodeId,
    /// Node name.
    pub name: String,
    /// Processors used.
    pub procs: usize,
    /// Schedule-predicted start.
    pub predicted_start: f64,
    /// Schedule-predicted finish.
    pub predicted_finish: f64,
    /// Simulated compute-phase start.
    pub actual_start: f64,
    /// Simulated finish (end of send phase).
    pub actual_finish: f64,
}

impl TaskDiff {
    /// Relative finish-time error `(predicted - actual) / actual`.
    pub fn finish_error(&self) -> f64 {
        if self.actual_finish == 0.0 {
            0.0
        } else {
            (self.predicted_finish - self.actual_finish) / self.actual_finish
        }
    }
}

/// Align predictions with measurements for every compute node.
///
/// # Panics
/// Panics if the program does not cover every compute node of `g`.
pub fn compare_schedule_vs_sim(
    g: &Mdg,
    schedule: &Schedule,
    prog: &TaskProgram,
    sim: &SimResult,
) -> Vec<TaskDiff> {
    let mut out = Vec::new();
    for (ti, task) in prog.tasks.iter().enumerate() {
        if g.node(task.node).kind != NodeKind::Compute {
            continue;
        }
        let pred = schedule
            .task_for(task.node)
            .unwrap_or_else(|| panic!("node {} missing from schedule", task.node));
        out.push(TaskDiff {
            node: task.node,
            name: task.name.clone(),
            procs: task.procs.len(),
            predicted_start: pred.start,
            predicted_finish: pred.finish,
            actual_start: sim.task_start[ti],
            actual_finish: sim.task_finish[ti],
        });
    }
    out.sort_by(|a, b| {
        a.actual_start.partial_cmp(&b.actual_start).expect("finite times").then(a.node.cmp(&b.node))
    });
    out
}

/// Render the per-task comparison as a table, worst finish error last.
pub fn render_trace(diffs: &[TaskDiff]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "  {:<18} | procs | predicted [s, f)    | actual [s, f)       | finish err",
        "node"
    );
    let _ = writeln!(s, "  {}", "-".repeat(86));
    for d in diffs {
        let _ = writeln!(
            s,
            "  {:<18} | {:>5} | [{:>7.4}, {:>7.4}) | [{:>7.4}, {:>7.4}) | {:>+8.2}%",
            truncate(&d.name, 18),
            d.procs,
            d.predicted_start,
            d.predicted_finish,
            d.actual_start,
            d.actual_finish,
            100.0 * d.finish_error()
        );
    }
    if let Some(worst) = diffs
        .iter()
        .max_by(|a, b| a.finish_error().abs().partial_cmp(&b.finish_error().abs()).expect("finite"))
    {
        let _ = writeln!(
            s,
            "  worst finish-time error: {} ({:+.2}%)",
            worst.name,
            100.0 * worst.finish_error()
        );
    }
    s
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::lower_mpmd;
    use crate::engine::simulate;
    use crate::truth::TrueMachine;
    use paradigm_cost::{Allocation, Machine};
    use paradigm_mdg::{complex_matmul_mdg, KernelCostTable};
    use paradigm_sched::{psa_schedule, PsaConfig};

    fn setup() -> (Mdg, Schedule, TaskProgram, SimResult) {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(16);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, 4.0), &PsaConfig::default());
        let prog = lower_mpmd(&g, &res.schedule);
        let sim = simulate(&prog, &TrueMachine::cm5(16));
        (g, res.schedule, prog, sim)
    }

    #[test]
    fn diff_covers_every_compute_node() {
        let (g, sched, prog, sim) = setup();
        let diffs = compare_schedule_vs_sim(&g, &sched, &prog, &sim);
        assert_eq!(diffs.len(), g.compute_node_count());
    }

    #[test]
    fn errors_are_small_on_calibrated_machine() {
        let (g, sched, prog, sim) = setup();
        let diffs = compare_schedule_vs_sim(&g, &sched, &prog, &sim);
        for d in &diffs {
            assert!(d.finish_error().abs() < 0.30, "{}: finish error {}", d.name, d.finish_error());
        }
    }

    #[test]
    fn diffs_sorted_by_actual_start() {
        let (g, sched, prog, sim) = setup();
        let diffs = compare_schedule_vs_sim(&g, &sched, &prog, &sim);
        for w in diffs.windows(2) {
            assert!(w[0].actual_start <= w[1].actual_start);
        }
    }

    #[test]
    fn render_contains_every_node_and_worst_line() {
        let (g, sched, prog, sim) = setup();
        let diffs = compare_schedule_vs_sim(&g, &sched, &prog, &sim);
        let txt = render_trace(&diffs);
        assert!(txt.contains("worst finish-time error"));
        assert!(txt.lines().count() >= diffs.len() + 2);
    }

    #[test]
    fn truncate_helper() {
        assert_eq!(truncate("short", 10), "short");
        let t = truncate("a very long node name", 8);
        assert!(t.chars().count() <= 8);
        assert!(t.ends_with('…'));
    }
}
