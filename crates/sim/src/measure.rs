//! Measurement campaigns — the "training sets" runs of the paper's
//! Section 4, executed against the simulated machine.
//!
//! * [`measure_processing`] runs a kernel at a sweep of processor counts
//!   and records wall times (feeds `paradigm_cost::regression::fit_amdahl`
//!   — Table 1 / Figure 3);
//! * [`measure_transfers`] executes single redistribution operations
//!   between disjoint processor groups and records the per-component
//!   times (feeds `fit_transfer` — Table 2 / Figure 5).

use crate::codegen::synthesize_transfer_messages;
use crate::truth::TrueMachine;
use paradigm_cost::regression::{ProcessingSample, TransferSample};
use paradigm_mdg::{LoopClass, TransferKind};

/// Measure a kernel's execution time at each processor count in `qs`,
/// `reps` times each (distinct noise sites per repetition).
pub fn measure_processing(
    truth: &TrueMachine,
    class: &LoopClass,
    n: usize,
    qs: &[u32],
    reps: usize,
) -> Vec<ProcessingSample> {
    assert!(reps >= 1);
    let mut out = Vec::with_capacity(qs.len() * reps);
    for (qi, &q) in qs.iter().enumerate() {
        for r in 0..reps {
            let site = (qi * 1009 + r) as u64 ^ 0xBEEF;
            let time = truth.kernel_time(class, n, n, q, site);
            out.push(ProcessingSample { q: q as f64, time });
        }
    }
    out
}

/// Execute one redistribution of `bytes` bytes between a `pi`-processor
/// sending group and a disjoint `pj`-processor receiving group and
/// measure the three cost components, each as the maximum over the
/// processors of its side (the model's per-processor view).
pub fn measure_one_transfer(
    truth: &TrueMachine,
    kind: TransferKind,
    bytes: u64,
    pi: usize,
    pj: usize,
    site: u64,
) -> TransferSample {
    let msgs = synthesize_transfer_messages(bytes, kind, pi, pj);
    let mut send_per = vec![0.0_f64; pi];
    let mut recv_per = vec![0.0_f64; pj];
    let mut net_max = 0.0_f64;
    for (k, &(sr, dr, b)) in msgs.iter().enumerate() {
        let key = site.wrapping_mul(6364136223846793005).wrapping_add(k as u64);
        send_per[sr as usize] += truth.send_time(b, key);
        recv_per[dr as usize] += truth.recv_time(b, key);
        net_max = net_max.max(truth.net_delay(b));
    }
    TransferSample {
        kind,
        bytes,
        pi: pi as f64,
        pj: pj as f64,
        send_time: send_per.iter().copied().fold(0.0, f64::max),
        net_time: net_max,
        recv_time: recv_per.iter().copied().fold(0.0, f64::max),
    }
}

/// A full Table-2 style campaign: both transfer kinds, a size sweep, and
/// a grid of group sizes.
pub fn measure_transfers(
    truth: &TrueMachine,
    sizes: &[u64],
    group_sizes: &[usize],
) -> Vec<TransferSample> {
    let mut out = Vec::new();
    let mut site = 1u64;
    for &kind in &[TransferKind::OneD, TransferKind::TwoD] {
        for &bytes in sizes {
            for &pi in group_sizes {
                for &pj in group_sizes {
                    out.push(measure_one_transfer(truth, kind, bytes, pi, pj, site));
                    site += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_cost::regression::{fit_amdahl, fit_transfer};
    use paradigm_cost::TransferParams;
    use paradigm_mdg::KernelCostTable;

    #[test]
    fn processing_fit_recovers_table1_within_tolerance() {
        let truth = TrueMachine::cm5(64);
        let qs = [1u32, 2, 4, 8, 16, 32, 64];
        for (class, nominal) in [
            (LoopClass::MatrixAdd, KernelCostTable::cm5().add),
            (LoopClass::MatrixMultiply, KernelCostTable::cm5().mul),
        ] {
            let samples = measure_processing(&truth, &class, 64, &qs, 3);
            let fit = fit_amdahl(&samples);
            let alpha_err = (fit.params.alpha - nominal.alpha).abs();
            let tau_rel = (fit.params.tau - nominal.tau).abs() / nominal.tau;
            assert!(alpha_err < 0.03, "{class:?}: alpha {} vs {}", fit.params.alpha, nominal.alpha);
            assert!(tau_rel < 0.05, "{class:?}: tau {} vs {}", fit.params.tau, nominal.tau);
            assert!(fit.r2 > 0.98, "{class:?}: r2 = {}", fit.r2);
        }
    }

    #[test]
    fn transfer_fit_recovers_table2_within_tolerance() {
        let truth = TrueMachine::cm5(64);
        let sizes = [4096u64, 16384, 65536, 262144];
        let groups = [1usize, 2, 4, 8, 16];
        let samples = measure_transfers(&truth, &sizes, &groups);
        let fit = fit_transfer(&samples);
        let nominal = TransferParams::cm5();
        assert!(
            (fit.params.t_ss - nominal.t_ss).abs() / nominal.t_ss < 0.1,
            "t_ss {} vs {}",
            fit.params.t_ss,
            nominal.t_ss
        );
        assert!(
            (fit.params.t_ps - nominal.t_ps).abs() / nominal.t_ps < 0.1,
            "t_ps {} vs {}",
            fit.params.t_ps,
            nominal.t_ps
        );
        assert!(
            (fit.params.t_sr - nominal.t_sr).abs() / nominal.t_sr < 0.1,
            "t_sr {} vs {}",
            fit.params.t_sr,
            nominal.t_sr
        );
        assert!(
            (fit.params.t_pr - nominal.t_pr).abs() / nominal.t_pr < 0.1,
            "t_pr {} vs {}",
            fit.params.t_pr,
            nominal.t_pr
        );
        assert!(fit.params.t_n.abs() < 1e-12, "CM-5 t_n must fit to ~0");
        assert!(fit.r2_send > 0.95 && fit.r2_recv > 0.95);
    }

    #[test]
    fn measured_send_component_close_to_model_eq2() {
        // Noise-free machine: measured max-over-senders send time should
        // match Eq. 2 up to block-partition granularity.
        let truth = TrueMachine::ideal(64);
        let x = TransferParams::cm5();
        let (bytes, pi, pj) = (32768u64, 2usize, 8usize);
        let s = measure_one_transfer(&truth, TransferKind::OneD, bytes, pi, pj, 0);
        let model = (pj as f64 / pi as f64) * x.t_ss + (bytes as f64 / pi as f64) * x.t_ps;
        assert!(
            (s.send_time - model).abs() / model < 0.02,
            "measured {} vs model {}",
            s.send_time,
            model
        );
    }

    #[test]
    fn measured_recv_component_close_to_model_eq3() {
        let truth = TrueMachine::ideal(64);
        let x = TransferParams::cm5();
        let (bytes, pi, pj) = (65536u64, 4usize, 8usize);
        let s = measure_one_transfer(&truth, TransferKind::TwoD, bytes, pi, pj, 0);
        let model = pi as f64 * x.t_sr + (bytes as f64 / pj as f64) * x.t_pr;
        assert!(
            (s.recv_time - model).abs() / model < 0.02,
            "measured {} vs model {}",
            s.recv_time,
            model
        );
    }

    #[test]
    fn repetitions_differ_by_noise_only() {
        let truth = TrueMachine::cm5(64);
        let samples = measure_processing(&truth, &LoopClass::MatrixMultiply, 64, &[8], 5);
        assert_eq!(samples.len(), 5);
        let mean: f64 = samples.iter().map(|s| s.time).sum::<f64>() / 5.0;
        for s in &samples {
            assert!((s.time - mean).abs() / mean < 0.02);
        }
        // Not all identical (noise present).
        assert!(samples.windows(2).any(|w| w[0].time != w[1].time));
    }
}
