//! Lowering scheduled MDGs into executable task programs — the paper's
//! Step 5 ("create an executable program for each processor"; MPMD from
//! the PSA schedule, SPMD with every node on all processors).
//!
//! Message synthesis follows the redistribution model exactly:
//!
//! * **1D** transfers block-partition the payload over the source group
//!   and over the destination group and send each overlap — at most
//!   `p_i + p_j − 1` messages; each source processor issues
//!   `≈ max(p_i, p_j)/p_i` of them, matching Eq. 2's premise;
//! * **2D** transfers send one message per `(src, dst)` pair — the
//!   all-pairs pattern of Eq. 3.
//!
//! Data-less precedence edges between compute nodes get a 1-byte token
//! message so that the simulated program enforces the same ordering the
//! schedule promised (a compiled MPMD program would use an equivalent
//! synchronization).

use crate::program::{ComputeSpec, SimMessage, SimTask, TaskProgram};
use paradigm_kernels::block_ranges;
use paradigm_mdg::{LoopClass, Mdg, NodeId, NodeKind, TransferKind};
use paradigm_sched::Schedule;

/// Synthesize the group-local message set of one array transfer.
/// Returns `(src_rank, dst_rank, bytes)` triples; bytes sum to `bytes`.
pub fn synthesize_transfer_messages(
    bytes: u64,
    kind: TransferKind,
    src_procs: usize,
    dst_procs: usize,
) -> Vec<(u32, u32, u64)> {
    let total = bytes as usize;
    let mut out = Vec::new();
    match kind {
        TransferKind::OneD => {
            let src_ranges = block_ranges(total, src_procs);
            let dst_ranges = block_ranges(total, dst_procs);
            for (i, &(s0, sl)) in src_ranges.iter().enumerate() {
                if sl == 0 {
                    continue;
                }
                for (j, &(d0, dl)) in dst_ranges.iter().enumerate() {
                    let lo = s0.max(d0);
                    let hi = (s0 + sl).min(d0 + dl);
                    if hi > lo {
                        out.push((i as u32, j as u32, (hi - lo) as u64));
                    }
                }
            }
        }
        TransferKind::TwoD => {
            let src_ranges = block_ranges(total, src_procs);
            for (i, &(_, sl)) in src_ranges.iter().enumerate() {
                if sl == 0 {
                    continue;
                }
                for (j, &(_, dl)) in block_ranges(sl, dst_procs).iter().enumerate() {
                    if dl > 0 {
                        out.push((i as u32, j as u32, dl as u64));
                    }
                }
            }
        }
    }
    out
}

/// Compute spec for an MDG node: real kernels keep their class and
/// extent; synthetic nodes (zero extent) carry their Amdahl parameters.
fn compute_spec(g: &Mdg, id: NodeId) -> ComputeSpec {
    let node = g.node(id);
    match node.kind {
        NodeKind::Start | NodeKind::Stop => ComputeSpec::None,
        NodeKind::Compute => {
            let known_kernel = matches!(
                node.meta.class,
                LoopClass::MatrixInit | LoopClass::MatrixAdd | LoopClass::MatrixMultiply
            ) && node.meta.rows > 0
                && node.meta.cols > 0;
            if known_kernel {
                ComputeSpec::Kernel {
                    class: node.meta.class.clone(),
                    rows: node.meta.rows,
                    cols: node.meta.cols,
                }
            } else {
                ComputeSpec::Explicit { params: node.cost }
            }
        }
    }
}

/// Shared lowering core: tasks in the given per-node processor
/// assignment and program order.
fn lower(
    g: &Mdg,
    procs: u32,
    assignment: impl Fn(NodeId) -> Vec<u32>,
    order: &[NodeId],
) -> TaskProgram {
    let n = g.node_count();
    let mut order_of = vec![usize::MAX; n];
    for (pos, &v) in order.iter().enumerate() {
        order_of[v.0] = pos;
    }
    let mut tasks = Vec::with_capacity(n);
    let mut task_of_node = vec![usize::MAX; n];
    for (idx, &v) in order.iter().enumerate() {
        task_of_node[v.0] = idx;
        let mut ps = assignment(v);
        ps.sort_unstable();
        tasks.push(SimTask {
            node: v,
            name: g.node(v).name.clone(),
            procs: ps,
            compute: compute_spec(g, v),
            program_order: idx,
        });
    }

    let mut messages = Vec::new();
    for (_, e) in g.edges() {
        let src_task = task_of_node[e.src];
        let dst_task = task_of_node[e.dst];
        let src_procs = &tasks[src_task].procs;
        let dst_procs = &tasks[dst_task].procs;
        if src_procs.is_empty() || dst_procs.is_empty() {
            continue; // structural endpoint: schedule-order only
        }
        if e.transfers.is_empty() {
            // Token message to enforce the precedence at runtime.
            messages.push(SimMessage {
                from_task: src_task,
                to_task: dst_task,
                src_proc: src_procs[0],
                dst_proc: dst_procs[0],
                bytes: 1,
            });
            continue;
        }
        for t in &e.transfers {
            for (sr, dr, bytes) in
                synthesize_transfer_messages(t.bytes, t.kind, src_procs.len(), dst_procs.len())
            {
                messages.push(SimMessage {
                    from_task: src_task,
                    to_task: dst_task,
                    src_proc: src_procs[sr as usize],
                    dst_proc: dst_procs[dr as usize],
                    bytes,
                });
            }
        }
    }
    TaskProgram { procs, tasks, messages }
}

/// Lower a PSA (or any valid) schedule to an MPMD task program: each node
/// keeps its scheduled processor set; per-processor program order is the
/// schedule's start-time order.
pub fn lower_mpmd(g: &Mdg, schedule: &Schedule) -> TaskProgram {
    let mut order: Vec<NodeId> = schedule.tasks.iter().map(|t| t.node).collect();
    // Stabilize: by (start, node id). Schedule order already satisfies
    // this for the PSA, but be robust to hand-built schedules.
    order.sort_by(|&a, &b| {
        let ta = schedule.task_for(a).expect("every node scheduled");
        let tb = schedule.task_for(b).expect("every node scheduled");
        ta.start.partial_cmp(&tb.start).expect("finite start times").then(a.cmp(&b))
    });
    lower(
        g,
        schedule.machine_procs,
        |v| schedule.task_for(v).expect("every node scheduled").procs.clone(),
        &order,
    )
}

/// Lower the SPMD execution: every compute node on all `procs`
/// processors, topological program order.
pub fn lower_spmd(g: &Mdg, procs: u32) -> TaskProgram {
    let all: Vec<u32> = (0..procs).collect();
    let order: Vec<NodeId> = g.topo_order().to_vec();
    lower(
        g,
        procs,
        |v| if g.node(v).kind == NodeKind::Compute { all.clone() } else { Vec::new() },
        &order,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_cost::{Allocation, Machine};
    use paradigm_mdg::{complex_matmul_mdg, example_fig1_mdg, KernelCostTable};
    use paradigm_sched::{psa_schedule, PsaConfig};

    #[test]
    fn one_d_message_synthesis_matches_model_counts() {
        // p_i = 2 -> p_j = 8: 8 messages, each src proc sends 4.
        let msgs = synthesize_transfer_messages(32768, TransferKind::OneD, 2, 8);
        assert_eq!(msgs.len(), 8);
        let from0 = msgs.iter().filter(|m| m.0 == 0).count();
        assert_eq!(from0, 4);
        let total: u64 = msgs.iter().map(|m| m.2).sum();
        assert_eq!(total, 32768);
    }

    #[test]
    fn one_d_equal_groups_is_rank_to_rank() {
        let msgs = synthesize_transfer_messages(32768, TransferKind::OneD, 4, 4);
        assert_eq!(msgs.len(), 4);
        assert!(msgs.iter().all(|m| m.0 == m.1));
    }

    #[test]
    fn two_d_all_pairs() {
        let msgs = synthesize_transfer_messages(32768, TransferKind::TwoD, 3, 5);
        assert_eq!(msgs.len(), 15);
        let total: u64 = msgs.iter().map(|m| m.2).sum();
        assert_eq!(total, 32768);
    }

    #[test]
    fn mpmd_lowering_is_valid() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(16);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, 4.0), &PsaConfig::default());
        let prog = lower_mpmd(&g, &res.schedule);
        prog.validate().unwrap();
        assert_eq!(prog.tasks.len(), g.node_count());
        assert!(prog.messages.len() >= 12, "every data edge produces messages");
    }

    #[test]
    fn spmd_lowering_is_valid_and_all_local_for_1d() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let prog = lower_spmd(&g, 16);
        prog.validate().unwrap();
        // Same group, same (1D) distribution: every message is local.
        assert!(prog.messages.iter().all(|m| m.is_local()));
    }

    #[test]
    fn token_messages_for_dataless_edges() {
        let g = example_fig1_mdg(); // edges carry no transfers
        let prog = lower_spmd(&g, 4);
        prog.validate().unwrap();
        // Two compute-compute edges -> two token messages.
        assert_eq!(prog.messages.len(), 2);
        assert!(prog.messages.iter().all(|m| m.bytes == 1));
    }

    #[test]
    fn mpmd_tasks_ordered_by_schedule_start() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(16);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, 4.0), &PsaConfig::default());
        let prog = lower_mpmd(&g, &res.schedule);
        for w in prog.tasks.windows(2) {
            let sa = res.schedule.task_for(w[0].node).unwrap().start;
            let sb = res.schedule.task_for(w[1].node).unwrap().start;
            assert!(sa <= sb);
        }
    }
}
