//! The execution engine: a deterministic per-processor program-order
//! sweep.
//!
//! Because an MPMD program's per-processor instruction order is fixed at
//! compile time, execution can be simulated by visiting tasks in program
//! order and advancing per-processor clocks — no speculative event queue
//! is needed, yet the result is exactly what an event-driven simulation
//! of the same static program would produce. Each task executes in three
//! phases:
//!
//! 1. **receive** — every processor of the task processes the messages
//!    addressed to it (startup + per-byte each, in availability order;
//!    local copies pay the reduced memory-copy cost); the CM-5-style
//!    receive-side network transfer means a message only becomes
//!    available after its *send* completed, plus `t_n` network delay
//!    (zero on the CM-5);
//! 2. **compute** — a barrier across the task's processors, then the
//!    ground-truth kernel time;
//! 3. **send** — every processor injects its outgoing messages
//!    (startup + per-byte each) and records their completion times.

use crate::program::{ComputeSpec, TaskProgram};
use crate::truth::TrueMachine;

/// Result of simulating a task program.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Time at which the last processor went idle — the measured
    /// execution time of the program.
    pub makespan: f64,
    /// Per-task compute-phase start (0 for structural tasks).
    pub task_start: Vec<f64>,
    /// Per-task finish (end of send phase, max over the task's procs).
    pub task_finish: Vec<f64>,
    /// Busy seconds per processor (receive + compute + send, no waits).
    pub proc_busy: Vec<f64>,
    /// Number of real (cross-processor) messages executed.
    pub messages_sent: usize,
    /// Number of local copies executed.
    pub local_copies: usize,
    /// Per-task processor-time spent in the three phases
    /// `(receive, compute, send)`, summed over the task's processors.
    pub task_phase_times: Vec<(f64, f64, f64)>,
    /// Peak resident bytes observed on each processor: the even share of
    /// the active task's kernel array, plus every message payload held
    /// (outbound from compute start until the message leaves, inbound
    /// from arrival until the consuming task finishes). This is the
    /// concrete measurement the static analyzer's per-processor upper
    /// bound must dominate.
    pub proc_peak_bytes: Vec<f64>,
}

impl SimResult {
    /// Average processor utilization: busy time over `p * makespan`.
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.proc_busy.iter().sum();
        busy / (self.proc_busy.len() as f64 * self.makespan)
    }

    /// Largest resident set any processor held at any instant.
    pub fn peak_resident_bytes(&self) -> f64 {
        self.proc_peak_bytes.iter().copied().fold(0.0, f64::max)
    }
}

/// Execute `prog` on the ground-truth machine.
///
/// ```
/// use paradigm_mdg::{complex_matmul_mdg, KernelCostTable};
/// use paradigm_sim::{lower_spmd, simulate, TrueMachine};
///
/// let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
/// let prog = lower_spmd(&g, 16);
/// let result = simulate(&prog, &TrueMachine::cm5(16));
/// assert!(result.makespan > 0.0);
/// assert!(result.utilization() <= 1.0);
/// ```
///
/// # Panics
/// Panics if the program fails validation.
pub fn simulate(prog: &TaskProgram, truth: &TrueMachine) -> SimResult {
    prog.validate().unwrap_or_else(|e| panic!("invalid task program: {e}"));
    let nt = prog.tasks.len();
    let np = prog.procs as usize;

    // Visit order: program order (producers always precede consumers).
    let mut order: Vec<usize> = (0..nt).collect();
    order.sort_by_key(|&t| prog.tasks[t].program_order);

    // Pre-index messages by consumer and producer.
    let mut inbound: Vec<Vec<usize>> = vec![Vec::new(); nt];
    let mut outbound: Vec<Vec<usize>> = vec![Vec::new(); nt];
    for (k, m) in prog.messages.iter().enumerate() {
        inbound[m.to_task].push(k);
        outbound[m.from_task].push(k);
    }
    // Senders emit in consumer program order (the order codegen laid the
    // sends out in the per-processor program).
    for outs in outbound.iter_mut() {
        outs.sort_by_key(|&k| (prog.tasks[prog.messages[k].to_task].program_order, k));
    }

    let mut clock = vec![0.0_f64; np];
    let mut busy = vec![0.0_f64; np];
    let mut avail = vec![f64::NAN; prog.messages.len()];
    let mut task_start = vec![0.0_f64; nt];
    let mut task_finish = vec![0.0_f64; nt];
    let mut messages_sent = 0usize;
    let mut local_copies = 0usize;
    let mut task_phase_times = vec![(0.0_f64, 0.0_f64, 0.0_f64); nt];
    // Residency events `(proc, time, ±bytes)` for the per-processor
    // resident-set sweep at the end.
    let mut residency: Vec<(usize, f64, f64)> = Vec::new();

    for &t in &order {
        let task = &prog.tasks[t];
        if task.procs.is_empty() {
            // Structural: nothing to execute.
            continue;
        }
        // Phase 1: receive, per processor, in availability order.
        let mut recv_done = Vec::with_capacity(task.procs.len());
        // Each processor's involvement begins here; the task's share of
        // its kernel array is resident from now until its own sends end.
        let involvement_start: Vec<f64> =
            task.procs.iter().map(|&pid| clock[pid as usize]).collect();
        for &pid in &task.procs {
            let mut msgs: Vec<usize> =
                inbound[t].iter().copied().filter(|&k| prog.messages[k].dst_proc == pid).collect();
            msgs.sort_by(|&a, &b| {
                avail[a].partial_cmp(&avail[b]).expect("finite availability").then(a.cmp(&b))
            });
            let mut now = clock[pid as usize];
            for k in msgs {
                let m = &prog.messages[k];
                debug_assert!(avail[k].is_finite(), "message consumed before production");
                let cost = if m.is_local() {
                    local_copies += 1;
                    truth.local_copy_time(m.bytes, k as u64)
                } else {
                    messages_sent += 1;
                    truth.recv_time(m.bytes, k as u64)
                };
                now = now.max(avail[k]) + cost;
                busy[pid as usize] += cost;
                task_phase_times[t].0 += cost;
            }
            recv_done.push(now);
        }
        // Phase 2: barrier + compute.
        let start = recv_done.iter().copied().fold(0.0_f64, f64::max);
        let q = task.procs.len() as u32;
        let comp = match &task.compute {
            ComputeSpec::Kernel { class, rows, cols } => {
                truth.kernel_time(class, *rows, *cols, q, t as u64)
            }
            ComputeSpec::Explicit { params } => truth.explicit_time(*params, q, 0.0, t as u64),
            ComputeSpec::None => 0.0,
        };
        let end_compute = start + comp;
        task_start[t] = start;
        for &pid in &task.procs {
            busy[pid as usize] += comp;
            task_phase_times[t].1 += comp;
        }
        // Phase 3: send, per processor, in program order of consumers.
        // Every payload is resident on its source processor from compute
        // start until the message has left (its availability instant).
        let local_share = match &task.compute {
            ComputeSpec::Kernel { rows, cols, .. } => {
                (*rows as f64) * (*cols as f64) * 8.0 / q as f64
            }
            _ => 0.0,
        };
        let mut finish = end_compute;
        for (i, &pid) in task.procs.iter().enumerate() {
            let mut now = end_compute;
            for &k in &outbound[t] {
                let m = &prog.messages[k];
                if m.src_proc != pid {
                    continue;
                }
                if m.is_local() {
                    // Local copy: paid on the receive side; available as
                    // soon as the data exists.
                    avail[k] = end_compute;
                } else {
                    let cost = truth.send_time(m.bytes, k as u64);
                    now += cost;
                    busy[pid as usize] += cost;
                    task_phase_times[t].2 += cost;
                    avail[k] = now + truth.net_delay(m.bytes);
                }
                if avail[k] > start {
                    residency.push((pid as usize, start, m.bytes as f64));
                    residency.push((pid as usize, avail[k], -(m.bytes as f64)));
                }
            }
            clock[pid as usize] = now;
            finish = finish.max(now);
            if local_share > 0.0 && now > involvement_start[i] {
                residency.push((pid as usize, involvement_start[i], local_share));
                residency.push((pid as usize, now, -local_share));
            }
        }
        task_finish[t] = finish;
        // Inbound payloads stay resident on their destination processor
        // from arrival until the consuming task is done with them.
        for &k in &inbound[t] {
            let m = &prog.messages[k];
            if finish > avail[k] {
                residency.push((m.dst_proc as usize, avail[k], m.bytes as f64));
                residency.push((m.dst_proc as usize, finish, -(m.bytes as f64)));
            }
        }
    }

    let makespan = clock.iter().copied().fold(0.0_f64, f64::max);
    let proc_peak_bytes = sweep_residency(np, residency);

    SimResult {
        makespan,
        task_start,
        task_finish,
        proc_busy: busy,
        messages_sent,
        local_copies,
        task_phase_times,
        proc_peak_bytes,
    }
}

/// Per-processor resident-set sweep over `(proc, time, ±bytes)` events;
/// releases sort before acquisitions at equal times so back-to-back
/// intervals do not double-count. Shared by both engines so their peak
/// accounting agrees to the bit.
pub(crate) fn sweep_residency(np: usize, events: Vec<(usize, f64, f64)>) -> Vec<f64> {
    let mut per_proc: Vec<Vec<(f64, f64)>> = vec![Vec::new(); np];
    for (p, t, d) in events {
        per_proc[p].push((t, d));
    }
    let mut peaks = vec![0.0_f64; np];
    for (p, evs) in per_proc.iter_mut().enumerate() {
        evs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut resident = 0.0_f64;
        for &(_, d) in evs.iter() {
            resident += d;
            if resident > peaks[p] {
                peaks[p] = resident;
            }
        }
    }
    peaks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::{lower_mpmd, lower_spmd};
    use crate::program::{SimMessage, SimTask};
    use paradigm_cost::{Allocation, Machine};
    use paradigm_mdg::{
        complex_matmul_mdg, example_fig1_mdg, AmdahlParams, KernelCostTable, NodeId,
    };
    use paradigm_sched::{psa_schedule, spmd_schedule, PsaConfig};

    #[test]
    fn empty_program_has_zero_makespan() {
        let prog = TaskProgram { procs: 4, tasks: vec![], messages: vec![] };
        let r = simulate(&prog, &TrueMachine::ideal(4));
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.utilization(), 0.0);
    }

    #[test]
    fn single_task_time_matches_truth() {
        let params = AmdahlParams::new(0.1, 2.0);
        let prog = TaskProgram {
            procs: 4,
            tasks: vec![SimTask {
                node: NodeId(1),
                name: "solo".into(),
                procs: vec![0, 1, 2, 3],
                compute: ComputeSpec::Explicit { params },
                program_order: 0,
            }],
            messages: vec![],
        };
        let truth = TrueMachine::ideal(4);
        let r = simulate(&prog, &truth);
        assert!((r.makespan - params.cost(4.0)).abs() < 1e-12);
        assert!((r.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn message_costs_appear_on_both_sides() {
        let params = AmdahlParams::new(0.0, 1.0);
        let task = |node: usize, procs: Vec<u32>, ord: usize| SimTask {
            node: NodeId(node),
            name: format!("t{node}"),
            procs,
            compute: ComputeSpec::Explicit { params },
            program_order: ord,
        };
        let prog = TaskProgram {
            procs: 2,
            tasks: vec![task(1, vec![0], 0), task(2, vec![1], 1)],
            messages: vec![SimMessage {
                from_task: 0,
                to_task: 1,
                src_proc: 0,
                dst_proc: 1,
                bytes: 32768,
            }],
        };
        let truth = TrueMachine::ideal(2);
        let r = simulate(&prog, &truth);
        // t1 computes 1s, sends (t_ss + L t_ps); t2 receives then computes.
        let expect = 1.0 + truth.send_time(32768, 0) + truth.recv_time(32768, 0) + 1.0;
        assert!((r.makespan - expect).abs() < 1e-12, "{} vs {expect}", r.makespan);
        assert_eq!(r.messages_sent, 1);
        assert_eq!(r.local_copies, 0);
    }

    #[test]
    fn local_copy_is_cheap_and_ordering_preserving() {
        let params = AmdahlParams::new(0.0, 1.0);
        let task = |node: usize, ord: usize| SimTask {
            node: NodeId(node),
            name: format!("t{node}"),
            procs: vec![0],
            compute: ComputeSpec::Explicit { params },
            program_order: ord,
        };
        let prog = TaskProgram {
            procs: 1,
            tasks: vec![task(1, 0), task(2, 1)],
            messages: vec![SimMessage {
                from_task: 0,
                to_task: 1,
                src_proc: 0,
                dst_proc: 0,
                bytes: 32768,
            }],
        };
        let truth = TrueMachine::ideal(1);
        let r = simulate(&prog, &truth);
        let copy = truth.local_copy_time(32768, 0);
        assert!((r.makespan - (2.0 + copy)).abs() < 1e-12);
        assert_eq!(r.local_copies, 1);
    }

    #[test]
    fn parallel_tasks_overlap_in_time() {
        let params = AmdahlParams::new(0.0, 1.0);
        let task = |node: usize, procs: Vec<u32>, ord: usize| SimTask {
            node: NodeId(node),
            name: format!("t{node}"),
            procs,
            compute: ComputeSpec::Explicit { params },
            program_order: ord,
        };
        let prog = TaskProgram {
            procs: 2,
            tasks: vec![task(1, vec![0], 0), task(2, vec![1], 1)],
            messages: vec![],
        };
        let r = simulate(&prog, &TrueMachine::ideal(2));
        // Independent tasks on different processors: both finish at 1s.
        assert!((r.makespan - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig1_mpmd_simulation_close_to_schedule_prediction() {
        let g = example_fig1_mdg();
        let m = Machine::cm5(4);
        let mut alloc = Allocation::uniform(&g, 1.0);
        alloc.set(NodeId(1), 4.0);
        alloc.set(NodeId(2), 2.0);
        alloc.set(NodeId(3), 2.0);
        let res = psa_schedule(&g, m, &alloc, &PsaConfig::default());
        let prog = lower_mpmd(&g, &res.schedule);
        let r = simulate(&prog, &TrueMachine::cm5(4));
        // Truth wobble/noise is a few percent; the token messages are
        // negligible. Predicted 14.3 s.
        let rel = (r.makespan - res.t_psa).abs() / res.t_psa;
        assert!(rel < 0.05, "simulated {} vs predicted {}", r.makespan, res.t_psa);
    }

    #[test]
    fn cmm_spmd_simulation_close_to_spmd_prediction() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(16);
        let (sched, _w) = spmd_schedule(&g, m);
        let prog = lower_spmd(&g, 16);
        let r = simulate(&prog, &TrueMachine::cm5(16));
        // SPMD's 1D transfers all become local copies, which the model
        // charges as full messages — the simulation should come in at or
        // below the prediction, within a modest band.
        assert!(r.makespan <= sched.makespan * 1.05, "{} vs {}", r.makespan, sched.makespan);
        assert!(r.makespan >= sched.makespan * 0.5, "{} vs {}", r.makespan, sched.makespan);
    }

    #[test]
    fn mpmd_beats_spmd_in_simulation_cmm64() {
        // The headline claim (Figure 8), at the simulator level.
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let p = 64u32;
        let m = Machine::cm5(p);
        let sol = paradigm_solver::allocate(&g, m, &paradigm_solver::SolverConfig::fast());
        let res = psa_schedule(&g, m, &sol.alloc, &PsaConfig::default());
        let truth = TrueMachine::cm5(p);
        let mpmd = simulate(&lower_mpmd(&g, &res.schedule), &truth);
        let spmd = simulate(&lower_spmd(&g, p), &truth);
        assert!(
            mpmd.makespan < spmd.makespan,
            "MPMD {} should beat SPMD {}",
            mpmd.makespan,
            spmd.makespan
        );
    }

    #[test]
    fn resident_set_accounting_tracks_kernel_arrays_and_messages() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(16);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, 4.0), &PsaConfig::default());
        let r = simulate(&lower_mpmd(&g, &res.schedule), &TrueMachine::cm5(16));
        assert_eq!(r.proc_peak_bytes.len(), 16);
        // Every 64x64 kernel task holds at least its share of one 32 KiB
        // array on each of its 4 processors.
        assert!(r.peak_resident_bytes() >= 32768.0 / 4.0, "{}", r.peak_resident_bytes());
        // And nothing can exceed all arrays + all payloads at once.
        let all_bytes: u64 = paradigm_mdg::total_comm_bytes(&g)
            + g.nodes().map(|(_, n)| n.meta.rows as u64 * n.meta.cols as u64 * 8).sum::<u64>();
        assert!(r.peak_resident_bytes() <= all_bytes as f64);
    }

    #[test]
    fn empty_program_has_zero_resident_peak() {
        let prog = TaskProgram { procs: 2, tasks: vec![], messages: vec![] };
        let r = simulate(&prog, &TrueMachine::ideal(2));
        assert_eq!(r.peak_resident_bytes(), 0.0);
    }

    #[test]
    fn busy_time_never_exceeds_makespan_per_proc() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let prog = lower_spmd(&g, 8);
        let r = simulate(&prog, &TrueMachine::cm5(8));
        for (pid, &b) in r.proc_busy.iter().enumerate() {
            assert!(b <= r.makespan + 1e-9, "proc {pid} busy {b} > makespan {}", r.makespan);
        }
        assert!(r.utilization() > 0.0 && r.utilization() <= 1.0);
    }
}
