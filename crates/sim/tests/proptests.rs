//! Property-based tests of the simulator: program validity after
//! lowering, timing sanity, conservation of message bytes, and
//! SPMD/MPMD relationships, over random MDGs.

use paradigm_cost::{Allocation, Machine};
use paradigm_mdg::{random_layered_mdg, RandomMdgConfig};
use paradigm_sched::{psa_schedule, PsaConfig};
use paradigm_sim::codegen::synthesize_transfer_messages;
use paradigm_sim::{lower_mpmd, lower_spmd, simulate, TrueMachine};
use proptest::prelude::*;

fn arb_cfg() -> impl Strategy<Value = RandomMdgConfig> {
    (1usize..=4, 1usize..=4, 0.0f64..0.8, 0.0f64..1.0).prop_map(
        |(layers, width, edge_prob, two_d_prob)| RandomMdgConfig {
            layers,
            width_min: 1,
            width_max: width,
            edge_prob,
            two_d_prob,
            ..RandomMdgConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn transfer_synthesis_conserves_bytes(
        bytes in 1u64..5_000_000,
        pi in 1usize..33,
        pj in 1usize..33,
        two_d in any::<bool>(),
    ) {
        let kind = if two_d {
            paradigm_mdg::TransferKind::TwoD
        } else {
            paradigm_mdg::TransferKind::OneD
        };
        let msgs = synthesize_transfer_messages(bytes, kind, pi, pj);
        let total: u64 = msgs.iter().map(|m| m.2).sum();
        prop_assert_eq!(total, bytes);
        for &(s, d, b) in &msgs {
            prop_assert!((s as usize) < pi && (d as usize) < pj);
            prop_assert!(b > 0);
        }
        if two_d {
            prop_assert!(msgs.len() <= pi * pj);
        } else {
            prop_assert!(msgs.len() < pi + pj);
        }
    }

    #[test]
    fn lowered_programs_always_validate(cfg in arb_cfg(), seed in 0u64..3000, pk in 0u32..=6, q in 1.0f64..32.0) {
        let g = random_layered_mdg(&cfg, seed);
        let p = 1u32 << pk;
        let m = Machine::cm5(p);
        let alloc = Allocation::uniform(&g, q.min(p as f64));
        let res = psa_schedule(&g, m, &alloc, &PsaConfig::default());
        let mpmd = lower_mpmd(&g, &res.schedule);
        prop_assert!(mpmd.validate().is_ok());
        let spmd = lower_spmd(&g, p);
        prop_assert!(spmd.validate().is_ok());
    }

    #[test]
    fn simulation_is_deterministic(cfg in arb_cfg(), seed in 0u64..3000) {
        let g = random_layered_mdg(&cfg, seed);
        let p = 8u32;
        let res = psa_schedule(&g, Machine::cm5(p), &Allocation::uniform(&g, 2.0), &PsaConfig::default());
        let prog = lower_mpmd(&g, &res.schedule);
        let truth = TrueMachine::cm5(p);
        let a = simulate(&prog, &truth);
        let b = simulate(&prog, &truth);
        prop_assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        prop_assert_eq!(a.messages_sent, b.messages_sent);
    }

    #[test]
    fn noise_free_mpmd_close_to_schedule(cfg in arb_cfg(), seed in 0u64..3000) {
        // On the ideal machine (no noise/wobble), differences between
        // the simulated run and the schedule prediction come only from
        // message-level granularity, local-copy discounts, and token
        // messages — all bounded effects.
        let g = random_layered_mdg(&cfg, seed);
        let p = 8u32;
        let m = Machine::cm5(p);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, 4.0), &PsaConfig::default());
        let prog = lower_mpmd(&g, &res.schedule);
        let sim = simulate(&prog, &TrueMachine::ideal(p));
        let ratio = sim.makespan / res.t_psa;
        prop_assert!((0.4..=1.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn task_finishes_monotone_with_messages(cfg in arb_cfg(), seed in 0u64..3000) {
        let g = random_layered_mdg(&cfg, seed);
        let p = 8u32;
        let res = psa_schedule(&g, Machine::cm5(p), &Allocation::uniform(&g, 2.0), &PsaConfig::default());
        let prog = lower_mpmd(&g, &res.schedule);
        let sim = simulate(&prog, &TrueMachine::cm5(p));
        for msg in &prog.messages {
            // A consumer's compute start can never precede its producer's
            // compute start (transitively enforced by the message).
            prop_assert!(
                sim.task_start[msg.to_task] >= sim.task_start[msg.from_task] - 1e-12
            );
        }
    }

    #[test]
    fn sweep_and_event_engines_agree_bit_exactly(cfg in arb_cfg(), seed in 0u64..3000, pk in 0u32..=5) {
        let g = random_layered_mdg(&cfg, seed);
        let p = 1u32 << pk;
        let m = Machine::cm5(p);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, (p as f64 / 2.0).max(1.0)), &PsaConfig::default());
        let prog = lower_mpmd(&g, &res.schedule);
        let truth = TrueMachine::cm5(p);
        let a = simulate(&prog, &truth);
        let b = paradigm_sim::simulate_event_driven(&prog, &truth);
        prop_assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        prop_assert_eq!(a.messages_sent, b.messages_sent);
        prop_assert_eq!(a.local_copies, b.local_copies);
        for (x, y) in a.task_finish.iter().zip(&b.task_finish) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn makespan_bounds_all_task_finishes(cfg in arb_cfg(), seed in 0u64..3000) {
        let g = random_layered_mdg(&cfg, seed);
        let p = 16u32;
        let res = psa_schedule(&g, Machine::cm5(p), &Allocation::uniform(&g, 4.0), &PsaConfig::default());
        let prog = lower_mpmd(&g, &res.schedule);
        let sim = simulate(&prog, &TrueMachine::cm5(p));
        for &f in &sim.task_finish {
            prop_assert!(f <= sim.makespan + 1e-12);
        }
    }
}
