//! Asserts that ADMM block solves do not allocate per inner iteration:
//! with a warm [`paradigm_solver::BatchWorkspace`], the heap-allocation
//! count of [`paradigm_admm::solve_block_job`] is a per-call constant
//! (objective compilation, local buffers) independent of how many
//! gradient iterations or speculative line-search rounds run.
//!
//! This file deliberately contains a single `#[test]` — the counter is
//! process-global, and a second test running on a sibling thread would
//! pollute the delta.

use paradigm_admm::{
    build_block_problem, global_sweeps, partition_mdg, solve_block_job, InnerConfig,
    PartitionOptions,
};
use paradigm_cost::Machine;
use paradigm_mdg::fork_join_mdg;
use paradigm_solver::{allocation_count, BatchWorkspace, CountingAllocator, MdgObjective};
use std::collections::BTreeMap;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn block_solve_allocations_do_not_scale_with_iterations() {
    let g = fork_join_mdg(4, 8, 4);
    let machine = Machine::cm5(32);
    let obj = MdgObjective::new(&g, machine);
    let ub = obj.x_upper();
    let part = partition_mdg(&g, &PartitionOptions::with_blocks(&g, 2));
    let mut x = vec![0.0_f64; g.node_count()];
    for (id, node) in g.nodes() {
        if !node.is_structural() {
            x[id.0] = (0.21 * (id.0 % 5) as f64).min(ub);
        }
    }
    let sw = global_sweeps(&obj, &x);
    let duals = BTreeMap::new();

    let job_with = |iters: usize, exact: usize| {
        let inner = InnerConfig {
            iters_per_stage: iters,
            exact_iters: exact,
            rel_tol: 0.0,
            ..InnerConfig::default()
        };
        build_block_problem(&g, &machine, &part, 0, &sw, &x, &duals, 1.0, &inner).0
    };
    let small_job = job_with(2, 1);
    let big_job = job_with(30, 15);

    let mut bw = BatchWorkspace::new();
    // Warm-up sizes the batched speculation buffers and both scratches.
    let warm = solve_block_job(&big_job, &mut bw).expect("warm-up solve");
    assert!(warm.iters > 0);

    let before = allocation_count();
    let small = solve_block_job(&small_job, &mut bw).expect("small solve");
    let small_allocs = allocation_count() - before;

    let before = allocation_count();
    let big = solve_block_job(&big_job, &mut bw).expect("big solve");
    let big_allocs = allocation_count() - before;

    // rel_tol 0 keeps every stage running to its cap, so the two solves
    // really differ in inner work...
    assert!(
        big.iters > small.iters,
        "iteration budgets must differ to make the comparison meaningful \
         (big {} vs small {})",
        big.iters,
        small.iters
    );
    // ...while the allocation bill stays the per-call constant.
    assert_eq!(
        big_allocs, small_allocs,
        "block solve allocations scale with iterations: \
         {big_allocs} allocs over {} iters vs {small_allocs} allocs over {} iters",
        big.iters, small.iters
    );
}
