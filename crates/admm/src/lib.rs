//! Distributed consensus-ADMM solver for huge macro-dataflow graphs.
//!
//! The dense solver in `paradigm-solver` evaluates a monomial tape over
//! every node and edge of the MDG on each gradient step; past a few
//! thousand compute nodes that single tape becomes the bottleneck and,
//! on a real distributed memory machine, would not even fit one node's
//! memory. This crate decomposes the convex allocation program instead
//! of the data: it
//!
//! 1. partitions the MDG into balanced, low-cut blocks with a
//!    deterministic multilevel heuristic ([`partition`]);
//! 2. builds, per block, a small self-contained sub-MDG whose objective
//!    agrees with the restriction of the global objective at the
//!    current consensus point ([`block`]); and
//! 3. reconciles the per-block solutions with a consensus-ADMM outer
//!    loop — boundary-variable averaging, scaled dual updates,
//!    over-relaxation, and residual-balancing penalty adaptation
//!    ([`consensus`]).
//!
//! Block x-updates are embarrassingly parallel and flow through the
//! [`BlockBackend`] trait: [`InProcessBackend`] fans out over scoped
//! threads with pooled solver workspaces, while `paradigm-serve` ships
//! the same [`BlockJob`]s to remote worker processes over the NDJSON
//! protocol. Every path is deterministic — identical results across
//! runs, thread counts, and transports.

pub mod block;
pub mod consensus;
pub mod partition;
pub mod race_suites;

pub use block::{
    build_block_problem, global_sweeps, solve_block_job, BlockJob, BlockMaps, BlockSolution,
    ConsensusTerm, GlobalSweeps, InnerConfig,
};
pub use consensus::{
    solve_admm, solve_admm_in_process, AdmmConfig, AdmmResult, BackendFaultStats, BlockBackend,
    FailoverBackend, InProcessBackend,
};
pub use partition::{partition_mdg, Partition, PartitionOptions};
