//! The consensus-ADMM outer loop.
//!
//! Global consensus form (Boyd et al. 2011, §7): every partition block
//! `b` holds a local copy `x^b` of the variables it touches; the
//! coordinator keeps one consensus value `z_v` per boundary node plus a
//! scaled dual `u^b_v` per (block, boundary-node) copy. One outer
//! iteration is
//!
//! 1. **x-update** — every block minimizes its frozen-context model (see
//!    [`crate::block`]) plus `(rho/2) ||x - z + u||^2`, in parallel,
//!    through a [`BlockBackend`];
//! 2. **z-update** — per boundary node, average the over-relaxed copies
//!    `alpha x + (1 - alpha) z_old` plus their duals;
//! 3. **u-update** — `u += x_relaxed - z`.
//!
//! Residuals are RMS-normalized over copy slots and measured in x-space
//! (log-allocation) units so `eps` is scale-independent: primal
//! `r = rms(x - z)` (how far block copies disagree with the consensus)
//! and dual `s = rms(z - z_old)` (how far the refreeze point moved this
//! round); both below `eps` stops the loop. The penalty `rho` starts at
//! `rho0 * Phi(x0)/m` (commensurate with the objective's per-variable
//! gradient) and adapts two ways: Boyd's residual-balancing rule while
//! descent is active, and monotone stall-forcing doublings once neither
//! the residuals nor the exact objective improve — which squeezes any
//! refreeze limit cycle shut.
//!
//! Two coordinator-side accelerations close the gap a frozen-context
//! scheme leaves on its own, both O(E) per round (trivial next to the
//! block solves): a geometric line search on the exact global objective
//! along the aggregate round step (recovering the Jacobi undershoot —
//! every block improved assuming the others stayed frozen), and, once
//! per-round gains go small, a handful of exact projected-gradient
//! polish steps. The coordinator re-scores every iterate with the exact
//! global evaluator and returns the best allocation ever seen, so the
//! non-monotone outer trajectory can never worsen the reported answer.
//!
//! Every piece of the loop is deterministic: the partition is a pure
//! function of the graph, each block job is a pure function of its
//! inputs, and all reductions run in fixed (node-id) order — so results
//! are bitwise identical across runs, thread counts, and (because jobs
//! serialize losslessly) across in-process and TCP backends.

use paradigm_cost::{Allocation, Machine, PhiBreakdown};
use paradigm_mdg::{Mdg, NodeId};
use paradigm_solver::expr::{smax_pair_weights, Sharpness};
use paradigm_solver::{workspace, FallbackTier, MdgObjective, SolverError};
use std::collections::BTreeMap;

use crate::block::{
    build_block_problem, global_sweeps, solve_block_job, BlockJob, BlockMaps, BlockSolution,
    InnerConfig,
};
use crate::partition::{partition_mdg, Partition, PartitionOptions};

/// Outer-loop configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmmConfig {
    /// Partitioning options (block size, balance, refinement).
    pub partition: PartitionOptions,
    /// Initial penalty weight `rho`.
    pub rho0: f64,
    /// Over-relaxation factor `alpha` (1.0 disables; 1.5–1.8 typical).
    pub relax: f64,
    /// Residual tolerance: converged when both RMS residuals drop below.
    pub eps: f64,
    /// Outer iteration cap.
    pub max_outer: usize,
    /// Per-block inner solver configuration.
    pub inner: InnerConfig,
    /// Enable residual-balancing rho adaptation.
    pub adapt_rho: bool,
    /// Bounded-staleness consensus: when positive, a block whose fresh
    /// solution is lost this round (worker crash, deadline miss, every
    /// retry failed) is served its *last* solution for up to this many
    /// consecutive rounds instead of failing the solve. `0` keeps the
    /// strict synchronous barrier: any lost block aborts the solve, and
    /// results stay bitwise identical across backends.
    pub max_stale: usize,
}

impl Default for AdmmConfig {
    fn default() -> Self {
        AdmmConfig {
            partition: PartitionOptions::default(),
            rho0: 1.0,
            relax: 1.6,
            eps: 1e-4,
            max_outer: 400,
            inner: InnerConfig::default(),
            adapt_rho: true,
            max_stale: 0,
        }
    }
}

impl AdmmConfig {
    /// Force a specific block count (testing / CLI `--blocks`).
    pub fn with_blocks(g: &Mdg, blocks: usize) -> Self {
        AdmmConfig { partition: PartitionOptions::with_blocks(g, blocks), ..AdmmConfig::default() }
    }
}

/// Cumulative fault-recovery counters a [`BlockBackend`] may report.
/// All zero for backends with nothing to recover from (in-process).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendFaultStats {
    /// Block jobs re-enqueued after a failed or timed-out attempt.
    pub blocks_retried: u64,
    /// Re-enqueued jobs completed by a *different* worker than the one
    /// that failed them (work stealing across the fleet).
    pub blocks_stolen: u64,
    /// Per-worker circuit-breaker trips: a worker quarantined after
    /// repeated failures (half-open re-probes may readmit it later).
    pub workers_quarantined: u64,
    /// Whole-backend downgrades taken by a wrapper such as
    /// [`FailoverBackend`] (e.g. TCP fleet → in-process).
    pub backend_downgrades: u64,
}

/// Where block x-updates run. Implementations must place solution `i`
/// at index `i` of the returned vector (same order as `jobs`).
pub trait BlockBackend {
    /// Solve every job; the call is allowed to run them in any order or
    /// in parallel, but each solution must be the pure
    /// [`solve_block_job`] result for its job.
    fn solve_blocks(&mut self, jobs: &[BlockJob]) -> Result<Vec<BlockSolution>, String>;

    /// Fault-tolerant variant for bounded-staleness consensus rounds:
    /// per-job outcomes, where `None` marks a job that could not be
    /// solved this round (worker crashed, deadline missed, every retry
    /// failed). `Err` is reserved for total collapse — no job could be
    /// attempted at all. The default delegates to the strict
    /// all-or-nothing [`BlockBackend::solve_blocks`].
    fn solve_blocks_partial(
        &mut self,
        jobs: &[BlockJob],
    ) -> Result<Vec<Option<BlockSolution>>, String> {
        Ok(self.solve_blocks(jobs)?.into_iter().map(Some).collect())
    }

    /// Fault-recovery counters accumulated so far (for reporting).
    fn fault_stats(&self) -> BackendFaultStats {
        BackendFaultStats::default()
    }
}

/// Scoped-thread backend: splits jobs into contiguous chunks over at
/// most `threads` OS threads (`0` = available parallelism), each thread
/// reusing one pooled [`paradigm_solver::BatchWorkspace`] (block solves
/// speculate their line searches through the batched tape kernels).
/// Because each job is solved by a pure function, the thread count
/// changes only where a job runs, never its result.
#[derive(Debug, Clone, Default)]
pub struct InProcessBackend {
    /// Worker thread cap; `0` picks `available_parallelism`.
    pub threads: usize,
}

impl BlockBackend for InProcessBackend {
    fn solve_blocks(&mut self, jobs: &[BlockJob]) -> Result<Vec<BlockSolution>, String> {
        let total = jobs.len();
        if total == 0 {
            return Ok(Vec::new());
        }
        let workers = if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
        }
        .clamp(1, total);
        if workers == 1 {
            let mut ws = workspace::acquire_batch();
            return jobs.iter().map(|j| solve_block_job(j, &mut ws)).collect();
        }
        let chunk_len = total.div_ceil(workers);
        let joined = paradigm_race::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .chunks(chunk_len)
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut ws = workspace::acquire_batch();
                        chunk.iter().map(|job| solve_block_job(job, &mut ws)).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
        });
        // Chunks are contiguous and joined in spawn order, so flattening
        // preserves the job order.
        let mut out = Vec::with_capacity(total);
        for r in joined {
            let sols = r.map_err(|_| "block solve thread panicked".to_string())?;
            for sol in sols {
                out.push(sol?);
            }
        }
        Ok(out)
    }
}

/// Graceful-degradation wrapper: run block rounds through `primary`
/// until it fails outright (e.g. the whole TCP worker fleet is
/// quarantined or unreachable), then demote — permanently, for this
/// solve — to the in-process backend. This is the distributed tier's
/// rung on the fallback ladder: TCP fleet → in-process → (in the
/// pipeline) dense tiers. Downgrades are counted in
/// [`BackendFaultStats::backend_downgrades`] and surface in
/// [`AdmmResult`].
pub struct FailoverBackend<P: BlockBackend> {
    primary: P,
    fallback: InProcessBackend,
    demoted: bool,
    downgrades: u64,
}

impl<P: BlockBackend> FailoverBackend<P> {
    /// Wrap `primary`, falling back to `fallback` on total failure.
    pub fn new(primary: P, fallback: InProcessBackend) -> FailoverBackend<P> {
        FailoverBackend { primary, fallback, demoted: false, downgrades: 0 }
    }

    /// True once the primary backend has been abandoned for this solve.
    pub fn demoted(&self) -> bool {
        self.demoted
    }

    fn demote(&mut self, err: &str) {
        self.demoted = true;
        self.downgrades += 1;
        eprintln!("admm: primary block backend failed ({err}); downgrading to in-process");
    }
}

impl<P: BlockBackend> BlockBackend for FailoverBackend<P> {
    fn solve_blocks(&mut self, jobs: &[BlockJob]) -> Result<Vec<BlockSolution>, String> {
        if !self.demoted {
            match self.primary.solve_blocks(jobs) {
                Ok(sols) => return Ok(sols),
                Err(e) => self.demote(&e),
            }
        }
        self.fallback.solve_blocks(jobs)
    }

    fn solve_blocks_partial(
        &mut self,
        jobs: &[BlockJob],
    ) -> Result<Vec<Option<BlockSolution>>, String> {
        if !self.demoted {
            match self.primary.solve_blocks_partial(jobs) {
                Ok(slots) => return Ok(slots),
                Err(e) => self.demote(&e),
            }
        }
        self.fallback.solve_blocks_partial(jobs)
    }

    fn fault_stats(&self) -> BackendFaultStats {
        let mut stats = self.primary.fault_stats();
        stats.backend_downgrades += self.downgrades;
        stats
    }
}

/// Outcome of a consensus-ADMM solve.
#[derive(Debug, Clone)]
pub struct AdmmResult {
    /// Best allocation seen across outer iterations (exact re-score).
    pub alloc: Allocation,
    /// Exact `Phi` breakdown at `alloc`.
    pub phi: PhiBreakdown,
    /// Outer (consensus) iterations executed.
    pub outer_iters: usize,
    /// Inner gradient iterations summed over all blocks and rounds.
    pub inner_iters: usize,
    /// Coordinator-side exact-objective polish steps (tail refinement).
    pub polish_iters: usize,
    /// Final RMS primal residual `rms(x - z)` in log-allocation units.
    pub primal_residual: f64,
    /// Final RMS consensus drift `rms(z - z_old)` in log-allocation
    /// units (see the module docs for why `rho` is not folded in).
    pub dual_residual: f64,
    /// Whether both residuals dropped below `eps`.
    pub converged: bool,
    /// Number of partition blocks.
    pub blocks: usize,
    /// Number of cut edges (consensus-coupled transfers).
    pub cut_edges: usize,
    /// Block jobs re-enqueued after a failed attempt (backend-reported).
    pub blocks_retried: u64,
    /// Re-enqueued jobs completed by a different worker (work stealing).
    pub blocks_stolen: u64,
    /// Round slots served a stale (reused) block solution.
    pub blocks_stale: u64,
    /// Longest consecutive stale streak any single block experienced;
    /// bounded by [`AdmmConfig::max_stale`] by construction.
    pub max_block_stale_rounds: usize,
    /// Per-worker circuit-breaker trips (backend-reported).
    pub workers_quarantined: u64,
    /// Whole-backend downgrades (e.g. TCP fleet → in-process).
    pub backend_downgrades: u64,
    /// Tier label for downstream reporting (always `Admm`).
    pub tier: FallbackTier,
}

/// Solve the allocation program by consensus ADMM over a deterministic
/// min-cut partition, running block x-updates through `backend`.
pub fn solve_admm<B: BlockBackend>(
    g: &Mdg,
    machine: Machine,
    cfg: &AdmmConfig,
    backend: &mut B,
) -> Result<AdmmResult, SolverError> {
    if !(cfg.rho0.is_finite() && cfg.rho0 > 0.0) {
        return Err(SolverError::InvalidConfig(format!("rho0 {} must be positive", cfg.rho0)));
    }
    if !(1.0..2.0).contains(&cfg.relax) {
        return Err(SolverError::InvalidConfig(format!(
            "over-relaxation {} must lie in [1, 2)",
            cfg.relax
        )));
    }
    let obj = MdgObjective::try_new(g, machine).map_err(SolverError::BadObjective)?;
    let ub = obj.x_upper();
    let n = g.node_count();
    let part = partition_mdg(g, &cfg.partition);

    // Start from the analytic equal split (feasible, cheap, and a
    // reasonable scale for area-dominated large graphs).
    let p = machine.procs as f64;
    let m = g.compute_node_count().max(1) as f64;
    let share = (p / m).clamp(1.0, p).ln();
    let mut x = vec![0.0_f64; n];
    for (id, node) in g.nodes() {
        if !node.is_structural() {
            x[id.0] = share;
        }
    }

    // Which blocks hold a copy of each boundary node (home first, then
    // ghost blocks ascending): fixed for the whole solve.
    let mut owners: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
    for &v in &part.boundary {
        owners.insert(v, vec![part.block_of[v.0]]);
    }
    for &e in &part.cut_edges {
        let edge = g.edge(e);
        for (v, other) in [(edge.src, edge.dst), (edge.dst, edge.src)] {
            let ghost_block = part.block_of[other];
            let list = owners.get_mut(&NodeId(v)).expect("cut endpoints are boundary nodes");
            if !list.contains(&ghost_block) {
                list.push(ghost_block);
            }
        }
    }
    for list in owners.values_mut() {
        let home = list[0];
        list.sort_unstable();
        list.dedup();
        // Keep home membership but a stable ascending order.
        debug_assert!(list.contains(&home));
    }
    let copy_slots: usize = owners.values().map(Vec::len).sum();

    // Scaled duals per block, keyed by global boundary node.
    let mut duals: Vec<BTreeMap<NodeId, f64>> = vec![BTreeMap::new(); part.blocks];
    for (&v, blocks) in &owners {
        for &b in blocks {
            duals[b].insert(v, 0.0);
        }
    }

    // `rho0` is a dimensionless knob: the actual penalty weight is
    // scaled by the objective's per-variable gradient magnitude
    // (`Phi / m` — each area term contributes about its own share of
    // `Phi` to its variable's gradient), so the consensus pull is
    // commensurate with the objective pull regardless of graph size or
    // cost units.
    let scale = (global_sweeps(&obj, &x).phi() / m).max(f64::MIN_POSITIVE);
    let mut rho = cfg.rho0 * scale;
    let mut best: Option<(Allocation, PhiBreakdown)> = None;
    let consider = |x: &[f64], best: &mut Option<(Allocation, PhiBreakdown)>| {
        let alloc = obj.allocation_from_x(x);
        let phi = obj.exact_phi(&alloc);
        if phi.phi.is_finite() && best.as_ref().is_none_or(|(_, b)| phi.phi < b.phi) {
            *best = Some((alloc, phi));
        }
    };

    let mut outer_iters = 0usize;
    let mut inner_iters = 0usize;
    let mut r = f64::INFINITY;
    let mut s = f64::INFINITY;
    let mut converged = false;
    // Stall escalation: the block models are re-frozen every round, so
    // a too-soft penalty can limit-cycle instead of agreeing. When the
    // worst residual stops improving we double `rho`, which pins the
    // copies ever harder to the consensus and forces the cycle closed;
    // the best-exact-`Phi` tracking above means late consensus-forcing
    // can only stop the clock, never degrade the reported answer.
    let mut best_resid = f64::INFINITY;
    let mut stalled = 0usize;
    let mut forcing = false;

    let mut x_prev = vec![0.0_f64; n];
    let mut x_probe = vec![0.0_f64; n];

    // Coordinator-side polish state: a few exact projected-gradient
    // steps on the *global* objective whenever the consensus phase's
    // per-round gain goes small. The block solves still carry the bulk
    // of the optimization (and distribute); the polish closes the
    // decomposition's duality-gap tail, which a frozen-context scheme
    // cannot shrink below the coupling error on its own.
    let mut pws = workspace::acquire();
    let mut pol_grad_a: Vec<f64> = Vec::new();
    let mut pol_grad_c: Vec<f64> = Vec::new();
    let mut pol_grad = vec![0.0_f64; n];
    let mut pol_step = 0.25_f64;
    let mut polish_iters = 0usize;
    let mut is_compute = vec![false; n];
    for (id, node) in g.nodes() {
        if !node.is_structural() {
            is_compute[id.0] = true;
        }
    }
    let mut phi_pre_polish = f64::INFINITY;
    let mut phi_round_last = f64::INFINITY;

    // After the cold first round every block is warm-started from the
    // consensus point it just helped produce, so re-climbing the full
    // smoothing ladder is wasted work — the ladder exists to escape the
    // *initial* point's basin. One short pass at the sharpest smoothing
    // level keeps enough curvature information to step over small
    // refreeze kinks, then exact refinement tracks the slowly-moving
    // consensus, at a fraction of the cold-round cost.
    let warm_inner = InnerConfig {
        stages: cfg.inner.stages.last().map(|&s| vec![s]).unwrap_or_default(),
        iters_per_stage: cfg.inner.iters_per_stage.div_ceil(2),
        exact_iters: cfg.inner.exact_iters.max(30),
        rel_tol: cfg.inner.rel_tol,
    };
    // The coordinator accelerations (extrapolation, polish) speed Phi
    // descent mid-flight but keep perturbing the boundary variables, so
    // the whole-round drift `s` can never settle below their step sizes.
    // Once block copies nearly agree the accelerations have done their
    // job: switch them off (monotonically) and let the pure consensus
    // iteration reach stationarity. Best-exact-Phi tracking means the
    // tail can only stop the clock, never worsen the answer.
    let mut accel = true;
    let mut last_gain = f64::INFINITY;

    // Bounded-staleness bookkeeping (`cfg.max_stale > 0`): the last
    // fresh solution per block, each block's consecutive-stale streak,
    // and the totals reported in the result. Reuse is well-defined
    // because a block's sub-graph and variable maps are fixed for the
    // whole solve — only the frozen context and penalties move between
    // rounds, so a previous iterate is still a feasible (merely stale)
    // x-update.
    let mut last_sols: Vec<Option<BlockSolution>> = vec![None; part.blocks];
    let mut stale_streak = vec![0usize; part.blocks];
    let mut blocks_stale = 0u64;
    let mut max_block_stale_rounds = 0usize;

    for _ in 0..cfg.max_outer {
        outer_iters += 1;
        let sw = global_sweeps(&obj, &x);
        consider(&x, &mut best);
        x_prev.copy_from_slice(&x);

        let inner = if outer_iters == 1 { &cfg.inner } else { &warm_inner };
        let mut jobs = Vec::with_capacity(part.blocks);
        let mut maps: Vec<BlockMaps> = Vec::with_capacity(part.blocks);
        for (b, dual) in duals.iter().enumerate() {
            let (job, map) = build_block_problem(g, &machine, &part, b, &sw, &x, dual, rho, inner);
            jobs.push(job);
            maps.push(map);
        }
        let sols: Vec<BlockSolution> = if cfg.max_stale == 0 {
            // Strict synchronous barrier: any lost block aborts, and the
            // round is bitwise identical across backends.
            backend.solve_blocks(&jobs).map_err(SolverError::StartPanicked)?
        } else {
            let partial =
                backend.solve_blocks_partial(&jobs).map_err(SolverError::StartPanicked)?;
            if partial.len() != part.blocks {
                return Err(SolverError::StartPanicked(format!(
                    "backend returned {} solutions for {} blocks",
                    partial.len(),
                    part.blocks
                )));
            }
            let mut filled = Vec::with_capacity(part.blocks);
            for (b, slot) in partial.into_iter().enumerate() {
                match slot {
                    Some(sol) => {
                        stale_streak[b] = 0;
                        last_sols[b] = Some(sol.clone());
                        filled.push(sol);
                    }
                    None if stale_streak[b] < cfg.max_stale && last_sols[b].is_some() => {
                        stale_streak[b] += 1;
                        max_block_stale_rounds = max_block_stale_rounds.max(stale_streak[b]);
                        blocks_stale += 1;
                        let prev = last_sols[b].clone().expect("checked is_some");
                        // A reused iterate did no fresh inner work.
                        filled.push(BlockSolution { iters: 0, ..prev });
                    }
                    None => {
                        return Err(SolverError::StartPanicked(format!(
                            "block {b} lost with stale budget exhausted \
                             (max_stale {}, streak {}, round {outer_iters})",
                            cfg.max_stale, stale_streak[b]
                        )));
                    }
                }
            }
            filled
        };
        if sols.len() != part.blocks {
            return Err(SolverError::StartPanicked(format!(
                "backend returned {} solutions for {} blocks",
                sols.len(),
                part.blocks
            )));
        }
        inner_iters += sols.iter().map(|s| s.iters).sum::<usize>();

        // Interior home variables: adopt the owning block's iterate.
        for b in 0..part.blocks {
            for &v in &part.members[b] {
                if !part.is_boundary(v) {
                    x[v.0] = sols[b].x[maps[b].sub_of[v.0]].clamp(0.0, ub);
                }
            }
        }

        // Consensus update with over-relaxation, in node-id order.
        let mut r2 = 0.0_f64;
        for (&v, blocks) in &owners {
            let z_old = x[v.0];
            let mut acc = 0.0_f64;
            for &b in blocks {
                let xb = sols[b].x[maps[b].sub_of[v.0]];
                let xh = cfg.relax * xb + (1.0 - cfg.relax) * z_old;
                let u = duals[b].get(&v).copied().unwrap_or(0.0);
                acc += xh + u;
            }
            let z = acc / blocks.len() as f64;
            for &b in blocks {
                let xb = sols[b].x[maps[b].sub_of[v.0]];
                let xh = cfg.relax * xb + (1.0 - cfg.relax) * z_old;
                *duals[b].get_mut(&v).expect("dual slot exists") += xh - z;
                let pr = xb - z;
                r2 += pr * pr;
            }
            x[v.0] = z;
        }

        // Once the block copies nearly agree AND the exact objective has
        // stopped improving, retire the accelerations for good and let
        // the pure iteration settle (see `accel` above). Either signal
        // alone is premature: small residuals with Phi still falling
        // means the polish is doing real work, and a Phi plateau with
        // large residuals means consensus is still being negotiated.
        if accel
            && copy_slots > 0
            && (r2 / copy_slots as f64).sqrt() < 20.0 * cfg.eps
            && last_gain < 1e-4
        {
            accel = false;
        }

        // Jacobi-undershoot extrapolation: every block improved assuming
        // the others stayed frozen, so the aggregate step systematically
        // underestimates the simultaneous improvement. A short geometric
        // line search on the *exact* global objective along the aggregate
        // direction (a handful of O(E) sweeps, trivial next to the block
        // solves) recovers the lost factor. The consensus and duals keep
        // their ADMM semantics; only the refreeze point moves further.
        let exact_at = |xv: &[f64]| obj.exact_phi(&obj.allocation_from_x(xv)).phi;
        let mut phi_best = f64::NAN;
        if accel {
            let mut t_best = 1.0_f64;
            phi_best = exact_at(&x);
            let mut t = 1.6_f64;
            while t <= 8.0 {
                for i in 0..n {
                    x_probe[i] = (x_prev[i] + t * (x[i] - x_prev[i])).clamp(0.0, ub);
                }
                let phi_t = exact_at(&x_probe);
                if phi_t.is_finite() && phi_t < phi_best * (1.0 - 1e-9) {
                    phi_best = phi_t;
                    t_best = t;
                    t *= 1.6;
                } else {
                    break;
                }
            }
            if t_best > 1.0 {
                for i in 0..n {
                    x[i] = (x_prev[i] + t_best * (x[i] - x_prev[i])).clamp(0.0, ub);
                }
                consider(&x, &mut best);
            }
        }

        // Tail polish, gated on the consensus phase running out of
        // per-round gain.
        let gain = (phi_pre_polish - phi_best) / phi_best.abs().max(f64::MIN_POSITIVE);
        phi_pre_polish = phi_best;
        if accel {
            last_gain = gain.abs();
        }
        let mut phi_round = if accel { phi_best } else { phi_round_last };
        if accel && gain < 3e-3 {
            let ws = &mut *pws;
            let parts = obj.eval_grad_parts_with(
                &x,
                Sharpness::Exact,
                &mut ws.scratch,
                &mut pol_grad_a,
                &mut pol_grad_c,
            );
            let (mut f_cur, wa, wc) = smax_pair_weights(parts.a_p, parts.c_p, Sharpness::Exact);
            for j in 0..n {
                pol_grad[j] =
                    if is_compute[j] { wa * pol_grad_a[j] + wc * pol_grad_c[j] } else { 0.0 };
            }
            for _ in 0..6 {
                polish_iters += 1;
                let mut accepted = false;
                for _ in 0..30 {
                    for j in 0..n {
                        x_probe[j] = if is_compute[j] {
                            (x[j] - pol_step * pol_grad[j]).clamp(0.0, ub)
                        } else {
                            x[j]
                        };
                    }
                    let probe = obj.eval_with(&x_probe, Sharpness::Exact, &mut ws.scratch);
                    let f_new = probe.a_p.max(probe.c_p);
                    let decrease: f64 = pol_grad
                        .iter()
                        .zip(x.iter().zip(x_probe.iter()))
                        .map(|(gd, (xi, ti))| gd * (xi - ti))
                        .sum();
                    if f_new.is_finite() && f_new <= f_cur - 1e-4 * decrease {
                        accepted = true;
                        break;
                    }
                    pol_step *= 0.5;
                    if pol_step < 1e-14 {
                        break;
                    }
                }
                if !accepted {
                    // Keep a workable step for the next round even when
                    // this one dead-ends on the max kink.
                    pol_step = (pol_step * 4.0).max(1e-6);
                    break;
                }
                x.copy_from_slice(&x_probe);
                let parts2 = obj.eval_grad_parts_with(
                    &x,
                    Sharpness::Exact,
                    &mut ws.scratch,
                    &mut pol_grad_a,
                    &mut pol_grad_c,
                );
                let (f2, wa2, wc2) = smax_pair_weights(parts2.a_p, parts2.c_p, Sharpness::Exact);
                for j in 0..n {
                    pol_grad[j] =
                        if is_compute[j] { wa2 * pol_grad_a[j] + wc2 * pol_grad_c[j] } else { 0.0 };
                }
                let improve = f_cur - f2;
                f_cur = f2;
                pol_step = (pol_step * 1.8).min(4.0);
                if improve <= 1e-9 * f_cur.abs() {
                    break;
                }
            }
            phi_round = f_cur;
            consider(&x, &mut best);
        }

        // Consensus drift over the whole round (z-update, extrapolation,
        // and polish together): the iteration is stationary only when
        // the refreeze point stops moving.
        let mut s2 = 0.0_f64;
        for (&v, blocks) in &owners {
            let dz = x[v.0] - x_prev[v.0];
            s2 += blocks.len() as f64 * dz * dz;
        }

        if copy_slots > 0 {
            // Both residuals are measured in x-space (log-allocation)
            // units so `eps` has a scale- and transport-independent
            // meaning: `r` is how far block copies disagree with the
            // consensus, `s` is how far the consensus moved this round.
            // (Boyd's dual residual multiplies `s` by `rho`; under the
            // escalation below that would measure the inner solvers'
            // noise floor instead of stationarity, so we report the
            // unscaled drift.)
            r = (r2 / copy_slots as f64).sqrt();
            s = (s2 / copy_slots as f64).sqrt();
        } else {
            // Single block: no consensus constraints; one outer round is
            // a full (warm-started) solve of the whole problem.
            r = 0.0;
            s = 0.0;
        }
        if std::env::var_os("PARADIGM_ADMM_TRACE").is_some() {
            let bp = best.as_ref().map_or(f64::NAN, |(_, b)| b.phi);
            eprintln!("outer {outer_iters}: r={r:.3e} s={s:.3e} rho={rho:.3e} best_phi={bp:.6e}");
        }
        if r < cfg.eps && s < cfg.eps {
            converged = true;
            break;
        }

        // A round counts as progress if either the residuals shrank or
        // the exact objective still moved materially: escalating `rho`
        // while real descent continues would clamp the iterate early.
        let worst = r.max(s);
        let phi_progress = phi_round < phi_round_last * (1.0 - 1e-3);
        phi_round_last = phi_round;
        if worst < 0.98 * best_resid {
            best_resid = worst;
            stalled = 0;
        } else if phi_progress {
            stalled = 0;
        } else {
            stalled += 1;
        }

        // Residual balancing (Boyd §3.4.1) plus stall escalation; duals
        // rescale to preserve the unscaled dual `rho * u`.
        if cfg.adapt_rho {
            let rel = rho / scale;
            let stall_limit = if forcing { 2 } else { 4 };
            if (r > 10.0 * s || stalled >= stall_limit) && rel < 1e9 {
                // Once stall-forcing starts, escalation is monotone:
                // letting the balancing rule halve `rho` again would undo
                // the squeeze and reopen the limit cycle.
                forcing = forcing || stalled >= stall_limit;
                rho *= 2.0;
                stalled = 0;
                for d in &mut duals {
                    for u in d.values_mut() {
                        *u *= 0.5;
                    }
                }
            } else if !forcing && s > 10.0 * r && rel > 1e-6 {
                rho *= 0.5;
                for d in &mut duals {
                    for u in d.values_mut() {
                        *u *= 2.0;
                    }
                }
            }
        }
    }

    consider(&x, &mut best);
    let (alloc, phi) = best.expect("at least one iterate was scored");
    let fstats = backend.fault_stats();
    Ok(AdmmResult {
        alloc,
        phi,
        outer_iters,
        inner_iters,
        polish_iters,
        primal_residual: r,
        dual_residual: s,
        converged,
        blocks: part.blocks,
        cut_edges: part.cut_edges.len(),
        blocks_retried: fstats.blocks_retried,
        blocks_stolen: fstats.blocks_stolen,
        blocks_stale,
        max_block_stale_rounds,
        workers_quarantined: fstats.workers_quarantined,
        backend_downgrades: fstats.backend_downgrades,
        tier: FallbackTier::Admm,
    })
}

/// Convenience: solve with the in-process scoped-thread backend.
pub fn solve_admm_in_process(
    g: &Mdg,
    machine: Machine,
    cfg: &AdmmConfig,
    threads: usize,
) -> Result<AdmmResult, SolverError> {
    let mut backend = InProcessBackend { threads };
    solve_admm(g, machine, cfg, &mut backend)
}

/// Re-export used by integration layers that only need the partition.
pub fn partition_for(g: &Mdg, cfg: &AdmmConfig) -> Partition {
    partition_mdg(g, &cfg.partition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::global_sweeps;
    use paradigm_mdg::{example_fig1_mdg, fork_join_mdg, random_layered_mdg, RandomMdgConfig};
    use paradigm_solver::expr::Sharpness;
    use paradigm_solver::{allocate, MdgObjective, SolverConfig};

    /// The per-block frozen-context model must reproduce the global
    /// objective exactly at the consensus point it was frozen at.
    #[test]
    fn block_model_is_exact_at_the_consensus_point() {
        let g = random_layered_mdg(&RandomMdgConfig::sized(160), 7);
        let machine = Machine::cm5(64);
        let obj = MdgObjective::try_new(&g, machine).expect("objective");
        let part = partition_mdg(&g, &PartitionOptions::with_blocks(&g, 4));
        assert!(part.blocks >= 2, "want a multi-block partition");

        // An arbitrary (but valid) consensus point.
        let ub = obj.x_upper();
        let mut x = vec![0.0; g.node_count()];
        for (id, node) in g.nodes() {
            if !node.is_structural() {
                x[id.0] = (0.17 * (id.0 % 7) as f64).min(ub);
            }
        }
        let sw = global_sweeps(&obj, &x);
        let phi_global = sw.phi();

        for b in 0..part.blocks {
            let duals = BTreeMap::new();
            let (job, maps) = build_block_problem(
                &g,
                &machine,
                &part,
                b,
                &sw,
                &x,
                &duals,
                1.0,
                &InnerConfig::default(),
            );
            let sub_obj = MdgObjective::try_new(&job.graph, job.machine).expect("block objective");
            let mut scratch = paradigm_solver::EvalScratch::default();
            let parts = sub_obj.eval_with(&job.x0, Sharpness::Exact, &mut scratch);
            let a = (job.area_off + parts.a_p).max(0.0);
            let phi_model = a.max(parts.c_p);
            assert!(
                (phi_model - phi_global).abs() <= 1e-9 * phi_global.abs().max(1.0),
                "block {b}: model phi {phi_model} vs global {phi_global}"
            );
            // Every home member must be a free variable of the job.
            for &v in &part.members[b] {
                assert!(maps.sub_of[v.0] != usize::MAX);
            }
        }
    }

    /// With a single block the outer loop degenerates to one warm-started
    /// full solve; it should land within a hair of the dense solver.
    #[test]
    fn single_block_matches_dense() {
        let g = example_fig1_mdg();
        let machine = Machine::cm5(16);
        let dense = allocate(&g, machine, &SolverConfig::fast());
        let cfg = AdmmConfig {
            partition: PartitionOptions::default(), // small graph -> 1 block
            ..AdmmConfig::default()
        };
        let res = solve_admm_in_process(&g, machine, &cfg, 1).expect("admm");
        assert_eq!(res.blocks, 1);
        assert!(res.converged);
        assert!(
            res.phi.phi <= dense.phi.phi * 1.01 + 1e-9,
            "admm {} vs dense {}",
            res.phi.phi,
            dense.phi.phi
        );
    }

    /// Multi-block consensus converges and stays near the dense optimum.
    #[test]
    fn multi_block_converges_near_dense() {
        let g = random_layered_mdg(&RandomMdgConfig::sized(120), 21);
        let machine = Machine::cm5(64);
        let dense = allocate(&g, machine, &SolverConfig::fast());
        let cfg = AdmmConfig::with_blocks(&g, 4);
        let res = solve_admm_in_process(&g, machine, &cfg, 0).expect("admm");
        assert!(res.blocks >= 2, "want a real decomposition");
        assert!(
            res.converged,
            "residuals r={} s={} after {} iters",
            res.primal_residual, res.dual_residual, res.outer_iters
        );
        assert!(
            res.phi.phi <= dense.phi.phi * 1.01 + 1e-9,
            "admm {} vs dense {}",
            res.phi.phi,
            dense.phi.phi
        );
    }

    /// Identical inputs give bitwise-identical results regardless of the
    /// backend thread count.
    #[test]
    fn deterministic_across_thread_counts() {
        let g = fork_join_mdg(6, 10, 5);
        let machine = Machine::cm5(32);
        let cfg = AdmmConfig::with_blocks(&g, 4);
        let a = solve_admm_in_process(&g, machine, &cfg, 1).expect("admm t1");
        let b = solve_admm_in_process(&g, machine, &cfg, 4).expect("admm t4");
        assert_eq!(a.outer_iters, b.outer_iters);
        assert_eq!(a.phi.phi.to_bits(), b.phi.phi.to_bits());
        assert_eq!(a.alloc.as_slice(), b.alloc.as_slice());
        assert_eq!(a.primal_residual.to_bits(), b.primal_residual.to_bits());
    }

    #[test]
    fn rejects_bad_config() {
        let g = example_fig1_mdg();
        let machine = Machine::cm5(8);
        let bad_relax = AdmmConfig { relax: 2.5, ..AdmmConfig::default() };
        assert!(solve_admm_in_process(&g, machine, &bad_relax, 1).is_err());
        let bad_rho = AdmmConfig { rho0: 0.0, ..AdmmConfig::default() };
        assert!(solve_admm_in_process(&g, machine, &bad_rho, 1).is_err());
    }

    fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Deterministically drops block solutions after the first round,
    /// simulating deadline misses / worker crashes under stale mode.
    struct FlakyBackend {
        inner: InProcessBackend,
        seed: u64,
        drop_p: f64,
        round: u64,
    }

    impl BlockBackend for FlakyBackend {
        fn solve_blocks(&mut self, jobs: &[BlockJob]) -> Result<Vec<BlockSolution>, String> {
            self.inner.solve_blocks(jobs)
        }

        fn solve_blocks_partial(
            &mut self,
            jobs: &[BlockJob],
        ) -> Result<Vec<Option<BlockSolution>>, String> {
            let sols = self.inner.solve_blocks(jobs)?;
            self.round += 1;
            let round = self.round;
            Ok(sols
                .into_iter()
                .enumerate()
                .map(|(b, sol)| {
                    // Never drop in round 1: there is no previous
                    // solution to reuse yet.
                    let h = splitmix64(self.seed ^ round.wrapping_mul(0x9e3b) ^ b as u64);
                    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                    (round == 1 || u >= self.drop_p).then_some(sol)
                })
                .collect())
        }
    }

    /// Property of the bounded-staleness mode, over several fault seeds:
    /// a solve either completes with every block's consecutive stale
    /// streak within `max_stale`, or fails with the typed budget-
    /// exhausted error — it never silently runs a block staler than the
    /// budget. At least one seed must exercise actual stale reuse.
    #[test]
    fn stale_rounds_never_exceed_the_budget() {
        let g = fork_join_mdg(6, 10, 5);
        let machine = Machine::cm5(32);
        let cfg = AdmmConfig { max_stale: 2, ..AdmmConfig::with_blocks(&g, 4) };
        let dense = allocate(&g, machine, &SolverConfig::fast());
        let mut saw_stale = false;
        for seed in 0..6u64 {
            // Drop rate sized to the solve's round count: this config
            // runs ~56 outer rounds, so a per-block drop rate p makes a
            // budget-ending 3-streak arrive in ~1/(4 p^3) rounds. At
            // p = 0.08 exhaustion is rare over a solve while every seed
            // still sees plenty of single-round staleness.
            let mut backend = FlakyBackend {
                inner: InProcessBackend { threads: 1 },
                seed,
                drop_p: 0.08,
                round: 0,
            };
            match solve_admm(&g, machine, &cfg, &mut backend) {
                Ok(res) => {
                    assert!(
                        res.max_block_stale_rounds <= cfg.max_stale,
                        "seed {seed}: stale streak {} exceeds budget {}",
                        res.max_block_stale_rounds,
                        cfg.max_stale
                    );
                    saw_stale |= res.blocks_stale > 0;
                    if res.blocks_stale > 0 {
                        // The relaxed guarantee: stale rounds may slow
                        // convergence but not degrade the answer beyond
                        // the gallery tolerance.
                        assert!(
                            res.phi.phi <= dense.phi.phi * 1.01 + 1e-9,
                            "seed {seed}: stale admm {} vs dense {}",
                            res.phi.phi,
                            dense.phi.phi
                        );
                    }
                }
                Err(e) => {
                    assert!(
                        e.to_string().contains("stale budget exhausted"),
                        "seed {seed}: unexpected failure {e}"
                    );
                }
            }
        }
        assert!(saw_stale, "at least one seed must exercise stale reuse");
    }

    /// Strict mode must not tolerate a lost block: the same flaky
    /// backend that stale mode absorbs aborts a `max_stale = 0` solve.
    #[test]
    fn strict_mode_aborts_on_a_lost_block() {
        struct LoseOne {
            inner: InProcessBackend,
        }
        impl BlockBackend for LoseOne {
            fn solve_blocks(&mut self, _jobs: &[BlockJob]) -> Result<Vec<BlockSolution>, String> {
                Err("block 0: worker crashed".into())
            }
            fn solve_blocks_partial(
                &mut self,
                jobs: &[BlockJob],
            ) -> Result<Vec<Option<BlockSolution>>, String> {
                let mut slots: Vec<Option<BlockSolution>> =
                    self.inner.solve_blocks(jobs)?.into_iter().map(Some).collect();
                slots[0] = None;
                Ok(slots)
            }
        }
        let g = fork_join_mdg(6, 10, 5);
        let machine = Machine::cm5(32);
        let cfg = AdmmConfig::with_blocks(&g, 4);
        let mut backend = LoseOne { inner: InProcessBackend { threads: 1 } };
        assert!(solve_admm(&g, machine, &cfg, &mut backend).is_err());
    }

    /// A primary backend that collapses entirely demotes to in-process,
    /// records the downgrade, and still produces the bitwise in-process
    /// answer (the fallback runs every round from the start).
    #[test]
    fn failover_backend_downgrades_and_matches_in_process() {
        struct DeadFleet;
        impl BlockBackend for DeadFleet {
            fn solve_blocks(&mut self, _jobs: &[BlockJob]) -> Result<Vec<BlockSolution>, String> {
                Err("all workers quarantined".into())
            }
        }
        let g = fork_join_mdg(6, 10, 5);
        let machine = Machine::cm5(32);
        let cfg = AdmmConfig::with_blocks(&g, 4);
        let mut backend = FailoverBackend::new(DeadFleet, InProcessBackend { threads: 1 });
        let res = solve_admm(&g, machine, &cfg, &mut backend).expect("failover solve");
        assert!(backend.demoted());
        assert_eq!(res.backend_downgrades, 1);
        let local = solve_admm_in_process(&g, machine, &cfg, 1).expect("in-process");
        assert_eq!(res.phi.phi.to_bits(), local.phi.phi.to_bits());
        assert_eq!(res.alloc.as_slice(), local.alloc.as_slice());
    }
}
