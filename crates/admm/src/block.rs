//! Block subproblems: self-contained sub-MDGs whose objective, restricted
//! to one partition block, reproduces the *global* `Phi` exactly at the
//! consensus point.
//!
//! The paper's objective `Phi = max(A_p, C_p)` is not block-separable:
//! `C_p` is a longest path through the whole DAG and `A_p` sums every
//! node. Rather than teaching the solver's objective about boundary
//! context, each block is encoded as an ordinary MDG that the unmodified
//! [`MdgObjective`] machinery can solve:
//!
//! * **home nodes** keep their exact costs and *all* their global edges
//!   (every edge incident to a home node is included);
//! * **ghost nodes** (opposite endpoints of cut edges) join the sub-MDG
//!   with their cost raised by a frozen correction `corr_g >= 0` — the
//!   transfer terms of their excluded edges evaluated at the consensus
//!   point — folded into `(alpha, tau)` so that `T'(q) = T(q) + corr_g`
//!   for every `q`;
//! * **entry virtuals** `ENT@v` (`alpha = 1`, `tau = ent_v`): a
//!   constant-cost predecessor modelling the latest frozen finish time
//!   `max(y_m + t^D)` over in-edges the sub-MDG does not contain;
//! * **exit virtuals** `EXT@v` (`alpha = 1`, `tau = exit_v`): a
//!   constant-cost successor modelling the longest frozen path from `v`'s
//!   finish to STOP through out-edges the sub-MDG does not contain;
//! * **the bypass virtual** `CB`: an isolated constant node carrying the
//!   longest START->STOP path that avoids the block entirely, so the
//!   sub-MDG's critical path can never dip below the rest of the
//!   program's.
//!
//! `alpha = 1` makes a virtual node's processing cost independent of its
//! (pinned) processor count, so the virtuals contribute exact constants
//! to `C_p` and a constant to `A_p` that the block's `area_off` cancels.
//! At the consensus point the block model evaluates to the global `Phi`
//! bit-for-nearly-bit (`block_model_is_exact_at_consensus` pins this),
//! which is what makes the ADMM outer loop honest: blocks descend a local
//! model that is a faithful restriction of the true objective.

use paradigm_cost::Machine;
use paradigm_mdg::{AmdahlParams, Mdg, MdgBuilder, NodeId, TransferKind};
use paradigm_solver::expr::{smax_pair_weights, Sharpness};
use paradigm_solver::{BatchWorkspace, MdgObjective, SolverWorkspace};

use crate::partition::Partition;

/// Exact per-node / per-edge sweep values of the global objective at one
/// point — everything the block builder needs to freeze boundary context.
#[derive(Debug, Clone)]
pub struct GlobalSweeps {
    /// `T_v(x)` per node (exact, true-max).
    pub t: Vec<f64>,
    /// `t^D_e(x)` per edge.
    pub d: Vec<f64>,
    /// Earliest finish times `y_v(x)` (the paper's forward recurrence).
    pub y: Vec<f64>,
    /// Longest remaining path `down_v(x) = T_v + max(0, max_e (t^D_e +
    /// down_dst))` from the *start* of `v` to STOP.
    pub down: Vec<f64>,
    /// Exact `A_p(x)`.
    pub a_p: f64,
    /// Exact `C_p(x) = y_STOP`.
    pub c_p: f64,
}

impl GlobalSweeps {
    /// Exact `Phi(x) = max(A_p, C_p)`.
    pub fn phi(&self) -> f64 {
        self.a_p.max(self.c_p)
    }
}

/// Run the exact forward/backward sweeps of `obj` at `x`.
pub fn global_sweeps(obj: &MdgObjective<'_>, x: &[f64]) -> GlobalSweeps {
    let g = obj.graph();
    let t: Vec<f64> =
        g.nodes().map(|(id, _)| obj.node_expr(id).eval(x, Sharpness::Exact)).collect();
    let d: Vec<f64> =
        g.edges().map(|(id, _)| obj.edge_expr(id).eval(x, Sharpness::Exact)).collect();
    let y = g.finish_times_with(|v| t[v.0], |e| d[e.0]);
    let mut down = vec![0.0_f64; g.node_count()];
    for &v in g.topo_order().iter().rev() {
        let mut tail = 0.0_f64;
        for &e in g.out_edges(v) {
            let w = g.edge(e).dst;
            tail = tail.max(d[e.0] + down[w]);
        }
        down[v.0] = t[v.0] + tail;
    }
    let inv_p = 1.0 / obj.machine().procs as f64;
    let a_p = inv_p * g.nodes().map(|(id, _)| t[id.0] * x[id.0].exp()).sum::<f64>();
    let c_p = y[g.stop().0];
    GlobalSweeps { t, d, y, down, a_p, c_p }
}

/// Inner (per-block) solver knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct InnerConfig {
    /// Smoothed-max sharpness stages, ascending.
    pub stages: Vec<f64>,
    /// Gradient iterations per smoothed stage.
    pub iters_per_stage: usize,
    /// Iterations of the final exact-max polish stage.
    pub exact_iters: usize,
    /// Relative improvement stopping tolerance per stage.
    pub rel_tol: f64,
}

impl Default for InnerConfig {
    fn default() -> Self {
        InnerConfig {
            stages: vec![8.0, 32.0, 128.0],
            iters_per_stage: 40,
            exact_iters: 20,
            rel_tol: 1e-9,
        }
    }
}

/// One proximal (consensus) term of a block subproblem:
/// `(rho/2) * (x[sub] - target)^2` with `target = z_v - u_v`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsensusTerm {
    /// Variable index in the *sub-MDG*'s node space.
    pub sub: usize,
    /// Proximal target `z - u`.
    pub target: f64,
}

/// A self-contained block subproblem. Everything a worker needs — local
/// or remote — to run the x-update; solving it is a pure function of
/// this value, which is what makes in-process and TCP workers agree
/// bitwise and the whole solve deterministic across thread counts.
#[derive(Debug, Clone)]
pub struct BlockJob {
    /// The block's sub-MDG (home + ghost + virtual nodes).
    pub graph: Mdg,
    /// The full machine (processor count and transfer constants are the
    /// global ones; `A_p`'s `1/p` must match the global scaling).
    pub machine: Machine,
    /// Constant added to the sub-MDG's `A_p` so the block's area model
    /// equals the global `A_p` at the consensus point.
    pub area_off: f64,
    /// Current ADMM penalty weight.
    pub rho: f64,
    /// Start iterate in sub-MDG node space (virtuals and START/STOP 0).
    pub x0: Vec<f64>,
    /// Sub-MDG indices of the free variables (home + ghost nodes);
    /// everything else stays pinned at `x0`.
    pub free: Vec<usize>,
    /// Proximal terms for the block's consensus variables.
    pub cons: Vec<ConsensusTerm>,
    /// Inner solver configuration.
    pub inner: InnerConfig,
}

/// Result of one block x-update.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSolution {
    /// Final iterate in sub-MDG node space.
    pub x: Vec<f64>,
    /// Inner gradient iterations spent.
    pub iters: usize,
    /// Final block-model `Phi` (smoothed-exact, without the penalty).
    pub phi_model: f64,
}

/// Index maps the coordinator keeps per block (never shipped to workers).
#[derive(Debug, Clone)]
pub struct BlockMaps {
    /// Sub-MDG node id per global node id (`usize::MAX` when the global
    /// node is not in this block's sub-MDG).
    pub sub_of: Vec<usize>,
    /// Global consensus node per entry of `BlockJob::cons` (same order).
    pub cons_global: Vec<NodeId>,
}

/// Frozen transfer cost a single excluded edge contributes to one
/// endpoint's `T`, replicating the objective's per-edge terms (see
/// `MdgObjective::new`) at fixed processor counts. `sender` picks the
/// `t^S` (source) or `t^R` (destination) side; `p_self` / `p_other` are
/// the endpoint processor counts at the consensus point.
fn frozen_edge_cost(
    machine: &Machine,
    transfers: &[paradigm_mdg::ArrayTransfer],
    sender: bool,
    p_self: f64,
    p_other: f64,
) -> f64 {
    let x = &machine.xfer;
    let mut acc = 0.0;
    for t in transfers {
        let l = t.bytes as f64;
        acc += match (t.kind, sender) {
            (TransferKind::OneD, true) => {
                (x.t_ss).max(x.t_ss * p_other / p_self) + l * x.t_ps / p_self
            }
            (TransferKind::OneD, false) => {
                (x.t_sr).max(x.t_sr * p_other / p_self) + l * x.t_pr / p_self
            }
            (TransferKind::TwoD, true) => x.t_ss * p_other + l * x.t_ps / p_self,
            (TransferKind::TwoD, false) => x.t_sr * p_other + l * x.t_pr / p_self,
        };
    }
    acc
}

/// Fold a non-negative constant into Amdahl parameters so the adjusted
/// cost satisfies `T'(q) = T(q) + corr` for *every* `q`: the serial part
/// absorbs the constant (`alpha' tau' = alpha tau + corr`) while the
/// parallel part is preserved (`(1 - alpha') tau' = (1 - alpha) tau`).
fn fold_constant(cost: AmdahlParams, corr: f64) -> AmdahlParams {
    if corr <= 0.0 {
        return cost;
    }
    let tau = cost.tau + corr;
    let alpha = ((cost.alpha * cost.tau + corr) / tau).clamp(0.0, 1.0);
    AmdahlParams::new(alpha, tau)
}

/// Build block `b`'s subproblem at the consensus point `x` (a full
/// global-node-indexed vector; boundary entries are the current `z`).
/// `dual` maps this block's consensus nodes to their scaled duals `u`.
#[allow(clippy::too_many_arguments)]
pub fn build_block_problem(
    g: &Mdg,
    machine: &Machine,
    part: &Partition,
    b: usize,
    sw: &GlobalSweeps,
    x: &[f64],
    dual: &std::collections::BTreeMap<NodeId, f64>,
    rho: f64,
    inner: &InnerConfig,
) -> (BlockJob, BlockMaps) {
    let n = g.node_count();
    let mut in_sub = vec![false; n];
    let mut is_home = vec![false; n];
    for &v in &part.members[b] {
        in_sub[v.0] = true;
        is_home[v.0] = true;
    }
    // Ghosts: opposite endpoints of this block's cut edges.
    for &e in &part.cut_edges {
        let edge = g.edge(e);
        if part.block_of[edge.src] == b {
            in_sub[edge.dst] = true;
        } else if part.block_of[edge.dst] == b {
            in_sub[edge.src] = true;
        }
    }
    let real: Vec<NodeId> = (0..n).filter(|&i| in_sub[i]).map(NodeId).collect();

    // An edge belongs to the sub-MDG iff it touches a home node (both
    // endpoints are then in the sub by construction). Ghost-ghost and
    // ghost-outside edges are frozen into ent/exit/corr instead.
    let included =
        |src: usize, dst: usize| in_sub[src] && in_sub[dst] && (is_home[src] || is_home[dst]);

    // Frozen entry/exit offsets and ghost corrections.
    let mut ent = vec![0.0_f64; n];
    let mut exit = vec![0.0_f64; n];
    let mut corr = vec![0.0_f64; n];
    for &v in &real {
        let p_self = x[v.0].exp();
        for &e in g.in_edges(v) {
            let edge = g.edge(e);
            if g.node(NodeId(edge.src)).is_structural() || included(edge.src, edge.dst) {
                continue;
            }
            ent[v.0] = ent[v.0].max(sw.y[edge.src] + sw.d[e.0]);
            corr[v.0] +=
                frozen_edge_cost(machine, &edge.transfers, false, p_self, x[edge.src].exp());
        }
        for &e in g.out_edges(v) {
            let edge = g.edge(e);
            if g.node(NodeId(edge.dst)).is_structural() || included(edge.src, edge.dst) {
                continue;
            }
            exit[v.0] = exit[v.0].max(sw.d[e.0] + sw.down[edge.dst]);
            corr[v.0] +=
                frozen_edge_cost(machine, &edge.transfers, true, p_self, x[edge.dst].exp());
        }
    }

    // Bypass: longest START->STOP path through nodes outside the sub.
    let mut y_out = vec![0.0_f64; n];
    for &v in g.topo_order() {
        if in_sub[v.0] {
            continue;
        }
        let mut start = 0.0_f64;
        for &e in g.in_edges(v) {
            let edge = g.edge(e);
            if !in_sub[edge.src] {
                start = start.max(y_out[edge.src] + sw.d[e.0]);
            }
        }
        y_out[v.0] = start + sw.t[v.0];
    }
    let c_base = y_out[g.stop().0];

    // Assemble the sub-MDG: real nodes in ascending global id, then the
    // virtuals. Builder ids shift by +1 in the finished graph.
    let mut bld = MdgBuilder::new(format!("{}::block{}", g.name(), b));
    let mut sub_of = vec![usize::MAX; n];
    for &v in &real {
        let node = g.node(v);
        let cost = if is_home[v.0] { node.cost } else { fold_constant(node.cost, corr[v.0]) };
        let bid = bld.compute_with_meta(node.name.clone(), cost, node.meta.clone());
        sub_of[v.0] = bid.0 + 1;
    }
    let mut virt_tau = 0.0_f64; // total constant area the virtuals add
    for (_, edge) in g.edges() {
        if included(edge.src, edge.dst) {
            bld.edge(
                NodeId(sub_of[edge.src] - 1),
                NodeId(sub_of[edge.dst] - 1),
                edge.transfers.clone(),
            );
        }
    }
    for &v in &real {
        if ent[v.0] > 0.0 {
            let evid = bld.compute(format!("ENT@{}", v.0), AmdahlParams::new(1.0, ent[v.0]));
            bld.edge(evid, NodeId(sub_of[v.0] - 1), Vec::new());
            virt_tau += ent[v.0];
        }
        if exit[v.0] > 0.0 {
            let xvid = bld.compute(format!("EXT@{}", v.0), AmdahlParams::new(1.0, exit[v.0]));
            bld.edge(NodeId(sub_of[v.0] - 1), xvid, Vec::new());
            virt_tau += exit[v.0];
        }
    }
    if c_base > 0.0 {
        bld.compute("CB", AmdahlParams::new(1.0, c_base));
        virt_tau += c_base;
    }
    let sub_g = bld.finish().expect("block sub-MDG construction cannot fail");

    // Area offset: the sub model's A_p at x0 is (1/p)(sum of real-node
    // global T * p + virtual taus at p = 1); the offset restores the
    // global A_p. Ghost corrections make adjusted real T equal global T
    // at the consensus point, so global sweep values suffice here.
    let inv_p = 1.0 / machine.procs as f64;
    let a_sub0 = inv_p * (real.iter().map(|&v| sw.t[v.0] * x[v.0].exp()).sum::<f64>() + virt_tau);
    let area_off = sw.a_p - a_sub0;

    // Start iterate, free set, consensus terms.
    let mut x0 = vec![0.0_f64; sub_g.node_count()];
    let mut free = Vec::with_capacity(real.len());
    let mut cons = Vec::new();
    let mut cons_global = Vec::new();
    for &v in &real {
        let si = sub_of[v.0];
        x0[si] = x[v.0];
        free.push(si);
        if part.is_boundary(v) {
            let u = dual.get(&v).copied().unwrap_or(0.0);
            cons.push(ConsensusTerm { sub: si, target: x[v.0] - u });
            cons_global.push(v);
        }
    }

    (
        BlockJob {
            graph: sub_g,
            machine: *machine,
            area_off,
            rho,
            x0,
            free,
            cons,
            inner: inner.clone(),
        },
        BlockMaps { sub_of, cons_global },
    )
}

/// Speculative line-search width: when the first backtracking probe
/// fails at a smoothed stage, the next [`SPEC_K`] step halvings are
/// evaluated in one batched tape sweep instead of sequentially.
const SPEC_K: usize = 4;

/// Solve one block subproblem: projected gradient with Armijo
/// backtracking on `smax(area_off + A_p, C_p) + (rho/2) sum (x_i -
/// target_i)^2` over the box `[0, ln p]`, moving only the free
/// variables. A pure function of `job` — no randomness, no
/// time-dependence — so every backend produces the identical result.
///
/// Smoothed stages speculate their backtracking through the batched
/// tape kernels: the first probe stays scalar (it usually accepts), and
/// on failure the next [`SPEC_K`] candidate steps are scored by one
/// K-wide evaluation. The exact polish stage stays fully scalar so
/// exact `max` tie-breaking is untouched.
pub fn solve_block_job(job: &BlockJob, bw: &mut BatchWorkspace) -> Result<BlockSolution, String> {
    let obj = MdgObjective::try_new(&job.graph, job.machine)?;
    let n = obj.num_vars();
    let ub = obj.x_upper();
    let mut is_free = vec![false; n];
    for &i in &job.free {
        if i >= n {
            return Err(format!("free index {i} out of range for {n} sub variables"));
        }
        is_free[i] = true;
    }
    for c in &job.cons {
        if c.sub >= n {
            return Err(format!("consensus index {} out of range", c.sub));
        }
        if !c.target.is_finite() {
            return Err(format!("non-finite consensus target for sub variable {}", c.sub));
        }
    }
    if !(job.rho.is_finite() && job.rho >= 0.0) {
        return Err(format!("invalid rho {}", job.rho));
    }
    let mut x: Vec<f64> = job.x0.clone();
    if x.len() != n {
        return Err(format!("x0 length {} != {} sub variables", x.len(), n));
    }
    for (i, xi) in x.iter_mut().enumerate() {
        if is_free[i] {
            *xi = xi.clamp(0.0, ub);
        }
    }

    let mut grad_a = Vec::new();
    let mut grad_c = Vec::new();
    let mut grad = vec![0.0_f64; n];
    let mut trial = vec![0.0_f64; n];
    let mut iters = 0usize;
    let mut phi_model = f64::INFINITY;

    // Penalized objective value + gradient at `x`.
    let eval_grad = |x: &[f64],
                     sharp: Sharpness,
                     grad: &mut [f64],
                     grad_a: &mut Vec<f64>,
                     grad_c: &mut Vec<f64>,
                     ws: &mut SolverWorkspace|
     -> (f64, f64) {
        let parts = obj.eval_grad_parts_with(x, sharp, &mut ws.scratch, grad_a, grad_c);
        let a = (job.area_off + parts.a_p).max(0.0);
        let (phi, wa, wc) = smax_pair_weights(a, parts.c_p, sharp);
        let mut f = phi;
        for j in 0..grad.len() {
            grad[j] = if is_free[j] { wa * grad_a[j] + wc * grad_c[j] } else { 0.0 };
        }
        for c in &job.cons {
            let diff = x[c.sub] - c.target;
            f += 0.5 * job.rho * diff * diff;
            grad[c.sub] += job.rho * diff;
        }
        (f, phi)
    };
    // Penalized objective value only (line-search probes).
    let eval_val = |x: &[f64], sharp: Sharpness, ws: &mut SolverWorkspace| -> f64 {
        let parts = obj.eval_with(x, sharp, &mut ws.scratch);
        let a = (job.area_off + parts.a_p).max(0.0);
        let (phi, _, _) = smax_pair_weights(a, parts.c_p, sharp);
        let mut f = phi;
        for c in &job.cons {
            let diff = x[c.sub] - c.target;
            f += 0.5 * job.rho * diff * diff;
        }
        f
    };

    let mut stages: Vec<(Sharpness, usize)> = job
        .inner
        .stages
        .iter()
        .map(|&s| (Sharpness::Smooth(s), job.inner.iters_per_stage))
        .collect();
    stages.push((Sharpness::Exact, job.inner.exact_iters));
    for (sharp, max_iters) in stages {
        let mut step = 0.25_f64;
        let (mut f_cur, phi_cur) =
            eval_grad(&x, sharp, &mut grad, &mut grad_a, &mut grad_c, &mut bw.inner);
        phi_model = phi_cur;
        for _ in 0..max_iters {
            iters += 1;
            let mut accepted = false;
            if matches!(sharp, Sharpness::Smooth(_)) {
                // First probe stays scalar: it accepts most of the time,
                // so batching it would waste the other lanes.
                for j in 0..n {
                    trial[j] =
                        if is_free[j] { (x[j] - step * grad[j]).clamp(0.0, ub) } else { x[j] };
                }
                let f_new = eval_val(&trial, sharp, &mut bw.inner);
                let decrease: f64 = grad
                    .iter()
                    .zip(x.iter().zip(trial.iter()))
                    .map(|(g, (xi, ti))| g * (xi - ti))
                    .sum();
                if f_new <= f_cur - 1e-4 * decrease && f_new.is_finite() {
                    accepted = true;
                } else {
                    // Speculate the next SPEC_K halvings through one
                    // batched sweep per round, scanning lanes in
                    // halving order so the accepted step is the first
                    // one sequential backtracking would have taken.
                    let mut probes = 1usize;
                    'spec: while probes < 40 {
                        let mut lane_steps = [0.0_f64; SPEC_K];
                        let mut kk = 0usize;
                        let mut s = step;
                        for slot in lane_steps.iter_mut() {
                            s *= 0.5;
                            if s < 1e-14 {
                                break;
                            }
                            *slot = s;
                            kk += 1;
                        }
                        if kk == 0 {
                            break;
                        }
                        bw.ensure_lanes(n, kk);
                        let BatchWorkspace { scratch, trials, parts_new, .. } = &mut *bw;
                        for (l, &sl) in lane_steps.iter().take(kk).enumerate() {
                            for j in 0..n {
                                trials[j * kk + l] = if is_free[j] {
                                    (x[j] - sl * grad[j]).clamp(0.0, ub)
                                } else {
                                    x[j]
                                };
                            }
                        }
                        obj.eval_batch_with(trials, kk, sharp, scratch, &mut parts_new[..kk]);
                        for l in 0..kk {
                            probes += 1;
                            let a = (job.area_off + parts_new[l].a_p).max(0.0);
                            let (phi, _, _) = smax_pair_weights(a, parts_new[l].c_p, sharp);
                            let mut f_new = phi;
                            for c in &job.cons {
                                let diff = trials[c.sub * kk + l] - c.target;
                                f_new += 0.5 * job.rho * diff * diff;
                            }
                            let mut decrease = 0.0;
                            for j in 0..n {
                                decrease += grad[j] * (x[j] - trials[j * kk + l]);
                            }
                            if f_new <= f_cur - 1e-4 * decrease && f_new.is_finite() {
                                step = lane_steps[l];
                                for j in 0..n {
                                    trial[j] = trials[j * kk + l];
                                }
                                accepted = true;
                                break 'spec;
                            }
                            if probes >= 40 {
                                break 'spec;
                            }
                        }
                        step = lane_steps[kk - 1];
                        if kk < SPEC_K {
                            // Some lane fell below the step floor: the
                            // sequential search would have given up here.
                            break;
                        }
                    }
                }
            } else {
                // Exact polish: fully sequential scalar backtracking so
                // the exact-stage trajectory is untouched by batching.
                for _ in 0..40 {
                    for j in 0..n {
                        trial[j] =
                            if is_free[j] { (x[j] - step * grad[j]).clamp(0.0, ub) } else { x[j] };
                    }
                    let f_new = eval_val(&trial, sharp, &mut bw.inner);
                    let decrease: f64 = grad
                        .iter()
                        .zip(x.iter().zip(trial.iter()))
                        .map(|(g, (xi, ti))| g * (xi - ti))
                        .sum();
                    if f_new <= f_cur - 1e-4 * decrease && f_new.is_finite() {
                        accepted = true;
                        break;
                    }
                    step *= 0.5;
                    if step < 1e-14 {
                        break;
                    }
                }
            }
            if !accepted {
                break;
            }
            let moved: f64 =
                x.iter().zip(trial.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            x.copy_from_slice(&trial);
            let (f_new, phi_new) =
                eval_grad(&x, sharp, &mut grad, &mut grad_a, &mut grad_c, &mut bw.inner);
            let improve = f_cur - f_new;
            f_cur = f_new;
            phi_model = phi_new;
            step = (step * 1.8).min(4.0);
            if improve <= job.inner.rel_tol * f_cur.abs() && moved < 1e-10 {
                break;
            }
        }
    }
    if !phi_model.is_finite() {
        return Err(format!("block solve produced non-finite model Phi {phi_model}"));
    }
    Ok(BlockSolution { x, iters, phi_model })
}
