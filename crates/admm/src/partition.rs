//! Deterministic multilevel MDG partitioning.
//!
//! The ADMM decomposition wants blocks that (a) balance the convex
//! subproblem sizes and (b) cut as little transfer traffic as possible,
//! because every cut edge turns its endpoints into consensus variables
//! that must be negotiated across outer iterations. This is the classic
//! graph-partitioning trade-off, solved here with the standard
//! multilevel recipe scaled down to what the coordinator needs:
//!
//! 1. **Coarsen** — repeated heavy-edge matching (visit nodes in id
//!    order, match each unmatched node to its unmatched neighbour across
//!    the heaviest incident edge) until the graph is small or matching
//!    stalls;
//! 2. **Initial partition** — contiguous chunks of the coarse graph's
//!    topological order, balanced by node weight (topological
//!    contiguity means the initial cut only crosses between consecutive
//!    phases of the computation, which is already close to a min cut
//!    for layered graphs);
//! 3. **Refine** — project the assignment back through each matching
//!    level, then greedy boundary moves: shift a node to the
//!    neighbouring block with the largest cut-weight gain whenever the
//!    balance constraint keeps holding.
//!
//! Everything runs serially over index-ordered loops with explicit
//! tie-breaks, so the result is a pure function of `(graph, options)` —
//! bitwise identical across runs, machines, and thread counts. The
//! convergence property tests pin that.

use paradigm_mdg::{EdgeId, Mdg, NodeId};

/// Partitioning options.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionOptions {
    /// Target number of compute nodes per block. The block count is
    /// `ceil(compute_nodes / target_block_nodes)`, at least 1.
    pub target_block_nodes: usize,
    /// Graphs with fewer compute nodes than this stay in one block
    /// (tiny problems gain nothing from consensus overhead).
    pub min_partition_nodes: usize,
    /// Allowed node-weight imbalance: every block must stay below
    /// `(1 + imbalance) * total_weight / blocks`.
    pub imbalance: f64,
    /// Boundary-refinement passes per uncoarsening level.
    pub refine_passes: usize,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            target_block_nodes: 512,
            min_partition_nodes: 128,
            imbalance: 0.2,
            refine_passes: 4,
        }
    }
}

impl PartitionOptions {
    /// Force a specific block count (used by `paradigm partition
    /// --blocks` and the convergence tests): sets the target size so
    /// `blocks` chunks result and drops the single-block floor.
    pub fn with_blocks(g: &Mdg, blocks: usize) -> Self {
        let n = g.compute_node_count().max(1);
        PartitionOptions {
            target_block_nodes: n.div_ceil(blocks.max(1)),
            min_partition_nodes: 0,
            ..PartitionOptions::default()
        }
    }
}

/// The result of partitioning: a block assignment for every compute
/// node plus the derived consensus structure.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Number of blocks (>= 1).
    pub blocks: usize,
    /// `block_of[node.0]` = block index for compute nodes, `usize::MAX`
    /// for the structural START/STOP nodes.
    pub block_of: Vec<usize>,
    /// Compute nodes of each block, ascending by node id.
    pub members: Vec<Vec<NodeId>>,
    /// Edges whose endpoints live in different blocks (structural edges
    /// never count; an edge to START/STOP is not a cut).
    pub cut_edges: Vec<EdgeId>,
    /// Compute nodes incident to at least one cut edge — the consensus
    /// variables of the ADMM formulation, ascending by node id.
    pub boundary: Vec<NodeId>,
    /// Total cut weight (bytes + 1 per cut edge), the refinement
    /// objective value.
    pub cut_weight: u64,
}

impl Partition {
    /// True when `id` is a consensus (boundary) variable.
    pub fn is_boundary(&self, id: NodeId) -> bool {
        self.boundary.binary_search(&id).is_ok()
    }

    /// Human-readable summary used by `paradigm partition`.
    pub fn render(&self, g: &Mdg) -> String {
        let mut out = format!(
            "partition of `{}`: {} blocks, {} cut edges (weight {}), {} boundary nodes\n",
            g.name(),
            self.blocks,
            self.cut_edges.len(),
            self.cut_weight,
            self.boundary.len()
        );
        for (b, m) in self.members.iter().enumerate() {
            let w: f64 = m.iter().map(|&v| g.node(v).cost.tau).sum();
            let boundary = m.iter().filter(|&&v| self.is_boundary(v)).count();
            out.push_str(&format!(
                "  block {b:>3}: {:>6} nodes ({boundary} boundary), weight {w:.3}\n",
                m.len()
            ));
        }
        out
    }
}

/// Edge weight for the min-cut objective: transferred bytes plus one,
/// so pure precedence edges still prefer staying inside a block.
fn edge_weight(g: &Mdg, e: EdgeId) -> u64 {
    g.edge(e).total_bytes() + 1
}

/// Node weight for the balance constraint: single-processor time,
/// scaled to an integer so balance arithmetic is exact. A floor of 1
/// keeps zero-cost nodes from piling into one block for free.
fn node_weight(g: &Mdg, v: NodeId) -> u64 {
    (g.node(v).cost.tau * 1e6) as u64 + 1
}

/// A small undirected multigraph over `0..n` used by the coarsening
/// levels: adjacency as (neighbor, weight) lists, parallel edges merged.
struct Level {
    /// Node weights.
    w: Vec<u64>,
    /// Merged undirected adjacency, each list sorted by neighbor.
    adj: Vec<Vec<(usize, u64)>>,
    /// Topological rank used for the initial contiguous split (for the
    /// finest level: position in `Mdg::topo_order`; coarser levels
    /// inherit the minimum rank of their members).
    rank: Vec<usize>,
    /// Map into the next-finer level: `fine_of[coarse]` = the 1..=2
    /// fine nodes this coarse node represents.
    fine_of: Vec<(usize, Option<usize>)>,
}

/// Partition `g`'s compute nodes into balanced blocks along min-weight
/// cuts. Deterministic: a pure function of `(g, opts)`.
pub fn partition_mdg(g: &Mdg, opts: &PartitionOptions) -> Partition {
    // Dense ids for compute nodes: compact[node.0] = Some(idx).
    let mut compact = vec![usize::MAX; g.node_count()];
    let mut nodes = Vec::new();
    for (id, n) in g.nodes() {
        if !n.is_structural() {
            compact[id.0] = nodes.len();
            nodes.push(id);
        }
    }
    let n = nodes.len();
    let blocks = if n < opts.min_partition_nodes.max(1) || n == 0 {
        1
    } else {
        n.div_ceil(opts.target_block_nodes.max(1)).max(1)
    };
    if blocks <= 1 || n <= 1 {
        return finish_partition(g, &nodes, vec![0; n], 1);
    }

    // Finest level from the compute subgraph (undirected, merged).
    let mut rank = vec![0usize; n];
    for (pos, &v) in g.topo_order().iter().enumerate() {
        if compact[v.0] != usize::MAX {
            rank[compact[v.0]] = pos;
        }
    }
    let mut pairs: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    for (e, edge) in g.edges() {
        let (s, d) = (compact[edge.src], compact[edge.dst]);
        if s == usize::MAX || d == usize::MAX {
            continue;
        }
        let w = edge_weight(g, e);
        pairs[s].push((d, w));
        pairs[d].push((s, w));
    }
    let finest = Level {
        w: nodes.iter().map(|&v| node_weight(g, v)).collect(),
        adj: merge_adj(pairs),
        rank,
        fine_of: (0..n).map(|i| (i, None)).collect(),
    };

    // Coarsen until small (a handful of nodes per target block) or the
    // matching stops making progress.
    let coarse_target = (blocks * 8).max(32);
    let mut levels = vec![finest];
    while levels.last().unwrap().w.len() > coarse_target {
        let next = coarsen(levels.last().unwrap());
        if next.w.len() as f64 > levels.last().unwrap().w.len() as f64 * 0.95 {
            break; // matching stalled; more passes will not help
        }
        levels.push(next);
    }

    // Initial partition of the coarsest level: contiguous chunks of the
    // rank order, balanced by node weight.
    let coarsest = levels.last().unwrap();
    let mut order: Vec<usize> = (0..coarsest.w.len()).collect();
    order.sort_by_key(|&i| (coarsest.rank[i], i));
    let total: u64 = coarsest.w.iter().sum();
    let mut assign = vec![0usize; coarsest.w.len()];
    let mut acc = 0u64;
    let mut b = 0usize;
    for &i in &order {
        // Close the block once it holds its fair share of the weight.
        if b + 1 < blocks && acc + coarsest.w[i] / 2 >= total * (b as u64 + 1) / blocks as u64 {
            b += 1;
        }
        assign[i] = b;
        acc += coarsest.w[i];
    }

    // Uncoarsen with boundary refinement at every level.
    let cap = ((total as f64 / blocks as f64) * (1.0 + opts.imbalance)).ceil() as u64;
    for li in (0..levels.len()).rev() {
        if li + 1 < levels.len() {
            // Project the coarser assignment down one level.
            let coarser = &levels[li + 1];
            let mut fine_assign = vec![0usize; levels[li].w.len()];
            for (c, &(f0, f1)) in coarser.fine_of.iter().enumerate() {
                fine_assign[f0] = assign[c];
                if let Some(f1) = f1 {
                    fine_assign[f1] = assign[c];
                }
            }
            assign = fine_assign;
        }
        refine(&levels[li], &mut assign, blocks, cap, opts.refine_passes);
    }

    finish_partition(g, &nodes, assign, blocks)
}

/// Merge duplicate neighbors, summing weights; drop self-loops.
fn merge_adj(pairs: Vec<Vec<(usize, u64)>>) -> Vec<Vec<(usize, u64)>> {
    pairs
        .into_iter()
        .enumerate()
        .map(|(i, mut list)| {
            list.sort_unstable();
            let mut merged: Vec<(usize, u64)> = Vec::with_capacity(list.len());
            for (nb, w) in list {
                if nb == i {
                    continue;
                }
                match merged.last_mut() {
                    Some((last, lw)) if *last == nb => *lw += w,
                    _ => merged.push((nb, w)),
                }
            }
            merged
        })
        .collect()
}

/// One heavy-edge-matching coarsening pass.
fn coarsen(level: &Level) -> Level {
    let n = level.w.len();
    let mut mate = vec![usize::MAX; n];
    for i in 0..n {
        if mate[i] != usize::MAX {
            continue;
        }
        // Heaviest edge to an unmatched neighbor; ties -> smaller id.
        let mut best: Option<(u64, usize)> = None;
        for &(nb, w) in &level.adj[i] {
            if mate[nb] != usize::MAX {
                continue;
            }
            let better = match best {
                None => true,
                Some((bw, bn)) => w > bw || (w == bw && nb < bn),
            };
            if better {
                best = Some((w, nb));
            }
        }
        if let Some((_, nb)) = best {
            mate[i] = nb;
            mate[nb] = i;
        }
    }

    // Build the coarse node set: matched pairs collapse (the smaller id
    // leads), singletons carry over. Coarse ids follow fine-id order.
    let mut coarse_of = vec![usize::MAX; n];
    let mut fine_of = Vec::new();
    let mut w = Vec::new();
    let mut rank = Vec::new();
    for i in 0..n {
        if coarse_of[i] != usize::MAX {
            continue;
        }
        let c = fine_of.len();
        coarse_of[i] = c;
        if mate[i] != usize::MAX && mate[i] > i {
            let j = mate[i];
            coarse_of[j] = c;
            fine_of.push((i, Some(j)));
            w.push(level.w[i] + level.w[j]);
            rank.push(level.rank[i].min(level.rank[j]));
        } else {
            fine_of.push((i, None));
            w.push(level.w[i]);
            rank.push(level.rank[i]);
        }
    }

    let mut pairs: Vec<Vec<(usize, u64)>> = vec![Vec::new(); fine_of.len()];
    for i in 0..n {
        for &(nb, ew) in &level.adj[i] {
            if i < nb {
                let (ci, cn) = (coarse_of[i], coarse_of[nb]);
                if ci != cn {
                    pairs[ci].push((cn, ew));
                    pairs[cn].push((ci, ew));
                }
            }
        }
    }
    Level { w, adj: merge_adj(pairs), rank, fine_of }
}

/// Greedy boundary refinement: move nodes to the adjacent block with
/// the largest positive cut gain, respecting the balance cap. Node
/// order and tie-breaks are fixed, so refinement is deterministic.
fn refine(level: &Level, assign: &mut [usize], blocks: usize, cap: u64, passes: usize) {
    let n = level.w.len();
    let mut block_w = vec![0u64; blocks];
    for i in 0..n {
        block_w[assign[i]] += level.w[i];
    }
    let mut gain = vec![0i64; blocks];
    for _ in 0..passes {
        let mut moved = 0usize;
        for i in 0..n {
            let home = assign[i];
            // Cut weight toward each adjacent block.
            let mut touched: Vec<usize> = Vec::new();
            for &(nb, w) in &level.adj[i] {
                let b = assign[nb];
                if gain[b] == 0 {
                    touched.push(b);
                }
                gain[b] += w as i64;
            }
            let internal = gain[home];
            let mut best: Option<(i64, usize)> = None;
            for &b in &touched {
                if b == home {
                    continue;
                }
                let d = gain[b] - internal;
                let better = match best {
                    None => d > 0,
                    Some((bd, bb)) => d > bd || (d == bd && b < bb),
                };
                if better && block_w[b] + level.w[i] <= cap && block_w[home] > level.w[i] {
                    best = Some((d, b));
                }
            }
            for &b in &touched {
                gain[b] = 0;
            }
            if let Some((_, b)) = best {
                block_w[home] -= level.w[i];
                block_w[b] += level.w[i];
                assign[i] = b;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

/// Renumber surviving blocks densely and derive the consensus metadata.
fn finish_partition(g: &Mdg, nodes: &[NodeId], assign: Vec<usize>, blocks: usize) -> Partition {
    // Refinement can empty a block; renumber densely in first-seen-by-
    // block-index order so block ids stay stable.
    let mut remap = vec![usize::MAX; blocks];
    let mut next = 0usize;
    for (b, slot) in remap.iter_mut().enumerate() {
        if assign.contains(&b) {
            *slot = next;
            next += 1;
        }
    }
    let blocks = next.max(1);
    let mut block_of = vec![usize::MAX; g.node_count()];
    let mut members = vec![Vec::new(); blocks];
    for (i, &v) in nodes.iter().enumerate() {
        let b = remap[assign[i]];
        block_of[v.0] = b;
        members[b].push(v);
    }
    let mut cut_edges = Vec::new();
    let mut boundary_flag = vec![false; g.node_count()];
    let mut cut_weight = 0u64;
    for (e, edge) in g.edges() {
        let (s, d) = (block_of[edge.src], block_of[edge.dst]);
        if s != usize::MAX && d != usize::MAX && s != d {
            cut_edges.push(e);
            cut_weight += edge_weight(g, e);
            boundary_flag[edge.src] = true;
            boundary_flag[edge.dst] = true;
        }
    }
    let boundary =
        (0..g.node_count()).filter(|&i| boundary_flag[i]).map(NodeId).collect::<Vec<_>>();
    Partition { blocks, block_of, members, cut_edges, boundary, cut_weight }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_mdg::{fork_join_mdg, random_layered_mdg, RandomMdgConfig};

    fn medium() -> Mdg {
        random_layered_mdg(&RandomMdgConfig::sized(600), 11)
    }

    #[test]
    fn small_graphs_stay_single_block() {
        let g = paradigm_mdg::example_fig1_mdg();
        let p = partition_mdg(&g, &PartitionOptions::default());
        assert_eq!(p.blocks, 1);
        assert!(p.cut_edges.is_empty() && p.boundary.is_empty());
        assert_eq!(p.members[0].len(), g.compute_node_count());
    }

    #[test]
    fn blocks_are_balanced_and_cover_everything() {
        let g = medium();
        let opts = PartitionOptions {
            target_block_nodes: 100,
            min_partition_nodes: 0,
            ..PartitionOptions::default()
        };
        let p = partition_mdg(&g, &opts);
        assert!(p.blocks >= 4, "{} blocks", p.blocks);
        let covered: usize = p.members.iter().map(Vec::len).sum();
        assert_eq!(covered, g.compute_node_count());
        // Every member list agrees with block_of and is sorted.
        for (b, m) in p.members.iter().enumerate() {
            assert!(!m.is_empty(), "block {b} empty");
            assert!(m.windows(2).all(|w| w[0] < w[1]));
            for &v in m {
                assert_eq!(p.block_of[v.0], b);
            }
        }
        // Balance: node weights within the advertised cap.
        let total: u64 = (0..g.node_count())
            .filter(|&i| p.block_of[i] != usize::MAX)
            .map(|i| super::node_weight(&g, NodeId(i)))
            .sum();
        let cap = ((total as f64 / p.blocks as f64) * (1.0 + opts.imbalance)).ceil() as u64;
        for m in &p.members {
            let w: u64 = m.iter().map(|&v| super::node_weight(&g, v)).sum();
            assert!(w <= cap, "block weight {w} > cap {cap}");
        }
    }

    #[test]
    fn cut_edges_and_boundary_are_consistent() {
        let g = medium();
        let p = partition_mdg(&g, &PartitionOptions::with_blocks(&g, 6));
        assert!(!p.cut_edges.is_empty());
        for &e in &p.cut_edges {
            let edge = g.edge(e);
            assert_ne!(p.block_of[edge.src], p.block_of[edge.dst]);
            assert!(p.is_boundary(NodeId(edge.src)));
            assert!(p.is_boundary(NodeId(edge.dst)));
        }
        // No non-boundary node touches a cut edge.
        for &v in &p.boundary {
            let on_cut = g
                .in_edges(v)
                .iter()
                .chain(g.out_edges(v))
                .any(|e| p.cut_edges.binary_search(e).is_ok());
            assert!(on_cut, "boundary node {v:?} touches no cut edge");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = medium();
        let opts = PartitionOptions::with_blocks(&g, 8);
        let a = partition_mdg(&g, &opts);
        let b = partition_mdg(&g, &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn fork_join_cuts_are_cheap() {
        // Stage boundaries are single edges: the partitioner should find
        // cuts far below the worst case (width edges per boundary).
        let g = fork_join_mdg(8, 16, 3);
        let p = partition_mdg(&g, &PartitionOptions::with_blocks(&g, 4));
        assert!(p.blocks >= 2);
        assert!(
            p.cut_edges.len() <= 3 * 16,
            "{} cut edges for a fork-join that has 1-edge stage boundaries",
            p.cut_edges.len()
        );
    }

    #[test]
    fn with_blocks_hits_the_requested_count() {
        let g = medium();
        for want in [2usize, 4, 8] {
            let p = partition_mdg(&g, &PartitionOptions::with_blocks(&g, want));
            assert!(
                p.blocks >= want.saturating_sub(1) && p.blocks <= want,
                "asked {want}, got {}",
                p.blocks
            );
        }
    }
}
