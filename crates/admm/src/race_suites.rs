//! Model-check suite for bounded-staleness consensus.
//!
//! The chaos harness samples random drop patterns; this suite scripts a
//! worst-case alternating drop pattern and explores every interleaving
//! of the in-process backend's scoped solver threads, proving the stale
//! streak bound holds by construction rather than by luck.

use crate::block::{BlockJob, BlockSolution, InnerConfig};
use crate::consensus::{solve_admm, AdmmConfig, BlockBackend, InProcessBackend};
use paradigm_cost::Machine;
use paradigm_mdg::fork_join_mdg;
use paradigm_race::{explore, Config, Report, Suite};

/// Deterministic drop script around the real in-process backend: from
/// round 2 on, block `round % 2` is reported lost that round. Round 1 is
/// never dropped (there is no previous solution to reuse yet), and no
/// block is ever dropped twice in a row, so with `max_stale = 1` the
/// solve must succeed while still exercising stale reuse every round.
struct AlternatingDrops {
    inner: InProcessBackend,
    round: usize,
}

impl BlockBackend for AlternatingDrops {
    fn solve_blocks(&mut self, jobs: &[BlockJob]) -> Result<Vec<BlockSolution>, String> {
        self.inner.solve_blocks(jobs)
    }

    fn solve_blocks_partial(
        &mut self,
        jobs: &[BlockJob],
    ) -> Result<Vec<Option<BlockSolution>>, String> {
        let sols = self.inner.solve_blocks(jobs)?;
        self.round += 1;
        let round = self.round;
        Ok(sols
            .into_iter()
            .enumerate()
            .map(|(b, s)| (round == 1 || b != round % 2).then_some(s))
            .collect())
    }
}

/// Stale-tolerant consensus: on every interleaving of the two solver
/// threads, a block dropped each round never accumulates a stale streak
/// above `max_stale`, and the scripted drops really are served stale
/// (the tolerance path runs, it is not dead code).
fn run_consensus(cfg: &Config) -> Report {
    explore("consensus", cfg, || {
        // The workspace pool is process-global: clear it so pooled
        // buffers from earlier executions cannot change this run's
        // acquire/reuse event stream (the explorer requires the closure
        // to be deterministic under an identical schedule).
        paradigm_solver::workspace::reset_pool();
        let g = fork_join_mdg(2, 3, 2);
        let admm = AdmmConfig {
            max_stale: 1,
            max_outer: 4,
            eps: 1e-15, // unreachable: run all 4 rounds so drops happen
            // The invariant under test is staleness accounting, not
            // solution quality — a minimal inner ladder keeps the
            // per-schedule compute cheap so exhaustive exploration of
            // thousands of interleavings stays inside the CI budget.
            inner: InnerConfig {
                stages: vec![32.0],
                iters_per_stage: 4,
                exact_iters: 2,
                rel_tol: 1e-6,
            },
            ..AdmmConfig::with_blocks(&g, 2)
        };
        let mut backend = AlternatingDrops { inner: InProcessBackend { threads: 2 }, round: 0 };
        let res = solve_admm(&g, Machine::cm5(8), &admm, &mut backend)
            .expect("streaks of one stay within max_stale = 1");
        assert!(res.blocks_stale >= 1, "the drop script must exercise stale reuse");
        assert!(res.max_block_stale_rounds <= 1, "stale streak exceeded the configured budget");
        assert!(res.primal_residual.is_finite());
    })
}

/// The consensus layer's model-check suites.
pub fn suites() -> Vec<Suite> {
    vec![Suite {
        name: "consensus",
        about: "bounded-staleness consensus: stale streaks never exceed the budget",
        config: Config::with_bound(1),
        run: run_consensus,
    }]
}
