//! Processing cost model — Amdahl's law (paper Eq. 1, Lemma 1).
//!
//! `t^C(q) = (alpha + (1 - alpha)/q) * tau` is a posynomial in `q`
//! (coefficients `alpha*tau >= 0` and `(1-alpha)*tau >= 0`, exponents 0
//! and −1), and so is `t^C(q) * q = alpha*tau*q + (1-alpha)*tau` — the two
//! conditions Section 2 requires for the convex-programming equivalence.

use paradigm_mdg::AmdahlParams;

/// Processing cost `t^C(q)` of a loop with parameters `params` on `q`
/// (possibly fractional) processors.
pub fn processing_cost(params: AmdahlParams, q: f64) -> f64 {
    params.cost(q)
}

/// Processor-time area `t^C(q) * q` — the contribution of the loop to the
/// numerator of the average finish time `A_p`.
pub fn processing_area(params: AmdahlParams, q: f64) -> f64 {
    params.area(q)
}

/// Derivative `d t^C / d q = -(1 - alpha) * tau / q^2` — used by tests and
/// available for solvers working directly in `q`-space.
pub fn processing_cost_dq(params: AmdahlParams, q: f64) -> f64 {
    -(1.0 - params.alpha) * params.tau / (q * q)
}

/// Speedup `t^C(1) / t^C(q)`.
pub fn speedup(params: AmdahlParams, q: f64) -> f64 {
    if params.tau == 0.0 {
        return 1.0;
    }
    params.cost(1.0) / params.cost(q)
}

/// Efficiency `speedup / q`.
pub fn efficiency(params: AmdahlParams, q: f64) -> f64 {
    speedup(params, q) / q
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul() -> AmdahlParams {
        AmdahlParams::new(0.121, 298.47e-3)
    }

    #[test]
    fn cost_matches_closed_form() {
        let p = matmul();
        for q in [1.0, 2.0, 3.5, 8.0, 64.0] {
            let expect = (0.121 + 0.879 / q) * 298.47e-3;
            assert!((processing_cost(p, q) - expect).abs() < 1e-15);
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let p = matmul();
        for q in [1.5, 4.0, 16.0, 50.0] {
            let h = 1e-6 * q;
            let fd = (processing_cost(p, q + h) - processing_cost(p, q - h)) / (2.0 * h);
            let an = processing_cost_dq(p, q);
            assert!((fd - an).abs() <= 1e-6 * an.abs().max(1e-12), "q={q}: fd={fd}, analytic={an}");
        }
    }

    #[test]
    fn speedup_saturates_at_inverse_alpha() {
        let p = matmul();
        // Amdahl's asymptote: max speedup = 1/alpha.
        let s = speedup(p, 1e9);
        assert!(s < 1.0 / 0.121 + 1e-6);
        assert!(s > 1.0 / 0.121 - 1e-2);
    }

    #[test]
    fn efficiency_decreases_with_q() {
        let p = matmul();
        let mut prev = f64::INFINITY;
        for q in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
            let e = efficiency(p, q);
            assert!(e < prev);
            prev = e;
        }
    }

    /// Numerical verification of Lemma 1: t^C is convex in x = ln q
    /// (midpoint convexity on a grid), which is the property the
    /// geometric-programming transformation relies on.
    #[test]
    fn cost_is_logspace_convex() {
        let p = matmul();
        let f = |x: f64| processing_cost(p, x.exp());
        let xs: Vec<f64> = (0..=40).map(|i| i as f64 * 64.0_f64.ln() / 40.0).collect();
        for w in xs.windows(3) {
            let (a, b, c) = (w[0], w[1], w[2]);
            // b is the midpoint of (a, c) by construction.
            assert!(f(b) <= 0.5 * (f(a) + f(c)) + 1e-12, "log-convexity violated at {b}");
        }
    }

    /// And the second condition: t^C(q) * q is also posynomial, hence
    /// log-space convex.
    #[test]
    fn area_is_logspace_convex() {
        let p = matmul();
        let f = |x: f64| processing_area(p, x.exp());
        let xs: Vec<f64> = (0..=40).map(|i| i as f64 * 64.0_f64.ln() / 40.0).collect();
        for w in xs.windows(3) {
            let (a, b, c) = (w[0], w[1], w[2]);
            assert!(f(b) <= 0.5 * (f(a) + f(c)) + 1e-12);
        }
    }

    #[test]
    fn zero_tau_speedup_is_one() {
        let p = AmdahlParams::ZERO;
        assert_eq!(speedup(p, 16.0), 1.0);
    }
}
