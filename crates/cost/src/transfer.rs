//! Data-transfer cost model — paper Eq. (2) (1D) and Eq. (3) (2D),
//! Lemma 2.
//!
//! A transfer of an `L`-byte array from a node on `p_i` processors to a
//! node on `p_j` processors decomposes into three components:
//!
//! * a **send** component `t^S` charged to the *sending* node's weight
//!   (processors are busy injecting messages),
//! * a **network** component `t^D` that is the *edge weight* (no
//!   processor involvement),
//! * a **receive** component `t^R` charged to the *receiving* node's
//!   weight.
//!
//! For the 1D case (distribution dimension preserved) the data moves in
//! `max(p_i, p_j)` logical messages; for the 2D case (dimension flipped)
//! every one of the `p_i * p_j` processor pairs exchanges a block.
//!
//! `max(p_i, p_j)/p_i` is a *generalized* posynomial (pointwise max of
//! the monomials `1` and `p_j/p_i`), which keeps the log-space convexity
//! needed by the solver; the tests verify this numerically.

use crate::machine::TransferParams;
use paradigm_mdg::TransferKind;

/// The three components of one array transfer, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferCost {
    /// Send component `t^S` (added to the sending node's weight).
    pub send: f64,
    /// Network component `t^D` (the edge weight).
    pub network: f64,
    /// Receive component `t^R` (added to the receiving node's weight).
    pub recv: f64,
}

impl TransferCost {
    /// Sum of all three components.
    pub fn total(&self) -> f64 {
        self.send + self.network + self.recv
    }

    /// Component-wise sum.
    pub fn add(&self, other: &TransferCost) -> TransferCost {
        TransferCost {
            send: self.send + other.send,
            network: self.network + other.network,
            recv: self.recv + other.recv,
        }
    }

    /// The all-zero cost (empty transfer list).
    pub const ZERO: TransferCost = TransferCost { send: 0.0, network: 0.0, recv: 0.0 };
}

/// Send cost `t^S_ij` (paper Eq. 2/3, first line).
pub fn send_cost(kind: TransferKind, bytes: u64, pi: f64, pj: f64, m: &TransferParams) -> f64 {
    let l = bytes as f64;
    match kind {
        TransferKind::OneD => (pi.max(pj) / pi) * m.t_ss + (l / pi) * m.t_ps,
        TransferKind::TwoD => pj * m.t_ss + (l / pi) * m.t_ps,
    }
}

/// Network cost `t^D_ij` (paper Eq. 2/3, middle line). Zero on the CM-5.
pub fn network_cost(kind: TransferKind, bytes: u64, pi: f64, pj: f64, m: &TransferParams) -> f64 {
    let l = bytes as f64;
    match kind {
        TransferKind::OneD => (l / pi.max(pj)) * m.t_n,
        TransferKind::TwoD => (l / (pi * pj)) * m.t_n,
    }
}

/// Receive cost `t^R_ij` (paper Eq. 2/3, last line).
pub fn recv_cost(kind: TransferKind, bytes: u64, pi: f64, pj: f64, m: &TransferParams) -> f64 {
    let l = bytes as f64;
    match kind {
        TransferKind::OneD => (pi.max(pj) / pj) * m.t_sr + (l / pj) * m.t_pr,
        TransferKind::TwoD => pi * m.t_sr + (l / pj) * m.t_pr,
    }
}

/// All three components of one transfer at once.
pub fn transfer_components(
    kind: TransferKind,
    bytes: u64,
    pi: f64,
    pj: f64,
    m: &TransferParams,
) -> TransferCost {
    TransferCost {
        send: send_cost(kind, bytes, pi, pj, m),
        network: network_cost(kind, bytes, pi, pj, m),
        recv: recv_cost(kind, bytes, pi, pj, m),
    }
}

/// Combined cost of a whole edge (multiple arrays, possibly of mixed 1D/2D
/// kinds — the paper notes its implementation uses this extended form).
pub fn edge_components(
    transfers: &[paradigm_mdg::ArrayTransfer],
    pi: f64,
    pj: f64,
    m: &TransferParams,
) -> TransferCost {
    transfers.iter().fold(TransferCost::ZERO, |acc, t| {
        acc.add(&transfer_components(t.kind, t.bytes, pi, pj, m))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_mdg::ArrayTransfer;

    const L: u64 = 32 * 1024; // one 64x64 f64 matrix

    fn cm5() -> TransferParams {
        TransferParams::cm5()
    }

    #[test]
    fn one_d_equal_groups() {
        // p_i = p_j = p: max/p = 1 -> one startup each side, L/p bytes.
        let m = cm5();
        let p = 8.0;
        let c = transfer_components(TransferKind::OneD, L, p, p, &m);
        assert!((c.send - (m.t_ss + (L as f64 / p) * m.t_ps)).abs() < 1e-15);
        assert!((c.recv - (m.t_sr + (L as f64 / p) * m.t_pr)).abs() < 1e-15);
        assert_eq!(c.network, 0.0, "CM-5 network term is zero");
    }

    #[test]
    fn one_d_asymmetric_groups() {
        // p_i = 2, p_j = 8: senders issue max/p_i = 4 messages each.
        let m = cm5();
        let c = transfer_components(TransferKind::OneD, L, 2.0, 8.0, &m);
        let expect_send = 4.0 * m.t_ss + (L as f64 / 2.0) * m.t_ps;
        let expect_recv = 1.0 * m.t_sr + (L as f64 / 8.0) * m.t_pr;
        assert!((c.send - expect_send).abs() < 1e-15);
        assert!((c.recv - expect_recv).abs() < 1e-15);
    }

    #[test]
    fn two_d_all_pairs() {
        // 2D: every sender talks to every receiver.
        let m = cm5();
        let (pi, pj) = (4.0, 8.0);
        let c = transfer_components(TransferKind::TwoD, L, pi, pj, &m);
        assert!((c.send - (pj * m.t_ss + (L as f64 / pi) * m.t_ps)).abs() < 1e-15);
        assert!((c.recv - (pi * m.t_sr + (L as f64 / pj) * m.t_pr)).abs() < 1e-15);
    }

    #[test]
    fn network_term_active_on_mesh() {
        let m = TransferParams::synthetic_mesh();
        let c1 = network_cost(TransferKind::OneD, L, 4.0, 8.0, &m);
        assert!((c1 - (L as f64 / 8.0) * m.t_n).abs() < 1e-18);
        let c2 = network_cost(TransferKind::TwoD, L, 4.0, 8.0, &m);
        assert!((c2 - (L as f64 / 32.0) * m.t_n).abs() < 1e-18);
        assert!(c2 < c1, "2D spreads network load over p_i*p_j pairs");
    }

    #[test]
    fn same_total_bytes_both_kinds() {
        // The paper: "the net amount of data transferred for any given
        // array has to be the same in both cases". Our per-byte terms use
        // L/p_i (send side) and L/p_j (recv side) for both kinds — only
        // startup counts differ. Verify per-byte components match.
        let m = cm5();
        let (pi, pj) = (4.0, 16.0);
        let per_byte_1d =
            send_cost(TransferKind::OneD, L, pi, pj, &m) - (pj / pi).max(1.0) * m.t_ss;
        let per_byte_2d = send_cost(TransferKind::TwoD, L, pi, pj, &m) - pj * m.t_ss;
        assert!((per_byte_1d - per_byte_2d).abs() < 1e-15);
    }

    #[test]
    fn two_d_has_more_startups() {
        // For equal group sizes > 1, 2D pays p startups where 1D pays 1.
        let m = cm5();
        let p = 8.0;
        let s1 = send_cost(TransferKind::OneD, L, p, p, &m);
        let s2 = send_cost(TransferKind::TwoD, L, p, p, &m);
        assert!(s2 > s1);
        assert!((s2 - s1 - (p - 1.0) * m.t_ss).abs() < 1e-12);
    }

    #[test]
    fn edge_components_sums_arrays() {
        let m = cm5();
        let ts = vec![
            ArrayTransfer::new(L, TransferKind::OneD),
            ArrayTransfer::new(2 * L, TransferKind::TwoD),
        ];
        let c = edge_components(&ts, 4.0, 4.0, &m);
        let a = transfer_components(TransferKind::OneD, L, 4.0, 4.0, &m);
        let b = transfer_components(TransferKind::TwoD, 2 * L, 4.0, 4.0, &m);
        assert!((c.send - (a.send + b.send)).abs() < 1e-15);
        assert!((c.recv - (a.recv + b.recv)).abs() < 1e-15);
        assert!((c.network - (a.network + b.network)).abs() < 1e-18);
    }

    /// Lemma 2, numerically: the send/receive components (both kinds) and
    /// the 2D network component are convex in (ln p_i, ln p_j) — check
    /// midpoint convexity along segments. The 1D network component is the
    /// one exception (see `one_d_network_is_not_logspace_convex`).
    #[test]
    fn transfer_costs_are_logspace_convex() {
        let m = TransferParams::synthetic_mesh(); // non-zero t_n covers all terms
        let fs: Vec<Box<dyn Fn(f64, f64) -> f64>> = vec![
            Box::new(move |pi, pj| send_cost(TransferKind::OneD, L, pi, pj, &m)),
            Box::new(move |pi, pj| recv_cost(TransferKind::OneD, L, pi, pj, &m)),
            Box::new(move |pi, pj| send_cost(TransferKind::TwoD, L, pi, pj, &m)),
            Box::new(move |pi, pj| recv_cost(TransferKind::TwoD, L, pi, pj, &m)),
            Box::new(move |pi, pj| network_cost(TransferKind::TwoD, L, pi, pj, &m)),
        ];
        // Deterministic pseudo-random log-space segment endpoints.
        let pts: Vec<(f64, f64)> = (0..12)
            .map(|k| {
                let a = (k as f64 * 0.37).fract() * 64.0_f64.ln();
                let b = (k as f64 * 0.61 + 0.1).fract() * 64.0_f64.ln();
                (a, b)
            })
            .collect();
        for f in &fs {
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    let (x1, y1) = pts[i];
                    let (x2, y2) = pts[j];
                    let mid = f(((x1 + x2) / 2.0).exp(), ((y1 + y2) / 2.0).exp());
                    let avg = 0.5 * (f(x1.exp(), y1.exp()) + f(x2.exp(), y2.exp()));
                    assert!(mid <= avg + 1e-12, "log-space convexity violated");
                }
            }
        }
    }

    /// Counterexample to a literal reading of Lemma 2: the 1D network
    /// component `L * t_n / max(p_i, p_j)` is a *min* of monomials and is
    /// NOT convex in log space. The paper is unaffected because the CM-5
    /// fit gives `t_n = 0`; for machines with `t_n > 0` the solver uses
    /// the monomial upper bound `L * t_n / sqrt(p_i * p_j)` (exact on
    /// symmetric transfers). Both facts are pinned down here.
    #[test]
    fn one_d_network_is_not_logspace_convex() {
        let m = TransferParams::synthetic_mesh();
        let f = |x: f64, y: f64| network_cost(TransferKind::OneD, L, x.exp(), y.exp(), &m);
        // Segment from (0, ln 64) to (ln 64, 0): midpoint value exceeds
        // the chord value, violating convexity.
        let a = (0.0, 64.0_f64.ln());
        let b = (64.0_f64.ln(), 0.0);
        let mid = f((a.0 + b.0) / 2.0, (a.1 + b.1) / 2.0);
        let avg = 0.5 * (f(a.0, a.1) + f(b.0, b.1));
        assert!(mid > avg, "expected non-convexity: mid={mid}, avg={avg}");
        // The sqrt surrogate upper-bounds the true cost everywhere...
        for &(pi, pj) in &[(1.0f64, 64.0f64), (2.0, 8.0), (16.0, 16.0), (64.0, 2.0)] {
            let surrogate = (L as f64) * m.t_n / (pi * pj).sqrt();
            let exact = network_cost(TransferKind::OneD, L, pi, pj, &m);
            assert!(surrogate >= exact - 1e-18);
        }
        // ...and is exact when p_i == p_j.
        let exact = network_cost(TransferKind::OneD, L, 8.0, 8.0, &m);
        let surrogate = (L as f64) * m.t_n / 8.0;
        assert!((surrogate - exact).abs() < 1e-18);
    }

    /// Condition 2 of Section 2: t^R * p_j and t^S * p_i must also be
    /// log-space convex (they are posynomials).
    #[test]
    fn weighted_transfer_costs_are_logspace_convex() {
        let m = TransferParams::cm5();
        let f = |pi: f64, pj: f64| recv_cost(TransferKind::OneD, L, pi, pj, &m) * pj;
        let g = |pi: f64, pj: f64| send_cost(TransferKind::TwoD, L, pi, pj, &m) * pi;
        for (a, b) in [(1.0f64, 64.0f64), (2.0, 32.0), (4.0, 4.0), (64.0, 1.0)] {
            for (c, d) in [(8.0f64, 8.0f64), (1.0, 1.0), (32.0, 2.0)] {
                let midp = ((a.ln() + c.ln()) / 2.0).exp();
                let midq = ((b.ln() + d.ln()) / 2.0).exp();
                assert!(f(midp, midq) <= 0.5 * (f(a, b) + f(c, d)) + 1e-9);
                assert!(g(midp, midq) <= 0.5 * (g(a, b) + g(c, d)) + 1e-9);
            }
        }
    }
}
