//! Static (measurement-free) cost estimation.
//!
//! The paper calibrates its models by *measuring* (the training-sets
//! approach) and notes: "We are considering the use of static estimation
//! techniques developed by Gupta and Banerjee to try and eliminate the
//! need for some of the measurements in the future." This module is that
//! future direction: estimate `tau` from loop operation counts and a
//! machine datasheet, no runs required.
//!
//! Scope (deliberate): the *computation* term `tau` is estimated
//! statically from flop/memory-touch counts; the serial fraction `alpha`
//! encapsulates intra-loop communication behaviour that static analysis
//! of this simple form cannot see, so it still comes from a per-class
//! table (or from training measurements) — matching the paper's plan of
//! eliminating "some of the measurements".

use paradigm_mdg::{AmdahlParams, LoopClass};

/// Machine datasheet for static estimation: per-operation costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticMachineModel {
    /// Seconds per floating-point operation (sustained, not peak).
    pub flop_time: f64,
    /// Seconds per matrix element touched (load/store through the
    /// memory hierarchy).
    pub mem_time: f64,
    /// Fixed per-loop-nest overhead, seconds.
    pub loop_overhead: f64,
}

impl StaticMachineModel {
    /// A CM-5 node datasheet (sustained Fortran-77 rates of the era).
    /// Tuned once against published figures, not against this
    /// repository's measurements.
    pub fn cm5_node() -> Self {
        StaticMachineModel { flop_time: 0.55e-6, mem_time: 0.25e-6, loop_overhead: 0.1e-3 }
    }

    /// Operation counts of a loop class on an `rows x cols` matrix:
    /// `(flops, elements touched)`.
    pub fn op_counts(class: &LoopClass, rows: usize, cols: usize) -> (f64, f64) {
        let rc = (rows * cols) as f64;
        match class {
            // C = A*B over square-ish extents: 2 n^3 flops, 3 n^2 touches.
            LoopClass::MatrixMultiply => {
                let n = (rc).sqrt();
                (2.0 * n * n * n, 3.0 * rc)
            }
            // One add per element, three matrices touched.
            LoopClass::MatrixAdd => (rc, 3.0 * rc),
            // Initialization: one store per element (plus the generator
            // expression, folded into mem_time).
            LoopClass::MatrixInit => (0.0, rc),
            LoopClass::Custom(_) => (rc, rc),
        }
    }

    /// Statically estimated sequential time `tau` of one loop nest.
    pub fn estimate_tau(&self, class: &LoopClass, rows: usize, cols: usize) -> f64 {
        let (flops, touches) = Self::op_counts(class, rows, cols);
        self.loop_overhead + flops * self.flop_time + touches * self.mem_time
    }

    /// Full parameter estimate: static `tau` plus a per-class `alpha`
    /// (see module docs for why `alpha` is tabulated, not derived).
    pub fn estimate_params(&self, class: &LoopClass, rows: usize, cols: usize) -> AmdahlParams {
        let alpha = match class {
            LoopClass::MatrixMultiply => 0.12,
            LoopClass::MatrixAdd => 0.07,
            LoopClass::MatrixInit => 0.05,
            LoopClass::Custom(_) => 0.10,
        };
        AmdahlParams::new(alpha, self.estimate_tau(class, rows, cols))
    }
}

/// Relative error diagnostic: `|estimate - reference| / reference`.
pub fn relative_error(estimate: f64, reference: f64) -> f64 {
    (estimate - reference).abs() / reference.abs().max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_mdg::KernelCostTable;

    #[test]
    fn static_tau_within_2x_of_table1() {
        let m = StaticMachineModel::cm5_node();
        let table = KernelCostTable::cm5();
        let mul = m.estimate_tau(&LoopClass::MatrixMultiply, 64, 64);
        let add = m.estimate_tau(&LoopClass::MatrixAdd, 64, 64);
        assert!(
            relative_error(mul, table.mul.tau) < 1.0,
            "mul estimate {mul} vs measured {}",
            table.mul.tau
        );
        assert!(
            relative_error(add, table.add.tau) < 1.0,
            "add estimate {add} vs measured {}",
            table.add.tau
        );
    }

    #[test]
    fn static_tau_scaling_laws() {
        let m = StaticMachineModel::cm5_node();
        // Multiply scales ~ n^3 (overhead and touches make it slightly
        // sublinear in the ratio).
        let t64 = m.estimate_tau(&LoopClass::MatrixMultiply, 64, 64);
        let t128 = m.estimate_tau(&LoopClass::MatrixMultiply, 128, 128);
        let ratio = t128 / t64;
        assert!((6.5..=8.0).contains(&ratio), "cubic-ish scaling, got {ratio}");
        // Add scales ~ n^2.
        let a64 = m.estimate_tau(&LoopClass::MatrixAdd, 64, 64);
        let a128 = m.estimate_tau(&LoopClass::MatrixAdd, 128, 128);
        let aratio = a128 / a64;
        assert!((3.5..=4.2).contains(&aratio), "quadratic-ish scaling, got {aratio}");
    }

    #[test]
    fn estimate_params_are_valid_amdahl() {
        let m = StaticMachineModel::cm5_node();
        for class in [
            LoopClass::MatrixInit,
            LoopClass::MatrixAdd,
            LoopClass::MatrixMultiply,
            LoopClass::Custom("fft".into()),
        ] {
            let p = m.estimate_params(&class, 64, 64);
            assert!(p.tau > 0.0);
            assert!((0.0..=1.0).contains(&p.alpha));
        }
    }

    #[test]
    fn multiply_dominates_add_dominates_init() {
        let m = StaticMachineModel::cm5_node();
        let mul = m.estimate_tau(&LoopClass::MatrixMultiply, 64, 64);
        let add = m.estimate_tau(&LoopClass::MatrixAdd, 64, 64);
        let init = m.estimate_tau(&LoopClass::MatrixInit, 64, 64);
        assert!(mul > add);
        assert!(add > init);
    }

    #[test]
    fn zero_size_loop_costs_only_overhead() {
        let m = StaticMachineModel::cm5_node();
        let t = m.estimate_tau(&LoopClass::MatrixAdd, 0, 0);
        assert!((t - m.loop_overhead).abs() < 1e-15);
    }
}
