//! Exact MDG weight evaluation for a concrete processor allocation.
//!
//! Given an MDG, a machine, and an allocation `p_i` per node, this module
//! computes the paper's Section 2 quantities:
//!
//! * node weight `T_i = Σ_pred t^R + t^C_i + Σ_succ t^S` — receive costs
//!   of all incoming transfers, the processing cost, and send costs of all
//!   outgoing transfers;
//! * edge weight `t^D_mi` — the network component;
//! * `A_p = (1/p) Σ T_i · p_i` — average finish time (processor-time
//!   area over machine size);
//! * `C_p = y_n` with `y_i = max_{m∈PRED}(y_m + t^D_mi) + T_i` — critical
//!   path time;
//! * `Φ = max(A_p, C_p)` — the allocation objective.
//!
//! This is the *exact* (non-smoothed) objective. The solver optimizes a
//! smoothed version and is validated against this one.

use crate::machine::Machine;
use crate::transfer::edge_components;
use paradigm_mdg::{EdgeId, Mdg, NodeId};

/// A processor allocation: one (possibly fractional) processor count per
/// MDG node, `1 <= p_i <= machine.procs`. START/STOP carry 1 by
/// convention (their costs are zero).
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    procs: Vec<f64>,
}

impl Allocation {
    /// Build from a raw vector (one entry per node, including START/STOP).
    ///
    /// # Panics
    /// Panics if any entry is below 1 or non-finite.
    pub fn new(procs: Vec<f64>) -> Self {
        for (i, &q) in procs.iter().enumerate() {
            assert!(q.is_finite() && q >= 1.0, "allocation for node {i} is invalid: {q}");
        }
        Allocation { procs }
    }

    /// Every node on `q` processors.
    pub fn uniform(g: &Mdg, q: f64) -> Self {
        Allocation::new(vec![q; g.node_count()])
    }

    /// Number of entries (== node count of the graph it was built for).
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Allocation of one node.
    pub fn get(&self, id: NodeId) -> f64 {
        self.procs[id.0]
    }

    /// Mutate one node's allocation.
    ///
    /// # Panics
    /// Panics on invalid values (< 1 or non-finite).
    pub fn set(&mut self, id: NodeId, q: f64) {
        assert!(q.is_finite() && q >= 1.0, "allocation for {id} is invalid: {q}");
        self.procs[id.0] = q;
    }

    /// Raw slice access.
    pub fn as_slice(&self) -> &[f64] {
        &self.procs
    }

    /// True if every entry is an integer.
    pub fn is_integral(&self) -> bool {
        self.procs.iter().all(|&q| q.fract() == 0.0)
    }

    /// True if every entry is a power of two (implies integral).
    pub fn is_power_of_two(&self) -> bool {
        self.procs.iter().all(|&q| q.fract() == 0.0 && (q as u64).is_power_of_two())
    }

    /// Integer view (rounds to nearest; intended for integral allocations).
    pub fn as_u32(&self, id: NodeId) -> u32 {
        self.get(id).round() as u32
    }

    /// Largest entry.
    pub fn max(&self) -> f64 {
        self.procs.iter().copied().fold(1.0, f64::max)
    }
}

/// All Section-2 weights of an MDG under a specific allocation.
#[derive(Debug, Clone)]
pub struct MdgWeights {
    /// `T_i` per node.
    pub node_total: Vec<f64>,
    /// Receive portion of `T_i` (`Σ_pred t^R`).
    pub node_recv: Vec<f64>,
    /// Processing portion of `T_i` (`t^C_i`).
    pub node_compute: Vec<f64>,
    /// Send portion of `T_i` (`Σ_succ t^S`).
    pub node_send: Vec<f64>,
    /// `t^D` per edge.
    pub edge_network: Vec<f64>,
    /// Copy of the allocation the weights were computed for.
    pub alloc: Allocation,
    /// Machine size `p`.
    pub machine_procs: u32,
}

impl MdgWeights {
    /// Evaluate all weights for `g` on `machine` under `alloc`.
    ///
    /// # Panics
    /// Panics if `alloc.len() != g.node_count()` or any `p_i` exceeds the
    /// machine size.
    pub fn compute(g: &Mdg, machine: &Machine, alloc: &Allocation) -> MdgWeights {
        assert_eq!(alloc.len(), g.node_count(), "allocation/graph size mismatch");
        let pmax = machine.procs as f64;
        for (id, _) in g.nodes() {
            let q = alloc.get(id);
            assert!(q <= pmax + 1e-9, "allocation for {id} ({q}) exceeds machine size {pmax}");
        }
        let n = g.node_count();
        let mut node_recv = vec![0.0; n];
        let mut node_send = vec![0.0; n];
        let mut node_compute = vec![0.0; n];
        let mut edge_network = vec![0.0; g.edge_count()];

        for (id, node) in g.nodes() {
            node_compute[id.0] = node.cost.cost(alloc.get(id));
        }
        for (eid, e) in g.edges() {
            if e.transfers.is_empty() {
                continue;
            }
            let pi = alloc.get(NodeId(e.src));
            let pj = alloc.get(NodeId(e.dst));
            let c = edge_components(&e.transfers, pi, pj, &machine.xfer);
            node_send[e.src] += c.send;
            node_recv[e.dst] += c.recv;
            edge_network[eid.0] = c.network;
        }
        let node_total: Vec<f64> =
            (0..n).map(|i| node_recv[i] + node_compute[i] + node_send[i]).collect();
        MdgWeights {
            node_total,
            node_recv,
            node_compute,
            node_send,
            edge_network,
            alloc: alloc.clone(),
            machine_procs: machine.procs,
        }
    }

    /// Node weight `T_i`.
    pub fn node_weight(&self, id: NodeId) -> f64 {
        self.node_total[id.0]
    }

    /// Edge weight `t^D`.
    pub fn edge_weight(&self, id: EdgeId) -> f64 {
        self.edge_network[id.0]
    }

    /// Average finish time `A_p = (1/p) Σ T_i p_i`.
    pub fn average_finish_time(&self) -> f64 {
        let sum: f64 =
            self.node_total.iter().zip(self.alloc.as_slice()).map(|(&t, &q)| t * q).sum();
        sum / self.machine_procs as f64
    }

    /// Critical path time `C_p = y_n` via the paper's recurrence, together
    /// with all per-node finish times `y_i`.
    pub fn critical_path_time(&self, g: &Mdg) -> (f64, Vec<f64>) {
        let finishes = g.finish_times_with(|v| self.node_total[v.0], |e| self.edge_network[e.0]);
        (finishes[g.stop().0], finishes)
    }

    /// Full objective breakdown `Φ = max(A_p, C_p)`.
    pub fn phi(&self, g: &Mdg) -> PhiBreakdown {
        let a_p = self.average_finish_time();
        let (c_p, finishes) = self.critical_path_time(g);
        PhiBreakdown { a_p, c_p, phi: a_p.max(c_p), finishes }
    }
}

/// The components of the allocation objective at one allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct PhiBreakdown {
    /// Average finish time `A_p`.
    pub a_p: f64,
    /// Critical path time `C_p`.
    pub c_p: f64,
    /// `Φ = max(A_p, C_p)`.
    pub phi: f64,
    /// Per-node finish times `y_i`.
    pub finishes: Vec<f64>,
}

impl PhiBreakdown {
    /// Which of the two lower bounds is binding at this allocation.
    pub fn binding(&self) -> &'static str {
        if self.a_p >= self.c_p {
            "average (A_p)"
        } else {
            "critical-path (C_p)"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_mdg::{AmdahlParams, ArrayTransfer, MdgBuilder, TransferKind};

    fn two_node_graph() -> Mdg {
        let mut b = MdgBuilder::new("pair");
        let x = b.compute("x", AmdahlParams::new(0.1, 1.0));
        let y = b.compute("y", AmdahlParams::new(0.1, 2.0));
        b.edge(x, y, vec![ArrayTransfer::new(32 * 1024, TransferKind::OneD)]);
        b.finish().unwrap()
    }

    #[test]
    fn weights_decompose_correctly() {
        let g = two_node_graph();
        let m = Machine::cm5(16);
        let alloc = Allocation::uniform(&g, 4.0);
        let w = MdgWeights::compute(&g, &m, &alloc);
        // x = node 1, y = node 2.
        let x = NodeId(1);
        let y = NodeId(2);
        assert!(w.node_recv[x.0] == 0.0);
        assert!(w.node_send[x.0] > 0.0, "x pays the send cost");
        assert!(w.node_recv[y.0] > 0.0, "y pays the receive cost");
        assert!(w.node_send[y.0] == 0.0);
        assert!((w.node_weight(x) - (w.node_compute[x.0] + w.node_send[x.0])).abs() < 1e-15);
        assert!((w.node_weight(y) - (w.node_compute[y.0] + w.node_recv[y.0])).abs() < 1e-15);
        // CM-5: all edge weights zero.
        assert!(w.edge_network.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn structural_nodes_have_zero_weight() {
        let g = two_node_graph();
        let m = Machine::cm5(16);
        let w = MdgWeights::compute(&g, &m, &Allocation::uniform(&g, 2.0));
        assert_eq!(w.node_weight(g.start()), 0.0);
        assert_eq!(w.node_weight(g.stop()), 0.0);
    }

    #[test]
    fn phi_is_max_of_components() {
        let g = two_node_graph();
        let m = Machine::cm5(16);
        let w = MdgWeights::compute(&g, &m, &Allocation::uniform(&g, 8.0));
        let phi = w.phi(&g);
        assert!((phi.phi - phi.a_p.max(phi.c_p)).abs() < 1e-15);
        assert!(phi.finishes[g.stop().0] == phi.c_p);
    }

    #[test]
    fn chain_cp_dominates_ap() {
        // A chain on a big machine: C_p (serial) >> A_p (area / p).
        let g = two_node_graph();
        let m = Machine::cm5(64);
        let w = MdgWeights::compute(&g, &m, &Allocation::uniform(&g, 1.0));
        let phi = w.phi(&g);
        assert!(phi.c_p > phi.a_p);
        assert_eq!(phi.binding(), "critical-path (C_p)");
    }

    #[test]
    fn wide_graph_ap_dominates_cp() {
        // Many independent nodes on a tiny machine: area dominates.
        let mut b = MdgBuilder::new("wide");
        for i in 0..16 {
            b.compute(format!("w{i}"), AmdahlParams::new(0.0, 1.0));
        }
        let g = b.finish().unwrap();
        let m = Machine::cm5(2);
        let w = MdgWeights::compute(&g, &m, &Allocation::uniform(&g, 1.0));
        let phi = w.phi(&g);
        // Area = 16 node-seconds over 2 procs = 8 s; CP = 1 s.
        assert!((phi.a_p - 8.0).abs() < 1e-12);
        assert!((phi.c_p - 1.0).abs() < 1e-12);
        assert_eq!(phi.binding(), "average (A_p)");
    }

    #[test]
    fn network_weight_appears_on_mesh() {
        let g = two_node_graph();
        let m = Machine::synthetic_mesh(16);
        let w = MdgWeights::compute(&g, &m, &Allocation::uniform(&g, 4.0));
        let has_net = w.edge_network.iter().any(|&v| v > 0.0);
        assert!(has_net, "mesh machine must produce non-zero edge weights");
    }

    #[test]
    fn increasing_allocation_reduces_compute_weight() {
        let g = two_node_graph();
        let m = Machine::cm5(64);
        let w1 = MdgWeights::compute(&g, &m, &Allocation::uniform(&g, 1.0));
        let w2 = MdgWeights::compute(&g, &m, &Allocation::uniform(&g, 64.0));
        assert!(w2.node_compute[1] < w1.node_compute[1]);
    }

    #[test]
    #[should_panic(expected = "exceeds machine size")]
    fn allocation_above_machine_size_rejected() {
        let g = two_node_graph();
        let m = Machine::cm5(4);
        let _ = MdgWeights::compute(&g, &m, &Allocation::uniform(&g, 8.0));
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn allocation_below_one_rejected() {
        let _ = Allocation::new(vec![0.5]);
    }

    #[test]
    fn allocation_predicates() {
        let a = Allocation::new(vec![1.0, 2.0, 4.0, 8.0]);
        assert!(a.is_integral());
        assert!(a.is_power_of_two());
        assert_eq!(a.max(), 8.0);
        let b = Allocation::new(vec![1.0, 3.0]);
        assert!(b.is_integral());
        assert!(!b.is_power_of_two());
        let c = Allocation::new(vec![1.5]);
        assert!(!c.is_integral());
        assert!(!c.is_power_of_two());
    }
}
