//! Machine parameter sets.
//!
//! A [`Machine`] is a processor count plus the five data-transfer
//! constants of the paper's Table 2. The CM-5 instance reproduces the
//! paper's fitted values exactly, including `t_n = 0`: on the CM-5 the
//! network transfer happens inside the *receive* call (when the receive is
//! posted after the matching send has completed, which the PSA schedule
//! guarantees), so the per-byte network cost is folded into the per-byte
//! receive cost and the explicit network term vanishes.

/// Per-message data-transfer cost constants (paper Table 2).
///
/// All values in **seconds** (the paper's table mixes µs and ns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferParams {
    /// Startup cost for sending one message (`t_ss`).
    pub t_ss: f64,
    /// Per-byte cost for sending (`t_ps`).
    pub t_ps: f64,
    /// Startup cost for receiving one message (`t_sr`).
    pub t_sr: f64,
    /// Per-byte cost for receiving (`t_pr`).
    pub t_pr: f64,
    /// Per-byte network delay (`t_n`); 0 on the CM-5 (see module docs).
    pub t_n: f64,
}

impl TransferParams {
    /// The paper's Table 2 (CM-5): `t_ss = 777.56 µs`, `t_ps = 486.98 ns`,
    /// `t_sr = 465.58 µs`, `t_pr = 426.25 ns`, `t_n = 0`.
    pub fn cm5() -> Self {
        TransferParams {
            t_ss: 777.56e-6,
            t_ps: 486.98e-9,
            t_sr: 465.58e-6,
            t_pr: 426.25e-9,
            t_n: 0.0,
        }
    }

    /// A synthetic machine with an explicit network term, used in tests
    /// and ablations to exercise the `t^D` edge-weight path that the CM-5
    /// parameters leave at zero.
    pub fn synthetic_mesh() -> Self {
        TransferParams {
            t_ss: 500.0e-6,
            t_ps: 400.0e-9,
            t_sr: 300.0e-6,
            t_pr: 350.0e-9,
            t_n: 120.0e-9,
        }
    }

    /// All parameters must be finite and non-negative.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("t_ss", self.t_ss),
            ("t_ps", self.t_ps),
            ("t_sr", self.t_sr),
            ("t_pr", self.t_pr),
            ("t_n", self.t_n),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("transfer parameter {name} = {v} is invalid"));
            }
        }
        Ok(())
    }
}

/// Default per-processor memory capacity when no family-specific value
/// applies: 32 MiB, the CM-5 node size.
pub const DEFAULT_MEM_BYTES: u64 = 32 * 1024 * 1024;

/// A target multicomputer: processor count plus transfer constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Total number of processors `p`.
    pub procs: u32,
    /// Message cost constants.
    pub xfer: TransferParams,
    /// Per-processor memory capacity in bytes. Family constructors set
    /// era-plausible node sizes; override with [`Machine::with_mem_bytes`].
    pub mem_bytes: u64,
}

impl Machine {
    /// Construct, validating the parameters. Memory defaults to
    /// [`DEFAULT_MEM_BYTES`] per processor.
    ///
    /// # Panics
    /// Panics if `procs == 0` or a transfer parameter is invalid.
    pub fn new(procs: u32, xfer: TransferParams) -> Self {
        assert!(procs >= 1, "a machine needs at least one processor");
        if let Err(e) = xfer.validate() {
            panic!("invalid machine: {e}");
        }
        Machine { procs, xfer, mem_bytes: DEFAULT_MEM_BYTES }
    }

    /// Override the per-processor memory capacity.
    ///
    /// # Panics
    /// Panics if `mem_bytes == 0` — a processor with no memory cannot
    /// hold even the empty resident set.
    pub fn with_mem_bytes(mut self, mem_bytes: u64) -> Self {
        assert!(mem_bytes > 0, "per-processor memory capacity must be positive");
        self.mem_bytes = mem_bytes;
        self
    }

    /// The paper's testbed: a 64-node Thinking Machines CM-5.
    pub fn cm5_64() -> Self {
        Machine::new(64, TransferParams::cm5())
    }

    /// The CM-5 cost constants at an arbitrary system size (the paper
    /// also evaluates 16- and 32-processor configurations). CM-5 nodes
    /// shipped with 32 MB of local memory.
    pub fn cm5(procs: u32) -> Self {
        Machine::new(procs, TransferParams::cm5()).with_mem_bytes(32 * 1024 * 1024)
    }

    /// Synthetic mesh machine with non-zero network delay and small
    /// (16 MiB) nodes, so memory-pressure paths get exercised in tests.
    pub fn synthetic_mesh(procs: u32) -> Self {
        Machine::new(procs, TransferParams::synthetic_mesh()).with_mem_bytes(16 * 1024 * 1024)
    }

    /// Illustrative Intel Paragon-class constants (the other 1994-era
    /// multicomputer the paper's introduction names). Values are
    /// era-plausible datasheet figures, **not** fitted measurements:
    /// lower startup than the CM-5's CMMD, an explicit per-byte network
    /// term (store-and-forward mesh), similar per-byte processing.
    pub fn intel_paragon(procs: u32) -> Self {
        Machine::new(
            procs,
            TransferParams {
                t_ss: 120.0e-6,
                t_ps: 350.0e-9,
                t_sr: 90.0e-6,
                t_pr: 300.0e-9,
                t_n: 40.0e-9,
            },
        )
        .with_mem_bytes(32 * 1024 * 1024)
    }

    /// Illustrative IBM SP-1-class constants (the third machine named in
    /// the paper's introduction). Same caveat as
    /// [`Machine::intel_paragon`].
    pub fn ibm_sp1(procs: u32) -> Self {
        Machine::new(
            procs,
            TransferParams {
                t_ss: 270.0e-6,
                t_ps: 120.0e-9,
                t_sr: 200.0e-6,
                t_pr: 110.0e-9,
                t_n: 25.0e-9,
            },
        )
        .with_mem_bytes(64 * 1024 * 1024)
    }

    /// Largest power of two that is `<= procs`. The rounding step of the
    /// PSA only ever uses power-of-two group sizes, so this is the
    /// effective maximum group size on this machine.
    pub fn max_pow2_procs(&self) -> u32 {
        let mut v = 1u32;
        while v * 2 <= self.procs {
            v *= 2;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cm5_matches_table2() {
        let m = Machine::cm5_64();
        assert_eq!(m.procs, 64);
        assert!((m.xfer.t_ss - 777.56e-6).abs() < 1e-15);
        assert!((m.xfer.t_ps - 486.98e-9).abs() < 1e-18);
        assert!((m.xfer.t_sr - 465.58e-6).abs() < 1e-15);
        assert!((m.xfer.t_pr - 426.25e-9).abs() < 1e-18);
        assert_eq!(m.xfer.t_n, 0.0);
    }

    #[test]
    fn max_pow2() {
        assert_eq!(Machine::cm5(64).max_pow2_procs(), 64);
        assert_eq!(Machine::cm5(63).max_pow2_procs(), 32);
        assert_eq!(Machine::cm5(1).max_pow2_procs(), 1);
        assert_eq!(Machine::cm5(3).max_pow2_procs(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_procs_rejected() {
        let _ = Machine::new(0, TransferParams::cm5());
    }

    #[test]
    fn validation_rejects_negative() {
        let mut p = TransferParams::cm5();
        p.t_pr = -1.0;
        assert!(p.validate().is_err());
        let mut q = TransferParams::cm5();
        q.t_ss = f64::NAN;
        assert!(q.validate().is_err());
        assert!(TransferParams::cm5().validate().is_ok());
    }

    #[test]
    fn synthetic_mesh_has_network_term() {
        assert!(TransferParams::synthetic_mesh().t_n > 0.0);
    }

    #[test]
    fn memory_defaults_per_family() {
        assert_eq!(Machine::cm5(64).mem_bytes, 32 * 1024 * 1024);
        assert_eq!(Machine::synthetic_mesh(8).mem_bytes, 16 * 1024 * 1024);
        assert_eq!(Machine::intel_paragon(8).mem_bytes, 32 * 1024 * 1024);
        assert_eq!(Machine::ibm_sp1(8).mem_bytes, 64 * 1024 * 1024);
        assert_eq!(Machine::new(4, TransferParams::cm5()).mem_bytes, DEFAULT_MEM_BYTES);
        assert_eq!(Machine::cm5(4).with_mem_bytes(1024).mem_bytes, 1024);
    }

    #[test]
    #[should_panic(expected = "memory capacity")]
    fn zero_memory_rejected() {
        let _ = Machine::cm5(4).with_mem_bytes(0);
    }

    #[test]
    fn era_machines_are_valid_and_distinct() {
        let paragon = Machine::intel_paragon(64);
        let sp1 = Machine::ibm_sp1(64);
        assert!(paragon.xfer.validate().is_ok());
        assert!(sp1.xfer.validate().is_ok());
        // Paragon: cheaper startup than CM-5; SP-1: cheaper per-byte.
        assert!(paragon.xfer.t_ss < TransferParams::cm5().t_ss);
        assert!(sp1.xfer.t_pr < TransferParams::cm5().t_pr);
        assert!(paragon.xfer.t_n > 0.0 && sp1.xfer.t_n > 0.0);
    }
}
