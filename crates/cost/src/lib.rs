//! # paradigm-cost — machine models and MDG cost functions
//!
//! Implements Section 4 of the paper: the *processing cost* model
//! (Amdahl's law, Eq. 1) and the *data transfer cost* model (Eq. 2 for 1D
//! ROW2ROW/COL2COL redistributions, Eq. 3 for 2D ROW2COL/COL2ROW), plus:
//!
//! * [`machine`] — named machine parameter sets; [`machine::Machine::cm5_64`]
//!   carries the exact constants of the paper's Tables 1–2;
//! * [`weights`] — exact evaluation of node weights `T_i`, edge weights
//!   `t^D`, the average finish time `A_p`, the critical path time `C_p`,
//!   and `Phi = max(A_p, C_p)` for a concrete allocation — the ground
//!   truth the convex solver and the scheduler both consume;
//! * [`regression`] — the *training sets* style parameter fitting
//!   (Balasundaram et al.) used to recover Table 1/Table 2 parameters
//!   from measurements;
//! * [`linalg`] — the small dense least-squares kernel behind it.
//!
//! All cost components here are (generalized) posynomials in the
//! processor counts, which is what makes the allocation problem of
//! `paradigm-solver` convex after the log-variable substitution; the
//! property-based tests in this crate verify posynomial behaviour
//! numerically (log-log midpoint convexity).

pub mod estimate;
pub mod linalg;
pub mod machine;
pub mod processing;
pub mod regression;
pub mod transfer;
pub mod weights;

pub use estimate::StaticMachineModel;
pub use machine::{Machine, TransferParams, DEFAULT_MEM_BYTES};
pub use processing::{processing_area, processing_cost};
pub use transfer::{network_cost, recv_cost, send_cost, transfer_components, TransferCost};
pub use weights::{Allocation, MdgWeights, PhiBreakdown};
