//! Training-sets style parameter fitting (paper Section 4, following
//! Balasundaram et al.): run measurement kernels on the target machine,
//! then recover the cost-model constants by linear regression.
//!
//! * **Processing** (Table 1): `t(q) = alpha*tau + (1-alpha)*tau / q` is
//!   linear in the basis `[1, 1/q]`; from the coefficients
//!   `(c0, c1)` we recover `tau = c0 + c1` and `alpha = c0 / tau`.
//! * **Transfer** (Table 2): the send / network / receive components of
//!   Eq. 2–3 are linear in `(t_ss, t_ps)`, `(t_n)` and `(t_sr, t_pr)`
//!   respectively once the configuration `(kind, L, p_i, p_j)` is known,
//!   so each parameter pair is a small least-squares problem over the
//!   whole measurement campaign (both 1D and 2D samples jointly).

use crate::linalg::{least_squares, ols_covariance, r_squared};
use paradigm_mdg::{AmdahlParams, TransferKind};

/// One processing-cost measurement: a loop ran on `q` processors in
/// `time` seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessingSample {
    /// Processor count used.
    pub q: f64,
    /// Measured execution time, seconds.
    pub time: f64,
}

/// Result of fitting Amdahl's law to processing measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittedAmdahl {
    /// Recovered parameters.
    pub params: AmdahlParams,
    /// Coefficient of determination of the linear fit.
    pub r2: f64,
    /// Standard error of `alpha` (delta method through the linear fit's
    /// covariance; 0 for an exact fit).
    pub alpha_stderr: f64,
    /// Standard error of `tau`.
    pub tau_stderr: f64,
}

/// Fit `alpha, tau` from measurements (paper Table 1 methodology).
///
/// # Panics
/// Panics with fewer than two samples (the model has two parameters).
pub fn fit_amdahl(samples: &[ProcessingSample]) -> FittedAmdahl {
    assert!(samples.len() >= 2, "need at least two samples to fit Amdahl's law");
    let m = samples.len();
    let mut x = Vec::with_capacity(m * 2);
    let mut y = Vec::with_capacity(m);
    for s in samples {
        assert!(s.q >= 1.0 && s.time.is_finite(), "bad sample {s:?}");
        x.extend_from_slice(&[1.0, 1.0 / s.q]);
        y.push(s.time);
    }
    let beta = least_squares(&x, &y, m, 2);
    let r2 = r_squared(&x, &y, &beta, m, 2);
    let (c0, c1) = (beta[0], beta[1]);
    let tau = (c0 + c1).max(0.0);
    let alpha = if tau > 0.0 { (c0 / tau).clamp(0.0, 1.0) } else { 0.0 };
    // Delta method: tau = c0 + c1 (gradient [1, 1]);
    // alpha = c0/(c0+c1) (gradient [c1, -c0]/tau^2).
    let cov = ols_covariance(&x, &y, &beta, m, 2);
    let var_tau = (cov[0] + cov[3] + 2.0 * cov[1]).max(0.0);
    let var_alpha = if tau > 0.0 {
        let (ga, gb) = (c1 / (tau * tau), -c0 / (tau * tau));
        (ga * ga * cov[0] + 2.0 * ga * gb * cov[1] + gb * gb * cov[3]).max(0.0)
    } else {
        0.0
    };
    FittedAmdahl {
        params: AmdahlParams::new(alpha, tau),
        r2,
        alpha_stderr: var_alpha.sqrt(),
        tau_stderr: var_tau.sqrt(),
    }
}

/// One data-transfer measurement: an `bytes`-byte array moved from a
/// `pi`-processor group to a `pj`-processor group with redistribution
/// shape `kind`; the three component times were measured separately
/// (per-processor maxima, matching the cost model's per-processor view).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferSample {
    /// Redistribution shape.
    pub kind: TransferKind,
    /// Array size in bytes.
    pub bytes: u64,
    /// Sending group size.
    pub pi: f64,
    /// Receiving group size.
    pub pj: f64,
    /// Measured send component, seconds.
    pub send_time: f64,
    /// Measured network component, seconds.
    pub net_time: f64,
    /// Measured receive component, seconds.
    pub recv_time: f64,
}

/// Result of fitting the five Table-2 constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittedTransfer {
    /// Recovered constants.
    pub params: crate::machine::TransferParams,
    /// R^2 of the send-component fit.
    pub r2_send: f64,
    /// R^2 of the receive-component fit.
    pub r2_recv: f64,
    /// R^2 of the network-component fit (0 when all network times are 0,
    /// by the `r_squared` constant-target convention — check `t_n`).
    pub r2_net: f64,
    /// Standard errors of `(t_ss, t_ps, t_sr, t_pr, t_n)`.
    pub stderr: [f64; 5],
}

/// Fit `(t_ss, t_ps, t_sr, t_pr, t_n)` from a measurement campaign
/// (paper Table 2 methodology). Negative estimates are clamped to zero —
/// on machines like the CM-5 the network term genuinely is zero and noise
/// may push the estimate slightly negative.
///
/// # Panics
/// Panics with fewer than three samples.
pub fn fit_transfer(samples: &[TransferSample]) -> FittedTransfer {
    assert!(samples.len() >= 3, "need at least three transfer samples");
    let m = samples.len();

    // Send: t^S = a * t_ss + b * t_ps with (a, b) per Eq. 2/3.
    let mut xs = Vec::with_capacity(m * 2);
    let mut ys = Vec::with_capacity(m);
    // Receive: t^R = a * t_sr + b * t_pr.
    let mut xr = Vec::with_capacity(m * 2);
    let mut yr = Vec::with_capacity(m);
    // Network: t^D = a * t_n.
    let mut xn = Vec::with_capacity(m);
    let mut yn = Vec::with_capacity(m);

    for s in samples {
        let l = s.bytes as f64;
        let (pi, pj) = (s.pi, s.pj);
        let (send_a, send_b, net_a, recv_a, recv_b) = match s.kind {
            TransferKind::OneD => {
                let mx = pi.max(pj);
                (mx / pi, l / pi, l / mx, mx / pj, l / pj)
            }
            TransferKind::TwoD => (pj, l / pi, l / (pi * pj), pi, l / pj),
        };
        xs.extend_from_slice(&[send_a, send_b]);
        ys.push(s.send_time);
        xr.extend_from_slice(&[recv_a, recv_b]);
        yr.push(s.recv_time);
        xn.push(net_a);
        yn.push(s.net_time);
    }

    let bs = least_squares(&xs, &ys, m, 2);
    let br = least_squares(&xr, &yr, m, 2);
    let bn = least_squares(&xn, &yn, m, 1);
    let r2_send = r_squared(&xs, &ys, &bs, m, 2);
    let r2_recv = r_squared(&xr, &yr, &br, m, 2);
    let r2_net = r_squared(&xn, &yn, &bn, m, 1);
    let cs = ols_covariance(&xs, &ys, &bs, m, 2);
    let cr = ols_covariance(&xr, &yr, &br, m, 2);
    let cn = ols_covariance(&xn, &yn, &bn, m, 1);
    let stderr = [
        cs[0].max(0.0).sqrt(),
        cs[3].max(0.0).sqrt(),
        cr[0].max(0.0).sqrt(),
        cr[3].max(0.0).sqrt(),
        cn[0].max(0.0).sqrt(),
    ];

    FittedTransfer {
        params: crate::machine::TransferParams {
            t_ss: bs[0].max(0.0),
            t_ps: bs[1].max(0.0),
            t_sr: br[0].max(0.0),
            t_pr: br[1].max(0.0),
            t_n: bn[0].max(0.0),
        },
        r2_send,
        r2_recv,
        r2_net,
        stderr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::TransferParams;
    use crate::transfer::transfer_components;

    #[test]
    fn amdahl_fit_recovers_exact_parameters() {
        let truth = AmdahlParams::new(0.121, 298.47e-3);
        let samples: Vec<ProcessingSample> = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]
            .iter()
            .map(|&q| ProcessingSample { q, time: truth.cost(q) })
            .collect();
        let fit = fit_amdahl(&samples);
        assert!((fit.params.alpha - 0.121).abs() < 1e-9);
        assert!((fit.params.tau - 298.47e-3).abs() < 1e-9);
        assert!(fit.r2 > 1.0 - 1e-12);
    }

    #[test]
    fn amdahl_fit_is_robust_to_noise() {
        let truth = AmdahlParams::new(0.067, 3.73e-3);
        let samples: Vec<ProcessingSample> = (0..14)
            .map(|i| {
                let q = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0][i % 7];
                let noise = if i % 2 == 0 { 1.015 } else { 0.985 };
                ProcessingSample { q, time: truth.cost(q) * noise }
            })
            .collect();
        let fit = fit_amdahl(&samples);
        assert!((fit.params.alpha - 0.067).abs() < 0.01);
        assert!((fit.params.tau - 3.73e-3).abs() < 0.1e-3);
        assert!(fit.r2 > 0.99);
    }

    #[test]
    fn amdahl_fit_clamps_alpha() {
        // A pathological "superlinear" data set: time decreases faster
        // than 1/q. The fit clamps alpha to 0 rather than going negative.
        let samples = [
            ProcessingSample { q: 1.0, time: 1.0 },
            ProcessingSample { q: 2.0, time: 0.3 },
            ProcessingSample { q: 4.0, time: 0.1 },
        ];
        let fit = fit_amdahl(&samples);
        assert!(fit.params.alpha >= 0.0);
    }

    fn campaign(truth: &TransferParams) -> Vec<TransferSample> {
        let mut out = Vec::new();
        for &kind in &[TransferKind::OneD, TransferKind::TwoD] {
            for &bytes in &[4096u64, 32768, 131072] {
                for &pi in &[1.0, 2.0, 4.0, 8.0] {
                    for &pj in &[1.0, 4.0, 16.0] {
                        let c = transfer_components(kind, bytes, pi, pj, truth);
                        out.push(TransferSample {
                            kind,
                            bytes,
                            pi,
                            pj,
                            send_time: c.send,
                            net_time: c.network,
                            recv_time: c.recv,
                        });
                    }
                }
            }
        }
        out
    }

    #[test]
    fn transfer_fit_recovers_cm5_constants() {
        let truth = TransferParams::cm5();
        let fit = fit_transfer(&campaign(&truth));
        assert!((fit.params.t_ss - truth.t_ss).abs() / truth.t_ss < 1e-9);
        assert!((fit.params.t_ps - truth.t_ps).abs() / truth.t_ps < 1e-9);
        assert!((fit.params.t_sr - truth.t_sr).abs() / truth.t_sr < 1e-9);
        assert!((fit.params.t_pr - truth.t_pr).abs() / truth.t_pr < 1e-9);
        assert!(fit.params.t_n.abs() < 1e-15, "CM-5 network constant is zero");
        assert!(fit.r2_send > 1.0 - 1e-12);
        assert!(fit.r2_recv > 1.0 - 1e-12);
    }

    #[test]
    fn transfer_fit_recovers_mesh_constants() {
        let truth = TransferParams::synthetic_mesh();
        let fit = fit_transfer(&campaign(&truth));
        assert!((fit.params.t_n - truth.t_n).abs() / truth.t_n < 1e-9);
        assert!(fit.r2_net > 1.0 - 1e-12);
    }

    #[test]
    fn transfer_fit_with_noise_stays_close() {
        let truth = TransferParams::cm5();
        let mut samples = campaign(&truth);
        for (i, s) in samples.iter_mut().enumerate() {
            let f = if i % 2 == 0 { 1.02 } else { 0.98 };
            s.send_time *= f;
            s.recv_time *= f;
        }
        let fit = fit_transfer(&samples);
        assert!((fit.params.t_ss - truth.t_ss).abs() / truth.t_ss < 0.1);
        assert!((fit.params.t_ps - truth.t_ps).abs() / truth.t_ps < 0.1);
        assert!(fit.r2_send > 0.98);
    }

    #[test]
    fn stderr_zero_on_exact_data_and_positive_under_noise() {
        let truth = AmdahlParams::new(0.121, 298.47e-3);
        let exact: Vec<ProcessingSample> = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]
            .iter()
            .map(|&q| ProcessingSample { q, time: truth.cost(q) })
            .collect();
        let fit = fit_amdahl(&exact);
        assert!(fit.alpha_stderr < 1e-9);
        assert!(fit.tau_stderr < 1e-9);
        let noisy: Vec<ProcessingSample> = exact
            .iter()
            .enumerate()
            .map(|(i, s)| ProcessingSample {
                q: s.q,
                time: s.time * if i % 2 == 0 { 1.01 } else { 0.99 },
            })
            .collect();
        let fit_n = fit_amdahl(&noisy);
        assert!(fit_n.alpha_stderr > 0.0);
        assert!(fit_n.tau_stderr > 0.0);
        // The truth lies within a few standard errors of the estimate.
        assert!((fit_n.params.alpha - truth.alpha).abs() < 6.0 * fit_n.alpha_stderr);
        assert!((fit_n.params.tau - truth.tau).abs() < 6.0 * fit_n.tau_stderr);
    }

    #[test]
    fn transfer_stderr_tracks_noise() {
        let truth = TransferParams::cm5();
        let exact = fit_transfer(&campaign(&truth));
        assert!(exact.stderr.iter().all(|&s| s < 1e-12));
        let mut noisy = campaign(&truth);
        for (i, s) in noisy.iter_mut().enumerate() {
            let f = if i % 2 == 0 { 1.03 } else { 0.97 };
            s.send_time *= f;
            s.recv_time *= f;
        }
        let fit = fit_transfer(&noisy);
        assert!(fit.stderr[0] > 0.0 && fit.stderr[2] > 0.0);
        assert!((fit.params.t_ss - truth.t_ss).abs() < 6.0 * fit.stderr[0].max(1e-12));
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn amdahl_fit_needs_samples() {
        let _ = fit_amdahl(&[ProcessingSample { q: 1.0, time: 1.0 }]);
    }
}
