//! Minimal dense linear algebra for the regression fits: column-major
//! symmetric positive-definite solves via Cholesky, and ordinary least
//! squares through the normal equations. The systems here are tiny
//! (k <= 6 unknowns), so numerical sophistication beyond a ridge fallback
//! is unnecessary.

/// Error raised when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotSpd;

impl std::fmt::Display for NotSpd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite")
    }
}

impl std::error::Error for NotSpd {}

/// Cholesky factorization of a symmetric positive-definite `n x n` matrix
/// given in row-major order. Returns the lower factor `L` (row-major) with
/// `A = L L^T`.
pub fn cholesky(a: &[f64], n: usize) -> Result<Vec<f64>, NotSpd> {
    assert_eq!(a.len(), n * n, "matrix size mismatch");
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(NotSpd);
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Ok(l)
}

/// Solve `A x = b` for SPD `A` via Cholesky.
pub fn solve_spd(a: &[f64], b: &[f64], n: usize) -> Result<Vec<f64>, NotSpd> {
    let l = cholesky(a, n)?;
    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Back substitution: L^T x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Ok(x)
}

/// Ordinary least squares: minimize `||X beta - y||_2` where `X` is
/// `m x k` row-major. Solved through the normal equations
/// `X^T X beta = X^T y`; if `X^T X` is singular a small ridge term is
/// added (the fitting problems here are well-conditioned by design, the
/// ridge is a safety net).
pub fn least_squares(x: &[f64], y: &[f64], m: usize, k: usize) -> Vec<f64> {
    assert_eq!(x.len(), m * k, "design matrix size mismatch");
    assert_eq!(y.len(), m, "rhs size mismatch");
    assert!(m >= k, "need at least as many samples as unknowns");
    let mut xtx = vec![0.0; k * k];
    let mut xty = vec![0.0; k];
    for r in 0..m {
        let row = &x[r * k..(r + 1) * k];
        for i in 0..k {
            xty[i] += row[i] * y[r];
            for j in 0..k {
                xtx[i * k + j] += row[i] * row[j];
            }
        }
    }
    match solve_spd(&xtx, &xty, k) {
        Ok(beta) => beta,
        Err(NotSpd) => {
            // Ridge fallback proportionate to the diagonal scale.
            let scale: f64 = (0..k).map(|i| xtx[i * k + i]).sum::<f64>() / k as f64;
            let ridge = scale.max(1e-300) * 1e-10;
            for i in 0..k {
                xtx[i * k + i] += ridge;
            }
            solve_spd(&xtx, &xty, k).expect("ridge-regularized system must be SPD")
        }
    }
}

/// Covariance matrix of the OLS estimate: `sigma^2 (X^T X)^{-1}` with
/// `sigma^2 = ss_res / (m - k)` (row-major `k x k`). Returns zeros when
/// `m == k` (no residual degrees of freedom). Falls back to the same
/// ridge as [`least_squares`] on singular designs.
pub fn ols_covariance(x: &[f64], y: &[f64], beta: &[f64], m: usize, k: usize) -> Vec<f64> {
    assert_eq!(x.len(), m * k);
    assert_eq!(y.len(), m);
    let mut ss_res = 0.0;
    for r in 0..m {
        let row = &x[r * k..(r + 1) * k];
        let pred: f64 = row.iter().zip(beta).map(|(a, b)| a * b).sum();
        ss_res += (y[r] - pred) * (y[r] - pred);
    }
    if m <= k {
        return vec![0.0; k * k];
    }
    let sigma2 = ss_res / (m - k) as f64;
    let mut xtx = vec![0.0; k * k];
    for r in 0..m {
        let row = &x[r * k..(r + 1) * k];
        for i in 0..k {
            for j in 0..k {
                xtx[i * k + j] += row[i] * row[j];
            }
        }
    }
    // Invert via Cholesky solves against unit vectors.
    let inv_col = |xtx: &[f64], j: usize| -> Option<Vec<f64>> {
        let mut e = vec![0.0; k];
        e[j] = 1.0;
        solve_spd(xtx, &e, k).ok()
    };
    let mut inv = vec![0.0; k * k];
    let mut source = xtx.clone();
    if cholesky(&source, k).is_err() {
        let scale: f64 = (0..k).map(|i| source[i * k + i]).sum::<f64>() / k as f64;
        let ridge = scale.max(1e-300) * 1e-10;
        for i in 0..k {
            source[i * k + i] += ridge;
        }
    }
    for j in 0..k {
        let col = inv_col(&source, j).expect("regularized system is SPD");
        for i in 0..k {
            inv[i * k + j] = col[i];
        }
    }
    for v in inv.iter_mut() {
        *v *= sigma2;
    }
    inv
}

/// Coefficient of determination `R^2` of a fit.
pub fn r_squared(x: &[f64], y: &[f64], beta: &[f64], m: usize, k: usize) -> f64 {
    let mean = y.iter().sum::<f64>() / m as f64;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for r in 0..m {
        let row = &x[r * k..(r + 1) * k];
        let pred: f64 = row.iter().zip(beta).map(|(a, b)| a * b).sum();
        ss_res += (y[r] - pred) * (y[r] - pred);
        ss_tot += (y[r] - mean) * (y[r] - mean);
    }
    if ss_tot == 0.0 {
        // Constant target: perfect iff residuals are negligible relative
        // to the target's magnitude.
        let y_norm2: f64 = y.iter().map(|v| v * v).sum();
        if ss_res <= 1e-20 * y_norm2.max(f64::MIN_POSITIVE) {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_of_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let l = cholesky(&a, 2).unwrap();
        assert_eq!(l, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn cholesky_reconstructs() {
        // A = L0 L0^T for a chosen lower-triangular L0.
        let l0 = [2.0, 0.0, 0.0, 1.0, 3.0, 0.0, 0.5, -1.0, 1.5];
        let n = 3;
        let mut a = vec![0.0; 9];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    a[i * n + j] += l0[i * n + k] * l0[j * n + k];
                }
            }
        }
        let l = cholesky(&a, n).unwrap();
        for i in 0..9 {
            assert!((l[i] - l0[i]).abs() < 1e-12, "entry {i}: {} vs {}", l[i], l0[i]);
        }
    }

    #[test]
    fn non_spd_rejected() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert_eq!(cholesky(&a, 2), Err(NotSpd));
    }

    #[test]
    fn spd_solve_exact() {
        let a = vec![4.0, 1.0, 1.0, 3.0];
        let x_true = [2.0, -1.0];
        let b = [4.0 * 2.0 - 1.0, 1.0 * 2.0 - 3.0];
        let x = solve_spd(&a, &b, 2).unwrap();
        assert!((x[0] - x_true[0]).abs() < 1e-12);
        assert!((x[1] - x_true[1]).abs() < 1e-12);
    }

    #[test]
    fn least_squares_recovers_exact_line() {
        // y = 3 + 2 t sampled exactly.
        let ts = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for &t in &ts {
            x.extend_from_slice(&[1.0, t]);
            y.push(3.0 + 2.0 * t);
        }
        let beta = least_squares(&x, &y, ts.len(), 2);
        assert!((beta[0] - 3.0).abs() < 1e-10);
        assert!((beta[1] - 2.0).abs() < 1e-10);
        assert!((r_squared(&x, &y, &beta, ts.len(), 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_with_noise_is_close() {
        // Deterministic "noise" that sums to ~zero.
        let mut x = Vec::new();
        let mut y = Vec::new();
        let m = 40;
        for r in 0..m {
            let t = r as f64 / 4.0;
            let noise = if r % 2 == 0 { 0.05 } else { -0.05 };
            x.extend_from_slice(&[1.0, t]);
            y.push(1.5 - 0.7 * t + noise);
        }
        let beta = least_squares(&x, &y, m, 2);
        assert!((beta[0] - 1.5).abs() < 0.05);
        assert!((beta[1] + 0.7).abs() < 0.02);
        assert!(r_squared(&x, &y, &beta, m, 2) > 0.99);
    }

    #[test]
    fn rank_deficient_design_falls_back_to_ridge() {
        // Two identical columns: normal equations singular.
        let x = vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let y = vec![2.0, 4.0, 6.0];
        let beta = least_squares(&x, &y, 3, 2);
        // Ridge splits the weight; predictions should still be right.
        let pred = beta[0] + beta[1];
        assert!((pred - 2.0).abs() < 1e-3);
    }

    #[test]
    fn covariance_zero_for_exact_fit() {
        let ts = [1.0, 2.0, 3.0, 4.0];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for &t in &ts {
            x.extend_from_slice(&[1.0, t]);
            y.push(2.0 + 5.0 * t);
        }
        let beta = least_squares(&x, &y, 4, 2);
        let cov = ols_covariance(&x, &y, &beta, 4, 2);
        for v in &cov {
            assert!(v.abs() < 1e-18, "exact fit must have ~zero covariance, got {v}");
        }
    }

    #[test]
    fn covariance_scales_with_noise() {
        let build = |noise: f64| {
            let mut x = Vec::new();
            let mut y = Vec::new();
            for r in 0..40 {
                let t = 1.0 + r as f64 * 0.25;
                let eps = if r % 2 == 0 { noise } else { -noise };
                x.extend_from_slice(&[1.0, t]);
                y.push(3.0 - 0.5 * t + eps);
            }
            let beta = least_squares(&x, &y, 40, 2);
            ols_covariance(&x, &y, &beta, 40, 2)
        };
        let small = build(0.01);
        let big = build(0.1);
        assert!(big[0] > small[0] * 50.0, "variance must grow ~noise^2");
        // Diagonal entries are variances: non-negative.
        assert!(small[0] >= 0.0 && small[3] >= 0.0);
    }

    #[test]
    fn covariance_no_dof_returns_zeros() {
        let x = vec![1.0, 1.0, 1.0, 2.0];
        let y = vec![1.0, 2.0];
        let beta = least_squares(&x, &y, 2, 2);
        assert_eq!(ols_covariance(&x, &y, &beta, 2, 2), vec![0.0; 4]);
    }

    #[test]
    fn r_squared_of_constant_target() {
        let x = vec![1.0, 1.0, 1.0];
        let y = vec![5.0, 5.0, 5.0];
        let beta = least_squares(&x, &y, 3, 1);
        assert!((beta[0] - 5.0).abs() < 1e-12);
        assert_eq!(r_squared(&x, &y, &beta, 3, 1), 1.0);
    }
}
