//! Property-based tests of the cost models: posynomial structure
//! (log-space convexity), monotonicity laws, regression round-trips, and
//! the Section-2 weight identities.

use paradigm_cost::regression::{fit_amdahl, fit_transfer, ProcessingSample, TransferSample};
use paradigm_cost::{
    network_cost, recv_cost, send_cost, transfer_components, Allocation, Machine, MdgWeights,
    TransferParams,
};
use paradigm_mdg::{random_layered_mdg, AmdahlParams, RandomMdgConfig, TransferKind};
use proptest::prelude::*;

fn arb_amdahl() -> impl Strategy<Value = AmdahlParams> {
    (0.0f64..=0.9, 0.001f64..100.0).prop_map(|(a, t)| AmdahlParams::new(a, t))
}

fn arb_kind() -> impl Strategy<Value = TransferKind> {
    prop_oneof![Just(TransferKind::OneD), Just(TransferKind::TwoD)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn processing_cost_monotone_decreasing(p in arb_amdahl(), q1 in 1.0f64..64.0, dq in 0.1f64..64.0) {
        let q2 = q1 + dq;
        prop_assert!(p.cost(q2) <= p.cost(q1) + 1e-12);
    }

    #[test]
    fn processing_area_monotone_increasing(p in arb_amdahl(), q1 in 1.0f64..64.0, dq in 0.1f64..64.0) {
        let q2 = q1 + dq;
        prop_assert!(p.area(q2) >= p.area(q1) - 1e-12);
    }

    #[test]
    fn processing_cost_bracketed(p in arb_amdahl(), q in 1.0f64..1e6) {
        // alpha*tau <= t(q) <= tau for q >= 1.
        let c = p.cost(q);
        prop_assert!(c <= p.tau + 1e-12);
        prop_assert!(c >= p.alpha * p.tau - 1e-12);
    }

    #[test]
    fn transfer_components_positive_and_finite(
        kind in arb_kind(),
        bytes in 1u64..10_000_000,
        pi in 1.0f64..64.0,
        pj in 1.0f64..64.0,
    ) {
        let m = TransferParams::cm5();
        let c = transfer_components(kind, bytes, pi, pj, &m);
        prop_assert!(c.send > 0.0 && c.send.is_finite());
        prop_assert!(c.recv > 0.0 && c.recv.is_finite());
        prop_assert!(c.network >= 0.0);
    }

    #[test]
    fn transfer_send_decreases_with_more_senders_1d(
        bytes in 1024u64..1_000_000,
        pi in 1.0f64..32.0,
        pj in 1.0f64..32.0,
    ) {
        // With pj fixed, doubling the senders cannot increase the 1D
        // per-sender cost.
        let m = TransferParams::cm5();
        let c1 = send_cost(TransferKind::OneD, bytes, pi, pj, &m);
        let c2 = send_cost(TransferKind::OneD, bytes, pi * 2.0, pj, &m);
        prop_assert!(c2 <= c1 + 1e-12);
    }

    #[test]
    fn transfer_recv_grows_with_senders_2d(
        bytes in 1024u64..1_000_000,
        pi in 1.0f64..32.0,
        pj in 1.0f64..32.0,
    ) {
        // 2D receive pays one startup per sender.
        let m = TransferParams::cm5();
        let c1 = recv_cost(TransferKind::TwoD, bytes, pi, pj, &m);
        let c2 = recv_cost(TransferKind::TwoD, bytes, pi + 1.0, pj, &m);
        prop_assert!(c2 >= c1 - 1e-15);
    }

    #[test]
    fn network_cost_zero_on_cm5(kind in arb_kind(), bytes in 1u64..1_000_000, pi in 1.0f64..64.0, pj in 1.0f64..64.0) {
        let m = TransferParams::cm5();
        prop_assert_eq!(network_cost(kind, bytes, pi, pj, &m), 0.0);
    }

    #[test]
    fn amdahl_fit_roundtrip(p in arb_amdahl()) {
        let samples: Vec<ProcessingSample> = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]
            .iter()
            .map(|&q| ProcessingSample { q, time: p.cost(q) })
            .collect();
        let fit = fit_amdahl(&samples);
        prop_assert!((fit.params.alpha - p.alpha).abs() < 1e-6,
            "alpha {} vs {}", fit.params.alpha, p.alpha);
        prop_assert!((fit.params.tau - p.tau).abs() < 1e-6 * p.tau.max(1.0));
    }

    #[test]
    fn transfer_fit_roundtrip(
        t_ss in 1e-6f64..1e-2,
        t_ps in 1e-10f64..1e-6,
        t_sr in 1e-6f64..1e-2,
        t_pr in 1e-10f64..1e-6,
        t_n in 0.0f64..1e-7,
    ) {
        let truth = TransferParams { t_ss, t_ps, t_sr, t_pr, t_n };
        let mut samples = Vec::new();
        for &kind in &[TransferKind::OneD, TransferKind::TwoD] {
            for &bytes in &[4096u64, 65536, 262144] {
                for &pi in &[1.0f64, 2.0, 8.0] {
                    for &pj in &[1.0f64, 4.0, 16.0] {
                        let c = transfer_components(kind, bytes, pi, pj, &truth);
                        samples.push(TransferSample {
                            kind, bytes, pi, pj,
                            send_time: c.send, net_time: c.network, recv_time: c.recv,
                        });
                    }
                }
            }
        }
        let fit = fit_transfer(&samples);
        prop_assert!((fit.params.t_ss - t_ss).abs() < 1e-6 * t_ss.max(1e-9));
        prop_assert!((fit.params.t_pr - t_pr).abs() < 1e-6 * t_pr.max(1e-12));
    }

    #[test]
    fn weights_identities_on_random_graphs(seed in 0u64..5000, qk in 0u32..4) {
        let cfg = RandomMdgConfig::default();
        let g = random_layered_mdg(&cfg, seed);
        let m = Machine::cm5(16);
        let q = (1u32 << qk) as f64; // 1..8
        let alloc = Allocation::uniform(&g, q);
        let w = MdgWeights::compute(&g, &m, &alloc);
        // T_i = recv + compute + send, everywhere.
        for (id, _) in g.nodes() {
            let total = w.node_recv[id.0] + w.node_compute[id.0] + w.node_send[id.0];
            prop_assert!((w.node_weight(id) - total).abs() < 1e-12 * total.max(1.0));
        }
        // Phi = max(A_p, C_p) and finishes are monotone along edges.
        let phi = w.phi(&g);
        prop_assert!((phi.phi - phi.a_p.max(phi.c_p)).abs() < 1e-15);
        for (eid, e) in g.edges() {
            prop_assert!(
                phi.finishes[e.dst] + 1e-9 >=
                phi.finishes[e.src] + w.edge_weight(eid) + w.node_weight(paradigm_mdg::NodeId(e.dst))
                    - 1e-9
            );
        }
    }

    #[test]
    fn uniform_allocation_ap_equals_area_over_p(seed in 0u64..5000) {
        let g = random_layered_mdg(&RandomMdgConfig::default(), seed);
        let m = Machine::cm5(8);
        let alloc = Allocation::uniform(&g, 4.0);
        let w = MdgWeights::compute(&g, &m, &alloc);
        let manual: f64 = g
            .nodes()
            .map(|(id, _)| w.node_weight(id) * 4.0)
            .sum::<f64>() / 8.0;
        prop_assert!((w.average_finish_time() - manual).abs() < 1e-9 * manual.max(1.0));
    }
}
