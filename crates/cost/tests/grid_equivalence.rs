//! Pins the numerical equivalence between this crate's Eq. 2/3 cost
//! functions and the general grid-distribution cost of
//! `paradigm_kernels::grid` on the degenerate (1D) grids — i.e. the
//! paper's formulas are exactly the `r x 1` / `1 x c` special cases of
//! the general extension.

use paradigm_cost::{transfer_components, TransferParams};
use paradigm_kernels::grid::paradigm_cost_params as mirror;
use paradigm_kernels::{grid_transfer_cost, GridDist};
use paradigm_mdg::TransferKind;

fn to_mirror(x: &TransferParams) -> mirror::TransferParams {
    mirror::TransferParams { t_ss: x.t_ss, t_ps: x.t_ps, t_sr: x.t_sr, t_pr: x.t_pr, t_n: x.t_n }
}

#[test]
fn row_to_row_grids_equal_eq2() {
    let x = TransferParams::cm5();
    let (rows, cols) = (64usize, 64usize);
    let bytes = (rows * cols * 8) as u64;
    for (pi, pj) in [(1usize, 1usize), (2, 8), (8, 2), (4, 4), (16, 16)] {
        let model = transfer_components(TransferKind::OneD, bytes, pi as f64, pj as f64, &x);
        let grid =
            grid_transfer_cost(rows, cols, GridDist::row(pi), GridDist::row(pj), &to_mirror(&x));
        assert!((model.send - grid.send).abs() < 1e-12 * model.send.max(1e-12), "{pi}->{pj} send");
        assert!((model.recv - grid.recv).abs() < 1e-12 * model.recv.max(1e-12), "{pi}->{pj} recv");
    }
}

#[test]
fn row_to_col_grids_equal_eq3() {
    let x = TransferParams::cm5();
    let (rows, cols) = (64usize, 64usize);
    let bytes = (rows * cols * 8) as u64;
    for (pi, pj) in [(2usize, 2usize), (4, 8), (8, 4)] {
        let model = transfer_components(TransferKind::TwoD, bytes, pi as f64, pj as f64, &x);
        let grid =
            grid_transfer_cost(rows, cols, GridDist::row(pi), GridDist::col(pj), &to_mirror(&x));
        assert!((model.send - grid.send).abs() < 1e-12 * model.send.max(1e-12), "{pi}->{pj} send");
        assert!((model.recv - grid.recv).abs() < 1e-12 * model.recv.max(1e-12), "{pi}->{pj} recv");
    }
}

#[test]
fn mesh_network_term_agrees_on_1d() {
    let x = TransferParams::synthetic_mesh();
    let (rows, cols) = (64usize, 64usize);
    let bytes = (rows * cols * 8) as u64;
    let (pi, pj) = (4usize, 8usize);
    // Eq. 2 network: L / max(pi,pj) * t_n = the largest single message
    // times t_n under the planner (each message is L/max bytes).
    let model = transfer_components(TransferKind::OneD, bytes, pi as f64, pj as f64, &x);
    let grid = grid_transfer_cost(rows, cols, GridDist::row(pi), GridDist::row(pj), &to_mirror(&x));
    assert!((model.network - grid.network).abs() < 1e-15);
}

#[test]
fn general_grid_is_cheaper_than_worst_1d_flip_for_square_grids() {
    // The extension's point: a 2x2 -> 2x2 same-grid move costs far less
    // than the ROW -> COL flip of the same data over 4 processors.
    let x = to_mirror(&TransferParams::cm5());
    let same = grid_transfer_cost(64, 64, GridDist::new(2, 2), GridDist::new(2, 2), &x);
    let flip = grid_transfer_cost(64, 64, GridDist::row(4), GridDist::col(4), &x);
    assert!(same.send < flip.send, "grid locality must pay off");
    assert!(same.recv < flip.recv);
}
