//! Property-based tests of the front end: randomly generated valid
//! programs must always lex, parse, lower to invariant-satisfying MDGs,
//! and round-trip through the MDG text format; random mutations of valid
//! programs must fail with a line-numbered error, never a panic.

use paradigm_front::{compile_source, emit, parse};
use paradigm_mdg::validate::check_invariants;
use paradigm_mdg::KernelCostTable;
use proptest::prelude::*;

/// Generate a random valid program: `n` square matrices of one size,
/// a few inits, then a chain of random binary statements over already
/// defined matrices.
fn arb_program() -> impl Strategy<Value = String> {
    (2usize..6, 1usize..5, 0usize..12, any::<u64>()).prop_map(|(inits, size_k, extra, seed)| {
        let size = 16 << size_k; // 32..256
        let total = inits + extra;
        let mut src = String::from("program generated\n");
        src.push_str("matrix ");
        let names: Vec<String> = (0..total).map(|i| format!("M{i}")).collect();
        src.push_str(
            &names.iter().map(|n| format!("{n}({size},{size})")).collect::<Vec<_>>().join(", "),
        );
        src.push('\n');
        for name in names.iter().take(inits) {
            src.push_str(&format!("{name} = init()\n"));
        }
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for (k, name) in names.iter().enumerate().skip(inits) {
            let lhs = &names[next() % k];
            let rhs = &names[next() % k];
            let op = ["*", "+", "-"][next() % 3];
            let t1 = if next() % 4 == 0 { "'" } else { "" };
            let t2 = if next() % 4 == 0 { "'" } else { "" };
            src.push_str(&format!("{name} = {lhs}{t1} {op} {rhs}{t2}\n"));
        }
        src
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn generated_programs_compile_to_valid_mdgs(src in arb_program()) {
        // Square matrices make every op shape-valid (transposes included).
        let g = compile_source(&src, &KernelCostTable::cm5())
            .unwrap_or_else(|e| panic!("{e}\n{src}"));
        prop_assert!(check_invariants(&g).is_ok());
        // One node per statement.
        let stmts = src.lines().filter(|l| l.contains('=')).count();
        prop_assert_eq!(g.compute_node_count(), stmts);
    }

    #[test]
    fn compiled_graphs_roundtrip_through_mdg_text(src in arb_program()) {
        let g = compile_source(&src, &KernelCostTable::cm5()).expect("compiles");
        let text = paradigm_mdg::to_text(&g);
        let back = paradigm_mdg::from_text(&text).expect("reparses");
        prop_assert_eq!(g.node_count(), back.node_count());
        prop_assert_eq!(g.edge_count(), back.edge_count());
    }

    #[test]
    fn emit_parse_is_identity_on_ast(src in arb_program()) {
        let p1 = parse(&src).expect("generated programs parse");
        let text = emit(&p1);
        let p2 = parse(&text).expect("emitted text reparses");
        prop_assert_eq!(p1.name, p2.name);
        prop_assert_eq!(p1.decls.len(), p2.decls.len());
        prop_assert_eq!(p1.stmts.len(), p2.stmts.len());
        for (a, b) in p1.stmts.iter().zip(&p2.stmts) {
            prop_assert_eq!(&a.target, &b.target);
            prop_assert_eq!(&a.expr, &b.expr);
        }
    }

    #[test]
    fn parser_never_panics_on_mutations(src in arb_program(), cut in any::<prop::sample::Index>()) {
        // Truncate at an arbitrary byte boundary: must return Ok or a
        // structured error, never panic.
        let n = cut.index(src.len().max(1));
        let truncated: String = src.chars().take(n).collect();
        let _ = parse(&truncated);
        let _ = compile_source(&truncated, &KernelCostTable::cm5());
    }

    #[test]
    fn junk_lines_fail_with_line_numbers(src in arb_program(), junk in "[a-z]{1,6}") {
        let broken = format!("{src}{junk} {junk}\n");
        match compile_source(&broken, &KernelCostTable::cm5()) {
            Ok(_) => {
                // `x y` only parses if it forms a valid statement, which
                // requires an `=`; a two-ident line never does.
                prop_assert!(false, "junk line accepted");
            }
            Err(e) => prop_assert!(e.line > 0),
        }
    }
}
