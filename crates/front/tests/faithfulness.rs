//! Front-end faithfulness: compiling the paper's test programs from
//! source must produce MDGs structurally equivalent to the hand-built
//! ones of `paradigm_mdg::builders` — same node inventory, same
//! dependence structure, same costs, same transfer kinds/volumes.

use paradigm_front::compile_source;
use paradigm_mdg::stats::MdgStats;
use paradigm_mdg::{complex_matmul_mdg, KernelCostTable, Mdg, NodeKind, TransferKind};

const CMM_SOURCE: &str = "\
program complex_matmul
matrix Ar(64,64), Ai(64,64), Br(64,64), Bi(64,64)
matrix M1(64,64), M2(64,64), M3(64,64), M4(64,64)
matrix Cr(64,64), Ci(64,64)

Ar = init()
Ai = init()
Br = init()
Bi = init()
M1 = Ar * Br
M2 = Ai * Bi
M3 = Ar * Bi
M4 = Ai * Br
Cr = M1 - M2
Ci = M3 + M4
";

type Fingerprint = (usize, usize, Vec<String>, Vec<(usize, usize, u64)>);

fn structural_fingerprint(g: &Mdg) -> Fingerprint {
    let mut classes: Vec<String> = g
        .nodes()
        .filter(|(_, n)| n.kind == NodeKind::Compute)
        .map(|(_, n)| n.meta.class.tag().to_string())
        .collect();
    classes.sort();
    let mut edges: Vec<(usize, usize, u64)> = g
        .edges()
        .filter(|(_, e)| !e.transfers.is_empty())
        .map(|(_, e)| (e.src, e.dst, e.total_bytes()))
        .collect();
    edges.sort();
    (g.node_count(), edges.len(), classes, edges)
}

#[test]
fn cmm_from_source_matches_hand_built_graph() {
    let table = KernelCostTable::cm5();
    let compiled = compile_source(CMM_SOURCE, &table).expect("CMM program compiles");
    let hand = complex_matmul_mdg(64, &table);
    let (n1, e1, c1, edges1) = structural_fingerprint(&compiled);
    let (n2, e2, c2, edges2) = structural_fingerprint(&hand);
    assert_eq!(n1, n2, "node counts differ");
    assert_eq!(e1, e2, "data edge counts differ");
    assert_eq!(c1, c2, "loop class inventories differ");
    assert_eq!(edges1, edges2, "dependence structure differs");
}

#[test]
fn cmm_from_source_has_identical_costs() {
    let table = KernelCostTable::cm5();
    let compiled = compile_source(CMM_SOURCE, &table).expect("compiles");
    let hand = complex_matmul_mdg(64, &table);
    // Zip by node index (statement order matches the hand-built order).
    for (id, n) in compiled.nodes() {
        let h = hand.node(id);
        assert!((n.cost.alpha - h.cost.alpha).abs() < 1e-12, "{}", n.name);
        assert!((n.cost.tau - h.cost.tau).abs() < 1e-12, "{}", n.name);
    }
}

#[test]
fn cmm_from_source_schedules_identically() {
    // End to end: the compiled-from-source graph must produce the same
    // Phi and T_psa as the hand-built one.
    use paradigm_cost::Machine;
    use paradigm_sched::{psa_schedule, PsaConfig};
    use paradigm_solver::{allocate, SolverConfig};
    let table = KernelCostTable::cm5();
    let compiled = compile_source(CMM_SOURCE, &table).expect("compiles");
    let hand = complex_matmul_mdg(64, &table);
    let m = Machine::cm5(16);
    let cfg = SolverConfig { parallel: false, ..SolverConfig::fast() };
    let phi_src = allocate(&compiled, m, &cfg).phi.phi;
    let phi_hand = allocate(&hand, m, &cfg).phi.phi;
    assert!((phi_src - phi_hand).abs() < 1e-6 * phi_hand, "Phi differs: {phi_src} vs {phi_hand}");
    let alloc = paradigm_cost::Allocation::uniform(&compiled, 4.0);
    let t_src = psa_schedule(&compiled, m, &alloc, &PsaConfig::default()).t_psa;
    let t_hand = psa_schedule(&hand, m, &alloc, &PsaConfig::default()).t_psa;
    assert!((t_src - t_hand).abs() < 1e-12, "T_psa differs: {t_src} vs {t_hand}");
}

#[test]
fn mixed_parallelism_program_with_transpose() {
    // A realistic normal-equations kernel: G = A' * A needs a transposed
    // use; the front end must emit a 2D transfer for it.
    let src = "\
program normal_eq
matrix A(128,64), G(64,64), R(64,64)
A = init()
G = A' * A
R = G + G
";
    let g = compile_source(src, &KernelCostTable::cm5()).expect("compiles");
    let stats = MdgStats::of(&g);
    assert_eq!(stats.compute_nodes, 3);
    let two_d = g
        .edges()
        .flat_map(|(_, e)| e.transfers.iter())
        .filter(|t| t.kind == TransferKind::TwoD)
        .count();
    assert_eq!(two_d, 1, "exactly the A' use is 2D");
}

#[test]
fn front_end_error_paths_are_user_grade() {
    let table = KernelCostTable::cm5();
    for (src, needle) in [
        ("program p\nmatrix A(8,8)\nB = A + A\n", "not declared"),
        ("program p\nmatrix A(8,8), B(8,8)\nB = A * A\nA = init()\n", "before it is defined"),
        ("program p\nmatrix A(8,8)\nA = @\n", "unexpected character"),
        ("nope\n", "program"),
    ] {
        let e = compile_source(src, &table).expect_err(src);
        assert!(e.message.contains(needle), "{src}: got {e}");
        assert!(e.line > 0);
    }
}

#[test]
fn checked_compilation_lints_the_lowered_graph() {
    let table = KernelCostTable::cm5();
    let (g, diags) = paradigm_front::compile_source_checked(CMM_SOURCE, &table)
        .expect("the paper's CMM program lowers to a lint-clean graph");
    assert_eq!(MdgStats::of(&g).compute_nodes, 10);
    // The CMM graph is fully connected compute-to-compute and uses
    // measured costs, so no diagnostic of any severity should fire.
    assert!(diags.is_empty(), "{diags:?}");
    // Parse errors still surface as FrontError, not as lints.
    assert!(paradigm_front::compile_source_checked("nope\n", &table).is_err());
}
