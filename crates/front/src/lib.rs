//! # paradigm-front — a matrix-program front-end for MDG extraction
//!
//! The paper's Section 1.2 lists five pipeline steps; for Step 1 —
//! "Identification of the nodes and edges to be used in the MDG
//! representation of the given program" — the authors write *"We do not
//! have any methods developed yet for this step"* and point at
//! Girkar–Polychronopoulos. This crate is that missing front end, for a
//! deliberately small language of whole-matrix statements:
//!
//! ```text
//! program cmm
//! matrix Ar(64,64), Ai(64,64), Br(64,64), Bi(64,64)
//!
//! Ar = init()
//! Ai = init()
//! Br = init()
//! Bi = init()
//! M1 = Ar * Br
//! M2 = Ai * Bi
//! M3 = Ar * Bi
//! M4 = Ai * Br
//! Cr = M1 - M2
//! Ci = M3 + M4
//! ```
//!
//! Each statement becomes one MDG node (its loop class inferred from the
//! operator); precedence edges come from def-use analysis (every operand
//! use depends on the *last* definition of that matrix); array transfers
//! carry the operand's size; a transposed use (`B'`) flips the
//! distribution dimension and therefore produces a **2D** transfer,
//! everything else is 1D. Shapes are checked against the declarations.
//!
//! `compile_source` is the one-call API: source text in, finished
//! [`paradigm_mdg::Mdg`] out. The test-suite proves the front end
//! faithful by compiling the paper's Complex-Matrix-Multiply program and
//! checking it against the hand-built `complex_matmul_mdg` node for
//! node.

pub mod ast;
pub mod emit;
pub mod interp;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::{BinOp, Expr, MatrixDecl, Operand, Program, Stmt};
pub use emit::{emit, normalize};
pub use interp::{interpret, interpret_distributed};
pub use lexer::{tokenize, Token, TokenKind};
pub use lower::{lower, LowerError};
pub use parser::{parse, FrontError};

/// Parse and lower in one step.
pub fn compile_source(
    source: &str,
    costs: &paradigm_mdg::KernelCostTable,
) -> Result<paradigm_mdg::Mdg, FrontError> {
    let program = parse(source)?;
    let g = lower(&program, costs).map_err(FrontError::from)?;
    // Lowering a parsed program must never fabricate a graph the solver
    // would choke on (NaN costs, degenerate Amdahl fractions, ...): the
    // kernel cost table validates its parameters and def-use lowering
    // wires every node between START and STOP.
    #[cfg(debug_assertions)]
    debug_assert!(
        !paradigm_analyze::has_errors(&paradigm_analyze::lint_mdg(&g)),
        "front-end lowering produced a graph with lint errors:\n{}",
        paradigm_analyze::render_diagnostics(&g, &paradigm_analyze::lint_mdg(&g))
    );
    Ok(g)
}

/// Like [`compile_source`], but also run the [`paradigm_analyze`] MDG
/// lints over the lowered graph.
///
/// Error-level findings are promoted to a [`FrontError`] (a front end
/// must not hand the pipeline a graph the convex solver will misbehave
/// on); the surviving diagnostics — warnings and notes — are returned
/// alongside the graph for the caller to surface.
pub fn compile_source_checked(
    source: &str,
    costs: &paradigm_mdg::KernelCostTable,
) -> Result<(paradigm_mdg::Mdg, Vec<paradigm_analyze::Diagnostic>), FrontError> {
    let program = parse(source)?;
    let g = lower(&program, costs).map_err(FrontError::from)?;
    let diags = paradigm_analyze::lint_mdg(&g);
    if paradigm_analyze::has_errors(&diags) {
        return Err(FrontError {
            line: 0,
            message: format!(
                "lowered graph fails lints:\n{}",
                paradigm_analyze::render_diagnostics(&g, &diags)
            ),
        });
    }
    Ok((g, diags))
}
