//! Value-level interpreters for mini-language programs.
//!
//! Two executions of the same program:
//!
//! * [`interpret`] — the sequential reference: statements run in order on
//!   whole matrices (deterministic random initialization per target).
//! * [`interpret_distributed`] — the "compiled" execution: every operand
//!   crosses a producer→consumer boundary the way the lowered MPMD
//!   program moves it — scattered over the producer's processor group
//!   (block rows), pushed through the exact redistribution plan
//!   (ROW2ROW for 1D uses, ROW2COL for transposed/2D uses), and
//!   reassembled at the consumer — with group sizes taken from a real
//!   allocation.
//!
//! If the two agree element-for-element, the redistribution machinery the
//! simulator charges time for is also *value*-correct: the compiler
//! pipeline produces programs that compute the right answer, not just
//! ones with plausible schedules. (`tests/` drive this with allocations
//! produced by the actual convex solver.)

use crate::ast::{BinOp, Expr, Operand, Program};
use paradigm_kernels::{gather, redistribution_plan, scatter, BlockDist, Matrix};
use std::collections::BTreeMap;

/// Execute the program sequentially; returns the final value of every
/// matrix (last definition wins). `init()` fills deterministically from
/// `seed` and the statement index.
pub fn interpret(program: &Program, seed: u64) -> BTreeMap<String, Matrix> {
    let mut env: BTreeMap<String, Matrix> = BTreeMap::new();
    for (k, stmt) in program.stmts.iter().enumerate() {
        let value = eval_stmt(program, stmt, k, seed, &env, &mut |m, _, _| m.clone());
        env.insert(stmt.target.clone(), value);
    }
    env
}

/// Execute the program with every operand routed through scatter →
/// redistribution plan → gather, using per-statement processor counts
/// from `groups` (one entry per statement, in order; the producer's
/// group size applies on the sending side).
///
/// # Panics
/// Panics if `groups.len() != program.stmts.len()` or any group is 0.
pub fn interpret_distributed(
    program: &Program,
    groups: &[usize],
    seed: u64,
) -> BTreeMap<String, Matrix> {
    assert_eq!(groups.len(), program.stmts.len(), "one group size per statement");
    assert!(groups.iter().all(|&g| g >= 1), "groups must be non-empty");
    // Producer statement index per matrix version.
    let mut producer_of: BTreeMap<String, usize> = BTreeMap::new();
    let mut env: BTreeMap<String, Matrix> = BTreeMap::new();
    for (k, stmt) in program.stmts.iter().enumerate() {
        let route = |m: &Matrix, operand: &Operand, consumer: usize| -> Matrix {
            let src_procs = groups
                [*producer_of.get(&operand.name).expect("lowering already checked def-before-use")];
            let dst_procs = groups[consumer];
            move_matrix(m, src_procs, dst_procs, operand.transposed)
        };
        let value =
            eval_stmt(program, stmt, k, seed, &env, &mut |m, op, consumer| route(m, op, consumer));
        env.insert(stmt.target.clone(), value);
        producer_of.insert(stmt.target.clone(), k);
    }
    env
}

/// Move a matrix from a `src`-processor group (block-row distributed) to
/// a `dst`-processor group: ROW2ROW for plain uses, ROW2COL for
/// transposed uses — executing the byte-exact redistribution plan on
/// real data and reassembling. Returns the matrix as the consumer sees
/// it (the transpose itself is applied by the consuming kernel, so the
/// *values* are unchanged; only the path differs).
fn move_matrix(m: &Matrix, src: usize, dst: usize, transposed: bool) -> Matrix {
    let (rows, cols) = (m.rows(), m.cols());
    let dst_dist = if transposed { BlockDist::Col } else { BlockDist::Row };
    let pieces = scatter(m, BlockDist::Row, src);
    let plan = redistribution_plan(rows, cols, src, BlockDist::Row, dst, dst_dist);
    // Execute the plan: build each destination piece from messages.
    let src_ranges = paradigm_kernels::block_ranges(rows, src);
    let mut rebuilt: Vec<Matrix> = match dst_dist {
        BlockDist::Row => paradigm_kernels::block_ranges(rows, dst)
            .into_iter()
            .map(|(_, l)| Matrix::zeros(l, cols))
            .collect(),
        BlockDist::Col => paradigm_kernels::block_ranges(cols, dst)
            .into_iter()
            .map(|(_, l)| Matrix::zeros(rows, l))
            .collect(),
    };
    for msg in &plan {
        let (r0, _rl) = src_ranges[msg.src as usize];
        let piece = &pieces[msg.src as usize];
        match dst_dist {
            BlockDist::Row => {
                let dst_ranges = paradigm_kernels::block_ranges(rows, dst);
                let (d0, _) = dst_ranges[msg.dst as usize];
                // Overlap rows between src block and dst block.
                let lo = r0.max(d0);
                let hi = (r0 + piece.rows()).min(d0 + rebuilt[msg.dst as usize].rows());
                debug_assert_eq!(((hi - lo) * cols * 8) as u64, msg.bytes);
                let sub = piece.block(lo - r0, 0, hi - lo, cols);
                rebuilt[msg.dst as usize].set_block(lo - d0, 0, &sub);
            }
            BlockDist::Col => {
                let dst_ranges = paradigm_kernels::block_ranges(cols, dst);
                let (c0, cl) = dst_ranges[msg.dst as usize];
                debug_assert_eq!((piece.rows() * cl * 8) as u64, msg.bytes);
                let sub = piece.block(0, c0, piece.rows(), cl);
                rebuilt[msg.dst as usize].set_block(r0, 0, &sub);
            }
        }
    }
    match dst_dist {
        BlockDist::Row => gather(&rebuilt, BlockDist::Row, rows, cols),
        BlockDist::Col => gather(&rebuilt, BlockDist::Col, rows, cols),
    }
}

/// Evaluate one statement; `route` intercepts every operand fetch
/// (identity for the reference interpreter, redistribution for the
/// distributed one).
fn eval_stmt(
    program: &Program,
    stmt: &crate::ast::Stmt,
    index: usize,
    seed: u64,
    env: &BTreeMap<String, Matrix>,
    route: &mut dyn FnMut(&Matrix, &Operand, usize) -> Matrix,
) -> Matrix {
    let decl = program.decl(&stmt.target).expect("lowering validated declarations");
    let fetch = |op: &Operand, route: &mut dyn FnMut(&Matrix, &Operand, usize) -> Matrix| {
        let raw = env.get(&op.name).expect("lowering validated def-before-use");
        let moved = route(raw, op, index);
        if op.transposed {
            moved.transpose()
        } else {
            moved
        }
    };
    match &stmt.expr {
        Expr::Init => Matrix::random(decl.rows, decl.cols, seed ^ (index as u64) << 17),
        Expr::Copy { src } => fetch(src, route),
        Expr::Bin { op, lhs, rhs } => {
            let a = fetch(lhs, route);
            let b = fetch(rhs, route);
            match op {
                BinOp::Mul => a.mul(&b),
                BinOp::Add => a.add(&b),
                BinOp::Sub => a.sub(&b),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const PROG: &str = "\
program interp_test
matrix A(24,24), B(24,24), C(24,24), D(24,24), E(24,24)
A = init()
B = init()
C = A * B
D = A' + C
E = D - B
";

    #[test]
    fn reference_interpreter_computes_expected_values() {
        let p = parse(PROG).unwrap();
        let env = interpret(&p, 7);
        let a = &env["A"];
        let b = &env["B"];
        let c = a.mul(b);
        assert!(env["C"].approx_eq(&c, 1e-12));
        let d = a.transpose().add(&c);
        assert!(env["D"].approx_eq(&d, 1e-12));
        assert!(env["E"].approx_eq(&d.sub(b), 1e-12));
    }

    #[test]
    fn distributed_matches_reference_for_various_groups() {
        let p = parse(PROG).unwrap();
        let reference = interpret(&p, 42);
        for groups in
            [vec![1, 1, 1, 1, 1], vec![4, 4, 4, 4, 4], vec![2, 8, 3, 5, 1], vec![24, 1, 7, 2, 16]]
        {
            let dist = interpret_distributed(&p, &groups, 42);
            for (name, want) in &reference {
                assert!(dist[name].approx_eq(want, 1e-10), "{name} differs for groups {groups:?}");
            }
        }
    }

    #[test]
    fn seeds_change_values_deterministically() {
        let p = parse(PROG).unwrap();
        let a = interpret(&p, 1);
        let b = interpret(&p, 1);
        let c = interpret(&p, 2);
        assert!(a["E"].approx_eq(&b["E"], 0.0));
        assert!(!a["E"].approx_eq(&c["E"], 1e-9));
    }

    #[test]
    #[should_panic(expected = "one group size per statement")]
    fn group_count_mismatch_rejected() {
        let p = parse(PROG).unwrap();
        let _ = interpret_distributed(&p, &[1, 2], 0);
    }
}
