//! Lexer for the mini matrix language. Line-oriented; `#` starts a
//! comment; identifiers are `[A-Za-z_][A-Za-z0-9_]*`.

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Unsigned integer literal.
    Number(usize),
    /// `=`.
    Equals,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `*`.
    Star,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `'` (transpose suffix).
    Prime,
    /// End of one source line.
    Newline,
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The kind.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// A lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based source line.
    pub line: usize,
    /// Offending character.
    pub ch: char,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: unexpected character `{}`", self.line, self.ch)
    }
}

impl std::error::Error for LexError {}

/// Tokenize the whole source. Blank/comment-only lines produce no
/// tokens; every non-empty line is terminated by a `Newline` token.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    for (ln, raw) in source.lines().enumerate() {
        let line = ln + 1;
        let text = raw.split('#').next().unwrap_or("");
        let mut chars = text.chars().peekable();
        let mut emitted = false;
        while let Some(&c) = chars.peek() {
            match c {
                c if c.is_whitespace() => {
                    chars.next();
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut ident = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            ident.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    out.push(Token { kind: TokenKind::Ident(ident), line });
                    emitted = true;
                }
                c if c.is_ascii_digit() => {
                    let mut n = 0usize;
                    while let Some(&c) = chars.peek() {
                        if let Some(d) = c.to_digit(10) {
                            n = n * 10 + d as usize;
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    out.push(Token { kind: TokenKind::Number(n), line });
                    emitted = true;
                }
                _ => {
                    let kind = match c {
                        '=' => TokenKind::Equals,
                        '(' => TokenKind::LParen,
                        ')' => TokenKind::RParen,
                        ',' => TokenKind::Comma,
                        '*' => TokenKind::Star,
                        '+' => TokenKind::Plus,
                        '-' => TokenKind::Minus,
                        '\'' => TokenKind::Prime,
                        other => return Err(LexError { line, ch: other }),
                    };
                    chars.next();
                    out.push(Token { kind, line });
                    emitted = true;
                }
            }
        }
        if emitted {
            out.push(Token { kind: TokenKind::Newline, line });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        let k = kinds("matrix A(64, 64)");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("matrix".into()),
                TokenKind::Ident("A".into()),
                TokenKind::LParen,
                TokenKind::Number(64),
                TokenKind::Comma,
                TokenKind::Number(64),
                TokenKind::RParen,
                TokenKind::Newline,
            ]
        );
    }

    #[test]
    fn lexes_statement_with_transpose() {
        let k = kinds("C = A * B'");
        assert!(k.contains(&TokenKind::Star));
        assert!(k.contains(&TokenKind::Prime));
        assert_eq!(k.last(), Some(&TokenKind::Newline));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let toks = tokenize("# only a comment\n\n  \nA = init()\n").unwrap();
        assert_eq!(toks[0].line, 4, "first token on line 4");
        assert!(toks.iter().all(|t| t.line == 4));
    }

    #[test]
    fn bad_character_reports_line() {
        let e = tokenize("A = init()\nB = A @ C\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.ch, '@');
    }

    #[test]
    fn numbers_parse_multidigit() {
        let k = kinds("matrix X(1024, 2048)");
        assert!(k.contains(&TokenKind::Number(1024)));
        assert!(k.contains(&TokenKind::Number(2048)));
    }
}
