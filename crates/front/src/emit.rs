//! Pretty-printer: [`Program`] → canonical source text. Together with
//! the parser this gives a full round trip, so programs can be
//! programmatically constructed, normalized, and diffed.

use crate::ast::Program;
use std::fmt::Write as _;

/// Render a program in canonical form: header, one `matrix` line per
/// declaration, a blank line, then the statements.
pub fn emit(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {}", program.name);
    for d in &program.decls {
        let _ = writeln!(out, "matrix {}({}, {})", d.name, d.rows, d.cols);
    }
    out.push('\n');
    for s in &program.stmts {
        let _ = writeln!(out, "{}", s.render());
    }
    out
}

/// Parse → emit → parse must be the identity on the AST (modulo line
/// numbers). Exposed as a helper so tests and tools can normalize
/// source text.
pub fn normalize(source: &str) -> Result<String, crate::parser::FrontError> {
    Ok(emit(&crate::parser::parse(source)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = "\
program demo
matrix A(4,8), B(8,4), C(4,4)   # trailing comment
A = init()
B = A'
C = A * B
C = C - C
";

    fn strip_lines(p: &Program) -> Program {
        let mut q = p.clone();
        for d in &mut q.decls {
            d.line = 0;
        }
        for s in &mut q.stmts {
            s.line = 0;
        }
        q
    }

    #[test]
    fn emit_parse_roundtrip() {
        let p1 = parse(SRC).unwrap();
        let text = emit(&p1);
        let p2 = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(strip_lines(&p1), strip_lines(&p2));
    }

    #[test]
    fn normalize_is_idempotent() {
        let once = normalize(SRC).unwrap();
        let twice = normalize(&once).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn emit_renders_all_statement_forms() {
        let text = emit(&parse(SRC).unwrap());
        assert!(text.contains("A = init()"));
        assert!(text.contains("B = A'"));
        assert!(text.contains("C = A * B"));
        assert!(text.contains("C = C - C"));
        assert!(text.contains("matrix A(4, 8)"));
    }
}
