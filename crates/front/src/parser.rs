//! Recursive-descent parser for the mini matrix language.
//!
//! Grammar (line oriented):
//!
//! ```text
//! program   := "program" IDENT NL (decl | stmt)*
//! decl      := "matrix" declitem ("," declitem)* NL
//! declitem  := IDENT "(" NUMBER "," NUMBER ")"
//! stmt      := IDENT "=" rhs NL
//! rhs       := "init" "(" ")"
//!            | operand (("*" | "+" | "-") operand)?
//! operand   := IDENT "'"?
//! ```

use crate::ast::{BinOp, Expr, MatrixDecl, Operand, Program, Stmt};
use crate::lexer::{tokenize, LexError, Token, TokenKind};

/// Any front-end failure (lexing, parsing, or lowering) with a line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontError {
    /// 1-based source line (0 when no line applies).
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for FrontError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FrontError {}

impl From<LexError> for FrontError {
    fn from(e: LexError) -> Self {
        FrontError { line: e.line, message: format!("unexpected character `{}`", e.ch) }
    }
}

impl From<crate::lower::LowerError> for FrontError {
    fn from(e: crate::lower::LowerError) -> Self {
        FrontError { line: e.line, message: e.message }
    }
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn line(&self) -> usize {
        self.peek().map(|t| t.line).unwrap_or_else(|| self.toks.last().map(|t| t.line).unwrap_or(0))
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> FrontError {
        FrontError { line: self.line(), message: message.into() }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), FrontError> {
        match self.bump() {
            Some(t) if &t.kind == kind => Ok(()),
            Some(t) => Err(FrontError {
                line: t.line,
                message: format!("expected {what}, found {:?}", t.kind),
            }),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, usize), FrontError> {
        match self.bump() {
            Some(Token { kind: TokenKind::Ident(s), line }) => Ok((s, line)),
            Some(t) => Err(FrontError {
                line: t.line,
                message: format!("expected {what}, found {:?}", t.kind),
            }),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_number(&mut self, what: &str) -> Result<usize, FrontError> {
        match self.bump() {
            Some(Token { kind: TokenKind::Number(n), .. }) => Ok(n),
            Some(t) => Err(FrontError {
                line: t.line,
                message: format!("expected {what}, found {:?}", t.kind),
            }),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn eat_newline(&mut self) -> Result<(), FrontError> {
        self.expect(&TokenKind::Newline, "end of line")
    }

    fn operand(&mut self) -> Result<Operand, FrontError> {
        let (name, _) = self.expect_ident("a matrix name")?;
        let transposed = matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Prime));
        if transposed {
            self.bump();
        }
        Ok(Operand { name, transposed })
    }
}

/// Parse a full program.
pub fn parse(source: &str) -> Result<Program, FrontError> {
    let toks = tokenize(source)?;
    let mut p = Parser { toks, pos: 0 };

    // Header.
    let (kw, line) = p.expect_ident("the `program` keyword")?;
    if kw != "program" {
        return Err(FrontError { line, message: format!("expected `program`, found `{kw}`") });
    }
    let (name, _) = p.expect_ident("the program name")?;
    p.eat_newline()?;

    let mut decls: Vec<MatrixDecl> = Vec::new();
    let mut stmts: Vec<Stmt> = Vec::new();
    while p.peek().is_some() {
        let (ident, line) = p.expect_ident("a declaration or statement")?;
        if ident == "matrix" {
            loop {
                let (mname, mline) = p.expect_ident("a matrix name")?;
                if decls.iter().any(|d| d.name == mname) {
                    return Err(FrontError {
                        line: mline,
                        message: format!("matrix `{mname}` declared twice"),
                    });
                }
                p.expect(&TokenKind::LParen, "`(`")?;
                let rows = p.expect_number("the row count")?;
                p.expect(&TokenKind::Comma, "`,`")?;
                let cols = p.expect_number("the column count")?;
                p.expect(&TokenKind::RParen, "`)`")?;
                if rows == 0 || cols == 0 {
                    return Err(FrontError {
                        line: mline,
                        message: format!("matrix `{mname}` has a zero dimension"),
                    });
                }
                decls.push(MatrixDecl { name: mname, rows, cols, line: mline });
                match p.peek().map(|t| &t.kind) {
                    Some(TokenKind::Comma) => {
                        p.bump();
                    }
                    _ => break,
                }
            }
            p.eat_newline()?;
        } else {
            // Statement: ident already consumed is the target.
            p.expect(&TokenKind::Equals, "`=`")?;
            let expr = match p.peek().map(|t| t.kind.clone()) {
                Some(TokenKind::Ident(f)) if f == "init" => {
                    // Lookahead: `init ( )` is the builtin; a bare
                    // `init` identifier would be a copy — require parens.
                    p.bump();
                    p.expect(&TokenKind::LParen, "`(` after init")?;
                    p.expect(&TokenKind::RParen, "`)`")?;
                    Expr::Init
                }
                _ => {
                    let lhs = p.operand()?;
                    match p.peek().map(|t| t.kind.clone()) {
                        Some(TokenKind::Star) | Some(TokenKind::Plus) | Some(TokenKind::Minus) => {
                            let op = match p.bump().expect("peeked").kind {
                                TokenKind::Star => BinOp::Mul,
                                TokenKind::Plus => BinOp::Add,
                                TokenKind::Minus => BinOp::Sub,
                                _ => unreachable!(),
                            };
                            let rhs = p.operand()?;
                            Expr::Bin { op, lhs, rhs }
                        }
                        _ => Expr::Copy { src: lhs },
                    }
                }
            };
            p.eat_newline()?;
            stmts.push(Stmt { target: ident, expr, line });
        }
    }
    if stmts.is_empty() {
        return Err(FrontError { line, message: "program has no statements".into() });
    }
    Ok(Program { name, decls, stmts })
}

#[cfg(test)]
mod tests {
    use super::*;

    const CMM: &str = "\
program cmm
matrix Ar(64,64), Ai(64,64), Br(64,64), Bi(64,64)
matrix M1(64,64), M2(64,64), M3(64,64), M4(64,64), Cr(64,64), Ci(64,64)
Ar = init()
Ai = init()
Br = init()
Bi = init()
M1 = Ar * Br
M2 = Ai * Bi
M3 = Ar * Bi
M4 = Ai * Br
Cr = M1 - M2
Ci = M3 + M4
";

    #[test]
    fn parses_cmm() {
        let p = parse(CMM).unwrap();
        assert_eq!(p.name, "cmm");
        assert_eq!(p.decls.len(), 10);
        assert_eq!(p.stmts.len(), 10);
        assert_eq!(p.stmts[4].render(), "M1 = Ar * Br");
        assert_eq!(p.stmts[8].render(), "Cr = M1 - M2");
    }

    #[test]
    fn parses_transpose_and_copy() {
        let p =
            parse("program t\nmatrix A(4,8), B(8,4), C(8,4)\nA = init()\nB = A'\nC = B\n").unwrap();
        assert_eq!(p.stmts[1].render(), "B = A'");
        assert!(matches!(&p.stmts[1].expr, Expr::Copy { src } if src.transposed));
        assert!(matches!(&p.stmts[2].expr, Expr::Copy { src } if !src.transposed));
    }

    #[test]
    fn missing_header_rejected() {
        let e = parse("matrix A(2,2)\nA = init()\n").unwrap_err();
        assert!(e.message.contains("program"), "{e}");
        assert_eq!(e.line, 1);
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let e = parse("program x\nmatrix A(2,2), A(3,3)\nA = init()\n").unwrap_err();
        assert!(e.message.contains("declared twice"));
    }

    #[test]
    fn zero_dimension_rejected() {
        let e = parse("program x\nmatrix A(0,2)\nA = init()\n").unwrap_err();
        assert!(e.message.contains("zero dimension"));
    }

    #[test]
    fn garbage_statement_reports_line() {
        let e = parse("program x\nmatrix A(2,2)\nA = * B\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn empty_program_rejected() {
        let e = parse("program x\nmatrix A(2,2)\n").unwrap_err();
        assert!(e.message.contains("no statements"));
    }

    #[test]
    fn init_requires_parens() {
        // `A = init` (no parens) parses as a copy from a matrix named
        // "init" — lowering will reject the undefined name; parser
        // accepts the shape. But `A = init(` is a parse error.
        let e = parse("program x\nmatrix A(2,2)\nA = init(\n").unwrap_err();
        assert!(e.message.contains(")"), "{e}");
    }
}
