//! Abstract syntax of the mini matrix language.

/// A matrix declaration: `matrix A(64, 64)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixDecl {
    /// Matrix name.
    pub name: String,
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Declaration line (for diagnostics).
    pub line: usize,
}

/// A matrix operand, possibly used transposed (`A'`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operand {
    /// Referenced matrix.
    pub name: String,
    /// True for `A'` — the consumer needs the other distribution
    /// dimension, which the cost model prices as a 2D transfer.
    pub transposed: bool,
}

/// Binary whole-matrix operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Matrix multiplication.
    Mul,
    /// Element-wise addition.
    Add,
    /// Element-wise subtraction.
    Sub,
}

impl BinOp {
    /// Source spelling.
    pub fn symbol(self) -> char {
        match self {
            BinOp::Mul => '*',
            BinOp::Add => '+',
            BinOp::Sub => '-',
        }
    }
}

/// Right-hand sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// `init()` — a matrix initialization loop.
    Init,
    /// `Y op Z`.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `Y` or `Y'` — a copy (or transpose-copy) loop.
    Copy {
        /// Source operand.
        src: Operand,
    },
}

/// One statement: `target = expr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Defined matrix.
    pub target: String,
    /// Right-hand side.
    pub expr: Expr,
    /// Source line (for diagnostics and node naming).
    pub line: usize,
}

impl Stmt {
    /// Source-like rendering, used as the MDG node name.
    pub fn render(&self) -> String {
        let opnd = |o: &Operand| {
            if o.transposed {
                format!("{}'", o.name)
            } else {
                o.name.clone()
            }
        };
        match &self.expr {
            Expr::Init => format!("{} = init()", self.target),
            Expr::Bin { op, lhs, rhs } => {
                format!("{} = {} {} {}", self.target, opnd(lhs), op.symbol(), opnd(rhs))
            }
            Expr::Copy { src } => format!("{} = {}", self.target, opnd(src)),
        }
    }

    /// The operands this statement reads.
    pub fn uses(&self) -> Vec<&Operand> {
        match &self.expr {
            Expr::Init => Vec::new(),
            Expr::Bin { lhs, rhs, .. } => vec![lhs, rhs],
            Expr::Copy { src } => vec![src],
        }
    }
}

/// A whole program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Program name (`program <name>`).
    pub name: String,
    /// Declarations, in order.
    pub decls: Vec<MatrixDecl>,
    /// Statements, in order.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// Look up a declaration.
    pub fn decl(&self, name: &str) -> Option<&MatrixDecl> {
        self.decls.iter().find(|d| d.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stmt_render_forms() {
        let s = Stmt {
            target: "C".into(),
            expr: Expr::Bin {
                op: BinOp::Mul,
                lhs: Operand { name: "A".into(), transposed: false },
                rhs: Operand { name: "B".into(), transposed: true },
            },
            line: 3,
        };
        assert_eq!(s.render(), "C = A * B'");
        assert_eq!(s.uses().len(), 2);
        let i = Stmt { target: "A".into(), expr: Expr::Init, line: 1 };
        assert_eq!(i.render(), "A = init()");
        assert!(i.uses().is_empty());
    }

    #[test]
    fn op_symbols() {
        assert_eq!(BinOp::Mul.symbol(), '*');
        assert_eq!(BinOp::Add.symbol(), '+');
        assert_eq!(BinOp::Sub.symbol(), '-');
    }
}
