//! Lowering: programs → MDGs.
//!
//! * one MDG node per statement, loop class from the operator
//!   (`init()` → MatrixInit, `+`/`-` → MatrixAdd, `*` → MatrixMultiply,
//!   copies/transposes → custom copy loops with init-like cost);
//! * node costs scaled from the [`KernelCostTable`] by the target shape;
//! * def-use dependence edges: each operand use depends on the **last**
//!   statement that defined that matrix;
//! * transfers: one per operand use, sized by the operand matrix, 1D for
//!   plain uses and 2D for transposed uses (distribution dimension
//!   flip — paper Figure 4's ROW2COL);
//! * shape checking against the declarations (with transposes applied).

use crate::ast::{BinOp, Expr, Program, Stmt};
use paradigm_mdg::{
    ArrayTransfer, KernelCostTable, LoopClass, LoopMeta, Mdg, MdgBuilder, NodeId, TransferKind,
};
use std::collections::BTreeMap;

/// A lowering failure with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LowerError {}

fn err(line: usize, message: impl Into<String>) -> LowerError {
    LowerError { line, message: message.into() }
}

/// Effective shape of an operand use (transpose applied).
fn use_shape(
    program: &Program,
    stmt: &Stmt,
    name: &str,
    transposed: bool,
) -> Result<(usize, usize), LowerError> {
    let d = program
        .decl(name)
        .ok_or_else(|| err(stmt.line, format!("matrix `{name}` is not declared")))?;
    Ok(if transposed { (d.cols, d.rows) } else { (d.rows, d.cols) })
}

/// Size-derived Amdahl parameters + metadata for a statement.
fn node_cost(
    program: &Program,
    stmt: &Stmt,
    costs: &KernelCostTable,
) -> Result<(paradigm_mdg::AmdahlParams, LoopMeta), LowerError> {
    let target = program
        .decl(&stmt.target)
        .ok_or_else(|| err(stmt.line, format!("matrix `{}` is not declared", stmt.target)))?;
    let n = ((target.rows as f64 * target.cols as f64).sqrt()).round().max(1.0) as usize;
    let (class, params) = match &stmt.expr {
        Expr::Init => (LoopClass::MatrixInit, costs.params_for(&LoopClass::MatrixInit, n)),
        Expr::Bin { op: BinOp::Mul, .. } => {
            (LoopClass::MatrixMultiply, costs.params_for(&LoopClass::MatrixMultiply, n))
        }
        Expr::Bin { .. } => (LoopClass::MatrixAdd, costs.params_for(&LoopClass::MatrixAdd, n)),
        Expr::Copy { src } => {
            let tag = if src.transposed { "transpose" } else { "copy" };
            // Copy loops move every element once: init-like cost.
            (LoopClass::Custom(tag.to_string()), costs.params_for(&LoopClass::MatrixInit, n))
        }
    };
    let meta = match &class {
        LoopClass::Custom(_) => LoopMeta { class, rows: target.rows, cols: target.cols },
        c => LoopMeta { class: c.clone(), rows: target.rows, cols: target.cols },
    };
    Ok((params, meta))
}

/// Shape-check one statement.
fn check_shapes(program: &Program, stmt: &Stmt) -> Result<(), LowerError> {
    let target = program
        .decl(&stmt.target)
        .ok_or_else(|| err(stmt.line, format!("matrix `{}` is not declared", stmt.target)))?;
    let t_shape = (target.rows, target.cols);
    match &stmt.expr {
        Expr::Init => Ok(()),
        Expr::Copy { src } => {
            let s = use_shape(program, stmt, &src.name, src.transposed)?;
            if s != t_shape {
                return Err(err(
                    stmt.line,
                    format!(
                        "shape mismatch: `{}` is {}x{} but `{}` provides {}x{}",
                        stmt.target, t_shape.0, t_shape.1, src.name, s.0, s.1
                    ),
                ));
            }
            Ok(())
        }
        Expr::Bin { op, lhs, rhs } => {
            let l = use_shape(program, stmt, &lhs.name, lhs.transposed)?;
            let r = use_shape(program, stmt, &rhs.name, rhs.transposed)?;
            match op {
                BinOp::Mul => {
                    if l.1 != r.0 {
                        return Err(err(
                            stmt.line,
                            format!("inner dimensions differ: {}x{} * {}x{}", l.0, l.1, r.0, r.1),
                        ));
                    }
                    if (l.0, r.1) != t_shape {
                        return Err(err(
                            stmt.line,
                            format!(
                                "product is {}x{} but `{}` is {}x{}",
                                l.0, r.1, stmt.target, t_shape.0, t_shape.1
                            ),
                        ));
                    }
                }
                BinOp::Add | BinOp::Sub => {
                    if l != r || l != t_shape {
                        return Err(err(
                            stmt.line,
                            format!(
                                "elementwise shapes differ: {}x{} vs {}x{} -> {}x{}",
                                l.0, l.1, r.0, r.1, t_shape.0, t_shape.1
                            ),
                        ));
                    }
                }
            }
            Ok(())
        }
    }
}

/// Lower a parsed program to a finished MDG.
pub fn lower(program: &Program, costs: &KernelCostTable) -> Result<Mdg, LowerError> {
    let mut b = MdgBuilder::new(program.name.clone());
    // last_def: matrix name -> (builder node, statement index).
    let mut last_def: BTreeMap<&str, NodeId> = BTreeMap::new();
    for stmt in &program.stmts {
        check_shapes(program, stmt)?;
        let (params, meta) = node_cost(program, stmt, costs)?;
        let node = b.compute_with_meta(stmt.render(), params, meta);
        // One edge per producer; multiple uses from the same producer
        // merge their transfers.
        let mut per_producer: BTreeMap<NodeId, Vec<ArrayTransfer>> = BTreeMap::new();
        for operand in stmt.uses() {
            let producer = *last_def.get(operand.name.as_str()).ok_or_else(|| {
                err(stmt.line, format!("matrix `{}` is used before it is defined", operand.name))
            })?;
            let d = program.decl(&operand.name).expect("checked by use_shape");
            let bytes = (d.rows * d.cols * std::mem::size_of::<f64>()) as u64;
            let kind = if operand.transposed { TransferKind::TwoD } else { TransferKind::OneD };
            per_producer.entry(producer).or_default().push(ArrayTransfer::new(bytes, kind));
        }
        for (producer, transfers) in per_producer {
            b.edge(producer, node, transfers);
        }
        last_def.insert(stmt.target.as_str(), node);
    }
    b.finish().map_err(|e| err(0, format!("graph construction failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use paradigm_mdg::validate::assert_invariants;
    use paradigm_mdg::NodeKind;

    fn table() -> KernelCostTable {
        KernelCostTable::cm5()
    }

    fn compile(src: &str) -> Result<Mdg, LowerError> {
        lower(&parse(src).expect("parse"), &table())
    }

    #[test]
    fn simple_chain_lowers() {
        let g = compile(
            "program p\nmatrix A(64,64), B(64,64), C(64,64)\nA = init()\nB = init()\nC = A * B\n",
        )
        .unwrap();
        assert_invariants(&g);
        assert_eq!(g.compute_node_count(), 3);
        // The multiply reads both inits: 2 data edges.
        let data_edges = g.edges().filter(|(_, e)| !e.transfers.is_empty()).count();
        assert_eq!(data_edges, 2);
        // Cost class inferred.
        let mul = g.nodes().find(|(_, n)| n.name.contains('*')).unwrap().1;
        assert_eq!(mul.meta.class, LoopClass::MatrixMultiply);
        assert!((mul.cost.tau - table().mul.tau).abs() < 1e-12);
    }

    #[test]
    fn transposed_use_makes_2d_transfer() {
        let g = compile(
            "program p\nmatrix A(64,64), B(64,64), C(64,64)\nA = init()\nB = init()\nC = A * B'\n",
        )
        .unwrap();
        let kinds: Vec<TransferKind> =
            g.edges().flat_map(|(_, e)| e.transfers.iter().map(|t| t.kind)).collect();
        assert!(kinds.contains(&TransferKind::TwoD));
        assert!(kinds.contains(&TransferKind::OneD));
    }

    #[test]
    fn redefinition_versions_the_dependence() {
        // B uses the first A; C uses the redefined A.
        let g = compile(
            "program p\nmatrix A(8,8), B(8,8), C(8,8)\nA = init()\nB = A + A\nA = init()\nC = A + A\n",
        )
        .unwrap();
        assert_invariants(&g);
        // Find nodes: first init = node 1; B = 2; second init = 3; C = 4.
        let b_preds: Vec<_> = g.preds(NodeId(2)).collect();
        assert_eq!(b_preds, vec![NodeId(1)]);
        let c_preds: Vec<_> = g.preds(NodeId(4)).collect();
        assert_eq!(c_preds, vec![NodeId(3)]);
    }

    #[test]
    fn two_uses_same_producer_merge_into_one_edge() {
        let g = compile("program p\nmatrix A(8,8), B(8,8)\nA = init()\nB = A + A\n").unwrap();
        let edge =
            g.edges().find(|(_, e)| !e.transfers.is_empty()).map(|(_, e)| e.clone()).unwrap();
        assert_eq!(edge.transfers.len(), 2, "both uses carried on one edge");
    }

    #[test]
    fn self_update_depends_on_previous_definition() {
        let g = compile("program p\nmatrix A(8,8), B(8,8)\nA = init()\nB = init()\nA = A + B\n")
            .unwrap();
        // The update (node 3) depends on both inits.
        let preds: Vec<_> = g.preds(NodeId(3)).collect();
        assert!(preds.contains(&NodeId(1)));
        assert!(preds.contains(&NodeId(2)));
    }

    #[test]
    fn use_before_def_rejected() {
        let e = compile("program p\nmatrix A(8,8), B(8,8)\nB = A + A\n").unwrap_err();
        assert!(e.message.contains("before it is defined"));
        assert_eq!(e.line, 3);
    }

    #[test]
    fn undeclared_matrix_rejected() {
        let e = compile("program p\nmatrix A(8,8)\nA = init()\nB = A + A\n").unwrap_err();
        assert!(e.message.contains("not declared"));
    }

    #[test]
    fn mul_shape_mismatch_rejected() {
        let e = compile(
            "program p\nmatrix A(4,8), B(4,8), C(4,8)\nA = init()\nB = init()\nC = A * B\n",
        )
        .unwrap_err();
        assert!(e.message.contains("inner dimensions"), "{e}");
    }

    #[test]
    fn transpose_fixes_mul_shape() {
        // A(4x8) * B'(8x4): valid with transpose, target 4x4.
        let g = compile(
            "program p\nmatrix A(4,8), B(4,8), C(4,4)\nA = init()\nB = init()\nC = A * B'\n",
        )
        .unwrap();
        assert_eq!(g.compute_node_count(), 3);
    }

    #[test]
    fn add_shape_mismatch_rejected() {
        let e = compile(
            "program p\nmatrix A(4,8), B(8,4), C(4,8)\nA = init()\nB = init()\nC = A + B\n",
        )
        .unwrap_err();
        assert!(e.message.contains("elementwise"));
    }

    #[test]
    fn copy_and_transpose_nodes_get_custom_classes() {
        let g = compile("program p\nmatrix A(8,4), B(4,8), C(8,4)\nA = init()\nB = A'\nC = B'\n")
            .unwrap();
        let classes: Vec<String> = g
            .nodes()
            .filter(|(_, n)| n.kind == NodeKind::Compute)
            .map(|(_, n)| format!("{:?}", n.meta.class))
            .collect();
        assert!(classes.iter().filter(|c| c.contains("transpose")).count() == 2);
    }
}
