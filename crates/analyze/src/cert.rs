//! Versioned JSON certificates for the objective's posynomial
//! derivation trees, and an independent checker for them.
//!
//! The emitter ([`certificate_json`]) walks an [`MdgObjective`]'s
//! expressions and the matching [`ObjectiveCertificate`] in lockstep
//! and records, for every derivation-tree node, the closure rule that
//! justifies it *and* an interval enclosure of the sub-expression over
//! the feasible box `p ∈ [1, procs]^n`. A monomial `c·Π p_j^{a_j}`
//! with `c ≥ 0` is monotone in each variable separately (direction
//! given by the sign of the exponent), so its exact range over the box
//! is `[c·Π_{a<0} P^a, c·Π_{a>0} P^a]`; sums add intervals and maxima
//! take the elementwise hull. The enclosure of the root therefore
//! brackets Φ's components without ever calling the solver.
//!
//! The checker ([`check_certificate`]) re-validates a parsed
//! certificate using only that interval arithmetic: it re-derives the
//! class of every node from its rule, re-checks the monomial defect
//! conditions of Definition 1 (finite non-negative coefficient, finite
//! exponents, distinct in-range variables), and recomputes every
//! interval bottom-up from the leaf coefficients. Validation is
//! children-first, so the reported counterexample is the *minimal
//! failing sub-tree*: a tampered leaf coefficient is caught at that
//! leaf, a tampered interior interval at that interior node.
//!
//! Version 2 documents additionally carry a `"memory"` section: the
//! static resource analysis' per-node footprints, residency intervals,
//! group-size floors, and the machine-level feasibility verdict
//! ([`crate::resources`]). The checker re-validates the section with
//! interval arithmetic alone — every interval, floor, aggregate and the
//! verdict are recomputed from the claimed footprint components, and
//! the components are cross-checked against the claimed total
//! communication volume — so a tampered memory claim is caught without
//! the graph, the solver, or a simulation.
//!
//! The document format is versioned (`"version": 2`); the checker
//! accepts version 1 (which carries no memory claims) and rejects
//! unknown versions with a typed error instead of failing on a shape
//! mismatch deeper in.

use std::fmt;

use paradigm_mdg::dot::dot_escape;
use paradigm_mdg::json::{parse, Json, JsonError};
use paradigm_solver::expr::{Expr, Monomial};
use paradigm_solver::{FallbackTier, MdgObjective};

use crate::posynomial::{check_monomial, Certificate, ExprClass, ObjectiveCertificate, Rule};
use crate::resources::{analyze_resources, ResourceAnalysis};

/// The certificate document version this build emits. The checker
/// accepts `1..=CERT_VERSION`.
pub const CERT_VERSION: u64 = 2;

/// Relative tolerance for comparing a claimed interval endpoint with
/// its recomputed value. Emission and checking share the same
/// arithmetic and `f64` values round-trip exactly through the JSON
/// writer, so honest certificates match bitwise; the tolerance only
/// absorbs hypothetical re-association by a different emitter.
const INTERVAL_RTOL: f64 = 1e-12;

/// An interval `[lo, hi]` enclosing a sub-expression over the box
/// `p ∈ [1, procs]^n`.
pub type Interval = (f64, f64);

fn mono_interval(m: &Monomial, procs: f64) -> Interval {
    if m.coeff == 0.0 {
        return (0.0, 0.0);
    }
    let (mut lo, mut hi) = (m.coeff, m.coeff);
    for &(_, exp) in &m.exps {
        if exp >= 0.0 {
            hi *= procs.powf(exp);
        } else {
            lo *= procs.powf(exp);
        }
    }
    (lo, hi)
}

fn sum_interval(children: &[Interval]) -> Interval {
    children.iter().fold((0.0, 0.0), |(lo, hi), &(clo, chi)| (lo + clo, hi + chi))
}

fn max_interval(children: &[Interval]) -> Interval {
    children.iter().fold((f64::NEG_INFINITY, f64::NEG_INFINITY), |(lo, hi), &(clo, chi)| {
        (lo.max(clo), hi.max(chi))
    })
}

fn interval_json((lo, hi): Interval) -> Json {
    Json::Arr(vec![Json::num(lo), Json::num(hi)])
}

fn tree_json(e: &Expr, c: &Certificate, procs: f64) -> (Json, Interval) {
    match (e, c.rule) {
        (Expr::Mono(m), Rule::MonomialLeaf) => {
            let iv = mono_interval(m, procs);
            let exps = m
                .exps
                .iter()
                .map(|&(var, exp)| Json::Arr(vec![Json::num(var as f64), Json::num(exp)]))
                .collect();
            let doc = Json::Obj(vec![
                ("class".into(), Json::str(c.class.to_string())),
                ("rule".into(), Json::str(c.rule.to_string())),
                ("coeff".into(), Json::num(m.coeff)),
                ("exps".into(), Json::Arr(exps)),
                ("interval".into(), interval_json(iv)),
                ("children".into(), Json::Arr(Vec::new())),
            ]);
            (doc, iv)
        }
        (Expr::Sum(terms), Rule::SumClosure) | (Expr::Max(terms), Rule::MaxClosure) => {
            assert_eq!(
                terms.len(),
                c.children.len(),
                "certificate diverges from the expression it certifies"
            );
            let mut kids = Vec::with_capacity(terms.len());
            let mut ivs = Vec::with_capacity(terms.len());
            for (t, cc) in terms.iter().zip(&c.children) {
                let (doc, iv) = tree_json(t, cc, procs);
                kids.push(doc);
                ivs.push(iv);
            }
            let iv = match c.rule {
                Rule::SumClosure => sum_interval(&ivs),
                _ => max_interval(&ivs),
            };
            let doc = Json::Obj(vec![
                ("class".into(), Json::str(c.class.to_string())),
                ("rule".into(), Json::str(c.rule.to_string())),
                ("interval".into(), interval_json(iv)),
                ("children".into(), Json::Arr(kids)),
            ]);
            (doc, iv)
        }
        _ => unreachable!("certificate rule does not match expression shape"),
    }
}

/// Render a graph's full objective certificate as one versioned JSON
/// document, pairing every derivation-tree node with its interval
/// enclosure over `p ∈ [1, procs]^n`.
///
/// # Panics
/// Panics if `oc` was not produced by certifying exactly `obj`'s
/// expressions (the trees are walked in lockstep).
pub fn certificate_json(obj: &MdgObjective<'_>, oc: &ObjectiveCertificate) -> Json {
    let g = obj.graph();
    let procs = f64::from(obj.machine().procs);
    assert_eq!(g.node_count(), oc.nodes.len(), "node certificate count mismatch");
    assert_eq!(g.edge_count(), oc.edges.len(), "edge certificate count mismatch");
    let nodes = g
        .nodes()
        .zip(&oc.nodes)
        .map(|((id, _), c)| tree_json(obj.node_expr(id), c, procs).0)
        .collect();
    let edges = g
        .edges()
        .zip(&oc.edges)
        .map(|((id, _), c)| tree_json(obj.edge_expr(id), c, procs).0)
        .collect();
    Json::Obj(vec![
        ("version".into(), Json::num(CERT_VERSION as f64)),
        ("graph".into(), Json::str(g.name())),
        ("procs".into(), Json::num(procs)),
        ("num_vars".into(), Json::num(obj.num_vars() as f64)),
        ("phi_class".into(), Json::str(oc.phi_class().to_string())),
        ("monomials".into(), Json::num(oc.monomial_count() as f64)),
        ("area".into(), tree_json(obj.area_expr(), &oc.area, procs).0),
        ("nodes".into(), Json::Arr(nodes)),
        ("edges".into(), Json::Arr(edges)),
        ("memory".into(), memory_json(&analyze_resources(g, obj.machine()))),
    ])
}

/// [`certificate_json`] plus a record of which solver tier produced the
/// allocation the certificate accompanies (`"solver_tier"`). Emitted by
/// pipelines that solved before certifying — the distributed
/// consensus-ADMM tier in particular — so an auditor reading the
/// certificate knows what optimality claim the `Phi` intervals back.
pub fn certificate_json_with_tier(
    obj: &MdgObjective<'_>,
    oc: &ObjectiveCertificate,
    tier: FallbackTier,
) -> Json {
    match certificate_json(obj, oc) {
        Json::Obj(mut members) => {
            members.push(("solver_tier".into(), Json::str(tier.as_str())));
            Json::Obj(members)
        }
        other => other,
    }
}

/// Render the static resource analysis as the certificate's `"memory"`
/// section. Everything the checker needs to re-derive the intervals —
/// the per-node footprint components — is embedded, so the section is
/// self-validating. Also the JSON shape behind `analyze resources
/// --json`.
pub fn memory_json(ra: &ResourceAnalysis) -> Json {
    let nodes = ra
        .nodes
        .iter()
        .map(|n| {
            Json::Obj(vec![
                ("node".into(), Json::num(n.node.0 as f64)),
                ("local_bytes".into(), Json::num(n.footprint.local_bytes as f64)),
                ("in_bytes".into(), Json::num(n.footprint.in_bytes as f64)),
                ("out_bytes".into(), Json::num(n.footprint.out_bytes as f64)),
                ("interval".into(), interval_json(n.interval)),
                (
                    "min_group".into(),
                    match n.min_group {
                        Some(k) => Json::num(k as f64),
                        None => Json::Null,
                    },
                ),
                ("demand_bytes".into(), Json::num(n.demand_bytes as f64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("mem_bytes".into(), Json::num(ra.mem_bytes as f64)),
        ("procs".into(), Json::num(ra.procs as f64)),
        ("total_comm_bytes".into(), Json::num(ra.total_comm_bytes as f64)),
        ("peak_interval".into(), interval_json(ra.peak_interval)),
        ("feasible".into(), Json::Bool(ra.feasible)),
        ("nodes".into(), Json::Arr(nodes)),
    ])
}

/// Which top-level component of the certificate a failure lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertPart {
    /// The `A_p` derivation tree.
    Area,
    /// The i-th node's `T_i` tree.
    Node(usize),
    /// The i-th edge's `t^D` tree.
    Edge(usize),
}

impl fmt::Display for CertPart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertPart::Area => write!(f, "area"),
            CertPart::Node(i) => write!(f, "node {i}"),
            CertPart::Edge(i) => write!(f, "edge {i}"),
        }
    }
}

/// Why a certificate was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum CertDefect {
    /// The document as a whole is unusable (missing or mistyped
    /// top-level field).
    Document(String),
    /// The document declares a version this checker does not know.
    UnsupportedVersion(f64),
    /// A derivation-tree node is malformed (wrong JSON shape, unknown
    /// rule, leaf with children, closure without children, ...).
    Shape(String),
    /// A leaf violates a monomial condition of Definition 1.
    Monomial(crate::posynomial::Defect),
    /// The claimed expression class disagrees with the class derived
    /// from the node's rule and its children.
    ClassMismatch {
        /// What the document claims.
        claimed: String,
        /// What the closure rules actually derive.
        derived: ExprClass,
    },
    /// The claimed interval enclosure disagrees with the enclosure
    /// recomputed bottom-up from the leaf coefficients.
    IntervalMismatch {
        /// What the document claims.
        claimed: Interval,
        /// What interval arithmetic recomputes.
        derived: Interval,
    },
    /// A claimed top-level count disagrees with the checked trees.
    CountMismatch {
        /// Which count (`"monomials"`, `"nodes"`).
        field: &'static str,
        /// What the document claims.
        claimed: f64,
        /// What the checker counted.
        derived: f64,
    },
    /// The `"memory"` section is malformed or internally inconsistent
    /// (an interval, group floor, aggregate, or the feasibility verdict
    /// disagrees with what interval arithmetic re-derives from the
    /// claimed footprints).
    Memory(String),
    /// The optional `"solver_tier"` field names a tier this checker
    /// does not know.
    UnknownTier(String),
}

impl fmt::Display for CertDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertDefect::Document(m) => write!(f, "unusable document: {m}"),
            CertDefect::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported certificate version {v} (this checker knows 1..={CERT_VERSION})"
                )
            }
            CertDefect::Shape(m) => write!(f, "malformed tree node: {m}"),
            CertDefect::Monomial(d) => write!(f, "monomial condition violated: {d}"),
            CertDefect::ClassMismatch { claimed, derived } => {
                write!(f, "claimed class \"{claimed}\" but the rules derive {derived}")
            }
            CertDefect::IntervalMismatch { claimed, derived } => write!(
                f,
                "claimed interval [{}, {}] but recomputation gives [{}, {}]",
                claimed.0, claimed.1, derived.0, derived.1
            ),
            CertDefect::CountMismatch { field, claimed, derived } => {
                write!(f, "claimed {field} count {claimed} but the document contains {derived}")
            }
            CertDefect::Memory(m) => write!(f, "memory section inconsistent: {m}"),
            CertDefect::UnknownTier(t) => {
                write!(
                    f,
                    "unknown solver tier \"{t}\" (expected none, admm, coordinate, or equal-split)"
                )
            }
        }
    }
}

/// A rejected certificate: the minimal failing sub-tree (part + path
/// from that part's root) and the defect found there.
#[derive(Debug, Clone, PartialEq)]
pub struct CertFailure {
    /// Which top-level tree failed, if the failure is inside a tree.
    pub part: Option<CertPart>,
    /// Child-index path from the part's root to the failing sub-tree.
    pub path: Vec<usize>,
    /// What is wrong there.
    pub defect: CertDefect,
    /// The failing sub-tree itself, as parsed (the counterexample).
    pub subtree: Option<Json>,
}

impl CertFailure {
    fn document(msg: impl Into<String>) -> Self {
        CertFailure {
            part: None,
            path: Vec::new(),
            defect: CertDefect::Document(msg.into()),
            subtree: None,
        }
    }

    /// `"area"`, `"node 3:root.1.0"`, ... — the location in the same
    /// dotted-path notation [`crate::NonPosynomial`] uses.
    pub fn location(&self) -> String {
        match &self.part {
            None => "document".to_string(),
            Some(part) => {
                let mut s = format!("{part}:root");
                for i in &self.path {
                    s.push('.');
                    s.push_str(&i.to_string());
                }
                s
            }
        }
    }
}

impl fmt::Display for CertFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "certificate REJECTED at {}: {}", self.location(), self.defect)?;
        if let Some(tree) = &self.subtree {
            let mut rendered = tree.render();
            if rendered.len() > 200 {
                rendered.truncate(197);
                rendered.push_str("...");
            }
            write!(f, "\n  counterexample sub-tree: {rendered}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CertFailure {}

/// Summary of a successfully checked certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct CertSummary {
    /// Graph name recorded in the document.
    pub graph: String,
    /// Processor count the intervals were derived over.
    pub procs: u64,
    /// Number of allocation variables (= node trees).
    pub num_vars: u64,
    /// Number of edge trees.
    pub edge_trees: u64,
    /// Total monomial leaves across all trees.
    pub monomials: u64,
    /// Number of re-validated memory residency claims; `None` for a
    /// version-1 document (which carries no memory section).
    pub memory_nodes: Option<u64>,
    /// Which solver tier the document records as having produced the
    /// accompanying allocation (`"admm"` for the distributed consensus
    /// solver); `None` when the optional `"solver_tier"` field is
    /// absent.
    pub solver_tier: Option<String>,
}

impl fmt::Display for CertSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "certificate OK: `{}` on {} processors -- {} node trees, {} edge trees, \
             {} monomial leaves, every class and interval re-derived",
            self.graph, self.procs, self.num_vars, self.edge_trees, self.monomials
        )?;
        match self.memory_nodes {
            Some(n) => write!(f, "; {n} memory residency claims re-validated"),
            None => write!(f, "; v1 document, no memory claims"),
        }?;
        if let Some(tier) = &self.solver_tier {
            write!(f, "; solved via {tier} tier")?;
        }
        Ok(())
    }
}

struct TreeChecker {
    num_vars: usize,
    procs: f64,
    part: CertPart,
}

impl TreeChecker {
    fn fail(&self, path: &[usize], defect: CertDefect, at: &Json) -> CertFailure {
        CertFailure {
            part: Some(self.part),
            path: path.to_vec(),
            defect,
            subtree: Some(at.clone()),
        }
    }

    fn shape(&self, path: &[usize], msg: impl Into<String>, at: &Json) -> CertFailure {
        self.fail(path, CertDefect::Shape(msg.into()), at)
    }

    /// Validate one tree node and everything below it; children first,
    /// so the returned failure names the deepest inconsistent sub-tree.
    fn check(
        &self,
        j: &Json,
        path: &mut Vec<usize>,
    ) -> Result<(ExprClass, Interval, u64), CertFailure> {
        if !matches!(j, Json::Obj(_)) {
            return Err(self.shape(path, "tree node is not a JSON object", j));
        }
        let class = j
            .get("class")
            .and_then(Json::as_str)
            .ok_or_else(|| self.shape(path, "missing string field \"class\"", j))?
            .to_string();
        let rule = j
            .get("rule")
            .and_then(Json::as_str)
            .ok_or_else(|| self.shape(path, "missing string field \"rule\"", j))?
            .to_string();
        let claimed_iv = match j.get("interval").map(Json::as_arr) {
            Some(Some([lo, hi])) => match (lo.as_f64(), hi.as_f64()) {
                (Some(lo), Some(hi)) => (lo, hi),
                _ => return Err(self.shape(path, "\"interval\" endpoints must be numbers", j)),
            },
            _ => return Err(self.shape(path, "\"interval\" must be a two-element array", j)),
        };
        let children = match j.get("children").map(Json::as_arr) {
            Some(Some(kids)) => kids,
            _ => return Err(self.shape(path, "\"children\" must be an array", j)),
        };

        let (derived_class, derived_iv, leaves) = match rule.as_str() {
            "monomial-leaf" => {
                if !children.is_empty() {
                    return Err(self.shape(path, "a monomial leaf cannot have children", j));
                }
                let coeff = match j.get("coeff").and_then(Json::as_f64) {
                    Some(c) => c,
                    None if matches!(j.get("coeff"), Some(Json::Num(_)) | Some(Json::Null)) => {
                        // `as_f64` filters non-finite renderings (null);
                        // surface those as the monomial defect below.
                        f64::NAN
                    }
                    _ => return Err(self.shape(path, "leaf is missing numeric \"coeff\"", j)),
                };
                let exps_json = match j.get("exps").map(Json::as_arr) {
                    Some(Some(e)) => e,
                    _ => return Err(self.shape(path, "leaf is missing \"exps\" array", j)),
                };
                let mut exps = Vec::with_capacity(exps_json.len());
                for pair in exps_json {
                    let bad = || self.shape(path, "each exps entry must be a [var, exp] pair", j);
                    let [var, exp] = pair.as_arr().ok_or_else(bad)? else {
                        return Err(bad());
                    };
                    let var = var.as_u64().ok_or_else(bad)? as usize;
                    let exp = match exp {
                        Json::Num(e) => *e,
                        Json::Null => f64::NAN, // non-finite exponent, rendered as null
                        _ => return Err(bad()),
                    };
                    exps.push((var, exp));
                }
                let m = Monomial { coeff, exps };
                check_monomial(&m, Some(self.num_vars))
                    .map_err(|d| self.fail(path, CertDefect::Monomial(d), j))?;
                (ExprClass::Monomial, mono_interval(&m, self.procs), 1)
            }
            "sum-closure" | "max-closure" => {
                if children.is_empty() {
                    return Err(self.shape(path, "a closure rule needs at least one child", j));
                }
                let mut classes = Vec::with_capacity(children.len());
                let mut ivs = Vec::with_capacity(children.len());
                let mut leaves = 0;
                for (i, kid) in children.iter().enumerate() {
                    path.push(i);
                    let (c, iv, n) = self.check(kid, path)?;
                    path.pop();
                    classes.push(c);
                    ivs.push(iv);
                    leaves += n;
                }
                if rule == "sum-closure" {
                    let class =
                        classes.into_iter().fold(ExprClass::Posynomial, |acc, c| acc.max(c));
                    (class, sum_interval(&ivs), leaves)
                } else {
                    (ExprClass::GeneralizedPosynomial, max_interval(&ivs), leaves)
                }
            }
            other => return Err(self.shape(path, format!("unknown rule \"{other}\""), j)),
        };

        if class != derived_class.to_string() {
            return Err(self.fail(
                path,
                CertDefect::ClassMismatch { claimed: class, derived: derived_class },
                j,
            ));
        }
        let close = |a: f64, b: f64| (a - b).abs() <= INTERVAL_RTOL * a.abs().max(b.abs()).max(1.0);
        if !close(claimed_iv.0, derived_iv.0) || !close(claimed_iv.1, derived_iv.1) {
            return Err(self.fail(
                path,
                CertDefect::IntervalMismatch { claimed: claimed_iv, derived: derived_iv },
                j,
            ));
        }
        Ok((derived_class, derived_iv, leaves))
    }
}

fn require_u64(doc: &Json, field: &'static str) -> Result<u64, CertFailure> {
    doc.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| CertFailure::document(format!("missing numeric field \"{field}\"")))
}

/// Re-validate a parsed certificate document without the solver.
///
/// Checks, in order: the version gate, the top-level shape, then every
/// derivation tree (children before parents, so failures localize to
/// the minimal inconsistent sub-tree), and finally the claimed
/// aggregate counts.
pub fn check_certificate(doc: &Json) -> Result<CertSummary, CertFailure> {
    if !matches!(doc, Json::Obj(_)) {
        return Err(CertFailure::document("certificate is not a JSON object"));
    }
    let version = match doc.get("version") {
        None => return Err(CertFailure::document("missing \"version\" field")),
        Some(v) => match v.as_u64() {
            Some(n) if (1..=CERT_VERSION).contains(&n) => n,
            _ => {
                let shown = v.as_f64().unwrap_or(f64::NAN);
                return Err(CertFailure {
                    part: None,
                    path: Vec::new(),
                    defect: CertDefect::UnsupportedVersion(shown),
                    subtree: None,
                });
            }
        },
    };
    let graph = doc
        .get("graph")
        .and_then(Json::as_str)
        .ok_or_else(|| CertFailure::document("missing string field \"graph\""))?
        .to_string();
    let procs = require_u64(doc, "procs")?;
    if procs == 0 {
        return Err(CertFailure::document("\"procs\" must be at least 1"));
    }
    let num_vars = require_u64(doc, "num_vars")?;
    let monomials = require_u64(doc, "monomials")?;
    let phi_class = doc
        .get("phi_class")
        .and_then(Json::as_str)
        .ok_or_else(|| CertFailure::document("missing string field \"phi_class\""))?;
    if phi_class != ExprClass::GeneralizedPosynomial.to_string() {
        return Err(CertFailure {
            part: None,
            path: Vec::new(),
            defect: CertDefect::ClassMismatch {
                claimed: phi_class.to_string(),
                derived: ExprClass::GeneralizedPosynomial,
            },
            subtree: None,
        });
    }

    let tree = |field: &'static str| {
        doc.get(field).ok_or_else(|| CertFailure::document(format!("missing field \"{field}\"")))
    };
    let arr = |field: &'static str| -> Result<&[Json], CertFailure> {
        tree(field)?
            .as_arr()
            .ok_or_else(|| CertFailure::document(format!("\"{field}\" must be an array")))
    };

    let mut leaves = 0;
    let checker =
        |part: CertPart| TreeChecker { num_vars: num_vars as usize, procs: procs as f64, part };
    leaves += checker(CertPart::Area).check(tree("area")?, &mut Vec::new())?.2;

    let nodes = arr("nodes")?;
    if nodes.len() as u64 != num_vars {
        return Err(CertFailure {
            part: None,
            path: Vec::new(),
            defect: CertDefect::CountMismatch {
                field: "nodes",
                claimed: num_vars as f64,
                derived: nodes.len() as f64,
            },
            subtree: None,
        });
    }
    for (i, n) in nodes.iter().enumerate() {
        leaves += checker(CertPart::Node(i)).check(n, &mut Vec::new())?.2;
    }
    let edges = arr("edges")?;
    for (i, e) in edges.iter().enumerate() {
        leaves += checker(CertPart::Edge(i)).check(e, &mut Vec::new())?.2;
    }

    if leaves != monomials {
        return Err(CertFailure {
            part: None,
            path: Vec::new(),
            defect: CertDefect::CountMismatch {
                field: "monomials",
                claimed: monomials as f64,
                derived: leaves as f64,
            },
            subtree: None,
        });
    }

    // Version 2 adds the memory section; version 1 predates it (any
    // stray "memory" member in a v1 document has no defined semantics
    // and is ignored, like any other unknown member).
    let memory_nodes = if version >= 2 {
        let mem = doc
            .get("memory")
            .ok_or_else(|| CertFailure::document("missing \"memory\" section (version >= 2)"))?;
        Some(check_memory(mem, procs)?)
    } else {
        None
    };

    // The optional solver-tier record. Any version may carry it; when
    // present it must name a tier this build knows, so a certificate
    // cannot smuggle in an unauditable optimality claim.
    let solver_tier = match doc.get("solver_tier") {
        None => None,
        Some(v) => {
            let t = v.as_str().ok_or_else(|| {
                CertFailure::document("\"solver_tier\" must be a string when present")
            })?;
            if !["none", "admm", "coordinate", "equal-split"].contains(&t) {
                return Err(CertFailure {
                    part: None,
                    path: Vec::new(),
                    defect: CertDefect::UnknownTier(t.to_string()),
                    subtree: None,
                });
            }
            Some(t.to_string())
        }
    };

    Ok(CertSummary {
        graph,
        procs,
        num_vars,
        edge_trees: edges.len() as u64,
        monomials: leaves,
        memory_nodes,
        solver_tier,
    })
}

/// Re-validate the `"memory"` section with interval arithmetic only.
///
/// Every claim is re-derived from the per-node footprint components
/// (`local_bytes`, `in_bytes`, `out_bytes`, `demand_bytes`):
///
/// * each residency interval must equal `[total/procs, total]`;
/// * each `min_group` must equal `ceil(total / mem_bytes)` (or null
///   when even `procs` processors cannot hold the footprint);
/// * `demand_bytes >= total` (the live set includes the working set);
/// * the inbound and outbound footprint sums must each equal the
///   claimed `total_comm_bytes` (every payload is received once and
///   sent once);
/// * `peak_interval` must equal
///   `[max demand/procs, max (local+out) + total_comm]`;
/// * `feasible` must equal "no demand exceeds `procs * mem_bytes`".
///
/// Returns the number of validated node claims.
fn check_memory(mem: &Json, procs: u64) -> Result<u64, CertFailure> {
    let fail = |msg: String| CertFailure {
        part: None,
        path: Vec::new(),
        defect: CertDefect::Memory(msg),
        subtree: Some(mem.clone()),
    };
    if !matches!(mem, Json::Obj(_)) {
        return Err(fail("\"memory\" is not a JSON object".into()));
    }
    let num = |field: &str| {
        mem.get(field)
            .and_then(Json::as_u64)
            .ok_or_else(|| fail(format!("missing numeric field \"{field}\"")))
    };
    let mem_bytes = num("mem_bytes")?;
    if mem_bytes == 0 {
        return Err(fail("\"mem_bytes\" must be at least 1".into()));
    }
    let mprocs = num("procs")?;
    if mprocs != procs {
        return Err(fail(format!(
            "memory section claims {mprocs} processors but the document claims {procs}"
        )));
    }
    let total_comm = num("total_comm_bytes")?;
    let peak = match mem.get("peak_interval").map(Json::as_arr) {
        Some(Some([lo, hi])) => match (lo.as_f64(), hi.as_f64()) {
            (Some(lo), Some(hi)) => (lo, hi),
            _ => return Err(fail("\"peak_interval\" endpoints must be numbers".into())),
        },
        _ => return Err(fail("\"peak_interval\" must be a two-element array".into())),
    };
    let feasible = mem
        .get("feasible")
        .and_then(Json::as_bool)
        .ok_or_else(|| fail("missing boolean field \"feasible\"".into()))?;
    let nodes = match mem.get("nodes").map(Json::as_arr) {
        Some(Some(n)) => n,
        _ => return Err(fail("\"nodes\" must be an array".into())),
    };

    let p = procs as f64;
    let close = |a: f64, b: f64| (a - b).abs() <= INTERVAL_RTOL * a.abs().max(b.abs()).max(1.0);
    let (mut in_sum, mut out_sum) = (0u64, 0u64);
    let (mut max_self, mut max_demand) = (0u64, 0u64);
    for (i, n) in nodes.iter().enumerate() {
        let nnum = |field: &str| {
            n.get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| fail(format!("node claim {i} is missing numeric \"{field}\"")))
        };
        let local = nnum("local_bytes")?;
        let inb = nnum("in_bytes")?;
        let outb = nnum("out_bytes")?;
        let demand = nnum("demand_bytes")?;
        let total = local + inb + outb;
        in_sum += inb;
        out_sum += outb;
        max_self = max_self.max(local + outb);
        max_demand = max_demand.max(demand);

        let claimed_iv = match n.get("interval").map(Json::as_arr) {
            Some(Some([lo, hi])) => match (lo.as_f64(), hi.as_f64()) {
                (Some(lo), Some(hi)) => (lo, hi),
                _ => return Err(fail(format!("node claim {i}: interval endpoints not numbers"))),
            },
            _ => return Err(fail(format!("node claim {i}: \"interval\" must be a pair"))),
        };
        let derived_iv = (total as f64 / p, total as f64);
        if !close(claimed_iv.0, derived_iv.0) || !close(claimed_iv.1, derived_iv.1) {
            return Err(CertFailure {
                part: None,
                path: vec![i],
                defect: CertDefect::IntervalMismatch { claimed: claimed_iv, derived: derived_iv },
                subtree: Some(n.clone()),
            });
        }
        let expected_group = total.div_ceil(mem_bytes).max(1);
        let expected_group = if expected_group <= procs { Some(expected_group) } else { None };
        let claimed_group = match n.get("min_group") {
            Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| fail(format!("node claim {i}: \"min_group\" not a count")))?,
            ),
            None => return Err(fail(format!("node claim {i} is missing \"min_group\""))),
        };
        if claimed_group != expected_group {
            return Err(fail(format!(
                "node claim {i}: min_group {claimed_group:?} but footprint {total} over \
                 {mem_bytes}-byte processors derives {expected_group:?}"
            )));
        }
        if demand < total {
            return Err(fail(format!(
                "node claim {i}: demand {demand} is below its own working set {total}"
            )));
        }
    }

    if in_sum != total_comm || out_sum != total_comm {
        return Err(fail(format!(
            "claimed total_comm_bytes {total_comm} but node footprints sum to {in_sum} inbound \
             / {out_sum} outbound"
        )));
    }
    let derived_peak = (max_demand as f64 / p, max_self as f64 + total_comm as f64);
    if !close(peak.0, derived_peak.0) || !close(peak.1, derived_peak.1) {
        return Err(CertFailure {
            part: None,
            path: Vec::new(),
            defect: CertDefect::IntervalMismatch { claimed: peak, derived: derived_peak },
            subtree: Some(mem.clone()),
        });
    }
    let derived_feasible = max_demand <= procs.saturating_mul(mem_bytes);
    if feasible != derived_feasible {
        return Err(fail(format!(
            "claimed feasible={feasible} but the worst live set is {max_demand} bytes against \
             {} machine bytes",
            procs.saturating_mul(mem_bytes)
        )));
    }
    Ok(nodes.len() as u64)
}

/// Parse certificate text and check it. A parse error is reported as
/// an unusable document (the same rejection class as a missing field).
pub fn check_certificate_text(text: &str) -> Result<CertSummary, CertFailure> {
    let doc = parse(text)
        .map_err(|e: JsonError| CertFailure::document(format!("not valid JSON: {e}")))?;
    check_certificate(&doc)
}

/// Render every derivation tree of an objective certificate as one DOT
/// digraph (roots: `A_p`, each `T_i`, each `t^D_e`).
pub fn certificate_dot(graph: &str, oc: &ObjectiveCertificate) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}-derivation\" {{\n", dot_escape(graph)));
    out.push_str("  rankdir=TB;\n  node [fontsize=10];\n");
    let mut counter = 0usize;
    let mut emit = |root_label: String, c: &Certificate, out: &mut String| {
        let root = format!("r{counter}");
        counter += 1;
        out.push_str(&format!("  {root} [shape=plaintext, label=\"{root_label}\"];\n"));
        // Iterative preorder walk carrying each node's DOT id.
        let mut stack = vec![(root.clone(), c)];
        while let Some((parent, cert)) = stack.pop() {
            let id = format!("c{counter}");
            counter += 1;
            let shape = if cert.children.is_empty() { "box" } else { "ellipse" };
            out.push_str(&format!(
                "  {id} [shape={shape}, label=\"{}\\n{}\"];\n",
                cert.class, cert.rule
            ));
            out.push_str(&format!("  {parent} -> {id};\n"));
            for child in cert.children.iter().rev() {
                stack.push((id.clone(), child));
            }
        }
    };
    emit("A_p".to_string(), &oc.area, &mut out);
    for (i, c) in oc.nodes.iter().enumerate() {
        emit(format!("T_{i}"), c, &mut out);
    }
    for (i, c) in oc.edges.iter().enumerate() {
        emit(format!("t^D edge {i}"), c, &mut out);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posynomial::certify_objective;
    use paradigm_cost::Machine;
    use paradigm_mdg::builders::example_fig1_mdg;

    fn fig1_cert_json() -> Json {
        let g = example_fig1_mdg();
        let obj = MdgObjective::new(&g, Machine::cm5(4));
        let oc = certify_objective(&obj).expect("fig1 certifies");
        certificate_json(&obj, &oc)
    }

    #[test]
    fn emitted_certificate_checks_clean() {
        let doc = fig1_cert_json();
        let summary = check_certificate(&doc).expect("fresh certificate must verify");
        assert_eq!(summary.graph, "fig1-example");
        assert_eq!(summary.procs, 4);
        assert_eq!(summary.num_vars, 5);
        assert!(summary.monomials > 0);
        // num_vars counts all 5 nodes (START/STOP included); residency
        // claims cover only the 3 compute nodes.
        assert_eq!(summary.memory_nodes, Some(3), "one residency claim per compute node");
    }

    #[test]
    fn solver_tier_field_round_trips_and_unknown_tiers_are_rejected() {
        let g = example_fig1_mdg();
        let obj = MdgObjective::new(&g, Machine::cm5(4));
        let oc = certify_objective(&obj).expect("fig1 certifies");

        // Absent field: accepted, no tier recorded.
        let summary = check_certificate(&certificate_json(&obj, &oc)).unwrap();
        assert_eq!(summary.solver_tier, None);

        // The ADMM tier: accepted, recorded, rendered.
        let doc = certificate_json_with_tier(&obj, &oc, FallbackTier::Admm);
        let summary = check_certificate(&doc).expect("admm-tier certificate must verify");
        assert_eq!(summary.solver_tier.as_deref(), Some("admm"));
        assert!(summary.to_string().contains("solved via admm tier"), "{summary}");

        // Every tier this build can produce is accepted.
        for tier in [FallbackTier::Primary, FallbackTier::Coordinate, FallbackTier::EqualSplit] {
            let doc = certificate_json_with_tier(&obj, &oc, tier);
            let summary = check_certificate(&doc).unwrap_or_else(|e| panic!("{tier:?}: {e}"));
            assert_eq!(summary.solver_tier.as_deref(), Some(tier.as_str()));
        }

        // A made-up tier is a typed rejection, not a silent pass.
        let mut doc = certificate_json_with_tier(&obj, &oc, FallbackTier::Admm);
        let set_tier = |doc: &mut Json, v: Json| {
            let Json::Obj(members) = doc else { unreachable!() };
            members.iter_mut().find(|(k, _)| k == "solver_tier").unwrap().1 = v;
        };
        set_tier(&mut doc, Json::str("oracle"));
        let err = check_certificate(&doc).unwrap_err();
        assert!(matches!(err.defect, CertDefect::UnknownTier(ref t) if t == "oracle"), "{err}");

        // A mistyped field is a document-level rejection.
        set_tier(&mut doc, Json::num(3.0));
        let err = check_certificate(&doc).unwrap_err();
        assert!(matches!(err.defect, CertDefect::Document(_)), "{err}");
    }

    #[test]
    fn v1_document_without_memory_is_still_accepted() {
        let mut doc = fig1_cert_json();
        let Json::Obj(members) = &mut doc else { unreachable!() };
        members.retain(|(k, _)| k != "memory");
        members.iter_mut().find(|(k, _)| k == "version").unwrap().1 = Json::num(1.0);
        let summary = check_certificate(&doc).expect("v1 documents carry no memory claims");
        assert_eq!(summary.memory_nodes, None);
        assert!(summary.to_string().contains("v1 document"));
    }

    #[test]
    fn v2_document_without_memory_is_rejected() {
        let mut doc = fig1_cert_json();
        let Json::Obj(members) = &mut doc else { unreachable!() };
        members.retain(|(k, _)| k != "memory");
        let err = check_certificate(&doc).unwrap_err();
        assert!(matches!(err.defect, CertDefect::Document(_)), "{err}");
        assert!(err.to_string().contains("memory"), "{err}");
    }

    /// Fetch a mutable reference to the memory section.
    fn memory_of(doc: &mut Json) -> &mut Json {
        let Json::Obj(members) = doc else { unreachable!() };
        &mut members.iter_mut().find(|(k, _)| k == "memory").unwrap().1
    }

    #[test]
    fn tampered_memory_footprint_is_caught() {
        let mut doc = fig1_cert_json();
        {
            let Json::Obj(mem) = memory_of(&mut doc) else { unreachable!() };
            let nodes = &mut mem.iter_mut().find(|(k, _)| k == "nodes").unwrap().1;
            let Json::Arr(nodes) = nodes else { unreachable!() };
            let Json::Obj(node0) = &mut nodes[0] else { unreachable!() };
            // Shrink a claimed inbound footprint: the residency interval
            // no longer matches the components.
            let inb = &mut node0.iter_mut().find(|(k, _)| k == "in_bytes").unwrap().1;
            let Json::Num(v) = inb else { unreachable!() };
            *v += 4096.0;
        }
        let err = check_certificate(&doc).unwrap_err();
        assert!(
            matches!(err.defect, CertDefect::IntervalMismatch { .. }),
            "inflated footprint must break its own interval: {err}"
        );
        assert_eq!(err.path, vec![0], "failure names the tampered claim");
    }

    #[test]
    fn tampered_feasibility_verdict_is_caught() {
        let mut doc = fig1_cert_json();
        {
            let Json::Obj(mem) = memory_of(&mut doc) else { unreachable!() };
            mem.iter_mut().find(|(k, _)| k == "feasible").unwrap().1 = Json::Bool(false);
        }
        let err = check_certificate(&doc).unwrap_err();
        assert!(matches!(err.defect, CertDefect::Memory(_)), "{err}");
        assert!(err.to_string().contains("feasible"), "{err}");
    }

    #[test]
    fn tampered_comm_volume_is_caught() {
        let mut doc = fig1_cert_json();
        {
            let Json::Obj(mem) = memory_of(&mut doc) else { unreachable!() };
            let tc = &mut mem.iter_mut().find(|(k, _)| k == "total_comm_bytes").unwrap().1;
            let Json::Num(v) = tc else { unreachable!() };
            *v *= 2.0;
        }
        let err = check_certificate(&doc).unwrap_err();
        assert!(matches!(err.defect, CertDefect::Memory(_)), "{err}");
        assert!(err.to_string().contains("total_comm_bytes"), "{err}");
    }

    #[test]
    fn memory_section_round_trips_through_text() {
        let doc = fig1_cert_json();
        let reparsed = parse(&doc.render()).expect("rendered certificate parses");
        let a = check_certificate(&doc).expect("original verifies");
        let b = check_certificate(&reparsed).expect("reparsed verifies");
        assert_eq!(a, b);
        assert!(a.memory_nodes.is_some());
    }

    #[test]
    fn certificate_round_trips_through_text() {
        let doc = fig1_cert_json();
        let reparsed = parse(&doc.render()).expect("rendered certificate parses");
        assert_eq!(check_certificate(&doc), check_certificate(&reparsed));
    }

    /// Multiply the first leaf coefficient found in `j` by `factor`;
    /// returns the child-index path to the perturbed leaf.
    fn perturb_first_leaf(j: &mut Json, factor: f64) -> Option<Vec<usize>> {
        let Json::Obj(members) = j else { return None };
        let is_leaf =
            members.iter().any(|(k, v)| k == "rule" && v.as_str() == Some("monomial-leaf"));
        if is_leaf {
            for (k, v) in members.iter_mut() {
                if k == "coeff" {
                    if let Json::Num(c) = v {
                        if *c > 0.0 {
                            *c *= factor;
                            return Some(Vec::new());
                        }
                    }
                    return None;
                }
            }
            return None;
        }
        let kids = members.iter_mut().find(|(k, _)| k == "children")?;
        if let Json::Arr(kids) = &mut kids.1 {
            for (i, kid) in kids.iter_mut().enumerate() {
                if let Some(mut path) = perturb_first_leaf(kid, factor) {
                    path.insert(0, i);
                    return Some(path);
                }
            }
        }
        None
    }

    #[test]
    fn perturbed_coefficient_is_caught_at_the_leaf() {
        let mut doc = fig1_cert_json();
        // Perturb inside the area tree.
        let path = {
            let Json::Obj(members) = &mut doc else { unreachable!() };
            let area = &mut members.iter_mut().find(|(k, _)| k == "area").unwrap().1;
            perturb_first_leaf(area, 1.5).expect("area tree has a positive leaf")
        };
        let err = check_certificate(&doc).expect_err("tampered certificate must be rejected");
        assert_eq!(err.part, Some(CertPart::Area));
        assert_eq!(err.path, path, "counterexample must point at the perturbed leaf");
        assert!(matches!(err.defect, CertDefect::IntervalMismatch { .. }), "got {:?}", err.defect);
        assert!(err.subtree.is_some(), "counterexample carries the failing sub-tree");
    }

    #[test]
    fn unknown_version_is_rejected_up_front() {
        let mut doc = fig1_cert_json();
        let Json::Obj(members) = &mut doc else { unreachable!() };
        members.iter_mut().find(|(k, _)| k == "version").unwrap().1 = Json::num(99.0);
        let err = check_certificate(&doc).unwrap_err();
        assert!(matches!(err.defect, CertDefect::UnsupportedVersion(v) if v == 99.0), "{err}");
    }

    #[test]
    fn missing_version_is_rejected() {
        let mut doc = fig1_cert_json();
        let Json::Obj(members) = &mut doc else { unreachable!() };
        members.retain(|(k, _)| k != "version");
        let err = check_certificate(&doc).unwrap_err();
        assert!(matches!(err.defect, CertDefect::Document(_)), "{err}");
    }

    #[test]
    fn tampered_class_is_a_class_mismatch() {
        let mut doc = fig1_cert_json();
        let Json::Obj(members) = &mut doc else { unreachable!() };
        let area = &mut members.iter_mut().find(|(k, _)| k == "area").unwrap().1;
        let Json::Obj(area_members) = area else { unreachable!() };
        area_members.iter_mut().find(|(k, _)| k == "class").unwrap().1 = Json::str("monomial");
        let err = check_certificate(&doc).unwrap_err();
        assert!(matches!(err.defect, CertDefect::ClassMismatch { .. }), "{err}");
        assert_eq!(err.part, Some(CertPart::Area));
    }

    #[test]
    fn rejection_message_names_the_location() {
        let mut doc = fig1_cert_json();
        let Json::Obj(members) = &mut doc else { unreachable!() };
        let nodes = &mut members.iter_mut().find(|(k, _)| k == "nodes").unwrap().1;
        let Json::Arr(nodes) = nodes else { unreachable!() };
        perturb_first_leaf(&mut nodes[1], 2.0).expect("node 1 has a leaf");
        let err = check_certificate(&doc).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("certificate REJECTED at node 1:root"), "{msg}");
        assert!(msg.contains("counterexample sub-tree"), "{msg}");
    }

    #[test]
    fn checker_parses_text_and_flags_garbage() {
        let doc = fig1_cert_json();
        assert!(check_certificate_text(&doc.render()).is_ok());
        let err = check_certificate_text("{not json").unwrap_err();
        assert!(matches!(err.defect, CertDefect::Document(_)), "{err}");
    }

    #[test]
    fn derivation_dot_mentions_every_rule() {
        let g = example_fig1_mdg();
        let obj = MdgObjective::new(&g, Machine::cm5(4));
        let oc = certify_objective(&obj).unwrap();
        let dot = certificate_dot(g.name(), &oc);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("monomial-leaf"));
        assert!(dot.contains("sum-closure"));
        assert!(dot.contains("A_p"));
    }
}
