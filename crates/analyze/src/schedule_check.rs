//! Whole-schedule static analysis: race detection, precedence checking,
//! and a `Phi` cross-check against the paper's completion recurrence.
//!
//! [`paradigm_sched::Schedule::validate`] stops at the first problem and
//! returns a bare string — good enough for asserting correctness, useless
//! for diagnosing a broken scheduler. [`analyze_schedule`] instead checks
//! *everything* and returns all violations as structured values:
//!
//! * **shape** — every node scheduled exactly once, finite times,
//!   non-negative durations;
//! * **weights** — task durations equal the node weights `T_i`, compute
//!   tasks occupy exactly their allocated processor count, processor ids
//!   are distinct and within the machine;
//! * **precedence** — `start_j ≥ finish_m + t^D_mj` along every edge;
//! * **races** — a per-processor sweep line finds every pair of tasks
//!   overlapping on the same processor (not just the first);
//! * **recurrence** — re-derives the earliest finish times
//!   `y_i = max_m(y_m + t^D_mi) + T_i`; no valid schedule can finish a
//!   node before its `y_i`, and the makespan can never beat
//!   `C_p = y_STOP`, so either event indicates the reported times are
//!   inconsistent with the weights the schedule claims to realize.

use paradigm_cost::{Allocation, Machine, MdgWeights};
use paradigm_mdg::{Mdg, NodeId, NodeKind};
use paradigm_sched::Schedule;
use paradigm_solver::FallbackTier;
use std::fmt;

/// Relative tolerance for all time comparisons (matches
/// `Schedule::validate`).
const TOL: f64 = 1e-9;

/// One problem found in a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleViolation {
    /// Task list length differs from the node count.
    TaskCountMismatch {
        /// Number of tasks in the schedule.
        tasks: usize,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// A node appears in more than one task.
    DuplicateNode {
        /// The node scheduled twice.
        node: NodeId,
    },
    /// A node has no task at all.
    MissingNode {
        /// The unscheduled node.
        node: NodeId,
    },
    /// A task's start or finish is NaN/infinite, or it finishes before
    /// it starts.
    MalformedInterval {
        /// The offending node.
        node: NodeId,
        /// Its reported start.
        start: f64,
        /// Its reported finish.
        finish: f64,
    },
    /// Task duration does not equal the node weight `T_i`.
    DurationMismatch {
        /// The offending node.
        node: NodeId,
        /// `finish - start` as scheduled.
        actual: f64,
        /// The weight `T_i` it should equal.
        expected: f64,
    },
    /// A compute task's processor count differs from its allocation.
    AllocationMismatch {
        /// The offending node.
        node: NodeId,
        /// Processors the task occupies.
        used: usize,
        /// Processors the allocation grants.
        allocated: usize,
    },
    /// A processor id is outside the machine, or repeated within a task.
    BadProcessorId {
        /// The offending node.
        node: NodeId,
        /// The bad processor id.
        proc: u32,
        /// True when the id is a duplicate within the same task.
        duplicate: bool,
    },
    /// An edge's destination starts before its source's finish plus the
    /// network delay.
    PrecedenceViolation {
        /// Source node of the edge.
        src: NodeId,
        /// Destination node of the edge.
        dst: NodeId,
        /// The destination's scheduled start.
        start: f64,
        /// `finish_src + t^D` — the earliest legal start.
        required: f64,
    },
    /// Two tasks occupy the same processor at the same time.
    ProcessorOverlap {
        /// The shared processor.
        proc: u32,
        /// The earlier-starting task's node.
        first: NodeId,
        /// The later-starting task's node.
        second: NodeId,
        /// Start of the overlapping span.
        from: f64,
        /// End of the overlapping span.
        until: f64,
    },
    /// A node finishes before its recurrence lower bound `y_i`.
    FinishBeforeEarliest {
        /// The offending node.
        node: NodeId,
        /// Its scheduled finish.
        finish: f64,
        /// Its `y_i` from the recurrence.
        earliest: f64,
    },
    /// The reported makespan differs from the STOP task's finish.
    MakespanMismatch {
        /// The schedule's reported makespan.
        reported: f64,
        /// The STOP task's finish time.
        stop_finish: f64,
    },
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ScheduleViolation::*;
        match self {
            TaskCountMismatch { tasks, nodes } => {
                write!(f, "{tasks} tasks scheduled for {nodes} nodes")
            }
            DuplicateNode { node } => write!(f, "node {node} scheduled more than once"),
            MissingNode { node } => write!(f, "node {node} never scheduled"),
            MalformedInterval { node, start, finish } => {
                write!(f, "node {node} has malformed interval [{start}, {finish})")
            }
            DurationMismatch { node, actual, expected } => {
                write!(f, "node {node} runs for {actual}, weight says {expected}")
            }
            AllocationMismatch { node, used, allocated } => {
                write!(f, "node {node} occupies {used} processors, allocation grants {allocated}")
            }
            BadProcessorId { node, proc, duplicate: true } => {
                write!(f, "node {node} lists processor {proc} twice")
            }
            BadProcessorId { node, proc, duplicate: false } => {
                write!(f, "node {node} uses processor {proc} outside the machine")
            }
            PrecedenceViolation { src, dst, start, required } => {
                write!(f, "edge {src} -> {dst}: start {start} precedes earliest legal {required}")
            }
            ProcessorOverlap { proc, first, second, from, until } => {
                write!(f, "processor {proc}: {first} and {second} overlap on [{from}, {until})")
            }
            FinishBeforeEarliest { node, finish, earliest } => {
                write!(f, "node {node} finishes at {finish}, recurrence lower bound is {earliest}")
            }
            MakespanMismatch { reported, stop_finish } => {
                write!(f, "reported makespan {reported} != STOP finish {stop_finish}")
            }
        }
    }
}

/// Everything [`analyze_schedule`] found.
#[derive(Debug, Clone)]
pub struct ScheduleReport {
    /// All violations, in check order.
    pub violations: Vec<ScheduleViolation>,
    /// `C_p = y_STOP` re-derived from the weights.
    pub recomputed_cp: f64,
    /// The schedule's reported makespan.
    pub reported_makespan: f64,
}

impl ScheduleReport {
    /// True when no violation was found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_clean() {
            out.push_str(&format!(
                "schedule clean: makespan {} >= recomputed C_p {}\n",
                self.reported_makespan, self.recomputed_cp
            ));
        } else {
            out.push_str(&format!("{} schedule violation(s):\n", self.violations.len()));
            for v in &self.violations {
                out.push_str(&format!("  - {v}\n"));
            }
        }
        out
    }
}

/// Run every check against `s`, which claims to schedule `g` under the
/// weights `w`. Returns all violations (an empty list means the schedule
/// is consistent).
pub fn analyze_schedule(g: &Mdg, w: &MdgWeights, s: &Schedule) -> ScheduleReport {
    let mut violations = Vec::new();
    let n = g.node_count();

    if s.tasks.len() != n {
        violations.push(ScheduleViolation::TaskCountMismatch { tasks: s.tasks.len(), nodes: n });
    }

    // Shape and weight checks; remember each node's task index.
    let mut task_of: Vec<Option<usize>> = vec![None; n];
    for (k, t) in s.tasks.iter().enumerate() {
        if t.node.0 >= n {
            // An out-of-graph node id: report as malformed and skip.
            violations.push(ScheduleViolation::MalformedInterval {
                node: t.node,
                start: t.start,
                finish: t.finish,
            });
            continue;
        }
        if task_of[t.node.0].is_some() {
            violations.push(ScheduleViolation::DuplicateNode { node: t.node });
            continue;
        }
        task_of[t.node.0] = Some(k);

        if !t.start.is_finite() || !t.finish.is_finite() || t.finish < t.start {
            violations.push(ScheduleViolation::MalformedInterval {
                node: t.node,
                start: t.start,
                finish: t.finish,
            });
            continue;
        }
        let expected = w.node_weight(t.node);
        if (t.duration() - expected).abs() > TOL * expected.max(1.0) {
            violations.push(ScheduleViolation::DurationMismatch {
                node: t.node,
                actual: t.duration(),
                expected,
            });
        }
        if g.node(t.node).kind == NodeKind::Compute {
            let allocated = w.alloc.as_u32(t.node) as usize;
            if t.procs.len() != allocated {
                violations.push(ScheduleViolation::AllocationMismatch {
                    node: t.node,
                    used: t.procs.len(),
                    allocated,
                });
            }
        }
        for (i, &pid) in t.procs.iter().enumerate() {
            if pid >= s.machine_procs {
                violations.push(ScheduleViolation::BadProcessorId {
                    node: t.node,
                    proc: pid,
                    duplicate: false,
                });
            }
            if t.procs[..i].contains(&pid) {
                violations.push(ScheduleViolation::BadProcessorId {
                    node: t.node,
                    proc: pid,
                    duplicate: true,
                });
            }
        }
    }
    for (v, slot) in task_of.iter().enumerate() {
        if slot.is_none() {
            violations.push(ScheduleViolation::MissingNode { node: NodeId(v) });
        }
    }

    // Precedence along every edge.
    for (eid, e) in g.edges() {
        let (Some(&Some(km)), Some(&Some(kj))) = (task_of.get(e.src), task_of.get(e.dst)) else {
            continue; // missing tasks already reported
        };
        let tm = &s.tasks[km];
        let tj = &s.tasks[kj];
        let required = tm.finish + w.edge_weight(eid);
        if tj.start + TOL * required.abs().max(1.0) < required {
            violations.push(ScheduleViolation::PrecedenceViolation {
                src: NodeId(e.src),
                dst: NodeId(e.dst),
                start: tj.start,
                required,
            });
        }
    }

    // Race detection: sweep each processor's intervals in start order and
    // report every overlapping pair with an open interval.
    let mut by_proc: Vec<Vec<(f64, f64, NodeId)>> = vec![Vec::new(); s.machine_procs as usize];
    for t in &s.tasks {
        for &pid in &t.procs {
            if pid < s.machine_procs && t.start.is_finite() && t.finish.is_finite() {
                by_proc[pid as usize].push((t.start, t.finish, t.node));
            }
        }
    }
    for (pid, ivals) in by_proc.iter_mut().enumerate() {
        ivals.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        // Active set: intervals whose finish is still ahead of the sweep.
        let mut active: Vec<(f64, f64, NodeId)> = Vec::new();
        for &(start, finish, node) in ivals.iter() {
            active.retain(|&(_, f0, _)| f0 > start + TOL * f0.abs().max(1.0));
            for &(_, f0, n0) in &active {
                violations.push(ScheduleViolation::ProcessorOverlap {
                    proc: pid as u32,
                    first: n0,
                    second: node,
                    from: start,
                    until: f0.min(finish),
                });
            }
            active.push((start, finish, node));
        }
    }

    // Recurrence cross-check: y_i from the paper's completion recurrence
    // is a lower bound on any schedule of these weights.
    let y = g.finish_times_with(|v| w.node_weight(v), |e| w.edge_weight(e));
    for (v, slot) in task_of.iter().enumerate() {
        let Some(&k) = slot.as_ref() else { continue };
        let t = &s.tasks[k];
        if t.finish.is_finite() && t.finish + TOL * y[v].max(1.0) < y[v] {
            violations.push(ScheduleViolation::FinishBeforeEarliest {
                node: NodeId(v),
                finish: t.finish,
                earliest: y[v],
            });
        }
    }
    let recomputed_cp = y[g.stop().0];

    // Makespan consistency.
    if let Some(&Some(k)) = task_of.get(g.stop().0) {
        let stop_finish = s.tasks[k].finish;
        if (s.makespan - stop_finish).abs() > TOL * s.makespan.abs().max(1.0) {
            violations
                .push(ScheduleViolation::MakespanMismatch { reported: s.makespan, stop_finish });
        }
    }

    ScheduleReport { violations, recomputed_cp, reported_makespan: s.makespan }
}

/// What a solve result claims about its schedule, for [`ScheduleAuditor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditClaims {
    /// The continuous optimum `Phi` the solver reported.
    pub phi: f64,
    /// The reported PSA makespan `T_psa`.
    pub t_psa: f64,
    /// Which fallback tier produced the result. Degraded tiers keep
    /// their precedence/capacity obligations but are exempt from the
    /// `Phi <= T_psa` lower-bound check: the rounded allocation they
    /// schedule can legitimately undercut their continuous `Phi`.
    pub tier: FallbackTier,
}

/// One problem found by the audit on top of [`analyze_schedule`]'s checks.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditViolation {
    /// More processors busy at one instant than the machine has
    /// (`Σ p_i <= p` violated), independent of processor ids.
    Oversubscribed {
        /// The instant of peak over-use.
        at: f64,
        /// Processors busy at that instant.
        used: usize,
        /// Processors the machine has.
        available: u32,
    },
    /// The schedule was built for a different machine size than audited.
    MachineSizeMismatch {
        /// `machine_procs` recorded in the schedule.
        schedule: u32,
        /// Processors of the machine under audit.
        machine: u32,
    },
    /// The allocation has a different node count than the graph, so
    /// weights cannot even be re-derived.
    AllocationShapeMismatch {
        /// Entries in the allocation.
        alloc: usize,
        /// Nodes in the graph.
        graph: usize,
    },
    /// A processor's resident set exceeds its memory capacity under the
    /// even block-distribution model ([`crate::resources`]).
    MemoryOverCapacity {
        /// The offending processor.
        proc: u32,
        /// The instant the resident set first exceeded capacity.
        at: f64,
        /// Model resident bytes at that instant.
        resident_bytes: f64,
        /// The per-processor capacity.
        capacity_bytes: u64,
    },
    /// The reported `T_psa` differs from the schedule's makespan.
    MakespanClaimMismatch {
        /// The claimed `T_psa`.
        claimed: f64,
        /// The schedule's actual makespan.
        actual: f64,
    },
    /// The reported `Phi` is NaN, infinite, or non-positive.
    PhiClaimNotFinite {
        /// The claimed value.
        phi: f64,
    },
    /// A primary-tier `Phi` exceeds the realized makespan: `Phi` is a
    /// lower bound on every schedule of the optimal allocation, so the
    /// claim and the schedule cannot both be right.
    PhiExceedsMakespan {
        /// The claimed `Phi`.
        phi: f64,
        /// The schedule's makespan.
        makespan: f64,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use AuditViolation::*;
        match self {
            Oversubscribed { at, used, available } => {
                write!(f, "{used} processors busy at t = {at}, machine has {available}")
            }
            MachineSizeMismatch { schedule, machine } => {
                write!(f, "schedule built for {schedule} processors, audited against {machine}")
            }
            AllocationShapeMismatch { alloc, graph } => {
                write!(f, "allocation covers {alloc} nodes, graph has {graph}")
            }
            MemoryOverCapacity { proc, at, resident_bytes, capacity_bytes } => write!(
                f,
                "processor {proc} holds {resident_bytes:.0} resident bytes at t = {at}, \
                 capacity is {capacity_bytes}"
            ),
            MakespanClaimMismatch { claimed, actual } => {
                write!(f, "claimed T_psa {claimed} != schedule makespan {actual}")
            }
            PhiClaimNotFinite { phi } => write!(f, "claimed Phi {phi} is not a positive number"),
            PhiExceedsMakespan { phi, makespan } => {
                write!(f, "claimed Phi {phi} exceeds the realized makespan {makespan}")
            }
        }
    }
}

/// Everything one [`ScheduleAuditor::audit`] run found.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// The full sweep-line/precedence/recurrence report.
    pub schedule: ScheduleReport,
    /// Capacity and claim checks on top of it.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// True when neither layer found a problem.
    pub fn is_clean(&self) -> bool {
        self.schedule.is_clean() && self.violations.is_empty()
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = self.schedule.render();
        if self.violations.is_empty() {
            out.push_str("audit: capacity and Phi claims consistent\n");
        } else {
            out.push_str(&format!("{} audit violation(s):\n", self.violations.len()));
            for v in &self.violations {
                out.push_str(&format!("  - {v}\n"));
            }
        }
        out
    }
}

/// Independent re-verification of a solve result's schedule.
///
/// The auditor trusts *nothing* the solver computed: node and edge
/// weights are re-derived from the graph, machine, and rounded
/// allocation via [`MdgWeights::compute`], the completion recurrence is
/// re-run, precedence and per-processor races re-checked
/// ([`analyze_schedule`]), and two properties [`analyze_schedule`]
/// cannot see are added — machine-wide capacity (`Σ p_i <= p` at every
/// instant, immune to forged processor ids) and consistency of the
/// reported `Phi`/`T_psa` claims with the schedule itself.
#[derive(Debug, Clone)]
pub struct ScheduleAuditor {
    /// Headroom allowed on the primary-tier `Phi <= T_psa` bound, as a
    /// fraction of the makespan. Covers the fast solver's documented
    /// convergence slack (about 1%); the default is 5%.
    pub phi_slack: f64,
    /// *Additional* headroom on the same bound for results produced by
    /// the consensus-ADMM tier ([`FallbackTier::Admm`]). ADMM stops on
    /// residuals rather than at a proven optimum, so its `Phi` sits
    /// within the consensus tolerance of the dense optimum (the
    /// convergence tests pin this at 1%); the default adds another 5%.
    pub admm_phi_slack: f64,
}

impl Default for ScheduleAuditor {
    fn default() -> Self {
        ScheduleAuditor { phi_slack: 0.05, admm_phi_slack: 0.05 }
    }
}

impl ScheduleAuditor {
    /// An auditor with the default slack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Audit `s` as a schedule of `g` on `machine` under the rounded
    /// allocation `alloc`, against the solver's `claims`.
    pub fn audit(
        &self,
        g: &Mdg,
        machine: &Machine,
        alloc: &Allocation,
        s: &Schedule,
        claims: &AuditClaims,
    ) -> AuditReport {
        let mut violations = Vec::new();

        // An allocation for the wrong graph makes weight re-derivation
        // meaningless; report that one fact instead of panicking.
        if alloc.len() != g.node_count() {
            violations.push(AuditViolation::AllocationShapeMismatch {
                alloc: alloc.len(),
                graph: g.node_count(),
            });
            return AuditReport {
                schedule: ScheduleReport {
                    violations: Vec::new(),
                    recomputed_cp: f64::NAN,
                    reported_makespan: s.makespan,
                },
                violations,
            };
        }
        // Widening the machine for weight purposes is sound: node and
        // edge weights depend on the allocation and transfer constants,
        // not on `p` — only the capacity check below uses `p`, and that
        // still audits against the real machine.
        let eff_machine = if alloc.max() > f64::from(machine.procs) {
            Machine {
                procs: alloc.max().ceil() as u32,
                xfer: machine.xfer,
                mem_bytes: machine.mem_bytes,
            }
        } else {
            *machine
        };
        let w = MdgWeights::compute(g, &eff_machine, alloc);
        let schedule = analyze_schedule(g, &w, s);

        if s.machine_procs != machine.procs {
            violations.push(AuditViolation::MachineSizeMismatch {
                schedule: s.machine_procs,
                machine: machine.procs,
            });
        }

        // Machine-wide capacity sweep: +p_i at each start, -p_i at each
        // finish, releases applied before acquisitions at equal times.
        let mut events: Vec<(f64, i64)> = Vec::new();
        for t in &s.tasks {
            if t.start.is_finite() && t.finish.is_finite() && t.finish > t.start {
                let p = t.procs.len() as i64;
                if p > 0 {
                    events.push((t.start, p));
                    events.push((t.finish, -p));
                }
            }
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let (mut busy, mut peak, mut peak_at) = (0i64, 0i64, 0.0f64);
        for (at, delta) in events {
            busy += delta;
            if busy > peak {
                peak = busy;
                peak_at = at;
            }
        }
        if peak > i64::from(machine.procs) {
            violations.push(AuditViolation::Oversubscribed {
                at: peak_at,
                used: peak as usize,
                available: machine.procs,
            });
        }

        // Memory sweep: per-processor resident sets under the even
        // block-distribution model must fit `machine.mem_bytes`.
        for v in crate::resources::check_schedule_memory(g, machine, s).violations {
            violations.push(AuditViolation::MemoryOverCapacity {
                proc: v.proc,
                at: v.at,
                resident_bytes: v.resident_bytes,
                capacity_bytes: v.capacity_bytes,
            });
        }

        // Claim checks.
        if (claims.t_psa - s.makespan).abs() > TOL * s.makespan.abs().max(1.0) {
            violations.push(AuditViolation::MakespanClaimMismatch {
                claimed: claims.t_psa,
                actual: s.makespan,
            });
        }
        if !claims.phi.is_finite() || claims.phi <= 0.0 {
            violations.push(AuditViolation::PhiClaimNotFinite { phi: claims.phi });
        } else if !claims.tier.is_degraded() {
            // Primary and ADMM results both claim a (near-)optimal Phi,
            // so `Phi <= T_psa` must hold up to convergence slack; ADMM
            // gets extra headroom for its residual-based stopping rule.
            // Degraded tiers (coordinate / equal-split) make no
            // optimality claim, so the bound does not apply to them.
            let slack = match claims.tier {
                FallbackTier::Admm => self.phi_slack + self.admm_phi_slack,
                _ => self.phi_slack,
            };
            if claims.phi > s.makespan * (1.0 + slack) {
                violations.push(AuditViolation::PhiExceedsMakespan {
                    phi: claims.phi,
                    makespan: s.makespan,
                });
            }
        }

        AuditReport { schedule, violations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_cost::{Allocation, Machine};
    use paradigm_mdg::{example_fig1_mdg, AmdahlParams, ArrayTransfer, MdgBuilder, TransferKind};
    use paradigm_sched::{psa_schedule, spmd_schedule, PsaConfig};

    fn fig1_psa() -> (Mdg, MdgWeights, Schedule) {
        let g = example_fig1_mdg();
        let mut alloc = Allocation::uniform(&g, 1.0);
        alloc.set(NodeId(1), 4.0);
        alloc.set(NodeId(2), 2.0);
        alloc.set(NodeId(3), 2.0);
        let res = psa_schedule(&g, Machine::cm5(4), &alloc, &PsaConfig::default());
        (g, res.weights, res.schedule)
    }

    #[test]
    fn psa_schedule_is_clean() {
        let (g, w, s) = fig1_psa();
        let rep = analyze_schedule(&g, &w, &s);
        assert!(rep.is_clean(), "{}", rep.render());
        assert!(rep.reported_makespan >= rep.recomputed_cp - 1e-9);
        assert!(rep.render().contains("schedule clean"));
    }

    #[test]
    fn spmd_schedule_is_clean() {
        let g = example_fig1_mdg();
        let (s, w) = spmd_schedule(&g, Machine::cm5(4));
        assert!(analyze_schedule(&g, &w, &s).is_clean());
    }

    /// The acceptance scenario: corrupt a valid PSA schedule with both an
    /// injected processor overlap and a precedence violation, and demand
    /// the analyzer reports *both* (first-error validation cannot).
    #[test]
    fn corrupted_schedule_flags_overlap_and_precedence() {
        let (g, w, s) = fig1_psa();
        let mut bad = s.clone();
        // N2 and N3 run in parallel on disjoint halves; remap N3 onto
        // N2's processors to create a race without touching times...
        let n2_procs = bad.tasks.iter().find(|t| t.node == NodeId(2)).unwrap().procs.clone();
        let t3 = bad.tasks.iter_mut().find(|t| t.node == NodeId(3)).unwrap();
        t3.procs = n2_procs;
        // ...and pull N2's start before N1's finish for the precedence
        // break (keeping its duration so only precedence trips).
        let d2 = w.node_weight(NodeId(2));
        let t2 = bad.tasks.iter_mut().find(|t| t.node == NodeId(2)).unwrap();
        t2.start = 0.0;
        t2.finish = d2;
        let rep = analyze_schedule(&g, &w, &bad);
        assert!(!rep.is_clean());
        assert!(
            rep.violations.iter().any(|v| matches!(v, ScheduleViolation::ProcessorOverlap { .. })),
            "{}",
            rep.render()
        );
        assert!(
            rep.violations
                .iter()
                .any(|v| matches!(v, ScheduleViolation::PrecedenceViolation { .. })),
            "{}",
            rep.render()
        );
    }

    #[test]
    fn all_violation_kinds_are_reported_together() {
        let (g, w, s) = fig1_psa();
        let mut bad = s.clone();
        // Drop STOP's task, corrupt N1's duration, and give N2 a bogus
        // processor id: three independent problems, one report.
        let stop = g.stop();
        bad.tasks.retain(|t| t.node != stop);
        let t1 = bad.tasks.iter_mut().find(|t| t.node == NodeId(1)).unwrap();
        t1.finish = t1.start + 999.0;
        let t2 = bad.tasks.iter_mut().find(|t| t.node == NodeId(2)).unwrap();
        t2.procs = vec![77];
        let rep = analyze_schedule(&g, &w, &bad);
        let kinds: Vec<&str> = rep
            .violations
            .iter()
            .map(|v| match v {
                ScheduleViolation::TaskCountMismatch { .. } => "count",
                ScheduleViolation::MissingNode { .. } => "missing",
                ScheduleViolation::DurationMismatch { .. } => "duration",
                ScheduleViolation::BadProcessorId { .. } => "proc",
                ScheduleViolation::AllocationMismatch { .. } => "alloc",
                _ => "other",
            })
            .collect();
        for expected in ["count", "missing", "duration", "proc", "alloc"] {
            assert!(kinds.contains(&expected), "missing {expected}: {}", rep.render());
        }
    }

    #[test]
    fn makespan_lie_is_caught() {
        let (g, w, s) = fig1_psa();
        let mut bad = s.clone();
        bad.makespan *= 0.5;
        let rep = analyze_schedule(&g, &w, &bad);
        assert!(rep
            .violations
            .iter()
            .any(|v| matches!(v, ScheduleViolation::MakespanMismatch { .. })));
    }

    #[test]
    fn finish_before_recurrence_bound_is_caught() {
        // Compress a two-node chain so the second task finishes before
        // its y_i (both duration and precedence also trip; the point is
        // the recurrence check fires too).
        let mut b = MdgBuilder::new("chain");
        let a = b.compute("a", AmdahlParams::new(0.0, 1.0));
        let c = b.compute("c", AmdahlParams::new(0.0, 2.0));
        b.edge(a, c, vec![ArrayTransfer::new(1024, TransferKind::OneD)]);
        let g = b.finish().unwrap();
        let m = Machine::cm5(2);
        let alloc = Allocation::uniform(&g, 1.0);
        let res = psa_schedule(&g, m, &alloc, &PsaConfig::default());
        let mut bad = res.schedule.clone();
        for t in &mut bad.tasks {
            t.start *= 0.25;
            t.finish *= 0.25;
        }
        bad.makespan *= 0.25;
        let rep = analyze_schedule(&g, &res.weights, &bad);
        assert!(rep
            .violations
            .iter()
            .any(|v| matches!(v, ScheduleViolation::FinishBeforeEarliest { .. })));
    }

    fn fig1_claims(s: &Schedule, tier: FallbackTier) -> AuditClaims {
        AuditClaims { phi: s.makespan * 0.95, t_psa: s.makespan, tier }
    }

    fn fig1_alloc(g: &Mdg) -> Allocation {
        let mut alloc = Allocation::uniform(g, 1.0);
        alloc.set(NodeId(1), 4.0);
        alloc.set(NodeId(2), 2.0);
        alloc.set(NodeId(3), 2.0);
        alloc
    }

    #[test]
    fn auditor_passes_a_clean_psa_schedule() {
        let (g, _, s) = fig1_psa();
        let alloc = fig1_alloc(&g);
        let m = Machine::cm5(4);
        for tier in [FallbackTier::Primary, FallbackTier::Coordinate, FallbackTier::EqualSplit] {
            let rep = ScheduleAuditor::new().audit(&g, &m, &alloc, &s, &fig1_claims(&s, tier));
            assert!(rep.is_clean(), "{}", rep.render());
            assert!(rep.render().contains("audit: capacity and Phi claims consistent"));
        }
    }

    #[test]
    fn auditor_flags_memory_over_capacity() {
        // A 256x256 producer/consumer pair moves 512 KiB arrays; a
        // machine with 64 KiB nodes cannot hold them however the tasks
        // are spread over its 4 processors.
        let mut b = MdgBuilder::new("mem-audit");
        let a = b.compute_with_meta(
            "a",
            AmdahlParams::new(0.05, 1.0),
            paradigm_mdg::LoopMeta::square(paradigm_mdg::LoopClass::MatrixInit, 256),
        );
        let c = b.compute_with_meta(
            "c",
            AmdahlParams::new(0.05, 1.0),
            paradigm_mdg::LoopMeta::square(paradigm_mdg::LoopClass::MatrixAdd, 256),
        );
        b.edge(a, c, vec![ArrayTransfer::matrix_1d(256, 256)]);
        let g = b.finish().unwrap();
        let alloc = Allocation::uniform(&g, 2.0);
        let big = Machine::cm5(4);
        let res = psa_schedule(&g, big, &alloc, &PsaConfig::default());
        let claims = fig1_claims(&res.schedule, FallbackTier::Primary);
        let auditor = ScheduleAuditor::new();

        // Plenty of memory: clean.
        let rep = auditor.audit(&g, &big, &alloc, &res.schedule, &claims);
        assert!(rep.is_clean(), "{}", rep.render());

        // Starved machine: the same schedule is rejected for memory.
        let tiny = Machine::cm5(4).with_mem_bytes(64 * 1024);
        let rep = auditor.audit(&g, &tiny, &alloc, &res.schedule, &claims);
        assert!(!rep.is_clean());
        assert!(
            rep.violations.iter().any(|v| matches!(v, AuditViolation::MemoryOverCapacity { .. })),
            "{}",
            rep.render()
        );
        assert!(rep.render().contains("resident bytes"), "{}", rep.render());
    }

    #[test]
    fn swapped_start_times_are_caught_under_every_tier() {
        // The corruption from the acceptance criteria: swap two tasks'
        // start times so exactly one precedence edge is violated.
        let (g, _, s) = fig1_psa();
        let alloc = fig1_alloc(&g);
        let m = Machine::cm5(4);
        let mut bad = s.clone();
        let i1 = bad.tasks.iter().position(|t| t.node == NodeId(1)).unwrap();
        let i2 = bad.tasks.iter().position(|t| t.node == NodeId(2)).unwrap();
        let (s1, s2) = (bad.tasks[i1].start, bad.tasks[i2].start);
        let (d1, d2) = (bad.tasks[i1].duration(), bad.tasks[i2].duration());
        bad.tasks[i1].start = s2;
        bad.tasks[i1].finish = s2 + d1;
        bad.tasks[i2].start = s1;
        bad.tasks[i2].finish = s1 + d2;
        for tier in [FallbackTier::Primary, FallbackTier::Coordinate, FallbackTier::EqualSplit] {
            let rep = ScheduleAuditor::new().audit(&g, &m, &alloc, &bad, &fig1_claims(&s, tier));
            assert!(!rep.is_clean(), "corruption must be caught under {tier:?}");
            assert!(
                rep.schedule
                    .violations
                    .iter()
                    .any(|v| matches!(v, ScheduleViolation::PrecedenceViolation { .. })),
                "{}",
                rep.render()
            );
        }
    }

    #[test]
    fn oversubscription_is_caught_against_a_smaller_machine() {
        // fig1's PSA on cm5(4) runs 4 processors concurrently; audited
        // against a 2-processor machine the capacity sweep must fire
        // even though per-processor interval checks see no overlap.
        let (g, _, s) = fig1_psa();
        let alloc = fig1_alloc(&g);
        let m = Machine::cm5(2);
        let rep = ScheduleAuditor::new().audit(
            &g,
            &m,
            &alloc,
            &s,
            &fig1_claims(&s, FallbackTier::Primary),
        );
        assert!(
            rep.violations
                .iter()
                .any(|v| matches!(v, AuditViolation::Oversubscribed { used: 4, available: 2, .. })),
            "{}",
            rep.render()
        );
        assert!(rep
            .violations
            .iter()
            .any(|v| matches!(v, AuditViolation::MachineSizeMismatch { .. })));
    }

    #[test]
    fn makespan_and_phi_claim_lies_are_caught() {
        let (g, _, s) = fig1_psa();
        let alloc = fig1_alloc(&g);
        let m = Machine::cm5(4);
        let auditor = ScheduleAuditor::new();

        let lie =
            AuditClaims { phi: s.makespan, t_psa: s.makespan * 2.0, tier: FallbackTier::Primary };
        let rep = auditor.audit(&g, &m, &alloc, &s, &lie);
        assert!(rep
            .violations
            .iter()
            .any(|v| matches!(v, AuditViolation::MakespanClaimMismatch { .. })));

        let phi_lie =
            AuditClaims { phi: s.makespan * 2.0, t_psa: s.makespan, tier: FallbackTier::Primary };
        let rep = auditor.audit(&g, &m, &alloc, &s, &phi_lie);
        assert!(rep
            .violations
            .iter()
            .any(|v| matches!(v, AuditViolation::PhiExceedsMakespan { .. })));

        // The ADMM tier claims near-optimality, so a wildly inflated
        // Phi is still caught there...
        let admm_lie =
            AuditClaims { phi: s.makespan * 2.0, t_psa: s.makespan, tier: FallbackTier::Admm };
        let rep = auditor.audit(&g, &m, &alloc, &s, &admm_lie);
        assert!(rep
            .violations
            .iter()
            .any(|v| matches!(v, AuditViolation::PhiExceedsMakespan { .. })));

        // ...while a Phi inside the combined primary + consensus slack
        // passes under ADMM but would fail under the primary tier.
        let admm_slack = AuditClaims {
            phi: s.makespan * (1.0 + auditor.phi_slack + auditor.admm_phi_slack * 0.5),
            t_psa: s.makespan,
            tier: FallbackTier::Admm,
        };
        assert!(auditor.audit(&g, &m, &alloc, &s, &admm_slack).is_clean());
        let primary_same = AuditClaims { tier: FallbackTier::Primary, ..admm_slack };
        assert!(!auditor.audit(&g, &m, &alloc, &s, &primary_same).is_clean());

        // Degraded tiers are exempt from the lower-bound check...
        let degraded = AuditClaims {
            phi: s.makespan * 2.0,
            t_psa: s.makespan,
            tier: FallbackTier::EqualSplit,
        };
        assert!(auditor.audit(&g, &m, &alloc, &s, &degraded).is_clean());

        // ...but never from basic sanity.
        let nan = AuditClaims { phi: f64::NAN, t_psa: s.makespan, tier: FallbackTier::EqualSplit };
        let rep = auditor.audit(&g, &m, &alloc, &s, &nan);
        assert!(rep
            .violations
            .iter()
            .any(|v| matches!(v, AuditViolation::PhiClaimNotFinite { .. })));
    }

    #[test]
    fn mismatched_allocation_is_reported_not_a_panic() {
        let (g, _, s) = fig1_psa();
        // An allocation sized for a different graph.
        let alloc = Allocation::new(vec![1.0; g.node_count() + 3]);
        let m = Machine::cm5(4);
        let rep = ScheduleAuditor::new().audit(
            &g,
            &m,
            &alloc,
            &s,
            &fig1_claims(&s, FallbackTier::Primary),
        );
        assert!(
            rep.violations
                .iter()
                .any(|v| matches!(v, AuditViolation::AllocationShapeMismatch { .. })),
            "{}",
            rep.render()
        );
    }

    #[test]
    fn violations_render_distinctly() {
        let samples = [
            ScheduleViolation::TaskCountMismatch { tasks: 3, nodes: 5 },
            ScheduleViolation::DuplicateNode { node: NodeId(1) },
            ScheduleViolation::ProcessorOverlap {
                proc: 2,
                first: NodeId(1),
                second: NodeId(3),
                from: 0.5,
                until: 1.5,
            },
            ScheduleViolation::FinishBeforeEarliest { node: NodeId(4), finish: 1.0, earliest: 2.0 },
        ];
        let texts: Vec<String> = samples.iter().map(|v| v.to_string()).collect();
        let distinct: std::collections::HashSet<&String> = texts.iter().collect();
        assert_eq!(distinct.len(), samples.len());
        assert!(texts[2].contains("processor 2"));
    }
}
