//! Static resource analysis: sound per-processor memory and
//! communication bounds — `paradigm-analyze`'s third major pass.
//!
//! Given an MDG and a machine (and optionally a schedule), this module
//! computes **guaranteed interval bounds** on per-processor peak resident
//! memory and on total communication volume, with no simulation and no
//! solver. The abstract domain is the interval domain over bytes:
//!
//! * every compute node `i` gets a footprint `fp_i` (local array +
//!   inbound operands + outbound results, from
//!   [`paradigm_mdg::footprint`]) and a per-processor **residency
//!   interval** `[fp_i / P, fp_i]` — at best the working set spreads
//!   evenly over all `P` processors; at worst it concentrates on one;
//! * edge data stays **live** from its producer's finish to its
//!   consumer's finish, so while `i` executes, every edge `(a, b)` with
//!   `a ≺ i ≺ b` (a precedence path crossing `i`) also occupies machine
//!   memory. The **live-range union** over such crossing paths yields
//!   `demand_i`: a lower bound on the machine-wide resident bytes at the
//!   instant `i` runs, valid for *every* allocation and *every* schedule.
//!
//! `demand_i > P * mem` therefore proves "no allocation of this MDG on
//! this machine can fit" — statically. Graphs whose edge relation turns
//! out to be cyclic (a rogue producer bypassing `MdgBuilder::finish`)
//! cannot be propagated over; their intervals are **widened** to
//! `[lo, +inf)` instead of looping, keeping the pass total and sound.
//!
//! The **post-schedule** pass ([`check_schedule_memory`]) replaces the
//! allocation box with the schedule's concrete groups and runs a
//! sweep-line per processor (the same event discipline as
//! `schedule_check`'s capacity sweep): node `i` charges
//! `(local_i + out_i) / q_i` on each of its processors over
//! `[start_i, finish_i)`, and each data edge `(m, j)` charges
//! `payload / q_j` on `j`'s processors over `[finish_m, finish_j)` —
//! the even block-distribution model. Schedule validity is thereby
//! precedence + capacity + **memory**.
//!
//! Soundness versus the simulator (pinned by a property test at the
//! workspace root): the simulator's concrete accounting charges a
//! processor at most the *actual* message bytes it receives plus
//! `local/q` plus its outbound bytes; all of these are dominated by the
//! pre-schedule upper bound [`ResourceAnalysis::peak_interval`]`.1 =
//! max_i self_i + total_comm`, since one processor can never hold more
//! than every payload plus the largest single working set.

use crate::lint::{Diagnostic, Fix, Lint, LintLocation, LintSet, Severity};
use paradigm_cost::Machine;
use paradigm_mdg::footprint::{edge_payload_bytes, node_footprint, NodeFootprint};
use paradigm_mdg::{total_comm_bytes, Mdg, NodeId};
use paradigm_sched::Schedule;
use std::cmp::Ordering;

/// Relative tolerance for capacity comparisons (float noise only; all
/// byte counts are exact integers promoted to `f64`).
pub const MEM_RTOL: f64 = 1e-9;

/// Per-node result of the pre-schedule pass.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeResidency {
    /// The compute node.
    pub node: NodeId,
    /// Its footprint decomposition.
    pub footprint: NodeFootprint,
    /// Guaranteed per-processor resident-byte interval `[lo, hi]` over
    /// every allocation in `[1, P]` and every valid schedule. `hi` is
    /// `+inf` when the pass had to widen (cyclic edge relation).
    pub interval: (f64, f64),
    /// Smallest group size whose per-processor share of the footprint
    /// fits in memory; `None` when even all `P` processors cannot hold it.
    pub min_group: Option<u32>,
    /// Machine-wide live bytes while this node executes: its own
    /// footprint plus every edge whose producer precedes and whose
    /// consumer succeeds this node (live-range union over precedence
    /// paths).
    pub demand_bytes: u64,
}

/// Result of the pre-schedule resource analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceAnalysis {
    /// Graph name.
    pub graph: String,
    /// Machine size the intervals are taken over.
    pub procs: u32,
    /// Per-processor memory capacity analyzed against.
    pub mem_bytes: u64,
    /// Compute nodes in node-index order.
    pub nodes: Vec<NodeResidency>,
    /// Guaranteed interval containing the per-processor peak resident
    /// bytes of **any** allocation + schedule of this graph:
    /// `lo = max_i demand_i / P`, `hi = max_i self_i + total_comm`.
    pub peak_interval: (f64, f64),
    /// Total communication volume (sum of all edge payloads).
    pub total_comm_bytes: u64,
    /// True when interval propagation hit a cycle and widened to `+inf`.
    pub widened: bool,
    /// False when some node proves no allocation can fit
    /// (`demand_i > P * mem`).
    pub feasible: bool,
}

impl ResourceAnalysis {
    /// Nodes that prove infeasibility (machine-wide demand exceeds the
    /// whole machine's memory).
    pub fn infeasible_nodes(&self) -> impl Iterator<Item = &NodeResidency> {
        let cap = total_capacity(self.procs, self.mem_bytes);
        self.nodes.iter().filter(move |n| n.demand_bytes > cap)
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "resource analysis: `{}` on {} procs x {} per-processor memory",
            self.graph,
            self.procs,
            fmt_bytes(self.mem_bytes)
        );
        let _ = writeln!(out, "  total communication volume: {}", fmt_bytes(self.total_comm_bytes));
        let _ = writeln!(
            out,
            "  per-processor peak resident set in [{}, {}]",
            fmt_bytes_f(self.peak_interval.0),
            fmt_bytes_f(self.peak_interval.1)
        );
        if self.widened {
            let _ = writeln!(out, "  ! edge relation is cyclic; intervals widened to +inf");
        }
        for n in &self.nodes {
            let group = match n.min_group {
                Some(1) => "fits on 1 proc".to_string(),
                Some(k) => format!("needs a group of >= {k}"),
                None => "DOES NOT FIT at any group size".to_string(),
            };
            let _ = writeln!(
                out,
                "  {}: footprint {} (local {} + in {} + out {}), residency [{}, {}], {}",
                n.node,
                fmt_bytes(n.footprint.total_bytes()),
                fmt_bytes(n.footprint.local_bytes),
                fmt_bytes(n.footprint.in_bytes),
                fmt_bytes(n.footprint.out_bytes),
                fmt_bytes_f(n.interval.0),
                fmt_bytes_f(n.interval.1),
                group
            );
        }
        let verdict = if self.feasible {
            "feasible: every node's live set fits the machine".to_string()
        } else {
            let worst = self
                .infeasible_nodes()
                .max_by_key(|n| n.demand_bytes)
                .expect("infeasible analysis names a witness");
            format!(
                "INFEASIBLE: node {} needs {} live bytes but the machine holds {}",
                worst.node,
                fmt_bytes(worst.demand_bytes),
                fmt_bytes(total_capacity(self.procs, self.mem_bytes))
            )
        };
        let _ = writeln!(out, "  verdict: {verdict}");
        out
    }
}

/// Whole-machine capacity in bytes. All byte counts are exact `u64`, so
/// feasibility comparisons are integer-exact — no float tolerance.
fn total_capacity(procs: u32, mem_bytes: u64) -> u64 {
    (procs as u64).saturating_mul(mem_bytes)
}

fn fmt_bytes(b: u64) -> String {
    fmt_bytes_f(b as f64)
}

fn fmt_bytes_f(b: f64) -> String {
    if !b.is_finite() {
        return "+inf".to_string();
    }
    const KIB: f64 = 1024.0;
    if b >= KIB * KIB * KIB {
        format!("{:.2} GiB", b / (KIB * KIB * KIB))
    } else if b >= KIB * KIB {
        format!("{:.2} MiB", b / (KIB * KIB))
    } else if b >= KIB {
        format!("{:.2} KiB", b / KIB)
    } else {
        format!("{b:.0} B")
    }
}

/// Run the pre-schedule pass: footprint intervals, live-range demand,
/// and the machine-level feasibility verdict.
pub fn analyze_resources(g: &Mdg, machine: &Machine) -> ResourceAnalysis {
    let procs = machine.procs;
    let p = procs as f64;
    let edge_list: Vec<(usize, usize)> = g.edges().map(|(_, e)| (e.src, e.dst)).collect();
    let widened = crate::lint::find_cycle(g.node_count(), &edge_list).is_some();

    // Precompute reachability once: reach[a][b] = path a -> b. Graphs
    // are small (tens of nodes); dense Vec<bool> rows are fine.
    let reach = if widened { Vec::new() } else { reachability(g) };

    let mut nodes = Vec::new();
    let mut peak_lo = 0.0_f64;
    let mut max_self = 0u64;
    let mut feasible = true;
    let cap = total_capacity(procs, machine.mem_bytes);

    for (id, node) in g.nodes() {
        if node.is_structural() {
            continue;
        }
        let fp = node_footprint(g, id);
        let total = fp.total_bytes();
        max_self = max_self.max(fp.self_bytes());

        // Live-range union: edges (a, b) with a -> ... -> i -> ... -> b
        // strictly crossing i are live while i executes; i's own
        // footprint already counts its in/out edges.
        let mut demand = total;
        if !widened {
            for (eid, e) in g.edges() {
                if e.src == id.0 || e.dst == id.0 {
                    continue;
                }
                let crosses = reach[e.src][id.0] && reach[id.0][e.dst];
                if crosses {
                    demand += edge_payload_bytes(g, eid);
                }
            }
        }

        let lo = total as f64 / p;
        let hi = if widened { f64::INFINITY } else { total as f64 };
        // Smallest q in 1..=P with ceil-division fp/q <= mem; exact.
        let min_group = {
            let k = total.div_ceil(machine.mem_bytes).max(1);
            if k <= procs as u64 {
                Some(k as u32)
            } else {
                None
            }
        };
        if demand > cap || widened {
            feasible = false;
        }
        peak_lo = peak_lo.max(demand as f64 / p);
        nodes.push(NodeResidency {
            node: id,
            footprint: fp,
            interval: (lo, hi),
            min_group,
            demand_bytes: demand,
        });
    }

    let comm = total_comm_bytes(g);
    let peak_hi = if widened { f64::INFINITY } else { max_self as f64 + comm as f64 };
    debug_assert_eq!(nodes.len(), g.compute_node_count());
    ResourceAnalysis {
        graph: g.name().to_string(),
        procs,
        mem_bytes: machine.mem_bytes,
        nodes,
        peak_interval: (peak_lo, peak_hi),
        total_comm_bytes: comm,
        widened,
        feasible,
    }
}

/// Dense all-pairs reachability over node indices (`reach[a][b]` = path
/// from a to b, reflexive).
fn reachability(g: &Mdg) -> Vec<Vec<bool>> {
    let n = g.node_count();
    let mut reach = vec![vec![false; n]; n];
    // Process in reverse topological order: reach[v] = {v} U succ sets.
    for &v in g.topo_order().iter().rev() {
        reach[v.0][v.0] = true;
        let succs: Vec<usize> = g.succs(v).map(|s| s.0).collect();
        for s in succs {
            // reach[v] |= reach[s]
            let (head, tail) = if v.0 < s {
                let (a, b) = reach.split_at_mut(s);
                (&mut a[v.0], &b[0])
            } else {
                let (a, b) = reach.split_at_mut(v.0);
                (&mut b[0], &a[s])
            };
            for (dst, &src) in head.iter_mut().zip(tail.iter()) {
                *dst = *dst || src;
            }
        }
    }
    reach
}

// ---------------------------------------------------------------------
// Post-schedule pass: per-processor resident-set sweep-line.
// ---------------------------------------------------------------------

/// One processor exceeding its memory capacity at a point in time.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryViolation {
    /// Global processor id.
    pub proc: u32,
    /// Time at which the resident set first exceeded capacity.
    pub at: f64,
    /// Model resident bytes at that instant.
    pub resident_bytes: f64,
    /// The capacity that was exceeded.
    pub capacity_bytes: u64,
}

impl std::fmt::Display for MemoryViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "processor {} holds {} resident bytes at t={:.6}, capacity {}",
            self.proc,
            fmt_bytes_f(self.resident_bytes),
            self.at,
            fmt_bytes(self.capacity_bytes)
        )
    }
}

/// Result of the post-schedule memory sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySweep {
    /// Peak model resident bytes per processor (indexed by global id).
    pub proc_peaks: Vec<f64>,
    /// Max over processors.
    pub peak_bytes: f64,
    /// Capacity violations, one per offending processor (first instant).
    pub violations: Vec<MemoryViolation>,
}

impl MemorySweep {
    /// True when every processor stays within capacity.
    pub fn fits(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Sweep the schedule's per-processor resident sets under the even
/// block-distribution model and check them against
/// [`Machine::mem_bytes`]. Tasks missing from the schedule are skipped —
/// the precedence checker reports those separately.
pub fn check_schedule_memory(g: &Mdg, machine: &Machine, s: &Schedule) -> MemorySweep {
    let np = s.machine_procs.max(machine.procs) as usize;
    // (proc, time, +/- bytes) events.
    let mut events: Vec<(usize, f64, f64)> = Vec::new();
    let mut charge = |procs: &[u32], t0: f64, t1: f64, bytes: f64| {
        // `partial_cmp` rather than `!(t0 < t1)`: NaN endpoints must
        // also skip the charge, and clippy wants that spelled out.
        if procs.is_empty() || bytes <= 0.0 || t0.partial_cmp(&t1) != Some(Ordering::Less) {
            return;
        }
        let share = bytes / procs.len() as f64;
        for &p in procs {
            events.push((p as usize, t0, share));
            events.push((p as usize, t1, -share));
        }
    };

    for (id, node) in g.nodes() {
        if node.is_structural() {
            continue;
        }
        let Some(task) = s.task_for(id) else { continue };
        let fp = node_footprint(g, id);
        charge(&task.procs, task.start, task.finish, fp.self_bytes() as f64);
    }
    for (eid, e) in g.edges() {
        let bytes = edge_payload_bytes(g, eid);
        if bytes == 0 {
            continue;
        }
        let (Some(prod), Some(cons)) = (s.task_for(NodeId(e.src)), s.task_for(NodeId(e.dst)))
        else {
            continue;
        };
        charge(&cons.procs, prod.finish, cons.finish, bytes as f64);
    }

    // Sweep each processor: releases before acquisitions at equal times.
    let mut per_proc: Vec<Vec<(f64, f64)>> = vec![Vec::new(); np];
    for (p, t, d) in events {
        if p < np {
            per_proc[p].push((t, d));
        }
    }
    let cap = machine.mem_bytes as f64 * (1.0 + MEM_RTOL) + 0.5;
    let mut proc_peaks = vec![0.0_f64; np];
    let mut violations = Vec::new();
    for (p, evs) in per_proc.iter_mut().enumerate() {
        evs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut resident = 0.0_f64;
        let mut reported = false;
        for &(t, d) in evs.iter() {
            resident += d;
            if resident > proc_peaks[p] {
                proc_peaks[p] = resident;
            }
            if !reported && resident > cap {
                reported = true;
                violations.push(MemoryViolation {
                    proc: p as u32,
                    at: t,
                    resident_bytes: resident,
                    capacity_bytes: machine.mem_bytes,
                });
            }
        }
    }
    let peak_bytes = proc_peaks.iter().copied().fold(0.0, f64::max);
    MemorySweep { proc_peaks, peak_bytes, violations }
}

// ---------------------------------------------------------------------
// Memory lints.
// ---------------------------------------------------------------------

/// Error: some node's live-range demand exceeds the whole machine's
/// memory — no allocation of this MDG on this machine can fit.
pub struct MemoryInfeasible {
    /// Machine analyzed against.
    pub machine: Machine,
}

impl Lint for MemoryInfeasible {
    fn name(&self) -> &'static str {
        "memory-infeasible"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        let ra = analyze_resources(g, &self.machine);
        if ra.feasible {
            return;
        }
        let cap = self.machine.procs as u64 * self.machine.mem_bytes;
        for n in ra.infeasible_nodes() {
            out.push(Diagnostic {
                lint: self.name(),
                severity: Severity::Error,
                location: LintLocation::Node(n.node),
                message: format!(
                    "live set while this node executes is {} but the whole machine \
                     ({} procs x {}) holds only {}",
                    fmt_bytes(n.demand_bytes),
                    self.machine.procs,
                    fmt_bytes(self.machine.mem_bytes),
                    fmt_bytes(cap)
                ),
                hint: Some(
                    "no allocation can fit; raise --mem-mb, use more processors, or shrink \
                     the arrays"
                        .to_string(),
                ),
                fix: None,
            });
        }
        if ra.widened && ra.infeasible_nodes().next().is_none() {
            out.push(Diagnostic {
                lint: self.name(),
                severity: Severity::Error,
                location: LintLocation::Graph,
                message: "edge relation is cyclic; residency intervals widened to +inf".to_string(),
                hint: Some("fix the cycle (see cyclic-dependency) and re-run".to_string()),
                fix: None,
            });
        }
    }
}

/// Warning: a node does not fit on a single processor — only group
/// sizes at or above a floor are feasible for it.
pub struct OversubscribedFootprint {
    /// Machine analyzed against.
    pub machine: Machine,
}

impl Lint for OversubscribedFootprint {
    fn name(&self) -> &'static str {
        "oversubscribed-footprint"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        let ra = analyze_resources(g, &self.machine);
        let cap = total_capacity(self.machine.procs, self.machine.mem_bytes);
        for n in &ra.nodes {
            // Infeasible nodes are memory-infeasible's business.
            if n.demand_bytes > cap {
                continue;
            }
            match n.min_group {
                Some(k) if k > 1 => out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Warning,
                    location: LintLocation::Node(n.node),
                    message: format!(
                        "footprint {} oversubscribes one processor's {}; only groups of \
                         >= {k} processors can hold it",
                        fmt_bytes(n.footprint.total_bytes()),
                        fmt_bytes(self.machine.mem_bytes)
                    ),
                    hint: Some(format!(
                        "the allocator must give this node at least {k} processors; pin the \
                         allocation or raise --mem-mb"
                    )),
                    fix: None,
                }),
                _ => {}
            }
        }
    }
}

/// Warning: a node's local footprint is underivable (placeholder 0x0
/// dims while carrying data transfers in a graph with real dimensions),
/// so the memory analysis under-counts it. Mirrors `loop-metadata`'s
/// exemption for fully synthetic graphs and carries the same
/// [`Fix::DeriveLoopDims`] when the dims are mechanically derivable.
pub struct MissingFootprint;

impl Lint for MissingFootprint {
    fn name(&self) -> &'static str {
        "missing-footprint"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        let any_real =
            g.nodes().any(|(_, n)| !n.is_structural() && n.meta.rows > 0 && n.meta.cols > 0);
        if !any_real {
            return; // fully synthetic: placeholders are the convention
        }
        for (id, node) in g.nodes() {
            if node.is_structural() || (node.meta.rows > 0 && node.meta.cols > 0) {
                continue;
            }
            let fp = node_footprint(g, id);
            if fp.in_bytes + fp.out_bytes <= 1 {
                continue; // moves no real data: nothing to under-count
            }
            let fix = crate::lint::derive_square_dims(g, id).map(|n| Fix::DeriveLoopDims {
                node: id,
                rows: n,
                cols: n,
            });
            out.push(Diagnostic {
                lint: self.name(),
                severity: Severity::Warning,
                location: LintLocation::Node(id),
                message: format!(
                    "local footprint unknown (placeholder 0x0 dims) while the node moves {} \
                     — the memory analysis under-counts its resident set",
                    fmt_bytes(fp.in_bytes + fp.out_bytes)
                ),
                hint: Some(
                    "declare the loop dimensions; --fix derives them from the transfers when \
                     the largest one is a square f64 matrix"
                        .to_string(),
                ),
                fix,
            });
        }
    }
}

/// The three memory lints, parameterized by the machine under analysis.
pub fn memory_lint_set(machine: &Machine) -> LintSet {
    LintSet::default()
        .with(Box::new(MemoryInfeasible { machine: *machine }))
        .with(Box::new(OversubscribedFootprint { machine: *machine }))
        .with(Box::new(MissingFootprint))
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_mdg::{
        complex_matmul_mdg, AmdahlParams, ArrayTransfer, KernelCostTable, LoopClass, LoopMeta,
        MdgBuilder, TransferKind,
    };
    use paradigm_sched::{psa_schedule, PsaConfig};

    fn big_node_graph(n: usize) -> Mdg {
        // One n x n producer feeding one n x n consumer.
        let mut b = MdgBuilder::new("big");
        let a = b.compute_with_meta(
            "a",
            AmdahlParams::new(0.05, 1.0),
            LoopMeta::square(LoopClass::MatrixInit, n),
        );
        let c = b.compute_with_meta(
            "c",
            AmdahlParams::new(0.05, 1.0),
            LoopMeta::square(LoopClass::MatrixAdd, n),
        );
        b.edge(a, c, vec![ArrayTransfer::matrix_1d(n, n)]);
        b.finish().unwrap()
    }

    #[test]
    fn gallery_graph_is_feasible_on_cm5() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(16);
        let ra = analyze_resources(&g, &m);
        assert!(ra.feasible, "{}", ra.render());
        assert!(!ra.widened);
        assert!(ra.peak_interval.0 <= ra.peak_interval.1);
        assert!(ra.total_comm_bytes > 0);
        for n in &ra.nodes {
            assert_eq!(n.min_group, Some(1), "64x64 working sets fit one 32 MiB node");
            assert!(n.interval.0 <= n.interval.1);
            assert!(n.demand_bytes >= n.footprint.total_bytes());
        }
    }

    #[test]
    fn interval_endpoints_scale_with_machine_size() {
        let g = big_node_graph(64);
        let ra4 = analyze_resources(&g, &Machine::cm5(4));
        let ra16 = analyze_resources(&g, &Machine::cm5(16));
        for (a, b) in ra4.nodes.iter().zip(&ra16.nodes) {
            assert!(a.interval.0 > b.interval.0, "lo shrinks as P grows");
            assert_eq!(a.interval.1, b.interval.1, "hi is the q=1 concentration");
        }
    }

    #[test]
    fn oversized_graph_is_proved_infeasible() {
        // 8192 x 8192 f64 = 512 MiB per array; machine holds 4 x 1 MiB.
        let g = big_node_graph(8192);
        let m = Machine::cm5(4).with_mem_bytes(1024 * 1024);
        let ra = analyze_resources(&g, &m);
        assert!(!ra.feasible);
        assert!(ra.infeasible_nodes().next().is_some());
        assert!(ra.render().contains("INFEASIBLE"));
    }

    #[test]
    fn crossing_edges_raise_demand() {
        // a -> b -> c plus a long-lived edge a -> c crossing b.
        let mut b = MdgBuilder::new("crossing");
        let na = b.compute("a", AmdahlParams::new(0.1, 1.0));
        let nb = b.compute("b", AmdahlParams::new(0.1, 1.0));
        let nc = b.compute("c", AmdahlParams::new(0.1, 1.0));
        b.edge(na, nb, vec![ArrayTransfer::new(1000, TransferKind::OneD)]);
        b.edge(nb, nc, vec![ArrayTransfer::new(2000, TransferKind::OneD)]);
        b.edge(na, nc, vec![ArrayTransfer::new(5000, TransferKind::OneD)]);
        let g = b.finish().unwrap();
        let ra = analyze_resources(&g, &Machine::cm5(4));
        // b (node id 2) holds its own 1000-in + 2000-out plus the 5000
        // bytes of a->c which are live across its execution.
        let rb = ra.nodes.iter().find(|n| n.node == NodeId(2)).unwrap();
        assert_eq!(rb.footprint.total_bytes(), 3000);
        assert_eq!(rb.demand_bytes, 8000);
        // a and c do not see a crossing edge (they are endpoints of it).
        let raa = ra.nodes.iter().find(|n| n.node == NodeId(1)).unwrap();
        assert_eq!(raa.demand_bytes, raa.footprint.total_bytes());
    }

    #[test]
    fn schedule_sweep_fits_small_graphs_and_flags_tiny_machines() {
        let g = big_node_graph(64);
        let m = Machine::cm5(4);
        let alloc = paradigm_cost::Allocation::uniform(&g, 2.0);
        let res = psa_schedule(&g, m, &alloc, &PsaConfig::default());
        let sweep = check_schedule_memory(&g, &m, &res.schedule);
        assert!(sweep.fits(), "{:?}", sweep.violations);
        assert!(sweep.peak_bytes > 0.0);

        // Same schedule on 4 KiB nodes cannot hold the 32 KiB arrays.
        let tiny = Machine::cm5(4).with_mem_bytes(4 * 1024);
        let sweep2 = check_schedule_memory(&g, &tiny, &res.schedule);
        assert!(!sweep2.fits());
        assert!(sweep2.violations[0].resident_bytes > 4.0 * 1024.0);
    }

    #[test]
    fn sweep_peak_is_within_static_interval() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(16);
        let alloc = paradigm_cost::Allocation::uniform(&g, 4.0);
        let res = psa_schedule(&g, m, &alloc, &PsaConfig::default());
        let sweep = check_schedule_memory(&g, &m, &res.schedule);
        let ra = analyze_resources(&g, &m);
        assert!(
            sweep.peak_bytes <= ra.peak_interval.1 + 0.5,
            "sweep {} vs static hi {}",
            sweep.peak_bytes,
            ra.peak_interval.1
        );
    }

    #[test]
    fn memory_lints_fire_in_order() {
        let m = Machine::cm5(4).with_mem_bytes(1024 * 1024);
        // Feasible when spread, oversubscribed at q=1: 512x512 = 2 MiB.
        let over = big_node_graph(512);
        let diags = memory_lint_set(&m).run(&over);
        assert!(diags.iter().any(|d| d.lint == "oversubscribed-footprint"));
        assert!(!diags.iter().any(|d| d.lint == "memory-infeasible"));

        let infeasible = big_node_graph(8192);
        let diags = memory_lint_set(&m).run(&infeasible);
        assert!(diags.iter().any(|d| d.lint == "memory-infeasible"));
        assert!(crate::lint::has_errors(&diags));
    }

    #[test]
    fn missing_footprint_fires_on_mixed_graphs_with_fix() {
        let mut b = MdgBuilder::new("mixed");
        let a = b.compute_with_meta(
            "real",
            AmdahlParams::new(0.1, 1.0),
            LoopMeta::square(LoopClass::MatrixInit, 8),
        );
        let c = b.compute("ghost", AmdahlParams::new(0.1, 1.0));
        b.edge(a, c, vec![ArrayTransfer::matrix_1d(8, 8)]);
        let g = b.finish().unwrap();
        let diags = memory_lint_set(&Machine::cm5(4)).run(&g);
        let d = diags.iter().find(|d| d.lint == "missing-footprint").unwrap();
        assert!(matches!(d.fix, Some(Fix::DeriveLoopDims { rows: 8, cols: 8, .. })));

        // Applying the fix silences the lint.
        let (fixed, _) = crate::lint::apply_fixes(&g, &diags);
        let diags2 = memory_lint_set(&Machine::cm5(4)).run(&fixed);
        assert!(!diags2.iter().any(|d| d.lint == "missing-footprint"));
    }

    #[test]
    fn fully_synthetic_graphs_are_exempt_from_missing_footprint() {
        let g = paradigm_mdg::example_fig1_mdg();
        let diags = memory_lint_set(&Machine::cm5(4)).run(&g);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
