//! A minimal unified-diff renderer for `analyze --fix`.
//!
//! The fix pipeline rebuilds a repaired graph and shows the operator
//! what `--fix --write` would change by diffing the `.mdg` text
//! renderings of the original and repaired graphs. Graphs are small
//! (tens of lines), so a quadratic LCS table is the simplest correct
//! choice; hunks carry the standard three lines of context.

/// One edit-script step over lines of the two inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Line present in both (index into `a`).
    Keep(usize),
    /// Line removed from `a` (index into `a`).
    Del(usize),
    /// Line added from `b` (index into `b`).
    Add(usize),
}

fn edit_script(a: &[&str], b: &[&str]) -> Vec<Op> {
    // lcs[i][j] = LCS length of a[i..] and b[j..].
    let (n, m) = (a.len(), b.len());
    let mut lcs = vec![vec![0usize; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] =
                if a[i] == b[j] { lcs[i + 1][j + 1] + 1 } else { lcs[i + 1][j].max(lcs[i][j + 1]) };
        }
    }
    let mut ops = Vec::with_capacity(n.max(m));
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            ops.push(Op::Keep(i));
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            ops.push(Op::Del(i));
            i += 1;
        } else {
            ops.push(Op::Add(j));
            j += 1;
        }
    }
    ops.extend((i..n).map(Op::Del));
    ops.extend((j..m).map(Op::Add));
    ops
}

/// Render a unified diff (`---`/`+++` headers, `@@` hunks, 3 context
/// lines) between two texts. Returns the empty string when the texts
/// are identical.
pub fn unified_diff(a_label: &str, a: &str, b_label: &str, b: &str) -> String {
    if a == b {
        return String::new();
    }
    let a_lines: Vec<&str> = a.lines().collect();
    let b_lines: Vec<&str> = b.lines().collect();
    let ops = edit_script(&a_lines, &b_lines);

    const CTX: usize = 3;
    // Group ops into hunks: runs of changes padded by CTX keeps.
    let change_idx: Vec<usize> = ops
        .iter()
        .enumerate()
        .filter(|(_, op)| !matches!(op, Op::Keep(_)))
        .map(|(k, _)| k)
        .collect();

    let mut out = format!("--- {a_label}\n+++ {b_label}\n");
    let mut hunk_start = 0usize;
    while hunk_start < change_idx.len() {
        // Extend the hunk while consecutive changes are within 2*CTX.
        let mut hunk_end = hunk_start;
        while hunk_end + 1 < change_idx.len()
            && change_idx[hunk_end + 1] - change_idx[hunk_end] <= 2 * CTX
        {
            hunk_end += 1;
        }
        let lo = change_idx[hunk_start].saturating_sub(CTX);
        let hi = (change_idx[hunk_end] + CTX + 1).min(ops.len());

        // Hunk header positions are 1-based: one past the number of
        // lines each side consumed before the hunk.
        let a_start =
            1 + ops[..lo].iter().filter(|op| matches!(op, Op::Keep(_) | Op::Del(_))).count();
        let b_start =
            1 + ops[..lo].iter().filter(|op| matches!(op, Op::Keep(_) | Op::Add(_))).count();
        let a_count =
            ops[lo..hi].iter().filter(|op| matches!(op, Op::Keep(_) | Op::Del(_))).count();
        let b_count =
            ops[lo..hi].iter().filter(|op| matches!(op, Op::Keep(_) | Op::Add(_))).count();

        out.push_str(&format!("@@ -{a_start},{a_count} +{b_start},{b_count} @@\n"));
        for op in &ops[lo..hi] {
            match op {
                Op::Keep(i) => {
                    out.push(' ');
                    out.push_str(a_lines[*i]);
                }
                Op::Del(i) => {
                    out.push('-');
                    out.push_str(a_lines[*i]);
                }
                Op::Add(j) => {
                    out.push('+');
                    out.push_str(b_lines[*j]);
                }
            }
            out.push('\n');
        }
        hunk_start = hunk_end + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_diff_to_nothing() {
        assert_eq!(unified_diff("a", "x\ny\n", "b", "x\ny\n"), "");
    }

    #[test]
    fn single_line_change_renders_one_hunk() {
        let a = "one\ntwo\nthree\nfour\nfive\nsix\nseven\n";
        let b = "one\ntwo\nthree\nFOUR\nfive\nsix\nseven\n";
        let d = unified_diff("old", a, "new", b);
        assert!(d.starts_with("--- old\n+++ new\n"), "{d}");
        assert!(d.contains("-four\n"), "{d}");
        assert!(d.contains("+FOUR\n"), "{d}");
        assert!(d.contains("@@ -1,7 +1,7 @@"), "{d}");
        assert_eq!(d.matches("@@").count(), 2, "one hunk: {d}");
    }

    #[test]
    fn distant_changes_split_into_hunks() {
        let mid = (0..20).map(|i| format!("line{i}\n")).collect::<String>();
        let a = format!("alpha\n{mid}omega\n");
        let b = format!("ALPHA\n{mid}OMEGA\n");
        let d = unified_diff("old", &a, "new", &b);
        assert_eq!(d.matches("@@").count(), 4, "two hunks: {d}");
        assert!(d.contains("-alpha\n+ALPHA\n"), "{d}");
        assert!(d.contains("-omega\n+OMEGA\n"), "{d}");
    }

    #[test]
    fn pure_insertion_and_deletion() {
        let d = unified_diff("old", "a\nb\n", "new", "a\nx\nb\n");
        assert!(d.contains("+x\n"), "{d}");
        let d2 = unified_diff("old", "a\nx\nb\n", "new", "a\nb\n");
        assert!(d2.contains("-x\n"), "{d2}");
    }

    #[test]
    fn mdg_text_round_trip_diff_is_plausible() {
        use paradigm_mdg::{to_text, AmdahlParams, MdgBuilder};
        let mut b1 = MdgBuilder::new("g");
        b1.compute("n", AmdahlParams { alpha: 1.5, tau: 1.0 });
        let g1 = b1.finish().unwrap();
        let mut b2 = MdgBuilder::new("g");
        b2.compute("n", AmdahlParams::new(1.0, 1.0));
        let g2 = b2.finish().unwrap();
        let d = unified_diff("g.mdg", &to_text(&g1), "g.mdg (fixed)", &to_text(&g2));
        assert!(d.contains("alpha=1.5") && d.contains("alpha=1"), "{d}");
    }
}
