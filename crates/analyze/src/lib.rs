//! # paradigm-analyze — static analysis for the PARADIGM pipeline
//!
//! Three independent passes that check, rather than compute, the
//! pipeline's load-bearing claims:
//!
//! * [`posynomial`] — **symbolic convexity certification**. Walks the
//!   solver's expression IR and proves each expression is a monomial /
//!   posynomial / generalized posynomial (returning the derivation tree),
//!   or produces the minimal counterexample path. [`certify_objective`]
//!   extends this compositionally to the full `Phi = max(A_p, C_p)`
//!   objective through the completion recurrence, which is the paper's
//!   Section 2 convexity claim made machine-checkable.
//! * [`schedule_check`] — **schedule race/precedence analysis**. A
//!   structured, report-everything validator for [`paradigm_sched`]
//!   schedules: sweep-line race detection per processor, precedence with
//!   network delays, allocation/duration consistency, and a cross-check
//!   of the reported makespan against the re-derived `y_i` recurrence.
//! * [`lint`] — **MDG lints**. Pluggable diagnostics over graph cost
//!   metadata (degenerate Amdahl fractions, NaN weights, shape
//!   mismatches, ...) with compiler-style rendering.
//! * [`resources`] — **static resource analysis**. Sound interval bounds
//!   on per-processor peak resident memory and total communication
//!   volume, pre-schedule (over every allocation) and post-schedule
//!   (sweep-line over the PSA schedule), plus the memory lints
//!   (`memory-infeasible`, `oversubscribed-footprint`,
//!   `missing-footprint`).
//!
//! The passes are pure functions over the existing data structures; they
//! are wired into `paradigm front` lowering, `paradigm-core`'s compile
//! pipeline (under `debug_assertions`), and the `paradigm analyze` CLI
//! subcommand.

pub mod cert;
pub mod diff;
pub mod lint;
pub mod posynomial;
pub mod resources;
pub mod schedule_check;

pub use cert::{
    certificate_dot, certificate_json, certificate_json_with_tier, check_certificate,
    check_certificate_text, memory_json, CertDefect, CertFailure, CertPart, CertSummary,
    CERT_VERSION,
};
pub use diff::unified_diff;
pub use lint::{
    apply_fixes, find_cycle, has_errors, lint_mdg, render_diagnostics, Diagnostic, Fix, Lint,
    LintLocation, LintSet, Severity,
};
pub use posynomial::{
    certify, certify_in, certify_objective, Certificate, Defect, ExprClass, NonPosynomial,
    ObjectiveCertificate, ObjectiveCounterexample, ObjectivePart, Rule,
};
pub use resources::{
    analyze_resources, check_schedule_memory, memory_lint_set, MemoryInfeasible, MemorySweep,
    MemoryViolation, MissingFootprint, NodeResidency, OversubscribedFootprint, ResourceAnalysis,
    MEM_RTOL,
};
pub use schedule_check::{
    analyze_schedule, AuditClaims, AuditReport, AuditViolation, ScheduleAuditor, ScheduleReport,
    ScheduleViolation,
};
