//! A pluggable lint framework for Macro Dataflow Graphs.
//!
//! MDGs reach the pipeline from several producers — the hand-written
//! builders, the `.mdg` text parser, the mini-language front end, graph
//! transforms — and the structural invariants `MdgBuilder::finish`
//! enforces (acyclicity, START/STOP wiring) say nothing about the *cost
//! metadata* riding on nodes and edges. A graph with `alpha = 1.7` or a
//! NaN `tau` sails through construction and silently poisons the convex
//! program. Each [`Lint`] inspects one such property and emits
//! [`Diagnostic`]s with a severity, a node/edge location, and a fix
//! hint; [`render_diagnostics`] prints them compiler-style.
//!
//! [`LintSet::default_set`] bundles the built-in lints; callers can add
//! their own by implementing [`Lint`] and pushing it onto the set.

use paradigm_mdg::{EdgeId, Mdg, NodeId, NodeKind};
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth a look, harmless to the pipeline.
    Note,
    /// Suspicious: likely a modelling mistake, pipeline still sound.
    Warning,
    /// Broken: the cost model or solver will misbehave on this graph.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// What part of the graph a diagnostic points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLocation {
    /// The graph as a whole.
    Graph,
    /// One node.
    Node(NodeId),
    /// One edge.
    Edge(EdgeId),
}

/// One finding from one lint.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The lint's kebab-case name (stable, greppable).
    pub lint: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// Where it is.
    pub location: LintLocation,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the lint knows.
    pub hint: Option<String>,
}

/// A single diagnostic pass over an MDG.
pub trait Lint {
    /// Stable kebab-case name, used in rendered output (`error[name]`).
    fn name(&self) -> &'static str;
    /// Inspect `g` and append findings to `out`.
    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>);
}

/// An ordered collection of lints run as one pass.
#[derive(Default)]
pub struct LintSet {
    lints: Vec<Box<dyn Lint>>,
}

impl LintSet {
    /// The built-in lints, in severity-descending order of importance.
    pub fn default_set() -> Self {
        LintSet {
            lints: vec![
                Box::new(UnreachableNode),
                Box::new(NonFiniteWeight),
                Box::new(DegenerateAmdahl),
                Box::new(StructuralTransfer),
                Box::new(RedistributionMismatch),
                Box::new(ZeroTau),
                Box::new(IsolatedNode),
            ],
        }
    }

    /// Add a custom lint.
    pub fn with(mut self, lint: Box<dyn Lint>) -> Self {
        self.lints.push(lint);
        self
    }

    /// Names of the registered lints, in run order.
    pub fn names(&self) -> Vec<&'static str> {
        self.lints.iter().map(|l| l.name()).collect()
    }

    /// Run every lint over `g`.
    pub fn run(&self, g: &Mdg) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for l in &self.lints {
            l.check(g, &mut out);
        }
        out
    }
}

/// Run the default lint set over a graph.
pub fn lint_mdg(g: &Mdg) -> Vec<Diagnostic> {
    LintSet::default_set().run(g)
}

/// True when any diagnostic is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Render diagnostics compiler-style:
///
/// ```text
/// warning[zero-tau]: compute node has zero sequential time
///   --> `cmm`, node n3 (M1 = Ar*Br)
///   help: measure the loop or fold the node into a neighbour
/// ```
pub fn render_diagnostics(g: &Mdg, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!("{}[{}]: {}\n", d.severity, d.lint, d.message));
        match d.location {
            LintLocation::Graph => {
                out.push_str(&format!("  --> `{}`\n", g.name()));
            }
            LintLocation::Node(id) => {
                out.push_str(&format!("  --> `{}`, node {id} ({})\n", g.name(), g.node(id).name));
            }
            LintLocation::Edge(eid) => {
                let e = g.edge(eid);
                out.push_str(&format!("  --> `{}`, edge n{} -> n{}\n", g.name(), e.src, e.dst));
            }
        }
        if let Some(h) = &d.hint {
            out.push_str(&format!("  help: {h}\n"));
        }
    }
    if !diags.is_empty() {
        let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
        let warns = diags.iter().filter(|d| d.severity == Severity::Warning).count();
        out.push_str(&format!(
            "{} diagnostic(s): {} error(s), {} warning(s)\n",
            diags.len(),
            errors,
            warns
        ));
    }
    out
}

/// Compute node not reachable from START or not reaching STOP. The
/// builder wires both directions, so a hit means the graph bypassed it.
pub struct UnreachableNode;

impl Lint for UnreachableNode {
    fn name(&self) -> &'static str {
        "unreachable-node"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        for (id, node) in g.nodes() {
            if node.is_structural() {
                continue;
            }
            let from_start = g.reaches(g.start(), id);
            let to_stop = g.reaches(id, g.stop());
            if !from_start || !to_stop {
                let dir =
                    if !from_start { "is unreachable from START" } else { "never reaches STOP" };
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Error,
                    location: LintLocation::Node(id),
                    message: format!("compute node {dir}"),
                    hint: Some("rebuild the graph through MdgBuilder::finish".to_string()),
                });
            }
        }
    }
}

/// NaN/infinite `alpha` or `tau`, or negative `tau`: every downstream
/// cost is garbage.
pub struct NonFiniteWeight;

impl Lint for NonFiniteWeight {
    fn name(&self) -> &'static str {
        "nonfinite-weight"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        for (id, node) in g.nodes() {
            let c = node.cost;
            if !c.tau.is_finite() || c.tau < 0.0 || !c.alpha.is_finite() {
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Error,
                    location: LintLocation::Node(id),
                    message: format!(
                        "cost parameters are not finite non-negative (alpha = {}, tau = {})",
                        c.alpha, c.tau
                    ),
                    hint: Some(
                        "construct costs via AmdahlParams::new, which validates".to_string(),
                    ),
                });
            }
        }
    }
}

/// Serial fraction outside `[0, 1]`: Amdahl's law loses its meaning and
/// the monomial coefficients `alpha*tau`, `(1-alpha)*tau` of Eq. (1) go
/// negative — the objective stops being a posynomial.
pub struct DegenerateAmdahl;

impl Lint for DegenerateAmdahl {
    fn name(&self) -> &'static str {
        "degenerate-amdahl"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        for (id, node) in g.nodes() {
            let a = node.cost.alpha;
            if a.is_finite() && !(0.0..=1.0).contains(&a) {
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Error,
                    location: LintLocation::Node(id),
                    message: format!("serial fraction alpha = {a} lies outside [0, 1]"),
                    hint: Some(
                        "alpha is the Amdahl serial fraction; refit the node's cost model"
                            .to_string(),
                    ),
                });
            }
        }
    }
}

/// Data transfers on a START/STOP edge: the objective assumes structural
/// edges carry none (their variables must not appear in any cost term).
pub struct StructuralTransfer;

impl Lint for StructuralTransfer {
    fn name(&self) -> &'static str {
        "structural-transfer"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        for (eid, e) in g.edges() {
            let touches_structural =
                g.node(NodeId(e.src)).is_structural() || g.node(NodeId(e.dst)).is_structural();
            if touches_structural && !e.transfers.is_empty() {
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Error,
                    location: LintLocation::Edge(eid),
                    message: "START/STOP edge carries array transfers".to_string(),
                    hint: Some("move the transfer onto a compute-to-compute edge".to_string()),
                });
            }
        }
    }
}

/// A transfer claims more bytes than the producing node's declared
/// matrix holds — the redistribution shape and the kernel metadata
/// disagree.
pub struct RedistributionMismatch;

impl Lint for RedistributionMismatch {
    fn name(&self) -> &'static str {
        "redistribution-mismatch"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        for (eid, e) in g.edges() {
            let src = g.node(NodeId(e.src));
            // Allow up to 16 bytes per element (complex double, the
            // widest element the kernels move) before calling a shape
            // mismatch, so complex-valued producers don't false-alarm.
            let declared = (src.meta.rows * src.meta.cols) as u64 * 16;
            if declared == 0 {
                continue; // synthetic metadata: nothing to check against
            }
            for t in &e.transfers {
                if t.bytes > declared {
                    out.push(Diagnostic {
                        lint: self.name(),
                        severity: Severity::Warning,
                        location: LintLocation::Edge(eid),
                        message: format!(
                            "transfer of {} bytes exceeds the {}x{} matrix ({declared} bytes at 16 B/element) its producer declares",
                            t.bytes, src.meta.rows, src.meta.cols
                        ),
                        hint: Some(
                            "check the ArrayTransfer size against the producer's LoopMeta"
                                .to_string(),
                        ),
                    });
                }
            }
        }
    }
}

/// Compute node with `tau == 0`: it costs nothing under any allocation,
/// so it is either a placeholder or a missing measurement.
pub struct ZeroTau;

impl Lint for ZeroTau {
    fn name(&self) -> &'static str {
        "zero-tau"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        for (id, node) in g.nodes() {
            if node.kind == NodeKind::Compute && node.cost.tau == 0.0 {
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Warning,
                    location: LintLocation::Node(id),
                    message: "compute node has zero sequential time".to_string(),
                    hint: Some("measure the loop, or fuse the node into a neighbour".to_string()),
                });
            }
        }
    }
}

/// Compute node whose only neighbours are START and STOP: it takes part
/// in no dataflow, which is legal but usually means a lost edge.
pub struct IsolatedNode;

impl Lint for IsolatedNode {
    fn name(&self) -> &'static str {
        "isolated-node"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        for (id, node) in g.nodes() {
            if node.is_structural() {
                continue;
            }
            let lonely = g.preds(id).all(|p| g.node(p).is_structural())
                && g.succs(id).all(|s| g.node(s).is_structural());
            // A single-node graph is legitimately lonely.
            if lonely && g.compute_node_count() > 1 {
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Note,
                    location: LintLocation::Node(id),
                    message: "compute node exchanges no data with any other compute node"
                        .to_string(),
                    hint: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_mdg::{
        complex_matmul_mdg, example_fig1_mdg, AmdahlParams, ArrayTransfer, KernelCostTable,
        LoopClass, LoopMeta, MdgBuilder, TransferKind,
    };

    #[test]
    fn clean_graphs_produce_no_errors() {
        for g in [example_fig1_mdg(), complex_matmul_mdg(64, &KernelCostTable::cm5())] {
            let diags = lint_mdg(&g);
            assert!(!has_errors(&diags), "{}", render_diagnostics(&g, &diags));
        }
    }

    #[test]
    fn degenerate_alpha_is_an_error() {
        let mut b = MdgBuilder::new("bad-alpha");
        // Bypass AmdahlParams::new's validation via the public fields —
        // exactly the hole the lint exists to catch.
        b.compute("ok", AmdahlParams::new(0.5, 1.0));
        b.compute("bad", AmdahlParams { alpha: 1.7, tau: 1.0 });
        let g = b.finish().unwrap();
        let diags = lint_mdg(&g);
        assert!(has_errors(&diags));
        let d = diags.iter().find(|d| d.lint == "degenerate-amdahl").unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert!(matches!(d.location, LintLocation::Node(NodeId(2))));
        assert!(d.message.contains("1.7"));
    }

    #[test]
    fn nonfinite_and_negative_weights_are_errors() {
        let mut b = MdgBuilder::new("bad-weights");
        b.compute("nan-tau", AmdahlParams { alpha: 0.1, tau: f64::NAN });
        b.compute("neg-tau", AmdahlParams { alpha: 0.1, tau: -2.0 });
        b.compute("inf-alpha", AmdahlParams { alpha: f64::INFINITY, tau: 1.0 });
        let g = b.finish().unwrap();
        let hits: Vec<_> =
            lint_mdg(&g).into_iter().filter(|d| d.lint == "nonfinite-weight").collect();
        assert_eq!(hits.len(), 3, "{hits:?}");
        assert!(hits.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn zero_tau_is_a_warning_not_error() {
        let mut b = MdgBuilder::new("zero");
        b.compute("empty", AmdahlParams::new(0.0, 0.0));
        b.compute("real", AmdahlParams::new(0.1, 1.0));
        let g = b.finish().unwrap();
        let diags = lint_mdg(&g);
        assert!(!has_errors(&diags));
        assert!(diags.iter().any(|d| d.lint == "zero-tau" && d.severity == Severity::Warning));
    }

    #[test]
    fn oversized_transfer_is_flagged() {
        let mut b = MdgBuilder::new("oversized");
        let a = b.compute_with_meta(
            "a",
            AmdahlParams::new(0.1, 1.0),
            LoopMeta::square(LoopClass::MatrixInit, 8), // 8x8 f64 = 512 bytes
        );
        let c = b.compute("c", AmdahlParams::new(0.1, 1.0));
        b.edge(a, c, vec![ArrayTransfer::new(4096, TransferKind::OneD)]);
        let g = b.finish().unwrap();
        let diags = lint_mdg(&g);
        let d = diags.iter().find(|d| d.lint == "redistribution-mismatch").unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(matches!(d.location, LintLocation::Edge(_)));
        assert!(d.message.contains("4096"));
    }

    #[test]
    fn isolated_node_is_a_note() {
        let mut b = MdgBuilder::new("island");
        let a = b.compute("a", AmdahlParams::new(0.1, 1.0));
        let c = b.compute("c", AmdahlParams::new(0.1, 1.0));
        b.edge(a, c, vec![]);
        b.compute("loner", AmdahlParams::new(0.1, 1.0));
        let g = b.finish().unwrap();
        let diags = lint_mdg(&g);
        let d = diags.iter().find(|d| d.lint == "isolated-node").unwrap();
        assert_eq!(d.severity, Severity::Note);
    }

    #[test]
    fn single_node_graph_is_not_isolated() {
        let mut b = MdgBuilder::new("solo");
        b.compute("only", AmdahlParams::new(0.1, 1.0));
        let g = b.finish().unwrap();
        assert!(lint_mdg(&g).iter().all(|d| d.lint != "isolated-node"));
    }

    #[test]
    fn custom_lints_compose() {
        struct NameLint;
        impl Lint for NameLint {
            fn name(&self) -> &'static str {
                "graph-name"
            }
            fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
                if g.name().is_empty() {
                    out.push(Diagnostic {
                        lint: self.name(),
                        severity: Severity::Note,
                        location: LintLocation::Graph,
                        message: "graph has no name".to_string(),
                        hint: None,
                    });
                }
            }
        }
        let set = LintSet::default_set().with(Box::new(NameLint));
        assert!(set.names().contains(&"graph-name"));
        let mut b = MdgBuilder::new("");
        b.compute("x", AmdahlParams::new(0.1, 1.0));
        let g = b.finish().unwrap();
        assert!(set.run(&g).iter().any(|d| d.lint == "graph-name"));
    }

    #[test]
    fn rendering_is_compiler_style() {
        let mut b = MdgBuilder::new("r");
        b.compute("bad", AmdahlParams { alpha: -0.5, tau: 1.0 });
        let g = b.finish().unwrap();
        let diags = lint_mdg(&g);
        let txt = render_diagnostics(&g, &diags);
        assert!(txt.contains("error[degenerate-amdahl]"), "{txt}");
        assert!(txt.contains("--> `r`, node n1 (bad)"), "{txt}");
        assert!(txt.contains("help:"), "{txt}");
        assert!(txt.contains("error(s)"), "{txt}");
        assert!(render_diagnostics(&g, &[]).is_empty());
    }
}
