//! A pluggable lint framework for Macro Dataflow Graphs.
//!
//! MDGs reach the pipeline from several producers — the hand-written
//! builders, the `.mdg` text parser, the mini-language front end, graph
//! transforms — and the structural invariants `MdgBuilder::finish`
//! enforces (acyclicity, START/STOP wiring) say nothing about the *cost
//! metadata* riding on nodes and edges. A graph with `alpha = 1.7` or a
//! NaN `tau` sails through construction and silently poisons the convex
//! program. Each [`Lint`] inspects one such property and emits
//! [`Diagnostic`]s with a severity, a node/edge location, and a fix
//! hint; [`render_diagnostics`] prints them compiler-style.
//!
//! [`LintSet::default_set`] bundles the built-in lints; callers can add
//! their own by implementing [`Lint`] and pushing it onto the set.
//!
//! Some diagnostics carry a machine-applicable [`Fix`];
//! [`apply_fixes`] rebuilds the graph with every attached fix applied
//! (clamped Amdahl parameters, stripped structural transfers, ...),
//! which backs the CLI's `analyze --fix` mode.

use paradigm_mdg::graph::builder_id_to_mdg;
use paradigm_mdg::{EdgeId, Mdg, MdgBuilder, NodeId, NodeKind, TransferKind};
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth a look, harmless to the pipeline.
    Note,
    /// Suspicious: likely a modelling mistake, pipeline still sound.
    Warning,
    /// Broken: the cost model or solver will misbehave on this graph.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// What part of the graph a diagnostic points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLocation {
    /// The graph as a whole.
    Graph,
    /// One node.
    Node(NodeId),
    /// One edge.
    Edge(EdgeId),
}

/// A machine-applicable repair for one diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub enum Fix {
    /// Clamp a node's serial fraction into `[0, 1]`.
    ClampAlpha {
        /// The node to repair.
        node: NodeId,
        /// The clamped value.
        to: f64,
    },
    /// Clamp a node's negative sequential time.
    ClampTau {
        /// The node to repair.
        node: NodeId,
        /// The clamped value.
        to: f64,
    },
    /// Remove every array transfer from a structural (START/STOP) edge.
    StripStructuralTransfers {
        /// The edge to strip.
        edge: EdgeId,
    },
    /// Remove zero-byte array transfers from an edge.
    DropEmptyTransfers {
        /// The edge to clean.
        edge: EdgeId,
    },
    /// Fill a placeholder (0x0) loop descriptor with dimensions derived
    /// from the node's largest incident transfer.
    DeriveLoopDims {
        /// The node to repair.
        node: NodeId,
        /// Derived row count.
        rows: usize,
        /// Derived column count.
        cols: usize,
    },
}

impl fmt::Display for Fix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fix::ClampAlpha { node, to } => write!(f, "clamp alpha of node {node} to {to}"),
            Fix::ClampTau { node, to } => write!(f, "clamp tau of node {node} to {to}"),
            Fix::StripStructuralTransfers { edge } => {
                write!(f, "strip transfers from structural edge e{}", edge.0)
            }
            Fix::DropEmptyTransfers { edge } => {
                write!(f, "drop zero-byte transfers from edge e{}", edge.0)
            }
            Fix::DeriveLoopDims { node, rows, cols } => {
                write!(f, "derive {rows}x{cols} loop dims for node {node} from its transfers")
            }
        }
    }
}

/// One finding from one lint.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The lint's kebab-case name (stable, greppable).
    pub lint: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// Where it is.
    pub location: LintLocation,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the lint knows.
    pub hint: Option<String>,
    /// A mechanical repair, when one exists ([`apply_fixes`]).
    pub fix: Option<Fix>,
}

/// A single diagnostic pass over an MDG.
pub trait Lint {
    /// Stable kebab-case name, used in rendered output (`error[name]`).
    fn name(&self) -> &'static str;
    /// Inspect `g` and append findings to `out`.
    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>);
}

/// An ordered collection of lints run as one pass.
#[derive(Default)]
pub struct LintSet {
    lints: Vec<Box<dyn Lint>>,
}

impl LintSet {
    /// The built-in lints, in severity-descending order of importance.
    pub fn default_set() -> Self {
        LintSet {
            lints: vec![
                Box::new(UnreachableNode),
                Box::new(CyclicDependency),
                Box::new(NonFiniteWeight),
                Box::new(DegenerateAmdahl),
                Box::new(AmdahlMonotonicity),
                Box::new(StructuralTransfer),
                Box::new(RedistributionMismatch),
                Box::new(LoopMetadata),
                Box::new(TransferShape),
                Box::new(EdgeUnitSanity),
                Box::new(ZeroTau),
                Box::new(IsolatedNode),
            ],
        }
    }

    /// Add a custom lint.
    pub fn with(mut self, lint: Box<dyn Lint>) -> Self {
        self.lints.push(lint);
        self
    }

    /// Names of the registered lints, in run order.
    pub fn names(&self) -> Vec<&'static str> {
        self.lints.iter().map(|l| l.name()).collect()
    }

    /// Run every lint over `g`.
    pub fn run(&self, g: &Mdg) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for l in &self.lints {
            l.check(g, &mut out);
        }
        out
    }
}

/// Run the default lint set over a graph.
pub fn lint_mdg(g: &Mdg) -> Vec<Diagnostic> {
    LintSet::default_set().run(g)
}

/// True when any diagnostic is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Render diagnostics compiler-style:
///
/// ```text
/// warning[zero-tau]: compute node has zero sequential time
///   --> `cmm`, node n3 (M1 = Ar*Br)
///   help: measure the loop or fold the node into a neighbour
/// ```
pub fn render_diagnostics(g: &Mdg, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!("{}[{}]: {}\n", d.severity, d.lint, d.message));
        match d.location {
            LintLocation::Graph => {
                out.push_str(&format!("  --> `{}`\n", g.name()));
            }
            LintLocation::Node(id) => {
                out.push_str(&format!("  --> `{}`, node {id} ({})\n", g.name(), g.node(id).name));
            }
            LintLocation::Edge(eid) => {
                let e = g.edge(eid);
                out.push_str(&format!("  --> `{}`, edge n{} -> n{}\n", g.name(), e.src, e.dst));
            }
        }
        if let Some(h) = &d.hint {
            out.push_str(&format!("  help: {h}\n"));
        }
        if let Some(fx) = &d.fix {
            out.push_str(&format!("  fix: {fx} (mechanical; apply with --fix)\n"));
        }
    }
    if !diags.is_empty() {
        let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
        let warns = diags.iter().filter(|d| d.severity == Severity::Warning).count();
        out.push_str(&format!(
            "{} diagnostic(s): {} error(s), {} warning(s)\n",
            diags.len(),
            errors,
            warns
        ));
    }
    out
}

/// Compute node not reachable from START or not reaching STOP. The
/// builder wires both directions, so a hit means the graph bypassed it.
pub struct UnreachableNode;

impl Lint for UnreachableNode {
    fn name(&self) -> &'static str {
        "unreachable-node"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        for (id, node) in g.nodes() {
            if node.is_structural() {
                continue;
            }
            let from_start = g.reaches(g.start(), id);
            let to_stop = g.reaches(id, g.stop());
            if !from_start || !to_stop {
                let dir =
                    if !from_start { "is unreachable from START" } else { "never reaches STOP" };
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Error,
                    location: LintLocation::Node(id),
                    message: format!("compute node {dir}"),
                    hint: Some("rebuild the graph through MdgBuilder::finish".to_string()),
                    fix: None,
                });
            }
        }
    }
}

/// NaN/infinite `alpha` or `tau`, or negative `tau`: every downstream
/// cost is garbage.
pub struct NonFiniteWeight;

impl Lint for NonFiniteWeight {
    fn name(&self) -> &'static str {
        "nonfinite-weight"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        for (id, node) in g.nodes() {
            let c = node.cost;
            if !c.tau.is_finite() || c.tau < 0.0 || !c.alpha.is_finite() {
                // A finite negative tau has a mechanical repair; NaN or
                // infinite parameters need a real measurement instead.
                let fix = (c.tau.is_finite() && c.tau < 0.0 && c.alpha.is_finite())
                    .then_some(Fix::ClampTau { node: id, to: 0.0 });
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Error,
                    location: LintLocation::Node(id),
                    message: format!(
                        "cost parameters are not finite non-negative (alpha = {}, tau = {})",
                        c.alpha, c.tau
                    ),
                    hint: Some(
                        "construct costs via AmdahlParams::new, which validates".to_string(),
                    ),
                    fix,
                });
            }
        }
    }
}

/// Serial fraction outside `[0, 1]`: Amdahl's law loses its meaning and
/// the monomial coefficients `alpha*tau`, `(1-alpha)*tau` of Eq. (1) go
/// negative — the objective stops being a posynomial.
pub struct DegenerateAmdahl;

impl Lint for DegenerateAmdahl {
    fn name(&self) -> &'static str {
        "degenerate-amdahl"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        for (id, node) in g.nodes() {
            let a = node.cost.alpha;
            if a.is_finite() && !(0.0..=1.0).contains(&a) {
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Error,
                    location: LintLocation::Node(id),
                    message: format!("serial fraction alpha = {a} lies outside [0, 1]"),
                    hint: Some(
                        "alpha is the Amdahl serial fraction; refit the node's cost model"
                            .to_string(),
                    ),
                    fix: Some(Fix::ClampAlpha { node: id, to: a.clamp(0.0, 1.0) }),
                });
            }
        }
    }
}

/// Data transfers on a START/STOP edge: the objective assumes structural
/// edges carry none (their variables must not appear in any cost term).
pub struct StructuralTransfer;

impl Lint for StructuralTransfer {
    fn name(&self) -> &'static str {
        "structural-transfer"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        for (eid, e) in g.edges() {
            let touches_structural =
                g.node(NodeId(e.src)).is_structural() || g.node(NodeId(e.dst)).is_structural();
            if touches_structural && !e.transfers.is_empty() {
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Error,
                    location: LintLocation::Edge(eid),
                    message: "START/STOP edge carries array transfers".to_string(),
                    hint: Some("move the transfer onto a compute-to-compute edge".to_string()),
                    fix: Some(Fix::StripStructuralTransfers { edge: eid }),
                });
            }
        }
    }
}

/// A transfer claims more bytes than the producing node's declared
/// matrix holds — the redistribution shape and the kernel metadata
/// disagree.
pub struct RedistributionMismatch;

impl Lint for RedistributionMismatch {
    fn name(&self) -> &'static str {
        "redistribution-mismatch"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        for (eid, e) in g.edges() {
            let src = g.node(NodeId(e.src));
            // Allow up to 16 bytes per element (complex double, the
            // widest element the kernels move) before calling a shape
            // mismatch, so complex-valued producers don't false-alarm.
            let declared = (src.meta.rows * src.meta.cols) as u64 * 16;
            if declared == 0 {
                continue; // synthetic metadata: nothing to check against
            }
            for t in &e.transfers {
                if t.bytes > declared {
                    out.push(Diagnostic {
                        lint: self.name(),
                        severity: Severity::Warning,
                        location: LintLocation::Edge(eid),
                        message: format!(
                            "transfer of {} bytes exceeds the {}x{} matrix ({declared} bytes at 16 B/element) its producer declares",
                            t.bytes, src.meta.rows, src.meta.cols
                        ),
                        hint: Some(
                            "check the ArrayTransfer size against the producer's LoopMeta"
                                .to_string(),
                        ),
                        fix: None,
                    });
                }
            }
        }
    }
}

/// Compute node with `tau == 0`: it costs nothing under any allocation,
/// so it is either a placeholder or a missing measurement.
pub struct ZeroTau;

impl Lint for ZeroTau {
    fn name(&self) -> &'static str {
        "zero-tau"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        for (id, node) in g.nodes() {
            if node.kind == NodeKind::Compute && node.cost.tau == 0.0 {
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Warning,
                    location: LintLocation::Node(id),
                    message: "compute node has zero sequential time".to_string(),
                    hint: Some("measure the loop, or fuse the node into a neighbour".to_string()),
                    fix: None,
                });
            }
        }
    }
}

/// Compute node whose only neighbours are START and STOP: it takes part
/// in no dataflow, which is legal but usually means a lost edge.
pub struct IsolatedNode;

impl Lint for IsolatedNode {
    fn name(&self) -> &'static str {
        "isolated-node"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        for (id, node) in g.nodes() {
            if node.is_structural() {
                continue;
            }
            let lonely = g.preds(id).all(|p| g.node(p).is_structural())
                && g.succs(id).all(|s| g.node(s).is_structural());
            // A single-node graph is legitimately lonely.
            if lonely && g.compute_node_count() > 1 {
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Note,
                    location: LintLocation::Node(id),
                    message: "compute node exchanges no data with any other compute node"
                        .to_string(),
                    hint: None,
                    fix: None,
                });
            }
        }
    }
}

/// A directed cycle among compute nodes. `MdgBuilder::finish` rejects
/// cyclic graphs, so on graphs built through it this lint is a no-op;
/// it guards MDGs arriving from other producers (deserializers, future
/// transforms) where the invariant is asserted rather than enforced.
pub struct CyclicDependency;

/// Find a directed cycle in a graph given as raw edges over node
/// indices `0..n`. Returns the cycle as a node sequence
/// `v0 -> v1 -> ... -> v0` (first node repeated at the end) — the
/// witness path — or `None` when the graph is acyclic.
pub fn find_cycle(n: usize, edges: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut succs = vec![Vec::new(); n];
    for &(src, dst) in edges {
        succs[src].push(dst);
    }
    // Iterative colored DFS: 0 = unvisited, 1 = on stack, 2 = done.
    let mut color = vec![0u8; n];
    let mut parent = vec![usize::MAX; n];
    for root in 0..n {
        if color[root] != 0 {
            continue;
        }
        // Stack of (node, next-successor-index) frames.
        let mut stack = vec![(root, 0usize)];
        color[root] = 1;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < succs[v].len() {
                let w = succs[v][*next];
                *next += 1;
                match color[w] {
                    0 => {
                        color[w] = 1;
                        parent[w] = v;
                        stack.push((w, 0));
                    }
                    1 => {
                        // Back edge v -> w: walk parents from v to w.
                        let mut path = Vec::new();
                        let mut cur = v;
                        loop {
                            path.push(cur);
                            if cur == w {
                                break;
                            }
                            cur = parent[cur];
                        }
                        path.reverse(); // w -> ... -> v
                        path.push(w); // close the cycle
                        return Some(path);
                    }
                    _ => {}
                }
            } else {
                color[v] = 2;
                stack.pop();
            }
        }
    }
    None
}

impl Lint for CyclicDependency {
    fn name(&self) -> &'static str {
        "cyclic-dependency"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        let edges: Vec<(usize, usize)> = g.edges().map(|(_, e)| (e.src, e.dst)).collect();
        if let Some(cycle) = find_cycle(g.node_count(), &edges) {
            let witness = cycle.iter().map(|v| format!("n{v}")).collect::<Vec<_>>().join(" -> ");
            out.push(Diagnostic {
                lint: self.name(),
                severity: Severity::Error,
                location: LintLocation::Node(NodeId(cycle[0])),
                message: format!("dependency cycle: {witness}"),
                hint: Some("a macro dataflow graph must be a DAG; break the cycle".to_string()),
                fix: None,
            });
        }
    }
}

/// Amdahl cost `t^C(q) = (alpha + (1 - alpha)/q) * tau` must be
/// non-increasing in the processor count — adding processors can never
/// slow a node down under Eq. (1). A violation means `(1 - alpha) * tau`
/// went negative (alpha > 1, or a negative tau), which silently turns
/// the completion-time bound into nonsense even where the posynomial
/// certification still passes term-by-term.
pub struct AmdahlMonotonicity;

impl Lint for AmdahlMonotonicity {
    fn name(&self) -> &'static str {
        "amdahl-monotonicity"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        for (id, node) in g.nodes() {
            let c = node.cost;
            if node.kind != NodeKind::Compute || !c.alpha.is_finite() || !c.tau.is_finite() {
                continue; // nonfinite-weight owns the invalid cases
            }
            // Sample t^C at doubling processor counts; Eq. (1) is
            // monotone on this grid iff it is monotone everywhere.
            let qs = [1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0, 1024.0];
            let bad = qs.windows(2).find(|w| c.cost(w[1]) > c.cost(w[0]) + 1e-12);
            if let Some(w) = bad {
                let fix = if c.alpha > 1.0 {
                    Some(Fix::ClampAlpha { node: id, to: c.alpha.clamp(0.0, 1.0) })
                } else if c.tau < 0.0 {
                    Some(Fix::ClampTau { node: id, to: 0.0 })
                } else {
                    None
                };
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Error,
                    location: LintLocation::Node(id),
                    message: format!(
                        "t^C increases with processors: t^C({}) = {} > t^C({}) = {} \
                         (alpha = {}, tau = {})",
                        w[1],
                        c.cost(w[1]),
                        w[0],
                        c.cost(w[0]),
                        c.alpha,
                        c.tau
                    ),
                    hint: Some(
                        "(1 - alpha) * tau must be >= 0 for Amdahl costs to shrink with p"
                            .to_string(),
                    ),
                    fix,
                });
            }
        }
    }
}

/// Compute node with placeholder loop metadata (`0x0` dims) in a graph
/// where other compute nodes carry real dimensions. The
/// `redistribution-mismatch` lint silently skips such nodes (there is
/// nothing to check a transfer against), so one unmeasured node pokes a
/// hole in the shape checking of every edge it touches. Fully synthetic
/// graphs — the random gallery, hand-sketched examples where *no* node
/// declares dimensions — are exempt: placeholders are the convention
/// there, not an omission. (Non-finite `alpha`/`tau` cost metadata is
/// owned by `nonfinite-weight`.)
///
/// When every transfer incident to the node moves a whole square f64
/// matrix, the dims are mechanically derivable from the largest one
/// (`bytes/8 = n²`), and the diagnostic carries a
/// [`Fix::DeriveLoopDims`].
pub struct LoopMetadata;

impl Lint for LoopMetadata {
    fn name(&self) -> &'static str {
        "loop-metadata"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        let any_real = g
            .nodes()
            .any(|(_, n)| n.kind == NodeKind::Compute && n.meta.rows > 0 && n.meta.cols > 0);
        if !any_real {
            return;
        }
        for (id, node) in g.nodes() {
            if node.kind != NodeKind::Compute || (node.meta.rows > 0 && node.meta.cols > 0) {
                continue;
            }
            let derived = derive_square_dims(g, id);
            let fix = derived.map(|n| Fix::DeriveLoopDims { node: id, rows: n, cols: n });
            let hint = match derived {
                Some(n) => format!(
                    "its largest transfer moves {} bytes = a {n}x{n} f64 matrix; \
                     --fix fills the dims from it",
                    (n * n * 8)
                ),
                None => "declare the loop dimensions via LoopMeta (compute_with_meta)".to_string(),
            };
            out.push(Diagnostic {
                lint: self.name(),
                severity: Severity::Warning,
                location: LintLocation::Node(id),
                message: format!(
                    "compute node has placeholder loop metadata ({}x{}) while other nodes \
                     declare real dimensions",
                    node.meta.rows, node.meta.cols
                ),
                hint: Some(hint),
                fix,
            });
        }
    }
}

/// Derive square `n x n` loop dims for a node with placeholder metadata
/// from the largest transfer incident to it, when that transfer moves a
/// whole square f64 matrix (`bytes / 8 = n²`). Shared by `loop-metadata`
/// and the resource analyzer's `missing-footprint` lint so both propose
/// the same [`Fix::DeriveLoopDims`].
pub fn derive_square_dims(g: &Mdg, id: NodeId) -> Option<usize> {
    let mut best: u64 = 0;
    for (_, e) in g.edges() {
        if e.src == id.0 || e.dst == id.0 {
            for t in &e.transfers {
                best = best.max(t.bytes);
            }
        }
    }
    if best > 0 && best.is_multiple_of(8) {
        let elems = best / 8;
        let n = (elems as f64).sqrt().round() as u64;
        (n > 0 && n * n == elems).then_some(n as usize)
    } else {
        None
    }
}

/// Contradictory redistribution shapes per Eq. (2)/(3): the same array
/// (identified by byte count) claimed both as a 1D ROW2ROW/COL2COL
/// move and as a 2D ROW2COL/COL2ROW move on one edge. The two formulas
/// price the transfer differently, so one of the claims is wrong.
pub struct TransferShape;

impl Lint for TransferShape {
    fn name(&self) -> &'static str {
        "transfer-shape"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        for (eid, e) in g.edges() {
            let mut one_d: Vec<u64> = Vec::new();
            let mut two_d: Vec<u64> = Vec::new();
            for t in &e.transfers {
                match t.kind {
                    TransferKind::OneD => one_d.push(t.bytes),
                    TransferKind::TwoD => two_d.push(t.bytes),
                }
            }
            for b in &one_d {
                if two_d.contains(b) {
                    out.push(Diagnostic {
                        lint: self.name(),
                        severity: Severity::Warning,
                        location: LintLocation::Edge(eid),
                        message: format!(
                            "an array of {b} bytes is claimed both as a 1D (Eq. 2) and a \
                             2D (Eq. 3) redistribution on the same edge"
                        ),
                        hint: Some(
                            "pick the kind matching the producer/consumer distributions"
                                .to_string(),
                        ),
                        fix: None,
                    });
                    break; // one report per edge is enough
                }
            }
        }
    }
}

/// Unit sanity for edge weights: zero-byte transfers (a no-op that
/// still pays the per-message start-up cost in Eq. (2)/(3)) and byte
/// counts that are not whole f64 elements.
pub struct EdgeUnitSanity;

impl Lint for EdgeUnitSanity {
    fn name(&self) -> &'static str {
        "edge-unit-sanity"
    }

    fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
        for (eid, e) in g.edges() {
            if e.transfers.iter().any(|t| t.bytes == 0) {
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Warning,
                    location: LintLocation::Edge(eid),
                    message: "edge carries a zero-byte array transfer".to_string(),
                    hint: Some(
                        "an empty transfer still pays message start-up cost; drop it or \
                         use a pure precedence edge"
                            .to_string(),
                    ),
                    fix: Some(Fix::DropEmptyTransfers { edge: eid }),
                });
            }
            for t in &e.transfers {
                if t.bytes > 0 && t.bytes % 8 != 0 {
                    out.push(Diagnostic {
                        lint: self.name(),
                        severity: Severity::Note,
                        location: LintLocation::Edge(eid),
                        message: format!(
                            "transfer of {} bytes is not a whole number of f64 elements",
                            t.bytes
                        ),
                        hint: None,
                        fix: None,
                    });
                }
            }
        }
    }
}

/// Rebuild `g` with every [`Fix`] attached to `diags` applied, and
/// return it with the list of fixes actually applied (deduplicated, in
/// diagnostic order). With no applicable fixes the graph is returned
/// unchanged.
///
/// The rebuild goes through [`MdgBuilder`], so the repaired graph
/// re-earns the structural invariants; compute nodes keep their ids
/// (builder ids shift by one for START, exactly undoing the original
/// construction).
pub fn apply_fixes(g: &Mdg, diags: &[Diagnostic]) -> (Mdg, Vec<Fix>) {
    let mut applied: Vec<Fix> = Vec::new();
    for d in diags {
        if let Some(fx) = &d.fix {
            if !applied.contains(fx) {
                applied.push(fx.clone());
            }
        }
    }
    if applied.is_empty() {
        return (g.clone(), applied);
    }

    let mut b = MdgBuilder::new(g.name());
    for (id, node) in g.nodes() {
        if node.is_structural() {
            continue;
        }
        let mut cost = node.cost;
        let mut meta = node.meta.clone();
        for fx in &applied {
            match *fx {
                Fix::ClampAlpha { node: n, to } if n == id => cost.alpha = to,
                Fix::ClampTau { node: n, to } if n == id => cost.tau = to,
                Fix::DeriveLoopDims { node: n, rows, cols } if n == id => {
                    meta.rows = rows;
                    meta.cols = cols;
                }
                _ => {}
            }
        }
        let bid = b.compute_with_meta(node.name.clone(), cost, meta);
        debug_assert_eq!(builder_id_to_mdg(bid), id, "rebuild must preserve node ids");
    }
    for (eid, e) in g.edges() {
        let src = NodeId(e.src);
        let dst = NodeId(e.dst);
        if g.node(src).is_structural() || g.node(dst).is_structural() {
            // finish() re-wires START/STOP; transfers on structural
            // edges only survive when no strip fix asked otherwise,
            // and the builder cannot express them anyway — the lint
            // guarantees a strip fix accompanies any such edge.
            continue;
        }
        let drop_empty =
            applied.iter().any(|fx| matches!(fx, Fix::DropEmptyTransfers { edge } if *edge == eid));
        let transfers =
            e.transfers.iter().filter(|t| !(drop_empty && t.bytes == 0)).cloned().collect();
        b.edge(NodeId(src.0 - 1), NodeId(dst.0 - 1), transfers);
    }
    let fixed = b.finish().expect("rebuilding a valid graph with clamped costs cannot fail");
    (fixed, applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_mdg::{
        complex_matmul_mdg, example_fig1_mdg, AmdahlParams, ArrayTransfer, KernelCostTable,
        LoopClass, LoopMeta, MdgBuilder, TransferKind,
    };

    #[test]
    fn clean_graphs_produce_no_errors() {
        for g in [example_fig1_mdg(), complex_matmul_mdg(64, &KernelCostTable::cm5())] {
            let diags = lint_mdg(&g);
            assert!(!has_errors(&diags), "{}", render_diagnostics(&g, &diags));
        }
    }

    #[test]
    fn degenerate_alpha_is_an_error() {
        let mut b = MdgBuilder::new("bad-alpha");
        // Bypass AmdahlParams::new's validation via the public fields —
        // exactly the hole the lint exists to catch.
        b.compute("ok", AmdahlParams::new(0.5, 1.0));
        b.compute("bad", AmdahlParams { alpha: 1.7, tau: 1.0 });
        let g = b.finish().unwrap();
        let diags = lint_mdg(&g);
        assert!(has_errors(&diags));
        let d = diags.iter().find(|d| d.lint == "degenerate-amdahl").unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert!(matches!(d.location, LintLocation::Node(NodeId(2))));
        assert!(d.message.contains("1.7"));
    }

    #[test]
    fn nonfinite_and_negative_weights_are_errors() {
        let mut b = MdgBuilder::new("bad-weights");
        b.compute("nan-tau", AmdahlParams { alpha: 0.1, tau: f64::NAN });
        b.compute("neg-tau", AmdahlParams { alpha: 0.1, tau: -2.0 });
        b.compute("inf-alpha", AmdahlParams { alpha: f64::INFINITY, tau: 1.0 });
        let g = b.finish().unwrap();
        let hits: Vec<_> =
            lint_mdg(&g).into_iter().filter(|d| d.lint == "nonfinite-weight").collect();
        assert_eq!(hits.len(), 3, "{hits:?}");
        assert!(hits.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn zero_tau_is_a_warning_not_error() {
        let mut b = MdgBuilder::new("zero");
        b.compute("empty", AmdahlParams::new(0.0, 0.0));
        b.compute("real", AmdahlParams::new(0.1, 1.0));
        let g = b.finish().unwrap();
        let diags = lint_mdg(&g);
        assert!(!has_errors(&diags));
        assert!(diags.iter().any(|d| d.lint == "zero-tau" && d.severity == Severity::Warning));
    }

    #[test]
    fn oversized_transfer_is_flagged() {
        let mut b = MdgBuilder::new("oversized");
        let a = b.compute_with_meta(
            "a",
            AmdahlParams::new(0.1, 1.0),
            LoopMeta::square(LoopClass::MatrixInit, 8), // 8x8 f64 = 512 bytes
        );
        let c = b.compute("c", AmdahlParams::new(0.1, 1.0));
        b.edge(a, c, vec![ArrayTransfer::new(4096, TransferKind::OneD)]);
        let g = b.finish().unwrap();
        let diags = lint_mdg(&g);
        let d = diags.iter().find(|d| d.lint == "redistribution-mismatch").unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(matches!(d.location, LintLocation::Edge(_)));
        assert!(d.message.contains("4096"));
    }

    #[test]
    fn isolated_node_is_a_note() {
        let mut b = MdgBuilder::new("island");
        let a = b.compute("a", AmdahlParams::new(0.1, 1.0));
        let c = b.compute("c", AmdahlParams::new(0.1, 1.0));
        b.edge(a, c, vec![]);
        b.compute("loner", AmdahlParams::new(0.1, 1.0));
        let g = b.finish().unwrap();
        let diags = lint_mdg(&g);
        let d = diags.iter().find(|d| d.lint == "isolated-node").unwrap();
        assert_eq!(d.severity, Severity::Note);
    }

    #[test]
    fn single_node_graph_is_not_isolated() {
        let mut b = MdgBuilder::new("solo");
        b.compute("only", AmdahlParams::new(0.1, 1.0));
        let g = b.finish().unwrap();
        assert!(lint_mdg(&g).iter().all(|d| d.lint != "isolated-node"));
    }

    #[test]
    fn custom_lints_compose() {
        struct NameLint;
        impl Lint for NameLint {
            fn name(&self) -> &'static str {
                "graph-name"
            }
            fn check(&self, g: &Mdg, out: &mut Vec<Diagnostic>) {
                if g.name().is_empty() {
                    out.push(Diagnostic {
                        lint: self.name(),
                        severity: Severity::Note,
                        location: LintLocation::Graph,
                        message: "graph has no name".to_string(),
                        hint: None,
                        fix: None,
                    });
                }
            }
        }
        let set = LintSet::default_set().with(Box::new(NameLint));
        assert!(set.names().contains(&"graph-name"));
        let mut b = MdgBuilder::new("");
        b.compute("x", AmdahlParams::new(0.1, 1.0));
        let g = b.finish().unwrap();
        assert!(set.run(&g).iter().any(|d| d.lint == "graph-name"));
    }

    #[test]
    fn find_cycle_returns_a_witness_path() {
        // 0 -> 1 -> 2 -> 0 plus an acyclic tail 2 -> 3.
        let cycle = find_cycle(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).expect("cycle exists");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() == 4, "{cycle:?}"); // 3 nodes + repeated head
        assert!(find_cycle(4, &[(0, 1), (1, 2), (2, 3)]).is_none());
        assert!(find_cycle(1, &[]).is_none());
    }

    #[test]
    fn builder_graphs_have_no_cycles() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        assert!(lint_mdg(&g).iter().all(|d| d.lint != "cyclic-dependency"));
    }

    #[test]
    fn increasing_amdahl_cost_is_an_error_with_a_fix() {
        let mut b = MdgBuilder::new("anti-amdahl");
        b.compute("bad", AmdahlParams { alpha: 1.5, tau: 2.0 });
        let g = b.finish().unwrap();
        let diags = lint_mdg(&g);
        let d = diags.iter().find(|d| d.lint == "amdahl-monotonicity").unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert!(matches!(d.fix, Some(Fix::ClampAlpha { to, .. }) if to == 1.0), "{:?}", d.fix);
    }

    #[test]
    fn mixed_transfer_kinds_of_one_array_are_flagged() {
        let mut b = MdgBuilder::new("mixed");
        let a = b.compute("a", AmdahlParams::new(0.1, 1.0));
        let c = b.compute("c", AmdahlParams::new(0.1, 1.0));
        b.edge(
            a,
            c,
            vec![
                ArrayTransfer::new(512, TransferKind::OneD),
                ArrayTransfer::new(512, TransferKind::TwoD),
            ],
        );
        let g = b.finish().unwrap();
        let d = lint_mdg(&g).into_iter().find(|d| d.lint == "transfer-shape").unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("512"));
    }

    #[test]
    fn same_size_same_kind_transfers_are_fine() {
        // Real + imaginary halves of one matrix: two equal 1D moves.
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        assert!(lint_mdg(&g).iter().all(|d| d.lint != "transfer-shape"));
    }

    #[test]
    fn zero_byte_and_ragged_transfers_are_flagged() {
        let mut b = MdgBuilder::new("units");
        let a = b.compute("a", AmdahlParams::new(0.1, 1.0));
        let c = b.compute("c", AmdahlParams::new(0.1, 1.0));
        b.edge(
            a,
            c,
            vec![
                ArrayTransfer::new(0, TransferKind::OneD),
                ArrayTransfer::new(1234, TransferKind::OneD),
            ],
        );
        let g = b.finish().unwrap();
        let hits: Vec<_> =
            lint_mdg(&g).into_iter().filter(|d| d.lint == "edge-unit-sanity").collect();
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().any(|d| d.severity == Severity::Warning && d.fix.is_some()));
        assert!(hits.iter().any(|d| d.severity == Severity::Note && d.message.contains("1234")));
    }

    #[test]
    fn placeholder_dims_in_mixed_graph_warn_with_derivable_fix() {
        let mut b = MdgBuilder::new("mixed-meta");
        let real = b.compute_with_meta(
            "real",
            AmdahlParams::new(0.1, 1.0),
            LoopMeta::square(LoopClass::MatrixInit, 8),
        );
        let hole = b.compute("hole", AmdahlParams::new(0.1, 1.0)); // synthetic 0x0
                                                                   // 512 bytes = 64 f64 elements = an 8x8 matrix: derivable.
        b.edge(real, hole, vec![ArrayTransfer::new(512, TransferKind::OneD)]);
        let g = b.finish().unwrap();
        let diags = lint_mdg(&g);
        let d = diags.iter().find(|d| d.lint == "loop-metadata").unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(matches!(d.fix, Some(Fix::DeriveLoopDims { rows: 8, cols: 8, .. })), "{:?}", d.fix);

        let (fixed, applied) = apply_fixes(&g, &diags);
        assert_eq!(applied.len(), 1);
        let repaired = fixed.nodes().find(|(_, n)| n.name == "hole").unwrap().1;
        assert_eq!((repaired.meta.rows, repaired.meta.cols), (8, 8));
        assert!(lint_mdg(&fixed).iter().all(|d| d.lint != "loop-metadata"));
    }

    #[test]
    fn underivable_placeholder_dims_warn_without_fix() {
        let mut b = MdgBuilder::new("mixed-odd");
        let real = b.compute_with_meta(
            "real",
            AmdahlParams::new(0.1, 1.0),
            LoopMeta::square(LoopClass::MatrixInit, 8),
        );
        let hole = b.compute("hole", AmdahlParams::new(0.1, 1.0));
        // 24 bytes = 3 elements: not a square matrix, nothing to derive.
        b.edge(real, hole, vec![ArrayTransfer::new(24, TransferKind::OneD)]);
        let g = b.finish().unwrap();
        let d = lint_mdg(&g).into_iter().find(|d| d.lint == "loop-metadata").unwrap();
        assert!(d.fix.is_none());
        assert!(d.hint.unwrap().contains("LoopMeta"));
    }

    #[test]
    fn fully_synthetic_graphs_are_exempt_from_loop_metadata() {
        // fig1 and the random gallery declare no dims anywhere:
        // placeholders are the convention, not an omission.
        let g = example_fig1_mdg();
        assert!(lint_mdg(&g).iter().all(|d| d.lint != "loop-metadata"));
    }

    #[test]
    fn fully_measured_gallery_graphs_are_loop_metadata_clean() {
        use paradigm_mdg::{block_lu_mdg, fft_2d_mdg, stencil_mdg, strassen_mdg};
        let t = KernelCostTable::cm5();
        for g in [
            complex_matmul_mdg(64, &t),
            strassen_mdg(64, &t),
            fft_2d_mdg(64, 4, &t),
            block_lu_mdg(64, 4, &t),
            stencil_mdg(64, 4, 2, &t),
        ] {
            assert!(
                lint_mdg(&g).iter().all(|d| d.lint != "loop-metadata"),
                "gallery graph `{}` must stay lint-clean",
                g.name()
            );
        }
    }

    #[test]
    fn apply_fixes_repairs_every_fixable_diagnostic() {
        let mut b = MdgBuilder::new("fixable");
        let a = b.compute("hot", AmdahlParams { alpha: 1.7, tau: 1.0 });
        let c = b.compute("cold", AmdahlParams { alpha: 0.2, tau: -3.0 });
        b.edge(
            a,
            c,
            vec![
                ArrayTransfer::new(0, TransferKind::OneD),
                ArrayTransfer::new(512, TransferKind::OneD),
            ],
        );
        let g = b.finish().unwrap();
        let diags = lint_mdg(&g);
        assert!(has_errors(&diags));

        let (fixed, applied) = apply_fixes(&g, &diags);
        assert!(!applied.is_empty(), "fixes must be collected");
        assert_eq!(fixed.node_count(), g.node_count());
        assert_eq!(fixed.node(NodeId(1)).cost.alpha, 1.0, "alpha clamped");
        assert_eq!(fixed.node(NodeId(2)).cost.tau, 0.0, "tau clamped");
        let e = fixed.edges().find(|(_, e)| e.src == 1 && e.dst == 2).unwrap().1;
        assert_eq!(e.transfers.len(), 1, "zero-byte transfer dropped");

        // The repaired graph must be error-free (zero-tau warning remains).
        let rediags = lint_mdg(&fixed);
        assert!(!has_errors(&rediags), "{}", render_diagnostics(&fixed, &rediags));
    }

    #[test]
    fn autofixes_reach_a_fixed_point_in_one_application() {
        // A graph exercising every fixable catalog lint at once:
        // alpha > 1 (ClampAlpha), tau < 0 (ClampTau), a zero-byte
        // transfer (DropEmptyTransfers), and two 0x0 nodes moving whole
        // square matrices (DeriveLoopDims).
        let mut b = MdgBuilder::new("dirty");
        let a = b.compute_with_meta(
            "a",
            AmdahlParams { alpha: 1.5, tau: 1.0 },
            LoopMeta::square(LoopClass::MatrixInit, 64),
        );
        let c = b.compute("c", AmdahlParams { alpha: 0.2, tau: -1.0 });
        let d = b.compute("d", AmdahlParams::new(0.1, 1.0));
        b.edge(
            a,
            c,
            vec![ArrayTransfer::matrix_1d(64, 64), ArrayTransfer::new(0, TransferKind::OneD)],
        );
        b.edge(c, d, vec![ArrayTransfer::matrix_1d(64, 64)]);
        let g = b.finish().unwrap();

        let (fixed, applied) = apply_fixes(&g, &lint_mdg(&g));
        assert!(applied.len() >= 3, "expected several fixes, got {applied:?}");

        // One application reaches the fixed point: a second pass finds
        // nothing to fix and changes nothing.
        let (fixed2, applied2) = apply_fixes(&fixed, &lint_mdg(&fixed));
        assert!(applied2.is_empty(), "second pass still wants {applied2:?}");
        assert_eq!(
            paradigm_mdg::to_text(&fixed),
            paradigm_mdg::to_text(&fixed2),
            "second application must be a no-op"
        );

        // And the fixed point survives the text round-trip — this is
        // `--fix --write` twice producing an empty diff: the derived
        // dims must serialize, or the reloaded file re-fires the lint.
        let reloaded = paradigm_mdg::from_text(&paradigm_mdg::to_text(&fixed)).unwrap();
        let (fixed3, applied3) = apply_fixes(&reloaded, &lint_mdg(&reloaded));
        assert!(applied3.is_empty(), "text round-trip resurrects fixes: {applied3:?}");
        assert_eq!(paradigm_mdg::to_text(&reloaded), paradigm_mdg::to_text(&fixed3));
    }

    #[test]
    fn apply_fixes_is_identity_on_clean_graphs() {
        let g = example_fig1_mdg();
        let diags = lint_mdg(&g);
        let (fixed, applied) = apply_fixes(&g, &diags);
        assert!(applied.is_empty());
        assert_eq!(paradigm_mdg::to_text(&fixed), paradigm_mdg::to_text(&g));
    }

    #[test]
    fn rendering_is_compiler_style() {
        let mut b = MdgBuilder::new("r");
        b.compute("bad", AmdahlParams { alpha: -0.5, tau: 1.0 });
        let g = b.finish().unwrap();
        let diags = lint_mdg(&g);
        let txt = render_diagnostics(&g, &diags);
        assert!(txt.contains("error[degenerate-amdahl]"), "{txt}");
        assert!(txt.contains("--> `r`, node n1 (bad)"), "{txt}");
        assert!(txt.contains("help:"), "{txt}");
        assert!(txt.contains("error(s)"), "{txt}");
        assert!(render_diagnostics(&g, &[]).is_empty());
    }
}
