//! Symbolic posynomial certification of solver expression trees.
//!
//! The paper's whole correctness argument (Section 2) rests on one claim:
//! after the substitution `x_i = ln p_i`, the objective
//! `Phi = max(A_p, C_p)` is convex because every component is a
//! *generalized posynomial* — built from monomials `c · Π p_j^{a_j}`
//! (`c ≥ 0`) by sums and pointwise maxima, all of which preserve
//! log-convexity. The solver encodes that structure in
//! [`paradigm_solver::Expr`], but the enum's public constructors cannot
//! stop a malformed tree (negative coefficient, NaN exponent, a variable
//! index past the graph) from being built by hand or by a buggy lowering.
//!
//! This module *proves or refutes* the claim structurally: [`certify`]
//! walks an expression and either returns a [`Certificate`] — a
//! derivation tree naming the closure rule applied at every level — or
//! the **minimal counterexample**: the child-index path from the root to
//! the first subexpression violating the grammar, plus the reason.
//! [`certify_objective`] extends this to a full [`MdgObjective`]
//! compositionally: it certifies `A_p`, every `T_i`, and every `t^D`
//! separately, and derives the generalized-posynomiality of `Phi`
//! through the `y_i = max_m(y_m + t^D_mi) + T_i` recurrence (sums and
//! maxima of certified expressions, by induction over the topological
//! order) — avoiding the exponentially large expanded tree a dense DAG
//! would otherwise require.

use paradigm_mdg::{EdgeId, NodeId};
use paradigm_solver::expr::{Expr, Monomial};
use paradigm_solver::MdgObjective;
use std::fmt;

/// Where an expression sits in the posynomial hierarchy. Ordered by
/// inclusion: every monomial is a posynomial, every posynomial is a
/// generalized posynomial, and all three are convex in `x = ln p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExprClass {
    /// A single `c · Π p_j^{a_j}` with `c ≥ 0`.
    Monomial,
    /// A sum of monomials.
    Posynomial,
    /// Closed under pointwise `max` as well as `+`.
    GeneralizedPosynomial,
}

impl fmt::Display for ExprClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprClass::Monomial => write!(f, "monomial"),
            ExprClass::Posynomial => write!(f, "posynomial"),
            ExprClass::GeneralizedPosynomial => write!(f, "generalized-posynomial"),
        }
    }
}

/// The closure rule applied at one node of a derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Leaf: a well-formed monomial (`c ≥ 0` finite, finite exponents,
    /// distinct in-range variables).
    MonomialLeaf,
    /// Posynomials (and generalized posynomials) are closed under `+`.
    SumClosure,
    /// Generalized posynomials are closed under pointwise `max`.
    MaxClosure,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::MonomialLeaf => write!(f, "monomial-leaf"),
            Rule::SumClosure => write!(f, "sum-closure"),
            Rule::MaxClosure => write!(f, "max-closure"),
        }
    }
}

/// A convexity certificate: the derivation tree showing how the
/// expression is assembled from monomial leaves by the closure rules.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// The certified class of this subtree.
    pub class: ExprClass,
    /// The rule applied at the root of this subtree.
    pub rule: Rule,
    /// Sub-derivations (empty for leaves).
    pub children: Vec<Certificate>,
}

impl Certificate {
    /// Number of monomial leaves under this derivation.
    pub fn monomial_count(&self) -> usize {
        if self.children.is_empty() {
            1
        } else {
            self.children.iter().map(Certificate::monomial_count).sum()
        }
    }

    /// Depth of the derivation tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(Certificate::depth).max().unwrap_or(0)
    }

    /// Render the derivation as an indented tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        if self.children.is_empty() {
            out.push_str(&format!("{} [{}]\n", self.class, self.rule));
        } else {
            out.push_str(&format!(
                "{} [{} over {} branches]\n",
                self.class,
                self.rule,
                self.children.len()
            ));
            for c in &self.children {
                c.render_into(out, depth + 1);
            }
        }
    }
}

/// Why a subexpression is not a (generalized) posynomial.
#[derive(Debug, Clone, PartialEq)]
pub enum Defect {
    /// `c < 0`: the term is not log-convex (it is concave in at least
    /// one direction).
    NegativeCoefficient(f64),
    /// `c` is NaN or infinite.
    NonFiniteCoefficient(f64),
    /// An exponent is NaN or infinite.
    NonFiniteExponent {
        /// The variable carrying the bad exponent.
        var: usize,
        /// The offending exponent.
        exp: f64,
    },
    /// The same variable appears twice in one monomial (violates the
    /// constructor contract; evaluation and gradients disagree on it).
    DuplicateVariable {
        /// The repeated variable index.
        var: usize,
    },
    /// A variable index is out of range for the objective's graph.
    VariableOutOfRange {
        /// The offending variable index.
        var: usize,
        /// Number of variables the objective has.
        limit: usize,
    },
}

impl fmt::Display for Defect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Defect::NegativeCoefficient(c) => write!(f, "negative coefficient {c}"),
            Defect::NonFiniteCoefficient(c) => write!(f, "non-finite coefficient {c}"),
            Defect::NonFiniteExponent { var, exp } => {
                write!(f, "non-finite exponent {exp} on p{var}")
            }
            Defect::DuplicateVariable { var } => {
                write!(f, "variable p{var} appears twice in one monomial")
            }
            Defect::VariableOutOfRange { var, limit } => {
                write!(f, "variable p{var} out of range (objective has {limit} variables)")
            }
        }
    }
}

/// A minimal counterexample: the path from the root to the first
/// offending subexpression, and what is wrong with it.
#[derive(Debug, Clone, PartialEq)]
pub struct NonPosynomial {
    /// Child indices from the root (`[]` means the root itself).
    pub path: Vec<usize>,
    /// What the grammar violation is.
    pub defect: Defect,
}

impl fmt::Display for NonPosynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "root")?;
        for i in &self.path {
            write!(f, ".{i}")?;
        }
        write!(f, ": {}", self.defect)
    }
}

pub(crate) fn check_monomial(m: &Monomial, num_vars: Option<usize>) -> Result<(), Defect> {
    if !m.coeff.is_finite() {
        return Err(Defect::NonFiniteCoefficient(m.coeff));
    }
    if m.coeff < 0.0 {
        return Err(Defect::NegativeCoefficient(m.coeff));
    }
    for (k, &(var, exp)) in m.exps.iter().enumerate() {
        if !exp.is_finite() {
            return Err(Defect::NonFiniteExponent { var, exp });
        }
        if m.exps[..k].iter().any(|&(v, _)| v == var) {
            return Err(Defect::DuplicateVariable { var });
        }
        if let Some(limit) = num_vars {
            if var >= limit {
                return Err(Defect::VariableOutOfRange { var, limit });
            }
        }
    }
    Ok(())
}

fn certify_at(
    e: &Expr,
    num_vars: Option<usize>,
    path: &mut Vec<usize>,
) -> Result<Certificate, NonPosynomial> {
    match e {
        Expr::Mono(m) => match check_monomial(m, num_vars) {
            Ok(()) => Ok(Certificate {
                class: ExprClass::Monomial,
                rule: Rule::MonomialLeaf,
                children: Vec::new(),
            }),
            Err(defect) => Err(NonPosynomial { path: path.clone(), defect }),
        },
        Expr::Sum(terms) => {
            let mut children = Vec::with_capacity(terms.len());
            for (i, t) in terms.iter().enumerate() {
                path.push(i);
                children.push(certify_at(t, num_vars, path)?);
                path.pop();
            }
            // A sum is a posynomial unless some branch already needed max.
            let class = children
                .iter()
                .map(|c| c.class)
                .max()
                .unwrap_or(ExprClass::Monomial)
                .max(ExprClass::Posynomial);
            Ok(Certificate { class, rule: Rule::SumClosure, children })
        }
        Expr::Max(terms) => {
            let mut children = Vec::with_capacity(terms.len());
            for (i, t) in terms.iter().enumerate() {
                path.push(i);
                children.push(certify_at(t, num_vars, path)?);
                path.pop();
            }
            Ok(Certificate {
                class: ExprClass::GeneralizedPosynomial,
                rule: Rule::MaxClosure,
                children,
            })
        }
    }
}

/// Certify an expression tree, or return the minimal counterexample.
pub fn certify(e: &Expr) -> Result<Certificate, NonPosynomial> {
    certify_at(e, None, &mut Vec::new())
}

/// Like [`certify`], additionally checking that every variable index is
/// below `num_vars`.
pub fn certify_in(e: &Expr, num_vars: usize) -> Result<Certificate, NonPosynomial> {
    certify_at(e, Some(num_vars), &mut Vec::new())
}

/// Which component of an [`MdgObjective`] a counterexample lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectivePart {
    /// The `A_p` expression.
    Area,
    /// A node's `T_i` expression.
    Node(NodeId),
    /// An edge's `t^D` expression.
    Edge(EdgeId),
}

impl fmt::Display for ObjectivePart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectivePart::Area => write!(f, "A_p"),
            ObjectivePart::Node(id) => write!(f, "T[{id}]"),
            ObjectivePart::Edge(id) => write!(f, "t^D[e{}]", id.0),
        }
    }
}

/// A counterexample located inside one objective component.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveCounterexample {
    /// The component holding the defect.
    pub part: ObjectivePart,
    /// The defect and its path within that component.
    pub inner: NonPosynomial,
}

impl fmt::Display for ObjectiveCounterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.part, self.inner)
    }
}

/// A compositional certificate for a full objective `Phi = max(A_p, C_p)`.
///
/// The per-component certificates justify the two closure steps that are
/// *not* materialized as expression trees:
///
/// * `C_p`: by induction over the topological order, each
///   `y_i = max_m(y_m + t^D_mi) + T_i` is a generalized posynomial —
///   the max and the sums only combine certified components;
/// * `Phi = max(A_p, C_p)`: one more application of max-closure.
#[derive(Debug, Clone)]
pub struct ObjectiveCertificate {
    /// Derivation for `A_p`.
    pub area: Certificate,
    /// Derivation per node `T_i` (indexed by `NodeId`).
    pub nodes: Vec<Certificate>,
    /// Derivation per edge `t^D` (indexed by `EdgeId`).
    pub edges: Vec<Certificate>,
}

impl ObjectiveCertificate {
    /// The certified class of `Phi` itself. Always
    /// [`ExprClass::GeneralizedPosynomial`] — the outer `max(A_p, C_p)`
    /// forces it even when every component is a plain posynomial.
    pub fn phi_class(&self) -> ExprClass {
        ExprClass::GeneralizedPosynomial
    }

    /// Total monomial leaves across all certified components.
    pub fn monomial_count(&self) -> usize {
        self.area.monomial_count()
            + self.nodes.iter().map(Certificate::monomial_count).sum::<usize>()
            + self.edges.iter().map(Certificate::monomial_count).sum::<usize>()
    }

    /// One-line summary for reports.
    pub fn summary(&self) -> String {
        let max_node = self.nodes.iter().map(|c| c.class).max().unwrap_or(ExprClass::Monomial);
        format!(
            "Phi certified {} (area: {}, {} node exprs (worst {}), {} edge exprs, {} monomials)",
            self.phi_class(),
            self.area.class,
            self.nodes.len(),
            max_node,
            self.edges.len(),
            self.monomial_count()
        )
    }
}

/// Certify every component of an [`MdgObjective`] and hence `Phi`.
///
/// Returns the compositional certificate, or the first counterexample
/// with its component and path.
pub fn certify_objective(
    obj: &MdgObjective<'_>,
) -> Result<ObjectiveCertificate, ObjectiveCounterexample> {
    let n = obj.num_vars();
    let g = obj.graph();
    let area = certify_in(obj.area_expr(), n)
        .map_err(|inner| ObjectiveCounterexample { part: ObjectivePart::Area, inner })?;
    let mut nodes = Vec::with_capacity(g.node_count());
    for (id, _) in g.nodes() {
        let c = certify_in(obj.node_expr(id), n)
            .map_err(|inner| ObjectiveCounterexample { part: ObjectivePart::Node(id), inner })?;
        nodes.push(c);
    }
    let mut edges = Vec::with_capacity(g.edge_count());
    for (eid, _) in g.edges() {
        let c = certify_in(obj.edge_expr(eid), n)
            .map_err(|inner| ObjectiveCounterexample { part: ObjectivePart::Edge(eid), inner })?;
        edges.push(c);
    }
    Ok(ObjectiveCertificate { area, nodes, edges })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mono(c: f64, var: usize, exp: f64) -> Expr {
        Expr::Mono(Monomial { coeff: c, exps: vec![(var, exp)] })
    }

    #[test]
    fn monomial_certifies_as_monomial() {
        let cert = certify(&mono(2.0, 0, -1.0)).unwrap();
        assert_eq!(cert.class, ExprClass::Monomial);
        assert_eq!(cert.rule, Rule::MonomialLeaf);
        assert_eq!(cert.monomial_count(), 1);
    }

    #[test]
    fn sum_of_monomials_is_posynomial() {
        let e = Expr::Sum(vec![mono(1.0, 0, 1.0), mono(2.0, 1, -0.5)]);
        let cert = certify(&e).unwrap();
        assert_eq!(cert.class, ExprClass::Posynomial);
        assert_eq!(cert.rule, Rule::SumClosure);
        assert_eq!(cert.monomial_count(), 2);
    }

    #[test]
    fn max_forces_generalized() {
        let e = Expr::Max(vec![mono(1.0, 0, 1.0), Expr::constant(3.0)]);
        let cert = certify(&e).unwrap();
        assert_eq!(cert.class, ExprClass::GeneralizedPosynomial);
        // Sum over a max stays generalized.
        let outer = Expr::Sum(vec![e, mono(1.0, 1, 1.0)]);
        let cert = certify(&outer).unwrap();
        assert_eq!(cert.class, ExprClass::GeneralizedPosynomial);
        assert_eq!(cert.rule, Rule::SumClosure);
        assert_eq!(cert.depth(), 3);
    }

    #[test]
    fn negative_coefficient_refuted_with_path() {
        let bad = Expr::Sum(vec![
            mono(1.0, 0, 1.0),
            Expr::Max(vec![Expr::constant(1.0), mono(-2.0, 1, 1.0)]),
        ]);
        let ce = certify(&bad).unwrap_err();
        assert_eq!(ce.path, vec![1, 1]);
        assert!(matches!(ce.defect, Defect::NegativeCoefficient(c) if c == -2.0));
        assert_eq!(ce.to_string(), "root.1.1: negative coefficient -2");
    }

    #[test]
    fn nan_and_duplicate_refuted() {
        let nan = Expr::Mono(Monomial { coeff: f64::NAN, exps: vec![] });
        assert!(matches!(certify(&nan).unwrap_err().defect, Defect::NonFiniteCoefficient(_)));
        let bad_exp = Expr::Mono(Monomial { coeff: 1.0, exps: vec![(0, f64::INFINITY)] });
        assert!(matches!(
            certify(&bad_exp).unwrap_err().defect,
            Defect::NonFiniteExponent { var: 0, .. }
        ));
        let dup = Expr::Mono(Monomial { coeff: 1.0, exps: vec![(3, 1.0), (3, -1.0)] });
        assert!(matches!(certify(&dup).unwrap_err().defect, Defect::DuplicateVariable { var: 3 }));
    }

    #[test]
    fn out_of_range_variable_refuted_only_with_bound() {
        let e = mono(1.0, 7, 1.0);
        assert!(certify(&e).is_ok());
        let ce = certify_in(&e, 4).unwrap_err();
        assert!(matches!(ce.defect, Defect::VariableOutOfRange { var: 7, limit: 4 }));
    }

    #[test]
    fn render_shows_rules() {
        let e = Expr::Max(vec![
            Expr::Sum(vec![mono(1.0, 0, 1.0), Expr::constant(1.0)]),
            Expr::constant(2.0),
        ]);
        let txt = certify(&e).unwrap().render();
        assert!(txt.contains("max-closure"), "{txt}");
        assert!(txt.contains("sum-closure"), "{txt}");
        assert!(txt.contains("monomial-leaf"), "{txt}");
    }
}
