//! Cross-validation of the symbolic certifier against the numeric
//! convexity probe: whenever the certifier issues a certificate, the
//! midpoint probe must find no violation (soundness on random
//! objectives); and on deliberately broken expressions where the probe
//! *can* see non-convexity, the certifier must refuse a certificate.

use paradigm_analyze::{certify, certify_objective};
use paradigm_cost::Machine;
use paradigm_mdg::{random_layered_mdg, RandomMdgConfig};
use paradigm_solver::convexity::{probe_midpoint_convexity, probe_points};
use paradigm_solver::expr::{Expr, Monomial, Sharpness};
use paradigm_solver::MdgObjective;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Certified random objectives never fail the numeric probe.
    #[test]
    fn certified_objectives_pass_numeric_probe(
        seed in 0u64..5000,
        layers in 1usize..=4,
        width in 1usize..=3,
        pk in 2u32..=5,
    ) {
        let cfg = RandomMdgConfig {
            layers,
            width_min: 1,
            width_max: width,
            ..RandomMdgConfig::default()
        };
        let g = random_layered_mdg(&cfg, seed);
        let p = 1u32 << pk;
        // The mesh model has nonzero t_n, exercising the edge exprs too.
        let m = Machine::synthetic_mesh(p);
        let obj = MdgObjective::new(&g, m);
        let cert = certify_objective(&obj);
        prop_assert!(cert.is_ok(), "refuted: {}", cert.unwrap_err());

        let pts = probe_points(obj.num_vars(), obj.x_upper(), 8);
        let violations = probe_midpoint_convexity(
            |x| obj.eval(x, Sharpness::Exact).phi,
            &pts,
            1e-9,
        );
        prop_assert!(violations.is_empty(), "probe found {violations:?}");
    }

    /// A planted negative term makes the expression concave somewhere;
    /// the certifier must refuse it, and (as a sanity check on the
    /// probe itself) the probe flags the same expression when the
    /// negative term dominates.
    #[test]
    fn planted_defects_are_refuted(c in 0.5f64..8.0, var in 0usize..3) {
        let broken = Expr::Sum(vec![
            Expr::Mono(Monomial { coeff: 1.0, exps: vec![(var, 1.0)] }),
            // Invalid by construction: bypasses the checked constructors.
            Expr::Mono(Monomial { coeff: -c, exps: vec![(var, 2.0)] }),
        ]);
        prop_assert!(certify(&broken).is_err());

        // -c * e^{2x} dominates for large x, so midpoint convexity fails
        // on a segment reaching into that region.
        let pts: Vec<Vec<f64>> = (0..6)
            .map(|k| {
                let mut p = vec![0.0; 3];
                p[var] = k as f64;
                p
            })
            .collect();
        let violations = probe_midpoint_convexity(
            |x| broken.eval(x, Sharpness::Exact),
            &pts,
            1e-9,
        );
        prop_assert!(!violations.is_empty(), "probe blind to planted concavity (c = {c})");
    }
}
