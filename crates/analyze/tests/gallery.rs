//! Acceptance checks over the full graph gallery: the symbolic certifier
//! must certify `Phi` as a generalized posynomial for every gallery MDG
//! on both machine models, and the schedule analyzer must pass every
//! PSA / rounding / refinement / baseline schedule of those graphs.

use paradigm_analyze::{analyze_schedule, certify_objective, has_errors, lint_mdg, ExprClass};
use paradigm_cost::{Allocation, Machine};
use paradigm_mdg::{
    block_lu_mdg, complex_matmul_mdg, example_fig1_mdg, fft_2d_mdg, stencil_mdg, strassen_mdg,
    strassen_mdg_multilevel, KernelCostTable, Mdg,
};
use paradigm_sched::{
    psa_schedule, refine_allocation, spmd_schedule, task_parallel_schedule, PsaConfig, RefineConfig,
};
use paradigm_solver::MdgObjective;

fn gallery() -> Vec<Mdg> {
    let t = KernelCostTable::cm5();
    vec![
        example_fig1_mdg(),
        complex_matmul_mdg(64, &t),
        strassen_mdg(128, &t),
        strassen_mdg_multilevel(128, 2, &t),
        fft_2d_mdg(64, 4, &t),
        block_lu_mdg(4, 32, &t),
        stencil_mdg(64, 2, 3, &t),
    ]
}

#[test]
fn phi_certifies_for_every_gallery_mdg() {
    for g in gallery() {
        for machine in [Machine::cm5(16), Machine::synthetic_mesh(16)] {
            let obj = MdgObjective::new(&g, machine);
            let cert =
                certify_objective(&obj).unwrap_or_else(|ce| panic!("`{}` refuted: {ce}", g.name()));
            assert_eq!(cert.phi_class(), ExprClass::GeneralizedPosynomial);
            assert!(cert.monomial_count() > 0);
            let summary = cert.summary();
            assert!(summary.contains("generalized-posynomial"), "{summary}");
        }
    }
}

#[test]
fn gallery_mdgs_lint_without_errors() {
    for g in gallery() {
        let diags = lint_mdg(&g);
        assert!(
            !has_errors(&diags),
            "`{}`:\n{}",
            g.name(),
            paradigm_analyze::render_diagnostics(&g, &diags)
        );
    }
}

#[test]
fn analyzer_passes_psa_refinement_and_baselines_on_gallery() {
    for g in gallery() {
        let m = Machine::cm5(16);
        let alloc = Allocation::uniform(&g, 4.0);
        // PSA with rounding (uniform 4 is already a power of two, so also
        // exercise a non-trivial continuous allocation).
        let frac = Allocation::uniform(&g, 2.7);
        for a in [&alloc, &frac] {
            let res = psa_schedule(&g, m, a, &PsaConfig::default());
            let rep = analyze_schedule(&g, &res.weights, &res.schedule);
            assert!(rep.is_clean(), "`{}` PSA: {}", g.name(), rep.render());
            // Refinement output must stay clean too.
            let refined = refine_allocation(&g, m, &res, &RefineConfig::default()).best;
            let rep = analyze_schedule(&g, &refined.weights, &refined.schedule);
            assert!(rep.is_clean(), "`{}` refined: {}", g.name(), rep.render());
        }
        let (s, w) = spmd_schedule(&g, m);
        let rep = analyze_schedule(&g, &w, &s);
        assert!(rep.is_clean(), "`{}` SPMD: {}", g.name(), rep.render());
        let tp = task_parallel_schedule(&g, Machine::cm5(64));
        let rep = analyze_schedule(&g, &tp.weights, &tp.schedule);
        assert!(rep.is_clean(), "`{}` task-parallel: {}", g.name(), rep.render());
    }
}
