//! Property tests for the certificate checker: every certificate the
//! certifier emits must round-trip through the JSON text format and
//! re-validate clean with interval arithmetic alone; and a perturbed
//! leaf coefficient must be caught with a localized counterexample.

use paradigm_analyze::{certificate_json, certify_objective, check_certificate_text, CERT_VERSION};
use paradigm_cost::Machine;
use paradigm_mdg::{parse_json, random_layered_mdg, Json, RandomMdgConfig};
use paradigm_solver::MdgObjective;
use proptest::prelude::*;

/// Multiply the first leaf coefficient found (pre-order) by `factor`,
/// returning true if a leaf was found and perturbed.
fn perturb_first_leaf(j: &mut Json, factor: f64) -> bool {
    let Json::Obj(fields) = j else { return false };
    let is_leaf =
        fields.iter().any(|(k, v)| k == "children" && matches!(v, Json::Arr(a) if a.is_empty()));
    if is_leaf {
        for (k, v) in fields.iter_mut() {
            if k == "coeff" {
                if let Json::Num(c) = v {
                    if *c > 0.0 {
                        *c *= factor;
                        return true;
                    }
                }
            }
        }
        return false;
    }
    for (_, v) in fields.iter_mut() {
        if let Json::Arr(items) = v {
            for item in items.iter_mut() {
                if perturb_first_leaf(item, factor) {
                    return true;
                }
            }
        } else if perturb_first_leaf(v, factor) {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Certifier output survives render → parse → interval re-check.
    #[test]
    fn emitted_certificates_round_trip_clean(
        seed in 0u64..5000,
        layers in 1usize..=4,
        width in 1usize..=3,
        pk in 2u32..=5,
    ) {
        let cfg = RandomMdgConfig {
            layers,
            width_min: 1,
            width_max: width,
            ..RandomMdgConfig::default()
        };
        let g = random_layered_mdg(&cfg, seed);
        let m = Machine::synthetic_mesh(1u32 << pk);
        let obj = MdgObjective::new(&g, m);
        let oc = certify_objective(&obj).expect("random objectives certify");
        let text = certificate_json(&obj, &oc).render();
        let summary = check_certificate_text(&text);
        prop_assert!(summary.is_ok(), "round trip failed: {}", summary.unwrap_err());
        let summary = summary.unwrap();
        prop_assert_eq!(summary.graph, g.name());
    }

    /// A single perturbed coefficient is always caught, and the failure
    /// names a specific part and sub-tree.
    #[test]
    fn perturbed_coefficient_is_always_caught(
        seed in 0u64..5000,
        factor_idx in 0usize..4,
    ) {
        let factor = [0.25f64, 0.5, 2.0, 4.0][factor_idx];
        let g = random_layered_mdg(&RandomMdgConfig::default(), seed);
        let obj = MdgObjective::new(&g, Machine::cm5(16));
        let oc = certify_objective(&obj).expect("certifies");
        let mut doc = parse_json(&certificate_json(&obj, &oc).render()).unwrap();
        prop_assert!(perturb_first_leaf(&mut doc, factor), "no positive leaf found");
        let failure = check_certificate_text(&doc.render())
            .expect_err("tampered certificate must be rejected");
        // The counterexample is localized: a part, a path, a sub-tree.
        prop_assert!(failure.part.is_some(), "failure names no part: {failure}");
        prop_assert!(failure.subtree.is_some(), "failure carries no sub-tree: {failure}");
        let msg = failure.to_string();
        prop_assert!(msg.contains("REJECTED"), "{msg}");
    }
}

#[test]
fn version_constant_matches_emitted_documents() {
    let g = random_layered_mdg(&RandomMdgConfig::default(), 7);
    let obj = MdgObjective::new(&g, Machine::cm5(8));
    let oc = certify_objective(&obj).unwrap();
    let doc = certificate_json(&obj, &oc);
    assert_eq!(doc.get("version").and_then(Json::as_u64), Some(CERT_VERSION));
}
