//! `paradigm` — thin shim over the testable library commands.
//!
//! Exit codes: 0 = clean, 1 = findings (lint/certificate/schedule
//! failures), 2 = usage or internal error.

/// The counting allocator backs `bench-solve`'s allocs-per-iteration
/// metric; outside the benchmark its cost is one relaxed atomic add per
/// allocation.
#[global_allocator]
static ALLOC: paradigm_solver::CountingAllocator = paradigm_solver::CountingAllocator;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match paradigm_cli::parse_args(&argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", paradigm_cli::args::USAGE);
            std::process::exit(2);
        }
    };
    match paradigm_cli::run(&parsed.command) {
        Ok(out) => {
            print!("{}", out.text);
            if out.failed {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
