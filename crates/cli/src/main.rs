//! `paradigm` — thin shim over the testable library commands.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match paradigm_cli::parse_args(&argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", paradigm_cli::args::USAGE);
            std::process::exit(2);
        }
    };
    match paradigm_cli::run(&parsed.command) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
