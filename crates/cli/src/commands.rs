//! Command implementations. Each returns the text it would print, so
//! the test-suite can drive them without spawning processes; `main`
//! prints the result.

use crate::args::{Command, USAGE};
use paradigm_admm::{partition_mdg, PartitionOptions};
use paradigm_analyze::{
    analyze_resources, analyze_schedule, apply_fixes, certificate_dot, certificate_json,
    certify_objective, check_certificate_text, has_errors, lint_mdg, memory_json, memory_lint_set,
    render_diagnostics, unified_diff,
};
use paradigm_core::calibrate::{calibrate, CalibrationConfig};
use paradigm_core::report::render_calibration;
use paradigm_core::{
    compile, gallery_graph, machine_from_spec, try_solve_pipeline, CompileConfig, SolveSpec,
    GALLERY_NAMES,
};
use paradigm_cost::{Machine, MdgWeights};
use paradigm_mdg::stats::MdgStats;
use paradigm_mdg::{
    complex_matmul_mdg, example_fig1_mdg, from_text, strassen_mdg, to_text, KernelCostTable, Mdg,
};
use paradigm_sched::{
    gantt_svg, idle_profile, spmd_schedule, task_parallel_schedule, to_csv, PsaConfig, SchedPolicy,
    Schedule,
};
use paradigm_serve::{run_bench, AdmmFleetSpec, BenchConfig, ServeConfig, Server, ServerConfig};
use paradigm_sim::{compare_schedule_vs_sim, lower_spmd, render_trace, simulate, TrueMachine};
use paradigm_solver::MdgObjective;

/// Any failure a command can produce.
#[derive(Debug)]
pub enum CliError {
    /// File system problem.
    Io(std::io::Error),
    /// MDG parse problem.
    Parse(paradigm_mdg::textfmt::ParseError),
    /// Mini-language front-end problem.
    Front(paradigm_front::FrontError),
    /// Bad runtime configuration or an internal failure that is not a
    /// findings verdict (exit code 2, like usage errors).
    Config(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Parse(e) => write!(f, "parse error: {e}"),
            CliError::Front(e) => write!(f, "front-end error: {e}"),
            CliError::Config(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// A command's printable output plus its findings verdict, so `main`
/// can map results onto the documented exit codes (0 = clean, 1 =
/// findings, 2 = usage/internal error).
#[derive(Debug)]
pub struct CmdOutput {
    /// Text to print on stdout.
    pub text: String,
    /// True when the analysis found problems (lint errors, refuted
    /// certificates, schedule violations): exit code 1.
    pub failed: bool,
}

impl CmdOutput {
    fn clean(text: impl Into<String>) -> CmdOutput {
        CmdOutput { text: text.into(), failed: false }
    }
}

/// Load a graph: `.mini` sources are compiled by the front end, anything
/// else is parsed as the MDG text format.
fn load(file: &str) -> Result<Mdg, CliError> {
    let text = std::fs::read_to_string(file).map_err(CliError::Io)?;
    if file.ends_with(".mini") {
        paradigm_front::compile_source(&text, &KernelCostTable::cm5()).map_err(CliError::Front)
    } else {
        from_text(&text).map_err(CliError::Parse)
    }
}

/// Execute a parsed command, returning its output text and verdict.
pub fn run(command: &Command) -> Result<CmdOutput, CliError> {
    match command {
        Command::Help => Ok(CmdOutput::clean(USAGE)),
        Command::Demo { which } => {
            let table = KernelCostTable::cm5();
            let g = match which.as_str() {
                "fig1" => example_fig1_mdg(),
                "cmm" => complex_matmul_mdg(64, &table),
                "strassen" => strassen_mdg(128, &table),
                other => unreachable!("validated by the parser: {other}"),
            };
            Ok(CmdOutput::clean(to_text(&g)))
        }
        Command::Transform { file, fuse, reduce } => {
            let mut g = load(file)?;
            let mut notes = Vec::new();
            if *fuse {
                let (f, merges) = paradigm_mdg::fuse_serial_chains(&g);
                notes.push(format!("# fuse_serial_chains: {merges} merges"));
                g = f;
            }
            if *reduce {
                let (r, removed) = paradigm_mdg::transitive_reduction(&g);
                notes.push(format!("# transitive_reduction: {removed} edges removed"));
                g = r;
            }
            let mut out = notes.join("\n");
            out.push('\n');
            out.push_str(&to_text(&g));
            Ok(CmdOutput::clean(out))
        }
        Command::Build { file } => {
            let text = std::fs::read_to_string(file).map_err(CliError::Io)?;
            let g = paradigm_front::compile_source(&text, &KernelCostTable::cm5())
                .map_err(CliError::Front)?;
            Ok(CmdOutput::clean(to_text(&g)))
        }
        Command::Info { file } => {
            let g = load(file)?;
            let mut out = MdgStats::of(&g).render(g.name());
            out.push('\n');
            out.push_str(&paradigm_mdg::dot::to_ascii(&g));
            Ok(CmdOutput::clean(out))
        }
        Command::Calibrate { procs } => {
            let truth = TrueMachine::cm5(*procs);
            let cal = calibrate(&truth, &CalibrationConfig::default());
            Ok(CmdOutput::clean(render_calibration(&cal)))
        }
        Command::Compile { file, procs, pb, hlf, gantt, csv, svg, refine, admm } => {
            let g = load(file)?;
            let machine = Machine::cm5(*procs);
            if *admm {
                return Ok(compile_admm(&g, machine, *pb, *hlf, *gantt, *csv, *svg, *refine));
            }
            let cfg = CompileConfig {
                psa: PsaConfig {
                    pb: *pb,
                    skip_rounding: false,
                    policy: if *hlf {
                        SchedPolicy::HighestLevelFirst
                    } else {
                        SchedPolicy::LowestEst
                    },
                },
                refine: *refine,
                ..CompileConfig::default()
            };
            let c = compile(&g, machine, &cfg);
            let mut out = String::new();
            out.push_str(&format!(
                "compiled `{}` for {} processors (PB = {})\n",
                g.name(),
                procs,
                c.psa.pb
            ));
            out.push_str(&format!(
                "Phi = {:.6} s, T_psa = {:.6} s ({:+.2}% above Phi)\n",
                c.phi.phi,
                c.t_psa,
                c.deviation_percent()
            ));
            out.push_str("\nallocation:\n");
            for (id, n) in g.nodes() {
                if !n.is_structural() {
                    out.push_str(&format!(
                        "  {:<24} {:>8.3} -> {}\n",
                        n.name,
                        c.solve.alloc.get(id),
                        c.psa.bounded.as_u32(id)
                    ));
                }
            }
            let prof = idle_profile(&c.psa.schedule, c.psa.pb);
            out.push_str(&format!(
                "\nschedule utilization {:.1}% (idle {:.6} proc-s, idling-situation time {:.6} s)\n",
                100.0 * prof.utilization(),
                prof.idle_area,
                prof.idling_situation_time
            ));
            if *gantt {
                out.push('\n');
                out.push_str(&c.psa.schedule.gantt(&g, 64));
            }
            if *csv {
                out.push('\n');
                out.push_str(&to_csv(&c.psa.schedule, &g));
            }
            if *svg {
                out.push('\n');
                out.push_str(&gantt_svg(&c.psa.schedule, &g));
            }
            Ok(CmdOutput::clean(out))
        }
        Command::Simulate { file, procs, spmd, trace } => {
            let g = load(file)?;
            let machine = Machine::cm5(*procs);
            let truth = TrueMachine::cm5(*procs);
            let c = compile(&g, machine, &CompileConfig::default());
            let mut out = String::new();
            if *spmd {
                let prog = lower_spmd(&g, *procs);
                let sim = simulate(&prog, &truth);
                out.push_str(&format!(
                    "SPMD execution of `{}` on {} processors: {:.6} s (utilization {:.1}%)\n",
                    g.name(),
                    procs,
                    sim.makespan,
                    100.0 * sim.utilization()
                ));
            } else {
                let sim = simulate(&c.mpmd, &truth);
                out.push_str(&format!(
                    "MPMD execution of `{}` on {} processors: {:.6} s (predicted {:.6} s, {:+.2}%)\n",
                    g.name(),
                    procs,
                    sim.makespan,
                    c.t_psa,
                    100.0 * (c.t_psa - sim.makespan) / sim.makespan
                ));
                if *trace {
                    let diffs = compare_schedule_vs_sim(&g, &c.psa.schedule, &c.mpmd, &sim);
                    out.push('\n');
                    out.push_str(&render_trace(&diffs));
                }
            }
            Ok(CmdOutput::clean(out))
        }
        Command::Analyze {
            file,
            procs,
            machine,
            gallery,
            cert,
            cert_json,
            dot,
            fix,
            write,
            strict,
            mem_mb,
        } => {
            let mut machine = machine_from_spec(machine, *procs)
                .unwrap_or_else(|| unreachable!("validated by the parser: {machine}"));
            if let Some(mb) = mem_mb {
                machine = machine.with_mem_bytes(mb * 1024 * 1024);
            }
            let opts = AnalyzeOpts {
                cert: *cert,
                cert_json: *cert_json,
                dot: *dot,
                fix: *fix,
                strict: *strict,
            };
            let mut graphs = Vec::new();
            if let Some(f) = file {
                graphs.push((load(f)?, Some(f.clone())));
            }
            if *gallery {
                graphs.extend(gallery_graphs().into_iter().map(|g| (g, None)));
            }
            let mut out = String::new();
            let mut failed = false;
            for (g, path) in &graphs {
                let write_to = write.then(|| path.as_deref()).flatten();
                failed |= analyze_graph(g, machine, &opts, write_to, &mut out)?;
            }
            Ok(CmdOutput { text: out, failed })
        }
        Command::AnalyzeResources { file, procs, machine, mem_mb, gallery, json, strict } => {
            let mut machine = machine_from_spec(machine, *procs)
                .unwrap_or_else(|| unreachable!("validated by the parser: {machine}"));
            if let Some(mb) = mem_mb {
                machine = machine.with_mem_bytes(mb * 1024 * 1024);
            }
            let mut graphs = Vec::new();
            if let Some(f) = file {
                graphs.push(load(f)?);
            }
            if *gallery {
                graphs.extend(gallery_graphs());
            }
            let mut out = String::new();
            let mut failed = false;
            for g in &graphs {
                let ra = analyze_resources(g, &machine);
                let diags = memory_lint_set(&machine).run(g);
                failed |= !ra.feasible || has_errors(&diags) || (*strict && !diags.is_empty());
                if *json {
                    let paradigm_mdg::json::Json::Obj(mut fields) = memory_json(&ra) else {
                        unreachable!("memory_json emits an object")
                    };
                    fields.insert(0, ("graph".into(), paradigm_mdg::json::Json::str(g.name())));
                    out.push_str(&paradigm_mdg::json::Json::Obj(fields).render());
                    out.push('\n');
                } else {
                    out.push_str(&ra.render());
                    if !diags.is_empty() {
                        out.push_str(&render_diagnostics(g, &diags));
                    }
                    out.push('\n');
                }
            }
            Ok(CmdOutput { text: out, failed })
        }
        Command::CheckCert { file } => {
            let text = std::fs::read_to_string(file).map_err(CliError::Io)?;
            match check_certificate_text(&text) {
                Ok(summary) => Ok(CmdOutput::clean(format!("{summary}\n"))),
                Err(failure) => Ok(CmdOutput { text: format!("{failure}\n"), failed: true }),
            }
        }
        Command::Serve {
            port,
            workers,
            cache,
            queue,
            max_queue_wait_ms,
            chaos,
            audit_rate,
            worker,
            admm_workers,
            admm_stale,
            block_deadline_ms,
            audit_log,
        } => {
            let mut service = ServeConfig::default();
            if *workers > 0 {
                service.workers = *workers;
            }
            service.cache_capacity = *cache;
            service.queue_capacity = *queue;
            service.max_queue_wait = max_queue_wait_ms.map(std::time::Duration::from_millis);
            service.chaos = chaos.clone();
            service.audit_rate = *audit_rate;
            service.worker = *worker;
            service.audit_log = audit_log.as_ref().map(std::path::PathBuf::from);
            if !admm_workers.is_empty() {
                let mut fleet = AdmmFleetSpec::new(admm_workers.clone());
                fleet.max_stale = *admm_stale;
                if let Some(ms) = block_deadline_ms {
                    fleet.block_deadline = std::time::Duration::from_millis(*ms);
                }
                service.fleet = Some(fleet);
            }
            if let Some(plan) = &service.chaos {
                println!("paradigm-serve chaos plan active: {plan:?}");
            }
            let server =
                Server::bind(ServerConfig { service, port: *port }).map_err(CliError::Io)?;
            let addr = server.local_addr().map_err(CliError::Io)?;
            // Printed immediately: `run` blocks until shutdown, and
            // clients need the (possibly OS-assigned) port to connect.
            let role = if *worker { " [admm worker]" } else { "" };
            println!("paradigm-serve listening on {addr}{role} (NDJSON; ^C or {{\"op\":\"shutdown\"}} to stop)");
            if !admm_workers.is_empty() {
                println!(
                    "paradigm-serve admm fleet: {} worker(s), max-stale {}, block deadline {:?}",
                    admm_workers.len(),
                    admm_stale,
                    block_deadline_ms.map_or_else(
                        || paradigm_serve::FleetConfig::default().block_deadline,
                        std::time::Duration::from_millis
                    )
                );
            }
            let stats = server.run();
            Ok(CmdOutput::clean(stats.render()))
        }
        Command::BenchSolve { quick, out, baseline, batch_k } => {
            crate::bench_solve::run_bench_solve(
                *quick,
                out.as_deref(),
                baseline.as_deref(),
                *batch_k,
            )
        }
        Command::BenchServe { clients, rounds, workers, max_queue_wait_ms } => {
            let report = run_bench(&BenchConfig {
                clients: *clients,
                rounds: *rounds,
                workers: *workers,
                max_queue_wait: max_queue_wait_ms.map(std::time::Duration::from_millis),
            });
            Ok(CmdOutput::clean(report.render()))
        }
        Command::Partition { file, procs, blocks } => {
            let g = load(file)?;
            let opts = match blocks {
                Some(b) => PartitionOptions::with_blocks(&g, *b),
                None => PartitionOptions::default(),
            };
            let part = partition_mdg(&g, &opts);
            let mut out = format!(
                "partitioned `{}` ({} compute nodes) for a {}-processor machine\n",
                g.name(),
                g.compute_node_count(),
                procs
            );
            out.push_str(&part.render(&g));
            Ok(CmdOutput::clean(out))
        }
        Command::Race { bound, suite } => run_race(*bound, suite.as_deref()),
        Command::BenchAdmm {
            quick,
            out,
            baseline,
            fleet,
            chaos,
            kill_after_ms,
            admm_stale,
            block_deadline_ms,
        } => crate::bench_admm::run_bench_admm(&crate::bench_admm::BenchAdmmOpts {
            quick: *quick,
            out: out.clone(),
            baseline: baseline.clone(),
            fleet: *fleet,
            chaos: chaos.clone(),
            kill_after_ms: *kill_after_ms,
            admm_stale: *admm_stale,
            block_deadline_ms: *block_deadline_ms,
        }),
    }
}

/// `race`: run the concurrency model-check suites from every checked
/// crate, one summary line per suite, plus the full replayable numbered
/// trace and lock-order diagnostics for any failure.
fn run_race(bound: Option<usize>, which: Option<&str>) -> Result<CmdOutput, CliError> {
    use std::fmt::Write as _;
    let mut suites: Vec<paradigm_race::Suite> = Vec::new();
    suites.extend(paradigm_serve::race_suites::suites());
    suites.extend(paradigm_admm::race_suites::suites());
    suites.extend(paradigm_solver::race_suites::suites());
    if let Some(name) = which.filter(|n| *n != "all") {
        let known: Vec<&str> = suites.iter().map(|s| s.name).collect();
        suites.retain(|s| s.name == name);
        if suites.is_empty() {
            return Err(CliError::Config(format!(
                "unknown suite `{name}` (have: {}, all)",
                known.join(", ")
            )));
        }
    }
    let mut text = String::new();
    if paradigm_race::model_enabled() {
        let _ = writeln!(
            text,
            "model checking: exhaustive interleaving exploration (--cfg paradigm_race)"
        );
    } else {
        let _ = writeln!(
            text,
            "model checking: native smoke runs only — rebuild with \
             RUSTFLAGS=\"--cfg paradigm_race\" to explore interleavings"
        );
    }
    // Suites assert invariants with panics, and exploration visits the
    // failing schedule (and its replay) on purpose; silence the default
    // panic hook so explored failures do not spam stderr. The violation
    // report carries the message and the full trace.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut failed = false;
    for s in &suites {
        let mut cfg = s.config.clone();
        if let Some(b) = bound {
            cfg.preemptions = b;
        }
        let report = (s.run)(&cfg);
        let _ = writeln!(text, "{}   {}", report.summary(), s.about);
        let cycles = report.lock_order.cycles();
        if !cycles.is_empty() {
            for c in &cycles {
                let _ = writeln!(text, "  lock-order cycle: {}", c.join(" -> "));
            }
            let _ = write!(text, "{}", report.lock_order.render());
        }
        if let Some(v) = &report.violation {
            let _ = writeln!(text, "\nfailing schedule for suite `{}`:", report.name);
            for line in v.render_trace().lines() {
                let _ = writeln!(text, "  {line}");
            }
            match report.replay_consistent {
                Some(true) => {
                    let _ = writeln!(
                        text,
                        "  replay: recorded schedule reproduces this trace deterministically"
                    );
                }
                Some(false) => {
                    let _ = writeln!(
                        text,
                        "  replay: WARNING — re-running the schedule diverged \
                         (nondeterministic closure?)"
                    );
                }
                None => {}
            }
        }
        if !report.passed() {
            failed = true;
        }
    }
    std::panic::set_hook(prev_hook);
    if !failed {
        let _ = writeln!(text, "all {} suite(s) passed; lock-order graphs acyclic", suites.len());
    }
    Ok(CmdOutput { text, failed })
}

/// `compile --admm`: route the solve through the distributed
/// consensus-ADMM tier and render the pipeline's view of the result
/// (same allocation table and schedule summary as the dense path, plus
/// the coordinator's convergence diagnostics).
#[allow(clippy::too_many_arguments)]
fn compile_admm(
    g: &Mdg,
    machine: Machine,
    pb: Option<u32>,
    hlf: bool,
    gantt: bool,
    csv: bool,
    svg: bool,
    refine: bool,
) -> CmdOutput {
    let spec = SolveSpec {
        machine,
        policy: if hlf { SchedPolicy::HighestLevelFirst } else { SchedPolicy::LowestEst },
        pb,
        refine,
        fast_solver: true,
        simulate: false,
        admm: true,
    };
    let out = match try_solve_pipeline(g, &spec) {
        Ok(out) => out,
        Err(e) => return CmdOutput { text: format!("admm solve failed: {e}\n"), failed: true },
    };
    let mut text = format!(
        "compiled `{}` for {} processors via consensus ADMM (PB = {})\n",
        g.name(),
        machine.procs,
        out.pb
    );
    text.push_str(&format!(
        "Phi = {:.6} s, T_psa = {:.6} s ({:+.2}% above Phi)\n",
        out.phi, out.t_psa, out.deviation_percent
    ));
    if let Some(stats) = &out.admm {
        text.push_str(&format!(
            "admm: {} blocks ({} cut edges), {} outer rounds, {} inner + {} polish iters\n",
            stats.blocks, stats.cut_edges, stats.outer_iters, stats.inner_iters, stats.polish_iters
        ));
        text.push_str(&format!(
            "admm: primal residual {:.3e}, dual residual {:.3e}{}\n",
            stats.primal_residual,
            stats.dual_residual,
            if stats.converged { "" } else { " (NOT converged; fell back or hit max rounds)" }
        ));
    }
    text.push_str("\nallocation:\n");
    for a in &out.alloc {
        text.push_str(&format!("  {:<24} {:>8.3} -> {}\n", a.node, a.continuous, a.procs));
    }
    text.push_str(&format!("\nschedule utilization {:.1}%\n", 100.0 * out.utilization));
    if gantt {
        text.push('\n');
        text.push_str(&out.schedule.gantt(g, 64));
    }
    if csv {
        text.push('\n');
        text.push_str(&to_csv(&out.schedule, g));
    }
    if svg {
        text.push('\n');
        text.push_str(&gantt_svg(&out.schedule, g));
    }
    CmdOutput { text, failed: out.admm.as_ref().is_some_and(|s| !s.converged) }
}

/// The built-in graphs swept by `analyze --gallery` (the same set the
/// serve protocol's `"gallery"` field draws from).
fn gallery_graphs() -> Vec<Mdg> {
    GALLERY_NAMES
        .iter()
        .map(|name| gallery_graph(name).unwrap_or_else(|| unreachable!("gallery name {name}")))
        .collect()
}

/// Flags steering [`analyze_graph`]'s optional passes.
struct AnalyzeOpts {
    cert: bool,
    cert_json: bool,
    dot: bool,
    fix: bool,
    strict: bool,
}

/// Append the three analysis passes (lints, convexity certification,
/// schedule checks) for one graph to `out`. Returns true when findings
/// should fail the run (lint errors — or any diagnostic under
/// `strict` — a refuted objective, or schedule violations).
fn analyze_graph(
    g: &Mdg,
    machine: Machine,
    opts: &AnalyzeOpts,
    write_to: Option<&str>,
    out: &mut String,
) -> Result<bool, CliError> {
    out.push_str(&format!("== `{}` on {} processors ==\n", g.name(), machine.procs));
    let diags = lint_mdg(g);
    if diags.is_empty() {
        out.push_str("lints: clean\n");
    } else {
        out.push_str(&render_diagnostics(g, &diags));
    }
    let mut failed = has_errors(&diags) || (opts.strict && !diags.is_empty());
    if opts.fix {
        let (fixed, applied) = apply_fixes(g, &diags);
        if applied.is_empty() {
            out.push_str("fix: nothing to fix\n");
        } else {
            out.push_str(&format!("fix: {} mechanical fix(es) available\n", applied.len()));
            let label = write_to.unwrap_or("graph.mdg");
            out.push_str(&unified_diff(
                label,
                &to_text(g),
                &format!("{label} (fixed)"),
                &to_text(&fixed),
            ));
            if let Some(path) = write_to {
                std::fs::write(path, to_text(&fixed)).map_err(CliError::Io)?;
                out.push_str(&format!("fix: wrote repaired graph to {path}\n"));
            }
        }
    }
    let obj = MdgObjective::new(g, machine);
    match certify_objective(&obj) {
        Ok(c) => {
            out.push_str(&format!("objective: {}\n", c.summary()));
            if opts.cert {
                out.push_str("A_p certificate:\n");
                out.push_str(&c.area.render());
            }
            if opts.cert_json {
                out.push_str(&certificate_json(&obj, &c).render());
                out.push('\n');
            }
            if opts.dot {
                out.push_str(&certificate_dot(g.name(), &c));
            }
        }
        Err(ce) => {
            out.push_str(&format!("objective: REFUTED -- {ce}\n"));
            failed = true;
        }
    }
    if has_errors(&diags) {
        // Weights derived from a graph with error-level lints (NaN
        // costs, degenerate Amdahl fractions) would make the schedule
        // verdicts meaningless.
        out.push_str("schedules: skipped (graph has lint errors)\n\n");
        return Ok(failed);
    }
    let c = compile(g, machine, &CompileConfig::default());
    failed |= report_schedule("psa", g, &c.psa.weights, &c.psa.schedule, out);
    let (s, w) = spmd_schedule(g, machine);
    failed |= report_schedule("spmd", g, &w, &s, out);
    let tp = task_parallel_schedule(g, machine);
    failed |= report_schedule("task-parallel", g, &tp.weights, &tp.schedule, out);
    out.push('\n');
    Ok(failed)
}

/// Append one schedule's analyzer verdict to `out`; true on violations.
fn report_schedule(label: &str, g: &Mdg, w: &MdgWeights, s: &Schedule, out: &mut String) -> bool {
    let rep = analyze_schedule(g, w, s);
    if rep.is_clean() {
        out.push_str(&format!(
            "schedule {label}: clean ({} tasks, makespan {:.6} s)\n",
            s.tasks.len(),
            s.makespan
        ));
        false
    } else {
        out.push_str(&format!("schedule {label}: VIOLATIONS\n{}", rep.render()));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;
    use paradigm_serve::Json;

    fn tmp_mdg() -> String {
        let g = example_fig1_mdg();
        let path =
            std::env::temp_dir().join(format!("paradigm-cli-test-{}.mdg", std::process::id()));
        std::fs::write(&path, to_text(&g)).expect("write temp mdg");
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&Command::Help).unwrap().text;
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn demo_emits_parsable_graph() {
        for which in ["fig1", "cmm", "strassen"] {
            let out = run(&Command::Demo { which: which.into() }).unwrap().text;
            let g = from_text(&out).expect("demo output must parse");
            assert!(g.compute_node_count() >= 3);
        }
    }

    #[test]
    fn info_on_file() {
        let path = tmp_mdg();
        let out = run(&Command::Info { file: path.clone() }).unwrap().text;
        assert!(out.contains("3 compute"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn compile_roundtrip_via_parser() {
        let path = tmp_mdg();
        let parsed =
            parse_args(&["compile", &path, "-p", "4", "--gantt", "--csv", "--svg"]).unwrap();
        let out = run(&parsed.command).unwrap().text;
        assert!(out.contains("T_psa = 14.3"), "{out}");
        assert!(out.contains("Gantt"));
        assert!(out.contains("node,name,procs,start,finish"));
        assert!(out.contains("<svg "));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn simulate_mpmd_and_spmd() {
        let path = tmp_mdg();
        let mpmd =
            run(&Command::Simulate { file: path.clone(), procs: 4, spmd: false, trace: true })
                .unwrap()
                .text;
        assert!(mpmd.contains("MPMD execution"));
        assert!(mpmd.contains("worst finish-time error"));
        let spmd =
            run(&Command::Simulate { file: path.clone(), procs: 4, spmd: true, trace: false })
                .unwrap()
                .text;
        assert!(spmd.contains("SPMD execution"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn build_and_load_mini_source() {
        let src = "program demo\nmatrix A(64,64), B(64,64), C(64,64)\nA = init()\nB = init()\nC = A * B\n";
        let path =
            std::env::temp_dir().join(format!("paradigm-cli-test-{}.mini", std::process::id()));
        std::fs::write(&path, src).expect("write temp mini");
        let p = path.to_string_lossy().into_owned();
        // build: emits parsable .mdg text.
        let out = run(&Command::Build { file: p.clone() }).unwrap().text;
        assert!(from_text(&out).is_ok(), "{out}");
        // info: loads the .mini directly.
        let info = run(&Command::Info { file: p.clone() }).unwrap().text;
        assert!(info.contains("3 compute"), "{info}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn transform_emits_parsable_graph() {
        let path = tmp_mdg();
        let out =
            run(&Command::Transform { file: path.clone(), fuse: true, reduce: true }).unwrap().text;
        assert!(out.contains("fuse_serial_chains"));
        // Strip the note comments; the remainder must reparse.
        let body: String =
            out.lines().filter(|l| !l.starts_with('#')).collect::<Vec<_>>().join("\n");
        assert!(from_text(&body).is_ok(), "{body}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = run(&Command::Info { file: "/nonexistent/x.mdg".into() }).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn analyze_file_reports_all_three_passes() {
        let path = tmp_mdg();
        let parsed = parse_args(&["analyze", &path, "-p", "4", "--cert"]).unwrap();
        let out = run(&parsed.command).unwrap().text;
        assert!(out.contains("lints: clean"), "{out}");
        assert!(out.contains("generalized-posynomial"), "{out}");
        assert!(out.contains("schedule psa: clean"), "{out}");
        assert!(out.contains("schedule spmd: clean"), "{out}");
        assert!(out.contains("schedule task-parallel: clean"), "{out}");
        // --cert prints the derivation tree of the area certificate.
        assert!(out.contains("A_p certificate:"), "{out}");
        assert!(out.contains("monomial"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_gallery_certifies_every_graph() {
        let res = run(&Command::Analyze {
            file: None,
            procs: 16,
            machine: "cm5".into(),
            gallery: true,
            cert: false,
            cert_json: false,
            dot: false,
            fix: false,
            write: false,
            strict: true,
            mem_mb: None,
        })
        .unwrap();
        assert!(!res.failed, "gallery must be clean even under -D");
        let out = res.text;
        // One header per gallery graph, each certified and clean.
        assert_eq!(out.matches("== `").count(), 9, "{out}");
        assert_eq!(
            out.matches("objective: Phi certified generalized-posynomial").count(),
            9,
            "{out}"
        );
        assert!(!out.contains("REFUTED"), "{out}");
        assert!(!out.contains("VIOLATIONS"), "{out}");
    }

    #[test]
    fn analyze_mesh_machine_certifies_with_network_term() {
        // The synthetic mesh exercises t_n > 0: the transfer monomials
        // gain the per-byte network term and everything still certifies.
        let path = tmp_mdg();
        let parsed = parse_args(&["analyze", &path, "-p", "8", "--machine", "mesh"]).unwrap();
        let out = run(&parsed.command).unwrap().text;
        assert!(out.contains("on 8 processors"), "{out}");
        assert!(out.contains("objective: Phi certified"), "{out}");
        assert!(!out.contains("REFUTED"), "{out}");
        assert!(!out.contains("VIOLATIONS"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_cert_json_emits_parsable_derivation_trees() {
        let path = tmp_mdg();
        let parsed = parse_args(&["analyze", &path, "-p", "4", "--cert-json"]).unwrap();
        let out = run(&parsed.command).unwrap().text;
        // Exactly one JSON line, parsable by the serve-layer reader.
        let json_line = out.lines().find(|l| l.starts_with('{')).expect("cert-json line present");
        let doc = paradigm_serve::parse_json(json_line).expect("valid JSON");
        assert_eq!(doc.get("graph").and_then(Json::as_str), Some("fig1-example"));
        assert_eq!(doc.get("procs").and_then(Json::as_u64), Some(4));
        assert_eq!(doc.get("phi_class").and_then(Json::as_str), Some("generalized-posynomial"));
        let area = doc.get("area").expect("area tree");
        assert!(area.get("class").is_some() && area.get("rule").is_some());
        // fig1 has 3 compute nodes (+ START/STOP) and 5 edges (2 user
        // edges + 3 synthetic START/STOP edges).
        assert_eq!(doc.get("nodes").and_then(Json::as_arr).map(<[Json]>::len), Some(5));
        assert_eq!(doc.get("edges").and_then(Json::as_arr).map(<[Json]>::len), Some(5));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_cert_json_carries_version_and_check_cert_round_trips() {
        let path = tmp_mdg();
        let parsed = parse_args(&["analyze", &path, "-p", "4", "--cert-json"]).unwrap();
        let out = run(&parsed.command).unwrap().text;
        let json_line = out.lines().find(|l| l.starts_with('{')).expect("cert-json line");
        let doc = paradigm_serve::parse_json(json_line).expect("valid JSON");
        assert_eq!(doc.get("version").and_then(Json::as_u64), Some(2));

        // Round trip: the emitted certificate passes check-cert clean.
        let cert_path =
            std::env::temp_dir().join(format!("paradigm-cli-cert-{}.json", std::process::id()));
        std::fs::write(&cert_path, json_line).unwrap();
        let cp = cert_path.to_string_lossy().into_owned();
        let res = run(&Command::CheckCert { file: cp.clone() }).unwrap();
        assert!(!res.failed, "{}", res.text);
        assert!(res.text.contains("certificate OK"), "{}", res.text);

        // A tampered version is refuted with exit-code-1 semantics.
        std::fs::write(&cert_path, json_line.replace("\"version\":2", "\"version\":99")).unwrap();
        let res = run(&Command::CheckCert { file: cp }).unwrap();
        assert!(res.failed);
        assert!(res.text.contains("REJECTED"), "{}", res.text);
        let _ = std::fs::remove_file(cert_path);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_dot_emits_derivation_graph() {
        let path = tmp_mdg();
        let parsed = parse_args(&["analyze", &path, "-p", "4", "--dot"]).unwrap();
        let out = run(&parsed.command).unwrap().text;
        assert!(out.contains("digraph"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_fix_write_repairs_a_dirty_graph() {
        // A graph with a fixable warning: a zero-byte transfer (the
        // text parser already rejects out-of-range alpha/tau, so unit
        // sanity is the fixable class that can reach the CLI from disk).
        let dirty = "mdg dirty\nnode 0 \"a\" alpha=0.3 tau=2\nnode 1 \"b\" alpha=0.5 tau=1\nedge 0 1 xfer 0 1d\n";
        let path =
            std::env::temp_dir().join(format!("paradigm-cli-fix-{}.mdg", std::process::id()));
        std::fs::write(&path, dirty).unwrap();
        let p = path.to_string_lossy().into_owned();
        let parsed = parse_args(&["analyze", &p, "-p", "4", "-D", "--fix", "--write"]).unwrap();
        let res = run(&parsed.command).unwrap();
        assert!(res.failed, "dirty graph must fail under -D: {}", res.text);
        assert!(res.text.contains("fix:"), "{}", res.text);
        assert!(res.text.contains("-edge 0 1 xfer 0 1d"), "diff shows removal: {}", res.text);
        // The written file is now clean, even under -D.
        let parsed = parse_args(&["analyze", &p, "-p", "4", "-D"]).unwrap();
        let res = run(&parsed.command).unwrap();
        assert!(!res.failed, "repaired graph must be clean: {}", res.text);
        // Idempotency: a second `--fix --write` finds nothing to fix and
        // leaves the file byte-identical (empty diff).
        let before = std::fs::read_to_string(&p).unwrap();
        let parsed = parse_args(&["analyze", &p, "-p", "4", "--fix", "--write"]).unwrap();
        let res = run(&parsed.command).unwrap();
        assert!(res.text.contains("fix: nothing to fix"), "{}", res.text);
        assert_eq!(
            before,
            std::fs::read_to_string(&p).unwrap(),
            "second --fix --write must be a no-op"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_resources_human_and_json_reports() {
        let path = tmp_mdg();
        let parsed = parse_args(&["analyze", "resources", &path, "-p", "4"]).unwrap();
        let res = run(&parsed.command).unwrap();
        assert!(!res.failed, "{}", res.text);
        assert!(res.text.contains("resource analysis:"), "{}", res.text);
        assert!(res.text.contains("verdict: feasible"), "{}", res.text);
        let parsed = parse_args(&["analyze", "resources", &path, "--json"]).unwrap();
        let res = run(&parsed.command).unwrap();
        let doc = paradigm_serve::parse_json(res.text.lines().next().unwrap()).unwrap();
        assert_eq!(doc.get("graph").and_then(Json::as_str), Some("fig1-example"));
        assert_eq!(doc.get("feasible").and_then(Json::as_bool), Some(true));
        assert!(doc.get("peak_interval").is_some());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_resources_gallery_is_feasible_even_strict() {
        let parsed = parse_args(&["analyze", "resources", "--gallery", "-p", "16", "-D"]).unwrap();
        let res = run(&parsed.command).unwrap();
        assert!(!res.failed, "{}", res.text);
        assert_eq!(res.text.matches("resource analysis:").count(), 9, "{}", res.text);
        assert!(!res.text.contains("INFEASIBLE"), "{}", res.text);
    }

    #[test]
    fn analyze_resources_rejects_an_oversized_graph() {
        use paradigm_mdg::{AmdahlParams, ArrayTransfer, LoopClass, LoopMeta, MdgBuilder};
        let mut b = MdgBuilder::new("huge");
        let a = b.compute_with_meta(
            "a",
            AmdahlParams::new(0.1, 1.0),
            LoopMeta::square(LoopClass::MatrixInit, 1024),
        );
        let c = b.compute_with_meta(
            "c",
            AmdahlParams::new(0.1, 1.0),
            LoopMeta::square(LoopClass::MatrixAdd, 1024),
        );
        b.edge(a, c, vec![ArrayTransfer::matrix_1d(1024, 1024)]);
        let g = b.finish().unwrap();
        let path =
            std::env::temp_dir().join(format!("paradigm-cli-huge-{}.mdg", std::process::id()));
        std::fs::write(&path, to_text(&g)).unwrap();
        let p = path.to_string_lossy().into_owned();
        // An 8 MiB working set per node cannot fit 4 processors with
        // 1 MiB each; the analyzer proves it and the lint names it.
        let parsed = parse_args(&["analyze", "resources", &p, "-p", "4", "--mem-mb", "1"]).unwrap();
        let res = run(&parsed.command).unwrap();
        assert!(res.failed, "{}", res.text);
        assert!(res.text.contains("INFEASIBLE"), "{}", res.text);
        assert!(res.text.contains("memory-infeasible"), "{}", res.text);
        // The same graph fits the default cm5 memory.
        let parsed = parse_args(&["analyze", "resources", &p, "-p", "4"]).unwrap();
        let res = run(&parsed.command).unwrap();
        assert!(!res.failed, "{}", res.text);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bench_serve_small_run_renders_report() {
        let out = run(&Command::BenchServe {
            clients: 2,
            rounds: 1,
            workers: 2,
            max_queue_wait_ms: None,
        })
        .unwrap()
        .text;
        assert!(out.contains("bench-serve: 12 distinct keys"), "{out}");
        assert!(out.contains("hot:"), "{out}");
        assert!(out.contains("hot counters:"), "{out}");
        assert!(out.contains("retries 0"), "{out}");
    }

    #[test]
    fn calibrate_renders_tables() {
        let out = run(&Command::Calibrate { procs: 16 }).unwrap().text;
        assert!(out.contains("Table 1"));
        assert!(out.contains("t_ss"));
    }
}
