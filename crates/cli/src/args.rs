//! Hand-rolled argument parsing (std only, unit-testable).

/// The selected subcommand with its options.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `info <file>`: print graph statistics.
    Info {
        /// MDG file path.
        file: String,
    },
    /// `compile <file> -p N [...]`: allocate and schedule.
    Compile {
        /// MDG file path.
        file: String,
        /// Machine size.
        procs: u32,
        /// Explicit PB (None = Corollary 1).
        pb: Option<u32>,
        /// Use the HLF ready-queue priority instead of lowest-EST.
        hlf: bool,
        /// Print the Gantt chart.
        gantt: bool,
        /// Print the schedule as CSV.
        csv: bool,
        /// Print the schedule as an SVG Gantt chart.
        svg: bool,
        /// Run the post-PSA reallocation refinement.
        refine: bool,
    },
    /// `simulate <file> -p N [...]`: compile, lower, execute.
    Simulate {
        /// MDG file path.
        file: String,
        /// Machine size.
        procs: u32,
        /// Run the SPMD lowering instead of the compiled MPMD one.
        spmd: bool,
        /// Print the per-task predicted-vs-actual trace.
        trace: bool,
    },
    /// `calibrate [-p N]`: run the training campaign and print fits.
    Calibrate {
        /// Machine size.
        procs: u32,
    },
    /// `transform <file> [--fuse] [--reduce]`: apply graph transforms
    /// and print the result as MDG text.
    Transform {
        /// Graph file path.
        file: String,
        /// Fuse serial chains (bottom-up coalescing).
        fuse: bool,
        /// Remove transitively redundant precedence edges.
        reduce: bool,
    },
    /// `build <file.mini>`: compile a mini-language program to MDG text.
    Build {
        /// Mini-language source path.
        file: String,
    },
    /// `demo <name>`: print a built-in graph in the text format.
    Demo {
        /// One of `fig1`, `cmm`, `strassen`.
        which: String,
    },
    /// `analyze [<file>] [-p N] [--gallery] [--cert]`: lint the graph,
    /// certify the objective's convexity, and check the schedules the
    /// pipeline produces for it.
    Analyze {
        /// MDG file path; `None` requires `--gallery`.
        file: Option<String>,
        /// Machine size the objective/schedules are analyzed for.
        procs: u32,
        /// Analyze every built-in gallery graph instead of a file.
        gallery: bool,
        /// Print the full derivation tree of the `A_p` certificate.
        cert: bool,
    },
    /// `help`.
    Help,
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedArgs {
    /// The command to run.
    pub command: Command,
}

/// The usage text.
pub const USAGE: &str = "\
paradigm — convex-programming allocation & PSA scheduling for MDGs

USAGE:
  paradigm info <file.mdg>
  paradigm compile <file.mdg> -p <procs> [--pb <n>] [--hlf] [--refine] [--gantt] [--csv] [--svg]
  paradigm simulate <file.mdg> -p <procs> [--spmd] [--trace]
  paradigm calibrate [-p <procs>]
  paradigm build <file.mini>
  paradigm transform <file> [--fuse] [--reduce]
  paradigm demo <fig1|cmm|strassen>
  paradigm analyze <file.mdg> [-p <procs>] [--cert]
  paradigm analyze --gallery [-p <procs>]
  paradigm help

Graph inputs may be .mdg files (graph text format) or .mini files
(matrix-program language, compiled on the fly).
";

fn take_value<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<&'a str, UsageError> {
    it.next().ok_or_else(|| UsageError(format!("flag {flag} needs a value")))
}

fn parse_procs(v: &str) -> Result<u32, UsageError> {
    let p: u32 = v.parse().map_err(|_| UsageError(format!("bad processor count `{v}`")))?;
    if p == 0 {
        return Err(UsageError("processor count must be positive".into()));
    }
    Ok(p)
}

/// Parse `argv[1..]`.
pub fn parse_args<S: AsRef<str>>(argv: &[S]) -> Result<ParsedArgs, UsageError> {
    let toks: Vec<&str> = argv.iter().map(|s| s.as_ref()).collect();
    let Some((&cmd, rest)) = toks.split_first() else {
        return Ok(ParsedArgs { command: Command::Help });
    };
    let mut it = rest.iter().copied();
    let command = match cmd {
        "help" | "--help" | "-h" => Command::Help,
        "info" => {
            let file = it.next().ok_or(UsageError("info needs a file".into()))?.to_string();
            Command::Info { file }
        }
        "transform" => {
            let file = it.next().ok_or(UsageError("transform needs a file".into()))?.to_string();
            let (mut fuse, mut reduce) = (false, false);
            for flag in it.by_ref() {
                match flag {
                    "--fuse" => fuse = true,
                    "--reduce" => reduce = true,
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            if !fuse && !reduce {
                return Err(UsageError("transform needs --fuse and/or --reduce".into()));
            }
            Command::Transform { file, fuse, reduce }
        }
        "build" => {
            let file = it.next().ok_or(UsageError("build needs a file".into()))?.to_string();
            Command::Build { file }
        }
        "demo" => {
            let which = it.next().ok_or(UsageError("demo needs a name".into()))?.to_string();
            if !["fig1", "cmm", "strassen"].contains(&which.as_str()) {
                return Err(UsageError(format!("unknown demo `{which}`")));
            }
            Command::Demo { which }
        }
        "analyze" => {
            let mut file = None;
            let mut procs = 16u32;
            let (mut gallery, mut cert) = (false, false);
            while let Some(tok) = it.next() {
                match tok {
                    "-p" | "--procs" => procs = parse_procs(take_value(tok, &mut it)?)?,
                    "--gallery" => gallery = true,
                    "--cert" => cert = true,
                    flag if flag.starts_with('-') => {
                        return Err(UsageError(format!("unknown flag `{flag}`")))
                    }
                    path => {
                        if file.replace(path.to_string()).is_some() {
                            return Err(UsageError("analyze takes at most one file".into()));
                        }
                    }
                }
            }
            if file.is_none() && !gallery {
                return Err(UsageError("analyze needs a file or --gallery".into()));
            }
            Command::Analyze { file, procs, gallery, cert }
        }
        "calibrate" => {
            let mut procs = 64u32;
            while let Some(flag) = it.next() {
                match flag {
                    "-p" | "--procs" => procs = parse_procs(take_value(flag, &mut it)?)?,
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            Command::Calibrate { procs }
        }
        "compile" => {
            let file = it.next().ok_or(UsageError("compile needs a file".into()))?.to_string();
            let mut procs = None;
            let mut pb = None;
            let (mut hlf, mut gantt, mut csv, mut svg, mut refine) =
                (false, false, false, false, false);
            while let Some(flag) = it.next() {
                match flag {
                    "-p" | "--procs" => procs = Some(parse_procs(take_value(flag, &mut it)?)?),
                    "--pb" => pb = Some(parse_procs(take_value(flag, &mut it)?)?),
                    "--hlf" => hlf = true,
                    "--gantt" => gantt = true,
                    "--csv" => csv = true,
                    "--svg" => svg = true,
                    "--refine" => refine = true,
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            let procs = procs.ok_or(UsageError("compile needs -p <procs>".into()))?;
            Command::Compile { file, procs, pb, hlf, gantt, csv, svg, refine }
        }
        "simulate" => {
            let file = it.next().ok_or(UsageError("simulate needs a file".into()))?.to_string();
            let mut procs = None;
            let (mut spmd, mut trace) = (false, false);
            while let Some(flag) = it.next() {
                match flag {
                    "-p" | "--procs" => procs = Some(parse_procs(take_value(flag, &mut it)?)?),
                    "--spmd" => spmd = true,
                    "--trace" => trace = true,
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            let procs = procs.ok_or(UsageError("simulate needs -p <procs>".into()))?;
            Command::Simulate { file, procs, spmd, trace }
        }
        other => return Err(UsageError(format!("unknown command `{other}`"))),
    };
    Ok(ParsedArgs { command })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_argv_is_help() {
        let p = parse_args::<&str>(&[]).unwrap();
        assert_eq!(p.command, Command::Help);
    }

    #[test]
    fn compile_full_flags() {
        let p = parse_args(&["compile", "g.mdg", "-p", "64", "--pb", "16", "--hlf", "--gantt"])
            .unwrap();
        assert_eq!(
            p.command,
            Command::Compile {
                file: "g.mdg".into(),
                procs: 64,
                pb: Some(16),
                hlf: true,
                gantt: true,
                csv: false,
                svg: false,
                refine: false,
            }
        );
    }

    #[test]
    fn compile_requires_procs() {
        let e = parse_args(&["compile", "g.mdg"]).unwrap_err();
        assert!(e.0.contains("-p"));
    }

    #[test]
    fn simulate_flags() {
        let p = parse_args(&["simulate", "g.mdg", "--procs", "32", "--spmd"]).unwrap();
        assert_eq!(
            p.command,
            Command::Simulate { file: "g.mdg".into(), procs: 32, spmd: true, trace: false }
        );
    }

    #[test]
    fn bad_procs_rejected() {
        assert!(parse_args(&["compile", "g", "-p", "zero"]).is_err());
        assert!(parse_args(&["compile", "g", "-p", "0"]).is_err());
    }

    #[test]
    fn unknown_command_and_flag_rejected() {
        assert!(parse_args(&["frobnicate"]).is_err());
        assert!(parse_args(&["info"]).is_err());
        assert!(parse_args(&["compile", "g", "-p", "4", "--wat"]).is_err());
    }

    #[test]
    fn demo_names_validated() {
        assert!(parse_args(&["demo", "cmm"]).is_ok());
        assert!(parse_args(&["demo", "nope"]).is_err());
    }

    #[test]
    fn transform_command_parses() {
        let p = parse_args(&["transform", "g.mdg", "--fuse", "--reduce"]).unwrap();
        assert_eq!(
            p.command,
            Command::Transform { file: "g.mdg".into(), fuse: true, reduce: true }
        );
        assert!(parse_args(&["transform", "g.mdg"]).is_err(), "needs a flag");
    }

    #[test]
    fn build_command_parses() {
        let p = parse_args(&["build", "prog.mini"]).unwrap();
        assert_eq!(p.command, Command::Build { file: "prog.mini".into() });
        assert!(parse_args(&["build"]).is_err());
    }

    #[test]
    fn analyze_command_parses() {
        let p = parse_args(&["analyze", "g.mdg", "-p", "32", "--cert"]).unwrap();
        assert_eq!(
            p.command,
            Command::Analyze { file: Some("g.mdg".into()), procs: 32, gallery: false, cert: true }
        );
        let p = parse_args(&["analyze", "--gallery"]).unwrap();
        assert_eq!(
            p.command,
            Command::Analyze { file: None, procs: 16, gallery: true, cert: false }
        );
        assert!(parse_args(&["analyze"]).is_err(), "needs a file or --gallery");
        assert!(parse_args(&["analyze", "a.mdg", "b.mdg"]).is_err());
        assert!(parse_args(&["analyze", "g.mdg", "--wat"]).is_err());
    }

    #[test]
    fn calibrate_defaults_to_64() {
        let p = parse_args(&["calibrate"]).unwrap();
        assert_eq!(p.command, Command::Calibrate { procs: 64 });
    }
}
