//! Hand-rolled argument parsing (std only, unit-testable).

/// The selected subcommand with its options.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `info <file>`: print graph statistics.
    Info {
        /// MDG file path.
        file: String,
    },
    /// `compile <file> -p N [...]`: allocate and schedule.
    Compile {
        /// MDG file path.
        file: String,
        /// Machine size.
        procs: u32,
        /// Explicit PB (None = Corollary 1).
        pb: Option<u32>,
        /// Use the HLF ready-queue priority instead of lowest-EST.
        hlf: bool,
        /// Print the Gantt chart.
        gantt: bool,
        /// Print the schedule as CSV.
        csv: bool,
        /// Print the schedule as an SVG Gantt chart.
        svg: bool,
        /// Run the post-PSA reallocation refinement.
        refine: bool,
        /// Force the consensus-ADMM distributed solver tier.
        admm: bool,
    },
    /// `simulate <file> -p N [...]`: compile, lower, execute.
    Simulate {
        /// MDG file path.
        file: String,
        /// Machine size.
        procs: u32,
        /// Run the SPMD lowering instead of the compiled MPMD one.
        spmd: bool,
        /// Print the per-task predicted-vs-actual trace.
        trace: bool,
    },
    /// `calibrate [-p N]`: run the training campaign and print fits.
    Calibrate {
        /// Machine size.
        procs: u32,
    },
    /// `transform <file> [--fuse] [--reduce]`: apply graph transforms
    /// and print the result as MDG text.
    Transform {
        /// Graph file path.
        file: String,
        /// Fuse serial chains (bottom-up coalescing).
        fuse: bool,
        /// Remove transitively redundant precedence edges.
        reduce: bool,
    },
    /// `build <file.mini>`: compile a mini-language program to MDG text.
    Build {
        /// Mini-language source path.
        file: String,
    },
    /// `demo <name>`: print a built-in graph in the text format.
    Demo {
        /// One of `fig1`, `cmm`, `strassen`.
        which: String,
    },
    /// `analyze [<file>] [-p N] [--machine <spec>] [--gallery] [--cert]
    /// [--cert-json] [--dot] [--fix [--write]] [-D]`: lint the graph,
    /// certify the objective's convexity, and check the schedules the
    /// pipeline produces for it. Exits 0 when clean, 1 on findings, 2
    /// on usage/internal errors.
    Analyze {
        /// MDG file path; `None` requires `--gallery`.
        file: Option<String>,
        /// Machine size the objective/schedules are analyzed for.
        procs: u32,
        /// Machine spec (`cm5`, `mesh`, `paragon`, `sp1`); `mesh` has a
        /// non-zero per-byte network term.
        machine: String,
        /// Analyze every built-in gallery graph instead of a file.
        gallery: bool,
        /// Print the full derivation tree of the `A_p` certificate.
        cert: bool,
        /// Emit the certifier derivation trees as one JSON line per
        /// graph.
        cert_json: bool,
        /// Emit the certificate derivation tree as Graphviz DOT.
        dot: bool,
        /// Apply every mechanical lint fix and print the unified diff.
        fix: bool,
        /// With `--fix`: write the repaired graph back to the file.
        write: bool,
        /// Strict mode: warnings (not just errors) fail the run.
        strict: bool,
        /// Per-processor memory capacity override in MiB (None = the
        /// machine family's default).
        mem_mb: Option<u64>,
    },
    /// `analyze resources [<file>] [-p N] [--machine <spec>]
    /// [--mem-mb <n>] [--gallery] [--json] [-D]`: run the static
    /// resource analyzer — sound per-processor memory and communication
    /// bounds with no simulation and no solver. Exits 0 when every
    /// graph provably fits, 1 on findings.
    AnalyzeResources {
        /// MDG file path; `None` requires `--gallery`.
        file: Option<String>,
        /// Machine size the bounds are computed for.
        procs: u32,
        /// Machine spec (`cm5`, `mesh`, `paragon`, `sp1`).
        machine: String,
        /// Per-processor memory capacity override in MiB.
        mem_mb: Option<u64>,
        /// Analyze every built-in gallery graph instead of a file.
        gallery: bool,
        /// Emit one JSON line per graph instead of the human report.
        json: bool,
        /// Strict mode: warnings (not just errors) fail the run.
        strict: bool,
    },
    /// `analyze check-cert <cert.json>`: independently re-validate a
    /// `--cert-json` certificate with interval arithmetic — no solver
    /// in the loop. Exits 0 if the certificate holds, 1 if refuted.
    CheckCert {
        /// Certificate JSON file path (as emitted by `--cert-json`).
        file: String,
    },
    /// `serve [--port N] [--workers N] [--cache N] [--queue N]
    /// [--max-queue-wait ms] [--chaos plan]`: run the NDJSON-over-TCP
    /// scheduling service until SIGINT or a client's `{"op":"shutdown"}`.
    Serve {
        /// TCP port on 127.0.0.1 (0 = OS-assigned).
        port: u16,
        /// Worker threads (0 = available parallelism).
        workers: usize,
        /// Result-cache capacity in entries.
        cache: usize,
        /// Bounded job-queue capacity.
        queue: usize,
        /// Shed submissions after this many milliseconds on a full
        /// queue (`None` = block indefinitely).
        max_queue_wait_ms: Option<u64>,
        /// Fault-injection plan for chaos drills (see
        /// `FaultPlan::parse` for the spec syntax).
        chaos: Option<paradigm_serve::FaultPlan>,
        /// Audit every `N`th completed response with an independent
        /// schedule re-verification (0 = off).
        audit_rate: u64,
        /// Accept `admm_block` frames (the distributed-ADMM worker
        /// role).
        worker: bool,
        /// Route ADMM-tier solves through these TCP worker addresses
        /// (empty = in-process backend).
        admm_workers: Vec<std::net::SocketAddr>,
        /// Bounded-staleness budget per ADMM block (0 = strict
        /// synchronous barrier).
        admm_stale: usize,
        /// Per-block-job deadline in milliseconds (None = fleet
        /// default).
        block_deadline_ms: Option<u64>,
        /// Append-only file persisting the auditor's first-failure
        /// record across restarts.
        audit_log: Option<String>,
    },
    /// `bench-serve [--clients N] [--rounds N] [--workers N]
    /// [--max-queue-wait ms]`: run the closed-loop load generator
    /// against an in-process service.
    BenchServe {
        /// Closed-loop client threads in the hot phase.
        clients: usize,
        /// Sweeps over the working set per client.
        rounds: usize,
        /// Worker threads in the service under test.
        workers: usize,
        /// Queue-wait bound for the hot phase; shed requests are
        /// retried with backoff and counted.
        max_queue_wait_ms: Option<u64>,
    },
    /// `bench-solve [--quick] [--out <path>] [--baseline <path>]
    /// [--batch-k <n>]`: run the solver micro/end-to-end benchmark over
    /// the gallery and random MDGs and emit the `BENCH_solver.json`
    /// report.
    BenchSolve {
        /// Trim the case list (drop the largest random graph) and the
        /// repetition counts — the CI perf-smoke configuration.
        quick: bool,
        /// Write the JSON report here (in addition to stdout).
        out: Option<String>,
        /// Compare against a baseline `BENCH_solver.json`; the run fails
        /// (exit 1) if the n=256 random-MDG `eval_grad` median regresses
        /// more than 3x.
        baseline: Option<String>,
        /// Batch width for the batched-gradient and batched-multistart
        /// cases (default 8).
        batch_k: usize,
    },
    /// `partition <file> [--blocks N] [-p N]`: run the multilevel MDG
    /// partitioner and print the block map, cut summary, and balance.
    Partition {
        /// MDG file path.
        file: String,
        /// Machine size (node weights scale with the allocation box).
        procs: u32,
        /// Force a block count (default: the solver's size heuristic).
        blocks: Option<usize>,
    },
    /// `bench-admm [--quick] [--out <path>] [--baseline <path>]`: run
    /// the consensus-ADMM benchmark over seeded large MDGs and emit the
    /// `BENCH_admm.json` report.
    BenchAdmm {
        /// Trim graph sizes and repetitions — the CI smoke configuration.
        quick: bool,
        /// Write the JSON report here (in addition to stdout).
        out: Option<String>,
        /// Compare against a baseline `BENCH_admm.json`; the run fails
        /// (exit 1) on a >3x wall-clock regression or any lost
        /// convergence.
        baseline: Option<String>,
        /// Spawn this many local TCP workers and run the gate case
        /// through the fleet backend (0 = in-process only).
        fleet: usize,
        /// Fault-injection plan applied to one fleet worker (chaos
        /// drill; requires `--fleet`).
        chaos: Option<paradigm_serve::FaultPlan>,
        /// Kill one fleet worker this many milliseconds into the fleet
        /// solve (requires `--fleet`).
        kill_after_ms: Option<u64>,
        /// Bounded-staleness budget for the fleet solve (0 = strict).
        admm_stale: usize,
        /// Per-block-job deadline in milliseconds (None = fleet
        /// default).
        block_deadline_ms: Option<u64>,
    },
    /// `race [--bound <n>] [--suite <name|all>]`: run the concurrency
    /// model-check suites over the serving/consensus/solver core. In a
    /// normal build each suite is a single native smoke run; in a
    /// `--cfg paradigm_race` build every interleaving up to the
    /// preemption bound is explored and failing schedules are printed
    /// as replayable numbered traces. Exits 0 when every suite passes,
    /// 1 on any violation or lock-order cycle.
    Race {
        /// Preemption-bound override applied to every suite (`None` =
        /// each suite's own default).
        bound: Option<usize>,
        /// Run only the named suite (`None` or `all` = every suite).
        suite: Option<String>,
    },
    /// `help`.
    Help,
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedArgs {
    /// The command to run.
    pub command: Command,
}

/// The usage text.
pub const USAGE: &str = "\
paradigm — convex-programming allocation & PSA scheduling for MDGs

USAGE:
  paradigm info <file.mdg>
  paradigm compile <file.mdg> -p <procs> [--pb <n>] [--hlf] [--refine] [--admm]
                              [--gantt] [--csv] [--svg]
  paradigm simulate <file.mdg> -p <procs> [--spmd] [--trace]
  paradigm calibrate [-p <procs>]
  paradigm build <file.mini>
  paradigm transform <file> [--fuse] [--reduce]
  paradigm demo <fig1|cmm|strassen>
  paradigm analyze <file.mdg> [-p <procs>] [--machine <cm5|mesh|paragon|sp1>] [--mem-mb <n>]
                              [--cert] [--cert-json] [--dot] [--fix [--write]] [-D]
  paradigm analyze --gallery [-p <procs>] [--machine <spec>]
  paradigm analyze resources <file.mdg|--gallery> [-p <procs>] [--machine <spec>] [--mem-mb <n>]
                             [--json] [-D]
  paradigm analyze check-cert <cert.json>
  paradigm partition <file.mdg> [--blocks <n>] [-p <procs>]
  paradigm serve [--port <n>] [--workers <n>] [--cache <n>] [--queue <n>]
                 [--max-queue-wait <ms>] [--chaos <plan>] [--audit-rate <n>]
                 [--audit-log <path>] [--worker]
                 [--admm-workers <addr,addr,...>] [--admm-stale <n>] [--block-deadline-ms <ms>]
  paradigm bench-serve [--clients <n>] [--rounds <n>] [--workers <n>] [--max-queue-wait <ms>]
  paradigm bench-solve [--quick] [--out <path>] [--baseline <path>] [--batch-k <n>]
  paradigm bench-admm [--quick] [--out <path>] [--baseline <path>]
                      [--fleet <n>] [--chaos <plan>] [--kill-after-ms <ms>]
                      [--admm-stale <n>] [--block-deadline-ms <ms>]
  paradigm race [--bound <n>] [--suite <name|all>]
  paradigm help

Chaos plans are comma-separated key=value items, e.g.
  --chaos seed=42,panic=0.3,slow=0.2:50,stall=0.1:20,drop=0.1,truncate=0.05
Worker-level ADMM faults use the block-* sites, e.g.
  --chaos seed=7,block-crash=0.2,block-slow=0.3:40,block-drop=0.1,block-truncate=0.05

Distributed ADMM: start workers with `serve --worker`, then point a
coordinator at them with `--admm-workers`. `--admm-stale 0` keeps the
strict synchronous barrier (bitwise-identical to in-process);
`--admm-stale N` lets a round reuse a block's last solution for up to N
rounds when its fresh solve misses `--block-deadline-ms`.

Model checking: `race` runs the concurrency suites (queue, breaker,
cache, service, consensus, pool). A normal build gives one native smoke
run per suite; rebuild with RUSTFLAGS=\"--cfg paradigm_race\" to
exhaustively explore every interleaving up to the preemption bound and
get replayable numbered traces for failures (see DESIGN.md section 15).

Graph inputs may be .mdg files (graph text format) or .mini files
(matrix-program language, compiled on the fly).

Exit codes: 0 = clean, 1 = findings (lint/certificate/schedule/audit
failures), 2 = usage or internal error.
";

fn take_value<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<&'a str, UsageError> {
    it.next().ok_or_else(|| UsageError(format!("flag {flag} needs a value")))
}

fn parse_procs(v: &str) -> Result<u32, UsageError> {
    let p: u32 = v.parse().map_err(|_| UsageError(format!("bad processor count `{v}`")))?;
    if p == 0 {
        return Err(UsageError("processor count must be positive".into()));
    }
    Ok(p)
}

fn parse_machine(v: &str) -> Result<String, UsageError> {
    if paradigm_core::MACHINE_SPECS.contains(&v) {
        Ok(v.to_string())
    } else {
        Err(UsageError(format!(
            "unknown machine `{v}` (try {})",
            paradigm_core::MACHINE_SPECS.join(", ")
        )))
    }
}

fn parse_mem_mb(v: &str) -> Result<u64, UsageError> {
    let n: u64 = v.parse().map_err(|_| UsageError(format!("bad memory size `{v}`")))?;
    if n == 0 {
        return Err(UsageError("--mem-mb must be positive".into()));
    }
    Ok(n)
}

/// Parse a `usize` flag value; `zero_ok` allows 0 (e.g. `--workers 0` =
/// auto).
fn parse_count(flag: &str, v: &str, zero_ok: bool) -> Result<usize, UsageError> {
    let n: usize = v.parse().map_err(|_| UsageError(format!("bad value `{v}` for {flag}")))?;
    if n == 0 && !zero_ok {
        return Err(UsageError(format!("{flag} must be positive")));
    }
    Ok(n)
}

/// Parse a comma-separated worker address list (`host:port,...`).
fn parse_addr_list(v: &str) -> Result<Vec<std::net::SocketAddr>, UsageError> {
    let addrs: Vec<std::net::SocketAddr> = v
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| UsageError(format!("bad worker address `{}` (want host:port)", s)))
        })
        .collect::<Result<_, _>>()?;
    if addrs.is_empty() {
        return Err(UsageError("--admm-workers needs at least one host:port address".into()));
    }
    Ok(addrs)
}

/// Parse `argv[1..]`.
pub fn parse_args<S: AsRef<str>>(argv: &[S]) -> Result<ParsedArgs, UsageError> {
    let toks: Vec<&str> = argv.iter().map(|s| s.as_ref()).collect();
    let Some((&cmd, rest)) = toks.split_first() else {
        return Ok(ParsedArgs { command: Command::Help });
    };
    let mut it = rest.iter().copied();
    let command = match cmd {
        "help" | "--help" | "-h" => Command::Help,
        "info" => {
            let file = it.next().ok_or(UsageError("info needs a file".into()))?.to_string();
            Command::Info { file }
        }
        "transform" => {
            let file = it.next().ok_or(UsageError("transform needs a file".into()))?.to_string();
            let (mut fuse, mut reduce) = (false, false);
            for flag in it.by_ref() {
                match flag {
                    "--fuse" => fuse = true,
                    "--reduce" => reduce = true,
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            if !fuse && !reduce {
                return Err(UsageError("transform needs --fuse and/or --reduce".into()));
            }
            Command::Transform { file, fuse, reduce }
        }
        "build" => {
            let file = it.next().ok_or(UsageError("build needs a file".into()))?.to_string();
            Command::Build { file }
        }
        "demo" => {
            let which = it.next().ok_or(UsageError("demo needs a name".into()))?.to_string();
            if !["fig1", "cmm", "strassen"].contains(&which.as_str()) {
                return Err(UsageError(format!("unknown demo `{which}`")));
            }
            Command::Demo { which }
        }
        "analyze" if rest.first() == Some(&"check-cert") => {
            let mut it = rest[1..].iter().copied();
            let file = it.next().ok_or(UsageError("check-cert needs a certificate file".into()))?;
            if let Some(extra) = it.next() {
                return Err(UsageError(format!("unexpected argument `{extra}`")));
            }
            Command::CheckCert { file: file.to_string() }
        }
        "analyze" if rest.first() == Some(&"resources") => {
            let mut it = rest[1..].iter().copied();
            let mut file = None;
            let mut procs = 16u32;
            let mut machine = "cm5".to_string();
            let mut mem_mb = None;
            let (mut gallery, mut json, mut strict) = (false, false, false);
            while let Some(tok) = it.next() {
                match tok {
                    "-p" | "--procs" => procs = parse_procs(take_value(tok, &mut it)?)?,
                    "--machine" => machine = parse_machine(take_value(tok, &mut it)?)?,
                    "--mem-mb" => mem_mb = Some(parse_mem_mb(take_value(tok, &mut it)?)?),
                    "--gallery" => gallery = true,
                    "--json" => json = true,
                    "-D" | "--deny-warnings" => strict = true,
                    flag if flag.starts_with('-') => {
                        return Err(UsageError(format!("unknown flag `{flag}`")))
                    }
                    path => {
                        if file.replace(path.to_string()).is_some() {
                            return Err(UsageError(
                                "analyze resources takes at most one file".into(),
                            ));
                        }
                    }
                }
            }
            if file.is_none() && !gallery {
                return Err(UsageError("analyze resources needs a file or --gallery".into()));
            }
            Command::AnalyzeResources { file, procs, machine, mem_mb, gallery, json, strict }
        }
        "analyze" => {
            let mut file = None;
            let mut procs = 16u32;
            let mut machine = "cm5".to_string();
            let mut mem_mb = None;
            let (mut gallery, mut cert, mut cert_json) = (false, false, false);
            let (mut dot, mut fix, mut write, mut strict) = (false, false, false, false);
            while let Some(tok) = it.next() {
                match tok {
                    "-p" | "--procs" => procs = parse_procs(take_value(tok, &mut it)?)?,
                    "--machine" => machine = parse_machine(take_value(tok, &mut it)?)?,
                    "--mem-mb" => mem_mb = Some(parse_mem_mb(take_value(tok, &mut it)?)?),
                    "--gallery" => gallery = true,
                    "--cert" => cert = true,
                    "--cert-json" => cert_json = true,
                    "--dot" => dot = true,
                    "--fix" => fix = true,
                    "--write" => write = true,
                    "-D" | "--deny-warnings" => strict = true,
                    flag if flag.starts_with('-') => {
                        return Err(UsageError(format!("unknown flag `{flag}`")))
                    }
                    path => {
                        if file.replace(path.to_string()).is_some() {
                            return Err(UsageError("analyze takes at most one file".into()));
                        }
                    }
                }
            }
            if file.is_none() && !gallery {
                return Err(UsageError("analyze needs a file or --gallery".into()));
            }
            if write && !fix {
                return Err(UsageError("--write requires --fix".into()));
            }
            if write && file.is_none() {
                return Err(UsageError("--write needs a file (not --gallery)".into()));
            }
            Command::Analyze {
                file,
                procs,
                machine,
                gallery,
                cert,
                cert_json,
                dot,
                fix,
                write,
                strict,
                mem_mb,
            }
        }
        "serve" => {
            let mut port = 7447u16;
            let (mut workers, mut cache, mut queue) = (0usize, 1024usize, 256usize);
            let mut max_queue_wait_ms = None;
            let mut chaos = None;
            let mut audit_rate = 0u64;
            let mut worker = false;
            let mut admm_workers = Vec::new();
            let mut admm_stale = 0usize;
            let mut block_deadline_ms = None;
            let mut audit_log = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--port" => {
                        let v = take_value(flag, &mut it)?;
                        port = v.parse().map_err(|_| UsageError(format!("bad port `{v}`")))?;
                    }
                    "--workers" => workers = parse_count(flag, take_value(flag, &mut it)?, true)?,
                    "--cache" => cache = parse_count(flag, take_value(flag, &mut it)?, false)?,
                    "--queue" => queue = parse_count(flag, take_value(flag, &mut it)?, false)?,
                    "--max-queue-wait" => {
                        max_queue_wait_ms =
                            Some(parse_count(flag, take_value(flag, &mut it)?, true)? as u64);
                    }
                    "--chaos" => {
                        let v = take_value(flag, &mut it)?;
                        chaos = Some(
                            paradigm_serve::FaultPlan::parse(v)
                                .map_err(|e| UsageError(format!("bad chaos plan: {e}")))?,
                        );
                    }
                    "--audit-rate" => {
                        audit_rate = parse_count(flag, take_value(flag, &mut it)?, true)? as u64;
                    }
                    "--audit-log" => audit_log = Some(take_value(flag, &mut it)?.to_string()),
                    "--worker" => worker = true,
                    "--admm-workers" => admm_workers = parse_addr_list(take_value(flag, &mut it)?)?,
                    "--admm-stale" => {
                        admm_stale = parse_count(flag, take_value(flag, &mut it)?, true)?;
                    }
                    "--block-deadline-ms" => {
                        block_deadline_ms =
                            Some(parse_count(flag, take_value(flag, &mut it)?, false)? as u64);
                    }
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            if admm_workers.is_empty() && (admm_stale != 0 || block_deadline_ms.is_some()) {
                return Err(UsageError(
                    "--admm-stale/--block-deadline-ms need --admm-workers".into(),
                ));
            }
            Command::Serve {
                port,
                workers,
                cache,
                queue,
                max_queue_wait_ms,
                chaos,
                audit_rate,
                worker,
                admm_workers,
                admm_stale,
                block_deadline_ms,
                audit_log,
            }
        }
        "bench-serve" => {
            let (mut clients, mut rounds, mut workers) = (4usize, 25usize, 4usize);
            let mut max_queue_wait_ms = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--clients" => clients = parse_count(flag, take_value(flag, &mut it)?, false)?,
                    "--rounds" => rounds = parse_count(flag, take_value(flag, &mut it)?, false)?,
                    "--workers" => workers = parse_count(flag, take_value(flag, &mut it)?, false)?,
                    "--max-queue-wait" => {
                        max_queue_wait_ms =
                            Some(parse_count(flag, take_value(flag, &mut it)?, true)? as u64);
                    }
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            Command::BenchServe { clients, rounds, workers, max_queue_wait_ms }
        }
        "bench-solve" => {
            let mut quick = false;
            let mut out = None;
            let mut baseline = None;
            let mut batch_k = 8usize;
            while let Some(flag) = it.next() {
                match flag {
                    "--quick" => quick = true,
                    "--out" => out = Some(take_value(flag, &mut it)?.to_string()),
                    "--baseline" => baseline = Some(take_value(flag, &mut it)?.to_string()),
                    "--batch-k" => {
                        let v = take_value(flag, &mut it)?;
                        batch_k =
                            v.parse::<usize>().ok().filter(|&k| (1..=64).contains(&k)).ok_or_else(
                                || UsageError(format!("--batch-k must be in 1..=64, got `{v}`")),
                            )?;
                    }
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            Command::BenchSolve { quick, out, baseline, batch_k }
        }
        "partition" => {
            let file = it.next().ok_or(UsageError("partition needs a file".into()))?.to_string();
            let mut procs = 16u32;
            let mut blocks = None;
            while let Some(flag) = it.next() {
                match flag {
                    "-p" | "--procs" => procs = parse_procs(take_value(flag, &mut it)?)?,
                    "--blocks" => {
                        blocks = Some(parse_count(flag, take_value(flag, &mut it)?, false)?);
                    }
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            Command::Partition { file, procs, blocks }
        }
        "bench-admm" => {
            let mut quick = false;
            let mut out = None;
            let mut baseline = None;
            let mut fleet = 0usize;
            let mut chaos = None;
            let mut kill_after_ms = None;
            let mut admm_stale = 0usize;
            let mut block_deadline_ms = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--quick" => quick = true,
                    "--out" => out = Some(take_value(flag, &mut it)?.to_string()),
                    "--baseline" => baseline = Some(take_value(flag, &mut it)?.to_string()),
                    "--fleet" => fleet = parse_count(flag, take_value(flag, &mut it)?, true)?,
                    "--chaos" => {
                        let v = take_value(flag, &mut it)?;
                        chaos = Some(
                            paradigm_serve::FaultPlan::parse(v)
                                .map_err(|e| UsageError(format!("bad chaos plan: {e}")))?,
                        );
                    }
                    "--kill-after-ms" => {
                        kill_after_ms =
                            Some(parse_count(flag, take_value(flag, &mut it)?, true)? as u64);
                    }
                    "--admm-stale" => {
                        admm_stale = parse_count(flag, take_value(flag, &mut it)?, true)?;
                    }
                    "--block-deadline-ms" => {
                        block_deadline_ms =
                            Some(parse_count(flag, take_value(flag, &mut it)?, false)? as u64);
                    }
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            if fleet == 0
                && (chaos.is_some()
                    || kill_after_ms.is_some()
                    || admm_stale != 0
                    || block_deadline_ms.is_some())
            {
                return Err(UsageError(
                    "--chaos/--kill-after-ms/--admm-stale/--block-deadline-ms need --fleet".into(),
                ));
            }
            Command::BenchAdmm {
                quick,
                out,
                baseline,
                fleet,
                chaos,
                kill_after_ms,
                admm_stale,
                block_deadline_ms,
            }
        }
        "race" => {
            let mut bound = None;
            let mut suite = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--bound" => {
                        bound = Some(parse_count(flag, take_value(flag, &mut it)?, true)?);
                    }
                    "--suite" => suite = Some(take_value(flag, &mut it)?.to_string()),
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            Command::Race { bound, suite }
        }
        "calibrate" => {
            let mut procs = 64u32;
            while let Some(flag) = it.next() {
                match flag {
                    "-p" | "--procs" => procs = parse_procs(take_value(flag, &mut it)?)?,
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            Command::Calibrate { procs }
        }
        "compile" => {
            let file = it.next().ok_or(UsageError("compile needs a file".into()))?.to_string();
            let mut procs = None;
            let mut pb = None;
            let (mut hlf, mut gantt, mut csv, mut svg, mut refine, mut admm) =
                (false, false, false, false, false, false);
            while let Some(flag) = it.next() {
                match flag {
                    "-p" | "--procs" => procs = Some(parse_procs(take_value(flag, &mut it)?)?),
                    "--pb" => pb = Some(parse_procs(take_value(flag, &mut it)?)?),
                    "--hlf" => hlf = true,
                    "--gantt" => gantt = true,
                    "--csv" => csv = true,
                    "--svg" => svg = true,
                    "--refine" => refine = true,
                    "--admm" => admm = true,
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            let procs = procs.ok_or(UsageError("compile needs -p <procs>".into()))?;
            Command::Compile { file, procs, pb, hlf, gantt, csv, svg, refine, admm }
        }
        "simulate" => {
            let file = it.next().ok_or(UsageError("simulate needs a file".into()))?.to_string();
            let mut procs = None;
            let (mut spmd, mut trace) = (false, false);
            while let Some(flag) = it.next() {
                match flag {
                    "-p" | "--procs" => procs = Some(parse_procs(take_value(flag, &mut it)?)?),
                    "--spmd" => spmd = true,
                    "--trace" => trace = true,
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            let procs = procs.ok_or(UsageError("simulate needs -p <procs>".into()))?;
            Command::Simulate { file, procs, spmd, trace }
        }
        other => return Err(UsageError(format!("unknown command `{other}`"))),
    };
    Ok(ParsedArgs { command })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_argv_is_help() {
        let p = parse_args::<&str>(&[]).unwrap();
        assert_eq!(p.command, Command::Help);
    }

    #[test]
    fn race_defaults() {
        let p = parse_args(&["race"]).unwrap();
        assert_eq!(p.command, Command::Race { bound: None, suite: None });
    }

    #[test]
    fn race_full_flags() {
        let p = parse_args(&["race", "--bound", "3", "--suite", "breaker"]).unwrap();
        assert_eq!(p.command, Command::Race { bound: Some(3), suite: Some("breaker".into()) });
    }

    #[test]
    fn race_rejects_bad_flags() {
        assert!(parse_args(&["race", "--bound"]).is_err());
        assert!(parse_args(&["race", "--bound", "x"]).is_err());
        assert!(parse_args(&["race", "--nope"]).is_err());
    }

    #[test]
    fn compile_full_flags() {
        let p = parse_args(&["compile", "g.mdg", "-p", "64", "--pb", "16", "--hlf", "--gantt"])
            .unwrap();
        assert_eq!(
            p.command,
            Command::Compile {
                file: "g.mdg".into(),
                procs: 64,
                pb: Some(16),
                hlf: true,
                gantt: true,
                csv: false,
                svg: false,
                refine: false,
                admm: false,
            }
        );
    }

    #[test]
    fn compile_requires_procs() {
        let e = parse_args(&["compile", "g.mdg"]).unwrap_err();
        assert!(e.0.contains("-p"));
    }

    #[test]
    fn simulate_flags() {
        let p = parse_args(&["simulate", "g.mdg", "--procs", "32", "--spmd"]).unwrap();
        assert_eq!(
            p.command,
            Command::Simulate { file: "g.mdg".into(), procs: 32, spmd: true, trace: false }
        );
    }

    #[test]
    fn bad_procs_rejected() {
        assert!(parse_args(&["compile", "g", "-p", "zero"]).is_err());
        assert!(parse_args(&["compile", "g", "-p", "0"]).is_err());
    }

    #[test]
    fn unknown_command_and_flag_rejected() {
        assert!(parse_args(&["frobnicate"]).is_err());
        assert!(parse_args(&["info"]).is_err());
        assert!(parse_args(&["compile", "g", "-p", "4", "--wat"]).is_err());
    }

    #[test]
    fn demo_names_validated() {
        assert!(parse_args(&["demo", "cmm"]).is_ok());
        assert!(parse_args(&["demo", "nope"]).is_err());
    }

    #[test]
    fn transform_command_parses() {
        let p = parse_args(&["transform", "g.mdg", "--fuse", "--reduce"]).unwrap();
        assert_eq!(
            p.command,
            Command::Transform { file: "g.mdg".into(), fuse: true, reduce: true }
        );
        assert!(parse_args(&["transform", "g.mdg"]).is_err(), "needs a flag");
    }

    #[test]
    fn build_command_parses() {
        let p = parse_args(&["build", "prog.mini"]).unwrap();
        assert_eq!(p.command, Command::Build { file: "prog.mini".into() });
        assert!(parse_args(&["build"]).is_err());
    }

    #[test]
    fn analyze_command_parses() {
        let p = parse_args(&["analyze", "g.mdg", "-p", "32", "--cert"]).unwrap();
        assert_eq!(
            p.command,
            Command::Analyze {
                file: Some("g.mdg".into()),
                procs: 32,
                machine: "cm5".into(),
                gallery: false,
                cert: true,
                cert_json: false,
                dot: false,
                fix: false,
                write: false,
                strict: false,
                mem_mb: None,
            }
        );
        let p = parse_args(&["analyze", "--gallery"]).unwrap();
        assert_eq!(
            p.command,
            Command::Analyze {
                file: None,
                procs: 16,
                machine: "cm5".into(),
                gallery: true,
                cert: false,
                cert_json: false,
                dot: false,
                fix: false,
                write: false,
                strict: false,
                mem_mb: None,
            }
        );
        assert!(parse_args(&["analyze"]).is_err(), "needs a file or --gallery");
        assert!(parse_args(&["analyze", "a.mdg", "b.mdg"]).is_err());
        assert!(parse_args(&["analyze", "g.mdg", "--wat"]).is_err());
    }

    #[test]
    fn analyze_machine_and_cert_json_flags() {
        let p = parse_args(&["analyze", "--gallery", "--machine", "mesh", "--cert-json"]).unwrap();
        assert_eq!(
            p.command,
            Command::Analyze {
                file: None,
                procs: 16,
                machine: "mesh".into(),
                gallery: true,
                cert: false,
                cert_json: true,
                dot: false,
                fix: false,
                write: false,
                strict: false,
                mem_mb: None,
            }
        );
        assert!(parse_args(&["analyze", "--gallery", "--machine", "vax"]).is_err());
        assert!(parse_args(&["analyze", "--gallery", "--machine"]).is_err());
    }

    #[test]
    fn serve_command_parses_with_defaults() {
        let p = parse_args(&["serve"]).unwrap();
        assert_eq!(
            p.command,
            Command::Serve {
                port: 7447,
                workers: 0,
                cache: 1024,
                queue: 256,
                max_queue_wait_ms: None,
                chaos: None,
                audit_rate: 0,
                worker: false,
                admm_workers: vec![],
                admm_stale: 0,
                block_deadline_ms: None,
                audit_log: None,
            }
        );
        let p = parse_args(&[
            "serve",
            "--port",
            "0",
            "--workers",
            "2",
            "--cache",
            "64",
            "--queue",
            "16",
            "--max-queue-wait",
            "250",
        ])
        .unwrap();
        assert_eq!(
            p.command,
            Command::Serve {
                port: 0,
                workers: 2,
                cache: 64,
                queue: 16,
                max_queue_wait_ms: Some(250),
                chaos: None,
                audit_rate: 0,
                worker: false,
                admm_workers: vec![],
                admm_stale: 0,
                block_deadline_ms: None,
                audit_log: None,
            }
        );
        assert!(parse_args(&["serve", "--port", "banana"]).is_err());
        assert!(parse_args(&["serve", "--cache", "0"]).is_err());
        assert!(parse_args(&["serve", "--wat"]).is_err());
    }

    #[test]
    fn serve_chaos_plan_parses_and_validates() {
        let p = parse_args(&["serve", "--chaos", "seed=42,panic=0.5,drop=0.1"]).unwrap();
        let Command::Serve { chaos: Some(plan), .. } = p.command else {
            panic!("chaos plan missing")
        };
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.worker_panic, 0.5);
        assert_eq!(plan.conn_drop, 0.1);
        assert!(parse_args(&["serve", "--chaos", "panic=2.0"]).is_err());
        assert!(parse_args(&["serve", "--chaos", "wat=1"]).is_err());
    }

    #[test]
    fn bench_serve_command_parses() {
        let p = parse_args(&["bench-serve"]).unwrap();
        assert_eq!(
            p.command,
            Command::BenchServe { clients: 4, rounds: 25, workers: 4, max_queue_wait_ms: None }
        );
        let p = parse_args(&["bench-serve", "--clients", "2", "--rounds", "3", "--workers", "1"])
            .unwrap();
        assert_eq!(
            p.command,
            Command::BenchServe { clients: 2, rounds: 3, workers: 1, max_queue_wait_ms: None }
        );
        let p = parse_args(&["bench-serve", "--max-queue-wait", "100"]).unwrap();
        assert_eq!(
            p.command,
            Command::BenchServe {
                clients: 4,
                rounds: 25,
                workers: 4,
                max_queue_wait_ms: Some(100)
            }
        );
        assert!(parse_args(&["bench-serve", "--clients", "0"]).is_err());
    }

    #[test]
    fn bench_solve_command_parses() {
        let p = parse_args(&["bench-solve"]).unwrap();
        assert_eq!(
            p.command,
            Command::BenchSolve { quick: false, out: None, baseline: None, batch_k: 8 }
        );
        let p = parse_args(&[
            "bench-solve",
            "--quick",
            "--out",
            "BENCH_solver.json",
            "--baseline",
            "ci/bench-solver-baseline.json",
            "--batch-k",
            "16",
        ])
        .unwrap();
        assert_eq!(
            p.command,
            Command::BenchSolve {
                quick: true,
                out: Some("BENCH_solver.json".into()),
                baseline: Some("ci/bench-solver-baseline.json".into()),
                batch_k: 16,
            }
        );
        assert!(parse_args(&["bench-solve", "--out"]).is_err());
        assert!(parse_args(&["bench-solve", "--wat"]).is_err());
        assert!(parse_args(&["bench-solve", "--batch-k", "0"]).is_err());
        assert!(parse_args(&["bench-solve", "--batch-k", "65"]).is_err());
        assert!(parse_args(&["bench-solve", "--batch-k", "x"]).is_err());
    }

    #[test]
    fn analyze_fix_dot_strict_flags() {
        let p = parse_args(&["analyze", "g.mdg", "--fix", "--write", "--dot", "-D"]).unwrap();
        let Command::Analyze { fix, write, dot, strict, .. } = p.command else {
            panic!("not analyze")
        };
        assert!(fix && write && dot && strict);
        assert!(parse_args(&["analyze", "g.mdg", "--write"]).is_err(), "--write needs --fix");
        assert!(
            parse_args(&["analyze", "--gallery", "--fix", "--write"]).is_err(),
            "--write needs a file"
        );
    }

    #[test]
    fn analyze_resources_subcommand_parses() {
        let p = parse_args(&["analyze", "resources", "g.mdg", "-p", "8", "--mem-mb", "4"]).unwrap();
        assert_eq!(
            p.command,
            Command::AnalyzeResources {
                file: Some("g.mdg".into()),
                procs: 8,
                machine: "cm5".into(),
                mem_mb: Some(4),
                gallery: false,
                json: false,
                strict: false,
            }
        );
        let p = parse_args(&["analyze", "resources", "--gallery", "--machine", "sp1", "--json"])
            .unwrap();
        assert_eq!(
            p.command,
            Command::AnalyzeResources {
                file: None,
                procs: 16,
                machine: "sp1".into(),
                mem_mb: None,
                gallery: true,
                json: true,
                strict: false,
            }
        );
        assert!(parse_args(&["analyze", "resources"]).is_err(), "needs a file or --gallery");
        assert!(parse_args(&["analyze", "resources", "a.mdg", "b.mdg"]).is_err());
        assert!(parse_args(&["analyze", "resources", "g.mdg", "--mem-mb", "0"]).is_err());
        assert!(parse_args(&["analyze", "resources", "g.mdg", "--wat"]).is_err());
    }

    #[test]
    fn analyze_mem_mb_override_parses() {
        let p = parse_args(&["analyze", "g.mdg", "--mem-mb", "64"]).unwrap();
        let Command::Analyze { mem_mb, .. } = p.command else { panic!("not analyze") };
        assert_eq!(mem_mb, Some(64));
        assert!(parse_args(&["analyze", "g.mdg", "--mem-mb", "none"]).is_err());
    }

    #[test]
    fn check_cert_subcommand_parses() {
        let p = parse_args(&["analyze", "check-cert", "cert.json"]).unwrap();
        assert_eq!(p.command, Command::CheckCert { file: "cert.json".into() });
        assert!(parse_args(&["analyze", "check-cert"]).is_err());
        assert!(parse_args(&["analyze", "check-cert", "a", "b"]).is_err());
    }

    #[test]
    fn serve_audit_rate_parses() {
        let p = parse_args(&["serve", "--audit-rate", "10"]).unwrap();
        let Command::Serve { audit_rate, .. } = p.command else { panic!("not serve") };
        assert_eq!(audit_rate, 10);
        assert!(parse_args(&["serve", "--audit-rate", "x"]).is_err());
    }

    #[test]
    fn compile_admm_flag_parses() {
        let p = parse_args(&["compile", "g.mdg", "-p", "64", "--admm"]).unwrap();
        let Command::Compile { admm, .. } = p.command else { panic!("not compile") };
        assert!(admm);
    }

    #[test]
    fn serve_worker_flag_parses() {
        let p = parse_args(&["serve", "--worker", "--port", "0"]).unwrap();
        let Command::Serve { worker, port, .. } = p.command else { panic!("not serve") };
        assert!(worker);
        assert_eq!(port, 0);
    }

    #[test]
    fn partition_command_parses() {
        let p = parse_args(&["partition", "g.mdg", "--blocks", "8", "-p", "64"]).unwrap();
        assert_eq!(
            p.command,
            Command::Partition { file: "g.mdg".into(), procs: 64, blocks: Some(8) }
        );
        let p = parse_args(&["partition", "g.mdg"]).unwrap();
        assert_eq!(p.command, Command::Partition { file: "g.mdg".into(), procs: 16, blocks: None });
        assert!(parse_args(&["partition"]).is_err());
        assert!(parse_args(&["partition", "g.mdg", "--blocks", "0"]).is_err());
        assert!(parse_args(&["partition", "g.mdg", "--wat"]).is_err());
    }

    #[test]
    fn bench_admm_command_parses() {
        let p = parse_args(&["bench-admm"]).unwrap();
        assert_eq!(
            p.command,
            Command::BenchAdmm {
                quick: false,
                out: None,
                baseline: None,
                fleet: 0,
                chaos: None,
                kill_after_ms: None,
                admm_stale: 0,
                block_deadline_ms: None,
            }
        );
        let p = parse_args(&[
            "bench-admm",
            "--quick",
            "--out",
            "BENCH_admm.json",
            "--baseline",
            "ci/bench-admm-baseline.json",
        ])
        .unwrap();
        assert_eq!(
            p.command,
            Command::BenchAdmm {
                quick: true,
                out: Some("BENCH_admm.json".into()),
                baseline: Some("ci/bench-admm-baseline.json".into()),
                fleet: 0,
                chaos: None,
                kill_after_ms: None,
                admm_stale: 0,
                block_deadline_ms: None,
            }
        );
        assert!(parse_args(&["bench-admm", "--wat"]).is_err());
    }

    #[test]
    fn bench_admm_fleet_flags_parse_and_require_fleet() {
        let p = parse_args(&[
            "bench-admm",
            "--quick",
            "--fleet",
            "3",
            "--chaos",
            "seed=7,block-crash=0.5",
            "--kill-after-ms",
            "50",
            "--admm-stale",
            "2",
            "--block-deadline-ms",
            "500",
        ])
        .unwrap();
        let Command::BenchAdmm {
            fleet, chaos, kill_after_ms, admm_stale, block_deadline_ms, ..
        } = p.command
        else {
            panic!("not bench-admm")
        };
        assert_eq!(fleet, 3);
        assert_eq!(chaos.unwrap().block_crash, 0.5);
        assert_eq!(kill_after_ms, Some(50));
        assert_eq!(admm_stale, 2);
        assert_eq!(block_deadline_ms, Some(500));
        assert!(parse_args(&["bench-admm", "--kill-after-ms", "50"]).is_err(), "needs --fleet");
        assert!(parse_args(&["bench-admm", "--admm-stale", "1"]).is_err(), "needs --fleet");
        assert!(
            parse_args(&["bench-admm", "--fleet", "2", "--block-deadline-ms", "0"]).is_err(),
            "deadline must be positive"
        );
    }

    #[test]
    fn serve_fleet_flags_parse() {
        let p = parse_args(&[
            "serve",
            "--admm-workers",
            "127.0.0.1:9001,127.0.0.1:9002",
            "--admm-stale",
            "3",
            "--block-deadline-ms",
            "750",
            "--audit-log",
            "audit.log",
        ])
        .unwrap();
        let Command::Serve { admm_workers, admm_stale, block_deadline_ms, audit_log, .. } =
            p.command
        else {
            panic!("not serve")
        };
        assert_eq!(admm_workers.len(), 2);
        assert_eq!(admm_workers[0], "127.0.0.1:9001".parse().unwrap());
        assert_eq!(admm_stale, 3);
        assert_eq!(block_deadline_ms, Some(750));
        assert_eq!(audit_log.as_deref(), Some("audit.log"));
        assert!(parse_args(&["serve", "--admm-workers", "not-an-addr"]).is_err());
        assert!(parse_args(&["serve", "--admm-workers", ","]).is_err(), "empty list");
        assert!(parse_args(&["serve", "--admm-stale", "2"]).is_err(), "needs --admm-workers");
    }

    #[test]
    fn calibrate_defaults_to_64() {
        let p = parse_args(&["calibrate"]).unwrap();
        assert_eq!(p.command, Command::Calibrate { procs: 64 });
    }
}
