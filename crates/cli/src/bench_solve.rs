//! `paradigm bench-solve` — the tracked solver micro-benchmark.
//!
//! Measures the hot paths of the allocation solver on the gallery
//! workloads plus random layered MDGs of growing size, and emits
//! `BENCH_solver.json` so the performance trajectory is recorded in CI
//! rather than anecdotal:
//!
//! * `eval_us` — median wall time of one smoothed objective evaluation
//!   through the reusable workspace (`eval_with`);
//! * `eval_grad_us` — median wall time of one reverse-mode (adjoint)
//!   gradient (`eval_grad_with`), the per-iteration cost of descent;
//! * `grad_forward_us` — the retired forward-mode gradient on the same
//!   point, kept as the speedup reference;
//! * `eval_grad_batched_us` / `batch_grad_speedup` — per-gradient cost
//!   of one K-wide batched sweep (`eval_grad_batch_with` over K lanes,
//!   divided by K) and its speedup over the scalar adjoint;
//! * `multistart_us` / `multistart_batched_us` / `multistart_speedup` —
//!   a fixed-iteration K-point multistart stage run as K sequential
//!   scalar descents vs one shared-tape batched `descend_multi_stage`;
//! * `allocate_us` / `allocate_iters` — one end-to-end `try_allocate`
//!   with [`SolverConfig::fast`];
//! * `allocs_per_iter` — heap allocations per descent iteration after
//!   warm-up, observed through the counting global allocator the
//!   `paradigm` binary installs (0 in-process unless installed).
//!
//! `--baseline <path>` compares against a checked-in snapshot and fails
//! (exit code 1) when the reverse gradient on the `random-256` case
//! regresses more than 3x — a coarse gate that survives machine noise
//! but catches algorithmic regressions.

use std::time::Instant;

use paradigm_core::{gallery_graph, GALLERY_NAMES};
use paradigm_cost::Machine;
use paradigm_mdg::{random_layered_mdg, Mdg, RandomMdgConfig};
use paradigm_serve::{parse_json, Json};
use paradigm_solver::expr::Sharpness;
use paradigm_solver::objective::ObjectiveParts;
use paradigm_solver::{
    allocation_count, descend_multi_stage, descend_stage, try_allocate, BatchWorkspace,
    MdgObjective, SolverConfig, SolverWorkspace,
};

use crate::commands::{CliError, CmdOutput};

/// Random-MDG seed; fixed so the benchmark graphs are reproducible.
const SEED: u64 = 1994;

/// Factor by which `random-256`'s `eval_grad_us` may exceed the baseline
/// before `--baseline` fails the run.
const REGRESSION_FACTOR: f64 = 3.0;

/// The case name the `--baseline` gate keys on.
const GATE_CASE: &str = "random-256";

/// One benchmark case's measurements.
struct CaseReport {
    name: String,
    compute_nodes: usize,
    edges: usize,
    eval_us: f64,
    eval_grad_us: f64,
    grad_forward_us: f64,
    grad_speedup: f64,
    eval_grad_batched_us: f64,
    batch_grad_speedup: f64,
    multistart_us: f64,
    multistart_batched_us: f64,
    multistart_speedup: f64,
    allocate_us: f64,
    allocate_iters: usize,
    allocs_per_iter: f64,
}

/// Run the benchmark; `quick` trims samples and drops the largest graph.
pub fn run_bench_solve(
    quick: bool,
    out_path: Option<&str>,
    baseline: Option<&str>,
    batch_k: usize,
) -> Result<CmdOutput, CliError> {
    let reps = if quick { 9 } else { 25 };
    let mut cases = Vec::new();
    for name in GALLERY_NAMES {
        let g = gallery_graph(name).unwrap_or_else(|| unreachable!("gallery name {name}"));
        cases.push(bench_case(name, &g, reps, batch_k));
    }
    let mut sizes = vec![64usize, 128, 256];
    if !quick {
        sizes.push(512);
    }
    for n in sizes {
        let g = random_layered_mdg(
            &RandomMdgConfig {
                layers: n / 8,
                width_min: 8,
                width_max: 8,
                ..RandomMdgConfig::default()
            },
            SEED,
        );
        cases.push(bench_case(&format!("random-{n}"), &g, reps, batch_k));
    }

    let json = render_json(quick, batch_k, &cases);
    let mut text = render_table(quick, reps, &cases);
    if let Some(path) = out_path {
        std::fs::write(path, &json).map_err(CliError::Io)?;
        text.push_str(&format!("\nwrote {path}\n"));
    } else {
        text.push('\n');
        text.push_str(&json);
    }

    let mut failed = false;
    if let Some(bpath) = baseline {
        match check_baseline(bpath, &cases) {
            Ok(line) => text.push_str(&line),
            Err(line) => {
                text.push_str(&line);
                failed = true;
            }
        }
    }
    Ok(CmdOutput { text, failed })
}

/// Measure one graph. All medians are in microseconds.
fn bench_case(name: &str, g: &Mdg, reps: usize, batch_k: usize) -> CaseReport {
    let obj = MdgObjective::new(g, Machine::cm5(64));
    let n = obj.num_vars();
    let ub = obj.x_upper();
    // Deterministic interior point, varied per-coordinate so no smax
    // degenerates to a tie.
    let x: Vec<f64> = (0..n).map(|i| ub * (0.3 + 0.4 * ((i * 7 % 11) as f64) / 11.0)).collect();
    let sharp = Sharpness::Smooth(64.0);

    let mut ws = SolverWorkspace::new();
    let mut grad = Vec::new();
    // Warm the workspace buffers so the timed region measures steady state.
    let _ = obj.eval_grad_with(&x, sharp, &mut ws.scratch, &mut grad);

    let eval_us = median_us(reps, || {
        std::hint::black_box(obj.eval_with(&x, sharp, &mut ws.scratch).phi);
    });
    let eval_grad_us = median_us(reps, || {
        let parts = obj.eval_grad_with(&x, sharp, &mut ws.scratch, &mut grad);
        std::hint::black_box(parts.phi);
    });
    let grad_forward_us = median_us(reps, || {
        let (parts, grad) = obj.eval_grad_forward(&x, sharp);
        std::hint::black_box((parts.phi, grad.len()));
    });

    // K-wide batched gradient: one shared-tape sweep over `batch_k`
    // lane points, reported per gradient (total / K).
    let k = batch_k.max(1);
    let mut bw = BatchWorkspace::new();
    let mut xs = vec![0.0_f64; n * k];
    for l in 0..k {
        for j in 0..n {
            xs[j * k + l] = (x[j] + 0.015 * (l as f64)).min(ub);
        }
    }
    let mut bgrads = Vec::new();
    let mut parts = vec![ObjectiveParts { phi: 0.0, a_p: 0.0, c_p: 0.0 }; k];
    obj.eval_grad_batch_with(&xs, k, sharp, &mut bw.scratch, &mut bgrads, &mut parts);
    let eval_grad_batched_us = median_us(reps, || {
        obj.eval_grad_batch_with(&xs, k, sharp, &mut bw.scratch, &mut bgrads, &mut parts);
        std::hint::black_box(parts[0].phi);
    }) / k as f64;

    // Fixed-iteration multistart stage over the same K start points:
    // K sequential scalar descents vs one batched `descend_multi_stage`.
    // rel_tol 0 keeps every lane running the full iteration budget so
    // the two paths do the same number of gradient steps.
    const MS_ITERS: usize = 20;
    let starts: Vec<Vec<f64>> = (0..k).map(|l| (0..n).map(|j| xs[j * k + l]).collect()).collect();
    // Warm the scalar path, then both measured paths restart from the
    // same fresh start points each sample.
    let mut warm = starts[0].clone();
    let _ = descend_stage(&obj, &mut warm, sharp, MS_ITERS, 0.0, &mut ws);
    let ms_reps = reps.min(7);
    let multistart_us = median_us_once(ms_reps, || {
        let mut total = 0usize;
        for s in &starts {
            let mut p = s.clone();
            total += descend_stage(&obj, &mut p, sharp, MS_ITERS, 0.0, &mut ws);
            std::hint::black_box(p[0]);
        }
        std::hint::black_box(total);
    });
    let mut points = starts.clone();
    let _ = descend_multi_stage(&obj, &mut points, sharp, MS_ITERS, 0.0, &mut bw);
    let multistart_batched_us = median_us_once(ms_reps, || {
        let mut points = starts.clone();
        let iters = descend_multi_stage(&obj, &mut points, sharp, MS_ITERS, 0.0, &mut bw);
        std::hint::black_box((iters, points[0][0]));
    });

    // Allocations per descent iteration, after a warm-up stage has sized
    // every buffer. Reads 0 unless the counting allocator is the global
    // allocator (it is in the `paradigm` binary).
    let mut xd = vec![ub / 2.0; n];
    let _ = descend_stage(&obj, &mut xd, sharp, 10, 0.0, &mut ws);
    let mut xd = vec![ub / 3.0; n];
    let before = allocation_count();
    let measured_iters = descend_stage(&obj, &mut xd, sharp, 50, 0.0, &mut ws);
    let delta = allocation_count() - before;
    let allocs_per_iter =
        if measured_iters > 0 { delta as f64 / measured_iters as f64 } else { 0.0 };

    let t0 = Instant::now();
    let res = try_allocate(g, Machine::cm5(64), &SolverConfig::fast()).expect("bench solve");
    let allocate_us = t0.elapsed().as_secs_f64() * 1e6;

    CaseReport {
        name: name.to_string(),
        compute_nodes: g.compute_node_count(),
        edges: g.edge_count(),
        eval_us,
        eval_grad_us,
        grad_forward_us,
        grad_speedup: if eval_grad_us > 0.0 { grad_forward_us / eval_grad_us } else { 0.0 },
        eval_grad_batched_us,
        batch_grad_speedup: if eval_grad_batched_us > 0.0 {
            eval_grad_us / eval_grad_batched_us
        } else {
            0.0
        },
        multistart_us,
        multistart_batched_us,
        multistart_speedup: if multistart_batched_us > 0.0 {
            multistart_us / multistart_batched_us
        } else {
            0.0
        },
        allocate_us,
        allocate_iters: res.iterations,
        allocs_per_iter,
    }
}

/// Median wall time of `reps` runs of `f`, in microseconds. Each sample
/// loops `f` enough times that sub-microsecond work is still resolvable.
fn median_us(reps: usize, mut f: impl FnMut()) -> f64 {
    const INNER: usize = 4;
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..INNER {
                f();
            }
            t0.elapsed().as_secs_f64() * 1e6 / INNER as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Median wall time of `reps` single runs of `f`, in microseconds — for
/// workloads (whole multistart stages) long enough to time unlooped.
fn median_us_once(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Human-readable summary table.
fn render_table(quick: bool, reps: usize, cases: &[CaseReport]) -> String {
    let mut out = format!(
        "bench-solve ({}; medians over {reps} samples)\n",
        if quick { "quick" } else { "full" }
    );
    out.push_str(&format!(
        "{:<18} {:>6} {:>6} {:>10} {:>10} {:>10} {:>8} {:>10} {:>8} {:>12} {:>12} {:>8} {:>12} {:>7} {:>11}\n",
        "case",
        "nodes",
        "edges",
        "eval_us",
        "grad_us",
        "fwd_us",
        "speedup",
        "bgrad_us",
        "bspeed",
        "multi_us",
        "bmulti_us",
        "mspeed",
        "allocate_us",
        "iters",
        "allocs/iter"
    ));
    for c in cases {
        out.push_str(&format!(
            "{:<18} {:>6} {:>6} {:>10.2} {:>10.2} {:>10.2} {:>7.1}x {:>10.2} {:>7.1}x {:>12.0} {:>12.0} {:>7.1}x {:>12.0} {:>7} {:>11.2}\n",
            c.name,
            c.compute_nodes,
            c.edges,
            c.eval_us,
            c.eval_grad_us,
            c.grad_forward_us,
            c.grad_speedup,
            c.eval_grad_batched_us,
            c.batch_grad_speedup,
            c.multistart_us,
            c.multistart_batched_us,
            c.multistart_speedup,
            c.allocate_us,
            c.allocate_iters,
            c.allocs_per_iter
        ));
    }
    out
}

/// The `BENCH_solver.json` document: version 2 (adds the batched
/// gradient and multistart columns plus the batch width), one object per
/// case, one case per line so diffs against the checked-in baseline stay
/// readable.
fn render_json(quick: bool, batch_k: usize, cases: &[CaseReport]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"version\": 2,\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"batch_k\": {batch_k},\n"));
    out.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let case = Json::Obj(vec![
            ("name".into(), Json::str(&c.name)),
            ("compute_nodes".into(), Json::num(c.compute_nodes as f64)),
            ("edges".into(), Json::num(c.edges as f64)),
            ("eval_us".into(), Json::num(round3(c.eval_us))),
            ("eval_grad_us".into(), Json::num(round3(c.eval_grad_us))),
            ("grad_forward_us".into(), Json::num(round3(c.grad_forward_us))),
            ("grad_speedup".into(), Json::num(round3(c.grad_speedup))),
            ("eval_grad_batched_us".into(), Json::num(round3(c.eval_grad_batched_us))),
            ("batch_grad_speedup".into(), Json::num(round3(c.batch_grad_speedup))),
            ("multistart_us".into(), Json::num(round3(c.multistart_us))),
            ("multistart_batched_us".into(), Json::num(round3(c.multistart_batched_us))),
            ("multistart_speedup".into(), Json::num(round3(c.multistart_speedup))),
            ("allocate_us".into(), Json::num(round3(c.allocate_us))),
            ("allocate_iters".into(), Json::num(c.allocate_iters as f64)),
            ("allocs_per_iter".into(), Json::num(round3(c.allocs_per_iter))),
        ]);
        out.push_str("    ");
        out.push_str(&case.render());
        out.push_str(if i + 1 < cases.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Round to 3 decimals so the JSON stays diff-stable in size.
fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

/// Compare against a checked-in baseline. `Ok` carries the pass line,
/// `Err` the failure line (which flips the exit code to 1).
fn check_baseline(path: &str, cases: &[CaseReport]) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("baseline: FAILED to read {path}: {e}\n"))?;
    let doc = parse_json(&text).map_err(|e| format!("baseline: FAILED to parse {path}: {e}\n"))?;
    let base = doc
        .get("cases")
        .and_then(Json::as_arr)
        .and_then(|cs| cs.iter().find(|c| c.get("name").and_then(Json::as_str) == Some(GATE_CASE)))
        .and_then(|c| c.get("eval_grad_us"))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("baseline: FAILED — no `{GATE_CASE}` eval_grad_us in {path}\n"))?;
    let cur = cases
        .iter()
        .find(|c| c.name == GATE_CASE)
        .map(|c| c.eval_grad_us)
        .ok_or_else(|| format!("baseline: FAILED — current run has no `{GATE_CASE}` case\n"))?;
    let limit = base * REGRESSION_FACTOR;
    if cur > limit {
        Err(format!(
            "baseline: REGRESSION — {GATE_CASE} eval_grad {cur:.2} us > {REGRESSION_FACTOR}x baseline {base:.2} us\n"
        ))
    } else {
        Ok(format!(
            "baseline: ok — {GATE_CASE} eval_grad {cur:.2} us within {REGRESSION_FACTOR}x of baseline {base:.2} us\n"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_case() -> CaseReport {
        CaseReport {
            name: GATE_CASE.into(),
            compute_nodes: 4,
            edges: 5,
            eval_us: 1.0,
            eval_grad_us: 2.0,
            grad_forward_us: 12.0,
            grad_speedup: 6.0,
            eval_grad_batched_us: 0.5,
            batch_grad_speedup: 4.0,
            multistart_us: 800.0,
            multistart_batched_us: 250.0,
            multistart_speedup: 3.2,
            allocate_us: 100.0,
            allocate_iters: 10,
            allocs_per_iter: 0.0,
        }
    }

    #[test]
    fn json_document_parses_and_round_trips_fields() {
        let json = render_json(true, 8, &[tiny_case()]);
        let doc = parse_json(&json).expect("valid JSON");
        assert_eq!(doc.get("version").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("quick").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("batch_k").and_then(Json::as_u64), Some(8));
        let cases = doc.get("cases").and_then(Json::as_arr).expect("cases array");
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].get("name").and_then(Json::as_str), Some(GATE_CASE));
        assert_eq!(cases[0].get("eval_grad_us").and_then(Json::as_f64), Some(2.0));
        assert_eq!(cases[0].get("grad_speedup").and_then(Json::as_f64), Some(6.0));
        assert_eq!(cases[0].get("eval_grad_batched_us").and_then(Json::as_f64), Some(0.5));
        assert_eq!(cases[0].get("batch_grad_speedup").and_then(Json::as_f64), Some(4.0));
        assert_eq!(cases[0].get("multistart_speedup").and_then(Json::as_f64), Some(3.2));
    }

    #[test]
    fn baseline_gate_passes_within_3x_and_fails_beyond() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("paradigm-bench-baseline-{}.json", std::process::id()));
        std::fs::write(&path, render_json(true, 8, &[tiny_case()])).unwrap();
        let p = path.to_string_lossy().into_owned();

        // Current 2.0 vs baseline 2.0: within 3x.
        let ok = check_baseline(&p, &[tiny_case()]).expect("within limit");
        assert!(ok.contains("baseline: ok"), "{ok}");

        // Current 7.0 vs baseline 2.0: beyond 3x.
        let mut slow = tiny_case();
        slow.eval_grad_us = 7.0;
        let err = check_baseline(&p, &[slow]).expect_err("beyond limit");
        assert!(err.contains("REGRESSION"), "{err}");

        // Missing gate case in the current run.
        let mut other = tiny_case();
        other.name = "fig1-example".into();
        let err = check_baseline(&p, &[other]).expect_err("no gate case");
        assert!(err.contains("FAILED"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bench_case_on_fig1_produces_sane_numbers() {
        let g = paradigm_mdg::example_fig1_mdg();
        let c = bench_case("fig1", &g, 3, 4);
        assert_eq!(c.compute_nodes, 3);
        assert!(c.eval_us > 0.0 && c.eval_grad_us > 0.0 && c.grad_forward_us > 0.0);
        assert!(c.grad_speedup > 0.0);
        assert!(c.eval_grad_batched_us > 0.0 && c.batch_grad_speedup > 0.0);
        assert!(c.multistart_us > 0.0 && c.multistart_batched_us > 0.0);
        assert!(c.multistart_speedup > 0.0);
        assert!(c.allocate_iters > 0);
        // In-process the counting allocator is not installed, so the
        // counter never moves.
        assert_eq!(c.allocs_per_iter, 0.0);
    }
}
