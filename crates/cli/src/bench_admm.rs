//! `paradigm bench-admm` — the tracked consensus-ADMM benchmark.
//!
//! Partitions and solves seeded large MDGs with the distributed
//! consensus-ADMM tier and emits `BENCH_admm.json`, so the scaling
//! trajectory (wall clock, rounds to convergence, residuals, solution
//! quality) is recorded in CI rather than anecdotal. Per case it
//! records:
//!
//! * `wall_ms` — one end-to-end `solve_admm_in_process` call, including
//!   partitioning;
//! * `blocks` / `cut_edges` — what the multilevel partitioner produced;
//! * `outer_rounds`, `inner_iters`, `polish_iters` — coordinator effort;
//! * `primal_residual` / `dual_residual` / `converged` — the consensus
//!   stopping state;
//! * `phi` and, on cases small enough to also solve densely,
//!   `phi_vs_dense` — the ADMM objective over the single-problem
//!   optimum (1.0 = parity; the convergence tests pin this at ≤ 1.01).
//!
//! `--baseline <path>` compares against a checked-in snapshot and fails
//! (exit 1) when the gate case loses convergence or its wall clock
//! regresses more than 5x — coarse enough to survive CI machine noise,
//! tight enough to catch algorithmic regressions.

use std::time::Instant;

use paradigm_admm::{solve_admm_in_process, AdmmConfig};
use paradigm_cost::Machine;
use paradigm_mdg::{fork_join_mdg, random_layered_mdg, Mdg, RandomMdgConfig};
use paradigm_serve::{parse_json, Json};
use paradigm_solver::{allocate, SolverConfig};

use crate::commands::{CliError, CmdOutput};

/// Random-MDG seed; fixed so the benchmark graphs are reproducible.
const SEED: u64 = 1994;

/// Factor by which the gate case's wall clock may exceed the baseline
/// before `--baseline` fails the run. Looser than bench-solve's gate:
/// an ADMM solve is seconds, not microseconds, and CI machines vary.
const REGRESSION_FACTOR: f64 = 5.0;

/// The case name the `--baseline` gate keys on (the largest graph the
/// quick configuration runs).
const GATE_CASE: &str = "random-8192";

/// Dense reference solves are only affordable below this node count.
const DENSE_LIMIT: usize = 3000;

struct CaseReport {
    name: String,
    compute_nodes: usize,
    edges: usize,
    blocks: usize,
    cut_edges: usize,
    outer_rounds: usize,
    inner_iters: usize,
    polish_iters: usize,
    wall_ms: f64,
    phi: f64,
    primal_residual: f64,
    dual_residual: f64,
    converged: bool,
    /// `phi / dense_phi` when a dense reference ran, else None.
    phi_vs_dense: Option<f64>,
}

/// Run the benchmark; `quick` drops the largest graphs (CI smoke).
pub fn run_bench_admm(
    quick: bool,
    out_path: Option<&str>,
    baseline: Option<&str>,
) -> Result<CmdOutput, CliError> {
    let machine = Machine::cm5(256);
    let mut graphs: Vec<(String, Mdg)> = vec![
        ("fork-join".into(), fork_join_mdg(8, 24, 7)),
        ("random-2048".into(), random_layered_mdg(&RandomMdgConfig::sized(2048), SEED)),
        ("random-8192".into(), random_layered_mdg(&RandomMdgConfig::sized(8192), SEED)),
    ];
    if !quick {
        graphs.push((
            "random-100k".into(),
            random_layered_mdg(&RandomMdgConfig::sized(100_000), SEED),
        ));
    }
    let cases: Vec<CaseReport> =
        graphs.iter().map(|(name, g)| bench_case(name, g, machine)).collect();

    let json = render_json(quick, &cases);
    let mut text = render_table(quick, &cases);
    if let Some(path) = out_path {
        std::fs::write(path, &json).map_err(CliError::Io)?;
        text.push_str(&format!("\nwrote {path}\n"));
    } else {
        text.push('\n');
        text.push_str(&json);
    }

    let mut failed = false;
    if let Some(bpath) = baseline {
        match check_baseline(bpath, &cases) {
            Ok(line) => text.push_str(&line),
            Err(line) => {
                text.push_str(&line);
                failed = true;
            }
        }
    }
    Ok(CmdOutput { text, failed })
}

fn bench_case(name: &str, g: &Mdg, machine: Machine) -> CaseReport {
    let t0 = Instant::now();
    let res = solve_admm_in_process(g, machine, &AdmmConfig::default(), 0)
        .unwrap_or_else(|e| panic!("admm solve of {name} failed: {e}"));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let phi_vs_dense = (g.compute_node_count() <= DENSE_LIMIT).then(|| {
        let dense = allocate(g, machine, &SolverConfig::fast());
        res.phi.phi / dense.phi.phi
    });
    CaseReport {
        name: name.to_string(),
        compute_nodes: g.compute_node_count(),
        edges: g.edge_count(),
        blocks: res.blocks,
        cut_edges: res.cut_edges,
        outer_rounds: res.outer_iters,
        inner_iters: res.inner_iters,
        polish_iters: res.polish_iters,
        wall_ms,
        phi: res.phi.phi,
        primal_residual: res.primal_residual,
        dual_residual: res.dual_residual,
        converged: res.converged,
        phi_vs_dense,
    }
}

fn render_table(quick: bool, cases: &[CaseReport]) -> String {
    let mut out = format!("bench-admm ({})\n", if quick { "quick" } else { "full" });
    out.push_str(&format!(
        "{:<14} {:>7} {:>7} {:>6} {:>6} {:>6} {:>9} {:>10} {:>10} {:>10} {:>5} {:>9}\n",
        "case",
        "nodes",
        "edges",
        "blocks",
        "cut",
        "outer",
        "wall_ms",
        "phi",
        "r_primal",
        "r_dual",
        "conv",
        "vs_dense"
    ));
    for c in cases {
        out.push_str(&format!(
            "{:<14} {:>7} {:>7} {:>6} {:>6} {:>6} {:>9.0} {:>10.4} {:>10.2e} {:>10.2e} {:>5} {:>9}\n",
            c.name,
            c.compute_nodes,
            c.edges,
            c.blocks,
            c.cut_edges,
            c.outer_rounds,
            c.wall_ms,
            c.phi,
            c.primal_residual,
            c.dual_residual,
            if c.converged { "yes" } else { "NO" },
            c.phi_vs_dense.map_or("-".into(), |r| format!("{r:.4}")),
        ));
    }
    out
}

/// The `BENCH_admm.json` document: version 1, one case per line so
/// diffs against the checked-in baseline stay readable.
fn render_json(quick: bool, cases: &[CaseReport]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let mut fields = vec![
            ("name".into(), Json::str(&c.name)),
            ("compute_nodes".into(), Json::num(c.compute_nodes as f64)),
            ("edges".into(), Json::num(c.edges as f64)),
            ("blocks".into(), Json::num(c.blocks as f64)),
            ("cut_edges".into(), Json::num(c.cut_edges as f64)),
            ("outer_rounds".into(), Json::num(c.outer_rounds as f64)),
            ("inner_iters".into(), Json::num(c.inner_iters as f64)),
            ("polish_iters".into(), Json::num(c.polish_iters as f64)),
            ("wall_ms".into(), Json::num(round3(c.wall_ms))),
            ("phi".into(), Json::num(round6(c.phi))),
            ("primal_residual".into(), Json::num(c.primal_residual)),
            ("dual_residual".into(), Json::num(c.dual_residual)),
            ("converged".into(), Json::Bool(c.converged)),
        ];
        if let Some(r) = c.phi_vs_dense {
            fields.push(("phi_vs_dense".into(), Json::num(round6(r))));
        }
        out.push_str("    ");
        out.push_str(&Json::Obj(fields).render());
        out.push_str(if i + 1 < cases.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

fn round6(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

/// Compare against a checked-in baseline. `Ok` carries the pass line,
/// `Err` the failure line (which flips the exit code to 1).
fn check_baseline(path: &str, cases: &[CaseReport]) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("baseline: FAILED to read {path}: {e}\n"))?;
    let doc = parse_json(&text).map_err(|e| format!("baseline: FAILED to parse {path}: {e}\n"))?;
    let base = doc
        .get("cases")
        .and_then(Json::as_arr)
        .and_then(|cs| cs.iter().find(|c| c.get("name").and_then(Json::as_str) == Some(GATE_CASE)))
        .and_then(|c| c.get("wall_ms"))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("baseline: FAILED — no `{GATE_CASE}` wall_ms in {path}\n"))?;
    let cur = cases
        .iter()
        .find(|c| c.name == GATE_CASE)
        .ok_or_else(|| format!("baseline: FAILED — current run has no `{GATE_CASE}` case\n"))?;
    if !cur.converged {
        return Err(format!("baseline: REGRESSION — {GATE_CASE} no longer converges\n"));
    }
    let limit = base * REGRESSION_FACTOR;
    if cur.wall_ms > limit {
        Err(format!(
            "baseline: REGRESSION — {GATE_CASE} wall {:.0} ms > {REGRESSION_FACTOR}x baseline {base:.0} ms\n",
            cur.wall_ms
        ))
    } else {
        Ok(format!(
            "baseline: ok — {GATE_CASE} converged, wall {:.0} ms within {REGRESSION_FACTOR}x of baseline {base:.0} ms\n",
            cur.wall_ms
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_case() -> CaseReport {
        CaseReport {
            name: GATE_CASE.into(),
            compute_nodes: 8192,
            edges: 20000,
            blocks: 16,
            cut_edges: 900,
            outer_rounds: 40,
            inner_iters: 120_000,
            polish_iters: 60,
            wall_ms: 2000.0,
            phi: 12.5,
            primal_residual: 5e-5,
            dual_residual: 8e-5,
            converged: true,
            phi_vs_dense: None,
        }
    }

    #[test]
    fn json_document_parses_and_round_trips_fields() {
        let json = render_json(true, &[tiny_case()]);
        let doc = parse_json(&json).expect("valid JSON");
        assert_eq!(doc.get("version").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("quick").and_then(Json::as_bool), Some(true));
        let cases = doc.get("cases").and_then(Json::as_arr).expect("cases array");
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].get("name").and_then(Json::as_str), Some(GATE_CASE));
        assert_eq!(cases[0].get("wall_ms").and_then(Json::as_f64), Some(2000.0));
        assert_eq!(cases[0].get("converged").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn baseline_gate_checks_wall_clock_and_convergence() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("paradigm-bench-admm-baseline-{}.json", std::process::id()));
        std::fs::write(&path, render_json(true, &[tiny_case()])).unwrap();
        let p = path.to_string_lossy().into_owned();

        let ok = check_baseline(&p, &[tiny_case()]).expect("within limit");
        assert!(ok.contains("baseline: ok"), "{ok}");

        let mut slow = tiny_case();
        slow.wall_ms = 11_000.0;
        let err = check_baseline(&p, &[slow]).expect_err("beyond limit");
        assert!(err.contains("REGRESSION"), "{err}");

        let mut diverged = tiny_case();
        diverged.converged = false;
        let err = check_baseline(&p, &[diverged]).expect_err("lost convergence");
        assert!(err.contains("no longer converges"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bench_case_on_a_small_graph_produces_sane_numbers() {
        let g = fork_join_mdg(4, 8, 3);
        let c = bench_case("smoke", &g, Machine::cm5(32));
        assert!(c.wall_ms > 0.0);
        assert!(c.blocks >= 1);
        assert!(c.converged, "tiny fork-join must converge");
        let ratio = c.phi_vs_dense.expect("dense reference ran");
        assert!(ratio <= 1.02, "admm within 2% of dense on a tiny graph, got {ratio}");
    }
}
