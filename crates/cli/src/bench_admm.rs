//! `paradigm bench-admm` — the tracked consensus-ADMM benchmark.
//!
//! Partitions and solves seeded large MDGs with the distributed
//! consensus-ADMM tier and emits `BENCH_admm.json`, so the scaling
//! trajectory (wall clock, rounds to convergence, residuals, solution
//! quality) is recorded in CI rather than anecdotal. Per case it
//! records:
//!
//! * `wall_ms` — one end-to-end ADMM solve, including partitioning;
//! * `blocks` / `cut_edges` — what the multilevel partitioner produced;
//! * `outer_rounds`, `inner_iters`, `polish_iters` — coordinator effort;
//! * `block_solves` / `block_solves_per_s` — fresh block x-updates
//!   executed (`blocks * outer_rounds` minus stale-served slots) and
//!   their end-to-end throughput, the number the batched inner-solver
//!   work is meant to move;
//! * `primal_residual` / `dual_residual` / `converged` — the consensus
//!   stopping state;
//! * `phi` and, on cases small enough to also solve densely,
//!   `phi_vs_dense` — the ADMM objective over the single-problem
//!   optimum (1.0 = parity; the convergence tests pin this at ≤ 1.01);
//! * fault-tolerance counters (`blocks_retried`, `blocks_stolen`,
//!   `blocks_stale`, `workers_quarantined`, `backend_downgrades`) —
//!   zero on a healthy in-process run, nonzero under fleet chaos.
//!
//! With `--fleet <n>` the benchmark spawns `n` in-process
//! `serve --worker` nodes on ephemeral localhost ports and routes every
//! block x-update through [`TcpBlockBackend`] (wrapped in a
//! [`FailoverBackend`], mirroring production `serve` wiring). The
//! cluster chaos drill: `--chaos <plan>` arms worker 0 with seeded
//! block-level faults, and `--kill-after-ms <ms>` shuts the last worker
//! down mid-gate-case — the run must still complete, converge, and
//! report nonzero retry/steal counts.
//!
//! `--baseline <path>` compares against a checked-in snapshot and fails
//! (exit 1) when the gate case loses convergence or its wall clock
//! regresses more than 5x — coarse enough to survive CI machine noise,
//! tight enough to catch algorithmic regressions.

use std::net::SocketAddr;
use std::sync::Arc;

// Shim import, not std: `Server::shutdown_flag` hands back the shim's
// `AtomicBool`, which is a distinct type under `--cfg paradigm_race`.
use paradigm_race::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use paradigm_admm::{
    solve_admm, solve_admm_in_process, AdmmConfig, AdmmResult, FailoverBackend, InProcessBackend,
};
use paradigm_cost::Machine;
use paradigm_mdg::{fork_join_mdg, random_layered_mdg, Mdg, RandomMdgConfig};
use paradigm_serve::{
    parse_json, FaultPlan, FleetConfig, Json, MetricsSnapshot, ServeConfig, Server, ServerConfig,
    TcpBlockBackend,
};
use paradigm_solver::{allocate, SolverConfig};

use crate::commands::{CliError, CmdOutput};

/// Random-MDG seed; fixed so the benchmark graphs are reproducible.
const SEED: u64 = 1994;

/// Factor by which the gate case's wall clock may exceed the baseline
/// before `--baseline` fails the run. Looser than bench-solve's gate:
/// an ADMM solve is seconds, not microseconds, and CI machines vary.
const REGRESSION_FACTOR: f64 = 5.0;

/// The case name the `--baseline` gate keys on (the largest graph the
/// quick configuration runs). `--kill-after-ms` arms its kill timer at
/// the start of this case so the chaos drill lands mid-solve.
const GATE_CASE: &str = "random-8192";

/// Dense reference solves are only affordable below this node count.
const DENSE_LIMIT: usize = 3000;

/// Everything `bench-admm` can be asked to do (mirrors the CLI flags).
pub struct BenchAdmmOpts {
    /// Drop the largest graphs (CI smoke).
    pub quick: bool,
    /// Write `BENCH_admm.json` here instead of stdout.
    pub out: Option<String>,
    /// Compare the gate case against this checked-in snapshot.
    pub baseline: Option<String>,
    /// Spawn this many local worker nodes and solve through them
    /// (0 = in-process backend, the tracked-number configuration).
    pub fleet: usize,
    /// Seeded fault plan armed on worker 0 (fleet mode only).
    pub chaos: Option<FaultPlan>,
    /// Shut the last worker down this long after the gate case starts.
    pub kill_after_ms: Option<u64>,
    /// Bounded-staleness budget per block (0 = strict barrier).
    pub admm_stale: usize,
    /// Per-block-job deadline override in milliseconds.
    pub block_deadline_ms: Option<u64>,
}

impl Default for BenchAdmmOpts {
    fn default() -> Self {
        BenchAdmmOpts {
            quick: true,
            out: None,
            baseline: None,
            fleet: 0,
            chaos: None,
            kill_after_ms: None,
            admm_stale: 0,
            block_deadline_ms: None,
        }
    }
}

struct CaseReport {
    name: String,
    compute_nodes: usize,
    edges: usize,
    blocks: usize,
    cut_edges: usize,
    outer_rounds: usize,
    inner_iters: usize,
    polish_iters: usize,
    /// Fresh block x-updates executed: `blocks * outer_rounds` minus the
    /// round slots that were served a stale (reused) solution.
    block_solves: u64,
    /// `block_solves` over the case's wall clock, in solves per second.
    block_solves_per_s: f64,
    wall_ms: f64,
    phi: f64,
    primal_residual: f64,
    dual_residual: f64,
    converged: bool,
    /// `phi / dense_phi` when a dense reference ran, else None.
    phi_vs_dense: Option<f64>,
    blocks_retried: u64,
    blocks_stolen: u64,
    blocks_stale: u64,
    workers_quarantined: u64,
    backend_downgrades: u64,
}

/// How a case's block x-updates are executed.
enum Runner<'a> {
    /// The default tracked configuration: threaded solves in this
    /// process.
    InProcess,
    /// Fan out over a TCP worker fleet, wrapped in a failover to the
    /// in-process backend (mirrors `serve` wiring).
    Fleet { addrs: &'a [SocketAddr], deadline: Duration },
}

/// Run the benchmark per `opts`; see the module docs for the report.
pub fn run_bench_admm(opts: &BenchAdmmOpts) -> Result<CmdOutput, CliError> {
    let machine = Machine::cm5(256);
    let admm_cfg = AdmmConfig { max_stale: opts.admm_stale, ..AdmmConfig::default() };
    let deadline =
        opts.block_deadline_ms.map_or(FleetConfig::default().block_deadline, Duration::from_millis);

    let mut graphs: Vec<(String, Mdg)> = vec![
        ("fork-join".into(), fork_join_mdg(8, 24, 7)),
        ("random-2048".into(), random_layered_mdg(&RandomMdgConfig::sized(2048), SEED)),
        ("random-8192".into(), random_layered_mdg(&RandomMdgConfig::sized(8192), SEED)),
    ];
    if !opts.quick {
        graphs.push((
            "random-100k".into(),
            random_layered_mdg(&RandomMdgConfig::sized(100_000), SEED),
        ));
    }

    let fleet = if opts.fleet > 0 {
        Some(spawn_fleet(opts.fleet, opts.chaos.clone()).map_err(CliError::Io)?)
    } else {
        None
    };

    let mut text = String::new();
    if let Some(f) = &fleet {
        text.push_str(&format!(
            "fleet: {} worker(s) on localhost{}{}\n",
            f.addrs.len(),
            if opts.chaos.is_some() { ", chaos armed on worker 0" } else { "" },
            opts.kill_after_ms.map_or(String::new(), |ms| format!(
                ", killing worker {} after {ms} ms of {GATE_CASE}",
                f.addrs.len() - 1
            )),
        ));
    }

    let mut cases: Vec<CaseReport> = Vec::with_capacity(graphs.len());
    for (name, g) in &graphs {
        // Arm the kill timer as the gate case starts, so the worker
        // dies mid-solve of the case the acceptance gate watches.
        if name == GATE_CASE {
            if let (Some(ms), Some(f)) = (opts.kill_after_ms, fleet.as_ref()) {
                let flag = Arc::clone(f.flags.last().expect("fleet is non-empty"));
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(ms));
                    flag.store(true, Ordering::Relaxed);
                });
            }
        }
        let runner = match &fleet {
            Some(f) => Runner::Fleet { addrs: &f.addrs, deadline },
            None => Runner::InProcess,
        };
        cases.push(bench_case(name, g, machine, &admm_cfg, &runner)?);
    }

    text.push_str(&render_table(opts.quick, &cases));
    if let Some(f) = fleet {
        for (i, snap) in f.shutdown().into_iter().enumerate() {
            text.push_str(&format!(
                "worker {i}: blocks-solved {}  requests {}\n",
                snap.blocks_solved, snap.requests
            ));
        }
    }

    let json = render_json(opts.quick, opts.fleet, &cases);
    if let Some(path) = &opts.out {
        std::fs::write(path, &json).map_err(CliError::Io)?;
        text.push_str(&format!("\nwrote {path}\n"));
    } else {
        text.push('\n');
        text.push_str(&json);
    }

    let mut failed = false;
    if let Some(bpath) = &opts.baseline {
        match check_baseline(bpath, &cases) {
            Ok(line) => text.push_str(&line),
            Err(line) => {
                text.push_str(&line);
                failed = true;
            }
        }
    }
    Ok(CmdOutput { text, failed })
}

/// A locally-spawned worker fleet: ephemeral-port `serve --worker`
/// nodes, each with its own accept-loop thread.
struct FleetHandles {
    addrs: Vec<SocketAddr>,
    flags: Vec<Arc<AtomicBool>>,
    joins: Vec<std::thread::JoinHandle<MetricsSnapshot>>,
}

/// Spawn `n` worker nodes; `chaos`, when given, is armed on worker 0
/// only, so the rest of the fleet can absorb its injected failures.
fn spawn_fleet(n: usize, chaos: Option<FaultPlan>) -> std::io::Result<FleetHandles> {
    let mut fleet = FleetHandles {
        addrs: Vec::with_capacity(n),
        flags: Vec::with_capacity(n),
        joins: Vec::with_capacity(n),
    };
    for i in 0..n {
        let server = Server::bind(ServerConfig {
            service: ServeConfig {
                workers: 2,
                cache_capacity: 8,
                queue_capacity: 8,
                worker: true,
                chaos: if i == 0 { chaos.clone() } else { None },
                ..ServeConfig::default()
            },
            port: 0,
        })?;
        fleet.addrs.push(server.local_addr()?);
        fleet.flags.push(server.shutdown_flag());
        fleet.joins.push(std::thread::spawn(move || server.run()));
    }
    Ok(fleet)
}

impl FleetHandles {
    /// Raise every shutdown flag and join the accept loops, returning
    /// each worker's final metrics (killed workers report what they
    /// solved before dying).
    fn shutdown(self) -> Vec<MetricsSnapshot> {
        for flag in &self.flags {
            flag.store(true, Ordering::Relaxed);
        }
        self.joins.into_iter().map(|j| j.join().expect("worker accept loop panicked")).collect()
    }
}

fn bench_case(
    name: &str,
    g: &Mdg,
    machine: Machine,
    cfg: &AdmmConfig,
    runner: &Runner<'_>,
) -> Result<CaseReport, CliError> {
    let t0 = Instant::now();
    let res = run_case(g, machine, cfg, runner)
        .map_err(|e| CliError::Config(format!("admm solve of {name} failed: {e}")))?;
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let phi_vs_dense = (g.compute_node_count() <= DENSE_LIMIT).then(|| {
        let dense = allocate(g, machine, &SolverConfig::fast());
        res.phi.phi / dense.phi.phi
    });
    let block_solves = ((res.blocks * res.outer_iters) as u64).saturating_sub(res.blocks_stale);
    let block_solves_per_s =
        if wall_ms > 0.0 { block_solves as f64 / (wall_ms / 1e3) } else { 0.0 };
    Ok(CaseReport {
        name: name.to_string(),
        compute_nodes: g.compute_node_count(),
        edges: g.edge_count(),
        blocks: res.blocks,
        cut_edges: res.cut_edges,
        outer_rounds: res.outer_iters,
        inner_iters: res.inner_iters,
        polish_iters: res.polish_iters,
        block_solves,
        block_solves_per_s,
        wall_ms,
        phi: res.phi.phi,
        primal_residual: res.primal_residual,
        dual_residual: res.dual_residual,
        converged: res.converged,
        phi_vs_dense,
        blocks_retried: res.blocks_retried,
        blocks_stolen: res.blocks_stolen,
        blocks_stale: res.blocks_stale,
        workers_quarantined: res.workers_quarantined,
        backend_downgrades: res.backend_downgrades,
    })
}

fn run_case(
    g: &Mdg,
    machine: Machine,
    cfg: &AdmmConfig,
    runner: &Runner<'_>,
) -> Result<AdmmResult, String> {
    match runner {
        Runner::InProcess => solve_admm_in_process(g, machine, cfg, 0).map_err(|e| e.to_string()),
        Runner::Fleet { addrs, deadline } => {
            let tcp = TcpBlockBackend::with_config(
                addrs,
                FleetConfig { block_deadline: *deadline, ..FleetConfig::default() },
            )
            .map_err(|e| e.to_string())?;
            let mut backend = FailoverBackend::new(tcp, InProcessBackend::default());
            solve_admm(g, machine, cfg, &mut backend).map_err(|e| e.to_string())
        }
    }
}

fn render_table(quick: bool, cases: &[CaseReport]) -> String {
    let mut out = format!("bench-admm ({})\n", if quick { "quick" } else { "full" });
    out.push_str(&format!(
        "{:<14} {:>7} {:>7} {:>6} {:>6} {:>6} {:>7} {:>8} {:>9} {:>10} {:>10} {:>10} {:>5} {:>9}\n",
        "case",
        "nodes",
        "edges",
        "blocks",
        "cut",
        "outer",
        "solves",
        "blk/s",
        "wall_ms",
        "phi",
        "r_primal",
        "r_dual",
        "conv",
        "vs_dense"
    ));
    for c in cases {
        out.push_str(&format!(
            "{:<14} {:>7} {:>7} {:>6} {:>6} {:>6} {:>7} {:>8.1} {:>9.0} {:>10.4} {:>10.2e} {:>10.2e} {:>5} {:>9}\n",
            c.name,
            c.compute_nodes,
            c.edges,
            c.blocks,
            c.cut_edges,
            c.outer_rounds,
            c.block_solves,
            c.block_solves_per_s,
            c.wall_ms,
            c.phi,
            c.primal_residual,
            c.dual_residual,
            if c.converged { "yes" } else { "NO" },
            c.phi_vs_dense.map_or("-".into(), |r| format!("{r:.4}")),
        ));
        let faults = c.blocks_retried
            + c.blocks_stolen
            + c.blocks_stale
            + c.workers_quarantined
            + c.backend_downgrades;
        if faults > 0 {
            out.push_str(&format!(
                "  faults: retried {}  stolen {}  stale {}  quarantined {}  downgrades {}\n",
                c.blocks_retried,
                c.blocks_stolen,
                c.blocks_stale,
                c.workers_quarantined,
                c.backend_downgrades,
            ));
        }
    }
    out
}

/// The `BENCH_admm.json` document: version 3 (v2 plus the per-round
/// block-solve throughput pair `block_solves` / `block_solves_per_s`),
/// one case per line so diffs against the checked-in baseline stay
/// readable.
fn render_json(quick: bool, fleet: usize, cases: &[CaseReport]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"version\": 3,\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"fleet\": {fleet},\n"));
    out.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let mut fields = vec![
            ("name".into(), Json::str(&c.name)),
            ("compute_nodes".into(), Json::num(c.compute_nodes as f64)),
            ("edges".into(), Json::num(c.edges as f64)),
            ("blocks".into(), Json::num(c.blocks as f64)),
            ("cut_edges".into(), Json::num(c.cut_edges as f64)),
            ("outer_rounds".into(), Json::num(c.outer_rounds as f64)),
            ("inner_iters".into(), Json::num(c.inner_iters as f64)),
            ("polish_iters".into(), Json::num(c.polish_iters as f64)),
            ("block_solves".into(), Json::num(c.block_solves as f64)),
            ("block_solves_per_s".into(), Json::num(round3(c.block_solves_per_s))),
            ("wall_ms".into(), Json::num(round3(c.wall_ms))),
            ("phi".into(), Json::num(round6(c.phi))),
            ("primal_residual".into(), Json::num(c.primal_residual)),
            ("dual_residual".into(), Json::num(c.dual_residual)),
            ("converged".into(), Json::Bool(c.converged)),
            ("blocks_retried".into(), Json::num(c.blocks_retried as f64)),
            ("blocks_stolen".into(), Json::num(c.blocks_stolen as f64)),
            ("blocks_stale".into(), Json::num(c.blocks_stale as f64)),
            ("workers_quarantined".into(), Json::num(c.workers_quarantined as f64)),
            ("backend_downgrades".into(), Json::num(c.backend_downgrades as f64)),
        ];
        if let Some(r) = c.phi_vs_dense {
            fields.push(("phi_vs_dense".into(), Json::num(round6(r))));
        }
        out.push_str("    ");
        out.push_str(&Json::Obj(fields).render());
        out.push_str(if i + 1 < cases.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

fn round6(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

/// Compare against a checked-in baseline. `Ok` carries the pass line,
/// `Err` the failure line (which flips the exit code to 1). Reads only
/// fields present since schema v1, so v1 baselines keep working.
fn check_baseline(path: &str, cases: &[CaseReport]) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("baseline: FAILED to read {path}: {e}\n"))?;
    let doc = parse_json(&text).map_err(|e| format!("baseline: FAILED to parse {path}: {e}\n"))?;
    let base = doc
        .get("cases")
        .and_then(Json::as_arr)
        .and_then(|cs| cs.iter().find(|c| c.get("name").and_then(Json::as_str) == Some(GATE_CASE)))
        .and_then(|c| c.get("wall_ms"))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("baseline: FAILED — no `{GATE_CASE}` wall_ms in {path}\n"))?;
    let cur = cases
        .iter()
        .find(|c| c.name == GATE_CASE)
        .ok_or_else(|| format!("baseline: FAILED — current run has no `{GATE_CASE}` case\n"))?;
    if !cur.converged {
        return Err(format!("baseline: REGRESSION — {GATE_CASE} no longer converges\n"));
    }
    let limit = base * REGRESSION_FACTOR;
    if cur.wall_ms > limit {
        Err(format!(
            "baseline: REGRESSION — {GATE_CASE} wall {:.0} ms > {REGRESSION_FACTOR}x baseline {base:.0} ms\n",
            cur.wall_ms
        ))
    } else {
        Ok(format!(
            "baseline: ok — {GATE_CASE} converged, wall {:.0} ms within {REGRESSION_FACTOR}x of baseline {base:.0} ms\n",
            cur.wall_ms
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_case() -> CaseReport {
        CaseReport {
            name: GATE_CASE.into(),
            compute_nodes: 8192,
            edges: 20000,
            blocks: 16,
            cut_edges: 900,
            outer_rounds: 40,
            inner_iters: 120_000,
            polish_iters: 60,
            block_solves: 639,
            block_solves_per_s: 319.5,
            wall_ms: 2000.0,
            phi: 12.5,
            primal_residual: 5e-5,
            dual_residual: 8e-5,
            converged: true,
            phi_vs_dense: None,
            blocks_retried: 3,
            blocks_stolen: 2,
            blocks_stale: 1,
            workers_quarantined: 1,
            backend_downgrades: 0,
        }
    }

    #[test]
    fn json_document_parses_and_round_trips_fields() {
        let json = render_json(true, 3, &[tiny_case()]);
        let doc = parse_json(&json).expect("valid JSON");
        assert_eq!(doc.get("version").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("quick").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("fleet").and_then(Json::as_u64), Some(3));
        let cases = doc.get("cases").and_then(Json::as_arr).expect("cases array");
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].get("name").and_then(Json::as_str), Some(GATE_CASE));
        assert_eq!(cases[0].get("wall_ms").and_then(Json::as_f64), Some(2000.0));
        assert_eq!(cases[0].get("block_solves").and_then(Json::as_u64), Some(639));
        assert_eq!(cases[0].get("block_solves_per_s").and_then(Json::as_f64), Some(319.5));
        assert_eq!(cases[0].get("converged").and_then(Json::as_bool), Some(true));
        assert_eq!(cases[0].get("blocks_retried").and_then(Json::as_u64), Some(3));
        assert_eq!(cases[0].get("blocks_stolen").and_then(Json::as_u64), Some(2));
        assert_eq!(cases[0].get("blocks_stale").and_then(Json::as_u64), Some(1));
        assert_eq!(cases[0].get("workers_quarantined").and_then(Json::as_u64), Some(1));
        assert_eq!(cases[0].get("backend_downgrades").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn baseline_gate_checks_wall_clock_and_convergence() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("paradigm-bench-admm-baseline-{}.json", std::process::id()));
        std::fs::write(&path, render_json(true, 0, &[tiny_case()])).unwrap();
        let p = path.to_string_lossy().into_owned();

        let ok = check_baseline(&p, &[tiny_case()]).expect("within limit");
        assert!(ok.contains("baseline: ok"), "{ok}");

        let mut slow = tiny_case();
        slow.wall_ms = 11_000.0;
        let err = check_baseline(&p, &[slow]).expect_err("beyond limit");
        assert!(err.contains("REGRESSION"), "{err}");

        let mut diverged = tiny_case();
        diverged.converged = false;
        let err = check_baseline(&p, &[diverged]).expect_err("lost convergence");
        assert!(err.contains("no longer converges"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bench_case_on_a_small_graph_produces_sane_numbers() {
        let g = fork_join_mdg(4, 8, 3);
        let c =
            bench_case("smoke", &g, Machine::cm5(32), &AdmmConfig::default(), &Runner::InProcess)
                .expect("tiny solve succeeds");
        assert!(c.wall_ms > 0.0);
        assert!(c.blocks >= 1);
        assert!(
            c.block_solves >= (c.blocks * c.outer_rounds) as u64 - c.blocks_stale,
            "block_solves accounts for every non-stale round slot"
        );
        assert!(c.block_solves_per_s > 0.0, "throughput is positive on a completed solve");
        assert!(c.converged, "tiny fork-join must converge");
        assert_eq!(c.blocks_retried + c.blocks_stolen + c.backend_downgrades, 0);
        let ratio = c.phi_vs_dense.expect("dense reference ran");
        assert!(ratio <= 1.02, "admm within 2% of dense on a tiny graph, got {ratio}");
    }

    #[test]
    fn bench_case_through_a_tiny_local_fleet_matches_in_process() {
        let g = fork_join_mdg(4, 8, 3);
        let cfg = AdmmConfig::default();
        let local = bench_case("smoke", &g, Machine::cm5(32), &cfg, &Runner::InProcess).unwrap();
        let fleet = spawn_fleet(2, None).expect("spawn two local workers");
        let dist = bench_case(
            "smoke",
            &g,
            Machine::cm5(32),
            &cfg,
            &Runner::Fleet { addrs: &fleet.addrs, deadline: Duration::from_secs(30) },
        )
        .expect("fleet solve succeeds");
        let snaps = fleet.shutdown();
        assert_eq!(dist.phi.to_bits(), local.phi.to_bits(), "strict mode is bitwise-identical");
        assert_eq!(dist.backend_downgrades, 0, "healthy fleet never downgrades");
        let solved: u64 = snaps.iter().map(|s| s.blocks_solved).sum();
        assert!(solved >= 1, "workers actually solved blocks, got {solved}");
    }

    /// Heavy end-to-end chaos drill (the acceptance-gate scenario):
    /// three workers, worker 0 armed with block faults, the last worker
    /// killed mid-gate-case — the run must complete and converge.
    /// `cargo test -p paradigm-cli --release -- --ignored` runs it.
    #[test]
    #[ignore = "multi-second end-to-end fleet benchmark"]
    fn fleet_chaos_run_completes_and_reports_recovery() {
        let out = run_bench_admm(&BenchAdmmOpts {
            fleet: 3,
            chaos: Some(FaultPlan::parse("block-crash=0.15,seed=7").expect("valid plan")),
            kill_after_ms: Some(200),
            ..BenchAdmmOpts::default()
        })
        .expect("chaos bench completes without intervention");
        assert!(!out.failed, "no baseline gate was requested");
        assert!(out.text.contains("faults: retried"), "fault counters surfaced:\n{}", out.text);
    }
}
