//! # paradigm-cli — command-line driver
//!
//! A small std-only CLI over the pipeline, for working with MDG files in
//! the `paradigm-mdg` text format:
//!
//! ```text
//! paradigm info <file.mdg>                     graph statistics
//! paradigm compile <file.mdg> -p N [options]   allocate + schedule
//! paradigm simulate <file.mdg> -p N [options]  compile, lower, execute
//! paradigm calibrate [-p N]                    fit Tables 1-2 on the sim
//! paradigm demo <fig1|cmm|strassen>            emit a built-in graph
//! ```
//!
//! The argument parser and command implementations live here in the
//! library so they are unit-testable; `main.rs` is a thin shim.

pub mod args;
pub mod bench_admm;
pub mod bench_solve;
pub mod commands;

pub use args::{parse_args, Command, ParsedArgs, UsageError};
pub use commands::run;
