//! 2D (block, block) grid distributions — the paper's stated future
//! work: *"For other programs more general distributions may be needed
//! for optimal performance. Keeping this in mind, we are in the process
//! of extending our cost functions."*
//!
//! A [`GridDist`] distributes a matrix over an `r x c` processor grid:
//! processor `(i, j)` owns the intersection of row-block `i` and
//! column-block `j`. The 1D distributions of [`crate::distribution`] are
//! the degenerate cases `r x 1` (Row) and `1 x c` (Col), and the module
//! proves that equivalence in its tests.
//!
//! [`grid_redistribution_plan`] produces the exact message set between
//! two arbitrary grids, and [`grid_transfer_cost`] aggregates it into the
//! same send/network/receive decomposition as the paper's Eq. 2–3 —
//! giving a cost function for the general case that degenerates to the
//! paper's formulas on 1D grids (also pinned by tests).

use crate::distribution::{block_ranges, RedistMessage};
use crate::matrix::Matrix;

/// A 2D block distribution over an `rows_procs x cols_procs` grid.
/// Rank order is row-major: rank = `i * cols_procs + j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridDist {
    /// Processor rows.
    pub rows_procs: usize,
    /// Processor columns.
    pub cols_procs: usize,
}

impl GridDist {
    /// Construct a grid; both extents must be positive.
    pub fn new(rows_procs: usize, cols_procs: usize) -> Self {
        assert!(rows_procs >= 1 && cols_procs >= 1, "grid extents must be positive");
        GridDist { rows_procs, cols_procs }
    }

    /// A pure row distribution (the paper's ROW case).
    pub fn row(procs: usize) -> Self {
        GridDist::new(procs, 1)
    }

    /// A pure column distribution (the paper's COL case).
    pub fn col(procs: usize) -> Self {
        GridDist::new(1, procs)
    }

    /// Total processors in the grid.
    pub fn procs(&self) -> usize {
        self.rows_procs * self.cols_procs
    }

    /// The `(row-range, col-range)` owned by `rank` for a
    /// `rows x cols` matrix.
    pub fn owned(&self, rank: usize, rows: usize, cols: usize) -> ((usize, usize), (usize, usize)) {
        assert!(rank < self.procs(), "rank {rank} outside grid");
        let (i, j) = (rank / self.cols_procs, rank % self.cols_procs);
        let r = block_ranges(rows, self.rows_procs)[i];
        let c = block_ranges(cols, self.cols_procs)[j];
        (r, c)
    }

    /// Split a matrix into per-rank local blocks (row-major rank order).
    pub fn scatter(&self, m: &Matrix) -> Vec<Matrix> {
        (0..self.procs())
            .map(|rank| {
                let ((r0, rl), (c0, cl)) = self.owned(rank, m.rows(), m.cols());
                m.block(r0, c0, rl, cl)
            })
            .collect()
    }

    /// Reassemble a matrix from its per-rank blocks.
    pub fn gather(&self, pieces: &[Matrix], rows: usize, cols: usize) -> Matrix {
        assert_eq!(pieces.len(), self.procs(), "piece count mismatch");
        let mut out = Matrix::zeros(rows, cols);
        for (rank, piece) in pieces.iter().enumerate() {
            let ((r0, _), (c0, _)) = self.owned(rank, rows, cols);
            out.set_block(r0, c0, piece);
        }
        out
    }
}

/// Overlap length of two half-open ranges.
fn overlap(a: (usize, usize), b: (usize, usize)) -> usize {
    let lo = a.0.max(b.0);
    let hi = (a.0 + a.1).min(b.0 + b.1);
    hi.saturating_sub(lo)
}

/// The exact message set moving a `rows x cols` `f64` matrix from grid
/// `src` to grid `dst`: every rank pair whose owned rectangles intersect
/// exchanges the intersection. Total bytes always equal the matrix size.
pub fn grid_redistribution_plan(
    rows: usize,
    cols: usize,
    src: GridDist,
    dst: GridDist,
) -> Vec<RedistMessage> {
    let elem = std::mem::size_of::<f64>() as u64;
    let mut out = Vec::new();
    for s in 0..src.procs() {
        let (sr, sc) = src.owned(s, rows, cols);
        if sr.1 == 0 || sc.1 == 0 {
            continue;
        }
        for d in 0..dst.procs() {
            let (dr, dc) = dst.owned(d, rows, cols);
            let r = overlap(sr, dr);
            let c = overlap(sc, dc);
            if r > 0 && c > 0 {
                out.push(RedistMessage {
                    src: s as u32,
                    dst: d as u32,
                    bytes: (r * c) as u64 * elem,
                });
            }
        }
    }
    out
}

/// Aggregated transfer cost of a grid redistribution in the paper's
/// decomposition: per-processor maxima of send and receive work
/// (startup + per-byte per message), plus the largest single-message
/// network delay. Degenerates to Eq. 2 on `r x 1 -> r' x 1` grids and to
/// Eq. 3 on `r x 1 -> 1 x c` grids (see tests).
pub fn grid_transfer_cost(
    rows: usize,
    cols: usize,
    src: GridDist,
    dst: GridDist,
    xfer: &paradigm_cost_params::TransferParams,
) -> paradigm_cost_params::TransferCost {
    let plan = grid_redistribution_plan(rows, cols, src, dst);
    let mut send = vec![0.0_f64; src.procs()];
    let mut recv = vec![0.0_f64; dst.procs()];
    let mut net: f64 = 0.0;
    for m in &plan {
        send[m.src as usize] += xfer.t_ss + m.bytes as f64 * xfer.t_ps;
        recv[m.dst as usize] += xfer.t_sr + m.bytes as f64 * xfer.t_pr;
        net = net.max(m.bytes as f64 * xfer.t_n);
    }
    paradigm_cost_params::TransferCost {
        send: send.into_iter().fold(0.0, f64::max),
        network: net,
        recv: recv.into_iter().fold(0.0, f64::max),
    }
}

/// Minimal local mirror of the transfer-parameter types so this crate
/// stays dependency-light (`paradigm-kernels` sits below `paradigm-cost`
/// in the crate DAG). The field meanings match
/// `paradigm_cost::TransferParams` exactly; `paradigm-cost`'s test-suite
/// pins the numerical equivalence.
pub mod paradigm_cost_params {
    /// Transfer constants (see `paradigm_cost::TransferParams`).
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct TransferParams {
        /// Send startup, seconds.
        pub t_ss: f64,
        /// Send per byte.
        pub t_ps: f64,
        /// Receive startup.
        pub t_sr: f64,
        /// Receive per byte.
        pub t_pr: f64,
        /// Network per byte.
        pub t_n: f64,
    }

    /// The three-way cost decomposition (see
    /// `paradigm_cost::TransferCost`).
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct TransferCost {
        /// Send component.
        pub send: f64,
        /// Network component.
        pub network: f64,
        /// Receive component.
        pub recv: f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm5() -> paradigm_cost_params::TransferParams {
        paradigm_cost_params::TransferParams {
            t_ss: 777.56e-6,
            t_ps: 486.98e-9,
            t_sr: 465.58e-6,
            t_pr: 426.25e-9,
            t_n: 0.0,
        }
    }

    #[test]
    fn grid_scatter_gather_roundtrip() {
        let m = Matrix::random(13, 9, 1);
        for (r, c) in [(1usize, 1usize), (2, 2), (3, 2), (13, 9), (4, 1), (1, 5)] {
            let grid = GridDist::new(r, c);
            let back = grid.gather(&grid.scatter(&m), 13, 9);
            assert!(back.approx_eq(&m, 0.0), "{r}x{c}");
        }
    }

    #[test]
    fn plan_conserves_bytes_between_arbitrary_grids() {
        for (src, dst) in [
            (GridDist::new(2, 2), GridDist::new(4, 1)),
            (GridDist::new(3, 2), GridDist::new(2, 3)),
            (GridDist::row(8), GridDist::new(2, 4)),
            (GridDist::new(4, 4), GridDist::new(1, 1)),
        ] {
            let plan = grid_redistribution_plan(64, 64, src, dst);
            let total: u64 = plan.iter().map(|m| m.bytes).sum();
            assert_eq!(total, 64 * 64 * 8, "{src:?} -> {dst:?}");
        }
    }

    #[test]
    fn value_level_grid_redistribution_is_exact() {
        let m = Matrix::random(24, 16, 3);
        let src = GridDist::new(3, 2);
        let dst = GridDist::new(2, 4);
        let src_pieces = src.scatter(&m);
        let plan = grid_redistribution_plan(24, 16, src, dst);
        // Execute the plan on real data.
        let mut dst_pieces: Vec<Matrix> = (0..dst.procs())
            .map(|rank| {
                let ((_, rl), (_, cl)) = dst.owned(rank, 24, 16);
                Matrix::zeros(rl, cl)
            })
            .collect();
        for msg in &plan {
            let ((sr0, _), (sc0, _)) = src.owned(msg.src as usize, 24, 16);
            let ((dr0, drl), (dc0, dcl)) = dst.owned(msg.dst as usize, 24, 16);
            // Intersection rectangle in global coordinates.
            let piece = &src_pieces[msg.src as usize];
            let r_lo = sr0.max(dr0);
            let r_hi = (sr0 + piece.rows()).min(dr0 + drl);
            let c_lo = sc0.max(dc0);
            let c_hi = (sc0 + piece.cols()).min(dc0 + dcl);
            assert_eq!(((r_hi - r_lo) * (c_hi - c_lo) * 8) as u64, msg.bytes);
            let sub = piece.block(r_lo - sr0, c_lo - sc0, r_hi - r_lo, c_hi - c_lo);
            dst_pieces[msg.dst as usize].set_block(r_lo - dr0, c_lo - dc0, &sub);
        }
        let back = dst.gather(&dst_pieces, 24, 16);
        assert!(back.approx_eq(&m, 0.0));
    }

    #[test]
    fn degenerate_grids_match_paper_1d_cost() {
        // ROW(p_i) -> ROW(p_j): Eq. 2 with max(p_i,p_j)/p_i startups.
        let x = cm5();
        let (rows, cols) = (64usize, 64usize);
        let l = (rows * cols * 8) as f64;
        for (pi, pj) in [(2usize, 8usize), (8, 2), (4, 4)] {
            let c = grid_transfer_cost(rows, cols, GridDist::row(pi), GridDist::row(pj), &x);
            let mx = pi.max(pj) as f64;
            let eq2_send = (mx / pi as f64) * x.t_ss + (l / pi as f64) * x.t_ps;
            let eq2_recv = (mx / pj as f64) * x.t_sr + (l / pj as f64) * x.t_pr;
            assert!(
                (c.send - eq2_send).abs() / eq2_send < 1e-12,
                "{pi}->{pj}: send {} vs Eq.2 {}",
                c.send,
                eq2_send
            );
            assert!((c.recv - eq2_recv).abs() / eq2_recv < 1e-12);
        }
    }

    #[test]
    fn degenerate_grids_match_paper_2d_cost() {
        // ROW(p_i) -> COL(p_j): Eq. 3 with p_j startups per sender.
        let x = cm5();
        let (rows, cols) = (64usize, 64usize);
        let l = (rows * cols * 8) as f64;
        for (pi, pj) in [(4usize, 8usize), (8, 4), (2, 2)] {
            let c = grid_transfer_cost(rows, cols, GridDist::row(pi), GridDist::col(pj), &x);
            let eq3_send = pj as f64 * x.t_ss + (l / pi as f64) * x.t_ps;
            let eq3_recv = pi as f64 * x.t_sr + (l / pj as f64) * x.t_pr;
            assert!((c.send - eq3_send).abs() / eq3_send < 1e-12);
            assert!((c.recv - eq3_recv).abs() / eq3_recv < 1e-12);
        }
    }

    #[test]
    fn grid_to_grid_beats_pessimal_all_pairs_in_startups() {
        // A 2x2 -> 2x2 identical-grid move is local: one "message" per
        // rank to itself (the planner keeps them; a runtime would elide).
        let plan = grid_redistribution_plan(64, 64, GridDist::new(2, 2), GridDist::new(2, 2));
        assert_eq!(plan.len(), 4);
        assert!(plan.iter().all(|m| m.src == m.dst));
        // A 2x2 -> 4x1 move needs fewer messages than all-pairs.
        let plan2 = grid_redistribution_plan(64, 64, GridDist::new(2, 2), GridDist::new(4, 1));
        assert!(plan2.len() < 4 * 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_grid_rejected() {
        let _ = GridDist::new(0, 3);
    }
}
