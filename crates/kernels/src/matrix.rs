//! Dense row-major `f64` matrices with the loop kernels the paper's test
//! programs are built from: initialization, addition/subtraction, and
//! multiplication (naive and cache-blocked).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Fill from a function of `(row, col)` — the "matrix initialization"
    /// loop class of the paper.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Deterministic pseudo-random matrix (for tests/examples).
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.random_range(-1.0..1.0))
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw data slice (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Element-wise sum (the "matrix addition" loop class).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Naive triple-loop multiplication (i-k-j order for row-major
    /// locality) — the "matrix multiplication" loop class.
    ///
    /// # Panics
    /// Panics unless `self.cols == other.rows`.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            for kk in 0..k {
                let a = self.data[i * k + kk];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[kk * n..(kk + 1) * n];
                let orow = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    orow[j] += a * brow[j];
                }
            }
        }
        out
    }

    /// Cache-blocked multiplication with square tiles of `block` elements.
    pub fn mul_blocked(&self, other: &Matrix, block: usize) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        assert!(block >= 1, "block size must be positive");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for i0 in (0..m).step_by(block) {
            for k0 in (0..k).step_by(block) {
                for j0 in (0..n).step_by(block) {
                    let i1 = (i0 + block).min(m);
                    let k1 = (k0 + block).min(k);
                    let j1 = (j0 + block).min(n);
                    for i in i0..i1 {
                        for kk in k0..k1 {
                            let a = self.data[i * k + kk];
                            for j in j0..j1 {
                                out.data[i * n + j] += a * other.data[kk * n + j];
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Largest absolute element difference to another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// Approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.max_abs_diff(other) <= tol
    }

    /// Copy a rectangular sub-block starting at `(r0, c0)`.
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(r0 + rows <= self.rows && c0 + cols <= self.cols, "block out of range");
        Matrix::from_fn(rows, cols, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Write `src` into this matrix at offset `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, src: &Matrix) {
        assert!(r0 + src.rows <= self.rows && c0 + src.cols <= self.cols, "block out of range");
        for i in 0..src.rows {
            for j in 0..src.cols {
                self[(r0 + i, c0 + j)] = src[(i, j)];
            }
        }
    }

    /// Total payload size in bytes (the `L` of the transfer cost model).
    pub fn byte_len(&self) -> u64 {
        (self.rows * self.cols * std::mem::size_of::<f64>()) as u64
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication() {
        let a = Matrix::random(8, 8, 1);
        let eye = Matrix::from_fn(8, 8, |i, j| if i == j { 1.0 } else { 0.0 });
        assert!(a.mul(&eye).approx_eq(&a, 1e-12));
        assert!(eye.mul(&a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64); // [[0,1,2],[3,4,5]]
        let b = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64); // [[0,1],[2,3],[4,5]]
        let c = a.mul(&b);
        assert_eq!(c[(0, 0)], 10.0);
        assert_eq!(c[(0, 1)], 13.0);
        assert_eq!(c[(1, 0)], 28.0);
        assert_eq!(c[(1, 1)], 40.0);
    }

    #[test]
    fn blocked_matches_naive() {
        let a = Matrix::random(17, 23, 2);
        let b = Matrix::random(23, 11, 3);
        let naive = a.mul(&b);
        for blk in [1, 4, 8, 32] {
            assert!(a.mul_blocked(&b, blk).approx_eq(&naive, 1e-10), "block {blk}");
        }
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::random(6, 6, 4);
        let b = Matrix::random(6, 6, 5);
        let back = a.add(&b).sub(&b);
        assert!(back.approx_eq(&a, 1e-12));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::random(5, 9, 6);
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
        assert_eq!(a.transpose().rows(), 9);
    }

    #[test]
    fn transpose_of_product() {
        // (AB)^T = B^T A^T
        let a = Matrix::random(4, 6, 7);
        let b = Matrix::random(6, 3, 8);
        let lhs = a.mul(&b).transpose();
        let rhs = b.transpose().mul(&a.transpose());
        assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn block_get_set_roundtrip() {
        let a = Matrix::random(8, 8, 9);
        let blk = a.block(2, 4, 3, 4);
        assert_eq!(blk.rows(), 3);
        assert_eq!(blk[(0, 0)], a[(2, 4)]);
        let mut b = Matrix::zeros(8, 8);
        b.set_block(2, 4, &blk);
        assert_eq!(b[(4, 7)], a[(4, 7)]);
        assert_eq!(b[(0, 0)], 0.0);
    }

    #[test]
    fn byte_len_matches_f64_size() {
        assert_eq!(Matrix::zeros(64, 64).byte_len(), 32 * 1024);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let _ = Matrix::zeros(2, 2).add(&Matrix::zeros(3, 3));
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn mul_shape_mismatch_panics() {
        let _ = Matrix::zeros(2, 3).mul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        assert_eq!(Matrix::random(4, 4, 42), Matrix::random(4, 4, 42));
        assert_ne!(Matrix::random(4, 4, 42), Matrix::random(4, 4, 43));
    }
}
