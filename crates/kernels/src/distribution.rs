//! Block distributions and redistribution plans.
//!
//! The cost model (paper Section 4) assumes every array is distributed
//! along exactly one dimension in a blocked manner. This module makes
//! that concrete: [`BlockDist::Row`]/[`BlockDist::Col`] partitions with
//! balanced blocks, value-level scatter/gather, and — most importantly —
//! [`redistribution_plan`]: the exact set of point-to-point messages
//! (with byte counts) needed to move an array from a `p_i`-processor
//! group with one distribution to a `p_j`-processor group with another.
//!
//! The simulator executes these plans message by message, which gives the
//! "actual" timings their aggregate cost model (Eq. 2/3) only
//! approximates — the same relationship the paper has between its CM-5
//! runs and its model predictions.

use crate::matrix::Matrix;

/// Which dimension an array is blocked along.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockDist {
    /// Processors own contiguous row blocks.
    Row,
    /// Processors own contiguous column blocks.
    Col,
}

impl BlockDist {
    /// True if moving from `self` to `other` is a 1D (same-dimension)
    /// redistribution; false means the 2D all-pairs pattern.
    pub fn is_one_d_to(self, other: BlockDist) -> bool {
        self == other
    }
}

/// One point-to-point message of a redistribution plan. Ranks are
/// group-local: `src` indexes the sending group, `dst` the receiving one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedistMessage {
    /// Sender's rank within the source group.
    pub src: u32,
    /// Receiver's rank within the destination group.
    pub dst: u32,
    /// Payload bytes.
    pub bytes: u64,
}

/// Balanced block partition of `total` items over `parts` owners:
/// the first `total % parts` owners get one extra item. Returns
/// `(start, len)` per owner (len may be 0 when `parts > total`).
pub fn block_ranges(total: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts >= 1, "need at least one part");
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for k in 0..parts {
        let len = base + usize::from(k < extra);
        out.push((start, len));
        start += len;
    }
    out
}

/// Split a matrix into per-processor local pieces under a distribution.
pub fn scatter(m: &Matrix, dist: BlockDist, procs: usize) -> Vec<Matrix> {
    match dist {
        BlockDist::Row => block_ranges(m.rows(), procs)
            .into_iter()
            .map(|(r0, len)| m.block(r0, 0, len, m.cols()))
            .collect(),
        BlockDist::Col => block_ranges(m.cols(), procs)
            .into_iter()
            .map(|(c0, len)| m.block(0, c0, m.rows(), len))
            .collect(),
    }
}

/// Reassemble a matrix from its scattered pieces.
///
/// # Panics
/// Panics if the pieces do not tile a `rows x cols` matrix under `dist`.
pub fn gather(pieces: &[Matrix], dist: BlockDist, rows: usize, cols: usize) -> Matrix {
    let mut out = Matrix::zeros(rows, cols);
    match dist {
        BlockDist::Row => {
            let ranges = block_ranges(rows, pieces.len());
            for (piece, (r0, len)) in pieces.iter().zip(ranges) {
                assert_eq!(piece.rows(), len, "piece height mismatch");
                assert_eq!(piece.cols(), cols, "piece width mismatch");
                out.set_block(r0, 0, piece);
            }
        }
        BlockDist::Col => {
            let ranges = block_ranges(cols, pieces.len());
            for (piece, (c0, len)) in pieces.iter().zip(ranges) {
                assert_eq!(piece.cols(), len, "piece width mismatch");
                assert_eq!(piece.rows(), rows, "piece height mismatch");
                out.set_block(0, c0, piece);
            }
        }
    }
    out
}

/// Overlap length of two half-open ranges.
fn overlap(a: (usize, usize), b: (usize, usize)) -> usize {
    let lo = a.0.max(b.0);
    let hi = (a.0 + a.1).min(b.0 + b.1);
    hi.saturating_sub(lo)
}

/// The exact message set that moves a `rows x cols` `f64` matrix from a
/// `src_procs`-owner group distributed by `src_dist` to a
/// `dst_procs`-owner group distributed by `dst_dist`. Zero-byte messages
/// are omitted. The sum of all message bytes always equals the matrix
/// size (in group-local rank space every element crosses exactly once;
/// the simulator drops messages whose *global* endpoints coincide).
pub fn redistribution_plan(
    rows: usize,
    cols: usize,
    src_procs: usize,
    src_dist: BlockDist,
    dst_procs: usize,
    dst_dist: BlockDist,
) -> Vec<RedistMessage> {
    let elem = std::mem::size_of::<f64>() as u64;
    let mut out = Vec::new();
    if src_dist.is_one_d_to(dst_dist) {
        // 1D: overlap of block ranges along the shared dimension.
        let dim = match src_dist {
            BlockDist::Row => rows,
            BlockDist::Col => cols,
        };
        let other = match src_dist {
            BlockDist::Row => cols,
            BlockDist::Col => rows,
        } as u64;
        let src_ranges = block_ranges(dim, src_procs);
        let dst_ranges = block_ranges(dim, dst_procs);
        for (i, &ra) in src_ranges.iter().enumerate() {
            for (j, &rb) in dst_ranges.iter().enumerate() {
                let ov = overlap(ra, rb) as u64;
                if ov > 0 {
                    out.push(RedistMessage {
                        src: i as u32,
                        dst: j as u32,
                        bytes: ov * other * elem,
                    });
                }
            }
        }
    } else {
        // 2D: every (src, dst) pair exchanges the intersection block.
        let (src_dim, dst_dim) = match src_dist {
            BlockDist::Row => (rows, cols),
            BlockDist::Col => (cols, rows),
        };
        let src_ranges = block_ranges(src_dim, src_procs);
        let dst_ranges = block_ranges(dst_dim, dst_procs);
        for (i, &(_, la)) in src_ranges.iter().enumerate() {
            for (j, &(_, lb)) in dst_ranges.iter().enumerate() {
                let bytes = (la * lb) as u64 * elem;
                if bytes > 0 {
                    out.push(RedistMessage { src: i as u32, dst: j as u32, bytes });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_cover_exactly() {
        for total in [0usize, 1, 7, 64, 65] {
            for parts in [1usize, 2, 3, 5, 8, 70] {
                let rs = block_ranges(total, parts);
                assert_eq!(rs.len(), parts);
                let sum: usize = rs.iter().map(|&(_, l)| l).sum();
                assert_eq!(sum, total);
                // Contiguous and ordered.
                let mut pos = 0;
                for &(s, l) in &rs {
                    assert_eq!(s, pos);
                    pos += l;
                }
                // Balanced: lengths differ by at most one.
                let min = rs.iter().map(|&(_, l)| l).min().unwrap();
                let max = rs.iter().map(|&(_, l)| l).max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let m = Matrix::random(13, 9, 1);
        for dist in [BlockDist::Row, BlockDist::Col] {
            for procs in [1usize, 2, 4, 5, 13] {
                let pieces = scatter(&m, dist, procs);
                let back = gather(&pieces, dist, 13, 9);
                assert!(back.approx_eq(&m, 0.0), "{dist:?} x{procs}");
            }
        }
    }

    #[test]
    fn plan_conserves_bytes() {
        for (sp, sd, dp, dd) in [
            (4usize, BlockDist::Row, 8usize, BlockDist::Row),
            (8, BlockDist::Row, 2, BlockDist::Row),
            (4, BlockDist::Col, 4, BlockDist::Col),
            (4, BlockDist::Row, 8, BlockDist::Col),
            (2, BlockDist::Col, 16, BlockDist::Row),
        ] {
            let plan = redistribution_plan(64, 64, sp, sd, dp, dd);
            let total: u64 = plan.iter().map(|m| m.bytes).sum();
            assert_eq!(total, 64 * 64 * 8, "{sp} {sd:?} -> {dp} {dd:?}");
        }
    }

    #[test]
    fn one_d_same_size_is_rank_to_rank() {
        // Equal group sizes, same dist: each rank sends only to its
        // counterpart.
        let plan = redistribution_plan(64, 64, 8, BlockDist::Row, 8, BlockDist::Row);
        assert_eq!(plan.len(), 8);
        for m in &plan {
            assert_eq!(m.src, m.dst);
            assert_eq!(m.bytes, 64 * 64 * 8 / 8);
        }
    }

    #[test]
    fn one_d_doubling_splits_each_block() {
        // 2 -> 4 owners: each source block splits in two.
        let plan = redistribution_plan(64, 64, 2, BlockDist::Row, 4, BlockDist::Row);
        assert_eq!(plan.len(), 4);
        // Message count equals max(p_i, p_j) — the cost model's premise.
        let plan2 = redistribution_plan(64, 64, 8, BlockDist::Row, 2, BlockDist::Row);
        assert_eq!(plan2.len(), 8);
    }

    #[test]
    fn two_d_is_all_pairs() {
        let plan = redistribution_plan(64, 64, 3, BlockDist::Row, 5, BlockDist::Col);
        assert_eq!(plan.len(), 15, "p_i * p_j messages");
    }

    #[test]
    fn empty_owners_get_no_messages() {
        // More owners than rows: some blocks are empty.
        let plan = redistribution_plan(4, 4, 8, BlockDist::Row, 2, BlockDist::Row);
        let senders: std::collections::HashSet<u32> = plan.iter().map(|m| m.src).collect();
        assert!(senders.len() <= 4, "only 4 non-empty row owners");
        let total: u64 = plan.iter().map(|m| m.bytes).sum();
        assert_eq!(total, 4 * 4 * 8);
    }

    #[test]
    fn value_level_redistribution_matches_plan() {
        // Move a matrix Row(3) -> Col(4) by executing the plan on real
        // data and compare with a direct scatter under the new dist.
        let m = Matrix::random(12, 8, 2);
        let src = scatter(&m, BlockDist::Row, 3);
        let expect = scatter(&m, BlockDist::Col, 4);
        let plan = redistribution_plan(12, 8, 3, BlockDist::Row, 4, BlockDist::Col);
        // Reconstruct each destination piece from the plan's messages.
        let row_ranges = block_ranges(12, 3);
        let col_ranges = block_ranges(8, 4);
        let mut rebuilt: Vec<Matrix> =
            col_ranges.iter().map(|&(_, l)| Matrix::zeros(12, l)).collect();
        for msg in &plan {
            let (r0, rl) = row_ranges[msg.src as usize];
            let (c0, cl) = col_ranges[msg.dst as usize];
            assert_eq!(msg.bytes, (rl * cl * 8) as u64);
            // The payload: rows r0..r0+rl of the dst's columns.
            let piece = &src[msg.src as usize]; // rows r0.., all cols
            let sub = piece.block(0, c0, rl, cl);
            rebuilt[msg.dst as usize].set_block(r0, 0, &sub);
        }
        for (got, want) in rebuilt.iter().zip(&expect) {
            assert!(got.approx_eq(want, 0.0));
        }
    }
}
