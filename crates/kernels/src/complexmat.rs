//! Complex matrices as (real, imaginary) pairs — the paper's first test
//! program multiplies two of these with four real multiplications and two
//! real additions:
//!
//! ```text
//! Cr = Ar·Br − Ai·Bi        Ci = Ar·Bi + Ai·Br
//! ```

use crate::matrix::Matrix;

/// A complex matrix stored as two real matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexMatrix {
    /// Real part.
    pub re: Matrix,
    /// Imaginary part.
    pub im: Matrix,
}

impl ComplexMatrix {
    /// Construct from parts.
    ///
    /// # Panics
    /// Panics if the parts' shapes differ.
    pub fn new(re: Matrix, im: Matrix) -> Self {
        assert_eq!((re.rows(), re.cols()), (im.rows(), im.cols()), "real/imaginary shape mismatch");
        ComplexMatrix { re, im }
    }

    /// Deterministic pseudo-random complex matrix.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        ComplexMatrix::new(
            Matrix::random(rows, cols, seed),
            Matrix::random(rows, cols, seed ^ 0xabcd),
        )
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.re.rows()
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.re.cols()
    }

    /// The 4-multiply/2-addition product — the exact computation of the
    /// paper's Complex Matrix Multiply MDG (M1..M4, Cr, Ci).
    pub fn mul_4m2a(&self, other: &ComplexMatrix) -> ComplexMatrix {
        let m1 = self.re.mul(&other.re); // Ar*Br
        let m2 = self.im.mul(&other.im); // Ai*Bi
        let m3 = self.re.mul(&other.im); // Ar*Bi
        let m4 = self.im.mul(&other.re); // Ai*Br
        ComplexMatrix::new(m1.sub(&m2), m3.add(&m4))
    }

    /// Reference product computed element-wise with complex arithmetic.
    pub fn mul_reference(&self, other: &ComplexMatrix) -> ComplexMatrix {
        assert_eq!(self.cols(), other.rows(), "inner dimension mismatch");
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        let mut re = Matrix::zeros(m, n);
        let mut im = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut r = 0.0;
                let mut s = 0.0;
                for kk in 0..k {
                    let (ar, ai) = (self.re[(i, kk)], self.im[(i, kk)]);
                    let (br, bi) = (other.re[(kk, j)], other.im[(kk, j)]);
                    r += ar * br - ai * bi;
                    s += ar * bi + ai * br;
                }
                re[(i, j)] = r;
                im[(i, j)] = s;
            }
        }
        ComplexMatrix::new(re, im)
    }

    /// Max absolute element difference across both parts.
    pub fn max_abs_diff(&self, other: &ComplexMatrix) -> f64 {
        self.re.max_abs_diff(&other.re).max(self.im.max_abs_diff(&other.im))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_mult_form_matches_reference() {
        for n in [2usize, 8, 64] {
            let a = ComplexMatrix::random(n, n, 1);
            let b = ComplexMatrix::random(n, n, 2);
            let fast = a.mul_4m2a(&b);
            let slow = a.mul_reference(&b);
            assert!(fast.max_abs_diff(&slow) < 1e-9 * n as f64, "n = {n}");
        }
    }

    #[test]
    fn multiply_by_complex_identity() {
        let n = 6;
        let a = ComplexMatrix::random(n, n, 3);
        let eye = ComplexMatrix::new(
            Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 }),
            Matrix::zeros(n, n),
        );
        let prod = a.mul_4m2a(&eye);
        assert!(prod.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn multiply_by_i_swaps_parts() {
        // (iI) * A = i*A: re -> -im, im -> re.
        let n = 5;
        let a = ComplexMatrix::random(n, n, 4);
        let i_mat = ComplexMatrix::new(
            Matrix::zeros(n, n),
            Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 }),
        );
        let prod = i_mat.mul_4m2a(&a);
        let expect =
            ComplexMatrix::new(a.im.sub(&a.im).sub(&a.im).add(&a.im).sub(&a.im), a.re.clone());
        // expect.re = -a.im (built via sub chain to stay in the API)
        assert!(prod.im.approx_eq(&expect.im, 1e-12));
        let neg_im = Matrix::zeros(n, n).sub(&a.im);
        assert!(prod.re.approx_eq(&neg_im, 1e-12));
    }

    #[test]
    fn rectangular_product_shapes() {
        let a = ComplexMatrix::random(3, 5, 5);
        let b = ComplexMatrix::random(5, 2, 6);
        let c = a.mul_4m2a(&b);
        assert_eq!((c.rows(), c.cols()), (3, 2));
        assert!(c.max_abs_diff(&a.mul_reference(&b)) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_parts_rejected() {
        let _ = ComplexMatrix::new(Matrix::zeros(2, 2), Matrix::zeros(3, 3));
    }
}
