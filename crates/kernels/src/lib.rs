//! # paradigm-kernels — dense matrix kernels and block distributions
//!
//! The three loop classes of the paper's test programs (matrix
//! initialization, addition, multiplication) as real numeric kernels,
//! plus the two composite algorithms the paper evaluates:
//!
//! * complex matrix multiplication in the 4-multiply/2-addition real form
//!   ([`complexmat`]);
//! * Strassen's algorithm, both the paper's single recursion level and a
//!   fully recursive variant ([`strassen`]).
//!
//! [`distribution`] models the block row/column distributions the cost
//! model assumes and produces exact *redistribution plans* — the
//! per-processor-pair byte counts of a 1D or 2D transfer — which the
//! simulator uses for message-level execution (giving it second-order
//! behaviour the aggregate cost model does not capture).
//!
//! Everything here is value-level: the test-suite verifies that the
//! composite algorithms produce numerically correct products and that
//! redistribution plans move each matrix element exactly once.

pub mod complexmat;
pub mod distribution;
pub mod grid;
pub mod matrix;
pub mod strassen;

pub use complexmat::ComplexMatrix;
pub use distribution::{
    block_ranges, gather, redistribution_plan, scatter, BlockDist, RedistMessage,
};
pub use grid::{grid_redistribution_plan, grid_transfer_cost, GridDist};
pub use matrix::Matrix;
pub use strassen::{strassen_multiply, strassen_one_level};
