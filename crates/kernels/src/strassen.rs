//! Strassen's matrix multiplication — the paper's second test program.
//!
//! [`strassen_one_level`] performs exactly one recursion level (seven
//! half-size multiplications, eighteen quadrant additions/subtractions),
//! matching the MDG of `paradigm_mdg::strassen_mdg` node for node.
//! [`strassen_multiply`] recurses fully down to a cutoff.

use crate::matrix::Matrix;

/// The seven Strassen products and the quadrant recombination for one
/// recursion level. Inner multiplications use the supplied `mul` closure
/// (the naive kernel for one level; recursion for the full algorithm).
///
/// # Panics
/// Panics unless both matrices are square with even dimension.
fn strassen_level(a: &Matrix, b: &Matrix, mul: &dyn Fn(&Matrix, &Matrix) -> Matrix) -> Matrix {
    assert_eq!(a.rows(), a.cols(), "Strassen needs square matrices");
    assert_eq!(b.rows(), b.cols(), "Strassen needs square matrices");
    assert_eq!(a.rows(), b.rows(), "dimension mismatch");
    assert!(a.rows().is_multiple_of(2), "Strassen needs an even dimension");
    let h = a.rows() / 2;

    let a11 = a.block(0, 0, h, h);
    let a12 = a.block(0, h, h, h);
    let a21 = a.block(h, 0, h, h);
    let a22 = a.block(h, h, h, h);
    let b11 = b.block(0, 0, h, h);
    let b12 = b.block(0, h, h, h);
    let b21 = b.block(h, 0, h, h);
    let b22 = b.block(h, h, h, h);

    // Pre-additions S1..S10 (names match the MDG builder).
    let s1 = a11.add(&a22);
    let s2 = b11.add(&b22);
    let s3 = a21.add(&a22);
    let s4 = b12.sub(&b22);
    let s5 = b21.sub(&b11);
    let s6 = a11.add(&a12);
    let s7 = a21.sub(&a11);
    let s8 = b11.add(&b12);
    let s9 = a12.sub(&a22);
    let s10 = b21.add(&b22);

    // The seven products.
    let m1 = mul(&s1, &s2);
    let m2 = mul(&s3, &b11);
    let m3 = mul(&a11, &s4);
    let m4 = mul(&a22, &s5);
    let m5 = mul(&s6, &b22);
    let m6 = mul(&s7, &s8);
    let m7 = mul(&s9, &s10);

    // Quadrant recombination (binary-add decomposition as in the MDG).
    let t1 = m1.add(&m4);
    let t2 = t1.sub(&m5);
    let c11 = t2.add(&m7);
    let c12 = m3.add(&m5);
    let c21 = m2.add(&m4);
    let t3 = m1.sub(&m2);
    let t4 = t3.add(&m3);
    let c22 = t4.add(&m6);

    let n = a.rows();
    let mut c = Matrix::zeros(n, n);
    c.set_block(0, 0, &c11);
    c.set_block(0, h, &c12);
    c.set_block(h, 0, &c21);
    c.set_block(h, h, &c22);
    c
}

/// One recursion level of Strassen (inner products via the naive kernel)
/// — exactly the computation of the paper's Strassen MDG.
pub fn strassen_one_level(a: &Matrix, b: &Matrix) -> Matrix {
    strassen_level(a, b, &|x, y| x.mul(y))
}

/// Fully recursive Strassen, falling back to the naive kernel at or below
/// `cutoff` (or on odd dimensions).
pub fn strassen_multiply(a: &Matrix, b: &Matrix, cutoff: usize) -> Matrix {
    assert!(cutoff >= 1);
    if a.rows() <= cutoff || !a.rows().is_multiple_of(2) {
        return a.mul(b);
    }
    strassen_level(a, b, &|x, y| strassen_multiply(x, y, cutoff))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_level_matches_naive() {
        for n in [2usize, 4, 8, 16, 64] {
            let a = Matrix::random(n, n, n as u64);
            let b = Matrix::random(n, n, n as u64 + 100);
            let expect = a.mul(&b);
            let got = strassen_one_level(&a, &b);
            assert!(
                got.approx_eq(&expect, 1e-9 * n as f64),
                "n={n}: max diff {}",
                got.max_abs_diff(&expect)
            );
        }
    }

    #[test]
    fn recursive_matches_naive() {
        let a = Matrix::random(64, 64, 7);
        let b = Matrix::random(64, 64, 8);
        let expect = a.mul(&b);
        for cutoff in [1usize, 4, 16, 32] {
            let got = strassen_multiply(&a, &b, cutoff);
            assert!(got.approx_eq(&expect, 1e-8), "cutoff {cutoff}");
        }
    }

    #[test]
    fn odd_dimension_falls_back() {
        let a = Matrix::random(31, 31, 9);
        let b = Matrix::random(31, 31, 10);
        assert!(strassen_multiply(&a, &b, 4).approx_eq(&a.mul(&b), 1e-9));
    }

    #[test]
    fn paper_size_128() {
        // The paper's Strassen test case: 128x128 with one level.
        let a = Matrix::random(128, 128, 11);
        let b = Matrix::random(128, 128, 12);
        let got = strassen_one_level(&a, &b);
        assert!(got.approx_eq(&a.mul(&b), 1e-8));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn one_level_rejects_odd() {
        let a = Matrix::random(3, 3, 1);
        let _ = strassen_one_level(&a, &a);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn one_level_rejects_rectangular() {
        let a = Matrix::random(4, 6, 1);
        let _ = strassen_one_level(&a, &a);
    }
}
