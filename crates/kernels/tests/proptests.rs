//! Property-based tests of the matrix kernels and distributions:
//! algebraic identities, Strassen correctness, and redistribution
//! conservation, over randomized shapes and seeds.

use paradigm_kernels::{
    block_ranges, gather, redistribution_plan, scatter, strassen_multiply, strassen_one_level,
    BlockDist, ComplexMatrix, Matrix,
};
use proptest::prelude::*;

fn arb_dist() -> impl Strategy<Value = BlockDist> {
    prop_oneof![Just(BlockDist::Row), Just(BlockDist::Col)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn matmul_distributes_over_addition(n in 2usize..12, seed in 0u64..1000) {
        // (A + B) C == AC + BC
        let a = Matrix::random(n, n, seed);
        let b = Matrix::random(n, n, seed + 1);
        let c = Matrix::random(n, n, seed + 2);
        let lhs = a.add(&b).mul(&c);
        let rhs = a.mul(&c).add(&b.mul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9 * n as f64));
    }

    #[test]
    fn matmul_associative(m in 2usize..8, k in 2usize..8, n in 2usize..8, l in 2usize..8, seed in 0u64..1000) {
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed + 1);
        let c = Matrix::random(n, l, seed + 2);
        let lhs = a.mul(&b).mul(&c);
        let rhs = a.mul(&b.mul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-8));
    }

    #[test]
    fn blocked_equals_naive(m in 1usize..20, k in 1usize..20, n in 1usize..20, blk in 1usize..8, seed in 0u64..1000) {
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed + 7);
        prop_assert!(a.mul_blocked(&b, blk).approx_eq(&a.mul(&b), 1e-9));
    }

    #[test]
    fn strassen_one_level_equals_naive(k in 1usize..5, seed in 0u64..1000) {
        let n = 2usize << k; // 4..64, even
        let a = Matrix::random(n, n, seed);
        let b = Matrix::random(n, n, seed + 3);
        prop_assert!(strassen_one_level(&a, &b).approx_eq(&a.mul(&b), 1e-8));
    }

    #[test]
    fn strassen_recursive_equals_naive(k in 2usize..6, cutoff in 1usize..16, seed in 0u64..1000) {
        let n = 1usize << k; // 4..32
        let a = Matrix::random(n, n, seed);
        let b = Matrix::random(n, n, seed + 5);
        prop_assert!(strassen_multiply(&a, &b, cutoff).approx_eq(&a.mul(&b), 1e-7));
    }

    #[test]
    fn complex_product_matches_reference(n in 1usize..12, seed in 0u64..1000) {
        let a = ComplexMatrix::random(n, n, seed);
        let b = ComplexMatrix::random(n, n, seed + 9);
        prop_assert!(a.mul_4m2a(&b).max_abs_diff(&a.mul_reference(&b)) < 1e-9 * n as f64);
    }

    #[test]
    fn scatter_gather_roundtrip(rows in 1usize..24, cols in 1usize..24, procs in 1usize..10, dist in arb_dist(), seed in 0u64..1000) {
        let m = Matrix::random(rows, cols, seed);
        let back = gather(&scatter(&m, dist, procs), dist, rows, cols);
        prop_assert!(back.approx_eq(&m, 0.0));
    }

    #[test]
    fn block_ranges_partition(total in 0usize..200, parts in 1usize..20) {
        let rs = block_ranges(total, parts);
        prop_assert_eq!(rs.len(), parts);
        let mut pos = 0;
        for &(s, l) in &rs {
            prop_assert_eq!(s, pos);
            pos += l;
        }
        prop_assert_eq!(pos, total);
        let min = rs.iter().map(|r| r.1).min().unwrap();
        let max = rs.iter().map(|r| r.1).max().unwrap();
        prop_assert!(max - min <= 1, "balanced partition");
    }

    #[test]
    fn redistribution_conserves_bytes(
        rows in 1usize..40,
        cols in 1usize..40,
        sp in 1usize..9,
        dp in 1usize..9,
        sd in arb_dist(),
        dd in arb_dist(),
    ) {
        let plan = redistribution_plan(rows, cols, sp, sd, dp, dd);
        let total: u64 = plan.iter().map(|m| m.bytes).sum();
        prop_assert_eq!(total, (rows * cols * 8) as u64);
        for m in &plan {
            prop_assert!(m.bytes > 0);
            prop_assert!((m.src as usize) < sp && (m.dst as usize) < dp);
        }
    }

    #[test]
    fn one_d_plan_message_count_bounded(rows in 1usize..64, sp in 1usize..9, dp in 1usize..9) {
        // 1D overlap structure: at most sp + dp - 1 messages.
        let plan = redistribution_plan(rows, 4, sp, BlockDist::Row, dp, BlockDist::Row);
        prop_assert!(plan.len() < sp + dp);
    }

    #[test]
    fn transpose_respects_block_access(rows in 1usize..16, cols in 1usize..16, seed in 0u64..1000) {
        let m = Matrix::random(rows, cols, seed);
        let t = m.transpose();
        for i in 0..rows.min(4) {
            for j in 0..cols.min(4) {
                prop_assert_eq!(m[(i, j)], t[(j, i)]);
            }
        }
    }
}
