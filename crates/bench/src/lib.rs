//! Shared helpers for the reproduction harnesses.
//!
//! Every `repro_*` bench target regenerates one table or figure of the
//! paper; every `ablation_*` target probes one design choice called out
//! in DESIGN.md; the `criterion_*` targets are conventional performance
//! micro-benchmarks. Run them all with `cargo bench --workspace`.

/// Print the standard harness banner: what paper artifact this target
/// reproduces and what to compare against.
pub fn banner(target: &str, artifact: &str, paper_says: &str) {
    println!("{}", "=".repeat(78));
    println!("{target} — reproduces {artifact}");
    println!("paper reference: {paper_says}");
    println!("{}", "=".repeat(78));
}

/// The paper's evaluated system sizes.
pub const PAPER_SIZES: [u32; 3] = [16, 32, 64];

/// Simple fixed-point table separator.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}
