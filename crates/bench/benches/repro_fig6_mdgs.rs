//! Reproduces the paper's **Figure 6**: the MDGs of the two test
//! programs — Complex Matrix Multiply (64x64) and Strassen's Matrix
//! Multiply (128x128) — printed as adjacency listings, summary
//! statistics, and Graphviz DOT (pipe into `dot -Tpng` to draw them).

use paradigm_bench::banner;
use paradigm_core::prelude::*;
use paradigm_mdg::{dot, stats::MdgStats};

fn main() {
    banner(
        "repro_fig6_mdgs",
        "Figure 6 (MDGs used for performance evaluation)",
        "CMM: 10 loops in 3 stages; Strassen: 33 loops, all transfers 1D",
    );

    let table = KernelCostTable::cm5();
    for prog in TestProgram::paper_suite() {
        let g = prog.build(&table);
        println!("\n{}", "-".repeat(70));
        println!("{}", MdgStats::of(&g).render(&prog.name()));
        println!("{}", dot::to_ascii(&g));
        println!("Graphviz DOT:\n{}", dot::to_dot(&g));
        // Structural facts asserted against the paper's description.
        for (_, e) in g.edges() {
            for t in &e.transfers {
                assert_eq!(t.kind, TransferKind::OneD, "all transfers must be 1D");
            }
        }
    }
    println!("result: both MDGs constructed; every data transfer is 1D as the paper states");
}
