//! Reproduces the paper's **Figure 1 + Figure 2** motivating example:
//! a three-node MDG where exploiting functional *and* data parallelism
//! (N1 on 4 processors, then N2 || N3 on 2 each) beats the naive pure
//! data-parallel scheme — 14.3 s vs 15.6 s on 4 processors.

use paradigm_bench::banner;
use paradigm_core::prelude::*;

fn main() {
    banner(
        "repro_fig1_example",
        "Figure 1 (processing cost curves) and Figure 2 (the two schemes)",
        "naive all-4-processor scheme: 15.6 s; mixed scheme: 14.3 s",
    );

    let g = example_fig1_mdg();
    let machine = Machine::cm5(4);

    // Figure 1: the processing-cost curve of the (identical) nodes.
    let params = g.node(NodeId(1)).cost;
    println!("\nprocessing cost of each node (alpha = 1/13, tau = 16.9 s):");
    println!("  procs |  time (s)");
    for q in [1u32, 2, 4] {
        println!("  {:>5} | {:>8.2}", q, params.cost(q as f64));
    }

    // Scheme 1: pure data parallelism (SPMD).
    let (spmd, spmd_w) = spmd_schedule(&g, machine);
    spmd.validate(&g, &spmd_w).expect("valid SPMD schedule");
    println!("\nScheme 1 — pure data parallelism (all nodes on 4 procs):");
    println!("{}", spmd.gantt(&g, 52));
    println!("  finish time: {:.1} s (paper: 15.6 s)", spmd.makespan);

    // Scheme 2: functional + data parallelism via the full pipeline.
    let compiled = compile(&g, machine, &CompileConfig::default());
    compiled.psa.schedule.validate(&g, &compiled.psa.weights).expect("valid PSA schedule");
    println!("\nScheme 2 — functional + data parallelism (convex + PSA):");
    println!("{}", compiled.psa.schedule.gantt(&g, 52));
    println!("  finish time: {:.1} s (paper: 14.3 s)", compiled.t_psa);
    println!("  continuous optimum Phi = {:.4} s", compiled.phi.phi);

    let ok = (spmd.makespan - 15.6).abs() < 1e-6 && (compiled.t_psa - 14.3).abs() < 1e-6;
    println!("\nresult: {}", if ok { "EXACT MATCH with the paper's numbers" } else { "MISMATCH" });
    assert!(ok, "figure 1/2 reproduction drifted");
}
