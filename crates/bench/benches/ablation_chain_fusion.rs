//! Ablation: bottom-up node coalescing (Sarkar / Gerasoulis-Yang style)
//! before the top-down convex allocation.
//!
//! The paper argues top-down methods "take a more global view" than
//! bottom-up coalescing. This harness fuses serial chains (the canonical
//! bottom-up move, which also deletes the intra-chain transfer costs)
//! and re-runs the pipeline, quantifying what fusion buys or costs.

use paradigm_bench::banner;
use paradigm_core::prelude::*;
use paradigm_mdg::{fuse_serial_chains, random_layered_mdg, transitive_reduction, RandomMdgConfig};

fn main() {
    banner(
        "ablation_chain_fusion",
        "design choice: top-down allocation vs bottom-up serial-chain coalescing",
        "fusion removes intra-chain transfers but cannot hurt a correct top-down allocator much",
    );

    let p = 32u32;
    let machine = Machine::cm5(p);
    // Chain-heavy random graphs (narrow layers) so fusion has targets.
    let cfg = RandomMdgConfig {
        layers: 8,
        width_min: 1,
        width_max: 3,
        edge_prob: 0.15,
        ..RandomMdgConfig::default()
    };

    println!("\n  seed | nodes -> fused | merges | T_psa original | T_psa fused | fused/orig");
    println!("  -----+----------------+--------+----------------+-------------+-----------");
    let mut ratios = Vec::new();
    for seed in 0..10u64 {
        let g = random_layered_mdg(&cfg, seed);
        let (fused, merges) = fuse_serial_chains(&g);
        let run = |graph: &Mdg| {
            let sol = allocate(graph, machine, &SolverConfig::fast());
            psa_schedule(graph, machine, &sol.alloc, &PsaConfig::default()).t_psa
        };
        let t_orig = run(&g);
        let t_fused = run(&fused);
        let ratio = t_fused / t_orig;
        ratios.push(ratio);
        println!(
            "  {:>4} | {:>5} -> {:>5} | {:>6} | {:>14.4} | {:>11.4} | {:>9.3}x",
            seed,
            g.compute_node_count(),
            fused.compute_node_count(),
            merges,
            t_orig,
            t_fused,
            ratio
        );
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("\n  mean fused/original T_psa: {mean:.3}x");
    // Fusion deletes real transfer costs, so it should help or tie on
    // chain-heavy graphs; it must never blow up.
    assert!(mean < 1.05, "fusion should not hurt on chain-heavy graphs (mean {mean})");

    // Transitive reduction is a no-op for costs; verify on one instance.
    let g = random_layered_mdg(&RandomMdgConfig { edge_prob: 0.9, ..cfg }, 99);
    let (reduced, removed) = transitive_reduction(&g);
    let sol_g = allocate(&g, machine, &SolverConfig::fast());
    let sol_r = allocate(&reduced, machine, &SolverConfig::fast());
    println!(
        "\n  transitive reduction: removed {removed} redundant precedence edges; Phi {:.4} -> {:.4}",
        sol_g.phi.phi, sol_r.phi.phi
    );
    assert!(
        (sol_g.phi.phi - sol_r.phi.phi).abs() / sol_g.phi.phi < 0.02,
        "removing redundant data-less edges must not change Phi materially"
    );
    println!("\nresult: bottom-up fusion composes cleanly with the top-down allocator;\nit trims transfer overhead on serial chains and never degrades the schedule");
}
