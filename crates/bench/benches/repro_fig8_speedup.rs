//! Reproduces the paper's **Figure 8**: speedup and efficiency of the
//! SPMD (pure data parallel) versus MPMD (functional + data parallel)
//! versions of both test programs at 16/32/64 processors, measured on
//! the simulated CM-5. The paper's claim: "speedups obtained for the
//! MPMD programs are much higher as compared to SPMD versions,
//! especially for larger systems".

use paradigm_bench::{banner, PAPER_SIZES};
use paradigm_core::prelude::*;
use paradigm_core::report::render_fig8;

fn main() {
    banner(
        "repro_fig8_speedup",
        "Figure 8 (speedup and efficiency, SPMD vs MPMD)",
        "MPMD > SPMD for both programs; the gap grows with system size",
    );

    let table = KernelCostTable::cm5();
    let cfg = CompileConfig::default();
    for prog in TestProgram::paper_suite() {
        let rows = fig8_speedups(prog, &PAPER_SIZES, &table, &cfg);
        println!("\n{}", render_fig8(&prog.name(), &rows));
        // Shape assertions.
        let gains: Vec<f64> = rows.iter().map(|r| r.mpmd_speedup / r.spmd_speedup).collect();
        println!(
            "  MPMD/SPMD speedup gain: {}",
            gains.iter().map(|g| format!("{g:.2}x")).collect::<Vec<_>>().join(", ")
        );
        for (r, gain) in rows.iter().zip(&gains) {
            assert!(
                *gain >= 0.98,
                "{} p={}: MPMD must not lose to SPMD (gain {gain})",
                prog.name(),
                r.procs
            );
        }
        assert!(
            gains.last().unwrap() > &1.1,
            "{}: gain at 64 procs should exceed 10 %",
            prog.name()
        );
        assert!(
            gains.last().unwrap() >= gains.first().unwrap(),
            "{}: the MPMD advantage should grow with system size",
            prog.name()
        );
    }
    println!("\nresult: Figure 8 shape reproduced (MPMD wins, gap grows with p)");
}
