//! Reproduces the paper's **Figure 3**: actual (measured on the
//! simulated CM-5) versus predicted (fitted Amdahl model) processing
//! costs for the Matrix Add and Matrix Multiply loops as a function of
//! processor count. The paper's claim is that the two curves nearly
//! coincide; we print both series and the relative error per point.

use paradigm_bench::banner;
use paradigm_cost::regression::fit_amdahl;
use paradigm_mdg::LoopClass;
use paradigm_sim::measure::measure_processing;
use paradigm_sim::TrueMachine;

fn main() {
    banner(
        "repro_fig3_processing_curves",
        "Figure 3 (actual vs predicted processing costs)",
        "predicted curves visually overlap the measured ones for both loops",
    );

    let truth = TrueMachine::cm5(64);
    let qs = [1u32, 2, 4, 8, 16, 32, 64];
    for (name, class) in [
        ("Matrix Addition (64x64)", LoopClass::MatrixAdd),
        ("Matrix Multiply (64x64)", LoopClass::MatrixMultiply),
    ] {
        let samples = measure_processing(&truth, &class, 64, &qs, 5);
        let fit = fit_amdahl(&samples);
        println!("\n{name} — fitted alpha {:.3}, tau {:.4} s", fit.params.alpha, fit.params.tau);
        println!("  procs | measured (ms) | predicted (ms) | rel err");
        println!("  ------+---------------+----------------+--------");
        let mut worst: f64 = 0.0;
        for &q in &qs {
            let measured: f64 =
                samples.iter().filter(|s| s.q == q as f64).map(|s| s.time).sum::<f64>()
                    / samples.iter().filter(|s| s.q == q as f64).count() as f64;
            let predicted = fit.params.cost(q as f64);
            let rel = (predicted - measured).abs() / measured;
            worst = worst.max(rel);
            println!(
                "  {:>5} | {:>13.4} | {:>14.4} | {:>6.2}%",
                q,
                1e3 * measured,
                1e3 * predicted,
                100.0 * rel
            );
        }
        assert!(worst < 0.06, "{name}: worst point error {worst}");
        println!("  worst relative error: {:.2}% — curves overlap as in the paper", 100.0 * worst);
    }
    println!("\nresult: Figure 3 shape reproduced (model tracks measurements)");
}
