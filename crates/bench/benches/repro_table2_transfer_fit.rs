//! Reproduces the paper's **Table 2**: the five data-transfer cost
//! constants (send/receive startup and per-byte costs, network per-byte
//! cost) recovered by joint least squares over a 1D + 2D transfer
//! measurement campaign on the simulated CM-5. The paper's headline
//! quirk — `t_n = 0` because the CM-5 performs the network transfer
//! inside the receive call — must come out of the fit too.

use paradigm_bench::banner;
use paradigm_cost::regression::fit_transfer;
use paradigm_cost::TransferParams;
use paradigm_sim::measure::measure_transfers;
use paradigm_sim::TrueMachine;

fn main() {
    banner(
        "repro_table2_transfer_fit",
        "Table 2 (parameters for the data transfer cost functions)",
        "t_ss 777.56 uS, t_ps 486.98 nS, t_sr 465.58 uS, t_pr 426.25 nS, t_n 0",
    );

    let truth = TrueMachine::cm5(64);
    let sizes = [4096u64, 16384, 65536, 262144];
    let groups = [1usize, 2, 4, 8, 16, 32];
    let samples = measure_transfers(&truth, &sizes, &groups);
    println!(
        "\nmeasurement campaign: {} samples (1D + 2D, {} sizes x {} x {} groups)",
        samples.len(),
        sizes.len(),
        groups.len(),
        groups.len()
    );

    let fit = fit_transfer(&samples);
    let paper = TransferParams::cm5();
    println!("\n  param |     fitted    |  paper (CM-5) | rel dev");
    println!("  ------+---------------+---------------+--------");
    let rows = [
        ("t_ss", fit.params.t_ss, paper.t_ss, 1e6, "uS"),
        ("t_ps", fit.params.t_ps, paper.t_ps, 1e9, "nS"),
        ("t_sr", fit.params.t_sr, paper.t_sr, 1e6, "uS"),
        ("t_pr", fit.params.t_pr, paper.t_pr, 1e9, "nS"),
    ];
    for (name, got, want, scale, unit) in rows {
        let dev = (got - want).abs() / want;
        println!(
            "  {:<5} | {:>9.2} {:<3} | {:>9.2} {:<3} | {:>6.2}%",
            name,
            scale * got,
            unit,
            scale * want,
            unit,
            100.0 * dev
        );
        assert!(dev < 0.10, "{name} deviates more than 10 %");
    }
    println!(
        "  t_n   | {:>9.2} nS  | {:>9.2} nS  | (must fit ~0 on the CM-5)",
        1e9 * fit.params.t_n,
        1e9 * paper.t_n
    );
    assert!(fit.params.t_n.abs() < 1e-12, "t_n must come out zero");
    println!("\n  fit quality: R^2 send {:.4}, recv {:.4}", fit.r2_send, fit.r2_recv);
    assert!(fit.r2_send > 0.95 && fit.r2_recv > 0.95);
    println!("\nresult: Table 2 constants recovered, t_n = 0 reproduced");
}
