//! Criterion micro-benchmarks: front-end throughput (lex/parse/lower)
//! and the value-level interpreters.

use criterion::{criterion_group, criterion_main, Criterion};
use paradigm_front::{compile_source, interpret, interpret_distributed, parse};
use paradigm_mdg::KernelCostTable;
use std::hint::black_box;

fn big_source(statements: usize) -> String {
    let mut src = String::from("program big\nmatrix ");
    let names: Vec<String> = (0..statements).map(|i| format!("M{i}")).collect();
    src.push_str(&names.iter().map(|n| format!("{n}(64,64)")).collect::<Vec<_>>().join(", "));
    src.push('\n');
    src.push_str("M0 = init()\nM1 = init()\n");
    for k in 2..statements {
        let op = ["*", "+", "-"][k % 3];
        src.push_str(&format!("M{k} = M{} {op} M{}\n", k - 1, k - 2));
    }
    src
}

fn bench_front(c: &mut Criterion) {
    let src = big_source(200);
    let table = KernelCostTable::cm5();
    c.bench_function("front/parse_200_statements", |b| {
        b.iter(|| black_box(parse(&src).unwrap().stmts.len()))
    });
    c.bench_function("front/compile_200_statements", |b| {
        b.iter(|| black_box(compile_source(&src, &table).unwrap().node_count()))
    });
}

fn bench_interp(c: &mut Criterion) {
    let src = big_source(24);
    let program = parse(&src).unwrap();
    c.bench_function("front/interpret_24_statements_64x64", |b| {
        b.iter(|| black_box(interpret(&program, 1).len()))
    });
    let groups = vec![8usize; program.stmts.len()];
    c.bench_function("front/interpret_distributed_24_statements", |b| {
        b.iter(|| black_box(interpret_distributed(&program, &groups, 1).len()))
    });
}

criterion_group!(benches, bench_front, bench_interp);
criterion_main!(benches);
