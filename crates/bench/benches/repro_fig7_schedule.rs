//! Reproduces the paper's **Figure 7**: the allocation and schedule the
//! system produces for Complex Matrix Multiply on a 4-processor machine —
//! per-node processor counts plus the Gantt chart of the PSA schedule.

use paradigm_bench::banner;
use paradigm_core::prelude::*;

fn main() {
    banner(
        "repro_fig7_schedule",
        "Figure 7 (allocation and scheduling for Complex Matrix Multiply, 4 procs)",
        "inits and adds on small groups; the four multiplies dominate the schedule",
    );

    let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
    let machine = Machine::cm5(4);
    let compiled = compile(&g, machine, &CompileConfig::default());

    println!("\ncontinuous allocation (convex program) and rounded/bounded values:");
    println!("  node | name            | continuous | rounded | bounded");
    println!("  -----+-----------------+------------+---------+--------");
    for (id, n) in g.nodes() {
        if n.is_structural() {
            continue;
        }
        println!(
            "  {:>4} | {:<15} | {:>10.3} | {:>7} | {:>7}",
            id.to_string(),
            n.name,
            compiled.solve.alloc.get(id),
            compiled.psa.rounded.as_u32(id),
            compiled.psa.bounded.as_u32(id),
        );
    }
    println!("\n  PB (Corollary 1 for p = 4): {}", compiled.psa.pb);
    println!(
        "  Phi = {:.4} s, T_psa = {:.4} s ({:+.1}%)",
        compiled.phi.phi,
        compiled.t_psa,
        compiled.deviation_percent()
    );

    println!("\n{}", compiled.psa.schedule.gantt(&g, 64));
    compiled.psa.schedule.validate(&g, &compiled.psa.weights).expect("schedule must validate");

    // Shape assertions: the four multiplies are the bulk of the makespan.
    let muls: Vec<_> = g
        .nodes()
        .filter(|(_, n)| n.name.starts_with('M'))
        .map(|(id, _)| compiled.psa.schedule.task_for(id).unwrap())
        .collect();
    let mul_time: f64 = muls.iter().map(|t| t.duration() * t.procs.len() as f64).sum();
    let area = compiled.t_psa * 4.0;
    println!("multiply processor-time share of the schedule: {:.0}%", 100.0 * mul_time / area);
    assert!(mul_time / area > 0.5, "multiplies must dominate");
    println!("\nresult: Figure 7 reproduced (allocation table + Gantt above)");
}
