//! Ablation: the post-PSA reallocation refinement (an extension beyond
//! the paper). How much of the Table-3 gap between `T_psa` and `Phi`
//! does a greedy discrete hill-climb recover?

use paradigm_bench::{banner, PAPER_SIZES};
use paradigm_core::prelude::*;
use paradigm_sched::{refine_allocation, RefineConfig};

fn main() {
    banner(
        "ablation_refinement",
        "extension: greedy critical-path reallocation after the PSA",
        "closes part of the Table-3 T_psa-vs-Phi gap, never hurts, keeps Theorem-1 validity",
    );

    let table = KernelCostTable::cm5();
    println!(
        "\n  program   |  p |  Phi (s) | T_psa (s) | refined (s) | gap before | gap after | moves"
    );
    println!(
        "  ----------+----+----------+-----------+-------------+------------+-----------+------"
    );
    let mut total_closed = 0.0;
    let mut cases = 0;
    for prog in TestProgram::paper_suite() {
        let g = prog.build(&table);
        for &p in &PAPER_SIZES {
            let m = Machine::cm5(p);
            let sol = allocate(&g, m, &SolverConfig::default());
            let start = psa_schedule(&g, m, &sol.alloc, &PsaConfig::default());
            let r = refine_allocation(&g, m, &start, &RefineConfig::default());
            r.best.schedule.validate(&g, &r.best.weights).expect("refined schedule valid");
            let gap_before = 100.0 * (start.t_psa - sol.phi.phi) / sol.phi.phi;
            let gap_after = 100.0 * (r.best.t_psa - sol.phi.phi) / sol.phi.phi;
            println!(
                "  {:<9} | {:>2} | {:>8.4} | {:>9.4} | {:>11.4} | {:>9.1}% | {:>8.1}% | {:>5}",
                prog.name().split(' ').next().unwrap_or("?"),
                p,
                sol.phi.phi,
                start.t_psa,
                r.best.t_psa,
                gap_before,
                gap_after,
                r.moves.len()
            );
            assert!(r.best.t_psa <= start.t_psa + 1e-12, "refinement must never hurt");
            assert!(
                gap_after >= -1.0,
                "refined schedule cannot materially beat the exact lower bound"
            );
            if gap_before > 0.5 {
                total_closed += (gap_before - gap_after) / gap_before;
                cases += 1;
            }
        }
    }
    if cases > 0 {
        println!(
            "\n  average fraction of the Phi-gap closed (cases with >0.5% gap): {:.0}%",
            100.0 * total_closed / cases as f64
        );
    }
    println!("\nresult: the refinement is a strict improvement pass — it trims the paper's\nTable-3 deviations while preserving every scheduling guarantee");
}
