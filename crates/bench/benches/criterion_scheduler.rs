//! Criterion micro-benchmarks: PSA scheduling throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paradigm_cost::{Allocation, Machine};
use paradigm_mdg::{random_layered_mdg, strassen_mdg, KernelCostTable, RandomMdgConfig};
use paradigm_sched::{psa_schedule, spmd_schedule, PsaConfig};
use std::hint::black_box;

fn bench_psa(c: &mut Criterion) {
    let machine = Machine::cm5(64);
    let strassen = strassen_mdg(128, &KernelCostTable::cm5());
    let alloc = Allocation::uniform(&strassen, 16.0);
    c.bench_function("psa/strassen128_p64", |b| {
        b.iter(|| black_box(psa_schedule(&strassen, machine, &alloc, &PsaConfig::default()).t_psa))
    });

    let mut group = c.benchmark_group("psa/random");
    for layers in [8usize, 16, 32] {
        let g = random_layered_mdg(
            &RandomMdgConfig { layers, width_min: 4, width_max: 8, ..RandomMdgConfig::default() },
            7,
        );
        let a = Allocation::uniform(&g, 8.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}nodes", g.compute_node_count())),
            &g,
            |b, g| b.iter(|| black_box(psa_schedule(g, machine, &a, &PsaConfig::default()).t_psa)),
        );
    }
    group.finish();
}

fn bench_spmd(c: &mut Criterion) {
    let machine = Machine::cm5(64);
    let strassen = strassen_mdg(128, &KernelCostTable::cm5());
    c.bench_function("spmd_schedule/strassen128_p64", |b| {
        b.iter(|| black_box(spmd_schedule(&strassen, machine).0.makespan))
    });
}

criterion_group!(benches, bench_psa, bench_spmd);
criterion_main!(benches);
