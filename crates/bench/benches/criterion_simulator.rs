//! Criterion micro-benchmarks: simulator throughput (message-level
//! execution of lowered MPMD/SPMD programs).

use criterion::{criterion_group, criterion_main, Criterion};
use paradigm_cost::{Allocation, Machine};
use paradigm_mdg::{random_layered_mdg, strassen_mdg, KernelCostTable, RandomMdgConfig};
use paradigm_sched::{psa_schedule, PsaConfig};
use paradigm_sim::{lower_mpmd, lower_spmd, simulate, simulate_event_driven, TrueMachine};
use std::hint::black_box;

fn bench_simulate(c: &mut Criterion) {
    let machine = Machine::cm5(64);
    let truth = TrueMachine::cm5(64);
    let strassen = strassen_mdg(128, &KernelCostTable::cm5());
    let res = psa_schedule(
        &strassen,
        machine,
        &Allocation::uniform(&strassen, 16.0),
        &PsaConfig::default(),
    );
    let mpmd = lower_mpmd(&strassen, &res.schedule);
    c.bench_function("simulate/strassen_mpmd_p64", |b| {
        b.iter(|| black_box(simulate(&mpmd, &truth).makespan))
    });

    let spmd = lower_spmd(&strassen, 64);
    c.bench_function("simulate/strassen_spmd_p64", |b| {
        b.iter(|| black_box(simulate(&spmd, &truth).makespan))
    });

    // A large random program stresses the message path.
    let g = random_layered_mdg(
        &RandomMdgConfig { layers: 20, width_min: 4, width_max: 8, ..RandomMdgConfig::default() },
        3,
    );
    let res = psa_schedule(&g, machine, &Allocation::uniform(&g, 8.0), &PsaConfig::default());
    let prog = lower_mpmd(&g, &res.schedule);
    c.bench_function("simulate/random_large_mpmd_p64", |b| {
        b.iter(|| black_box(simulate(&prog, &truth).makespan))
    });
}

fn bench_event_engine(c: &mut Criterion) {
    // The sweep engine vs the event-driven reference engine on the same
    // program (they produce identical results; this measures the cost of
    // generality).
    let machine = Machine::cm5(64);
    let truth = TrueMachine::cm5(64);
    let strassen = strassen_mdg(128, &KernelCostTable::cm5());
    let res = psa_schedule(
        &strassen,
        machine,
        &Allocation::uniform(&strassen, 16.0),
        &PsaConfig::default(),
    );
    let prog = lower_mpmd(&strassen, &res.schedule);
    c.bench_function("simulate_event_driven/strassen_mpmd_p64", |b| {
        b.iter(|| black_box(simulate_event_driven(&prog, &truth).makespan))
    });
}

fn bench_lowering(c: &mut Criterion) {
    let machine = Machine::cm5(64);
    let strassen = strassen_mdg(128, &KernelCostTable::cm5());
    let res = psa_schedule(
        &strassen,
        machine,
        &Allocation::uniform(&strassen, 16.0),
        &PsaConfig::default(),
    );
    c.bench_function("lower_mpmd/strassen_p64", |b| {
        b.iter(|| black_box(lower_mpmd(&strassen, &res.schedule).messages.len()))
    });
}

criterion_group!(benches, bench_simulate, bench_event_engine, bench_lowering);
criterion_main!(benches);
