//! Ablation: what the PSA's **rounding** and **bounding** steps cost.
//!
//! Theorem 2 bounds the blow-up of `max(A_p, C_p)` caused by rounding to
//! powers of two and clamping to PB at `(3/2)^2 (p/PB)^2`. This harness
//! measures the *actual* blow-up on the paper's workloads — it is tiny,
//! which is the paper's implicit point (the worst case is loose).

use paradigm_bench::{banner, PAPER_SIZES};
use paradigm_core::prelude::*;
use paradigm_cost::MdgWeights;
use paradigm_sched::theorem2_factor;

fn main() {
    banner(
        "ablation_rounding",
        "design choice: power-of-two rounding + PB bounding (PSA steps 1-2)",
        "Theorem 2 worst case vs observed blow-up of max(A_p, C_p)",
    );

    let table = KernelCostTable::cm5();
    let cfg = CompileConfig::default();
    println!(
        "\n  program   |  p | PB |   Phi (S) | rounded (S) | bounded (S) | blowup | Thm2 bound"
    );
    println!("  ----------+----+----+-----------+-------------+-------------+--------+-----------");
    for prog in TestProgram::paper_suite() {
        let g = prog.build(&table);
        for &p in &PAPER_SIZES {
            let machine = Machine::cm5(p);
            let c = compile(&g, machine, &cfg);
            let phi_rounded = MdgWeights::compute(&g, &machine, &c.psa.rounded).phi(&g).phi;
            let phi_bounded = MdgWeights::compute(&g, &machine, &c.psa.bounded).phi(&g).phi;
            let blowup = phi_bounded / c.phi.phi;
            let bound = theorem2_factor(p, c.psa.pb);
            println!(
                "  {:<9} | {:>2} | {:>2} | {:>9.4} | {:>11.4} | {:>11.4} | {:>5.3}x | {:>9.2}x",
                prog.name().split(' ').next().unwrap_or("?"),
                p,
                c.psa.pb,
                c.phi.phi,
                phi_rounded,
                phi_bounded,
                blowup,
                bound
            );
            assert!(blowup <= bound + 1e-9, "Theorem 2 violated");
            assert!(blowup >= 1.0 - 1e-9, "Phi is a minimum; rounding cannot improve it");
            assert!(blowup < 2.0, "observed blow-up should be far below the worst case");
        }
    }
    println!("\nresult: observed rounding+bounding blow-up well under Theorem 2's worst case");
}
