//! Reproduces the paper's **Figure 5**: actual (simulated, message-level)
//! versus predicted (Eq. 2/3 with fitted constants) data-transfer costs,
//! for both the 1D and the 2D redistribution types, across group sizes
//! and array sizes.

use paradigm_bench::banner;
use paradigm_cost::regression::fit_transfer;
use paradigm_cost::transfer::transfer_components;
use paradigm_mdg::TransferKind;
use paradigm_sim::measure::{measure_one_transfer, measure_transfers};
use paradigm_sim::TrueMachine;

fn main() {
    banner(
        "repro_fig5_transfer_curves",
        "Figure 5 (actual vs predicted costs for data transfer)",
        "predicted transfer costs closely track the measured ones for 1D and 2D",
    );

    let truth = TrueMachine::cm5(64);
    // Fit the model first (as the paper does), then compare predictions
    // against fresh measurements.
    let fit = fit_transfer(&measure_transfers(
        &truth,
        &[4096, 16384, 65536, 262144],
        &[1, 2, 4, 8, 16, 32],
    ));

    let bytes = 64 * 64 * 8u64; // one 64x64 matrix, as in the test programs
    for kind in [TransferKind::OneD, TransferKind::TwoD] {
        println!("\n{kind:?} transfer of a 64x64 matrix ({bytes} bytes):");
        println!("  p_i -> p_j | measured total (uS) | predicted total (uS) | rel err");
        println!("  -----------+---------------------+----------------------+--------");
        let mut worst: f64 = 0.0;
        for &(pi, pj) in
            &[(1usize, 1usize), (2, 2), (4, 4), (8, 8), (16, 16), (2, 8), (8, 2), (4, 16)]
        {
            let m = measure_one_transfer(&truth, kind, bytes, pi, pj, (pi * 97 + pj) as u64);
            let measured = m.send_time + m.net_time + m.recv_time;
            let c = transfer_components(kind, bytes, pi as f64, pj as f64, &fit.params);
            let predicted = c.total();
            let rel = (predicted - measured).abs() / measured;
            worst = worst.max(rel);
            println!(
                "  {:>4} -> {:<3} | {:>19.1} | {:>20.1} | {:>6.2}%",
                pi,
                pj,
                1e6 * measured,
                1e6 * predicted,
                100.0 * rel
            );
        }
        assert!(worst < 0.08, "{kind:?}: worst error {worst}");
        println!("  worst relative error: {:.2}%", 100.0 * worst);
    }
    println!("\nresult: Figure 5 shape reproduced (model tracks message-level measurements)");
}
