//! Ablation: allocation policy on synthetic workloads.
//!
//! Compares the paper's convex allocation against three simpler
//! policies on random layered MDGs, all scheduled by the same PSA:
//!
//! * **all-p** — pure data parallelism fed to the PSA (every node asks
//!   for the whole machine);
//! * **equal-split** — machine divided by the graph's maximum width;
//! * **single** — one processor per node (pure functional parallelism).

use paradigm_bench::banner;
use paradigm_core::prelude::*;
use paradigm_mdg::stats::MdgStats;
use paradigm_mdg::{random_layered_mdg, RandomMdgConfig};

fn main() {
    banner(
        "ablation_alloc_policy",
        "design choice: convex allocation vs naive policies (random MDGs)",
        "convex allocation should give the lowest (or tied) T_psa throughout",
    );

    let p = 32u32;
    let machine = Machine::cm5(p);
    let cfg = RandomMdgConfig {
        layers: 5,
        width_min: 2,
        width_max: 5,
        tau_range: (0.05, 0.8),
        ..RandomMdgConfig::default()
    };

    println!("\n  seed | nodes | width |  convex  |  all-p   | eq-split |  single  | best");
    println!("  -----+-------+-------+----------+----------+----------+----------+--------");
    let mut convex_wins = 0usize;
    let mut total = 0usize;
    let mut sums = [0.0_f64; 4];
    for seed in 0..10u64 {
        let g = random_layered_mdg(&cfg, seed);
        let width = MdgStats::of(&g).max_width.max(1);
        let sol = allocate(&g, machine, &SolverConfig::fast());
        let psa =
            |alloc: &Allocation| psa_schedule(&g, machine, alloc, &PsaConfig::default()).t_psa;
        let t_convex = psa(&sol.alloc);
        let t_allp = psa(&Allocation::uniform(&g, p as f64));
        let split = ((p as usize / width).max(1)) as f64;
        let t_split = psa(&Allocation::uniform(&g, split));
        let t_single = psa(&Allocation::uniform(&g, 1.0));
        let times = [t_convex, t_allp, t_split, t_single];
        let best = times.iter().copied().fold(f64::INFINITY, f64::min);
        let best_name = ["convex", "all-p", "eq-split", "single"]
            [times.iter().position(|&t| t == best).expect("non-empty")];
        for (s, t) in sums.iter_mut().zip(times) {
            *s += t;
        }
        total += 1;
        if (t_convex - best).abs() < 1e-12 {
            convex_wins += 1;
        }
        println!(
            "  {:>4} | {:>5} | {:>5} | {:>8.4} | {:>8.4} | {:>8.4} | {:>8.4} | {best_name}",
            seed,
            g.compute_node_count(),
            width,
            t_convex,
            t_allp,
            t_split,
            t_single
        );
        // Per instance the convex allocation optimizes the lower bound
        // Phi, not T_psa itself, so another policy can occasionally edge
        // it out after rounding + list scheduling — but never by much.
        assert!(
            t_convex <= 1.25 * best,
            "seed {seed}: convex allocation more than 25 % behind the best policy"
        );
    }
    println!(
        "\n  mean T_psa: convex {:.4}, all-p {:.4}, eq-split {:.4}, single {:.4}",
        sums[0] / total as f64,
        sums[1] / total as f64,
        sums[2] / total as f64,
        sums[3] / total as f64
    );
    println!("  convex strictly best (or tied) on {convex_wins}/{total} instances");
    assert!(
        sums[0] <= sums[1] && sums[0] <= sums[2] && sums[0] <= sums[3],
        "convex allocation must win on average"
    );
    println!("\nresult: convex allocation dominates the naive policies on synthetic MDGs");
}
