//! Ablation: the processor bound **PB** (Corollary 1).
//!
//! Corollary 1 picks the PB minimizing the *worst-case* Theorem-3 factor.
//! This harness sweeps every power-of-two PB on the 64-processor machine
//! and reports both the theoretical factor and the *achieved* `T_psa`,
//! showing where the worst-case-optimal choice lands in practice.

use paradigm_bench::banner;
use paradigm_core::prelude::*;
use paradigm_sched::{optimal_pb, theorem3_factor};

fn main() {
    banner(
        "ablation_pb_sweep",
        "design choice: Corollary-1 processor bound PB",
        "PB = 32 minimizes the Theorem-3 factor at p = 64",
    );

    let table = KernelCostTable::cm5();
    let p = 64u32;
    let machine = Machine::cm5(p);
    let pb_star = optimal_pb(p);
    println!("\nCorollary-1 optimum at p = {p}: PB = {pb_star}");
    for prog in TestProgram::paper_suite() {
        let g = prog.build(&table);
        let sol = allocate(&g, machine, &SolverConfig::default());
        println!("\n{} (Phi = {:.4} s):", prog.name(), sol.phi.phi);
        println!("   PB | Thm-3 factor | T_psa (S) | T_psa/Phi");
        println!("  ----+--------------+-----------+----------");
        let mut best_actual = (0u32, f64::INFINITY);
        for pb in [4u32, 8, 16, 32, 64] {
            let res = psa_schedule(
                &g,
                machine,
                &sol.alloc,
                &PsaConfig { pb: Some(pb), skip_rounding: false, ..PsaConfig::default() },
            );
            let factor = theorem3_factor(p, pb);
            let ratio = res.t_psa / sol.phi.phi;
            let marker = if pb == pb_star { " <- Corollary 1" } else { "" };
            println!(
                "  {:>3} | {:>11.1}x | {:>9.4} | {:>8.3}x{marker}",
                pb, factor, res.t_psa, ratio
            );
            assert!(ratio <= factor + 1e-9, "Theorem 3 violated at PB={pb}");
            if res.t_psa < best_actual.1 {
                best_actual = (pb, res.t_psa);
            }
        }
        println!(
            "  best achieved T_psa at PB = {} ({:.4} s); worst-case-optimal PB = {pb_star}",
            best_actual.0, best_actual.1
        );
    }
    println!("\nresult: Theorem 3 holds at every PB; Corollary 1 is worst-case-, not always\nbest-actual-optimal — the gap between theory and practice the paper's Table 3 hints at");
}
