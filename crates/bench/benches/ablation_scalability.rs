//! Ablation: pipeline scalability beyond the paper's graph sizes.
//!
//! The paper's largest MDG has 33 compute nodes. This harness pushes the
//! same pipeline to multi-level Strassen (203 compute nodes at 2 levels)
//! and large random graphs, reporting wall time for the allocation solve
//! and the schedule, plus the quality retained (T_psa vs the naive all-p
//! SPMD execution).

use paradigm_bench::banner;
use paradigm_core::prelude::*;
use paradigm_mdg::{random_layered_mdg, strassen_mdg_multilevel, RandomMdgConfig};
use paradigm_sched::spmd_schedule;
use std::time::Instant;

fn main() {
    banner(
        "ablation_scalability",
        "scalability: the pipeline on graphs far larger than the paper's",
        "solve+schedule wall time should stay in engineering range; quality should persist",
    );

    let p = 64u32;
    let machine = Machine::cm5(p);
    let table = KernelCostTable::cm5();

    let mut workloads: Vec<(String, Mdg)> = vec![
        ("strassen L1 (128)".into(), strassen_mdg_multilevel(128, 1, &table)),
        ("strassen L2 (256)".into(), strassen_mdg_multilevel(256, 2, &table)),
    ];
    for (label, layers, width) in
        [("random 100-node", 10usize, 10usize), ("random 300-node", 20, 15)]
    {
        let cfg = RandomMdgConfig {
            layers,
            width_min: width,
            width_max: width,
            tau_range: (0.02, 0.4),
            ..RandomMdgConfig::default()
        };
        workloads.push((label.to_string(), random_layered_mdg(&cfg, 1)));
    }

    println!(
        "\n  workload           | nodes | solve (ms) | sched (ms) |  Phi (s) | T_psa (s) | vs SPMD"
    );
    println!(
        "  -------------------+-------+------------+------------+----------+-----------+--------"
    );
    for (name, g) in &workloads {
        let t0 = Instant::now();
        let sol = allocate(g, machine, &SolverConfig::fast());
        let solve_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let res = psa_schedule(g, machine, &sol.alloc, &PsaConfig::default());
        let sched_ms = t1.elapsed().as_secs_f64() * 1e3;
        res.schedule.validate(g, &res.weights).expect("valid schedule at scale");
        let (spmd, _) = spmd_schedule(g, machine);
        println!(
            "  {:<18} | {:>5} | {:>10.1} | {:>10.2} | {:>8.4} | {:>9.4} | {:>5.2}x",
            name,
            g.compute_node_count(),
            solve_ms,
            sched_ms,
            sol.phi.phi,
            res.t_psa,
            spmd.makespan / res.t_psa
        );
        assert!(res.t_psa <= spmd.makespan * 1.01, "{name}: pipeline lost to SPMD");
        assert!(
            paradigm_sched::theorem3_factor(p, res.pb) * sol.phi.phi >= res.t_psa,
            "{name}: Theorem 3 violated at scale"
        );
    }
    println!("\nresult: the pipeline handles 200+-node MDGs with validated schedules and\nTheorem-3 certificates; mixed parallelism keeps beating SPMD at scale");
}
