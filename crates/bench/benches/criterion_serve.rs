//! Service-layer micro-benchmarks: cold pipeline solve vs cached
//! `Service::submit`, and the fingerprint/hash hot path.
//!
//! The group driver is written generically over
//! `criterion::measurement::Measurement` — the shape real criterion
//! supports and the vendored stub now mirrors — so the same bench code
//! compiles against either.

use criterion::measurement::Measurement;
use criterion::{
    black_box, criterion_group, criterion_main, BenchmarkGroup, BenchmarkId, Criterion,
};
use paradigm_core::{gallery_graph, solve_fingerprint, solve_pipeline, SolveSpec};
use paradigm_cost::Machine;
use paradigm_serve::{ServeConfig, Service};
use std::sync::Arc;

fn serve_group<M: Measurement>(g: &mut BenchmarkGroup<'_, M>) {
    let graph = Arc::new(gallery_graph("cmm").expect("gallery"));
    let spec = SolveSpec::new(Machine::cm5(64));

    g.bench_with_input(BenchmarkId::new("fingerprint", "cmm"), &graph, |b, graph| {
        b.iter(|| black_box(solve_fingerprint(graph, &spec)));
    });

    g.bench_with_input(BenchmarkId::new("cold_solve", "cmm/p64"), &graph, |b, graph| {
        b.iter(|| black_box(solve_pipeline(graph, &spec)).t_psa);
    });

    let svc = Service::start(ServeConfig {
        workers: 2,
        cache_capacity: 64,
        queue_capacity: 16,
        ..ServeConfig::default()
    });
    // Warm the cache so the measured path is submit → fingerprint → hit.
    svc.submit(Arc::clone(&graph), spec.clone()).expect("warm-up solve");
    g.bench_with_input(BenchmarkId::new("cached_submit", "cmm/p64"), &graph, |b, graph| {
        b.iter(|| {
            let r = svc.submit(Arc::clone(graph), spec.clone()).expect("cached submit");
            black_box(r.output.t_psa)
        });
    });
    svc.shutdown();
}

fn bench_serve(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve");
    serve_group(&mut g);
    g.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
