//! Ablation: convex solver quality and configuration.
//!
//! 1. Against the brute-force power-of-two oracle on small random MDGs:
//!    the continuous optimum must never be worse than the oracle's.
//! 2. Sharpness-annealing and multi-start settings: cheaper schedules
//!    should cost little solution quality (the problem is convex — the
//!    safeguards are for the max-kinks only).
//! 3. A numeric convexity probe of the objective, supporting the paper's
//!    Section-2 convex-programming claim.

use paradigm_bench::banner;
use paradigm_core::prelude::*;
use paradigm_mdg::{random_layered_mdg, RandomMdgConfig};
use paradigm_solver::convexity::{probe_midpoint_convexity, probe_points};
use paradigm_solver::{brute_force_pow2, MdgObjective};

fn main() {
    banner(
        "ablation_solver_quality",
        "design choice: smoothed projected-gradient convex solver",
        "solver <= pow2 oracle on every instance; annealing/multistart are safety nets",
    );

    let machine = Machine::cm5(8);
    let cfg_small =
        RandomMdgConfig { layers: 3, width_min: 1, width_max: 2, ..RandomMdgConfig::default() };

    println!("\n[1] solver vs brute-force pow2 oracle (random MDGs, p = 8):");
    println!("  seed | nodes |  oracle Phi |  solver Phi | solver/oracle");
    println!("  -----+-------+-------------+-------------+--------------");
    let mut worst: f64 = 0.0;
    for seed in 0..8u64 {
        let g = random_layered_mdg(&cfg_small, seed);
        if g.compute_node_count() > 7 {
            continue;
        }
        let oracle = brute_force_pow2(&g, machine, 5_000_000).expect("small instance");
        let sol = allocate(&g, machine, &SolverConfig::default());
        let ratio = sol.phi.phi / oracle.phi.phi;
        worst = worst.max(ratio);
        println!(
            "  {:>4} | {:>5} | {:>11.5} | {:>11.5} | {:>12.5}",
            seed,
            g.compute_node_count(),
            oracle.phi.phi,
            sol.phi.phi,
            ratio
        );
        assert!(ratio <= 1.0 + 1e-9, "continuous optimum must be <= pow2 optimum");
    }
    println!("  worst solver/oracle ratio: {worst:.6} (<= 1 expected)");

    println!("\n[2] solver configuration sweep (Strassen 128, p = 32):");
    let g = strassen_mdg(128, &KernelCostTable::cm5());
    let m32 = Machine::cm5(32);
    let reference = allocate(&g, m32, &SolverConfig::default()).phi.phi;
    let configs: [(&str, SolverConfig); 4] = [
        ("default (4 stages, 3 rand starts)", SolverConfig::default()),
        ("fast (2 stages, 1 rand start)", SolverConfig::fast()),
        (
            "single stage s=64, no random starts",
            SolverConfig {
                sharpness_schedule: vec![64.0],
                random_starts: 0,
                ..SolverConfig::default()
            },
        ),
        (
            "no annealing, exact-only polish",
            SolverConfig {
                sharpness_schedule: vec![],
                random_starts: 0,
                ..SolverConfig::default()
            },
        ),
    ];
    println!("  configuration                        |    Phi (S) | vs default");
    println!("  -------------------------------------+------------+-----------");
    for (name, cfg) in configs {
        let sol = allocate(&g, m32, &cfg);
        println!("  {:<36} | {:>10.5} | {:>8.4}x", name, sol.phi.phi, sol.phi.phi / reference);
        assert!(sol.phi.phi / reference < 1.10, "{name}: quality loss above 10 %");
    }

    println!("\n[3] numeric convexity probe of the objective (CMM, p = 16):");
    let gc = complex_matmul_mdg(64, &KernelCostTable::cm5());
    let m16 = Machine::cm5(16);
    let obj = MdgObjective::new(&gc, m16);
    let pts = probe_points(gc.node_count(), obj.x_upper(), 14);
    let viols = probe_midpoint_convexity(
        |x| obj.eval(x, paradigm_solver::expr::Sharpness::Exact).phi,
        &pts,
        1e-9,
    );
    println!("  segments probed: {}, violations: {}", 14 * 13 / 2, viols.len());
    assert!(viols.is_empty(), "objective must be convex in log space");

    println!("\nresult: solver dominates the pow2 oracle, config robustness confirmed,\nconvexity of the Section-2 formulation verified numerically");
}
