//! Criterion micro-benchmarks: convex allocation solver throughput on
//! the paper's workloads and on larger random MDGs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paradigm_cost::Machine;
use paradigm_mdg::{
    complex_matmul_mdg, random_layered_mdg, strassen_mdg, KernelCostTable, RandomMdgConfig,
};
use paradigm_solver::{allocate, MdgObjective, SolverConfig};
use std::hint::black_box;

fn bench_allocate(c: &mut Criterion) {
    let table = KernelCostTable::cm5();
    let machine = Machine::cm5(64);
    let cfg = SolverConfig::fast();

    let cmm = complex_matmul_mdg(64, &table);
    c.bench_function("allocate/cmm64_p64", |b| {
        b.iter(|| black_box(allocate(&cmm, machine, &cfg).phi.phi))
    });

    let strassen = strassen_mdg(128, &table);
    c.bench_function("allocate/strassen128_p64", |b| {
        b.iter(|| black_box(allocate(&strassen, machine, &cfg).phi.phi))
    });

    let mut group = c.benchmark_group("allocate/random");
    for layers in [4usize, 8] {
        let g = random_layered_mdg(
            &RandomMdgConfig { layers, width_min: 3, width_max: 6, ..RandomMdgConfig::default() },
            42,
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}nodes", g.compute_node_count())),
            &g,
            |b, g| b.iter(|| black_box(allocate(g, machine, &cfg).phi.phi)),
        );
    }
    group.finish();
}

fn bench_objective_eval(c: &mut Criterion) {
    let table = KernelCostTable::cm5();
    let machine = Machine::cm5(64);
    let g = strassen_mdg(128, &table);
    let obj = MdgObjective::new(&g, machine);
    let x = vec![1.0_f64; g.node_count()];
    c.bench_function("objective/eval_grad_strassen", |b| {
        b.iter(|| {
            black_box(obj.eval_grad(&x, paradigm_solver::expr::Sharpness::Smooth(64.0)).0.phi)
        })
    });
}

criterion_group!(benches, bench_allocate, bench_objective_eval);
criterion_main!(benches);
