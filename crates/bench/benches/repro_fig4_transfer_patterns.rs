//! Reproduces the paper's **Figure 4**: the inter-node data transfer
//! patterns — ROW2ROW, COL2COL (jointly "1D") and ROW2COL, COL2ROW
//! (jointly "2D") — rendered as sender→receiver message matrices from
//! the actual redistribution planner, for equal groups as in the
//! figure's illustration and for asymmetric groups.

use paradigm_bench::banner;
use paradigm_kernels::{redistribution_plan, BlockDist, RedistMessage};

fn render_pattern(title: &str, plan: &[RedistMessage], src: usize, dst: usize) {
    println!("\n{title} ({src} senders -> {dst} receivers, {} messages):", plan.len());
    print!("        ");
    for d in 0..dst {
        print!(" R{d:<5}");
    }
    println!();
    for s in 0..src {
        print!("  S{s:<4} |");
        for d in 0..dst {
            let bytes: u64 = plan
                .iter()
                .filter(|m| m.src as usize == s && m.dst as usize == d)
                .map(|m| m.bytes)
                .sum();
            if bytes > 0 {
                print!("{:>6}", bytes / 1024);
            } else {
                print!("     .");
            }
        }
        println!("   (KiB per receiver)");
    }
}

fn main() {
    banner(
        "repro_fig4_transfer_patterns",
        "Figure 4 (inter-node data transfer patterns)",
        "ROW2ROW/COL2COL: rank-to-rank (1D); ROW2COL/COL2ROW: all-pairs (2D)",
    );
    let (n, p) = (64usize, 4usize);

    let r2r = redistribution_plan(n, n, p, BlockDist::Row, p, BlockDist::Row);
    render_pattern("ROW2ROW (1D)", &r2r, p, p);
    assert_eq!(r2r.len(), p, "1D equal groups: one message per rank pair");
    assert!(r2r.iter().all(|m| m.src == m.dst), "diagonal pattern");

    let c2c = redistribution_plan(n, n, p, BlockDist::Col, p, BlockDist::Col);
    render_pattern("COL2COL (1D)", &c2c, p, p);
    assert_eq!(c2c.len(), p);
    // The paper: ROW2ROW and COL2COL "are identical with respect to the
    // time taken for transfer".
    let bytes_r: Vec<u64> = r2r.iter().map(|m| m.bytes).collect();
    let bytes_c: Vec<u64> = c2c.iter().map(|m| m.bytes).collect();
    assert_eq!(bytes_r, bytes_c, "1D cases are cost-identical");

    let r2c = redistribution_plan(n, n, p, BlockDist::Row, p, BlockDist::Col);
    render_pattern("ROW2COL (2D)", &r2c, p, p);
    assert_eq!(r2c.len(), p * p, "2D: every pair exchanges a block");

    let c2r = redistribution_plan(n, n, p, BlockDist::Col, p, BlockDist::Row);
    render_pattern("COL2ROW (2D)", &c2r, p, p);
    assert_eq!(c2r.len(), p * p);
    let total_2d: u64 = r2c.iter().map(|m| m.bytes).sum();
    let total_1d: u64 = r2r.iter().map(|m| m.bytes).sum();
    // "the net amount of data transferred for any given array has to be
    // the same in both cases".
    assert_eq!(total_1d, total_2d, "same total bytes for 1D and 2D");
    assert_eq!(total_1d, (n * n * 8) as u64);

    // The general case the figure's caption mentions: different group
    // sizes.
    let asym = redistribution_plan(n, n, 2, BlockDist::Row, 4, BlockDist::Row);
    render_pattern("ROW2ROW, asymmetric (2 -> 4)", &asym, 2, 4);
    assert_eq!(asym.len(), 4, "max(p_i, p_j) messages");

    println!("\nresult: Figure 4's four patterns reproduced from the real planner;\n1D = rank-aligned messages, 2D = all-pairs, byte totals identical");
}
