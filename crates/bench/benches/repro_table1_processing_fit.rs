//! Reproduces the paper's **Table 1**: processing-cost parameters
//! (serial fraction `alpha`, sequential time `tau`) for the Matrix
//! Addition and Matrix Multiply loops at 64x64, recovered by linear
//! regression against measurements of the (simulated) CM-5 — the
//! training-sets methodology of Section 4.

use paradigm_bench::banner;
use paradigm_cost::regression::fit_amdahl;
use paradigm_mdg::{KernelCostTable, LoopClass};
use paradigm_sim::measure::measure_processing;
use paradigm_sim::TrueMachine;

fn main() {
    banner(
        "repro_table1_processing_fit",
        "Table 1 (parameters for the processing cost function)",
        "MatAdd 64x64: alpha 6.7 %, tau 3.73 mS; MatMul 64x64: alpha 12.1 %, tau 298.47 mS",
    );

    let truth = TrueMachine::cm5(64);
    let qs = [1u32, 2, 4, 8, 16, 32, 64];
    println!("\n  Node Name                 | alpha (%) |  tau (mS) |   R^2   | paper alpha/tau");
    println!("  --------------------------+-----------+-----------+---------+----------------");
    let cases = [
        ("Matrix Addition (64x64)", LoopClass::MatrixAdd, 6.7, 3.73),
        ("Matrix Multiply (64x64)", LoopClass::MatrixMultiply, 12.1, 298.47),
    ];
    let mut worst_alpha_dev: f64 = 0.0;
    for (name, class, paper_alpha, paper_tau) in cases {
        let samples = measure_processing(&truth, &class, 64, &qs, 3);
        let fit = fit_amdahl(&samples);
        println!(
            "  {:<25} | {:>4.1}±{:>4.2} | {:>6.2}±{:>4.2} | {:>7.4} | {paper_alpha} % / {paper_tau} mS",
            name,
            100.0 * fit.params.alpha,
            100.0 * fit.alpha_stderr,
            1e3 * fit.params.tau,
            1e3 * fit.tau_stderr,
            fit.r2,
        );
        worst_alpha_dev = worst_alpha_dev.max((100.0 * fit.params.alpha - paper_alpha).abs());
        assert!(fit.r2 > 0.98, "{name}: fit R^2 too low: {}", fit.r2);
        assert!(
            (1e3 * fit.params.tau - paper_tau).abs() / paper_tau < 0.05,
            "{name}: tau off by more than 5 %"
        );
    }
    let nominal = KernelCostTable::cm5();
    println!(
        "\n(ground truth machine constants: add alpha {:.1} %, mul alpha {:.1} %;",
        100.0 * nominal.add.alpha,
        100.0 * nominal.mul.alpha
    );
    println!(" worst fitted-alpha deviation from paper: {worst_alpha_dev:.2} points)");
    println!("\nresult: parameters recovered within tolerance — Table 1 shape reproduced");
}
