//! Reproduces the paper's **Table 3**: deviation of the PSA finish time
//! `T_psa` from the convex-program optimum `Phi` for both test programs
//! at 16/32/64 processors.
//!
//! Note on sign: the paper reports small *negative* deviations for
//! Complex Matrix Multiply (−2.6/−1.3/−1.9 %), i.e. `T_psa < Phi`. Since
//! `Phi` is a lower bound on every schedule at the *exact* continuous
//! optimum, a negative deviation can only come from incomplete solver
//! convergence on their side; our solver converges tightly, so our
//! deviations are small and non-negative — the magnitude and the
//! CMM-vs-Strassen ordering (Strassen deviates more) are the shape being
//! reproduced.

use paradigm_bench::{banner, PAPER_SIZES};
use paradigm_core::prelude::*;
use paradigm_core::report::render_table3;

fn main() {
    banner(
        "repro_table3_phi_deviation",
        "Table 3 (deviation of T_psa from Phi)",
        "CMM: -2.6/-1.3/-1.9 %; Strassen: +8.8/+6.3/+15.6 %",
    );

    let table = KernelCostTable::cm5();
    let cfg = CompileConfig::default();
    let paper: [(&str, [f64; 3]); 2] =
        [("CMM", [-2.6, -1.3, -1.9]), ("Strassen", [8.8, 6.3, 15.6])];
    let mut max_dev = [0.0_f64; 2];
    for (k, prog) in TestProgram::paper_suite().into_iter().enumerate() {
        let rows = table3_deviation(prog, &PAPER_SIZES, &table, &cfg);
        println!("\n{}", render_table3(&prog.name(), &rows));
        println!(
            "  (paper reported: {} %)",
            paper[k].1.iter().map(|v| format!("{v:+.1}")).collect::<Vec<_>>().join(", ")
        );
        for r in &rows {
            assert!(
                r.percent_change >= -0.01,
                "T_psa must not beat the exact lower bound Phi (p={}, {}%)",
                r.procs,
                r.percent_change
            );
            assert!(
                r.percent_change <= 40.0,
                "deviation implausibly large (p={}, {}%)",
                r.procs,
                r.percent_change
            );
            max_dev[k] = max_dev[k].max(r.percent_change.abs());
        }
    }
    println!("\nmax |deviation|: CMM {:.1}% vs Strassen {:.1}%", max_dev[0], max_dev[1]);
    println!("result: Table 3 shape reproduced (near-optimal schedules; deviations small)");
}
