//! Criterion micro-benchmarks: the numeric matrix kernels (naive vs
//! blocked vs Strassen) and redistribution planning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paradigm_kernels::{
    redistribution_plan, strassen_multiply, strassen_one_level, BlockDist, ComplexMatrix, Matrix,
};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [64usize, 128] {
        let a = Matrix::random(n, n, 1);
        let b = Matrix::random(n, n, 2);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| black_box(a.mul(&b)))
        });
        group.bench_with_input(BenchmarkId::new("blocked32", n), &n, |bch, _| {
            bch.iter(|| black_box(a.mul_blocked(&b, 32)))
        });
        group.bench_with_input(BenchmarkId::new("strassen_one_level", n), &n, |bch, _| {
            bch.iter(|| black_box(strassen_one_level(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("strassen_full_c32", n), &n, |bch, _| {
            bch.iter(|| black_box(strassen_multiply(&a, &b, 32)))
        });
    }
    group.finish();
}

fn bench_complex(c: &mut Criterion) {
    let a = ComplexMatrix::random(64, 64, 3);
    let b = ComplexMatrix::random(64, 64, 4);
    c.bench_function("complex_mul/4m2a_64", |bch| b_iter(bch, &a, &b));
    fn b_iter(bch: &mut criterion::Bencher<'_>, a: &ComplexMatrix, b: &ComplexMatrix) {
        bch.iter(|| black_box(a.mul_4m2a(b)));
    }
}

fn bench_redistribution(c: &mut Criterion) {
    c.bench_function("redistribution_plan/row2col_32x32procs", |b| {
        b.iter(|| {
            black_box(redistribution_plan(1024, 1024, 32, BlockDist::Row, 32, BlockDist::Col).len())
        })
    });
}

criterion_group!(benches, bench_matmul, bench_complex, bench_redistribution);
criterion_main!(benches);
