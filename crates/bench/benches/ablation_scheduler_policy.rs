//! Ablation: the PSA's lowest-EST priority versus classic
//! Highest-Level-First (critical path) list scheduling.
//!
//! The paper names its scheduler PSA "because of the implicit
//! prioritization in Step 4 where a node with the lowest EST is picked".
//! This harness asks how much that choice matters against the HLF
//! priority used by much of the list-scheduling literature.

use paradigm_bench::{banner, PAPER_SIZES};
use paradigm_core::prelude::*;
use paradigm_mdg::{random_layered_mdg, RandomMdgConfig};
use paradigm_sched::SchedPolicy;

fn main() {
    banner(
        "ablation_scheduler_policy",
        "design choice: lowest-EST (PSA) vs highest-level-first ready-queue priority",
        "both are Theorem-1 list schedulers; the paper picks lowest EST",
    );

    let table = KernelCostTable::cm5();
    println!("\n[1] paper workloads:");
    println!("  program   |  p | PSA T_psa (s) | HLF T_psa (s) | HLF/PSA");
    println!("  ----------+----+---------------+---------------+--------");
    for prog in TestProgram::paper_suite() {
        let g = prog.build(&table);
        for &p in &PAPER_SIZES {
            let m = Machine::cm5(p);
            let sol = allocate(&g, m, &SolverConfig::default());
            let est = psa_schedule(&g, m, &sol.alloc, &PsaConfig::default());
            let hlf = psa_schedule(
                &g,
                m,
                &sol.alloc,
                &PsaConfig { policy: SchedPolicy::HighestLevelFirst, ..PsaConfig::default() },
            );
            est.schedule.validate(&g, &est.weights).expect("valid PSA schedule");
            hlf.schedule.validate(&g, &hlf.weights).expect("valid HLF schedule");
            println!(
                "  {:<9} | {:>2} | {:>13.4} | {:>13.4} | {:>6.3}x",
                prog.name().split(' ').next().unwrap_or("?"),
                p,
                est.t_psa,
                hlf.t_psa,
                hlf.t_psa / est.t_psa
            );
        }
    }

    println!("\n[2] random layered MDGs (p = 32):");
    let m = Machine::cm5(32);
    let cfg =
        RandomMdgConfig { layers: 5, width_min: 2, width_max: 5, ..RandomMdgConfig::default() };
    let mut est_sum = 0.0;
    let mut hlf_sum = 0.0;
    let mut est_wins = 0;
    let mut hlf_wins = 0;
    for seed in 0..12u64 {
        let g = random_layered_mdg(&cfg, seed);
        let sol = allocate(&g, m, &SolverConfig::fast());
        let est = psa_schedule(&g, m, &sol.alloc, &PsaConfig::default());
        let hlf = psa_schedule(
            &g,
            m,
            &sol.alloc,
            &PsaConfig { policy: SchedPolicy::HighestLevelFirst, ..PsaConfig::default() },
        );
        est_sum += est.t_psa;
        hlf_sum += hlf.t_psa;
        if est.t_psa < hlf.t_psa - 1e-12 {
            est_wins += 1;
        } else if hlf.t_psa < est.t_psa - 1e-12 {
            hlf_wins += 1;
        }
    }
    println!("  mean T_psa: PSA {:.4} s, HLF {:.4} s", est_sum / 12.0, hlf_sum / 12.0);
    println!("  strict wins: PSA {est_wins}, HLF {hlf_wins}, ties {}", 12 - est_wins - hlf_wins);
    let ratio: f64 = est_sum / hlf_sum;
    assert!(
        (0.8..=1.2).contains(&ratio),
        "policies should be within 20 % of each other on average, got {ratio}"
    );
    println!(
        "\nresult: both priorities land in the same Theorem-1 regime; the lowest-EST\nchoice is not load-bearing for the paper's results (within ~{:.0}% on average)",
        100.0 * (ratio - 1.0).abs()
    );
}
