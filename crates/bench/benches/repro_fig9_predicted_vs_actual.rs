//! Reproduces the paper's **Figure 9**: predicted versus actual
//! execution times of the two test programs (MPMD versions), normalized
//! to the actual times. The paper reports the two "fairly close to each
//! other", validating the cost models.

use paradigm_bench::{banner, PAPER_SIZES};
use paradigm_core::prelude::*;
use paradigm_core::report::render_fig9;

fn main() {
    banner(
        "repro_fig9_predicted_vs_actual",
        "Figure 9 (predicted vs actual execution times, normalized to actual)",
        "predicted/actual stays near 1.0 for both programs and all sizes",
    );

    let table = KernelCostTable::cm5();
    let cfg = CompileConfig::default();
    for prog in TestProgram::paper_suite() {
        let rows = fig9_predicted_vs_actual(prog, &PAPER_SIZES, &table, &cfg);
        println!("\n{}", render_fig9(&prog.name(), &rows));
        for r in &rows {
            assert!(
                (0.75..=1.25).contains(&r.ratio),
                "{} p={}: predicted/actual = {:.3} outside the accuracy band",
                prog.name(),
                r.procs,
                r.ratio
            );
        }
    }
    println!("result: Figure 9 shape reproduced (predictions within ±25% of simulated actuals)");
}
