//! Bitwise determinism of the multistart solver: the parallel path may
//! only change *where* a start runs, never what it computes, so for the
//! same seed the parallel and serial solves must return bit-identical
//! `AllocationResult`s (not merely close ones).

use paradigm_cost::Machine;
use paradigm_mdg::{
    complex_matmul_mdg, example_fig1_mdg, random_layered_mdg, KernelCostTable, RandomMdgConfig,
};
use paradigm_solver::{try_allocate, AllocationResult, SolverConfig};

fn assert_bitwise_equal(par: &AllocationResult, seq: &AllocationResult, label: &str) {
    assert_eq!(par.starts, seq.starts, "{label}: start count");
    assert_eq!(par.iterations, seq.iterations, "{label}: iteration count");
    assert_eq!(
        par.phi.phi.to_bits(),
        seq.phi.phi.to_bits(),
        "{label}: Phi differs ({} vs {})",
        par.phi.phi,
        seq.phi.phi
    );
    assert_eq!(par.phi.a_p.to_bits(), seq.phi.a_p.to_bits(), "{label}: A_p differs");
    assert_eq!(par.phi.c_p.to_bits(), seq.phi.c_p.to_bits(), "{label}: C_p differs");
    assert_eq!(par.alloc.len(), seq.alloc.len(), "{label}: allocation length");
    for (i, (a, b)) in par.alloc.as_slice().iter().zip(seq.alloc.as_slice()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: allocation of node {i} differs");
    }
}

#[test]
fn parallel_multistart_is_bitwise_identical_to_serial() {
    // No wall-clock budget: the watchdog is the only nondeterministic
    // input, and these configs do not set one.
    let cases: Vec<(&str, paradigm_mdg::Mdg, u32)> = vec![
        ("fig1", example_fig1_mdg(), 4),
        ("cmm-64", complex_matmul_mdg(64, &KernelCostTable::cm5()), 16),
        (
            "random-5x4",
            random_layered_mdg(
                &RandomMdgConfig {
                    layers: 5,
                    width_min: 4,
                    width_max: 4,
                    ..RandomMdgConfig::default()
                },
                7,
            ),
            32,
        ),
    ];
    for (label, g, procs) in &cases {
        let base = SolverConfig { random_starts: 5, ..SolverConfig::default() };
        let par =
            try_allocate(g, Machine::cm5(*procs), &SolverConfig { parallel: true, ..base.clone() })
                .expect("parallel solve");
        let seq = try_allocate(g, Machine::cm5(*procs), &SolverConfig { parallel: false, ..base })
            .expect("serial solve");
        assert_bitwise_equal(&par, &seq, label);
    }
}

#[test]
fn parallel_multistart_is_reproducible_across_runs() {
    let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
    let cfg = SolverConfig { random_starts: 4, parallel: true, ..SolverConfig::default() };
    let a = try_allocate(&g, Machine::cm5(16), &cfg).expect("solve");
    let b = try_allocate(&g, Machine::cm5(16), &cfg).expect("solve");
    assert_bitwise_equal(&a, &b, "repeat-run");
}
