//! Asserts the K-wide batched descent loop's zero-allocation guarantee
//! with a counting global allocator.
//!
//! This file deliberately contains a single `#[test]` — the counter is
//! process-global, and a second test running on a sibling thread would
//! pollute the delta.

use paradigm_cost::Machine;
use paradigm_mdg::{random_layered_mdg, RandomMdgConfig};
use paradigm_solver::expr::Sharpness;
use paradigm_solver::{
    allocation_count, descend_multi_stage, BatchWorkspace, CountingAllocator, MdgObjective,
};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn batched_descent_iterations_are_allocation_free_after_warmup() {
    let cfg =
        RandomMdgConfig { layers: 8, width_min: 8, width_max: 8, ..RandomMdgConfig::default() };
    let g = random_layered_mdg(&cfg, 42);
    let obj = MdgObjective::new(&g, Machine::cm5(64));
    let n = obj.num_vars();
    let ub = obj.x_upper();
    let k = 8usize;
    let mut bw = BatchWorkspace::new();

    let fresh_points = |offset: f64| -> Vec<Vec<f64>> {
        (0..k)
            .map(|l| (0..n).map(|j| (offset + 0.03 * (l + j % 5) as f64).min(ub)).collect())
            .collect()
    };

    // Warm-up: first iterations size every lane-major buffer, the
    // batched tapes, and the scalar exact-bypass scratch.
    let mut points = fresh_points(ub / 2.0);
    let warm = descend_multi_stage(&obj, &mut points, Sharpness::Smooth(8.0), 10, 0.0, &mut bw);
    let warm_exact = descend_multi_stage(&obj, &mut points, Sharpness::Exact, 5, 0.0, &mut bw);
    assert!(warm > 0 && warm_exact > 0, "warm-up stages must iterate");

    // Measured run: restart from fresh lane points (same dimensions) and
    // let the loop run; with warm buffers zero heap allocations are
    // permitted across every sharpness tier, including the scalar-bypass
    // exact stage.
    let mut points = fresh_points(ub / 3.0);
    for sharp in [Sharpness::Smooth(8.0), Sharpness::Smooth(64.0), Sharpness::Exact] {
        let before = allocation_count();
        let iters = descend_multi_stage(&obj, &mut points, sharp, 50, 0.0, &mut bw);
        let delta = allocation_count() - before;
        assert!(iters > 0, "{sharp:?}: measured stage must iterate");
        assert_eq!(
            delta, 0,
            "{sharp:?}: batched descent performed {delta} heap allocations over {iters} lane iterations"
        );
    }
}
