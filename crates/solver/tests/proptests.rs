//! Property-based tests of the convex solver: convexity of the
//! objective, smoothing bounds, gradient correctness, feasibility, and
//! dominance over the power-of-two oracle.

use paradigm_cost::Machine;
use paradigm_mdg::{random_layered_mdg, RandomMdgConfig};
use paradigm_solver::convexity::{probe_midpoint_convexity, probe_points};
use paradigm_solver::expr::Sharpness;
use paradigm_solver::objective::ObjectiveParts;
use paradigm_solver::{allocate, brute_force_pow2, BatchWorkspace, MdgObjective, SolverConfig};
use proptest::prelude::*;

/// Deterministic K lane points for a batched sweep: lane `l` offsets a
/// base interior point so every lane sits somewhere different in the box.
fn lane_points(n: usize, k: usize, ub: f64) -> Vec<Vec<f64>> {
    (0..k)
        .map(|l| {
            (0..n)
                .map(|i| {
                    let v = 0.35
                        + 0.25 * ((i * 7 + l * 3) % 9) as f64 / 9.0
                        + 0.02 * (l as f64 + 0.5) * ((i as f64) * 0.9).sin();
                    v.clamp(0.0, ub)
                })
                .collect()
        })
        .collect()
}

/// Gather per-lane points into the lane-major layout the batched entry
/// points expect (`xs[j * k + l]` = variable `j` of lane `l`).
fn lane_major(points: &[Vec<f64>], n: usize) -> Vec<f64> {
    let k = points.len();
    let mut xs = vec![0.0; n * k];
    for (l, p) in points.iter().enumerate() {
        for j in 0..n {
            xs[j * k + l] = p[j];
        }
    }
    xs
}

fn arb_cfg() -> impl Strategy<Value = RandomMdgConfig> {
    (1usize..=3, 1usize..=3, 0.0f64..0.7, 0.0f64..1.0).prop_map(
        |(layers, width, edge_prob, two_d_prob)| RandomMdgConfig {
            layers,
            width_min: 1,
            width_max: width,
            edge_prob,
            two_d_prob,
            ..RandomMdgConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    #[test]
    fn objective_is_convex_in_log_space(cfg in arb_cfg(), seed in 0u64..2000) {
        let g = random_layered_mdg(&cfg, seed);
        let obj = MdgObjective::new(&g, Machine::cm5(16));
        let pts = probe_points(g.node_count(), obj.x_upper(), 8);
        let viols = probe_midpoint_convexity(
            |x| obj.eval(x, Sharpness::Exact).phi,
            &pts,
            1e-9,
        );
        prop_assert!(viols.is_empty(), "{} violations", viols.len());
    }

    #[test]
    fn smoothing_upper_bounds_and_tightens(cfg in arb_cfg(), seed in 0u64..2000) {
        let g = random_layered_mdg(&cfg, seed);
        let obj = MdgObjective::new(&g, Machine::cm5(16));
        let x = vec![0.7; g.node_count()];
        let exact = obj.eval(&x, Sharpness::Exact).phi;
        let mut prev = f64::INFINITY;
        for s in [2.0, 8.0, 32.0, 128.0] {
            let v = obj.eval(&x, Sharpness::Smooth(s)).phi;
            prop_assert!(v >= exact - 1e-12, "smoothing must upper-bound exact");
            prop_assert!(v <= prev + 1e-12, "sharper smoothing must tighten");
            prev = v;
        }
        prop_assert!((prev - exact) / exact < 0.2, "s=128 should be close to exact");
    }

    #[test]
    fn gradient_matches_finite_difference(cfg in arb_cfg(), seed in 0u64..2000) {
        let g = random_layered_mdg(&cfg, seed);
        let obj = MdgObjective::new(&g, Machine::cm5(8));
        let n = g.node_count();
        let x: Vec<f64> = (0..n).map(|i| 0.4 + 0.2 * ((i * 7 % 5) as f64) / 5.0).collect();
        let sharp = Sharpness::Smooth(8.0);
        let (_, grad) = obj.eval_grad(&x, sharp);
        let h = 1e-6;
        for j in 0..n {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp[j] += h;
            xm[j] -= h;
            let fd = (obj.eval(&xp, sharp).phi - obj.eval(&xm, sharp).phi) / (2.0 * h);
            prop_assert!(
                (grad[j] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                "var {j}: {} vs {}", grad[j], fd
            );
        }
    }

    #[test]
    fn reverse_gradient_matches_forward_reference(cfg in arb_cfg(), seed in 0u64..2000) {
        // The production gradient is reverse-mode (adjoint); the retired
        // forward-mode implementation is kept as an independently derived
        // reference. Same chain rule, different accumulation order — they
        // must agree to rounding (1e-9 relative) at every sharpness,
        // including the exact max (identical first-argmax tie-breaking).
        let g = random_layered_mdg(&cfg, seed);
        let obj = MdgObjective::new(&g, Machine::cm5(16));
        let n = g.node_count();
        let x: Vec<f64> = (0..n).map(|i| 0.3 + 0.25 * ((i * 11 % 7) as f64) / 7.0).collect();
        for sharp in [Sharpness::Smooth(8.0), Sharpness::Smooth(256.0), Sharpness::Exact] {
            let (p_r, g_r) = obj.eval_grad(&x, sharp);
            let (p_f, g_f) = obj.eval_grad_forward(&x, sharp);
            prop_assert!((p_r.phi - p_f.phi).abs() <= 1e-9 * p_f.phi.abs().max(1.0));
            for j in 0..n {
                prop_assert!(
                    (g_r[j] - g_f[j]).abs() <= 1e-9 * (1.0 + g_f[j].abs()),
                    "{sharp:?} var {j}: reverse {} vs forward {}", g_r[j], g_f[j]
                );
            }
        }
    }

    #[test]
    fn reverse_gradient_matches_finite_difference(cfg in arb_cfg(), seed in 0u64..2000) {
        let g = random_layered_mdg(&cfg, seed);
        let obj = MdgObjective::new(&g, Machine::cm5(8));
        let n = g.node_count();
        // Generic interior point (irrational-ish offsets avoid sitting on
        // a max kink by construction).
        let x: Vec<f64> = (0..n).map(|i| 0.4 + 0.2 * ((i * 7 % 5) as f64) / 5.0 + 1e-3 * (i as f64).sin()).collect();
        for sharp in [Sharpness::Smooth(4.0), Sharpness::Smooth(64.0)] {
            let (_, grad) = obj.eval_grad(&x, sharp);
            let h = 1e-6;
            for j in 0..n {
                let mut xp = x.clone();
                let mut xm = x.clone();
                xp[j] += h;
                xm[j] -= h;
                let fd = (obj.eval(&xp, sharp).phi - obj.eval(&xm, sharp).phi) / (2.0 * h);
                prop_assert!(
                    (grad[j] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                    "{sharp:?} var {j}: {} vs {}", grad[j], fd
                );
            }
        }
    }

    #[test]
    fn grad_parts_consistent_with_phi_gradient(cfg in arb_cfg(), seed in 0u64..2000) {
        // eval_grad_parts returns ∇A_p and ∇C_p separately; recombining
        // them with the Phi smax weights must reproduce eval_grad.
        let g = random_layered_mdg(&cfg, seed);
        let obj = MdgObjective::new(&g, Machine::cm5(16));
        let n = g.node_count();
        let x: Vec<f64> = (0..n).map(|i| 0.2 + 0.3 * ((i * 5 % 9) as f64) / 9.0).collect();
        let sharp = Sharpness::Smooth(16.0);
        let (parts, grad) = obj.eval_grad(&x, sharp);
        let (parts2, ga, gc) = obj.eval_grad_parts(&x, sharp);
        prop_assert!((parts.phi - parts2.phi).abs() <= 1e-12 * parts.phi.abs().max(1.0));
        let (_, w) = paradigm_solver::expr::smax_weights(&[parts.a_p, parts.c_p], sharp);
        for j in 0..n {
            let combined = w[0] * ga[j] + w[1] * gc[j];
            prop_assert!(
                (grad[j] - combined).abs() <= 1e-9 * (1.0 + grad[j].abs()),
                "var {j}: {} vs recombined {}", grad[j], combined
            );
        }
    }

    #[test]
    fn batched_gradient_matches_scalar_forward_and_exact(cfg in arb_cfg(), seed in 0u64..2000) {
        // The K-wide batched evaluator must agree per lane with the
        // scalar adjoint AND the independently derived forward-mode
        // reference to 1e-9 relative, for every batch width (including
        // widths that exercise the chunked-kernel scalar tail) and at
        // every sharpness tier. At Exact the batched entry point routes
        // through the scalar path, so agreement there is bitwise.
        let g = random_layered_mdg(&cfg, seed);
        let obj = MdgObjective::new(&g, Machine::cm5(16));
        let n = g.node_count();
        let ub = obj.x_upper();
        let mut bw = BatchWorkspace::new();
        let mut grads = Vec::new();
        for k in [1usize, 2, 3, 4, 8, 17] {
            let points = lane_points(n, k, ub);
            let xs = lane_major(&points, n);
            let mut parts = vec![ObjectiveParts { phi: 0.0, a_p: 0.0, c_p: 0.0 }; k];
            for sharp in [Sharpness::Smooth(8.0), Sharpness::Smooth(256.0), Sharpness::Exact] {
                obj.eval_grad_batch_with(&xs, k, sharp, &mut bw.scratch, &mut grads, &mut parts);
                for (l, x) in points.iter().enumerate() {
                    let (p_s, g_s) = obj.eval_grad(x, sharp);
                    let (p_f, g_f) = obj.eval_grad_forward(x, sharp);
                    prop_assert!(
                        (parts[l].phi - p_s.phi).abs() <= 1e-9 * p_s.phi.abs().max(1.0),
                        "k={k} lane {l} {sharp:?}: batched phi {} vs scalar {}",
                        parts[l].phi, p_s.phi
                    );
                    for j in 0..n {
                        let b = grads[j * k + l];
                        prop_assert!(
                            (b - g_s[j]).abs() <= 1e-9 * (1.0 + g_s[j].abs()),
                            "k={k} lane {l} {sharp:?} var {j}: batched {b} vs scalar {}",
                            g_s[j]
                        );
                        prop_assert!(
                            (b - g_f[j]).abs() <= 1e-9 * (1.0 + g_f[j].abs()),
                            "k={k} lane {l} {sharp:?} var {j}: batched {b} vs forward {}",
                            g_f[j]
                        );
                    }
                    prop_assert!((parts[l].phi - p_f.phi).abs() <= 1e-9 * p_f.phi.abs().max(1.0));
                }
            }
        }
    }

    #[test]
    fn batched_gradient_matches_central_differences(cfg in arb_cfg(), seed in 0u64..2000) {
        // Independent ground truth for the batched path: central
        // finite differences of the *batched value* evaluator, checked
        // at a lane-populated batch so each derivative is taken in the
        // same lane it perturbs.
        let g = random_layered_mdg(&cfg, seed);
        let obj = MdgObjective::new(&g, Machine::cm5(8));
        let n = g.node_count();
        let ub = obj.x_upper();
        let k = 3usize;
        let sharp = Sharpness::Smooth(64.0);
        let points = lane_points(n, k, ub);
        let xs = lane_major(&points, n);
        let mut bw = BatchWorkspace::new();
        let mut grads = Vec::new();
        let mut parts = vec![ObjectiveParts { phi: 0.0, a_p: 0.0, c_p: 0.0 }; k];
        obj.eval_grad_batch_with(&xs, k, sharp, &mut bw.scratch, &mut grads, &mut parts);
        let h = 1e-6;
        for l in 0..k {
            for j in 0..n {
                let mut xp = xs.clone();
                let mut xm = xs.clone();
                xp[j * k + l] += h;
                xm[j * k + l] -= h;
                obj.eval_batch_with(&xp, k, sharp, &mut bw.scratch, &mut parts);
                let fp = parts[l].phi;
                obj.eval_batch_with(&xm, k, sharp, &mut bw.scratch, &mut parts);
                let fm = parts[l].phi;
                let fd = (fp - fm) / (2.0 * h);
                prop_assert!(
                    (grads[j * k + l] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                    "lane {l} var {j}: batched {} vs central diff {fd}",
                    grads[j * k + l]
                );
            }
        }
    }

    #[test]
    fn solver_feasible_and_finite(cfg in arb_cfg(), seed in 0u64..2000, pk in 1u32..=6) {
        let g = random_layered_mdg(&cfg, seed);
        let p = 1u32 << pk;
        let res = allocate(&g, Machine::cm5(p), &SolverConfig::fast());
        prop_assert!(res.phi.phi.is_finite() && res.phi.phi > 0.0);
        for (id, _) in g.nodes() {
            let q = res.alloc.get(id);
            prop_assert!((1.0..=p as f64 + 1e-9).contains(&q));
        }
    }

    #[test]
    fn solver_dominates_pow2_oracle(cfg in arb_cfg(), seed in 0u64..2000) {
        let g = random_layered_mdg(&cfg, seed);
        if g.compute_node_count() > 6 {
            return Ok(()); // keep the oracle tractable
        }
        let m = Machine::cm5(8);
        let oracle = brute_force_pow2(&g, m, 5_000_000).expect("small");
        let sol = allocate(&g, m, &SolverConfig::default());
        prop_assert!(
            sol.phi.phi <= oracle.phi.phi * (1.0 + 1e-9),
            "solver {} vs oracle {}",
            sol.phi.phi,
            oracle.phi.phi
        );
    }

    #[test]
    fn solution_is_stationary_under_perturbation(cfg in arb_cfg(), seed in 0u64..2000) {
        // Perturbing the solution in random directions inside the box
        // must not significantly decrease the exact Phi (approximate
        // global optimality of a convex minimum).
        let g = random_layered_mdg(&cfg, seed);
        let m = Machine::cm5(16);
        let sol = allocate(&g, m, &SolverConfig::default());
        let obj = MdgObjective::new(&g, m);
        let ub = obj.x_upper();
        let x0: Vec<f64> = g
            .nodes()
            .map(|(id, _)| sol.alloc.get(id).ln())
            .collect();
        let base = sol.phi.phi;
        for dir in 0..6 {
            let x: Vec<f64> = x0
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let delta = 0.05 * (((i * 13 + dir * 7) % 11) as f64 / 11.0 - 0.5);
                    (v + delta).clamp(0.0, ub)
                })
                .collect();
            let perturbed = obj.exact_phi(&obj.allocation_from_x(&x)).phi;
            prop_assert!(
                perturbed >= base * (1.0 - 5e-3),
                "perturbation improved Phi: {base} -> {perturbed}"
            );
        }
    }
}

/// The same reverse-vs-forward gradient agreement on the named gallery
/// workloads (deterministic, not property-sampled): the paper's Fig. 1
/// example, complex matrix multiply, and Strassen.
#[test]
fn reverse_gradient_matches_forward_on_gallery_graphs() {
    use paradigm_mdg::{complex_matmul_mdg, example_fig1_mdg, strassen_mdg, KernelCostTable};
    let graphs = vec![
        example_fig1_mdg(),
        complex_matmul_mdg(64, &KernelCostTable::cm5()),
        strassen_mdg(128, &KernelCostTable::cm5()),
    ];
    for g in &graphs {
        let obj = MdgObjective::new(g, Machine::cm5(16));
        let n = g.node_count();
        let x: Vec<f64> = (0..n).map(|i| 0.5 + 0.3 * (i as f64 * 0.7).sin()).collect();
        for sharp in [Sharpness::Smooth(8.0), Sharpness::Smooth(256.0), Sharpness::Exact] {
            let (p_r, g_r) = obj.eval_grad(&x, sharp);
            let (p_f, g_f) = obj.eval_grad_forward(&x, sharp);
            assert!((p_r.phi - p_f.phi).abs() <= 1e-9 * p_f.phi.abs().max(1.0));
            for j in 0..n {
                assert!(
                    (g_r[j] - g_f[j]).abs() <= 1e-9 * (1.0 + g_f[j].abs()),
                    "{sharp:?} var {j}: reverse {} vs forward {}",
                    g_r[j],
                    g_f[j]
                );
            }
        }
    }
}
