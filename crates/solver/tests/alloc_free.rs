//! Asserts the descent loop's zero-allocation guarantee with a counting
//! global allocator.
//!
//! This file deliberately contains a single `#[test]` — the counter is
//! process-global, and a second test running on a sibling thread would
//! pollute the delta.

use paradigm_cost::Machine;
use paradigm_mdg::{random_layered_mdg, RandomMdgConfig};
use paradigm_solver::expr::Sharpness;
use paradigm_solver::{allocation_count, descend_stage, CountingAllocator, MdgObjective};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn descent_iterations_are_allocation_free_after_warmup() {
    let cfg =
        RandomMdgConfig { layers: 8, width_min: 8, width_max: 8, ..RandomMdgConfig::default() };
    let g = random_layered_mdg(&cfg, 42);
    let obj = MdgObjective::new(&g, Machine::cm5(64));
    let n = obj.num_vars();
    let ub = obj.x_upper();
    let mut ws = paradigm_solver::SolverWorkspace::new();

    // Warm-up: first iterations size every buffer in the workspace.
    let mut x = vec![ub / 2.0; n];
    let warm = descend_stage(&obj, &mut x, Sharpness::Smooth(8.0), 10, 0.0, &mut ws);
    assert!(warm > 0, "warm-up stage must iterate");

    // Measured run: restart from a fresh point (same dimensions) and let
    // the loop run; with warm buffers the only allocations permitted are
    // zero.
    let mut x = vec![ub / 3.0; n];
    for sharp in [Sharpness::Smooth(8.0), Sharpness::Smooth(64.0), Sharpness::Exact] {
        let before = allocation_count();
        let iters = descend_stage(&obj, &mut x, sharp, 50, 0.0, &mut ws);
        let delta = allocation_count() - before;
        assert!(iters > 0, "{sharp:?}: measured stage must iterate");
        assert_eq!(
            delta, 0,
            "{sharp:?}: descent performed {delta} heap allocations over {iters} iterations"
        );
    }
}
