//! K-wide (batched) execution of compiled expression tapes.
//!
//! The solver replays the *same* compiled tape at many points: multistart
//! descends K start points against one objective, and every ADMM block
//! probes several line-search candidates per iteration. This module adds
//! a structure-of-arrays execution mode for [`CompiledExpr`]: every tape
//! slot becomes a lane-major block of `k` values (`slot * k + lane`), and
//! the `Mono`/`Sum`/`Max` forward sweeps plus the reverse adjoint sweep
//! run as elementwise lane kernels.
//!
//! The kernels are hand-rolled explicit-width chunks (`[f64; LANES]`)
//! that the compiler auto-vectorizes — no external SIMD crates. Building
//! with `--no-default-features` swaps every chunked kernel for a plain
//! per-lane loop; both variants perform the identical per-lane IEEE
//! operation sequence, so the two builds are **bit-compatible** (SIMD
//! f64 lane arithmetic is IEEE-identical to scalar, and Rust never
//! contracts `a * b + c` into an FMA).
//!
//! Numerical contract versus the scalar tape: each lane's trajectory
//! depends only on its own slots (no cross-lane arithmetic), so results
//! are independent of batch composition and width. The batched smoothed
//! power kernel uses exponentiation by squaring rather than `powi`, so a
//! batched evaluation may differ from the scalar path in the last ulps;
//! the gradient property tests pin agreement at 1e-9 relative. The
//! exact-mode (`s = ∞`) paths at the objective level bypass these
//! kernels entirely and gather/scatter through the scalar sweep, keeping
//! exact `max` tie-breaking bit-identical to the tree walk.

use crate::compiled::{CompiledExpr, Op};
use crate::expr::Sharpness;

/// Chunk width of the explicit-width kernels. Wide enough to fill an
/// AVX-512 register; narrower ISAs simply split each chunk.
pub(crate) const LANES: usize = 8;

// ---------------------------------------------------------------------
// Lane kernels. Each has a chunked (`simd`) and a plain variant with the
// identical per-lane operation, so the builds stay bit-compatible.
// ---------------------------------------------------------------------

/// `dst[l] *= src[l]`.
#[inline]
pub(crate) fn lanes_mul(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(feature = "simd")]
    {
        let (dc, dt) = dst.as_chunks_mut::<LANES>();
        let (sc, st) = src.as_chunks::<LANES>();
        for (d, s) in dc.iter_mut().zip(sc) {
            for l in 0..LANES {
                d[l] *= s[l];
            }
        }
        for (d, s) in dt.iter_mut().zip(st) {
            *d *= s;
        }
    }
    #[cfg(not(feature = "simd"))]
    for (d, s) in dst.iter_mut().zip(src) {
        *d *= s;
    }
}

/// `dst[l] += src[l]`.
#[inline]
pub(crate) fn lanes_add(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(feature = "simd")]
    {
        let (dc, dt) = dst.as_chunks_mut::<LANES>();
        let (sc, st) = src.as_chunks::<LANES>();
        for (d, s) in dc.iter_mut().zip(sc) {
            for l in 0..LANES {
                d[l] += s[l];
            }
        }
        for (d, s) in dt.iter_mut().zip(st) {
            *d += s;
        }
    }
    #[cfg(not(feature = "simd"))]
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// `dst[l] += src[l] * c` (multiply then add; never an FMA).
#[inline]
pub(crate) fn lanes_add_scaled(dst: &mut [f64], src: &[f64], c: f64) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(feature = "simd")]
    {
        let (dc, dt) = dst.as_chunks_mut::<LANES>();
        let (sc, st) = src.as_chunks::<LANES>();
        for (d, s) in dc.iter_mut().zip(sc) {
            for l in 0..LANES {
                d[l] += s[l] * c;
            }
        }
        for (d, s) in dt.iter_mut().zip(st) {
            *d += s * c;
        }
    }
    #[cfg(not(feature = "simd"))]
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s * c;
    }
}

/// `dst[l] = a[l] * b[l]`.
#[inline]
pub(crate) fn lanes_set_mul(dst: &mut [f64], a: &[f64], b: &[f64]) {
    debug_assert!(dst.len() == a.len() && dst.len() == b.len());
    #[cfg(feature = "simd")]
    {
        let (dc, dt) = dst.as_chunks_mut::<LANES>();
        let (ac, at) = a.as_chunks::<LANES>();
        let (bc, bt) = b.as_chunks::<LANES>();
        for ((d, x), y) in dc.iter_mut().zip(ac).zip(bc) {
            for l in 0..LANES {
                d[l] = x[l] * y[l];
            }
        }
        for ((d, x), y) in dt.iter_mut().zip(at).zip(bt) {
            *d = x * y;
        }
    }
    #[cfg(not(feature = "simd"))]
    for ((d, x), y) in dst.iter_mut().zip(a).zip(b) {
        *d = x * y;
    }
}

/// `dst[l] = a[l] / b[l]`.
#[inline]
pub(crate) fn lanes_set_div(dst: &mut [f64], a: &[f64], b: &[f64]) {
    debug_assert!(dst.len() == a.len() && dst.len() == b.len());
    #[cfg(feature = "simd")]
    {
        let (dc, dt) = dst.as_chunks_mut::<LANES>();
        let (ac, at) = a.as_chunks::<LANES>();
        let (bc, bt) = b.as_chunks::<LANES>();
        for ((d, x), y) in dc.iter_mut().zip(ac).zip(bc) {
            for l in 0..LANES {
                d[l] = x[l] / y[l];
            }
        }
        for ((d, x), y) in dt.iter_mut().zip(at).zip(bt) {
            *d = x / y;
        }
    }
    #[cfg(not(feature = "simd"))]
    for ((d, x), y) in dst.iter_mut().zip(a).zip(b) {
        *d = x / y;
    }
}

/// `dst[l] = max(dst[l], src[l])`.
#[inline]
pub(crate) fn lanes_max(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(feature = "simd")]
    {
        let (dc, dt) = dst.as_chunks_mut::<LANES>();
        let (sc, st) = src.as_chunks::<LANES>();
        for (d, s) in dc.iter_mut().zip(sc) {
            for l in 0..LANES {
                d[l] = d[l].max(s[l]);
            }
        }
        for (d, s) in dt.iter_mut().zip(st) {
            *d = d.max(*s);
        }
    }
    #[cfg(not(feature = "simd"))]
    for (d, s) in dst.iter_mut().zip(src) {
        *d = d.max(*s);
    }
}

/// `dst[l] *= dst[l]` (elementwise square, the inner step of the
/// power-of-two power/root kernels).
#[inline]
fn lanes_square(dst: &mut [f64]) {
    #[cfg(feature = "simd")]
    {
        let (dc, dt) = dst.as_chunks_mut::<LANES>();
        for d in dc.iter_mut() {
            for v in d.iter_mut() {
                *v = *v * *v;
            }
        }
        for d in dt.iter_mut() {
            *d = *d * *d;
        }
    }
    #[cfg(not(feature = "simd"))]
    for d in dst.iter_mut() {
        *d = *d * *d;
    }
}

/// `dst[l] = sqrt(dst[l])`.
#[inline]
fn lanes_sqrt(dst: &mut [f64]) {
    #[cfg(feature = "simd")]
    {
        let (dc, dt) = dst.as_chunks_mut::<LANES>();
        for d in dc.iter_mut() {
            for v in d.iter_mut() {
                *v = v.sqrt();
            }
        }
        for d in dt.iter_mut() {
            *d = d.sqrt();
        }
    }
    #[cfg(not(feature = "simd"))]
    for d in dst.iter_mut() {
        *d = d.sqrt();
    }
}

/// `dst[l] *= c`.
#[inline]
pub(crate) fn lanes_scale(dst: &mut [f64], c: f64) {
    #[cfg(feature = "simd")]
    {
        let (dc, dt) = dst.as_chunks_mut::<LANES>();
        for d in dc.iter_mut() {
            for v in d.iter_mut() {
                *v *= c;
            }
        }
        for d in dt.iter_mut() {
            *d *= c;
        }
    }
    #[cfg(not(feature = "simd"))]
    for d in dst.iter_mut() {
        *d *= c;
    }
}

/// `dst[l] = src[l] * c`.
#[inline]
pub(crate) fn lanes_set_scale(dst: &mut [f64], src: &[f64], c: f64) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(feature = "simd")]
    {
        let (dc, dt) = dst.as_chunks_mut::<LANES>();
        let (sc, st) = src.as_chunks::<LANES>();
        for (d, s) in dc.iter_mut().zip(sc) {
            for l in 0..LANES {
                d[l] = s[l] * c;
            }
        }
        for (d, s) in dt.iter_mut().zip(st) {
            *d = s * c;
        }
    }
    #[cfg(not(feature = "simd"))]
    for (d, s) in dst.iter_mut().zip(src) {
        *d = s * c;
    }
}

/// `dst[l] *= base[l].powf(a)` — the exotic-exponent monomial fallback;
/// `powf` is a libm call either way, so both builds share one loop.
#[inline]
fn lanes_mul_powf(dst: &mut [f64], base: &[f64], a: f64) {
    for (d, b) in dst.iter_mut().zip(base) {
        *d *= b.powf(a);
    }
}

/// `b^n` for integer `n >= 1` by squaring. Unlike `powi`, the exact
/// multiply sequence is fixed and elementwise, so the batched power
/// kernel vectorizes; it may differ from `powi` in the last ulps.
#[inline]
fn pow_uint(mut b: f64, mut n: u32) -> f64 {
    let mut r = 1.0;
    loop {
        if n & 1 == 1 {
            r *= b;
        }
        n >>= 1;
        if n == 0 {
            break;
        }
        b *= b;
    }
    r
}

/// In-place `out[l] = out[l]^s`, mirroring the scalar `pow_sharp` tiers:
/// power-of-two integer sharpness (the whole annealing schedule) runs as
/// repeated elementwise squaring, other small integers via
/// exponentiation by squaring, and everything else through `powf`.
#[inline]
pub(crate) fn lanes_pow_sharp(out: &mut [f64], s: f64) {
    if s.fract() == 0.0 && (1.0..=512.0).contains(&s) {
        let n = s as u32;
        if n.is_power_of_two() {
            let mut m = n;
            while m > 1 {
                lanes_square(out);
                m >>= 1;
            }
        } else {
            for o in out.iter_mut() {
                *o = pow_uint(*o, n);
            }
        }
    } else {
        for o in out.iter_mut() {
            *o = o.powf(s);
        }
    }
}

/// In-place `out[l] = out[l]^(1/s)`: repeated hardware `sqrt` when `s`
/// is a power of two, `powf` otherwise (same tiers as `root_sharp`).
#[inline]
pub(crate) fn lanes_root_sharp(out: &mut [f64], s: f64) {
    if s.fract() == 0.0 && (2.0..=512.0).contains(&s) && (s as u32).is_power_of_two() {
        let mut m = s as u32;
        while m > 1 {
            lanes_sqrt(out);
            m >>= 1;
        }
    } else {
        let inv = 1.0 / s;
        for o in out.iter_mut() {
            *o = o.powf(inv);
        }
    }
}

// ---------------------------------------------------------------------
// Batched variable cache.
// ---------------------------------------------------------------------

/// Lane-major batched [`crate::compiled::VarCache`]: `e[j*k + l]` is
/// `exp(x_j)` for lane `l`. Filled once per batched objective call; the
/// reciprocal and square-root sweeps vectorize across `j*k` entries.
#[derive(Debug, Default)]
pub struct BatchVarCache {
    /// Current lane count.
    pub(crate) k: usize,
    /// `exp(x_j)` per variable per lane.
    pub(crate) e: Vec<f64>,
    /// `1 / exp(x_j)`.
    pub(crate) inv: Vec<f64>,
    /// `sqrt(exp(x_j))`; filled only when `halves` is requested.
    pub(crate) sq: Vec<f64>,
    /// `1 / sqrt(exp(x_j))`.
    pub(crate) isq: Vec<f64>,
}

impl BatchVarCache {
    /// Fill for the lane-major point block `xs` (`n * k` entries,
    /// `xs[j*k + l]`). Capacity is retained across calls.
    pub(crate) fn fill(&mut self, xs: &[f64], n: usize, k: usize, halves: bool) {
        debug_assert_eq!(xs.len(), n * k);
        self.k = k;
        let len = n * k;
        self.e.clear();
        self.e.resize(len, 0.0);
        self.inv.clear();
        self.inv.resize(len, 0.0);
        for (ei, &x) in self.e.iter_mut().zip(xs) {
            *ei = x.exp();
        }
        lanes_set_recip(&mut self.inv, &self.e);
        if halves {
            self.sq.clear();
            self.sq.resize(len, 0.0);
            self.isq.clear();
            self.isq.resize(len, 0.0);
            self.sq.copy_from_slice(&self.e);
            lanes_sqrt(&mut self.sq);
            lanes_set_recip(&mut self.isq, &self.sq);
        }
    }
}

/// `dst[l] = 1 / src[l]`.
#[inline]
fn lanes_set_recip(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(feature = "simd")]
    {
        let (dc, dt) = dst.as_chunks_mut::<LANES>();
        let (sc, st) = src.as_chunks::<LANES>();
        for (d, s) in dc.iter_mut().zip(sc) {
            for l in 0..LANES {
                d[l] = 1.0 / s[l];
            }
        }
        for (d, s) in dt.iter_mut().zip(st) {
            *d = 1.0 / s;
        }
    }
    #[cfg(not(feature = "simd"))]
    for (d, s) in dst.iter_mut().zip(src) {
        *d = 1.0 / s;
    }
}

// ---------------------------------------------------------------------
// Batched smoothed max.
// ---------------------------------------------------------------------

/// K-wide [`crate::compiled::smax_weights_fast`]: `cands` holds `kk`
/// lane-major candidate slots; the per-lane smax value is written into
/// `cands[..k]` and the weights into `wts` (`kk * k`). `scratch` must
/// hold `3 * k` entries (contents ignored on entry).
///
/// Candidates are nonnegative (posynomial values), so the only guard the
/// smooth path needs is a unit divisor for all-zero lanes: those lanes
/// flow through the normal sequence and come out with value `+0.0` and
/// all-zero weights, exactly like the scalar kernel's early return.
pub(crate) fn smax_batch(
    k: usize,
    kk: usize,
    sharp: Sharpness,
    cands: &mut [f64],
    wts: &mut [f64],
    scratch: &mut [f64],
) {
    debug_assert_eq!(cands.len(), kk * k);
    debug_assert_eq!(wts.len(), kk * k);
    debug_assert!(scratch.len() >= 3 * k);
    debug_assert!(kk > 0);
    let (m, rest) = scratch.split_at_mut(k);
    let (md, sum) = rest.split_at_mut(k);
    m.fill(0.0);
    for t in 0..kk {
        lanes_max(m, &cands[t * k..(t + 1) * k]);
    }
    match sharp {
        Sharpness::Exact => {
            wts.fill(0.0);
            for l in 0..k {
                for t in 0..kk {
                    if cands[t * k + l] == m[l] {
                        wts[t * k + l] = 1.0;
                        break;
                    }
                }
            }
            cands[..k].copy_from_slice(m);
        }
        Sharpness::Smooth(s) => {
            sum.fill(0.0);
            for l in 0..k {
                md[l] = if m[l] == 0.0 { 1.0 } else { m[l] };
            }
            for t in 0..kk {
                let w = &mut wts[t * k..(t + 1) * k];
                lanes_set_div(w, &cands[t * k..(t + 1) * k], md);
                lanes_pow_sharp(w, s);
                lanes_add(sum, w);
            }
            // val = m * sum^(1/s); root into md (no longer needed) so
            // the raw power sum survives for the weight recovery.
            md.copy_from_slice(sum);
            lanes_root_sharp(md, s);
            lanes_mul(m, md); // m now holds the smax value per lane
            for t in 0..kk {
                for l in 0..k {
                    let w = wts[t * k + l];
                    wts[t * k + l] =
                        if w == 0.0 { 0.0 } else { (w / sum[l]) * (m[l] / cands[t * k + l]) };
                }
            }
            cands[..k].copy_from_slice(m);
        }
    }
}

/// Value-only [`smax_batch`] (line-search probes record no weights).
/// `scratch` must hold `4 * k` entries.
pub(crate) fn smax_batch_val(
    k: usize,
    kk: usize,
    sharp: Sharpness,
    cands: &mut [f64],
    scratch: &mut [f64],
) {
    debug_assert_eq!(cands.len(), kk * k);
    debug_assert!(scratch.len() >= 4 * k);
    debug_assert!(kk > 0);
    let (m, rest) = scratch.split_at_mut(k);
    let (md, rest) = rest.split_at_mut(k);
    let (sum, tmp) = rest.split_at_mut(k);
    let tmp = &mut tmp[..k];
    m.fill(0.0);
    for t in 0..kk {
        lanes_max(m, &cands[t * k..(t + 1) * k]);
    }
    match sharp {
        Sharpness::Exact => cands[..k].copy_from_slice(m),
        Sharpness::Smooth(s) => {
            sum.fill(0.0);
            for l in 0..k {
                md[l] = if m[l] == 0.0 { 1.0 } else { m[l] };
            }
            for t in 0..kk {
                lanes_set_div(tmp, &cands[t * k..(t + 1) * k], md);
                lanes_pow_sharp(tmp, s);
                lanes_add(sum, tmp);
            }
            lanes_root_sharp(sum, s);
            lanes_mul(m, sum);
            cands[..k].copy_from_slice(m);
        }
    }
}

// ---------------------------------------------------------------------
// Batched tape execution on CompiledExpr.
// ---------------------------------------------------------------------

impl CompiledExpr {
    /// K-wide forward evaluation recording a lane-major tape. The k-wide
    /// result slot is **left on top of `stack`** for the caller (the
    /// objective's DAG recurrence adds the predecessor finish times into
    /// it in place); the caller truncates.
    pub(crate) fn eval_tape_batch(
        &self,
        k: usize,
        sharp: Sharpness,
        stack: &mut Vec<f64>,
        vals: &mut [f64],
        wts: &mut [f64],
        cache: &BatchVarCache,
    ) {
        debug_assert_eq!(vals.len(), self.ops.len() * k);
        debug_assert_eq!(wts.len(), self.wts_len * k);
        for (i, op) in self.ops.iter().enumerate() {
            self.exec_forward_batch(*op, k, sharp, stack, Some(&mut *wts), cache);
            let top = stack.len() - k;
            vals[i * k..(i + 1) * k].copy_from_slice(&stack[top..]);
        }
        if self.ops.is_empty() {
            let b = stack.len();
            stack.resize(b + k, 0.0);
        }
    }

    /// K-wide value-only evaluation (no tape). The k-wide result slot is
    /// left on top of `stack` for the caller.
    pub(crate) fn eval_batch(
        &self,
        k: usize,
        sharp: Sharpness,
        stack: &mut Vec<f64>,
        cache: &BatchVarCache,
    ) {
        for op in &self.ops {
            self.exec_forward_batch(*op, k, sharp, stack, None, cache);
        }
        if self.ops.is_empty() {
            let b = stack.len();
            stack.resize(b + k, 0.0);
        }
    }

    /// One op of the batched forward sweep. With `wts` the `Max` arm
    /// records weights (tape mode); without, it runs the value-only
    /// kernel.
    #[inline]
    fn exec_forward_batch(
        &self,
        op: Op,
        k: usize,
        sharp: Sharpness,
        stack: &mut Vec<f64>,
        wts: Option<&mut [f64]>,
        cache: &BatchVarCache,
    ) {
        match op {
            Op::Mono { coeff, lo, hi } => {
                let b = stack.len();
                stack.resize(b + k, coeff);
                if coeff != 0.0 {
                    let out = &mut stack[b..];
                    for &(j, a) in &self.terms[lo as usize..hi as usize] {
                        let j = j as usize * k;
                        if a == 1.0 {
                            lanes_mul(out, &cache.e[j..j + k]);
                        } else if a == -1.0 {
                            lanes_mul(out, &cache.inv[j..j + k]);
                        } else if a == 0.5 {
                            lanes_mul(out, &cache.sq[j..j + k]);
                        } else if a == -0.5 {
                            lanes_mul(out, &cache.isq[j..j + k]);
                        } else {
                            lanes_mul_powf(out, &cache.e[j..j + k], a);
                        }
                    }
                }
            }
            Op::Sum { k: kk } => {
                let kk = kk as usize;
                if kk == 0 {
                    let b = stack.len();
                    stack.resize(b + k, 0.0);
                } else {
                    let b = stack.len() - kk * k;
                    let (acc, rest) = stack[b..].split_at_mut(k);
                    for t in 1..kk {
                        lanes_add(acc, &rest[(t - 1) * k..t * k]);
                    }
                    stack.truncate(b + k);
                }
            }
            Op::Max { k: kk, w0 } => {
                let kk = kk as usize;
                let w0 = w0 as usize;
                if kk == 0 {
                    let b = stack.len();
                    stack.resize(b + k, 0.0);
                } else {
                    let b = stack.len() - kk * k;
                    match wts {
                        Some(wts) => {
                            let sl = stack.len();
                            stack.resize(sl + 3 * k, 0.0);
                            let (cands, scr) = stack[b..].split_at_mut(kk * k);
                            smax_batch(k, kk, sharp, cands, &mut wts[w0 * k..(w0 + kk) * k], scr);
                        }
                        None => {
                            let sl = stack.len();
                            stack.resize(sl + 4 * k, 0.0);
                            let (cands, scr) = stack[b..].split_at_mut(kk * k);
                            smax_batch_val(k, kk, sharp, cands, scr);
                        }
                    }
                    stack.truncate(b + k);
                }
            }
        }
    }

    /// K-wide reverse sweep over a lane-major tape recorded by
    /// [`CompiledExpr::eval_tape_batch`]: accumulates
    /// `seeds[l] * ∂value_l/∂x` into the lane-major `grad`
    /// (`n_vars * k`). `adj` is a k-wide-slot adjoint stack (restored to
    /// its entry length). Lanes with a zero seed contribute exact zeros
    /// everywhere (adjoints and values are nonnegative, so the
    /// unconditional accumulates only ever add `+0.0` for them).
    pub(crate) fn backprop_batch(
        &self,
        k: usize,
        seeds: &[f64],
        vals: &[f64],
        wts: &[f64],
        grad: &mut [f64],
        adj: &mut Vec<f64>,
    ) {
        debug_assert_eq!(seeds.len(), k);
        debug_assert_eq!(vals.len(), self.ops.len() * k);
        if self.ops.is_empty() || seeds.iter().all(|&s| s == 0.0) {
            return;
        }
        let base = adj.len();
        adj.extend_from_slice(seeds);
        for (i, op) in self.ops.iter().enumerate().rev() {
            match *op {
                Op::Mono { coeff: _, lo, hi } => {
                    let b = adj.len() - k;
                    lanes_mul(&mut adj[b..], &vals[i * k..(i + 1) * k]);
                    let av = &adj[b..];
                    for &(j, e) in &self.terms[lo as usize..hi as usize] {
                        let j = j as usize * k;
                        lanes_add_scaled(&mut grad[j..j + k], av, e);
                    }
                    adj.truncate(b);
                }
                Op::Sum { k: kk } => {
                    let kk = kk as usize;
                    let b = adj.len() - k;
                    if kk == 0 {
                        adj.truncate(b);
                    } else {
                        for _ in 1..kk {
                            adj.extend_from_within(b..b + k);
                        }
                    }
                }
                Op::Max { k: kk, w0 } => {
                    let kk = kk as usize;
                    let w0 = w0 as usize;
                    let b = adj.len() - k;
                    if kk == 0 {
                        adj.truncate(b);
                    } else {
                        adj.resize(b + kk * k, 0.0);
                        let (a0, rest) = adj[b..].split_at_mut(k);
                        for t in 1..kk {
                            lanes_set_mul(
                                &mut rest[(t - 1) * k..t * k],
                                a0,
                                &wts[(w0 + t) * k..(w0 + t + 1) * k],
                            );
                        }
                        lanes_mul(a0, &wts[w0 * k..(w0 + 1) * k]);
                    }
                }
            }
        }
        debug_assert_eq!(adj.len(), base);
    }

    /// K seeds over one **scalar** tape: replays the tape recorded by a
    /// scalar [`CompiledExpr::eval_tape`] once, pushing `k` adjoint
    /// lanes through it, and accumulates into the lane-major `grad`
    /// (`n_vars * k`). Each lane performs the exact per-step multiply
    /// sequence of a scalar [`CompiledExpr::backprop`] call with that
    /// lane's seed, so the result is **bit-identical** to `k` sequential
    /// scalar backprops (the skip-if-zero guards it drops only ever
    /// suppress `+0.0` accumulations).
    pub(crate) fn backprop_multi(
        &self,
        k: usize,
        seeds: &[f64],
        vals: &[f64],
        wts: &[f64],
        grad: &mut [f64],
        adj: &mut Vec<f64>,
    ) {
        debug_assert_eq!(seeds.len(), k);
        debug_assert_eq!(vals.len(), self.ops.len());
        if self.ops.is_empty() || seeds.iter().all(|&s| s == 0.0) {
            return;
        }
        let base = adj.len();
        adj.extend_from_slice(seeds);
        for (i, op) in self.ops.iter().enumerate().rev() {
            match *op {
                Op::Mono { coeff: _, lo, hi } => {
                    let b = adj.len() - k;
                    lanes_scale(&mut adj[b..], vals[i]);
                    let av = &adj[b..];
                    for &(j, e) in &self.terms[lo as usize..hi as usize] {
                        let j = j as usize * k;
                        lanes_add_scaled(&mut grad[j..j + k], av, e);
                    }
                    adj.truncate(b);
                }
                Op::Sum { k: kk } => {
                    let kk = kk as usize;
                    let b = adj.len() - k;
                    if kk == 0 {
                        adj.truncate(b);
                    } else {
                        for _ in 1..kk {
                            adj.extend_from_within(b..b + k);
                        }
                    }
                }
                Op::Max { k: kk, w0 } => {
                    let kk = kk as usize;
                    let w0 = w0 as usize;
                    let b = adj.len() - k;
                    if kk == 0 {
                        adj.truncate(b);
                    } else {
                        adj.resize(b + kk * k, 0.0);
                        let (a0, rest) = adj[b..].split_at_mut(k);
                        for t in 1..kk {
                            lanes_set_scale(&mut rest[(t - 1) * k..t * k], a0, wts[w0 + t]);
                        }
                        lanes_scale(a0, wts[w0]);
                    }
                }
            }
        }
        debug_assert_eq!(adj.len(), base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::{smax_weights_fast, VarCache};
    use crate::expr::{Expr, Monomial};

    fn sample_expr() -> Expr {
        Expr::sum(vec![
            Expr::max(vec![
                Expr::Mono(Monomial::single(2.0, 0, 1.0)),
                Expr::sum(vec![
                    Expr::Mono(Monomial::single(1.0, 1, 1.0)),
                    Expr::max(vec![
                        Expr::Mono(Monomial::pair(0.5, 0, 1.0, 1, -1.0)),
                        Expr::constant(0.25),
                    ]),
                ]),
            ]),
            Expr::Mono(Monomial::pair(1.0, 0, 1.0, 1, -1.0)),
            Expr::constant(0.3),
        ])
    }

    fn lane_points(k: usize) -> Vec<[f64; 2]> {
        (0..k).map(|l| [0.1 * l as f64 - 0.3, 0.7 - 0.2 * l as f64]).collect()
    }

    #[test]
    fn batched_eval_matches_scalar_per_lane() {
        let e = sample_expr();
        let c = CompiledExpr::compile(&e);
        let mut cache = VarCache::default();
        for &k in &[1usize, 2, 3, 4, 8, 17] {
            let pts = lane_points(k);
            let mut xs = vec![0.0; 2 * k];
            for (l, p) in pts.iter().enumerate() {
                xs[l] = p[0];
                xs[k + l] = p[1];
            }
            let mut bc = BatchVarCache::default();
            bc.fill(&xs, 2, k, true);
            for s in [4.0, 64.0, 256.0, 3.0, 3.7] {
                let sharp = Sharpness::Smooth(s);
                let mut stack = Vec::new();
                let mut vals = vec![0.0; c.vals_len() * k];
                let mut wts = vec![0.0; c.wts_len() * k];
                c.eval_tape_batch(k, sharp, &mut stack, &mut vals, &mut wts, &bc);
                let top = stack.len() - k;
                let batched: Vec<f64> = stack[top..].to_vec();
                stack.truncate(top);
                let mut stack_v = Vec::new();
                c.eval_batch(k, sharp, &mut stack_v, &bc);
                let vtop = stack_v.len() - k;
                for l in 0..k {
                    assert_eq!(
                        batched[l].to_bits(),
                        stack_v[vtop + l].to_bits(),
                        "tape vs value-only batched eval must agree bitwise"
                    );
                    let mut sstack = Vec::new();
                    cache.fill(&pts[l], true);
                    let v0 = c.eval(&pts[l], sharp, &mut sstack, Some(&cache));
                    assert!(
                        (v0 - batched[l]).abs() <= 1e-12 * v0.abs().max(1.0),
                        "k={k} lane={l} s={s}: scalar {v0} vs batched {}",
                        batched[l]
                    );
                }
            }
        }
    }

    #[test]
    fn batched_backprop_matches_scalar_per_lane() {
        let e = sample_expr();
        let c = CompiledExpr::compile(&e);
        let mut cache = VarCache::default();
        for &k in &[1usize, 2, 4, 8, 17] {
            let pts = lane_points(k);
            let mut xs = vec![0.0; 2 * k];
            for (l, p) in pts.iter().enumerate() {
                xs[l] = p[0];
                xs[k + l] = p[1];
            }
            let mut bc = BatchVarCache::default();
            bc.fill(&xs, 2, k, true);
            let sharp = Sharpness::Smooth(16.0);
            let mut stack = Vec::new();
            let mut vals = vec![0.0; c.vals_len() * k];
            let mut wts = vec![0.0; c.wts_len() * k];
            c.eval_tape_batch(k, sharp, &mut stack, &mut vals, &mut wts, &bc);
            stack.truncate(stack.len() - k);
            let seeds: Vec<f64> = (0..k).map(|l| 1.0 + 0.25 * l as f64).collect();
            let mut grad = vec![0.0; 2 * k];
            let mut adj = Vec::new();
            c.backprop_batch(k, &seeds, &vals, &wts, &mut grad, &mut adj);
            assert!(adj.is_empty() && stack.is_empty());
            for l in 0..k {
                let mut svals = vec![0.0; c.vals_len()];
                let mut swts = vec![0.0; c.wts_len()];
                let mut sstack = Vec::new();
                cache.fill(&pts[l], true);
                let _ =
                    c.eval_tape(&pts[l], sharp, &mut sstack, &mut svals, &mut swts, Some(&cache));
                let mut g = vec![0.0; 2];
                let mut sadj = Vec::new();
                c.backprop(seeds[l], &svals, &swts, &mut g, &mut sadj);
                for j in 0..2 {
                    assert!(
                        (g[j] - grad[j * k + l]).abs() <= 1e-9 * (1.0 + g[j].abs()),
                        "k={k} lane={l} var={j}: scalar {} vs batched {}",
                        g[j],
                        grad[j * k + l]
                    );
                }
            }
        }
    }

    #[test]
    fn backprop_multi_is_bitwise_identical_to_sequential_backprops() {
        let e = sample_expr();
        let c = CompiledExpr::compile(&e);
        let x = [0.4, -0.2];
        for sharp in [Sharpness::Exact, Sharpness::Smooth(64.0)] {
            let mut vals = vec![0.0; c.vals_len()];
            let mut wts = vec![0.0; c.wts_len()];
            let mut stack = Vec::new();
            let _ = c.eval_tape(&x, sharp, &mut stack, &mut vals, &mut wts, None);
            let seeds = [0.0, 1.0, 1.7];
            let k = seeds.len();
            let mut gm = vec![0.0; 2 * k];
            let mut adj = Vec::new();
            c.backprop_multi(k, &seeds, &vals, &wts, &mut gm, &mut adj);
            for (l, &seed) in seeds.iter().enumerate() {
                let mut g = vec![0.0; 2];
                let mut sadj = Vec::new();
                c.backprop(seed, &vals, &wts, &mut g, &mut sadj);
                for j in 0..2 {
                    assert_eq!(
                        g[j].to_bits(),
                        gm[j * k + l].to_bits(),
                        "{sharp:?} lane {l} var {j}: multi must be bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_smax_matches_scalar_kernel() {
        for sharp in [Sharpness::Exact, Sharpness::Smooth(4.0), Sharpness::Smooth(256.0)] {
            let rows: Vec<Vec<f64>> = vec![
                vec![1.0, 2.0, 3.0, 0.5],
                vec![0.0, 0.0, 0.0, 0.0],
                vec![2.0, 2.0, 1e-8, 100.0],
            ];
            let (k, kk) = (rows.len(), rows[0].len());
            // lane-major candidates: lane l = row l.
            let mut cands = vec![0.0; kk * k];
            for (l, row) in rows.iter().enumerate() {
                for (t, &v) in row.iter().enumerate() {
                    cands[t * k + l] = v;
                }
            }
            let mut wts = vec![0.0; kk * k];
            let mut scratch = vec![0.0; 3 * k];
            smax_batch(k, kk, sharp, &mut cands, &mut wts, &mut scratch);
            for (l, row) in rows.iter().enumerate() {
                let mut sw = vec![0.0; kk];
                let v0 = smax_weights_fast(row, sharp, &mut sw);
                let v1 = cands[l];
                assert!(
                    (v0 - v1).abs() <= 1e-12 * v0.abs().max(1.0),
                    "{sharp:?} lane {l}: {v0} vs {v1}"
                );
                for t in 0..kk {
                    assert!(
                        (sw[t] - wts[t * k + l]).abs() <= 1e-9 * (1.0 + sw[t].abs()),
                        "{sharp:?} lane {l} cand {t}: {} vs {}",
                        sw[t],
                        wts[t * k + l]
                    );
                }
            }
        }
    }

    #[test]
    fn pow_kernels_match_scalar_tiers() {
        let base = [0.0, 1e-9, 0.3, 0.9999, 1.0];
        for s in [1.0, 3.0, 4.0, 64.0, 256.0, 3.7] {
            let mut v = base.to_vec();
            lanes_pow_sharp(&mut v, s);
            for (l, &b) in base.iter().enumerate() {
                let r = b.powf(s);
                assert!(
                    (v[l] - r).abs() <= 1e-9 * (1.0 + r.abs()),
                    "pow s={s} b={b}: {} vs {r}",
                    v[l]
                );
            }
        }
        for s in [2.0, 64.0, 256.0, 3.7] {
            let mut v = [0.0, 0.5, 1.0, 2.5];
            let orig = v;
            lanes_root_sharp(&mut v, s);
            for (l, &b) in orig.iter().enumerate() {
                let r = b.powf(1.0 / s);
                assert!(
                    (v[l] - r).abs() <= 1e-9 * (1.0 + r.abs()),
                    "root s={s} b={b}: {} vs {r}",
                    v[l]
                );
            }
        }
    }

    #[test]
    fn zero_expression_batched_paths_are_safe() {
        let c = CompiledExpr::compile(&Expr::zero());
        let k = 4;
        let bc = BatchVarCache::default();
        let mut stack = Vec::new();
        let mut vals = vec![0.0; c.vals_len() * k];
        let mut wts = vec![0.0; c.wts_len() * k];
        c.eval_tape_batch(k, Sharpness::Smooth(8.0), &mut stack, &mut vals, &mut wts, &bc);
        let top = stack.len() - k;
        assert!(stack[top..].iter().all(|&v| v == 0.0));
        stack.truncate(top);
        let mut grad: Vec<f64> = Vec::new();
        let mut adj = Vec::new();
        c.backprop_batch(k, &[1.0; 4], &vals, &wts, &mut grad, &mut adj);
    }
}
