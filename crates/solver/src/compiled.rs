//! Flat, tape-recording form of [`Expr`] for the solver's hot paths.
//!
//! The tree walk in [`Expr::eval_grad_ws`] is correct but pays twice on
//! every gradient: pointer-chasing through boxed enum nodes, and — worse
//! — *re-evaluating* each subexpression on the way back down to recover
//! `max` weights and monomial values that the forward pass already knew.
//! A [`CompiledExpr`] removes both costs:
//!
//! * the expression is flattened once into a post-order array of ops over
//!   one contiguous term table (cache-friendly, no recursion);
//! * `eval_tape` records every op's value and every `max`'s weights into
//!   caller-owned slices as it evaluates;
//! * `backprop` then replays the ops **in reverse** using only the tape —
//!   pure sparse multiply-adds, no `exp`, no `powf`, no re-evaluation.
//!
//! Together with the smoothed-max kernel below (integer sharpness via
//! repeated squaring instead of `powf`, weights recovered algebraically
//! from the already-computed powers), this is what turns the reverse-mode
//! sweep's `O(E + Σ posynomial terms)` bound into a wall-clock win.
//!
//! Numerical contract: at [`Sharpness::Exact`] the compiled evaluation is
//! **bit-identical** to the tree walk (same summation order, same
//! first-argmax tie-breaking), so exact-max tie-breaking decisions never
//! diverge between the two. At `Smooth(s)` the faster power kernel may
//! differ from `powf` in the last ulps; the gradient property tests pin
//! the agreement at 1e-9 relative.

use crate::expr::{Expr, Sharpness};

/// Per-evaluation caches of `exp(x_j)` and friends, filled once per
/// objective call and shared by every compiled expression in it.
///
/// The objective's monomials only ever use exponents in
/// `{±1, ±0.5}` (processor ratios and the 2D mesh's square-root terms),
/// so with these caches a monomial value is a handful of multiplies
/// instead of a dot product plus `exp` — the dominant cost of the
/// smoothed forward sweep. The caches are *not* used at
/// [`Sharpness::Exact`]: there the `exp(Σ a_j x_j)` path is kept so the
/// compiled evaluation stays bit-identical to the tree walk and exact
/// `max` tie-breaking never diverges.
#[derive(Debug, Default)]
pub struct VarCache {
    /// `exp(x_j)` per variable. Filled on every objective call (even at
    /// [`Sharpness::Exact`], where the monomials don't consume it): the
    /// objective's fused `A_p = (1/p) Σ T_i e^{x_i}` accumulation reads
    /// it directly.
    pub(crate) e: Vec<f64>,
    /// `1 / exp(x_j)`.
    pub(crate) inv: Vec<f64>,
    /// `sqrt(exp(x_j))`; filled only when `halves` is requested.
    pub(crate) sq: Vec<f64>,
    /// `1 / sqrt(exp(x_j))`; same lifecycle as `sq`.
    pub(crate) isq: Vec<f64>,
}

impl VarCache {
    /// Fill the caches for the point `x`. `halves` asks for the
    /// square-root caches too (only needed when some monomial carries a
    /// `±0.5` exponent). Capacity is retained across calls.
    pub fn fill(&mut self, x: &[f64], halves: bool) {
        let n = x.len();
        self.e.resize(n, 0.0);
        self.inv.resize(n, 0.0);
        for (j, &xj) in x.iter().enumerate() {
            let e = xj.exp();
            self.e[j] = e;
            self.inv[j] = 1.0 / e;
        }
        if halves {
            self.sq.resize(n, 0.0);
            self.isq.resize(n, 0.0);
            for j in 0..n {
                let s = self.e[j].sqrt();
                self.sq[j] = s;
                self.isq[j] = 1.0 / s;
            }
        }
    }
}

/// One monomial value: the cached-factor product when a [`VarCache`] is
/// supplied, the reference `coeff · exp(Σ a_j x_j)` otherwise.
#[inline]
fn mono_val(terms: &[(u32, f64)], coeff: f64, x: &[f64], cache: Option<&VarCache>) -> f64 {
    if coeff == 0.0 {
        return 0.0;
    }
    match cache {
        Some(c) => {
            let mut v = coeff;
            for &(j, a) in terms {
                let j = j as usize;
                v *= if a == 1.0 {
                    c.e[j]
                } else if a == -1.0 {
                    c.inv[j]
                } else if a == 0.5 {
                    c.sq[j]
                } else if a == -0.5 {
                    c.isq[j]
                } else {
                    c.e[j].powf(a)
                };
            }
            v
        }
        None => {
            let e: f64 = terms.iter().map(|&(j, a)| a * x[j as usize]).sum();
            coeff * e.exp()
        }
    }
}

/// One post-order instruction. `Mono` pushes a value; `Sum`/`Max` pop
/// their `k` children and push the reduction.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    /// `coeff * exp(Σ a_j x_j)` over `terms[lo..hi]`.
    Mono { coeff: f64, lo: u32, hi: u32 },
    /// Sum of the top `k` stack values, in push order.
    Sum { k: u32 },
    /// Smoothed max of the top `k` stack values; weights are recorded at
    /// `wts[w0 .. w0 + k]`.
    Max { k: u32, w0: u32 },
}

/// A compiled generalized posynomial: post-order ops over a flat term
/// table. Build once per objective with [`CompiledExpr::compile`], then
/// evaluate via [`CompiledExpr::eval_tape`] / [`CompiledExpr::backprop`]
/// against caller-owned tape slices (see
/// [`crate::workspace::EvalScratch`]).
#[derive(Debug, Clone)]
pub struct CompiledExpr {
    pub(crate) ops: Vec<Op>,
    /// `(variable index, exponent)` pairs of every monomial, contiguous.
    pub(crate) terms: Vec<(u32, f64)>,
    /// Total `max` weight slots (Σ k over `Max` ops).
    pub(crate) wts_len: usize,
}

impl CompiledExpr {
    /// Flatten an expression tree. Child order is preserved, so at
    /// [`Sharpness::Exact`] evaluation is bit-identical to [`Expr::eval`].
    pub fn compile(e: &Expr) -> CompiledExpr {
        let mut c = CompiledExpr { ops: Vec::new(), terms: Vec::new(), wts_len: 0 };
        c.emit(e);
        c
    }

    fn emit(&mut self, e: &Expr) {
        match e {
            Expr::Mono(m) => {
                let lo = self.terms.len() as u32;
                self.terms.extend(m.exps.iter().map(|&(j, a)| (j as u32, a)));
                let hi = self.terms.len() as u32;
                self.ops.push(Op::Mono { coeff: m.coeff, lo, hi });
            }
            Expr::Sum(v) => {
                for child in v {
                    self.emit(child);
                }
                self.ops.push(Op::Sum { k: v.len() as u32 });
            }
            Expr::Max(v) => {
                for child in v {
                    self.emit(child);
                }
                let w0 = self.wts_len as u32;
                self.wts_len += v.len();
                self.ops.push(Op::Max { k: v.len() as u32, w0 });
            }
        }
    }

    /// Number of value-tape slots this expression needs (one per op).
    pub fn vals_len(&self) -> usize {
        self.ops.len()
    }

    /// Number of weight-tape slots this expression needs.
    pub fn wts_len(&self) -> usize {
        self.wts_len
    }

    /// Whether any monomial carries a `±0.5` exponent (the 2D mesh's
    /// square-root network terms); tells the objective whether
    /// [`VarCache::fill`] must populate the square-root caches.
    pub fn has_half_exponents(&self) -> bool {
        self.terms.iter().any(|&(_, a)| a == 0.5 || a == -0.5)
    }

    /// Value-only evaluation (no tape): same arithmetic as
    /// [`CompiledExpr::eval_tape`] given the same `cache` choice, so the
    /// two return bit-identical values. Used by the descent loop's
    /// line-search probes, which never take a gradient.
    pub fn eval(
        &self,
        x: &[f64],
        sharp: Sharpness,
        stack: &mut Vec<f64>,
        cache: Option<&VarCache>,
    ) -> f64 {
        let base = stack.len();
        for op in &self.ops {
            let v = match *op {
                Op::Mono { coeff, lo, hi } => {
                    mono_val(&self.terms[lo as usize..hi as usize], coeff, x, cache)
                }
                Op::Sum { k } => {
                    let b = stack.len() - k as usize;
                    let mut s = 0.0;
                    for &c in &stack[b..] {
                        s += c;
                    }
                    stack.truncate(b);
                    s
                }
                Op::Max { k, w0: _ } => {
                    let b = stack.len() - k as usize;
                    let v = smax_fast(&stack[b..], sharp);
                    stack.truncate(b);
                    v
                }
            };
            stack.push(v);
        }
        let out = stack.pop().unwrap_or(0.0);
        debug_assert_eq!(stack.len(), base);
        out
    }

    /// Evaluate at log-space point `x`, recording each op's value into
    /// `vals` and each `max`'s weights into `wts` (the tape). `stack` is
    /// the shared value stack; it is restored to its entry length.
    pub fn eval_tape(
        &self,
        x: &[f64],
        sharp: Sharpness,
        stack: &mut Vec<f64>,
        vals: &mut [f64],
        wts: &mut [f64],
        cache: Option<&VarCache>,
    ) -> f64 {
        debug_assert_eq!(vals.len(), self.ops.len());
        debug_assert_eq!(wts.len(), self.wts_len);
        let base = stack.len();
        for (i, op) in self.ops.iter().enumerate() {
            let v = match *op {
                Op::Mono { coeff, lo, hi } => {
                    mono_val(&self.terms[lo as usize..hi as usize], coeff, x, cache)
                }
                Op::Sum { k } => {
                    let b = stack.len() - k as usize;
                    let mut s = 0.0;
                    for &c in &stack[b..] {
                        s += c;
                    }
                    stack.truncate(b);
                    s
                }
                Op::Max { k, w0 } => {
                    let b = stack.len() - k as usize;
                    let v = smax_weights_fast(
                        &stack[b..],
                        sharp,
                        &mut wts[w0 as usize..w0 as usize + k as usize],
                    );
                    stack.truncate(b);
                    v
                }
            };
            vals[i] = v;
            stack.push(v);
        }
        let out = stack.pop().unwrap_or(0.0);
        debug_assert_eq!(stack.len(), base);
        out
    }

    /// Accumulate `seed * ∂value/∂x` into `grad` by replaying the tape
    /// recorded by the matching [`CompiledExpr::eval_tape`] call in
    /// reverse. No expression re-evaluation: monomial values come from
    /// `vals`, `max` weights from `wts`. `adj` is a scratch adjoint
    /// stack (restored to its entry length).
    pub fn backprop(
        &self,
        seed: f64,
        vals: &[f64],
        wts: &[f64],
        grad: &mut [f64],
        adj: &mut Vec<f64>,
    ) {
        debug_assert_eq!(vals.len(), self.ops.len());
        if seed == 0.0 || self.ops.is_empty() {
            return;
        }
        let base = adj.len();
        adj.push(seed);
        for (i, op) in self.ops.iter().enumerate().rev() {
            let a = adj.pop().expect("adjoint stack in sync with ops");
            match *op {
                Op::Mono { coeff: _, lo, hi } => {
                    let av = a * vals[i];
                    if av != 0.0 {
                        for &(j, e) in &self.terms[lo as usize..hi as usize] {
                            grad[j as usize] += av * e;
                        }
                    }
                }
                // Children were pushed left-to-right, so the reverse walk
                // meets the *last* child's subtree first: push adjoints
                // left-to-right and pops line up with child k-1, k-2, ...
                Op::Sum { k } => {
                    for _ in 0..k {
                        adj.push(a);
                    }
                }
                Op::Max { k, w0 } => {
                    for t in 0..k as usize {
                        adj.push(a * wts[w0 as usize + t]);
                    }
                }
            }
        }
        debug_assert_eq!(adj.len(), base);
    }
}

/// Smoothed max with gradient weights written into `wts`, semantically
/// identical to [`crate::expr::smax_weights`] (same first-argmax rule at
/// [`Sharpness::Exact`], same all-zero guard) but built for the hot
/// path: integer sharpness goes through `powi` (repeated squaring), and
/// the weights `(v_k/val)^{s-1}` are recovered from the already-computed
/// powers as `(t_k/Σt) · (val/v_k)` — one division each instead of a
/// `powf`.
pub(crate) fn smax_weights_fast(vals: &[f64], sharp: Sharpness, wts: &mut [f64]) -> f64 {
    debug_assert_eq!(vals.len(), wts.len());
    let m = vals.iter().copied().fold(0.0_f64, f64::max);
    match sharp {
        Sharpness::Exact => {
            let k = vals.iter().position(|&v| v == m);
            for w in wts.iter_mut() {
                *w = 0.0;
            }
            if let Some(k) = k {
                wts[k] = 1.0;
            }
            m
        }
        Sharpness::Smooth(s) => {
            if m == 0.0 {
                for w in wts.iter_mut() {
                    *w = 0.0;
                }
                return 0.0;
            }
            let mut sum = 0.0;
            for (w, &v) in wts.iter_mut().zip(vals) {
                let t = pow_sharp(v / m, s);
                *w = t;
                sum += t;
            }
            let val = m * root_sharp(sum, s);
            for (w, &v) in wts.iter_mut().zip(vals) {
                // (v/val)^(s-1) = ((v/m)^s / Σt) · (val/v), since
                // (val/m)^s = Σt. Underflowed powers stay exactly 0.
                *w = if *w == 0.0 { 0.0 } else { (*w / sum) * (val / v) };
            }
            val
        }
    }
}

/// Value-only [`smax_weights_fast`] for paths that need no tape.
pub(crate) fn smax_fast(vals: &[f64], sharp: Sharpness) -> f64 {
    let m = vals.iter().copied().fold(0.0_f64, f64::max);
    match sharp {
        Sharpness::Exact => m,
        Sharpness::Smooth(s) => {
            if m == 0.0 {
                return 0.0;
            }
            let sum: f64 = vals.iter().map(|&v| pow_sharp(v / m, s)).sum();
            m * root_sharp(sum, s)
        }
    }
}

/// `b^s` for `b ∈ [0, 1]`: repeated squaring via `powi` when `s` is a
/// small positive integer (the annealing schedule's 4/16/64/256 all
/// are), `powf` otherwise.
#[inline]
pub(crate) fn pow_sharp(b: f64, s: f64) -> f64 {
    if s.fract() == 0.0 && (1.0..=512.0).contains(&s) {
        b.powi(s as i32)
    } else {
        b.powf(s)
    }
}

/// `v^{1/s}`: repeated hardware `sqrt` when `s` is a power of two (the
/// annealing schedule's are), `powf` otherwise.
#[inline]
pub(crate) fn root_sharp(v: f64, s: f64) -> f64 {
    if s.fract() == 0.0 && (2.0..=512.0).contains(&s) && (s as u32).is_power_of_two() {
        let mut r = v;
        let mut k = s as u32;
        while k > 1 {
            r = r.sqrt();
            k >>= 1;
        }
        r
    } else {
        v.powf(1.0 / s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{smax_weights, Monomial};

    fn sample_expr() -> Expr {
        // Nested max-in-sum-in-max, mirroring the shapes the objective
        // builds (1D transfer startup max inside a node-T sum).
        Expr::sum(vec![
            Expr::max(vec![
                Expr::Mono(Monomial::single(2.0, 0, 1.0)),
                Expr::sum(vec![
                    Expr::Mono(Monomial::single(1.0, 1, 1.0)),
                    Expr::max(vec![
                        Expr::Mono(Monomial::pair(0.5, 0, 1.0, 1, -1.0)),
                        Expr::constant(0.25),
                    ]),
                ]),
            ]),
            Expr::Mono(Monomial::pair(1.0, 0, 1.0, 1, -1.0)),
            Expr::constant(0.3),
        ])
    }

    fn tape_for(c: &CompiledExpr) -> (Vec<f64>, Vec<f64>) {
        (vec![0.0; c.vals_len()], vec![0.0; c.wts_len()])
    }

    #[test]
    fn compiled_eval_is_bitwise_identical_to_tree_at_exact() {
        let e = sample_expr();
        let c = CompiledExpr::compile(&e);
        let (mut vals, mut wts) = tape_for(&c);
        let mut stack = Vec::new();
        for x in [[0.0, 0.0], [1.0, 2.0], [-0.5, 0.7], [2.0, -1.0]] {
            let v0 = e.eval(&x, Sharpness::Exact);
            let v1 = c.eval_tape(&x, Sharpness::Exact, &mut stack, &mut vals, &mut wts, None);
            assert_eq!(v0.to_bits(), v1.to_bits(), "at {x:?}");
            assert!(stack.is_empty());
        }
    }

    #[test]
    fn compiled_eval_matches_tree_at_smooth_to_rounding() {
        let e = sample_expr();
        let c = CompiledExpr::compile(&e);
        let (mut vals, mut wts) = tape_for(&c);
        let mut stack = Vec::new();
        let mut cache = VarCache::default();
        for s in [4.0, 64.0, 256.0, 3.7] {
            for x in [[0.0, 0.0], [1.0, 2.0], [-0.5, 0.7]] {
                let v0 = e.eval(&x, Sharpness::Smooth(s));
                let sharp = Sharpness::Smooth(s);
                let v1 = c.eval_tape(&x, sharp, &mut stack, &mut vals, &mut wts, None);
                assert!(
                    (v0 - v1).abs() <= 1e-12 * v0.abs().max(1.0),
                    "s={s} x={x:?}: {v0} vs {v1}"
                );
                cache.fill(&x, c.has_half_exponents());
                let v2 = c.eval_tape(&x, sharp, &mut stack, &mut vals, &mut wts, Some(&cache));
                assert!(
                    (v0 - v2).abs() <= 1e-12 * v0.abs().max(1.0),
                    "cached s={s} x={x:?}: {v0} vs {v2}"
                );
                let v3 = c.eval(&x, sharp, &mut stack, Some(&cache));
                assert_eq!(v2.to_bits(), v3.to_bits(), "eval vs eval_tape, same cache");
            }
        }
    }

    #[test]
    fn backprop_matches_tree_gradient() {
        let e = sample_expr();
        let c = CompiledExpr::compile(&e);
        let (mut vals, mut wts) = tape_for(&c);
        let mut stack = Vec::new();
        let mut adj = Vec::new();
        let mut cache = VarCache::default();
        for sharp in [Sharpness::Exact, Sharpness::Smooth(8.0), Sharpness::Smooth(256.0)] {
            for x in [[0.0, 0.0], [1.0, 2.0], [-0.5, 0.7], [2.0, -1.0]] {
                let mut g0 = vec![0.0; 2];
                let _ = e.eval_grad(&x, sharp, 1.7, &mut g0);
                // Smooth uses the cached-factor monomials, Exact the
                // bit-identical exp path — mirroring the objective.
                let vc = if matches!(sharp, Sharpness::Smooth(_)) {
                    cache.fill(&x, c.has_half_exponents());
                    Some(&cache)
                } else {
                    None
                };
                let _ = c.eval_tape(&x, sharp, &mut stack, &mut vals, &mut wts, vc);
                let mut g1 = vec![0.0; 2];
                c.backprop(1.7, &vals, &wts, &mut g1, &mut adj);
                assert!(adj.is_empty() && stack.is_empty());
                for j in 0..2 {
                    assert!(
                        (g0[j] - g1[j]).abs() <= 1e-9 * (1.0 + g0[j].abs()),
                        "{sharp:?} x={x:?} var {j}: tree {} vs tape {}",
                        g0[j],
                        g1[j]
                    );
                }
            }
        }
    }

    #[test]
    fn backprop_zero_seed_is_a_no_op() {
        let e = sample_expr();
        let c = CompiledExpr::compile(&e);
        let (mut vals, mut wts) = tape_for(&c);
        let mut stack = Vec::new();
        let _ =
            c.eval_tape(&[1.0, 1.0], Sharpness::Smooth(8.0), &mut stack, &mut vals, &mut wts, None);
        let mut g = vec![0.0; 2];
        let mut adj = Vec::new();
        c.backprop(0.0, &vals, &wts, &mut g, &mut adj);
        assert!(g.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fast_smax_kernels_match_reference() {
        for sharp in [Sharpness::Exact, Sharpness::Smooth(4.0), Sharpness::Smooth(256.0)] {
            for vals in [
                vec![1.0, 2.0, 3.0, 0.5],
                vec![2.0, 2.0],
                vec![0.0, 0.0],
                vec![7.0],
                vec![1e-8, 100.0, 0.0],
            ] {
                let (v0, w0) = smax_weights(&vals, sharp);
                let mut w1 = vec![0.0; vals.len()];
                let v1 = smax_weights_fast(&vals, sharp, &mut w1);
                let v2 = smax_fast(&vals, sharp);
                assert!((v0 - v1).abs() <= 1e-12 * v0.abs().max(1.0), "{sharp:?} {vals:?}");
                assert_eq!(v1.to_bits(), v2.to_bits(), "value-only kernel must agree");
                for (a, b) in w0.iter().zip(&w1) {
                    assert!(
                        (a - b).abs() <= 1e-12 * (1.0 + a.abs()),
                        "{sharp:?} {vals:?}: weight {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn cached_monomials_match_exp_path_with_half_exponents() {
        // ±0.5 exponents (the 2D mesh network terms) exercise the
        // square-root caches; an exotic exponent hits the powf fallback.
        let e = Expr::sum(vec![
            Expr::Mono(Monomial::pair(3.0, 0, 0.5, 1, -0.5)),
            Expr::Mono(Monomial::single(1.5, 1, -0.5)),
            Expr::Mono(Monomial::single(0.5, 0, 2.0)),
        ]);
        let c = CompiledExpr::compile(&e);
        assert!(c.has_half_exponents());
        let (mut vals, mut wts) = tape_for(&c);
        let mut stack = Vec::new();
        let mut cache = VarCache::default();
        for x in [[0.0, 0.0], [1.3, -0.4], [2.0, 2.0]] {
            let sharp = Sharpness::Smooth(16.0);
            let v0 = c.eval_tape(&x, sharp, &mut stack, &mut vals, &mut wts, None);
            cache.fill(&x, true);
            let v1 = c.eval_tape(&x, sharp, &mut stack, &mut vals, &mut wts, Some(&cache));
            assert!((v0 - v1).abs() <= 1e-12 * v0.abs().max(1.0), "x={x:?}: {v0} vs {v1}");
        }
    }

    #[test]
    fn zero_expression_compiles_and_evaluates() {
        let c = CompiledExpr::compile(&Expr::zero());
        let (mut vals, mut wts) = tape_for(&c);
        let mut stack = Vec::new();
        let v = c.eval_tape(&[], Sharpness::Smooth(8.0), &mut stack, &mut vals, &mut wts, None);
        assert_eq!(v, 0.0);
        let mut g: Vec<f64> = Vec::new();
        let mut adj = Vec::new();
        c.backprop(1.0, &vals, &wts, &mut g, &mut adj);
    }
}
