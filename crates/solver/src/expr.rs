//! Generalized posynomial expression trees.
//!
//! A **monomial** is `c * Π_j p_j^{a_j}` with `c > 0`; under `x = ln p`
//! it becomes `exp(ln c + Σ a_j x_j)` — log-convex. A **posynomial** is a
//! sum of monomials; a **generalized posynomial** additionally closes the
//! family under pointwise `max`. All three remain convex in `x`, which is
//! the foundation of the geometric-programming view the paper takes.
//!
//! Evaluation happens directly in `p`-space but gradients are taken with
//! respect to `x = ln p` (so `∂(c p^a)/∂x = a * value`). The `max` nodes
//! are evaluated either exactly (sharpness = ∞, subgradient of the
//! argmax) or through the scaled p-norm smoothing
//!
//! ```text
//! smax_s(v) = ( Σ v_k^s )^{1/s}        (v_k >= 0)
//! ```
//!
//! which is smooth, convex, scale-invariant, upper-bounds the exact max,
//! and approaches it as the sharpness `s → ∞` (overestimation factor at
//! most `k^{1/s}` for `k` arguments). The solver anneals `s` upward.

/// Sharpness parameter for smoothed max evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sharpness {
    /// Exact max; gradient is the subgradient of the (first) argmax.
    Exact,
    /// p-norm smoothing with the given exponent (>= 1).
    Smooth(f64),
}

/// `c * Π p_j^{a_j}` with `c >= 0`. Zero-coefficient monomials evaluate
/// to 0 and are dropped by the `Expr` constructors.
#[derive(Debug, Clone, PartialEq)]
pub struct Monomial {
    /// Coefficient, `>= 0`.
    pub coeff: f64,
    /// `(variable index, exponent)` pairs; indices must be unique.
    pub exps: Vec<(usize, f64)>,
}

impl Monomial {
    /// Checked coefficient validation shared by all constructors.
    fn check_coeff(c: f64) -> Result<(), String> {
        if c >= 0.0 && c.is_finite() {
            Ok(())
        } else {
            Err(format!("monomial coefficient must be >= 0, got {c}"))
        }
    }

    /// Fallible [`Monomial::constant`].
    pub fn try_constant(c: f64) -> Result<Self, String> {
        Self::check_coeff(c)?;
        Ok(Monomial { coeff: c, exps: Vec::new() })
    }

    /// Fallible [`Monomial::single`].
    pub fn try_single(c: f64, var: usize, exp: f64) -> Result<Self, String> {
        Self::check_coeff(c)?;
        if exp == 0.0 {
            Self::try_constant(c)
        } else {
            Ok(Monomial { coeff: c, exps: vec![(var, exp)] })
        }
    }

    /// A constant monomial.
    pub fn constant(c: f64) -> Self {
        Self::try_constant(c).unwrap_or_else(|e| panic!("{e}"))
    }

    /// `c * p_var^exp`.
    pub fn single(c: f64, var: usize, exp: f64) -> Self {
        Self::try_single(c, var, exp).unwrap_or_else(|e| panic!("{e}"))
    }

    /// `c * p_a^ea * p_b^eb` (merging if `a == b`).
    pub fn pair(c: f64, a: usize, ea: f64, b: usize, eb: f64) -> Self {
        Self::try_pair(c, a, ea, b, eb).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Monomial::pair`].
    pub fn try_pair(c: f64, a: usize, ea: f64, b: usize, eb: f64) -> Result<Self, String> {
        Self::check_coeff(c)?;
        let mut exps = Vec::new();
        if a == b {
            if ea + eb != 0.0 {
                exps.push((a, ea + eb));
            }
        } else {
            if ea != 0.0 {
                exps.push((a, ea));
            }
            if eb != 0.0 {
                exps.push((b, eb));
            }
        }
        Ok(Monomial { coeff: c, exps })
    }

    /// Value at `x` (log-space point): `c * exp(Σ a_j x_j)`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        if self.coeff == 0.0 {
            return 0.0;
        }
        let e: f64 = self.exps.iter().map(|&(j, a)| a * x[j]).sum();
        self.coeff * e.exp()
    }

    /// Accumulate `scale * ∂value/∂x_j` into `grad`.
    pub fn accumulate_grad(&self, x: &[f64], scale: f64, grad: &mut [f64]) {
        if self.coeff == 0.0 || scale == 0.0 {
            return;
        }
        let v = self.eval(x);
        for &(j, a) in &self.exps {
            grad[j] += scale * a * v;
        }
    }

    /// Product of two monomials.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut exps = self.exps.clone();
        for &(j, a) in &other.exps {
            if let Some(slot) = exps.iter_mut().find(|(k, _)| *k == j) {
                slot.1 += a;
            } else {
                exps.push((j, a));
            }
        }
        exps.retain(|&(_, a)| a != 0.0);
        Monomial { coeff: self.coeff * other.coeff, exps }
    }
}

/// A generalized posynomial expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A single monomial.
    Mono(Monomial),
    /// Sum of sub-expressions.
    Sum(Vec<Expr>),
    /// Pointwise maximum of sub-expressions.
    Max(Vec<Expr>),
}

impl Expr {
    /// The zero expression.
    pub fn zero() -> Expr {
        Expr::Mono(Monomial::constant(0.0))
    }

    /// A constant.
    pub fn constant(c: f64) -> Expr {
        Expr::Mono(Monomial::constant(c))
    }

    /// Sum, dropping zero monomial terms.
    pub fn sum(terms: Vec<Expr>) -> Expr {
        let mut kept: Vec<Expr> = terms.into_iter().filter(|t| !t.is_zero()).collect();
        match kept.len() {
            0 => Expr::zero(),
            1 => kept.pop().expect("len checked"),
            _ => Expr::Sum(kept),
        }
    }

    /// Max, dropping duplicate zeros (max(0, e) = e since e >= 0).
    pub fn max(terms: Vec<Expr>) -> Expr {
        let mut kept: Vec<Expr> = terms.into_iter().filter(|t| !t.is_zero()).collect();
        match kept.len() {
            0 => Expr::zero(),
            1 => kept.pop().expect("len checked"),
            _ => Expr::Max(kept),
        }
    }

    /// True for a syntactic zero.
    pub fn is_zero(&self) -> bool {
        match self {
            Expr::Mono(m) => m.coeff == 0.0,
            Expr::Sum(v) | Expr::Max(v) => v.iter().all(Expr::is_zero),
        }
    }

    /// Multiply the whole expression by a monomial (distributes over sum
    /// and max — valid because monomials are positive, preserving order).
    pub fn mul_mono(&self, m: &Monomial) -> Expr {
        match self {
            Expr::Mono(a) => Expr::Mono(a.mul(m)),
            Expr::Sum(v) => Expr::Sum(v.iter().map(|e| e.mul_mono(m)).collect()),
            Expr::Max(v) => Expr::Max(v.iter().map(|e| e.mul_mono(m)).collect()),
        }
    }

    /// Value at log-space point `x` with the given max-sharpness.
    pub fn eval(&self, x: &[f64], sharp: Sharpness) -> f64 {
        match self {
            Expr::Mono(m) => m.eval(x),
            Expr::Sum(v) => v.iter().map(|e| e.eval(x, sharp)).sum(),
            Expr::Max(v) => {
                let vals: Vec<f64> = v.iter().map(|e| e.eval(x, sharp)).collect();
                smax(&vals, sharp)
            }
        }
    }

    /// Value and gradient (w.r.t. `x`) at `x`. `grad` must be zeroed by
    /// the caller (the method accumulates with weight `scale`).
    pub fn eval_grad(&self, x: &[f64], sharp: Sharpness, scale: f64, grad: &mut [f64]) -> f64 {
        match self {
            Expr::Mono(m) => {
                m.accumulate_grad(x, scale, grad);
                m.eval(x)
            }
            Expr::Sum(v) => v.iter().map(|e| e.eval_grad(x, sharp, scale, grad)).sum(),
            Expr::Max(v) => {
                let vals: Vec<f64> = v.iter().map(|e| e.eval(x, sharp)).collect();
                let (val, weights) = smax_weights(&vals, sharp);
                for (e, w) in v.iter().zip(weights) {
                    if w != 0.0 {
                        let _ = e.eval_grad(x, sharp, scale * w, grad);
                    }
                }
                val
            }
        }
    }

    /// Number of monomial leaves (diagnostic).
    pub fn term_count(&self) -> usize {
        match self {
            Expr::Mono(_) => 1,
            Expr::Sum(v) | Expr::Max(v) => v.iter().map(Expr::term_count).sum(),
        }
    }

    /// Allocation-free [`Expr::eval`]: `Max` candidates go through the
    /// caller-provided value stack (pushed, reduced, truncated) instead
    /// of a fresh `Vec` per node. `stack` may carry live entries from an
    /// enclosing `Max`; everything above the entry length is restored.
    pub fn eval_ws(&self, x: &[f64], sharp: Sharpness, stack: &mut Vec<f64>) -> f64 {
        match self {
            Expr::Mono(m) => m.eval(x),
            Expr::Sum(v) => v.iter().map(|e| e.eval_ws(x, sharp, stack)).sum(),
            Expr::Max(v) => {
                let base = stack.len();
                for e in v {
                    let val = e.eval_ws(x, sharp, stack);
                    stack.push(val);
                }
                let val = smax(&stack[base..], sharp);
                stack.truncate(base);
                val
            }
        }
    }

    /// Allocation-free [`Expr::eval_grad`]: like [`Expr::eval_ws`], but
    /// also accumulating `scale * ∂value/∂x` into `grad`. `Max` weights
    /// are computed in place on the stack slice, then read back by index
    /// while recursing (the recursion may push deeper entries, but never
    /// touches slots below its own base).
    pub fn eval_grad_ws(
        &self,
        x: &[f64],
        sharp: Sharpness,
        scale: f64,
        grad: &mut [f64],
        stack: &mut Vec<f64>,
    ) -> f64 {
        match self {
            Expr::Mono(m) => {
                m.accumulate_grad(x, scale, grad);
                m.eval(x)
            }
            Expr::Sum(v) => v.iter().map(|e| e.eval_grad_ws(x, sharp, scale, grad, stack)).sum(),
            Expr::Max(v) => {
                let base = stack.len();
                for e in v {
                    let val = e.eval_ws(x, sharp, stack);
                    stack.push(val);
                }
                let val = smax_weights_in_place(&mut stack[base..], sharp);
                for (i, e) in v.iter().enumerate() {
                    let w = stack[base + i];
                    if w != 0.0 {
                        let _ = e.eval_grad_ws(x, sharp, scale * w, grad, stack);
                    }
                }
                stack.truncate(base);
                val
            }
        }
    }
}

/// Smoothed maximum of non-negative values.
pub fn smax(vals: &[f64], sharp: Sharpness) -> f64 {
    debug_assert!(vals.iter().all(|&v| v >= 0.0), "smax needs non-negative inputs");
    let m = vals.iter().copied().fold(0.0_f64, f64::max);
    match sharp {
        Sharpness::Exact => m,
        Sharpness::Smooth(s) => {
            if m == 0.0 {
                return 0.0;
            }
            let sum: f64 = vals.iter().map(|&v| (v / m).powf(s)).sum();
            m * sum.powf(1.0 / s)
        }
    }
}

/// Smoothed maximum together with the gradient weights
/// `∂ smax / ∂ v_k` (they sum to >= 1 for the p-norm, exactly the argmax
/// indicator for the exact max).
pub fn smax_weights(vals: &[f64], sharp: Sharpness) -> (f64, Vec<f64>) {
    let m = vals.iter().copied().fold(0.0_f64, f64::max);
    match sharp {
        Sharpness::Exact => {
            let mut w = vec![0.0; vals.len()];
            if let Some(k) = vals.iter().position(|&v| v == m) {
                w[k] = 1.0;
            }
            (m, w)
        }
        Sharpness::Smooth(s) => {
            if m == 0.0 {
                return (0.0, vec![0.0; vals.len()]);
            }
            let ratios: Vec<f64> = vals.iter().map(|&v| (v / m).powf(s)).collect();
            let sum: f64 = ratios.iter().sum();
            let val = m * sum.powf(1.0 / s);
            // d||v||_s / dv_k = (v_k / ||v||_s)^(s-1)
            let w: Vec<f64> = vals
                .iter()
                .map(|&v| if v == 0.0 { 0.0 } else { (v / val).powf(s - 1.0) })
                .collect();
            (val, w)
        }
    }
}

/// Allocation-free [`smax_weights`]: returns the smoothed max and
/// overwrites `vals` with the gradient weights. Produces bit-identical
/// values and weights to `smax_weights` (same fold order, same first-
/// argmax rule for the exact case).
pub fn smax_weights_in_place(vals: &mut [f64], sharp: Sharpness) -> f64 {
    let m = vals.iter().copied().fold(0.0_f64, f64::max);
    match sharp {
        Sharpness::Exact => {
            let k = vals.iter().position(|&v| v == m);
            for v in vals.iter_mut() {
                *v = 0.0;
            }
            if let Some(k) = k {
                vals[k] = 1.0;
            }
            m
        }
        Sharpness::Smooth(s) => {
            if m == 0.0 {
                for v in vals.iter_mut() {
                    *v = 0.0;
                }
                return 0.0;
            }
            let sum: f64 = vals.iter().map(|&v| (v / m).powf(s)).sum();
            let val = m * sum.powf(1.0 / s);
            for v in vals.iter_mut() {
                *v = if *v == 0.0 { 0.0 } else { (*v / val).powf(s - 1.0) };
            }
            val
        }
    }
}

/// Two-argument [`smax_weights`] without the weight vector — used for
/// the top-level `Phi = smax(A_p, C_p)` combination. Returns
/// `(value, w_a, w_b)` with the same semantics (exact: first argmax).
pub fn smax_pair_weights(a: f64, b: f64, sharp: Sharpness) -> (f64, f64, f64) {
    let mut vals = [a, b];
    let val = smax_weights_in_place(&mut vals, sharp);
    (val, vals[0], vals[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad_of(e: &Expr, x: &[f64], sharp: Sharpness) -> Vec<f64> {
        let mut g = vec![0.0; x.len()];
        let _ = e.eval_grad(x, sharp, 1.0, &mut g);
        g
    }

    fn finite_diff(e: &Expr, x: &[f64], sharp: Sharpness) -> Vec<f64> {
        let mut g = vec![0.0; x.len()];
        let h = 1e-7;
        for j in 0..x.len() {
            let mut xp = x.to_vec();
            let mut xm = x.to_vec();
            xp[j] += h;
            xm[j] -= h;
            g[j] = (e.eval(&xp, sharp) - e.eval(&xm, sharp)) / (2.0 * h);
        }
        g
    }

    #[test]
    fn monomial_eval() {
        // 3 * p0^2 * p1^-1 at p0 = e, p1 = e^2 -> 3 * e^2 / e^2 = 3.
        let m = Monomial::pair(3.0, 0, 2.0, 1, -1.0);
        assert!((m.eval(&[1.0, 2.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn monomial_pair_merges_same_var() {
        let m = Monomial::pair(2.0, 0, 1.0, 0, -1.0);
        assert!(m.exps.is_empty(), "p0^1 * p0^-1 cancels");
        assert!((m.eval(&[5.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn monomial_mul() {
        let a = Monomial::single(2.0, 0, 1.0);
        let b = Monomial::pair(3.0, 0, 1.0, 1, -2.0);
        let c = a.mul(&b);
        assert!((c.coeff - 6.0).abs() < 1e-12);
        // p0^2 p1^-2 at x = (ln 2, ln 3): 6 * 4 / 9
        let x = [2.0_f64.ln(), 3.0_f64.ln()];
        assert!((c.eval(&x) - 6.0 * 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn sum_flattens_zeros() {
        let e = Expr::sum(vec![Expr::zero(), Expr::constant(2.0), Expr::zero()]);
        assert!(matches!(e, Expr::Mono(_)));
        assert!((e.eval(&[], Sharpness::Exact) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn max_exact_picks_largest() {
        let e = Expr::max(vec![Expr::Mono(Monomial::single(1.0, 0, 1.0)), Expr::constant(5.0)]);
        // p0 = e^0 = 1 -> max(1, 5) = 5; p0 = e^2 -> max(7.39, 5) = 7.39.
        assert!((e.eval(&[0.0], Sharpness::Exact) - 5.0).abs() < 1e-12);
        assert!((e.eval(&[2.0], Sharpness::Exact) - 2.0_f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn smooth_max_upper_bounds_exact() {
        let vals = [1.0, 2.0, 3.0, 0.5];
        for s in [2.0, 4.0, 16.0, 64.0] {
            let sm = smax(&vals, Sharpness::Smooth(s));
            assert!(sm >= 3.0);
            assert!(sm <= 3.0 * (vals.len() as f64).powf(1.0 / s) + 1e-12);
        }
    }

    #[test]
    fn smooth_max_converges_to_exact() {
        let vals = [1.0, 2.7, 2.6];
        let exact = smax(&vals, Sharpness::Exact);
        let s512 = smax(&vals, Sharpness::Smooth(512.0));
        assert!((s512 - exact).abs() < 1e-2 * exact);
    }

    #[test]
    fn smax_handles_all_zero() {
        assert_eq!(smax(&[0.0, 0.0], Sharpness::Smooth(8.0)), 0.0);
        let (v, w) = smax_weights(&[0.0, 0.0], Sharpness::Smooth(8.0));
        assert_eq!(v, 0.0);
        assert!(w.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn gradient_matches_finite_difference_smooth() {
        // f = max(2 p0, p1) + p0 p1^-1 + 0.3
        let e = Expr::sum(vec![
            Expr::max(vec![
                Expr::Mono(Monomial::single(2.0, 0, 1.0)),
                Expr::Mono(Monomial::single(1.0, 1, 1.0)),
            ]),
            Expr::Mono(Monomial::pair(1.0, 0, 1.0, 1, -1.0)),
            Expr::constant(0.3),
        ]);
        for x in [[0.0, 0.0], [1.0, 2.0], [-0.5, 0.7]] {
            let sharp = Sharpness::Smooth(8.0);
            let g = grad_of(&e, &x, sharp);
            let fd = finite_diff(&e, &x, sharp);
            for j in 0..2 {
                assert!(
                    (g[j] - fd[j]).abs() < 1e-5 * (1.0 + fd[j].abs()),
                    "x={x:?} j={j}: {} vs {}",
                    g[j],
                    fd[j]
                );
            }
        }
    }

    #[test]
    fn gradient_matches_finite_difference_exact_away_from_kink() {
        let e = Expr::max(vec![Expr::Mono(Monomial::single(1.0, 0, 1.0)), Expr::constant(2.0)]);
        // p0 = e^2 ≈ 7.39 > 2: smooth region, derivative = p0.
        let g = grad_of(&e, &[2.0], Sharpness::Exact);
        assert!((g[0] - 2.0_f64.exp()).abs() < 1e-9);
        // p0 = 1 < 2: flat region.
        let g = grad_of(&e, &[0.0], Sharpness::Exact);
        assert_eq!(g[0], 0.0);
    }

    #[test]
    fn mul_mono_distributes() {
        let e = Expr::max(vec![Expr::constant(1.0), Expr::Mono(Monomial::single(1.0, 0, 1.0))]);
        let m = Monomial::single(2.0, 0, 1.0);
        let em = e.mul_mono(&m);
        // At p0 = 3 (x = ln 3): max(1, 3) * 2 * 3 = 18.
        let x = [3.0_f64.ln()];
        assert!((em.eval(&x, Sharpness::Exact) - 18.0).abs() < 1e-9);
    }

    /// Generalized posynomials are convex in x: random midpoint checks on
    /// a nontrivial expression (smooth and exact sharpness both).
    #[test]
    fn expr_is_logspace_convex() {
        let e = Expr::sum(vec![
            Expr::max(vec![Expr::Mono(Monomial::pair(1.5, 0, 1.0, 1, -1.0)), Expr::constant(1.5)]),
            Expr::Mono(Monomial::single(0.2, 1, 1.0)),
            Expr::Mono(Monomial::pair(0.7, 0, -1.0, 1, -1.0)),
        ]);
        let pts: Vec<[f64; 2]> = (0..10)
            .map(|k| {
                let a = (k as f64 * 0.77).sin() * 2.0;
                let b = (k as f64 * 1.3).cos() * 2.0;
                [a, b]
            })
            .collect();
        for sharp in [Sharpness::Exact, Sharpness::Smooth(8.0)] {
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    let mid = [(pts[i][0] + pts[j][0]) / 2.0, (pts[i][1] + pts[j][1]) / 2.0];
                    let lhs = e.eval(&mid, sharp);
                    let rhs = 0.5 * (e.eval(&pts[i], sharp) + e.eval(&pts[j], sharp));
                    assert!(lhs <= rhs + 1e-10, "convexity violated ({sharp:?})");
                }
            }
        }
    }

    #[test]
    fn term_count() {
        let e = Expr::sum(vec![
            Expr::max(vec![Expr::constant(1.0), Expr::constant(2.0)]),
            Expr::constant(3.0),
        ]);
        assert_eq!(e.term_count(), 3);
    }

    #[test]
    #[should_panic(expected = "coefficient")]
    fn negative_coefficient_rejected() {
        let _ = Monomial::constant(-1.0);
    }

    #[test]
    fn ws_paths_match_allocating_paths_bitwise() {
        // Nested max-in-sum-in-max exercises stack push/truncate depth.
        let e = Expr::sum(vec![
            Expr::max(vec![
                Expr::Mono(Monomial::single(2.0, 0, 1.0)),
                Expr::sum(vec![
                    Expr::Mono(Monomial::single(1.0, 1, 1.0)),
                    Expr::max(vec![
                        Expr::Mono(Monomial::pair(0.5, 0, 1.0, 1, -1.0)),
                        Expr::constant(0.25),
                    ]),
                ]),
            ]),
            Expr::Mono(Monomial::pair(1.0, 0, 1.0, 1, -1.0)),
            Expr::constant(0.3),
        ]);
        let mut stack = Vec::new();
        for sharp in [Sharpness::Exact, Sharpness::Smooth(8.0), Sharpness::Smooth(64.0)] {
            for x in [[0.0, 0.0], [1.0, 2.0], [-0.5, 0.7], [2.0, -1.0]] {
                let v0 = e.eval(&x, sharp);
                let v1 = e.eval_ws(&x, sharp, &mut stack);
                assert_eq!(v0.to_bits(), v1.to_bits(), "eval_ws diverged at {x:?} {sharp:?}");
                assert!(stack.is_empty(), "stack must be fully truncated");

                let mut g0 = vec![0.0; 2];
                let f0 = e.eval_grad(&x, sharp, 1.0, &mut g0);
                let mut g1 = vec![0.0; 2];
                let f1 = e.eval_grad_ws(&x, sharp, 1.0, &mut g1, &mut stack);
                assert_eq!(f0.to_bits(), f1.to_bits());
                for j in 0..2 {
                    assert_eq!(
                        g0[j].to_bits(),
                        g1[j].to_bits(),
                        "eval_grad_ws diverged at {x:?} {sharp:?} var {j}"
                    );
                }
                assert!(stack.is_empty());
            }
        }
    }

    #[test]
    fn smax_weights_in_place_matches_smax_weights() {
        for sharp in [Sharpness::Exact, Sharpness::Smooth(4.0), Sharpness::Smooth(256.0)] {
            for vals in [vec![1.0, 2.0, 3.0, 0.5], vec![2.0, 2.0], vec![0.0, 0.0], vec![7.0]] {
                let (v0, w0) = smax_weights(&vals, sharp);
                let mut buf = vals.clone();
                let v1 = smax_weights_in_place(&mut buf, sharp);
                assert_eq!(v0.to_bits(), v1.to_bits());
                for (a, b) in w0.iter().zip(&buf) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }
}
