//! Model-check suite for the global solver workspace pool.
//!
//! The pool hands reusable scratch buffers to concurrent solver threads;
//! the invariant is exclusivity — one live workspace is never shared by
//! two threads — plus counter consistency. The suite scribbles a marker
//! into the scratch buffer around an explicit yield so any aliasing
//! shows up as a clobbered value on some interleaving.

use crate::workspace::{self, acquire};
use paradigm_race::sync::Mutex;
use paradigm_race::{explore, plock, Config, Report, Suite};

/// Pool exclusivity: two threads acquire, resize, scribble, yield, and
/// verify. On every interleaving the two live workspaces must be
/// distinct buffers, and afterwards the counters must show exactly two
/// acquires with at most one reuse (both threads can only reuse a
/// pooled workspace if one finished before the other started).
fn run_pool(cfg: &Config) -> Report {
    explore("pool", cfg, || {
        workspace::reset_pool();
        let held: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        paradigm_race::thread::scope(|s| {
            for t in 0..2usize {
                let held = &held;
                s.spawn(move || {
                    let mut ws = acquire();
                    ws.scratch.ensure(4, 4);
                    let id = ws.scratch.y.as_ptr() as usize;
                    {
                        let mut h = plock(held);
                        assert!(!h.contains(&id), "one workspace handed to two threads");
                        h.push(id);
                    }
                    ws.scratch.y[0] = (t + 1) as f64;
                    paradigm_race::thread::yield_now();
                    assert_eq!(
                        ws.scratch.y[0],
                        (t + 1) as f64,
                        "workspace scratch buffer shared across threads"
                    );
                    plock(held).retain(|&x| x != id);
                });
            }
        });
        let (acquires, reuses) = workspace::pool_counters();
        assert_eq!(acquires, 2, "every acquire must be counted");
        assert!(reuses <= 1, "two overlapping acquires cannot both reuse one pooled workspace");
    })
}

/// The solver's model-check suites.
pub fn suites() -> Vec<Suite> {
    vec![Suite {
        name: "pool",
        about: "workspace pool: exclusive handout, consistent counters",
        config: Config::with_bound(2),
        run: run_pool,
    }]
}
