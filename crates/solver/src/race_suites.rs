//! Model-check suite for the global solver workspace pool.
//!
//! The pool hands reusable scratch buffers to concurrent solver threads;
//! the invariant is exclusivity — one live workspace is never shared by
//! two threads — plus counter consistency. The suite scribbles a marker
//! into the scratch buffer around an explicit yield so any aliasing
//! shows up as a clobbered value on some interleaving.

use crate::workspace::{self, acquire, acquire_batch};
use paradigm_race::sync::Mutex;
use paradigm_race::{explore, plock, Config, Report, Suite};

/// Pool exclusivity: two threads each acquire a scalar *and* a batch
/// workspace, resize, scribble, yield, and verify. On every interleaving
/// the live workspaces must be distinct buffers — scalar handouts never
/// alias each other, batch handouts never alias each other, and (because
/// the scalar and batch pools are separate statics) a batch workspace's
/// embedded scalar scratch never aliases a pooled scalar one. Afterwards
/// each pool's counters must show exactly two acquires with at most one
/// reuse (both threads can only reuse a pooled workspace if one finished
/// before the other started).
fn run_pool(cfg: &Config) -> Report {
    explore("pool", cfg, || {
        workspace::reset_pool();
        let held: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        paradigm_race::thread::scope(|s| {
            for t in 0..2usize {
                let held = &held;
                s.spawn(move || {
                    let mut ws = acquire();
                    ws.scratch.ensure(4, 4);
                    let mut bw = acquire_batch();
                    bw.scratch.ensure(4, 4, 2);
                    bw.inner.scratch.ensure(4, 4);
                    let id = ws.scratch.y.as_ptr() as usize;
                    let bid = bw.scratch.y.as_ptr() as usize;
                    let iid = bw.inner.scratch.y.as_ptr() as usize;
                    {
                        let mut h = plock(held);
                        for p in [id, bid, iid] {
                            assert!(!h.contains(&p), "one workspace handed to two threads");
                            h.push(p);
                        }
                    }
                    ws.scratch.y[0] = (t + 1) as f64;
                    bw.scratch.y[0] = (t + 11) as f64;
                    bw.inner.scratch.y[0] = (t + 21) as f64;
                    paradigm_race::thread::yield_now();
                    assert_eq!(
                        ws.scratch.y[0],
                        (t + 1) as f64,
                        "workspace scratch buffer shared across threads"
                    );
                    assert_eq!(
                        bw.scratch.y[0],
                        (t + 11) as f64,
                        "batch workspace scratch buffer shared across threads"
                    );
                    assert_eq!(
                        bw.inner.scratch.y[0],
                        (t + 21) as f64,
                        "batch workspace's scalar scratch shared across threads"
                    );
                    plock(held).retain(|&x| x != id && x != bid && x != iid);
                });
            }
        });
        let (acquires, reuses) = workspace::pool_counters();
        assert_eq!(acquires, 2, "every scalar acquire must be counted");
        assert!(reuses <= 1, "two overlapping acquires cannot both reuse one pooled workspace");
        let (bacquires, breuses) = workspace::batch_pool_counters();
        assert_eq!(bacquires, 2, "every batch acquire must be counted");
        assert!(
            breuses <= 1,
            "two overlapping acquires cannot both reuse one pooled batch workspace"
        );
    })
}

/// The solver's model-check suites.
pub fn suites() -> Vec<Suite> {
    vec![Suite {
        name: "pool",
        about: "workspace pools (scalar + batch): exclusive handout, consistent counters",
        config: Config::with_bound(2),
        run: run_pool,
    }]
}
